package repro

// End-to-end integration tests crossing every module boundary: the full
// NV-S pipeline against a compiled cryptographic victim inside an
// enclave, verified against simulator ground truth and identified by
// fingerprinting. These are the "does the whole paper hold together"
// tests; per-figure assertions live in internal/experiments.

import (
	"testing"

	"repro/internal/codegen"
	"repro/internal/experiments"
	"repro/internal/fingerprint"
	"repro/internal/victim"
)

// TestEndToEndPrivateCodeIdentification runs the complete use-case-2
// story: a private enclave executes bn_cmp; NV-S extracts the byte-
// exact PC trace without reading the code; slicing plus fingerprinting
// identify the function out of a reference library with decoys.
func TestEndToEndPrivateCodeIdentification(t *testing.T) {
	cfg := experiments.Config{Iters: 1, Seed: 101}
	opts := codegen.Options{Opt: codegen.O2}
	secretFn := victim.BnCmp(false)
	args := []uint64{0xFEDC_BA98_7654_3210, 0xFEDC_BA98_0000_0000}

	// 1. Ground truth from a plain simulation.
	wantPCs, _, err := experiments.ModelTrace(secretFn, opts, args)
	if err != nil {
		t.Fatal(err)
	}

	// 2. The attack, end to end.
	gotPCs, data, runs, err := experiments.NVSTrace(cfg, secretFn, opts, args)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotPCs) != len(wantPCs) {
		t.Fatalf("NV-S reconstructed %d steps, ground truth %d", len(gotPCs), len(wantPCs))
	}
	correct := 0
	for i := range wantPCs {
		if gotPCs[i] == wantPCs[i] {
			correct++
		}
	}
	if rate := float64(correct) / float64(len(wantPCs)); rate < 0.97 {
		t.Errorf("trace accuracy %.3f below 0.97", rate)
	}
	t.Logf("NV-S: %d/%d PCs exact in %d enclave executions", correct, len(wantPCs), runs)

	// 3. Identification among decoys.
	traces := fingerprint.Slice(gotPCs, data)
	if len(traces) == 0 {
		t.Fatal("no traces sliced")
	}
	victimTrace := traces[0]
	for _, tr := range traces {
		if len(tr.PCs) > len(victimTrace.PCs) {
			victimTrace = tr
		}
	}
	refs := []fingerprint.Reference{}
	bnRef, err := experiments.ReferenceFor(victim.BnCmp(false), opts)
	if err != nil {
		t.Fatal(err)
	}
	refs = append(refs, bnRef)
	for _, v := range victim.GCDVersionNames {
		r, err := experiments.ReferenceFor(victim.MustGCDVersion(v, false), opts)
		if err != nil {
			t.Fatal(err)
		}
		r.Name = "gcd-" + v
		refs = append(refs, r)
	}
	for i, fn := range victim.Corpus(victim.CorpusSpec{N: 40, Seed: 202}) {
		r, err := experiments.ReferenceFor(fn, opts)
		if err != nil {
			t.Fatal(err)
		}
		_ = i
		refs = append(refs, r)
	}
	name, score := fingerprint.BestMatch(victimTrace, refs)
	if name != "bn_cmp" {
		t.Errorf("identified %q (%.3f), want bn_cmp", name, score)
	}
	if score < 0.95 {
		t.Errorf("match score %.3f below 0.95", score)
	}
}

// TestEndToEndNoiseDegradation sweeps measurement noise across the
// bubble scale: near-perfect at LBR noise levels, degraded once σ
// reaches the misprediction penalties (footnote 2's rationale for
// preferring LBR over rdtsc).
func TestEndToEndNoiseDegradation(t *testing.T) {
	acc, err := experiments.NoiseSweep(experiments.Config{Iters: 1, Seed: 303},
		[]float64{0, 2, 30}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range acc.X {
		t.Logf("sigma=%4.1f accuracy=%.3f", acc.X[i], acc.Y[i])
	}
	if acc.Y[0] < 0.99 {
		t.Errorf("noiseless accuracy %.3f, want ~1", acc.Y[0])
	}
	if acc.Y[1] < 0.9 {
		t.Errorf("LBR-grade noise (sigma=2) accuracy %.3f, want >= 0.9", acc.Y[1])
	}
	if acc.Y[2] >= acc.Y[1] {
		t.Errorf("rdtsc-grade noise should degrade accuracy: %.3f vs %.3f", acc.Y[2], acc.Y[1])
	}
}

// TestEndToEndDeterminism: the same seed reproduces the same attack
// outcome bit for bit — the property every experiment relies on.
func TestEndToEndDeterminism(t *testing.T) {
	run := func() []uint64 {
		pcs, _, _, err := experiments.NVSTrace(experiments.Config{Iters: 1, Seed: 404},
			victim.MustGCDVersion("2.16", false), codegen.Options{Opt: codegen.O2},
			[]uint64{65537, 0x1234_5678_9ABC_DEF1})
		if err != nil {
			t.Fatal(err)
		}
		return pcs
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("step %d differs: %#x vs %#x", i, a[i], b[i])
		}
	}
}

// TestEndToEndAveragingRecoversAccuracy: with rdtsc-grade noise the
// single-shot attack degrades; the paper's repeat-and-average
// methodology recovers it.
func TestEndToEndAveragingRecoversAccuracy(t *testing.T) {
	single, err := experiments.UseCase1GCD(
		experiments.Config{Iters: 1, Seed: 505, Noise: 5}, 2, experiments.AllDefenses())
	if err != nil {
		t.Fatal(err)
	}
	averaged, err := experiments.UseCase1GCD(
		experiments.Config{Iters: 1, Seed: 505, Noise: 5, Repeats: 9}, 2, experiments.AllDefenses())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("sigma=5: single-shot %.3f, 9-vote %.3f", single.Accuracy, averaged.Accuracy)
	if averaged.Accuracy <= single.Accuracy {
		t.Errorf("averaging should improve accuracy: %.3f vs %.3f", averaged.Accuracy, single.Accuracy)
	}
	if averaged.Accuracy < 0.9 {
		t.Errorf("averaged accuracy %.3f below 0.9", averaged.Accuracy)
	}
}
