package repro

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"hash"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/asm"
	"repro/internal/codegen"
	"repro/internal/cpu"
	"repro/internal/experiments"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/victim"
)

// updateGolden rewrites testdata/golden.json from the current simulator
// outputs. Run `go test -run TestGoldenEquivalence -update` ONLY when a
// behavioral change is intended and reviewed; the whole point of the
// file is to pin the fetch pipeline's observable behavior bit-for-bit
// across pure refactors (e.g. the bundle-based fetch loop and the
// flattened BTB layout).
var updateGolden = flag.Bool("update", false, "rewrite golden digests in testdata/golden.json")

const goldenPath = "testdata/golden.json"

// digester canonically serializes simulation outputs into a SHA-256
// stream. Every value is written in a fixed-width little-endian binary
// form so digests are platform- and map-order-independent.
type digester struct{ h hash.Hash }

func newDigester() *digester { return &digester{h: sha256.New()} }

func (d *digester) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	d.h.Write(b[:])
}

func (d *digester) i64(v int64)    { d.u64(uint64(v)) }
func (d *digester) f64(v float64)  { d.u64(math.Float64bits(v)) }
func (d *digester) boolean(v bool) { d.u64(map[bool]uint64{false: 0, true: 1}[v]) }

func (d *digester) str(s string) {
	d.u64(uint64(len(s)))
	d.h.Write([]byte(s))
}

func (d *digester) sum() string { return hex.EncodeToString(d.h.Sum(nil)) }

func (d *digester) series(s *stats.Series) {
	d.str(s.Name)
	d.u64(uint64(len(s.X)))
	for i := range s.X {
		d.f64(s.X[i])
		d.f64(s.Y[i])
	}
}

func (d *digester) pcsData(pcs []uint64, data []bool) {
	d.u64(uint64(len(pcs)))
	for _, pc := range pcs {
		d.u64(pc)
	}
	d.u64(uint64(len(data)))
	for _, v := range data {
		d.boolean(v)
	}
}

func (d *digester) fig12(results []experiments.Figure12Result) {
	d.u64(uint64(len(results)))
	for _, r := range results {
		d.str(r.Reference)
		d.f64(r.SelfSimilarity)
		d.i64(int64(r.SelfRank))
		d.f64(r.BestImpostor)
		d.u64(uint64(len(r.Top)))
		for _, s := range r.Top {
			d.str(s.Label)
			d.f64(s.Score)
		}
	}
}

// goldenFig2 digests the Takeaway-1 curve: dense false-hit deallocation
// traffic through the fetch loop's re-prediction path.
func goldenFig2(t *testing.T) string {
	t.Helper()
	with, without, err := experiments.Figure2(experiments.Config{Iters: 5})
	if err != nil {
		t.Fatal(err)
	}
	d := newDigester()
	d.series(with)
	d.series(without)
	return d.sum()
}

// goldenFig4 digests the Takeaway-2 curve: range-semantics lookups
// across every intra-block offset.
func goldenFig4(t *testing.T) string {
	t.Helper()
	with, without, err := experiments.Figure4(experiments.Config{Iters: 5})
	if err != nil {
		t.Fatal(err)
	}
	d := newDigester()
	d.series(with)
	d.series(without)
	return d.sum()
}

// goldenModelTraces digests the ideal-extraction model over victims that
// exercise loops, conditionals, calls and rets.
func goldenModelTraces(t *testing.T) string {
	t.Helper()
	d := newDigester()
	for _, v := range []struct {
		name string
		fn   *codegen.Func
		args []uint64
	}{
		{"gcd-3.0", victim.MustGCDVersion("3.0", false), []uint64{65537, 0xDEAD_BEEF_1234_5677}},
		{"gcd-2.5", victim.MustGCDVersion("2.5", false), []uint64{12345, 67890}},
		{"bn_cmp", victim.BnCmp(false), []uint64{0x0123_4567_89AB_CDEF, 0x0123_4567_89AB_0000}},
	} {
		pcs, data, err := experiments.ModelTrace(v.fn, codegen.Options{Opt: codegen.O2}, v.args)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		d.str(v.name)
		d.pcsData(pcs, data)
	}
	return d.sum()
}

// goldenNVS digests a full end-to-end NV-S extraction: attacker layout,
// monitor probing, single-stepping, LBR reads and BTB churn all feed the
// reconstructed PC stream.
func goldenNVS(t *testing.T) string {
	t.Helper()
	pcs, data, runs, err := experiments.NVSTrace(experiments.Config{Iters: 1, Seed: 11},
		victim.BnCmp(false), codegen.Options{Opt: codegen.O2},
		[]uint64{0x0123_4567_89AB_CDEF, 0x0123_4567_89AB_0000})
	if err != nil {
		t.Fatal(err)
	}
	d := newDigester()
	d.pcsData(pcs, data)
	d.i64(int64(runs))
	return d.sum()
}

// goldenCoreRun digests a direct core-level run: the full retired trace
// (PC, size, kind), the complete LBR ring with a noisy measurement
// stream, the BTB event statistics and the core's cycle/retire/squash
// counters. This is the finest-grained pin on the fetch+execute
// pipeline's observable behavior.
func goldenCoreRun(t *testing.T) string {
	t.Helper()
	d := newDigester()
	for _, v := range []struct {
		name string
		fn   *codegen.Func
		args []uint64
	}{
		{"gcd-3.0", victim.MustGCDVersion("3.0", false), []uint64{600, 238}},
		{"bn_cmp", victim.BnCmp(false), []uint64{0xAAAA_BBBB_CCCC_DDDD, 0xAAAA_BBBB_0000_0000}},
	} {
		b := asm.NewBuilder(0x60_0000)
		b.Label("entry")
		b.Call(v.fn.Name)
		b.Inst(isa.Hlt())
		b.Space(0x40, byte(isa.OpNop))
		if err := codegen.Emit(b, v.fn, codegen.Options{Opt: codegen.O2}); err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		prog, err := b.Build()
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		m := mem.New()
		c := cpu.New(cpu.Config{}, m)
		c.LBR.SetNoise(2.0, 99) // pin the noisy measurement stream too
		rec := trace.NewRecorder(c, nil)
		prog.LoadInto(m)
		m.Map(0x7e_0000, 0x2000, mem.PermRW)
		c.SetReg(isa.SP, 0x7e_2000)
		for i, a := range v.args {
			c.SetReg(isa.Reg(1+i), a)
		}
		c.SetPC(prog.MustLabel("entry"))
		for steps := 0; ; steps++ {
			if steps > 2_000_000 {
				t.Fatalf("%s did not terminate", v.name)
			}
			info, serr := c.Step()
			if serr == cpu.ErrHalted || (serr == nil && info.Inst.Op == isa.OpHlt) {
				break
			}
			if serr != nil {
				t.Fatalf("%s: %v", v.name, serr)
			}
		}
		d.str(v.name)
		d.u64(uint64(len(rec.T)))
		for _, e := range rec.T {
			d.u64(e.PC)
			d.i64(int64(e.Size))
			d.u64(uint64(e.Kind))
		}
		recs := c.LBR.Records()
		d.u64(uint64(len(recs)))
		for _, r := range recs {
			d.u64(r.From)
			d.u64(r.To)
			d.boolean(r.Mispredicted)
			d.boolean(r.MispredValid)
			d.u64(r.Cycles)
		}
		st := c.BTB.Stats()
		d.u64(st.Lookups)
		d.u64(st.Hits)
		d.u64(st.Allocs)
		d.u64(st.Updates)
		d.u64(st.Invalidates)
		d.u64(st.Evictions)
		d.u64(c.Cycle())
		d.u64(c.Retired())
		d.u64(c.Squashes())
		d.u64(c.FalseHits())
	}
	return d.sum()
}

// goldenFig2Arm digests the Takeaway-1 curve on the arm backend: the
// folded set-index hash and the branch-only update policy (no false-hit
// deallocation) both feed the measurement, pinning the non-Intel BTB
// model's observable behavior.
func goldenFig2Arm(t *testing.T) string {
	t.Helper()
	with, without, err := experiments.Figure2(experiments.Config{Iters: 5, Backend: "arm"})
	if err != nil {
		t.Fatal(err)
	}
	d := newDigester()
	d.series(with)
	d.series(without)
	return d.sum()
}

// goldenRet2Spec digests the RSB-enabled configuration: the overflow
// squash sweep and the cross-process underflow steering counters on the
// named backend. This pins the return-stack-buffer model (push/pop wrap,
// squash copy-back, context-switch persistence) bit-for-bit.
func goldenRet2Spec(t *testing.T, backend string) string {
	t.Helper()
	res, err := experiments.Ret2Spec(experiments.Config{Backend: backend, Workers: 1}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	d := newDigester()
	d.str(res.Backend)
	d.i64(int64(res.RSBDepth))
	d.series(res.Squashes)
	d.i64(int64(res.InferredDepth))
	d.f64(res.PoisonedWindows)
	d.f64(res.CleanWindows)
	return d.sum()
}

// goldenFig12 digests the fingerprinting fan-out with the given worker
// count and observability wiring. Every combination must produce the
// same digest: worker count and attached metrics must not perturb
// results.
func goldenFig12(t *testing.T, workers int, withObs bool) string {
	t.Helper()
	cfg := experiments.Config{Iters: 1, Seed: 13, Workers: workers}
	if withObs {
		cfg.Obs = obs.NewRegistry()
		cfg.Trace = obs.NewTrace()
	}
	results, err := experiments.Figure12(cfg, 300, 10)
	if err != nil {
		t.Fatal(err)
	}
	d := newDigester()
	d.fig12(results)
	return d.sum()
}

// TestGoldenEquivalence pins the observable behavior of the whole
// simulator stack — retired traces, LBR contents, BTB statistics, the
// Figure 2/4 measurement curves, a full NV-S extraction and the Figure
// 12 fingerprinting results — against committed golden digests. A pure
// performance refactor of the fetch/decode/BTB hot path must keep every
// digest bit-identical; a diff here means behavior changed.
func TestGoldenEquivalence(t *testing.T) {
	got := map[string]string{
		"fig2":         goldenFig2(t),
		"fig4":         goldenFig4(t),
		"model-traces": goldenModelTraces(t),
		"nvs-bncmp":    goldenNVS(t),
		"core-run":     goldenCoreRun(t),
		"fig2-arm":     goldenFig2Arm(t),
		"ret2spec":     goldenRet2Spec(t, "intel-skylake"),
		"ret2spec-arm": goldenRet2Spec(t, "arm"),
	}

	// Figure 12 across workers 1/4 and obs off/on: all four runs must be
	// bit-identical before any is compared against the golden digest.
	parallel := 4
	if n := runtime.GOMAXPROCS(0); n < parallel {
		parallel = n
	}
	fig12 := map[string]string{
		"workers=1":                             goldenFig12(t, 1, false),
		"workers=1-obs":                         goldenFig12(t, 1, true),
		fmt.Sprintf("workers=%d", parallel):     goldenFig12(t, parallel, false),
		fmt.Sprintf("workers=%d-obs", parallel): goldenFig12(t, parallel, true),
	}
	for name, digest := range fig12 {
		if digest != fig12["workers=1"] {
			t.Errorf("Figure12 %s digest %s != workers=1 digest %s (worker count or obs wiring perturbed results)",
				name, digest, fig12["workers=1"])
		}
	}
	got["fig12"] = fig12["workers=1"]

	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read %s: %v (run `go test -run TestGoldenEquivalence -update` to generate)", goldenPath, err)
	}
	var want map[string]string
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parse %s: %v", goldenPath, err)
	}
	for name, w := range want {
		if g, ok := got[name]; !ok {
			t.Errorf("golden %q no longer produced", name)
		} else if g != w {
			t.Errorf("%s: digest %s != golden %s — simulator behavior changed", name, g, w)
		}
	}
	for name := range got {
		if _, ok := want[name]; !ok {
			t.Errorf("component %q missing from %s (regenerate with -update)", name, goldenPath)
		}
	}
}
