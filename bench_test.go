// Package repro's benchmark harness regenerates every table and figure
// of the paper's evaluation (§7) plus the DESIGN.md ablations. Each
// benchmark prints the series/rows it reproduces (once) and then times
// the underlying measurement.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// The headline reproductions:
//
//	BenchmarkFigure2            Takeaway 1 curve (Figure 2)
//	BenchmarkFigure4            Takeaway 2 curve (Figure 4)
//	BenchmarkUseCase1GCD        99.3%-accuracy leakage experiment (§7.2)
//	BenchmarkUseCase1BnCmp      100%-accuracy leakage experiment (§7.2)
//	BenchmarkFigure12           fingerprinting vs corpus (Figure 12)
//	BenchmarkFigure12FullCorpus the paper-scale 175,168-function corpus
//	BenchmarkFigure13Versions   Figure 13 (left)
//	BenchmarkFigure13OptLevels  Figure 13 (right)
//	BenchmarkNVSTraversal       Figure 9/10 full-trace extraction cost
//	BenchmarkMitigationsIBRSIBPB§4.1: hardware mitigations do not help
//	BenchmarkAblation*          design-choice ablations from DESIGN.md
package repro

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/asm"
	"repro/internal/btb"
	"repro/internal/codegen"
	"repro/internal/cpu"
	"repro/internal/experiments"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/uarch"
	"repro/internal/victim"
)

// printOnce guards the one-time figure dump of each benchmark.
var printOnce sync.Map

func once(name string, f func()) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		f()
	}
}

func BenchmarkFigure2(b *testing.B) {
	cfg := experiments.Config{Iters: 50}
	once("fig2", func() {
		with, without, err := experiments.Figure2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		in, out := experiments.Figure2Gap(with, without)
		fmt.Printf("\n=== Figure 2 (Takeaway 1: non-branch BTB deallocation) ===\n")
		fmt.Print(stats.Table("F2 offset", with, without))
		fmt.Printf("gap: collision %.2f cyc, outside %.2f cyc (paper: clear gap iff F2 < F1+2)\n", in, out)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Figure2(experiments.Config{Iters: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	cfg := experiments.Config{Iters: 50}
	once("fig4", func() {
		with, without, err := experiments.Figure4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		in, out, slope := experiments.Figure4Gap(with, without)
		fmt.Printf("\n=== Figure 4 (Takeaway 2: PW range semantics) ===\n")
		fmt.Print(stats.Table("F1 offset", with, without))
		fmt.Printf("gap: range-hit %.2f cyc, outside %.2f; control slope %.2f cyc/nop (paper: gap iff F1 < F2+2, declining control)\n", in, out, slope)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Figure4(experiments.Config{Iters: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUseCase1GCD(b *testing.B) {
	once("uc1gcd", func() {
		res, err := experiments.UseCase1GCD(experiments.Config{Iters: 1, Seed: 5}, 100, experiments.AllDefenses())
		if err != nil {
			b.Fatal(err)
		}
		fmt.Printf("\n=== Use case 1: GCD leakage, 100 runs, all defenses (§7.2) ===\n%v\n(paper: 99.3%% accuracy, ~30 iterations/run)\n", res)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.UseCase1GCD(experiments.Config{Iters: 1, Seed: uint64(i + 1)}, 2, experiments.AllDefenses()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUseCase1BnCmp(b *testing.B) {
	once("uc1bn", func() {
		res, err := experiments.UseCase1BnCmp(experiments.Config{Iters: 1, Seed: 23}, 100, experiments.AllDefenses())
		if err != nil {
			b.Fatal(err)
		}
		fmt.Printf("\n=== Use case 1: bn_cmp leakage, 100 runs (§7.2) ===\n%v\n(paper: 100%% accuracy)\n", res)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.UseCase1BnCmp(experiments.Config{Iters: 1, Seed: uint64(i + 1)}, 2, experiments.AllDefenses()); err != nil {
			b.Fatal(err)
		}
	}
}

func printFig12(results []experiments.Figure12Result, corpusN int) {
	fmt.Printf("\n=== Figure 12: fingerprinting vs %d-function corpus (§7.3) ===\n", corpusN)
	for _, r := range results {
		fmt.Printf("reference %-16s self-similarity %.3f rank %d, best impostor %.3f\n",
			r.Reference, r.SelfSimilarity, r.SelfRank, r.BestImpostor)
		for i, s := range r.Top {
			if i >= 5 {
				break
			}
			fmt.Printf("  #%-3d %-16s %.3f\n", i+1, s.Label, s.Score)
		}
	}
	fmt.Println("(paper: true function ranks #1; self-similarity 75.8% GCD / 88.2% bn_cmp —")
	fmt.Println(" our exact simulator measures 1.0; the margin over impostors is the shape)")
}

func BenchmarkFigure12(b *testing.B) {
	once("fig12", func() {
		results, err := experiments.Figure12(experiments.Config{Iters: 1, Seed: 13}, 5000, 100)
		if err != nil {
			b.Fatal(err)
		}
		printFig12(results, 5000)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure12(experiments.Config{Iters: 1, Seed: 13}, 300, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunnerFigure12Corpus measures the parallel experiment engine
// on the Figure 12 corpus fan-out: workers=1 is the serial baseline,
// workers=GOMAXPROCS the bounded pool. Both produce bit-identical
// results (TestFigure12ParallelDeterminism); this benchmark tracks the
// wall-clock speedup, which should be >=2x on 4+ cores. The obs=on
// variants run the FULL observability surface — live metrics registry,
// tracer, continuous profiler sampling into the same registry, and an
// SLO tracker ticking over its histograms — so the medians recorded in
// BENCH_runner.json price the whole PR-9 stack. The observability
// budget is <=10% over the uninstrumented run, enforced by
// scripts/obs_overhead_gate.sh in CI.
func BenchmarkRunnerFigure12Corpus(b *testing.B) {
	workersList := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		workersList = append(workersList, n)
	}
	for _, workers := range workersList {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := experiments.Config{Iters: 1, Seed: 13, Workers: workers}
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Figure12(cfg, 2000, 10); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("workers=%d-obs", workers), func(b *testing.B) {
			reg := obs.NewRegistry()
			prof := obs.NewProfiler(reg, 10*time.Millisecond, 32)
			prof.Start()
			defer prof.Stop()
			slo := obs.NewSLOTracker(reg, time.Hour, 0)
			slo.Add(obs.LatencyObjective("bench_probe",
				reg.Histogram("bench_probe_seconds", "benchmark probe wall time", obs.DefaultDurationBuckets()),
				1, 0.99))
			slo.Start()
			defer slo.Stop()
			cfg := experiments.Config{
				Iters: 1, Seed: 13, Workers: workers,
				Obs: reg, Trace: obs.NewTrace(),
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Figure12(cfg, 2000, 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure12FullCorpus runs the paper-scale corpus (175,168
// functions). Expect on the order of two minutes per iteration.
func BenchmarkFigure12FullCorpus(b *testing.B) {
	if testing.Short() {
		b.Skip("full corpus skipped in -short mode")
	}
	for i := 0; i < b.N; i++ {
		results, err := experiments.Figure12(experiments.Config{Iters: 1, Seed: 13}, victim.PaperCorpusN, 100)
		if err != nil {
			b.Fatal(err)
		}
		once("fig12full", func() { printFig12(results, victim.PaperCorpusN) })
	}
}

func printMatrix(title string, m *experiments.SimilarityMatrix) {
	fmt.Printf("\n=== %s ===\n%-8s", title, "")
	for _, l := range m.Labels {
		fmt.Printf(" %6s", l)
	}
	fmt.Println()
	for i, row := range m.Cells {
		fmt.Printf("%-8s", m.Labels[i])
		for _, v := range row {
			fmt.Printf(" %6.3f", v)
		}
		fmt.Println()
	}
}

func BenchmarkFigure13Versions(b *testing.B) {
	once("fig13v", func() {
		m, err := experiments.Figure13Versions(experiments.Config{Iters: 1, Seed: 17})
		if err != nil {
			b.Fatal(err)
		}
		printMatrix("Figure 13 (left): GCD across mbedTLS versions", m)
		fmt.Println("(paper: 2.5-2.15 cluster high; 2.16 and 3.0 break compatibility)")
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure13Versions(experiments.Config{Iters: 1, Seed: 17}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure13OptLevels(b *testing.B) {
	once("fig13o", func() {
		m, err := experiments.Figure13OptLevels(experiments.Config{Iters: 1, Seed: 19})
		if err != nil {
			b.Fatal(err)
		}
		printMatrix("Figure 13 (right): GCD across optimization flags", m)
		fmt.Println("(paper: same-flag diagonal high, cross-flag low)")
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure13OptLevels(experiments.Config{Iters: 1, Seed: 19}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNVSTraversal measures the Figure 9/10 pipeline: full
// byte-exact trace extraction of an enclave function, reporting the
// enclave-execution cost model.
func BenchmarkNVSTraversal(b *testing.B) {
	fn := victim.BnCmp(false)
	opts := codegen.Options{Opt: codegen.O2}
	args := []uint64{0x0123_4567_89AB_CDEF, 0x0123_4567_89AB_0000}
	once("nvs", func() {
		pcs, _, runs, err := experiments.NVSTrace(experiments.Config{Iters: 1, Seed: 11}, fn, opts, args)
		if err != nil {
			b.Fatal(err)
		}
		fmt.Printf("\n=== NV-S traversal (Figures 9/10) ===\n")
		fmt.Printf("extracted %d dynamic PCs in %d enclave executions (1 discovery + 128/N coarse + refinement)\n", len(pcs), runs)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := experiments.NVSTrace(experiments.Config{Iters: 1, Seed: 11}, fn, opts, args); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMitigationsIBRSIBPB reproduces §4.1: the leakage accuracy is
// unchanged with IBRS enabled (IBPB coverage is asserted in unit tests;
// both touch only indirect-branch entries).
func BenchmarkMitigationsIBRSIBPB(b *testing.B) {
	run := func(seed uint64) float64 {
		cfg := experiments.Config{Iters: 1, Seed: seed}
		res, err := experiments.UseCase1GCD(cfg, 3, experiments.AllDefenses())
		if err != nil {
			b.Fatal(err)
		}
		return res.Accuracy
	}
	once("mitig", func() {
		fmt.Printf("\n=== §4.1: IBRS/IBPB do not stop NightVision ===\n")
		fmt.Printf("leakage accuracy with hardware mitigations modeled: %.3f (paper: unaffected)\n", run(41))
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(uint64(i + 1))
	}
}

// BenchmarkAblationFullTag: with full BTB tags there is no aliasing and
// both Figure 2 series coincide — the attack's precondition vanishes
// (DESIGN.md ablation 4).
func BenchmarkAblationFullTag(b *testing.B) {
	cfg := experiments.Config{Iters: 5}
	cfg.CPU.BTB = btb.ConfigFullTag()
	once("ablTag", func() {
		with, without, err := experiments.Figure2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		in, out := experiments.Figure2Gap(with, without)
		fmt.Printf("\n=== Ablation: full BTB tags (no truncation) ===\n")
		fmt.Printf("Figure 2 gap: collision %.2f cyc, outside %.2f — signal gone (SkyLake shows ~8)\n", in, out)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Figure2(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationExactMatchBTB: without range-query lookups (Takeaway
// 2) the Figure 4 aliased entry never fires for smaller offsets.
func BenchmarkAblationExactMatchBTB(b *testing.B) {
	cfg := experiments.Config{Iters: 5}
	cfg.CPU.BTB = btb.ConfigSkyLake()
	cfg.CPU.BTB.ExactMatch = true
	once("ablExact", func() {
		with, without, err := experiments.Figure4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		in, out, _ := experiments.Figure4Gap(with, without)
		fmt.Printf("\n=== Ablation: exact-match BTB (no range semantics) ===\n")
		fmt.Printf("Figure 4 gap: range %.2f cyc, outside %.2f — range semantics are load-bearing\n", in, out)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Figure4(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationNoDealloc: keeping entries alive across false hits
// (no Takeaway 1) removes the Figure 2 signal entirely.
func BenchmarkAblationNoDealloc(b *testing.B) {
	cfg := experiments.Config{Iters: 5}
	cfg.CPU.NoFalseHitDealloc = true
	once("ablDealloc", func() {
		with, without, err := experiments.Figure2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		in, out := experiments.Figure2Gap(with, without)
		fmt.Printf("\n=== Ablation: no false-hit deallocation ===\n")
		fmt.Printf("Figure 2 gap: collision %.2f cyc, outside %.2f — the deallocation IS the channel\n", in, out)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Figure2(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Micro-benchmarks of the substrates.

func BenchmarkBTBLookup(b *testing.B) {
	t := btb.New(btb.ConfigSkyLake())
	for i := uint64(0); i < 1000; i++ {
		t.Update(0x40_0000+i*64+31, i, isa.KindJump)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Lookup(0x40_0000 + uint64(i%1000)*64)
	}
}

// BenchmarkCoreStepThroughput times the instrumented model-extraction
// trace (the ModelTrace path every corpus experiment rides) and then
// the raw step loop per microarch backend over the same GCD victim: the
// arm backend's folded set-index hash and branch-only update policy
// must stay on the zero-allocation hot path (the alloc gates in
// internal/cpu enforce the zero; this records the cycle cost into
// BENCH_runner.json).
func BenchmarkCoreStepThroughput(b *testing.B) {
	b.Run("modeltrace", func(b *testing.B) {
		pcs, _, err := experiments.ModelTrace(victim.MustGCDVersion("3.0", false),
			codegen.Options{Opt: codegen.O2}, []uint64{65537, 0xDEAD_BEEF_1234_5677})
		if err != nil {
			b.Fatal(err)
		}
		steps := len(pcs)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := experiments.ModelTrace(victim.MustGCDVersion("3.0", false),
				codegen.Options{Opt: codegen.O2}, []uint64{65537, 0xDEAD_BEEF_1234_5677}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(steps), "steps/op")
	})
	for _, name := range uarch.Names() {
		b.Run("backend="+name, func(b *testing.B) {
			bld := asm.NewBuilder(0x60_0000)
			bld.Label("entry")
			fn := victim.MustGCDVersion("3.0", false)
			bld.Call(fn.Name)
			bld.Inst(isa.Hlt())
			bld.Space(0x40, byte(isa.OpNop))
			if err := codegen.Emit(bld, fn, codegen.Options{Opt: codegen.O2}); err != nil {
				b.Fatal(err)
			}
			prog, err := bld.Build()
			if err != nil {
				b.Fatal(err)
			}
			m := mem.New()
			prog.LoadInto(m)
			m.Map(0x7e_0000, 0x2000, mem.PermRW)
			c := cpu.New(cpu.ConfigFor(uarch.MustGet(name)), m)
			steps := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Reset()
				c.SetReg(isa.SP, 0x7e_2000)
				c.SetReg(isa.Reg(1), 600)
				c.SetReg(isa.Reg(2), 238)
				c.SetPC(prog.MustLabel("entry"))
				for {
					if _, serr := c.Step(); serr == cpu.ErrHalted {
						break
					} else if serr != nil {
						b.Fatal(serr)
					}
					steps++
				}
			}
			b.ReportMetric(float64(steps)/float64(b.N), "steps/op")
		})
	}
}

func BenchmarkCorpusGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		victim.Corpus(victim.CorpusSpec{N: 100, Seed: uint64(i)})
	}
}

// BenchmarkBaselineGranularity compares fingerprinting power across
// observation granularities: NightVision's byte channel vs the
// fetch-block, icache-line and page channels of prior attacks.
func BenchmarkBaselineGranularity(b *testing.B) {
	once("granularity", func() {
		results, err := experiments.GranularityComparison(experiments.Config{Iters: 1, Seed: 29}, 500)
		if err != nil {
			b.Fatal(err)
		}
		fmt.Printf("\n=== Baseline: fingerprinting vs observation granularity ===\n")
		for _, r := range results {
			fmt.Println(r.String())
		}
		fmt.Println("(paper intro: coarse channels are \"too coarse to be useful\" — separation collapses)")
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.GranularityComparison(experiments.Config{Iters: 1, Seed: 29}, 100); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSequenceVsSet evaluates the §8.3 future-work extension:
// sequence alignment versus the paper's set intersection.
func BenchmarkSequenceVsSet(b *testing.B) {
	once("seqvset", func() {
		res, err := experiments.SequenceVsSet(experiments.Config{Iters: 1, Seed: 31}, 500)
		if err != nil {
			b.Fatal(err)
		}
		fmt.Printf("\n=== §8.3 extension: sequence alignment vs set intersection ===\n")
		fmt.Printf("set:      self %.3f, best impostor %.3f, separation %.3f\n", res.SetSelf, res.SetImpostor, res.SetSeparation())
		fmt.Printf("sequence: self %.3f, best impostor %.3f, separation %.3f\n", res.SeqSelf, res.SeqImpostor, res.SeqSeparation())
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SequenceVsSet(experiments.Config{Iters: 1, Seed: 31}, 100); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFragmentPressure reproduces the §4.2 constraint: long victim
// time slices evict the attacker's BTB entries and drown the channel.
func BenchmarkFragmentPressure(b *testing.B) {
	once("pressure", func() {
		hit, falsePos, err := experiments.FragmentPressure(experiments.Config{Iters: 1, Seed: 37},
			[]int{0, 64, 512, 2048, 4096, 8192}, 8)
		if err != nil {
			b.Fatal(err)
		}
		fmt.Printf("\n=== §4.2: BTB pressure vs victim fragment length ===\n")
		fmt.Print(stats.Table("filler", hit, falsePos))
		fmt.Println("(paper: fragments must stay short or attacker entries are evicted)")
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.FragmentPressure(experiments.Config{Iters: 1, Seed: 37}, []int{0, 512}, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNVSBlocksPerCall sweeps N of Figure 10: monitoring more PWs
// per NV-Core call divides the coarse-pass run count by N.
func BenchmarkNVSBlocksPerCall(b *testing.B) {
	for _, n := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			fn := victim.BnCmp(false)
			opts := codegen.Options{Opt: codegen.O2}
			args := []uint64{0xAAAA_BBBB_CCCC_DDDD, 0xAAAA_BBBB_0000_0000}
			once(fmt.Sprintf("nvsN%d", n), func() {
				runs, steps, err := nvsRunsWithN(n, fn, opts, args)
				if err != nil {
					b.Fatal(err)
				}
				fmt.Printf("N=%2d: %d enclave executions for %d steps (coarse pass = 128/N = %d)\n",
					n, runs, steps, 128/n)
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := nvsRunsWithN(n, fn, opts, args); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// nvsRunsWithN runs a full NV-S extraction with the given Figure-10 N.
func nvsRunsWithN(n int, fn *codegen.Func, opts codegen.Options, args []uint64) (runs, steps int, err error) {
	cfg := experiments.Config{Iters: 1, Seed: 11, NVSBlocksPerCall: n}
	pcs, _, runs, err := experiments.NVSTrace(cfg, fn, opts, args)
	return runs, len(pcs), err
}
