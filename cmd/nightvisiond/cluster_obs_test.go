package main

// Cluster observability tests: cross-node trace assembly (forward and
// steal hops merged into one timeline, served from any node), the
// trace proxy on accepted-and-forwarded nodes, metrics federation
// arithmetic, the profiling/SLO endpoints, and the invariance proof
// that none of it changes result bytes.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/obs"
)

// requestOwnedBy finds a compute request whose cache key the ring
// assigns to owner.
func requestOwnedBy(t *testing.T, n *testNode, owner string, param int) jobs.Request {
	t.Helper()
	for seed := uint64(1); seed < 10_000; seed++ {
		req := jobs.Request{Experiment: "compute", Params: map[string]any{"n": param}, Seed: seed}
		if n.node.Ring().Owner(keyFor(t, n.reg, req)) == owner {
			return req
		}
	}
	t.Fatalf("no seed found with owner %s", owner)
	return jobs.Request{}
}

// postJob submits a request over HTTP and returns the accepted view.
func postJob(t *testing.T, n *testNode, req jobs.Request) jobs.View {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(n.url()+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var v jobs.View
	if err := jsonDecode(resp, &v); err != nil {
		t.Fatal(err)
	}
	if v.ID == "" {
		t.Fatalf("submission returned no job ID (status %d)", resp.StatusCode)
	}
	return v
}

// mergedTrace fetches GET /v1/jobs/{id}/trace from one node and
// returns the parsed Chrome file: event names and pid→node names.
type mergedChrome struct {
	names map[string]int  // event name → count
	nodes map[string]bool // process_name metadata values
	raw   string
}

func fetchMergedTrace(t *testing.T, base, id string) (mergedChrome, int) {
	t.Helper()
	code, body := getBody(t, base+"/v1/jobs/"+id+"/trace")
	out := mergedChrome{names: map[string]int{}, nodes: map[string]bool{}, raw: string(body)}
	if code != http.StatusOK {
		return out, code
	}
	var f struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &f); err != nil {
		t.Fatalf("merged trace from %s not valid JSON: %v\n%s", base, err, body)
	}
	for _, ev := range f.TraceEvents {
		out.names[ev.Name]++
		if ev.Ph == "M" && ev.Name == "process_name" {
			if n, ok := ev.Args["name"].(string); ok {
				out.nodes[n] = true
			}
		}
	}
	return out, code
}

// TestClusterTraceProxyForwarded is the satellite-1 regression: the
// node that accepted a submission and forwarded it to the ring owner
// must serve GET /v1/jobs/{id}/trace by proxying to the owner, not
// 404. Two-node pair, entry != owner.
func TestClusterTraceProxyForwarded(t *testing.T) {
	ids := []string{"n1", "n2"}
	nodes := startCluster(t, ids, clusterOpts{})
	entry := nodes["n1"]

	req := requestOwnedBy(t, entry, "n2", 41)
	v := postJob(t, entry, req)
	if want := "job-n2-"; !strings.HasPrefix(v.ID, want) {
		t.Fatalf("forwarded job ID %q does not carry the owner node (want prefix %q)", v.ID, want)
	}
	final := pollDone(t, nodes["n2"].url(), v.ID)
	if final.State != jobs.StateDone {
		t.Fatalf("forwarded job: %+v", final)
	}

	// The entry node does not hold the job...
	if _, ok := entry.engine.Get(v.ID); ok {
		t.Fatalf("job %s unexpectedly local to the entry node", v.ID)
	}
	// ...yet its trace endpoint serves the merged timeline via proxy.
	resp, err := http.Get(entry.url() + "/v1/jobs/" + v.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace on entry node: status %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Nightvision-Trace-Via"); got != "n1" {
		t.Fatalf("proxy Via header %q, want n1", got)
	}
	tr, _ := fetchMergedTrace(t, entry.url(), v.ID)
	if tr.names["forward"] == 0 {
		t.Fatalf("merged trace lacks the forward hop span:\n%s", tr.raw)
	}
	if !tr.nodes["n1"] || !tr.nodes["n2"] {
		t.Fatalf("merged trace lacks per-node attribution (got %v)", tr.nodes)
	}
}

// TestClusterMergedTraceForwardSteal is the PR's acceptance criterion:
// a job submitted to A, forwarded to its owner B, and stolen by an
// idle peer yields ONE merged timeline — with the forward and steal
// hop spans attributed to the right nodes — from GET
// /v1/jobs/{id}/trace on ANY of the three nodes.
func TestClusterMergedTraceForwardSteal(t *testing.T) {
	ids := []string{"n1", "n2", "n3"}
	nodes := startCluster(t, ids, clusterOpts{workers: 1, stealThreshold: 1})
	entry, owner := nodes["n1"], nodes["n2"]

	// Park the owner's only worker so everything it accepts stays
	// queued until a peer steals it.
	blocker, err := owner.engine.Submit(jobs.Request{Experiment: "block"})
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, owner.engine, blocker.ID)

	// Submit via A a batch of jobs owned by B; each is forwarded.
	var views []jobs.View
	for i := 0; i < 4; i++ {
		req := requestOwnedBy(t, entry, "n2", 300+i)
		views = append(views, postJob(t, entry, req))
	}
	for _, v := range views {
		if final := pollDone(t, owner.url(), v.ID); final.State != jobs.StateDone {
			t.Fatalf("job %s: %+v", v.ID, final)
		}
	}
	if got := counterSum(owner.metrics, "jobs_stolen_total"); got == 0 {
		t.Fatal("owner journaled no steals; the scenario never exercised the steal hop")
	}

	// Find a job whose merged trace shows BOTH hops, then demand the
	// identical story from every node in the fleet.
	var acceptedID string
	for _, v := range views {
		tr, code := fetchMergedTrace(t, owner.url(), v.ID)
		if code == http.StatusOK && tr.names["forward"] > 0 && tr.names["steal"] > 0 {
			acceptedID = v.ID
			break
		}
	}
	if acceptedID == "" {
		t.Fatal("no job's merged trace contains both a forward and a steal hop span")
	}
	for _, id := range ids {
		tr, code := fetchMergedTrace(t, nodes[id].url(), acceptedID)
		if code != http.StatusOK {
			t.Fatalf("merged trace from %s: status %d", id, code)
		}
		if tr.names["forward"] == 0 || tr.names["steal"] == 0 || tr.names["stolen"] == 0 {
			t.Fatalf("merged trace from %s lacks hop spans (events %v):\n%s", id, tr.names, tr.raw)
		}
		// Attribution: the entry node and the owner are distinct
		// processes in the merged file, plus whichever peer stole it.
		if !tr.nodes["n1"] || !tr.nodes["n2"] || len(tr.nodes) < 3 {
			t.Fatalf("merged trace from %s misattributes nodes: %v", id, tr.nodes)
		}
		if tr.names["submit"] == 0 || tr.names["run"] == 0 {
			t.Fatalf("merged trace from %s lacks the job lifecycle events: %v", id, tr.names)
		}
	}
}

// snapshotValue sums a counter family in a JSON metrics snapshot,
// optionally filtered by one label.
func snapshotValue(snap []obs.MetricSnapshot, name, labelKey, labelVal string) uint64 {
	var sum uint64
	for _, m := range snap {
		if m.Name != name || m.Value == nil {
			continue
		}
		if labelKey != "" && m.Labels[labelKey] != labelVal {
			continue
		}
		sum += *m.Value
	}
	return sum
}

// TestClusterMetricsFederation: the federated totals on /v1/cluster/
// metrics equal the sum of the per-node scrapes, and every node's
// series appears under its node label.
func TestClusterMetricsFederation(t *testing.T) {
	ids := []string{"n1", "n2", "n3"}
	nodes := startCluster(t, ids, clusterOpts{})

	// A little traffic on every node, bypassing forwarding so each node
	// definitely owns local jobs.
	for i, id := range ids {
		for j := 0; j < 2+i; j++ {
			v, err := nodes[id].engine.Submit(jobs.Request{
				Experiment: "compute", Params: map[string]any{"n": 500 + 10*i + j}, Seed: 7,
			})
			if err != nil {
				t.Fatal(err)
			}
			pollDone(t, nodes[id].url(), v.ID)
		}
	}

	// Per-node ground truth from the same endpoint federation scrapes.
	var wantSubmitted, wantDone uint64
	for _, id := range ids {
		var snap []obs.MetricSnapshot
		if code := getJSON(t, nodes[id].url()+"/v1/metrics?format=json", &snap); code != http.StatusOK {
			t.Fatalf("scrape %s: status %d", id, code)
		}
		wantSubmitted += snapshotValue(snap, "jobs_submitted_total", "", "")
		wantDone += snapshotValue(snap, "jobs_completed_total", "state", "done")
	}

	var fed []obs.MetricSnapshot
	if code := getJSON(t, nodes["n1"].url()+"/v1/cluster/metrics?format=json", &fed); code != http.StatusOK {
		t.Fatalf("federated scrape: status %d", code)
	}
	if got := snapshotValue(fed, "cluster_jobs_submitted_total", "", ""); got != wantSubmitted {
		t.Fatalf("cluster_jobs_submitted_total = %d, per-node sum = %d", got, wantSubmitted)
	}
	if got := snapshotValue(fed, "cluster_jobs_total", "state", "done"); got != wantDone {
		t.Fatalf(`cluster_jobs_total{state="done"} = %d, per-node sum = %d`, got, wantDone)
	}
	// The same series federated under node labels must re-sum to the
	// aggregate — absorption neither loses nor double-counts.
	var perNode uint64
	seen := map[string]bool{}
	for _, m := range fed {
		if m.Name == "jobs_submitted_total" && m.Value != nil {
			perNode += *m.Value
			seen[m.Labels["node"]] = true
		}
	}
	if perNode != wantSubmitted {
		t.Fatalf("node-labeled jobs_submitted_total sums to %d, want %d", perNode, wantSubmitted)
	}
	for _, id := range ids {
		if !seen[id] {
			t.Fatalf("federation lost node %s (saw %v)", id, seen)
		}
	}
	// Scrape accounting gauges.
	if got := snapshotGauge(fed, "cluster_nodes_scraped"); got != 3 {
		t.Fatalf("cluster_nodes_scraped = %d, want 3", got)
	}
	// Prometheus exposition must also serve (default format).
	code, body := getBody(t, nodes["n2"].url()+"/v1/cluster/metrics")
	if code != http.StatusOK || !strings.Contains(string(body), "cluster_jobs_submitted_total") {
		t.Fatalf("prometheus federation: status %d\n%s", code, body)
	}
}

func snapshotGauge(snap []obs.MetricSnapshot, name string) int64 {
	for _, m := range snap {
		if m.Name == name && m.Level != nil {
			return *m.Level
		}
	}
	return -1
}

// TestClusterProfilezAndSLO: the continuous-profiling ring and the SLO
// report are served on every node, and healthz reflects SLO state
// without changing its HTTP status.
func TestClusterProfilezAndSLO(t *testing.T) {
	nodes := startCluster(t, []string{"n1", "n2"}, clusterOpts{})
	n := nodes["n1"]

	v, err := n.engine.Submit(jobs.Request{Experiment: "compute", Params: map[string]any{"n": 777}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	pollDone(t, n.url(), v.ID)

	var prof struct {
		IntervalSec float64 `json:"interval_sec"`
		Current     struct {
			Goroutines     int64  `json:"goroutines"`
			HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
		} `json:"current"`
	}
	if code := getJSON(t, n.url()+"/v1/profilez", &prof); code != http.StatusOK {
		t.Fatalf("profilez: status %d", code)
	}
	if prof.Current.Goroutines <= 0 || prof.Current.HeapAllocBytes == 0 {
		t.Fatalf("profilez sample looks dead: %+v", prof)
	}

	var slo sloInfo
	if code := getJSON(t, n.url()+"/v1/slo", &slo); code != http.StatusOK {
		t.Fatalf("slo: status %d", code)
	}
	if len(slo.Objectives) != 2 || !slo.Healthy {
		t.Fatalf("slo report: %+v", slo)
	}
	for _, o := range slo.Objectives {
		if o.BurnRate > 0.5 {
			t.Fatalf("objective %s burning with no bad events: %+v", o.Name, o)
		}
	}

	var h healthInfo
	if code := getJSON(t, n.url()+"/v1/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}
	if h.SLOHealthy == nil || !*h.SLOHealthy || h.Status != "ok" {
		t.Fatalf("healthz SLO fields: %+v", h)
	}
}

// TestClusterObsInvariance is satellite 3's cluster half: the full
// sweep executed on a 3-node fleet with every observability surface ON
// (tracing, federation scrapes mid-run, profiling, SLO) and again with
// everything OFF must produce bit-identical result bytes under
// identical store keys.
func TestClusterObsInvariance(t *testing.T) {
	reqs := chaosSweep()[:8]
	reference := referenceRun(t, reqs)

	run := func(obsOff bool) map[string][]byte {
		ids := []string{"n1", "n2", "n3"}
		nodes := startCluster(t, ids, clusterOpts{obsOff: obsOff})
		for i, req := range reqs {
			postJob(t, nodes[ids[i%3]], req)
		}
		if !obsOff {
			// Exercise every observability surface while jobs run: none
			// of this may leak into the bytes.
			var fed []obs.MetricSnapshot
			getJSON(t, nodes["n1"].url()+"/v1/cluster/metrics?format=json", &fed)
			var prof map[string]any
			getJSON(t, nodes["n2"].url()+"/v1/profilez", &prof)
			var slo sloInfo
			getJSON(t, nodes["n3"].url()+"/v1/slo", &slo)
		}
		out := make(map[string][]byte, len(reference))
		for key := range reference {
			key := key
			waitFor(t, 30*time.Second, "cluster result "+key[:12], func() bool {
				code, body := getBody(t, nodes["n1"].url()+"/v1/results/"+key)
				if code != http.StatusOK {
					return false
				}
				out[key] = body
				return true
			})
		}
		return out
	}

	for _, obsOff := range []bool{false, true} {
		got := run(obsOff)
		for key, want := range reference {
			if !bytes.Equal(got[key], want) {
				t.Fatalf("obsOff=%v: bytes diverge from reference for key %s", obsOff, key[:12])
			}
		}
	}
}

// TestSubmitMintsTraceID: every accepted submission carries a trace
// ID end to end, and the single-node trace endpoint still serves the
// classic Chrome file (the engine half of the backward-compat replay
// story lives in internal/jobs).
func TestSubmitMintsTraceID(t *testing.T) {
	srv, engine, _ := newTestServer(t)

	var v jobs.View
	code := postJSON(t, srv.URL+"/v1/jobs", `{"experiment":"fig2","params":{"iters":2},"seed":9}`, &v)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit: status %d", code)
	}
	if v.TraceID == "" {
		t.Fatalf("accepted view lacks a trace ID: %+v", v)
	}
	final := pollDone(t, srv.URL, v.ID)
	if final.TraceID != v.TraceID {
		t.Fatalf("trace ID changed across lifecycle: %q -> %q", v.TraceID, final.TraceID)
	}
	if _, ok := engine.Get(v.ID); !ok {
		t.Fatal("job vanished")
	}
	code, body := getBody(t, srv.URL+"/v1/jobs/"+v.ID+"/trace")
	if code != http.StatusOK || !strings.Contains(string(body), "traceEvents") {
		t.Fatalf("single-node trace: status %d\n%s", code, body)
	}
}
