package main

// The HTTP surface of nightvisiond, kept separate from main so the
// httptest-based tests (and the CI smoke script's in-process analog)
// exercise exactly what the binary serves.

import (
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/pprof"
	"runtime/debug"
	"strconv"
	"time"

	"repro/internal/cluster"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/store"
	"repro/internal/uarch"
)

// api bundles the daemon's dependencies.
type api struct {
	engine   *jobs.Engine
	reg      *registry.Registry
	store    *store.Store
	metrics  *obs.Registry
	cluster  *cluster.Node    // nil when running single-node
	profiler *obs.Profiler    // nil when continuous profiling is disabled
	slo      *obs.SLOTracker  // nil when SLO tracking is disabled
	nodeID   string           // cluster node name ("" single-node)
	start    time.Time
}

// nodeName labels locally recorded trace fragments.
func (a *api) nodeName() string {
	if a.nodeID != "" {
		return a.nodeID
	}
	return "local"
}

// experimentInfo is one row of GET /v1/experiments.
type experimentInfo struct {
	Name        string           `json:"name"`
	Description string           `json:"description"`
	Params      []registry.Param `json:"params"`
}

// backendInfo is one row of GET /v1/backends.
type backendInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Default     bool   `json:"default,omitempty"`
	// BTB geometry: entries = sets*ways, window = 2^offset_bits bytes,
	// aliasing distance = 2^tag_top_bit bytes.
	BTBSets         int  `json:"btb_sets"`
	BTBWays         int  `json:"btb_ways"`
	TagTopBit       int  `json:"tag_top_bit"`
	FalseHitDealloc bool `json:"false_hit_dealloc"`
	// RSBDepth is the native return-stack-buffer depth, 0 when the
	// backend models none.
	RSBDepth int `json:"rsb_depth,omitempty"`
}

// healthInfo is GET /v1/healthz. The HTTP status is always 200 while
// the daemon is up — cluster liveness probes key off the status code —
// so SLO burn is reported in the body, never as a 5xx.
type healthInfo struct {
	Status      string      `json:"status"`
	UptimeSec   float64     `json:"uptime_sec"`
	CodeVersion string      `json:"code_version"`
	Jobs        int         `json:"jobs"`
	Cache       store.Stats `json:"cache"`
	// SLOHealthy is present only when SLO tracking is enabled; Status
	// degrades to "burning" when any objective's budget is exhausted or
	// fast-burning.
	SLOHealthy *bool    `json:"slo_healthy,omitempty"`
	SLOBurning []string `json:"slo_burning,omitempty"`
}

// errorBody is every non-2xx JSON payload.
type errorBody struct {
	Error string `json:"error"`
	// RetryAfterSec mirrors the Retry-After header on 429 responses so
	// JSON-only clients see the backoff hint too.
	RetryAfterSec int `json:"retry_after_sec,omitempty"`
}

// newHandler builds the daemon's routed handler. maxConcurrent bounds
// simultaneously served API requests (pprof is exempt so profiling
// stays possible under saturation); reqTimeout bounds API handler time;
// readTimeout bounds how long a request body may take to arrive.
func newHandler(a *api, maxConcurrent int, reqTimeout, readTimeout time.Duration) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", a.handleHealthz)
	mux.HandleFunc("GET /v1/version", a.handleVersion)
	mux.HandleFunc("GET /v1/metrics", a.handleMetrics)
	mux.HandleFunc("GET /v1/experiments", a.handleExperiments)
	mux.HandleFunc("GET /v1/backends", a.handleBackends)
	mux.HandleFunc("POST /v1/jobs", a.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", a.handleJobList)
	mux.HandleFunc("GET /v1/jobs/{id}", a.handleJobGet)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", a.handleJobTrace)
	mux.HandleFunc("DELETE /v1/jobs/{id}", a.handleJobCancel)
	mux.HandleFunc("GET /v1/profilez", a.handleProfilez)
	mux.HandleFunc("GET /v1/slo", a.handleSLO)
	if a.cluster != nil {
		a.cluster.RegisterRoutes(mux)
	}

	var limited http.Handler = a.instrument(mux)
	if reqTimeout > 0 {
		limited = http.TimeoutHandler(limited, reqTimeout, `{"error":"request timed out"}`)
	}
	if maxConcurrent > 0 {
		sem := make(chan struct{}, maxConcurrent)
		inner := limited
		limited = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
				inner.ServeHTTP(w, r)
			default:
				writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "server at concurrency limit"})
			}
		})
	}
	// The read deadline must be the OUTERMOST wrapper: it reaches the
	// connection through ResponseController, and http.TimeoutHandler's
	// writer does not implement Unwrap, so setting it any deeper fails
	// silently. With it in place a slow-loris peer trickling a request
	// body is cut off at the deadline instead of pinning a handler
	// goroutine (and one slot of the concurrency semaphore) forever.
	if readTimeout > 0 {
		inner := limited
		limited = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			rc := http.NewResponseController(w)
			rc.SetReadDeadline(time.Now().Add(readTimeout))
			inner.ServeHTTP(w, r)
		})
	}

	root := http.NewServeMux()
	root.Handle("/v1/", limited)
	root.HandleFunc("/debug/pprof/", pprof.Index)
	root.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	root.HandleFunc("/debug/pprof/profile", pprof.Profile)
	root.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	root.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return root
}

// instrument wraps the API mux with a request counter and an in-flight
// gauge. With no metrics registry both instruments are nil no-ops.
func (a *api) instrument(next http.Handler) http.Handler {
	requests := a.metrics.Counter("http_requests_total", "API requests served")
	inFlight := a.metrics.Gauge("http_requests_in_flight", "API requests currently being served")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Inc()
		inFlight.Inc()
		defer inFlight.Dec()
		next.ServeHTTP(w, r)
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (a *api) handleHealthz(w http.ResponseWriter, r *http.Request) {
	var cs store.Stats
	if a.store != nil {
		cs = a.store.Stats()
	}
	h := healthInfo{
		Status:      "ok",
		UptimeSec:   time.Since(a.start).Seconds(),
		CodeVersion: registry.CodeVersion,
		Jobs:        len(a.engine.List()),
		Cache:       cs,
	}
	if a.slo != nil {
		ok := a.slo.Healthy()
		h.SLOHealthy = &ok
		if !ok {
			h.Status = "burning"
			h.SLOBurning = a.slo.Burning()
		}
	}
	writeJSON(w, http.StatusOK, h)
}

// versionInfo is GET /v1/version: enough to correlate a running binary
// with its metrics and cache keys.
type versionInfo struct {
	CodeVersion string `json:"code_version"`
	GoVersion   string `json:"go_version"`
	Module      string `json:"module,omitempty"`
	VCSRevision string `json:"vcs_revision,omitempty"`
	VCSTime     string `json:"vcs_time,omitempty"`
	VCSModified bool   `json:"vcs_modified,omitempty"`
}

func (a *api) handleVersion(w http.ResponseWriter, r *http.Request) {
	v := versionInfo{CodeVersion: registry.CodeVersion}
	if bi, ok := debug.ReadBuildInfo(); ok {
		v.GoVersion = bi.GoVersion
		v.Module = bi.Main.Path
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				v.VCSRevision = s.Value
			case "vcs.time":
				v.VCSTime = s.Value
			case "vcs.modified":
				v.VCSModified = s.Value == "true"
			}
		}
	}
	writeJSON(w, http.StatusOK, v)
}

// handleMetrics serves the metrics registry: Prometheus text exposition
// by default, the JSON snapshot with ?format=json.
func (a *api) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if a.metrics == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "metrics disabled"})
		return
	}
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		a.metrics.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	a.metrics.WritePrometheus(w)
}

// handleJobTrace serves a job's attack-pipeline trace: Chrome
// trace_event JSON by default (load at chrome://tracing), NDJSON with
// ?format=ndjson.
//
// Clustered, the job's trace ID keys fragments on every node that
// touched the job (submit/forward/steal/adopt), so the handler
// assembles one merged timeline via the cluster trace collector. A
// node that does not hold the job locally — e.g. the entry node that
// accepted-and-forwarded it — proxies the request one hop to the node
// that does (?proxied=1 caps the chain, no loops).
func (a *api) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	view, ok := a.engine.Get(id)
	if !ok {
		if a.cluster != nil && r.URL.Query().Get("proxied") == "" {
			if peer, routed := a.cluster.RouteJob(id); routed && a.cluster.ProxyJobTrace(w, r, peer, id) {
				return
			}
		}
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	tr, ok := a.engine.Trace(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no trace for job (tracing disabled, or job served from cache)"})
		return
	}
	var frags []obs.TraceFragment
	if a.cluster != nil && view.TraceID != "" {
		frags = a.cluster.CollectTrace(view.TraceID)
	}
	if len(frags) == 0 {
		frags = []obs.TraceFragment{tr.Fragment(a.nodeName(), view.TraceID)}
	}
	if r.URL.Query().Get("format") == "ndjson" {
		w.Header().Set("Content-Type", "application/x-ndjson")
		obs.WriteNDJSONMerged(w, frags)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	obs.WriteChromeMerged(w, frags)
}

// profilezInfo is GET /v1/profilez: the live sample plus the ring of
// recent interval deltas from the continuous profiler.
type profilezInfo struct {
	IntervalSec float64             `json:"interval_sec"`
	Current     obs.ProfileSample   `json:"current"`
	Samples     []obs.ProfileSample `json:"samples"`
}

func (a *api) handleProfilez(w http.ResponseWriter, r *http.Request) {
	if a.profiler == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "continuous profiling disabled"})
		return
	}
	n := 0 // 0 = everything retained in the ring
	if s := r.URL.Query().Get("n"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "n must be a non-negative integer"})
			return
		}
		n = v
	}
	writeJSON(w, http.StatusOK, profilezInfo{
		IntervalSec: a.profiler.Interval().Seconds(),
		Current:     a.profiler.Peek(),
		Samples:     a.profiler.Samples(n),
	})
}

// sloInfo is GET /v1/slo: every objective's rolling-window attainment
// and burn rates.
type sloInfo struct {
	WindowSec  float64         `json:"window_sec"`
	Healthy    bool            `json:"healthy"`
	Objectives []obs.SLOStatus `json:"objectives"`
}

func (a *api) handleSLO(w http.ResponseWriter, r *http.Request) {
	if a.slo == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "SLO tracking disabled"})
		return
	}
	writeJSON(w, http.StatusOK, sloInfo{
		WindowSec:  a.slo.Window().Seconds(),
		Healthy:    a.slo.Healthy(),
		Objectives: a.slo.Report(),
	})
}

func (a *api) handleExperiments(w http.ResponseWriter, r *http.Request) {
	list := a.reg.List()
	out := make([]experimentInfo, 0, len(list))
	for _, e := range list {
		out = append(out, experimentInfo{Name: e.Name, Description: e.Description, Params: e.Params})
	}
	writeJSON(w, http.StatusOK, out)
}

func (a *api) handleBackends(w http.ResponseWriter, r *http.Request) {
	list := uarch.List()
	out := make([]backendInfo, 0, len(list))
	for _, b := range list {
		info := backendInfo{
			Name:            b.Name(),
			Description:     b.Description(),
			Default:         b.Name() == uarch.DefaultName,
			BTBSets:         b.BTB().Sets,
			BTBWays:         b.BTB().Ways,
			TagTopBit:       b.BTB().TagTopBit,
			FalseHitDealloc: b.FalseHitDealloc(),
		}
		if rc, ok := b.RSB(); ok {
			info.RSBDepth = rc.Depth
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

func (a *api) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req jobs.Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	// Join a distributed trace started elsewhere: the forwarding hop
	// (and any tracing-aware client) carries the trace ID in a header.
	if t := r.Header.Get(cluster.TraceHeader); t != "" && req.TraceID == "" {
		req.TraceID = t
	}
	// Cluster routing: hand the submission to its ring owner unless it
	// already hopped once (?forwarded=1 caps the chain at one hop) or the
	// owner is this node/unreachable, in which case local execution is
	// the degraded-but-correct fallback.
	if a.cluster != nil && r.URL.Query().Get("forwarded") == "" {
		if status, body, peer, ok := a.cluster.ForwardSubmit(req); ok {
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("X-Nightvision-Forwarded-To", peer)
			w.WriteHeader(status)
			w.Write(body)
			return
		}
	}
	view, err := a.engine.Submit(req)
	switch {
	case jobs.Overloaded(err):
		// Load shed (queue depth or in-flight byte budget): retryable,
		// unlike the terminal 503 below for a draining daemon. The
		// backoff hint is the estimated backlog drain time, not a
		// constant — a deep queue earns a longer retry.
		sec := retryAfterSec(a.engine.Depth(), a.engine.DrainRate())
		w.Header().Set("Retry-After", strconv.Itoa(sec))
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error(), RetryAfterSec: sec})
		return
	case errors.Is(err, jobs.ErrShutdown):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+view.ID)
	status := http.StatusAccepted
	if view.State.Terminal() {
		status = http.StatusOK // cache hit: already done
	}
	writeJSON(w, status, view)
}

// retryAfterSec estimates how long a shed client should wait before
// retrying: the time to drain the current backlog at the recently
// observed completion rate, clamped to [1, 60] seconds. A cold or
// stalled engine (no recent completions) is floored at 0.2 jobs/s so
// the hint stays finite and conservative rather than zero-dividing.
func retryAfterSec(depth int, rate float64) int {
	if rate < 0.2 {
		rate = 0.2
	}
	sec := int(math.Ceil(float64(depth) / rate))
	if sec < 1 {
		sec = 1
	}
	if sec > 60 {
		sec = 60
	}
	return sec
}

func (a *api) handleJobList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, a.engine.List())
}

func (a *api) handleJobGet(w http.ResponseWriter, r *http.Request) {
	view, ok := a.engine.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, view)
}

func (a *api) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	view, err := a.engine.Cancel(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, view)
}
