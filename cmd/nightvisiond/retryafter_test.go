package main

// Satellite 1: the 429 Retry-After value is derived from the queue's
// actual depth and drain rate instead of the old hardcoded "1", and the
// same number rides in the JSON body so clients need not parse headers.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/obs"
)

func TestRetryAfterSecFormula(t *testing.T) {
	cases := []struct {
		depth int
		rate  float64
		want  int
	}{
		{0, 0, 1},     // empty queue: retry immediately
		{1, 0, 5},     // no drain signal yet: rate floored at 0.2/s
		{10, 2, 5},    // 10 queued at 2/s
		{3, 10, 1},    // fast drain clamps up to the 1s floor
		{10, 0.1, 50}, // sub-floor rates use the floor
		{1000, 1, 60}, // pathological backlog clamps at 60s
		{7, 0.5, 14},  // plain ceil(depth/rate)
		{-3, 1, 1},    // defensive: negative depth never goes below 1
	}
	for _, c := range cases {
		if got := retryAfterSec(c.depth, c.rate); got != c.want {
			t.Errorf("retryAfterSec(%d, %v) = %d, want %d", c.depth, c.rate, got, c.want)
		}
	}
}

// TestShedRetryAfterDerived: with one job running, one queued, and no
// completions yet (depth 1, rate 0 → floored to 0.2/s), the shed
// response must say 5 seconds in both the header and the body.
func TestShedRetryAfterDerived(t *testing.T) {
	reg, gate := gateRegistry(t)
	defer close(gate)
	metrics := obs.NewRegistry()
	engine := jobs.New(jobs.Config{Registry: reg, Workers: 1, QueueDepth: 1, Obs: metrics})
	a := &api{engine: engine, reg: reg, metrics: metrics, start: time.Now()}
	srv := httptest.NewServer(newHandler(a, 16, 30*time.Second, time.Minute))
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		engine.Shutdown(ctx)
	})

	var v jobs.View
	if code := postJSON(t, srv.URL+"/v1/jobs", `{"experiment":"block","params":{"n":1}}`, &v); code != http.StatusAccepted {
		t.Fatalf("first submit: status %d", code)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, _ := engine.Get(v.ID)
		if got.State == jobs.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if code := postJSON(t, srv.URL+"/v1/jobs", `{"experiment":"block","params":{"n":2}}`, &v); code != http.StatusAccepted {
		t.Fatalf("second submit: status %d", code)
	}

	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"experiment":"block","params":{"n":3}}`))
	if err != nil {
		t.Fatal(err)
	}
	var e errorBody
	json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed submit: status %d, want 429 (%+v)", resp.StatusCode, e)
	}
	// Depth 1, zero completions so far → ceil(1/0.2) = 5, deterministic.
	if ra := resp.Header.Get("Retry-After"); ra != "5" {
		t.Fatalf("Retry-After header %q, want \"5\"", ra)
	}
	if e.RetryAfterSec != 5 {
		t.Fatalf("retry_after_sec in body = %d, want 5 (%+v)", e.RetryAfterSec, e)
	}
}
