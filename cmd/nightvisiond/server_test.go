package main

// In-process end-to-end tests of the daemon surface: the same
// submit → poll → cache-hit flow scripts/daemon_smoke.sh drives against
// the real binary in CI.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/store"
	"repro/internal/uarch"
)

func newTestServer(t *testing.T) (*httptest.Server, *jobs.Engine, *store.Store) {
	t.Helper()
	st, err := store.New(64, "")
	if err != nil {
		t.Fatal(err)
	}
	reg := registry.Experiments()
	metrics := obs.NewRegistry()
	st.Instrument(metrics)
	engine := jobs.New(jobs.Config{Registry: reg, Store: st, Workers: 2, Obs: metrics, Tracing: true})
	a := &api{engine: engine, reg: reg, store: st, metrics: metrics, start: time.Now()}
	srv := httptest.NewServer(newHandler(a, 16, 30*time.Second, time.Minute))
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		engine.Shutdown(ctx)
	})
	return srv, engine, st
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, url string, body string, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp.StatusCode
}

func pollDone(t *testing.T, base, id string) jobs.View {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var v jobs.View
		if code := getJSON(t, base+"/v1/jobs/"+id, &v); code != http.StatusOK {
			t.Fatalf("GET job: status %d", code)
		}
		if v.State.Terminal() {
			return v
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("job never finished")
	return jobs.View{}
}

func TestHealthzAndExperiments(t *testing.T) {
	srv, _, _ := newTestServer(t)

	var h healthInfo
	if code := getJSON(t, srv.URL+"/v1/healthz", &h); code != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthz: %d %+v", code, h)
	}
	if h.CodeVersion != registry.CodeVersion {
		t.Fatalf("healthz code version %q", h.CodeVersion)
	}

	var exps []experimentInfo
	if code := getJSON(t, srv.URL+"/v1/experiments", &exps); code != http.StatusOK {
		t.Fatalf("experiments: %d", code)
	}
	if len(exps) != len(registry.Experiments().List()) {
		t.Fatalf("experiments listed %d, want %d", len(exps), len(registry.Experiments().List()))
	}
	for _, e := range exps {
		if e.Name == "" || e.Description == "" || len(e.Params) == 0 {
			t.Fatalf("incomplete experiment row: %+v", e)
		}
	}
}

// TestBackendsEndpoint: GET /v1/backends lists every registered
// microarchitecture backend with its geometry, and flags the default.
func TestBackendsEndpoint(t *testing.T) {
	srv, _, _ := newTestServer(t)
	var rows []backendInfo
	if code := getJSON(t, srv.URL+"/v1/backends", &rows); code != http.StatusOK {
		t.Fatalf("backends: status %d", code)
	}
	if len(rows) != len(uarch.Names()) {
		t.Fatalf("backends listed %d, want %d", len(rows), len(uarch.Names()))
	}
	var sawDefault bool
	for _, b := range rows {
		if b.Name == "" || b.Description == "" || b.BTBSets == 0 || b.BTBWays == 0 {
			t.Fatalf("incomplete backend row: %+v", b)
		}
		if b.Default {
			if b.Name != uarch.DefaultName {
				t.Fatalf("default flag on %q, want %q", b.Name, uarch.DefaultName)
			}
			sawDefault = true
		}
	}
	if !sawDefault {
		t.Fatal("no backend flagged as default")
	}
}

// TestSubmitBackendKeys: the backend parameter separates cache keys —
// the same experiment/config/seed on intel-skylake vs arm resolves to
// distinct store keys, while resubmitting the same backend is a cache
// hit. An unknown backend is rejected with 400 listing the known names.
func TestSubmitBackendKeys(t *testing.T) {
	srv, _, _ := newTestServer(t)
	submit := func(backend string) jobs.View {
		t.Helper()
		body := fmt.Sprintf(`{"experiment":"fig2","params":{"iters":2,"backend":%q},"seed":23}`, backend)
		var v jobs.View
		code := postJSON(t, srv.URL+"/v1/jobs", body, &v)
		if code != http.StatusAccepted && code != http.StatusOK {
			t.Fatalf("submit backend=%s: status %d", backend, code)
		}
		return pollDone(t, srv.URL, v.ID)
	}
	sky := submit("intel-skylake")
	arm := submit("arm")
	if sky.Key == arm.Key {
		t.Fatalf("intel-skylake and arm share store key %s", sky.Key)
	}
	if again := submit("arm"); !again.FromCache || again.Key != arm.Key {
		t.Fatalf("arm resubmit not a cache hit: %+v", again)
	}

	var e errorBody
	body := `{"experiment":"fig2","params":{"iters":2,"backend":"m88k"},"seed":23}`
	if code := postJSON(t, srv.URL+"/v1/jobs", body, &e); code != http.StatusBadRequest {
		t.Fatalf("unknown backend: status %d", code)
	}
	if !strings.Contains(e.Error, "intel-skylake") || !strings.Contains(e.Error, "arm") {
		t.Fatalf("unknown-backend error does not list backends: %q", e.Error)
	}
}

// TestSubmitPollCacheHit is the smoke-test flow: submit a small fig2
// job, poll to done, submit the identical request, and require a cache
// hit with byte-identical result and an advanced hit counter.
func TestSubmitPollCacheHit(t *testing.T) {
	srv, _, st := newTestServer(t)
	body := `{"experiment":"fig2","params":{"iters":2},"seed":11}`

	var v1 jobs.View
	if code := postJSON(t, srv.URL+"/v1/jobs", body, &v1); code != http.StatusAccepted {
		t.Fatalf("first submit: status %d (%+v)", code, v1)
	}
	v1 = pollDone(t, srv.URL, v1.ID)
	if v1.State != jobs.StateDone || v1.FromCache || len(v1.Result) == 0 {
		t.Fatalf("first job: %+v", v1)
	}

	var v2 jobs.View
	if code := postJSON(t, srv.URL+"/v1/jobs", body, &v2); code != http.StatusOK {
		t.Fatalf("second submit: status %d", code)
	}
	if !v2.FromCache || v2.State != jobs.StateDone {
		t.Fatalf("second submit not a cache hit: %+v", v2)
	}
	if !bytes.Equal(v1.Result, v2.Result) {
		t.Fatal("cache-hit bytes differ from cold run")
	}
	if v1.Key != v2.Key {
		t.Fatalf("keys differ: %s vs %s", v1.Key, v2.Key)
	}
	if st.Stats().Hits == 0 {
		t.Fatal("store hit counter did not advance")
	}

	var list []jobs.View
	if code := getJSON(t, srv.URL+"/v1/jobs", &list); code != http.StatusOK || len(list) != 2 {
		t.Fatalf("job list: %d entries", len(list))
	}
}

func TestSubmitValidation(t *testing.T) {
	srv, _, _ := newTestServer(t)
	cases := []string{
		`{"experiment":"nope"}`,
		`{"experiment":"fig2","params":{"bogus":1}}`,
		`{"experiment":"fig2","params":{"iters":-3}}`,
		`not json`,
		`{"experiment":"fig2","unknown_field":true}`,
	}
	for _, body := range cases {
		var e errorBody
		if code := postJSON(t, srv.URL+"/v1/jobs", body, &e); code != http.StatusBadRequest || e.Error == "" {
			t.Errorf("submit %s: status %d, error %q", body, code, e.Error)
		}
	}

	var e errorBody
	if code := getJSON(t, srv.URL+"/v1/jobs/job-999", &e); code != http.StatusNotFound {
		t.Fatalf("missing job: status %d", code)
	}
}

func TestCancelEndpoint(t *testing.T) {
	srv, _, _ := newTestServer(t)
	// Fill both workers plus the queue with slow jobs, then cancel a
	// queued one.
	var ids []string
	for i := 0; i < 3; i++ {
		var v jobs.View
		body := fmt.Sprintf(`{"experiment":"robustness","params":{"iters":1,"runs":2},"seed":%d}`, 100+i)
		if code := postJSON(t, srv.URL+"/v1/jobs", body, &v); code != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, code)
		}
		ids = append(ids, v.ID)
	}
	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+ids[2], nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var v jobs.View
	json.NewDecoder(resp.Body).Decode(&v)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}
	if final := pollDone(t, srv.URL, ids[2]); final.State != jobs.StateCanceled && final.State != jobs.StateDone {
		t.Fatalf("canceled job state %s", final.State)
	}
	for _, id := range ids[:2] {
		pollDone(t, srv.URL, id)
	}
}

func TestPprofServed(t *testing.T) {
	srv, _, _ := newTestServer(t)
	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index: status %d", resp.StatusCode)
	}
}

func TestVersionEndpoint(t *testing.T) {
	srv, _, _ := newTestServer(t)
	var v versionInfo
	if code := getJSON(t, srv.URL+"/v1/version", &v); code != http.StatusOK {
		t.Fatalf("version: status %d", code)
	}
	if v.CodeVersion != registry.CodeVersion {
		t.Fatalf("version reports %q, want %q", v.CodeVersion, registry.CodeVersion)
	}
	if v.GoVersion == "" {
		t.Fatal("version missing go_version")
	}
}

// TestMetricsEndpoint drives the submit → cache-hit flow and checks
// both metric formats see it: Prometheus text with the counters the
// smoke script scrapes, and the JSON snapshot.
func TestMetricsEndpoint(t *testing.T) {
	srv, _, _ := newTestServer(t)
	body := `{"experiment":"fig2","params":{"iters":2},"seed":31}`
	var v jobs.View
	if code := postJSON(t, srv.URL+"/v1/jobs", body, &v); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	pollDone(t, srv.URL, v.ID)
	if code := postJSON(t, srv.URL+"/v1/jobs", body, &v); code != http.StatusOK || !v.FromCache {
		t.Fatalf("resubmit: status %d, %+v", code, v)
	}

	resp, err := http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d, err %v", resp.StatusCode, err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	for _, want := range []string{
		"# TYPE store_cache_hits_total counter",
		"store_cache_hits_total 1",
		"jobs_submitted_total 2",
		`jobs_completed_total{state="done"} 2`,
		"# TYPE job_duration_seconds histogram",
		"btb_lookups_total",
		"cpu_fetch_windows_total",
		"http_requests_total",
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("metrics text missing %q", want)
		}
	}

	var snap []obs.MetricSnapshot
	if code := getJSON(t, srv.URL+"/v1/metrics?format=json", &snap); code != http.StatusOK {
		t.Fatalf("metrics json: status %d", code)
	}
	if len(snap) == 0 {
		t.Fatal("metrics json snapshot empty")
	}
	found := false
	for _, m := range snap {
		if m.Name == "store_cache_hits_total" && m.Value != nil && *m.Value == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("store_cache_hits_total missing from JSON snapshot")
	}
}

// chromeTrace is the shape chrome://tracing loads.
type chromeTrace struct {
	TraceEvents []struct {
		Name  string `json:"name"`
		Phase string `json:"ph"`
		Cat   string `json:"cat"`
	} `json:"traceEvents"`
}

// TestJobTraceEndpoint: an executed leak job serves a loadable Chrome
// trace with the attack-pipeline events; a cache-hit job (nothing ran)
// serves 404.
func TestJobTraceEndpoint(t *testing.T) {
	srv, _, _ := newTestServer(t)
	body := `{"experiment":"leak","params":{"iters":1,"runs":1},"seed":17}`
	var v jobs.View
	if code := postJSON(t, srv.URL+"/v1/jobs", body, &v); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	pollDone(t, srv.URL, v.ID)

	var tr chromeTrace
	if code := getJSON(t, srv.URL+"/v1/jobs/"+v.ID+"/trace", &tr); code != http.StatusOK {
		t.Fatalf("trace: status %d", code)
	}
	if len(tr.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	names := map[string]bool{}
	for _, ev := range tr.TraceEvents {
		names[ev.Name] = true
	}
	for _, want := range []string{"prime", "victim", "probe"} {
		if !names[want] {
			t.Errorf("trace missing %q events (have %v)", want, names)
		}
	}

	resp, err := http.Get(srv.URL + "/v1/jobs/" + v.ID + "/trace?format=ndjson")
	if err != nil {
		t.Fatal(err)
	}
	nd, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("ndjson trace: status %d, err %v", resp.StatusCode, err)
	}
	first, _, _ := strings.Cut(strings.TrimSpace(string(nd)), "\n")
	var line map[string]any
	if err := json.Unmarshal([]byte(first), &line); err != nil {
		t.Fatalf("ndjson first line not JSON: %v", err)
	}

	// Cache hit: the job never ran, so there is no trace.
	var v2 jobs.View
	if code := postJSON(t, srv.URL+"/v1/jobs", body, &v2); code != http.StatusOK || !v2.FromCache {
		t.Fatalf("resubmit: status %d, %+v", code, v2)
	}
	var e errorBody
	if code := getJSON(t, srv.URL+"/v1/jobs/"+v2.ID+"/trace", &e); code != http.StatusNotFound {
		t.Fatalf("cache-hit trace: status %d, want 404", code)
	}
	if code := getJSON(t, srv.URL+"/v1/jobs/job-999/trace", &e); code != http.StatusNotFound {
		t.Fatalf("unknown-job trace: status %d, want 404", code)
	}
}

func TestConcurrencyLimit(t *testing.T) {
	st, err := store.New(4, "")
	if err != nil {
		t.Fatal(err)
	}
	reg := registry.Experiments()
	engine := jobs.New(jobs.Config{Registry: reg, Store: st, Workers: 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		engine.Shutdown(ctx)
	}()
	a := &api{engine: engine, reg: reg, store: st, start: time.Now()}
	// Limit of 1 concurrent request: a handler that itself issues a
	// request would deadlock, so instead saturate with a slow-reading
	// client. Simpler: limit 0 disables the limiter; limit 1 plus two
	// parallel requests must never 500 — one may 503.
	srv := httptest.NewServer(newHandler(a, 1, time.Second, time.Minute))
	defer srv.Close()

	errs := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Get(srv.URL + "/v1/healthz")
			if err != nil {
				errs <- -1
				return
			}
			resp.Body.Close()
			errs <- resp.StatusCode
		}()
	}
	for i := 0; i < 2; i++ {
		code := <-errs
		if code != http.StatusOK && code != http.StatusServiceUnavailable {
			t.Fatalf("unexpected status %d", code)
		}
	}
}
