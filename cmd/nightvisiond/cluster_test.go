package main

// Multi-node daemon tests: three full in-process nightvisiond stacks
// (engine + journal-on-FaultFS + store + cluster node + HTTP server)
// wired into one ring. Ports come from httptest's unstarted servers, so
// the peer table is known before any node boots. The chaos test is the
// PR's acceptance criterion: kill a random node at a random point
// mid-sweep and prove every job reaches exactly one terminal state with
// result bytes identical to a single-node run.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/jobs"
	"repro/internal/journal"
	"repro/internal/nvrand"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/store"
)

type computeResult struct {
	V uint64 `json:"v"`
}

func (c computeResult) Human() string { return fmt.Sprint(c.V) }

// clusterRegistry builds the cluster tests' experiment set:
//   - compute: instant, value derived only from (seed, n)
//   - work:    same value after a few ms (builds real backlog; timing
//     never enters the bytes)
//   - block:   parks on the returned gate (honoring cancellation)
func clusterRegistry() (*registry.Registry, chan struct{}) {
	gate := make(chan struct{})
	value := func(seed uint64, n int) uint64 {
		return nvrand.SplitAt(seed, uint64(n)).Uint64()
	}
	nParam := []registry.Param{{Name: "n", Kind: registry.Int, Default: 0}}
	r := registry.New()
	r.Register(registry.Experiment{
		Name: "compute", Params: nParam,
		Run: func(rc registry.RunContext) (registry.Result, error) {
			return computeResult{V: value(rc.Seed, rc.Values.Int("n"))}, nil
		},
	})
	r.Register(registry.Experiment{
		Name: "work", Params: nParam,
		Run: func(rc registry.RunContext) (registry.Result, error) {
			time.Sleep(3 * time.Millisecond)
			return computeResult{V: value(rc.Seed, rc.Values.Int("n"))}, nil
		},
	})
	r.Register(registry.Experiment{
		Name: "block", Params: nParam,
		Run: func(rc registry.RunContext) (registry.Result, error) {
			select {
			case <-gate:
				return computeResult{V: 1}, nil
			case <-rc.Ctx.Done():
				return nil, rc.Ctx.Err()
			}
		},
	})
	return r, gate
}

// keyFor replicates the engine's key derivation for a request.
func keyFor(t *testing.T, reg *registry.Registry, req jobs.Request) string {
	t.Helper()
	exp, ok := reg.Get(req.Experiment)
	if !ok {
		t.Fatalf("unknown experiment %q", req.Experiment)
	}
	values, err := exp.Resolve(req.Params)
	if err != nil {
		t.Fatal(err)
	}
	canon, err := exp.CanonicalConfig(values)
	if err != nil {
		t.Fatal(err)
	}
	return store.Key(exp.Name, canon, req.Seed, registry.CodeVersion)
}

// testNode is one in-process daemon stack.
type testNode struct {
	id      string
	dir     string
	fs      *chaos.FaultFS
	jn      *journal.Journal
	st      *store.Store
	engine  *jobs.Engine
	node    *cluster.Node
	metrics *obs.Registry
	srv     *httptest.Server
	reg     *registry.Registry
	gate    chan struct{}
	killed  bool
}

func (n *testNode) url() string { return n.srv.URL }

type clusterOpts struct {
	workers        int
	tick           time.Duration
	stealThreshold int
	segmentBytes   int
	// obsOff boots the fleet with every observability surface disabled
	// (no tracing, no profiler, no SLO tracker) — the invariance tests
	// prove result bytes are identical either way.
	obsOff bool
	// base, when set, supplies each node's peer-traffic RoundTripper —
	// the partition-chaos tests inject a netchaos transport here.
	base func(id string) http.RoundTripper
	// seed feeds each node's deterministic retry-backoff jitter.
	seed uint64
	// retries overrides the transport retry count (0 keeps the default).
	retries int
}

// startCluster boots len(ids) nodes into one ring and returns them
// keyed by ID. Cleanup tears down every still-alive node.
func startCluster(t *testing.T, ids []string, o clusterOpts) map[string]*testNode {
	t.Helper()
	if o.workers == 0 {
		o.workers = 2
	}
	if o.tick == 0 {
		o.tick = 25 * time.Millisecond
	}
	if o.segmentBytes == 0 {
		o.segmentBytes = 512
	}
	servers := make(map[string]*httptest.Server, len(ids))
	addrs := make(map[string]string, len(ids))
	for _, id := range ids {
		srv := httptest.NewUnstartedServer(nil)
		servers[id] = srv
		addrs[id] = srv.Listener.Addr().String()
	}
	nodes := make(map[string]*testNode, len(ids))
	for _, id := range ids {
		nodes[id] = bootNode(t, id, t.TempDir(), addrs, servers[id], o)
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			if n.killed {
				continue
			}
			n.node.Stop()
			n.srv.Close()
			select {
			case <-n.gate:
			default:
				close(n.gate)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			n.engine.Shutdown(ctx)
			cancel()
			n.jn.Close()
		}
	})
	return nodes
}

// bootNode assembles one node over dir and starts its server + loops.
func bootNode(t *testing.T, id, dir string, addrs map[string]string, srv *httptest.Server, o clusterOpts) *testNode {
	t.Helper()
	fs := chaos.NewFaultFS(nil)
	jn, err := journal.Open(filepath.Join(dir, "journal"), journal.Options{FS: fs, SegmentBytes: o.segmentBytes})
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.New(256, filepath.Join(dir, "cache"), store.WithFS(fs))
	if err != nil {
		t.Fatal(err)
	}
	reg, gate := clusterRegistry()
	metrics := obs.NewRegistry()
	st.Instrument(metrics)
	engine := jobs.New(jobs.Config{
		Registry: reg, NodeID: id, Store: st, Journal: jn,
		Workers: o.workers, QueueDepth: 64, Obs: metrics,
		Tracing: !o.obsOff,
	})
	var base http.RoundTripper
	if o.base != nil {
		base = o.base(id)
	}
	node, err := cluster.New(cluster.Config{
		Self: id, Peers: addrs,
		Engine: engine, Registry: reg, Store: st, Journal: jn,
		ReplicaDir: filepath.Join(dir, "replica"), Obs: metrics,
		HealthInterval: o.tick, ShipInterval: o.tick, StealInterval: o.tick,
		StealThreshold: o.stealThreshold, StealTimeout: 40 * o.tick,
		AttemptTimeout: 2 * time.Second,
		BackoffBase:    5 * time.Millisecond, BackoffMax: 50 * time.Millisecond,
		Retries: o.retries, Seed: o.seed, Base: base,
	})
	if err != nil {
		t.Fatal(err)
	}
	engine.SetRemoteGet(node.ReadThrough)
	a := &api{engine: engine, reg: reg, store: st, metrics: metrics, cluster: node, nodeID: id, start: time.Now()}
	if !o.obsOff {
		// The full observability surface rides along in every cluster
		// test: profiling and SLO tracking must never change job bytes.
		a.profiler = obs.NewProfiler(metrics, time.Second, 16)
		a.profiler.Start()
		t.Cleanup(a.profiler.Stop)
		a.slo = obs.NewSLOTracker(metrics, time.Hour, 0)
		a.slo.Add(obs.LatencyObjective("queue_latency_p99",
			metrics.Histogram("job_queue_latency_seconds", "time jobs spent queued before a worker picked them up", obs.DefaultDurationBuckets()),
			5, 0.99))
		a.slo.Add(obs.ErrorRateObjective("job_success",
			metrics.CounterL("jobs_completed_total", "jobs reaching a terminal state, by state", obs.Labels{"state": "failed"}),
			metrics.Counter("jobs_submitted_total", "job submissions accepted (including cache hits)"),
			0.95))
		a.slo.Start()
		t.Cleanup(a.slo.Stop)
	}
	srv.Config.Handler = newHandler(a, 64, 30*time.Second, time.Minute)
	srv.Start()
	node.Start()
	return &testNode{
		id: id, dir: dir, fs: fs, jn: jn, st: st, engine: engine,
		node: node, metrics: metrics, srv: srv, reg: reg, gate: gate,
	}
}

// kill simulates kill -9: the filesystem freezes first (no further
// durable writes, exactly as if the process died), then the HTTP
// listener drops (peers see connection refused) and the in-process
// goroutines are reaped for test hygiene.
func (n *testNode) kill() {
	n.killed = true
	n.fs.SetHook(chaos.FreezeAfter(0))
	n.node.Stop()
	n.srv.CloseClientConnections()
	n.srv.Close()
	select {
	case <-n.gate:
	default:
		close(n.gate)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	n.engine.Shutdown(ctx) // best effort; the frozen journal saw none of it
	cancel()
	n.jn.Close()
}

// counterSum sums every series of a counter family.
func counterSum(m *obs.Registry, name string) uint64 {
	var sum uint64
	for _, s := range m.Snapshot() {
		if s.Name == name && s.Value != nil {
			sum += *s.Value
		}
	}
	return sum
}

// assertExactlyOnce: every job on the node is terminal and the
// terminal-transition counter matches the job count — each job
// transitioned exactly once.
func assertExactlyOnce(t *testing.T, n *testNode) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		views := n.engine.List()
		allDone := true
		for _, v := range views {
			if !v.State.Terminal() {
				allDone = false
			}
		}
		if allDone {
			if got, want := counterSum(n.metrics, "jobs_completed_total"), uint64(len(views)); got != want {
				t.Fatalf("node %s: %d terminal transitions for %d jobs", n.id, got, want)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("node %s: jobs never all terminal: %+v", n.id, views)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// getBody fetches a URL, returning status and raw body.
func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		return 0, nil
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

// referenceRun computes the sweep single-node: the byte-identity
// ground truth every cluster scenario is compared against.
func referenceRun(t *testing.T, reqs []jobs.Request) map[string][]byte {
	t.Helper()
	reg, gate := clusterRegistry()
	defer close(gate)
	e := jobs.New(jobs.Config{Registry: reg, Workers: 2})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		e.Shutdown(ctx)
	}()
	out := make(map[string][]byte, len(reqs))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, req := range reqs {
		v, err := e.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		final, err := e.Wait(ctx, v.ID)
		if err != nil {
			t.Fatal(err)
		}
		if final.State != jobs.StateDone {
			t.Fatalf("reference job %+v: %s %s", req, final.State, final.Error)
		}
		out[final.Key] = append([]byte(nil), final.Result...)
	}
	return out
}

func TestClusterStatusEndpoint(t *testing.T) {
	ids := []string{"n1", "n2", "n3"}
	nodes := startCluster(t, ids, clusterOpts{})
	for _, id := range ids {
		var st struct {
			Self      string `json:"self"`
			Successor string `json:"successor"`
			Peers     []struct {
				ID    string `json:"id"`
				Alive bool   `json:"alive"`
				Self  bool   `json:"self"`
			} `json:"peers"`
		}
		if code := getJSON(t, nodes[id].url()+"/v1/cluster", &st); code != http.StatusOK {
			t.Fatalf("GET /v1/cluster on %s: status %d", id, code)
		}
		if st.Self != id || len(st.Peers) != 3 || st.Successor == "" {
			t.Fatalf("cluster status on %s: %+v", id, st)
		}
		for _, p := range st.Peers {
			if !p.Alive {
				t.Fatalf("%s sees %s dead at boot", id, p.ID)
			}
		}
	}
}

// TestClusterForwarding: a node that does not own a submission's key
// proxies it to the ring owner; the job lives on the owner.
func TestClusterForwarding(t *testing.T) {
	ids := []string{"n1", "n2", "n3"}
	nodes := startCluster(t, ids, clusterOpts{})
	entry := nodes["n1"]

	// Find a request n1 does NOT own.
	var req jobs.Request
	var owner string
	for seed := uint64(1); ; seed++ {
		req = jobs.Request{Experiment: "compute", Params: map[string]any{"n": 5}, Seed: seed}
		owner = entry.node.Ring().Owner(keyFor(t, entry.reg, req))
		if owner != "n1" {
			break
		}
	}

	body := fmt.Sprintf(`{"experiment":"compute","params":{"n":5},"seed":%d}`, req.Seed)
	resp, err := http.Post(entry.url()+"/v1/jobs", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	var v jobs.View
	if err := jsonDecode(resp, &v); err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("X-Nightvision-Forwarded-To"); got != owner {
		t.Fatalf("forwarded-to header %q, want %q", got, owner)
	}
	if _, ok := nodes[owner].engine.Get(v.ID); !ok {
		t.Fatalf("job %s not on owner %s", v.ID, owner)
	}
	if _, ok := entry.engine.Get(v.ID); ok && owner != "n1" {
		t.Fatalf("job %s also on the forwarding node", v.ID)
	}
	final := pollDone(t, nodes[owner].url(), v.ID)
	if final.State != jobs.StateDone {
		t.Fatalf("forwarded job: %+v", final)
	}
	if got := counterSum(entry.metrics, "cluster_forwards_total"); got == 0 {
		t.Fatal("forwarding left cluster_forwards_total at 0")
	}
}

func jsonDecode(resp *http.Response, out any) error {
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	return json.Unmarshal(b, out)
}

// TestClusterReadThrough: a result computed on one node is served from
// every node — over HTTP via GET /v1/results/{key}, and inside the
// engine as a cache hit on Submit.
func TestClusterReadThrough(t *testing.T) {
	ids := []string{"n1", "n2", "n3"}
	nodes := startCluster(t, ids, clusterOpts{})

	req := jobs.Request{Experiment: "compute", Params: map[string]any{"n": 9}, Seed: 77}
	key := keyFor(t, nodes["n1"].reg, req)
	owner := nodes["n1"].node.Ring().Owner(key)

	v, err := nodes[owner].engine.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	final, err := nodes[owner].engine.Wait(ctx, v.ID)
	if err != nil || final.State != jobs.StateDone {
		t.Fatalf("owner run: %v %+v", err, final)
	}

	for _, id := range ids {
		if id == owner {
			continue
		}
		code, body := getBody(t, nodes[id].url()+"/v1/results/"+key)
		if code != http.StatusOK || !bytes.Equal(body, final.Result) {
			t.Fatalf("read-through on %s: status %d, body %q (want %q)", id, code, body, final.Result)
		}
		// The remote hit filled this node's local LRU.
		if cached, ok := nodes[id].st.Peek(key); !ok || !bytes.Equal(cached, final.Result) {
			t.Fatalf("node %s store not filled after read-through", id)
		}
	}

	// Engine-level read-through: submitting on a non-owner that has not
	// cached the key is answered via the peer, born done-from-cache.
	other := "n1"
	if owner == "n1" {
		other = "n2"
	}
	req2 := jobs.Request{Experiment: "compute", Params: map[string]any{"n": 9}, Seed: 77}
	v2, err := nodes[other].engine.Submit(req2)
	if err != nil {
		t.Fatal(err)
	}
	if !v2.State.Terminal() || !v2.FromCache || !bytes.Equal(v2.Result, final.Result) {
		t.Fatalf("engine read-through submit: %+v", v2)
	}
	hits := uint64(0)
	for _, n := range nodes {
		hits += counterSum(n.metrics, "cluster_readthrough_hits_total")
	}
	if hits == 0 {
		t.Fatal("no cluster_readthrough_hits_total anywhere")
	}
}

// TestClusterWorkStealing: an overloaded node's queue drains through
// idle peers; every stolen job lands back on the victim as exactly one
// terminal state with result bytes.
func TestClusterWorkStealing(t *testing.T) {
	ids := []string{"n1", "n2", "n3"}
	nodes := startCluster(t, ids, clusterOpts{workers: 1, stealThreshold: 2})
	victim := nodes["n1"]

	// Park the victim's only worker, then queue a backlog.
	blocker, err := victim.engine.Submit(jobs.Request{Experiment: "block"})
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, victim.engine, blocker.ID)
	var queued []jobs.View
	for i := 0; i < 6; i++ {
		v, err := victim.engine.Submit(jobs.Request{Experiment: "compute", Params: map[string]any{"n": 100 + i}, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, v)
	}

	// Idle peers must drain the backlog while the victim's worker stays
	// parked: every queued job terminal on the victim, with bytes.
	deadline := time.Now().Add(20 * time.Second)
	for {
		done := 0
		for _, q := range queued {
			v, _ := victim.engine.Get(q.ID)
			if v.State == jobs.StateDone && len(v.Result) > 0 {
				done++
			}
		}
		if done == len(queued) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d queued jobs done; victim depth %d", done, len(queued), victim.engine.Depth())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := counterSum(victim.metrics, "jobs_stolen_total"); got == 0 {
		t.Fatal("victim journaled no steals")
	}
	thiefSteals := uint64(0)
	for _, id := range []string{"n2", "n3"} {
		thiefSteals += counterSum(nodes[id].metrics, "cluster_steals_total")
	}
	if thiefSteals == 0 {
		t.Fatal("no thief counted cluster_steals_total")
	}
}

func waitRunning(t *testing.T, e *jobs.Engine, id string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if v, ok := e.Get(id); ok && v.State == jobs.StateRunning {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never started", id)
}

// TestClusterAdoptionChaos: a node dies with journaled-but-unfinished
// jobs; its ring successor replays the shipped WAL and finishes them
// with reference-identical bytes. Steal is disabled (high threshold)
// so adoption alone must recover the work.
func TestClusterAdoptionChaos(t *testing.T) {
	ids := []string{"n1", "n2", "n3"}
	nodes := startCluster(t, ids, clusterOpts{workers: 1, stealThreshold: 1000})
	victim := nodes["n2"]
	adopter := nodes[victim.node.Ring().Successor("n2")]

	reqs := []jobs.Request{
		{Experiment: "compute", Params: map[string]any{"n": 201}, Seed: 31},
		{Experiment: "compute", Params: map[string]any{"n": 202}, Seed: 31},
		{Experiment: "compute", Params: map[string]any{"n": 203}, Seed: 32},
	}
	reference := referenceRun(t, reqs)

	// Park the victim's worker so the jobs stay queued (journaled
	// submitted, never terminal).
	blocker, err := victim.engine.Submit(jobs.Request{Experiment: "block"})
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, victim.engine, blocker.ID)
	for _, req := range reqs {
		if _, err := victim.engine.Submit(req); err != nil {
			t.Fatal(err)
		}
	}

	// Wait until the victim's WAL (with all submit records) reached the
	// adopter's replica dir.
	replica := filepath.Join(adopter.dir, "replica", victim.id)
	waitFor(t, 10*time.Second, "victim submits shipped to adopter", func() bool {
		subs := 0
		ents, err := os.ReadDir(replica)
		if err != nil {
			return false
		}
		for _, e := range ents {
			if !journal.IsSegmentName(e.Name()) {
				continue
			}
			raw, err := os.ReadFile(filepath.Join(replica, e.Name()))
			if err != nil {
				continue
			}
			recs, _ := journal.ParseRecords(raw)
			for _, r := range recs {
				if r.Type == journal.TypeSubmitted {
					subs++
				}
			}
		}
		return subs >= len(reqs)+1 // the blocker ships too
	})

	victim.kill()
	// The victim's parked blocker ships in its WAL too and is adopted
	// alongside the computes; open the adopter's gate so it returns
	// instead of pinning the adopter's only worker.
	close(adopter.gate)

	// The adopter detects the death, adopts, and completes the jobs;
	// the results are then served cluster-wide with reference bytes.
	for key, want := range reference {
		want := want
		key := key
		waitFor(t, 30*time.Second, "adopted result for "+key[:12], func() bool {
			code, body := getBody(t, adopter.url()+"/v1/results/"+key)
			return code == http.StatusOK && bytes.Equal(body, want)
		})
	}
	if got := counterSum(adopter.metrics, "cluster_adoptions_total"); got < uint64(len(reqs)) {
		t.Fatalf("adopter counted %d adoptions, want >= %d", got, len(reqs))
	}
	assertExactlyOnce(t, adopter)
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(15 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// chaosSweep is the Figure-12-style cell sweep the kill tests run: a
// fixed request list so reference and cluster runs cover identical
// keys.
func chaosSweep() []jobs.Request {
	var reqs []jobs.Request
	for i := 0; i < 9; i++ {
		reqs = append(reqs, jobs.Request{Experiment: "work", Params: map[string]any{"n": i}, Seed: 0xF12})
	}
	for i := 0; i < 9; i++ {
		reqs = append(reqs, jobs.Request{Experiment: "compute", Params: map[string]any{"n": i}, Seed: 0xA11 + uint64(i%3)})
	}
	return reqs
}

// TestClusterChaosKillMidSweep is the acceptance criterion: run the
// sweep against a 3-node fleet, kill -9 a randomly chosen node at a
// randomly chosen point mid-sweep (seeded: reruns hit the same points),
// retry the unacknowledged submissions on the survivors, and require
// (a) every key's bytes identical to the single-node reference from
// every surviving node, (b) exactly one terminal transition per job on
// every survivor, and (c) the restarted victim replays its WAL to the
// same bytes.
func TestClusterChaosKillMidSweep(t *testing.T) {
	reqs := chaosSweep()
	reference := referenceRun(t, reqs)

	for _, seed := range []int64{1, 7} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			ids := []string{"n1", "n2", "n3"}
			nodes := startCluster(t, ids, clusterOpts{workers: 2, stealThreshold: 2, segmentBytes: 384})

			killAt := 3 + rng.Intn(len(reqs)-6)
			victim := nodes[ids[rng.Intn(len(ids))]]
			t.Logf("killing %s after %d/%d submissions", victim.id, killAt, len(reqs))

			submit := func(n *testNode, req jobs.Request) {
				body, err := json.Marshal(req)
				if err != nil {
					t.Fatal(err)
				}
				resp, err := http.Post(n.url()+"/v1/jobs", "application/json", bytes.NewReader(body))
				if err != nil {
					return // dead or dying node: the retry pass covers it
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}

			var survivors []*testNode
			for i, req := range reqs {
				if i == killAt {
					// If the victim has journaled any jobs, let at least one
					// shipped segment precede the kill so failover has a WAL
					// to adopt from (kill -9 loses the unshipped tail; client
					// retries cover those, below). A victim that owns none of
					// the prefix keys has nothing to ship — kill it cold.
					if len(victim.engine.List()) > 0 {
						succID := victim.node.Ring().Successor(victim.id)
						replica := filepath.Join(nodes[succID].dir, "replica", victim.id)
						waitFor(t, 10*time.Second, "first shipped segment", func() bool {
							ents, err := os.ReadDir(replica)
							return err == nil && len(ents) > 0
						})
					}
					victim.kill()
				}
				target := nodes[ids[i%len(ids)]]
				if target.killed {
					target = nodes[ids[(i+1)%len(ids)]]
				}
				submit(target, req)
			}
			for _, id := range ids {
				if !nodes[id].killed {
					survivors = append(survivors, nodes[id])
				}
			}

			// Client retry: any submission whose fate died with the victim
			// is resubmitted to a survivor. Content-addressing makes this
			// idempotent — already-computed cells come back from cache.
			for _, req := range reqs {
				submit(survivors[0], req)
			}

			// (a) Byte identity on every survivor for every key.
			for _, n := range survivors {
				for key, want := range reference {
					n, key, want := n, key, want
					waitFor(t, 30*time.Second, fmt.Sprintf("%s result %s", n.id, key[:12]), func() bool {
						code, body := getBody(t, n.url()+"/v1/results/"+key)
						return code == http.StatusOK && bytes.Equal(body, want)
					})
				}
			}
			// (b) Exactly-once terminal states on the survivors.
			for _, n := range survivors {
				assertExactlyOnce(t, n)
			}

			// (c) Restart the victim over its surviving (frozen-at-kill)
			// directories with a healthy filesystem: WAL replay must bring
			// every journaled job to a terminal state, done jobs matching
			// the reference bytes, without double transitions.
			restartVictimAndVerify(t, victim, reference)
		})
	}
}

// restartVictimAndVerify replays a killed node's journal single-node
// and checks terminal convergence + byte identity against reference.
func restartVictimAndVerify(t *testing.T, victim *testNode, reference map[string][]byte) {
	t.Helper()
	jn, err := journal.Open(filepath.Join(victim.dir, "journal"), journal.Options{})
	if err != nil {
		t.Fatalf("reopen victim journal: %v", err)
	}
	defer jn.Close()
	// Jobs whose journal tail is already terminal replay without a new
	// transition (unless their bytes died with the frozen store, in
	// which case they recompute); everything else must transition now.
	// So transitions ∈ [pending, total] — and never more than one per
	// job.
	tailTerminal := map[string]bool{}
	for _, r := range jn.Records() {
		switch r.Type {
		case journal.TypeSubmitted, journal.TypeStarted, journal.TypeInterrupted,
			journal.TypeStolen, journal.TypeReclaimed:
			tailTerminal[r.JobID] = false
		case journal.TypeCompleted, journal.TypeFailed, journal.TypeCanceled, journal.TypeTimedOut:
			tailTerminal[r.JobID] = true
		}
	}
	pending := 0
	for _, term := range tailTerminal {
		if !term {
			pending++
		}
	}
	st, err := store.New(256, filepath.Join(victim.dir, "cache"))
	if err != nil {
		t.Fatal(err)
	}
	reg, gate := clusterRegistry()
	close(gate) // replayed blockers must not park workers
	metrics := obs.NewRegistry()
	e := jobs.New(jobs.Config{Registry: reg, NodeID: victim.id, Store: st, Journal: jn, Workers: 2, Obs: metrics})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := e.Shutdown(ctx); err != nil {
			t.Errorf("restarted victim drain: %v", err)
		}
	}()

	deadline := time.Now().Add(30 * time.Second)
	for {
		views := e.List()
		allDone := true
		for _, v := range views {
			if !v.State.Terminal() {
				allDone = false
			}
		}
		if allDone {
			for _, v := range views {
				if v.State != jobs.StateDone {
					continue // canceled remnants of the kill are fine
				}
				want, known := reference[v.Key]
				if !known {
					t.Fatalf("restarted victim has job with unknown key %s", v.Key)
				}
				if !bytes.Equal(v.Result, want) {
					t.Fatalf("restarted victim job %s bytes diverge from reference", v.ID)
				}
			}
			got := counterSum(metrics, "jobs_completed_total")
			if got < uint64(pending) || got > uint64(len(views)) {
				t.Fatalf("restarted victim: %d transitions for %d jobs (%d pending at replay)", got, len(views), pending)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted victim never converged: %+v", views)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClusterResultInvariance: the sweep's bytes are invariant across
// worker counts and across single-node vs cluster execution — the
// cluster-level analog of the simulator's golden tests.
func TestClusterResultInvariance(t *testing.T) {
	reqs := chaosSweep()[:8]
	ref1 := referenceRun(t, reqs)

	// Different worker count, same bytes.
	reg, gate := clusterRegistry()
	e4 := jobs.New(jobs.Config{Registry: reg, Workers: 4, Obs: obs.NewRegistry()})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, req := range reqs {
		v, err := e4.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		final, err := e4.Wait(ctx, v.ID)
		if err != nil || final.State != jobs.StateDone {
			t.Fatalf("workers=4 run: %v %+v", err, final)
		}
		if !bytes.Equal(final.Result, ref1[final.Key]) {
			t.Fatalf("workers=4 bytes diverge for %s", final.Key[:12])
		}
	}
	close(gate)
	e4.Shutdown(ctx)

	// 3-node cluster, submissions spread over every node.
	ids := []string{"n1", "n2", "n3"}
	nodes := startCluster(t, ids, clusterOpts{})
	for i, req := range reqs {
		body, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(nodes[ids[i%3]].url()+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	for key, want := range ref1 {
		key, want := key, want
		waitFor(t, 30*time.Second, "cluster result "+key[:12], func() bool {
			code, body := getBody(t, nodes["n1"].url()+"/v1/results/"+key)
			return code == http.StatusOK && bytes.Equal(body, want)
		})
	}
}
