// Command nightvisiond serves the NightVision experiment suite over
// HTTP: a bounded job engine (internal/jobs) in front of the typed
// experiment registry (internal/registry), with a content-addressed
// result cache (internal/store) so any (experiment, config, seed) cell
// is computed at most once per code version.
//
// Endpoints:
//
//	POST   /v1/jobs         submit {"experiment","params","seed","priority"}
//	GET    /v1/jobs         list all jobs
//	GET    /v1/jobs/{id}    poll one job (result inlined when done)
//	DELETE /v1/jobs/{id}    cancel a job
//	GET    /v1/jobs/{id}/trace  a job's pipeline trace (chrome://tracing JSON; ?format=ndjson)
//	GET    /v1/experiments  registered experiments + config schemas
//	GET    /v1/healthz      liveness + cache statistics
//	GET    /v1/version      code version + build info
//	GET    /v1/metrics      Prometheus text exposition (?format=json)
//	GET    /debug/pprof/    standard Go profiling
//
// SIGINT/SIGTERM drain gracefully: intake stops, queued jobs are
// canceled, in-flight jobs finish (bounded by -drain-timeout), then the
// HTTP server shuts down.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/store"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:7777", "listen address")
		workers      = flag.Int("workers", 0, "concurrent jobs (0 = GOMAXPROCS)")
		expWorkers   = flag.Int("exp-workers", 1, "internal/runner workers per job (results identical for any value)")
		queueDepth   = flag.Int("queue", 256, "max queued jobs before submissions are rejected")
		cacheMem     = flag.Int("cache-mem", 1024, "in-memory cache entries")
		cacheDir     = flag.String("cache-dir", "", "on-disk cache directory (empty = memory only)")
		maxConc      = flag.Int("max-concurrent", 64, "max simultaneously served API requests")
		reqTimeout   = flag.Duration("request-timeout", 30*time.Second, "per-request handler timeout")
		drainTimeout = flag.Duration("drain-timeout", 2*time.Minute, "max wait for in-flight jobs on shutdown")
		traceJobs    = flag.Bool("trace-jobs", true, "record a per-job attack-pipeline trace (GET /v1/jobs/{id}/trace)")
	)
	flag.Parse()
	if err := run(*addr, *workers, *expWorkers, *queueDepth, *cacheMem, *cacheDir, *maxConc, *reqTimeout, *drainTimeout, *traceJobs); err != nil {
		fmt.Fprintln(os.Stderr, "nightvisiond:", err)
		os.Exit(1)
	}
}

func run(addr string, workers, expWorkers, queueDepth, cacheMem int, cacheDir string, maxConc int, reqTimeout, drainTimeout time.Duration, traceJobs bool) error {
	st, err := store.New(cacheMem, cacheDir)
	if err != nil {
		return err
	}
	metrics := obs.NewRegistry()
	st.Instrument(metrics)
	reg := registry.Experiments()
	engine := jobs.New(jobs.Config{
		Registry:   reg,
		Store:      st,
		Workers:    workers,
		ExpWorkers: expWorkers,
		QueueDepth: queueDepth,
		Obs:        metrics,
		Tracing:    traceJobs,
	})
	a := &api{engine: engine, reg: reg, store: st, metrics: metrics, start: time.Now()}

	srv := &http.Server{
		Addr:              addr,
		Handler:           newHandler(a, maxConc, reqTimeout),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("nightvisiond listening on %s (workers=%d, cache-dir=%q, code version %s)",
			addr, workers, cacheDir, registry.CodeVersion)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	log.Printf("signal received; draining jobs (up to %v)", drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := engine.Shutdown(drainCtx); err != nil {
		log.Printf("job drain incomplete: %v", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	log.Printf("shutdown complete")
	return nil
}
