// Command nightvisiond serves the NightVision experiment suite over
// HTTP: a bounded job engine (internal/jobs) in front of the typed
// experiment registry (internal/registry), with a content-addressed
// result cache (internal/store) so any (experiment, config, seed) cell
// is computed at most once per code version.
//
// Endpoints:
//
//	POST   /v1/jobs         submit {"experiment","params","seed","priority","deadline_ms"}
//	GET    /v1/jobs         list all jobs
//	GET    /v1/jobs/{id}    poll one job (result inlined when done)
//	DELETE /v1/jobs/{id}    cancel a job
//	GET    /v1/jobs/{id}/trace  a job's pipeline trace (chrome://tracing JSON; ?format=ndjson)
//	GET    /v1/experiments  registered experiments + config schemas
//	GET    /v1/healthz      liveness + cache statistics
//	GET    /v1/version      code version + build info
//	GET    /v1/metrics      Prometheus text exposition (?format=json)
//	GET    /v1/cluster/metrics  federated fleet-wide metrics (clustered only)
//	GET    /v1/profilez     continuous-profiling sample ring (runtime/metrics deltas)
//	GET    /v1/slo          rolling-window SLO attainment + burn rates
//	GET    /debug/pprof/    standard Go profiling
//
// Durability: with -cache-dir set (or -journal-dir explicitly), every
// job lifecycle transition is fsynced to a write-ahead journal before it
// is acknowledged. On restart the daemon replays the journal: finished
// jobs are re-served from the cache, jobs that were queued or running at
// crash time are re-enqueued (the running ones marked "interrupted") and
// recomputed to bit-identical results.
//
// Overload: submissions beyond the queue depth or the in-flight byte
// budget are shed with HTTP 429 + Retry-After derived from the queue's
// drain rate (the same value rides in the JSON body).
//
// Clustering: with -node-id and -peers set, the daemon joins a static
// fleet (internal/cluster): submissions are forwarded to the
// consistent-hash ring owner of their cache key, GET /v1/results/{key}
// serves any node's cached bytes via peer read-through, idle nodes
// steal queued jobs from overloaded peers, and sealed journal segments
// ship to the ring successor so a dead node's unfinished jobs are
// adopted. GET /v1/cluster reports membership and liveness.
//
// SIGINT/SIGTERM drain gracefully: intake stops, queued jobs are
// canceled, in-flight jobs finish (bounded by -drain-timeout), then the
// HTTP server shuts down. DELETE /v1/jobs/{id} keeps working during the
// drain, so a hung job can be cut loose rather than riding out the
// timeout.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/jobs"
	"repro/internal/netchaos"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/store"
)

// daemonConfig is everything run needs; flags populate it.
type daemonConfig struct {
	addr          string
	workers       int
	expWorkers    int
	queueDepth    int
	maxInflightMB int
	cacheMem      int
	cacheDir      string
	cacheSync     bool
	journalDir    string
	maxConc       int
	reqTimeout    time.Duration
	readTimeout   time.Duration
	drainTimeout  time.Duration
	traceJobs     bool
	nodeID        string
	peers         string
	clusterTick   time.Duration
	netAttempt    time.Duration
	netBudget     time.Duration
	netRetries    int
	chaosSeed     uint64
	chaosDrop     float64
	chaosLatency  time.Duration
	netBackoff    time.Duration
	breakerThresh int
	phiThreshold  float64
	hedgeDelay    time.Duration
	profileEvery  time.Duration
	sloWindow     time.Duration
	sloQueueP99   time.Duration
	sloTarget     float64
	sloErrBudget  float64
}

func main() {
	var cfg daemonConfig
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:7777", "listen address")
	flag.IntVar(&cfg.workers, "workers", 0, "concurrent jobs (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.expWorkers, "exp-workers", 1, "internal/runner workers per job (results identical for any value)")
	flag.IntVar(&cfg.queueDepth, "queue", 256, "max queued jobs before submissions are shed (HTTP 429)")
	flag.IntVar(&cfg.maxInflightMB, "max-inflight-mb", 256, "in-flight byte budget in MiB before submissions are shed (HTTP 429)")
	flag.IntVar(&cfg.cacheMem, "cache-mem", 1024, "in-memory cache entries")
	flag.StringVar(&cfg.cacheDir, "cache-dir", "", "on-disk cache directory (empty = memory only)")
	flag.BoolVar(&cfg.cacheSync, "cache-sync", true, "fsync cache entries before publishing them (durable across power loss)")
	flag.StringVar(&cfg.journalDir, "journal-dir", "", "write-ahead job journal directory (empty = <cache-dir>/journal; memory-only cache disables the journal)")
	flag.IntVar(&cfg.maxConc, "max-concurrent", 64, "max simultaneously served API requests")
	flag.DurationVar(&cfg.reqTimeout, "request-timeout", 30*time.Second, "per-request handler timeout")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", 2*time.Minute, "max wait for in-flight jobs on shutdown")
	flag.BoolVar(&cfg.traceJobs, "trace-jobs", true, "record a per-job attack-pipeline trace (GET /v1/jobs/{id}/trace)")
	flag.StringVar(&cfg.nodeID, "node-id", "", "this node's cluster member ID (requires -peers; empty = single-node)")
	flag.StringVar(&cfg.peers, "peers", "", "static cluster membership as id=host:port[,id=host:port...]; must include -node-id")
	flag.DurationVar(&cfg.clusterTick, "cluster-tick", 500*time.Millisecond, "base cluster cadence: health probes every tick, ship/steal every 2 ticks, steal reclaim after 60 ticks")
	flag.DurationVar(&cfg.netAttempt, "net-attempt-timeout", 15*time.Second, "per-attempt idle deadline for peer requests (resets while bytes move; upload allowance scales with body size)")
	flag.DurationVar(&cfg.netBudget, "net-budget", 2*time.Minute, "overall wall-clock budget per peer call across all retry attempts")
	flag.IntVar(&cfg.netRetries, "net-retries", 3, "re-attempts per peer request after a retryable failure (-1 disables retries)")
	flag.DurationVar(&cfg.netBackoff, "net-backoff", 50*time.Millisecond, "base of the jittered exponential backoff between peer-request attempts")
	flag.IntVar(&cfg.breakerThresh, "breaker-threshold", 5, "consecutive peer failures that open the circuit breaker")
	flag.Float64Var(&cfg.phiThreshold, "phi-threshold", 8, "phi-accrual suspicion score at which a peer is declared dead")
	flag.DurationVar(&cfg.hedgeDelay, "hedge-delay", 0, "stagger between hedged read-through legs (0 = derive from observed p99 attempt latency)")
	flag.DurationVar(&cfg.readTimeout, "read-timeout", 2*time.Minute, "per-request body read deadline (bounds slow-loris request bodies; 0 disables)")
	flag.Uint64Var(&cfg.chaosSeed, "chaos-net-seed", 0, "TESTING: inject deterministic network chaos on peer links, seeded here (0 = off)")
	flag.Float64Var(&cfg.chaosDrop, "chaos-net-drop", 0, "TESTING: per-attempt drop probability on outgoing peer requests (with -chaos-net-seed)")
	flag.DurationVar(&cfg.chaosLatency, "chaos-net-latency", 0, "TESTING: max injected latency per outgoing peer request (with -chaos-net-seed)")
	flag.DurationVar(&cfg.profileEvery, "profile-interval", 10*time.Second, "continuous-profiling sample interval for GET /v1/profilez (0 = disabled)")
	flag.DurationVar(&cfg.sloWindow, "slo-window", time.Hour, "rolling window for SLO burn-rate tracking (0 = disabled)")
	flag.DurationVar(&cfg.sloQueueP99, "slo-queue-p99", 5*time.Second, "queue-latency SLO threshold: this much or less, slo-target of the time")
	flag.Float64Var(&cfg.sloTarget, "slo-target", 0.99, "fraction of jobs that must meet the latency objectives")
	flag.Float64Var(&cfg.sloErrBudget, "slo-error-budget", 0.05, "tolerated fraction of failed jobs over the SLO window")
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "nightvisiond:", err)
		os.Exit(1)
	}
}

func run(cfg daemonConfig) error {
	st, err := store.New(cfg.cacheMem, cfg.cacheDir, store.WithSync(cfg.cacheSync))
	if err != nil {
		return err
	}
	metrics := obs.NewRegistry()
	st.Instrument(metrics)
	reg := registry.Experiments()

	journalDir := cfg.journalDir
	if journalDir == "" && cfg.cacheDir != "" {
		journalDir = filepath.Join(cfg.cacheDir, "journal")
	}
	var jn *journal.Journal
	if journalDir != "" {
		jn, err = journal.Open(journalDir, journal.Options{})
		if err != nil {
			return fmt.Errorf("open journal: %w", err)
		}
		defer jn.Close()
		if n, torn := len(jn.Records()), jn.Torn(); n > 0 || torn > 0 {
			log.Printf("journal: replaying %d records from %s (%d torn lines dropped)", n, journalDir, torn)
		}
	}

	engine := jobs.New(jobs.Config{
		Registry:         reg,
		NodeID:           cfg.nodeID,
		Store:            st,
		Journal:          jn,
		Workers:          cfg.workers,
		ExpWorkers:       cfg.expWorkers,
		QueueDepth:       cfg.queueDepth,
		MaxInflightBytes: int64(cfg.maxInflightMB) << 20,
		Obs:              metrics,
		Tracing:          cfg.traceJobs,
	})

	var node *cluster.Node
	if cfg.nodeID != "" || cfg.peers != "" {
		peers, err := parsePeers(cfg.peers)
		if err != nil {
			return err
		}
		replicaDir := ""
		if journalDir != "" {
			replicaDir = filepath.Join(journalDir, "replica")
		}
		// Deterministic chaos injection for smoke tests: wrap this node's
		// outgoing peer traffic in a seeded netchaos transport. Every
		// drop/delay decision is a pure function of (seed, link, attempt),
		// so a failing chaos run reproduces from its seed.
		var base http.RoundTripper
		if cfg.chaosSeed != 0 {
			chz := netchaos.New(cfg.chaosSeed)
			for id, addr := range peers {
				chz.MapAddr(addr, id)
			}
			chz.SetRule(cfg.nodeID, "*", netchaos.Rule{
				DropProb:     cfg.chaosDrop,
				LatencyMaxMS: int(cfg.chaosLatency / time.Millisecond),
			})
			base = chz.Transport(cfg.nodeID, nil)
			log.Printf("netchaos enabled: seed=%d drop=%.2f latency<=%s", cfg.chaosSeed, cfg.chaosDrop, cfg.chaosLatency)
		}
		node, err = cluster.New(cluster.Config{
			Self:           cfg.nodeID,
			Peers:          peers,
			Engine:         engine,
			Registry:       reg,
			Store:          st,
			Journal:        jn,
			ReplicaDir:     replicaDir,
			Obs:            metrics,
			HealthInterval: cfg.clusterTick,
			ShipInterval:   2 * cfg.clusterTick,
			StealInterval:  2 * cfg.clusterTick,
			StealTimeout:   60 * cfg.clusterTick,

			Base:             base,
			AttemptTimeout:   cfg.netAttempt,
			TotalBudget:      cfg.netBudget,
			Retries:          cfg.netRetries,
			BackoffBase:      cfg.netBackoff,
			BreakerThreshold: cfg.breakerThresh,
			PhiThreshold:     cfg.phiThreshold,
			HedgeDelay:       cfg.hedgeDelay,
		})
		if err != nil {
			return err
		}
		// The engine consults peers on local cache misses; attached after
		// construction because node and engine reference each other.
		engine.SetRemoteGet(node.ReadThrough)
		node.Start()
		log.Printf("cluster: node %q joined %d-member ring", cfg.nodeID, len(peers))
	}

	// Continuous profiling and SLO tracking are write-only observers of
	// the same metrics registry: they never influence job execution, so
	// result bytes and cache keys are identical with them on or off.
	var profiler *obs.Profiler
	if cfg.profileEvery > 0 {
		profiler = obs.NewProfiler(metrics, cfg.profileEvery, 0)
		profiler.Start()
		defer profiler.Stop()
	}
	var slo *obs.SLOTracker
	if cfg.sloWindow > 0 {
		slo = obs.NewSLOTracker(metrics, cfg.sloWindow, 0)
		slo.Add(obs.LatencyObjective("queue_latency_p99",
			metrics.Histogram("job_queue_latency_seconds", "time jobs spent queued before a worker picked them up", obs.DefaultDurationBuckets()),
			cfg.sloQueueP99.Seconds(), cfg.sloTarget))
		slo.Add(obs.ErrorRateObjective("job_success",
			metrics.CounterL("jobs_completed_total", "jobs reaching a terminal state, by state", obs.Labels{"state": "failed"}),
			metrics.Counter("jobs_submitted_total", "job submissions accepted (including cache hits)"),
			1-cfg.sloErrBudget))
		slo.Start()
		defer slo.Stop()
	}

	a := &api{
		engine: engine, reg: reg, store: st, metrics: metrics,
		cluster: node, profiler: profiler, slo: slo,
		nodeID: cfg.nodeID, start: time.Now(),
	}

	srv := &http.Server{
		Addr:              cfg.addr,
		Handler:           newHandler(a, cfg.maxConc, cfg.reqTimeout, cfg.readTimeout),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("nightvisiond listening on %s (workers=%d, cache-dir=%q, journal=%q, code version %s)",
			cfg.addr, cfg.workers, cfg.cacheDir, journalDir, registry.CodeVersion)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Drain jobs while the HTTP server still serves: GET polls and
	// DELETE cancels must keep working mid-drain (a client may need to
	// cut a hung job loose for the drain to finish in time). The engine
	// rejects new submissions itself once Shutdown begins.
	log.Printf("signal received; draining jobs (up to %v)", cfg.drainTimeout)
	if node != nil {
		// Stop the peer loops first: no stealing, shipping or adopting
		// while the engine drains beneath them.
		node.Stop()
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	if err := engine.Shutdown(drainCtx); err != nil {
		log.Printf("job drain incomplete: %v", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	// The deferred jn.Close runs after this, so every terminal record
	// written during the drain is already on disk.
	log.Printf("shutdown complete")
	return nil
}

// parsePeers parses the -peers flag: "id=host:port,id=host:port,...".
func parsePeers(s string) (map[string]string, error) {
	out := make(map[string]string)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		id, addr = strings.TrimSpace(id), strings.TrimSpace(addr)
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("bad -peers entry %q (want id=host:port)", part)
		}
		if _, dup := out[id]; dup {
			return nil, fmt.Errorf("duplicate node ID %q in -peers", id)
		}
		out[id] = addr
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-node-id set but -peers is empty")
	}
	return out, nil
}
