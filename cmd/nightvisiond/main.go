// Command nightvisiond serves the NightVision experiment suite over
// HTTP: a bounded job engine (internal/jobs) in front of the typed
// experiment registry (internal/registry), with a content-addressed
// result cache (internal/store) so any (experiment, config, seed) cell
// is computed at most once per code version.
//
// Endpoints:
//
//	POST   /v1/jobs         submit {"experiment","params","seed","priority","deadline_ms"}
//	GET    /v1/jobs         list all jobs
//	GET    /v1/jobs/{id}    poll one job (result inlined when done)
//	DELETE /v1/jobs/{id}    cancel a job
//	GET    /v1/jobs/{id}/trace  a job's pipeline trace (chrome://tracing JSON; ?format=ndjson)
//	GET    /v1/experiments  registered experiments + config schemas
//	GET    /v1/healthz      liveness + cache statistics
//	GET    /v1/version      code version + build info
//	GET    /v1/metrics      Prometheus text exposition (?format=json)
//	GET    /debug/pprof/    standard Go profiling
//
// Durability: with -cache-dir set (or -journal-dir explicitly), every
// job lifecycle transition is fsynced to a write-ahead journal before it
// is acknowledged. On restart the daemon replays the journal: finished
// jobs are re-served from the cache, jobs that were queued or running at
// crash time are re-enqueued (the running ones marked "interrupted") and
// recomputed to bit-identical results.
//
// Overload: submissions beyond the queue depth or the in-flight byte
// budget are shed with HTTP 429 + Retry-After.
//
// SIGINT/SIGTERM drain gracefully: intake stops, queued jobs are
// canceled, in-flight jobs finish (bounded by -drain-timeout), then the
// HTTP server shuts down. DELETE /v1/jobs/{id} keeps working during the
// drain, so a hung job can be cut loose rather than riding out the
// timeout.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/jobs"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/store"
)

// daemonConfig is everything run needs; flags populate it.
type daemonConfig struct {
	addr          string
	workers       int
	expWorkers    int
	queueDepth    int
	maxInflightMB int
	cacheMem      int
	cacheDir      string
	cacheSync     bool
	journalDir    string
	maxConc       int
	reqTimeout    time.Duration
	drainTimeout  time.Duration
	traceJobs     bool
}

func main() {
	var cfg daemonConfig
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:7777", "listen address")
	flag.IntVar(&cfg.workers, "workers", 0, "concurrent jobs (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.expWorkers, "exp-workers", 1, "internal/runner workers per job (results identical for any value)")
	flag.IntVar(&cfg.queueDepth, "queue", 256, "max queued jobs before submissions are shed (HTTP 429)")
	flag.IntVar(&cfg.maxInflightMB, "max-inflight-mb", 256, "in-flight byte budget in MiB before submissions are shed (HTTP 429)")
	flag.IntVar(&cfg.cacheMem, "cache-mem", 1024, "in-memory cache entries")
	flag.StringVar(&cfg.cacheDir, "cache-dir", "", "on-disk cache directory (empty = memory only)")
	flag.BoolVar(&cfg.cacheSync, "cache-sync", true, "fsync cache entries before publishing them (durable across power loss)")
	flag.StringVar(&cfg.journalDir, "journal-dir", "", "write-ahead job journal directory (empty = <cache-dir>/journal; memory-only cache disables the journal)")
	flag.IntVar(&cfg.maxConc, "max-concurrent", 64, "max simultaneously served API requests")
	flag.DurationVar(&cfg.reqTimeout, "request-timeout", 30*time.Second, "per-request handler timeout")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", 2*time.Minute, "max wait for in-flight jobs on shutdown")
	flag.BoolVar(&cfg.traceJobs, "trace-jobs", true, "record a per-job attack-pipeline trace (GET /v1/jobs/{id}/trace)")
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "nightvisiond:", err)
		os.Exit(1)
	}
}

func run(cfg daemonConfig) error {
	st, err := store.New(cfg.cacheMem, cfg.cacheDir, store.WithSync(cfg.cacheSync))
	if err != nil {
		return err
	}
	metrics := obs.NewRegistry()
	st.Instrument(metrics)
	reg := registry.Experiments()

	journalDir := cfg.journalDir
	if journalDir == "" && cfg.cacheDir != "" {
		journalDir = filepath.Join(cfg.cacheDir, "journal")
	}
	var jn *journal.Journal
	if journalDir != "" {
		jn, err = journal.Open(journalDir, journal.Options{})
		if err != nil {
			return fmt.Errorf("open journal: %w", err)
		}
		defer jn.Close()
		if n, torn := len(jn.Records()), jn.Torn(); n > 0 || torn > 0 {
			log.Printf("journal: replaying %d records from %s (%d torn lines dropped)", n, journalDir, torn)
		}
	}

	engine := jobs.New(jobs.Config{
		Registry:         reg,
		Store:            st,
		Journal:          jn,
		Workers:          cfg.workers,
		ExpWorkers:       cfg.expWorkers,
		QueueDepth:       cfg.queueDepth,
		MaxInflightBytes: int64(cfg.maxInflightMB) << 20,
		Obs:              metrics,
		Tracing:          cfg.traceJobs,
	})
	a := &api{engine: engine, reg: reg, store: st, metrics: metrics, start: time.Now()}

	srv := &http.Server{
		Addr:              cfg.addr,
		Handler:           newHandler(a, cfg.maxConc, cfg.reqTimeout),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("nightvisiond listening on %s (workers=%d, cache-dir=%q, journal=%q, code version %s)",
			cfg.addr, cfg.workers, cfg.cacheDir, journalDir, registry.CodeVersion)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Drain jobs while the HTTP server still serves: GET polls and
	// DELETE cancels must keep working mid-drain (a client may need to
	// cut a hung job loose for the drain to finish in time). The engine
	// rejects new submissions itself once Shutdown begins.
	log.Printf("signal received; draining jobs (up to %v)", cfg.drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	if err := engine.Shutdown(drainCtx); err != nil {
		log.Printf("job drain incomplete: %v", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	// The deferred jn.Close runs after this, so every terminal record
	// written during the drain is already on disk.
	log.Printf("shutdown complete")
	return nil
}
