package main

// Partition-tolerance acceptance tests (PR 10): a 3-node fleet runs
// the chaos sweep through a seeded netchaos transport — per-link
// latency, an asymmetric partition, a flapping link, duplicated
// deliveries, and a deterministically truncated WAL segment ship —
// and must still converge to reference-identical bytes with
// exactly-once terminal states. Plus HTTP-level duplicate-delivery
// idempotency and the slow-loris handler-pinning regression.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/netchaos"
	"repro/internal/obs"
)

// fleetCounter sums one counter family across every node's registry.
func fleetCounter(nodes map[string]*testNode, name string) uint64 {
	var sum uint64
	for _, n := range nodes {
		sum += counterSum(n.metrics, name)
	}
	return sum
}

// TestClusterPartitionChaos is the PR's acceptance criterion: the
// sweep runs against a 3-node fleet whose peer links are perturbed by
// a seeded netchaos schedule — base latency and duplicate deliveries
// everywhere, the first WAL segment ship on every link truncated in
// transit, an asymmetric partition n1->n2 and a flapping n3->n1 link
// installed mid-sweep and later healed. Afterwards every node must
// serve every key with bytes identical to the single-node reference,
// every job must reach exactly one terminal state, the fleet must
// have retried (>= 1), opened a breaker (>= 1), and rejected +
// re-shipped a damaged segment (>= 1 each) — and no corrupt segment
// may ever have reached adoption replay (== 0).
func TestClusterPartitionChaos(t *testing.T) {
	reqs := chaosSweep()
	reference := referenceRun(t, reqs)

	for _, seed := range []uint64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			chz := netchaos.New(seed)
			ids := []string{"n1", "n2", "n3"}
			nodes := startCluster(t, ids, clusterOpts{
				workers: 2, stealThreshold: 2, segmentBytes: 384,
				seed: seed,
				base: func(id string) http.RoundTripper { return chz.Transport(id, nil) },
			})
			for _, id := range ids {
				chz.MapAddr(nodes[id].srv.Listener.Addr().String(), id)
			}
			// Base chaos on every link: small latency, occasional duplicate
			// delivery. The segment-ship truncation is deterministic
			// (FirstN), guaranteeing at least one checksum reject + re-ship
			// without probability tuning.
			for _, from := range ids {
				chz.SetRule(from, "*", netchaos.Rule{
					LatencyMinMS: 1, LatencyMaxMS: 3, DuplicateProb: 0.1,
				})
				for _, to := range ids {
					if to != from {
						chz.SetRule(from, to, netchaos.Rule{
							PathPrefix: "/v1/cluster/segments/", TruncateRequestFirstN: 1,
						})
					}
				}
			}

			submit := func(n *testNode, req jobs.Request) {
				body, err := json.Marshal(req)
				if err != nil {
					t.Fatal(err)
				}
				resp, err := http.Post(n.url()+"/v1/jobs", "application/json", bytes.NewReader(body))
				if err != nil {
					return // the retry pass below covers it
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}

			for i, req := range reqs {
				switch i {
				case len(reqs) / 3:
					// Mid-sweep: asymmetric partition (n1 cannot reach n2;
					// n2->n1 untouched) plus a flapping n3->n1 link. Hold the
					// partition until n1's breaker for n2 actually opens —
					// health probes keep recording failures right through it.
					chz.BlockOneWay("n1", "n2")
					chz.SetRule("n3", "n1", netchaos.Rule{FlapPeriod: 3})
					waitFor(t, 10*time.Second, "n1's breaker for n2 to open", func() bool {
						return counterSum(nodes["n1"].metrics, "cluster_breaker_opens_total") >= 1
					})
				case 2 * len(reqs) / 3:
					chz.Heal("n1", "n2")
					chz.Heal("n3", "n1")
				}
				submit(nodes[ids[i%len(ids)]], req)
			}

			// Client retry pass (content-addressing makes it idempotent),
			// then a clean network for convergence.
			chz.HealAll()
			for _, req := range reqs {
				submit(nodes["n3"], req)
			}

			// (a) Byte identity with the single-node reference, everywhere.
			for _, id := range ids {
				n := nodes[id]
				for key, want := range reference {
					key, want := key, want
					waitFor(t, 30*time.Second, fmt.Sprintf("%s result %s", n.id, key[:12]), func() bool {
						code, body := getBody(t, n.url()+"/v1/results/"+key)
						return code == http.StatusOK && bytes.Equal(body, want)
					})
				}
			}
			// (b) Exactly one terminal transition per job on every node,
			// despite duplicated deliveries, retries, partition and flap.
			for _, id := range ids {
				assertExactlyOnce(t, nodes[id])
			}
			// (c) The fault machinery demonstrably engaged.
			if got := fleetCounter(nodes, "cluster_net_retries_total"); got < 1 {
				t.Fatalf("fleet recorded %d retries, want >= 1", got)
			}
			if got := fleetCounter(nodes, "cluster_breaker_opens_total"); got < 1 {
				t.Fatalf("fleet recorded %d breaker opens, want >= 1", got)
			}
			if got := fleetCounter(nodes, "cluster_segment_checksum_rejects_total"); got < 1 {
				t.Fatalf("fleet recorded %d checksum rejects, want >= 1", got)
			}
			if got := fleetCounter(nodes, "cluster_segment_reships_total"); got < 1 {
				t.Fatalf("fleet recorded %d segment re-ships, want >= 1", got)
			}
			// (d) A torn segment must be rejected at receive, never written
			// where adoption could replay it.
			if got := fleetCounter(nodes, "cluster_segment_corrupt_replay_skips_total"); got != 0 {
				t.Fatalf("fleet replay-skipped %d corrupt segments, want 0 (rejects must happen at receive)", got)
			}
			if dropped := chz.TotalDropped(); dropped == 0 {
				t.Fatal("chaos layer dropped nothing: the scenario did not engage")
			}
		})
	}
}

// postJSONBody posts raw JSON to a node path, returning status + body.
func postJSONBody(t *testing.T, n *testNode, path, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(n.url()+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

// TestClusterDuplicateDeliveryHTTP drives the three peer handshakes
// through their HTTP endpoints with duplicated deliveries: a steal
// claim re-delivered with the same claim ID, a steal ack re-delivered
// (then contradicted), and a forwarded submission re-delivered with
// the same idempotency key. Each must be processed exactly once.
func TestClusterDuplicateDeliveryHTTP(t *testing.T) {
	ids := []string{"n1", "n2"}
	nodes := startCluster(t, ids, clusterOpts{workers: 1, stealThreshold: 1000})
	victim := nodes["n1"]

	// Park the victim's only worker so queued jobs stay stealable.
	blocker, err := victim.engine.Submit(jobs.Request{Experiment: "block"})
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, victim.engine, blocker.ID)
	for i := 0; i < 3; i++ {
		if _, err := victim.engine.Submit(jobs.Request{
			Experiment: "compute", Params: map[string]any{"n": 900 + i}, Seed: 77,
		}); err != nil {
			t.Fatal(err)
		}
	}

	// Duplicate steal claim: same claim ID -> byte-identical job set,
	// nothing stolen twice.
	claim := `{"thief":"n2","max":2,"claim_id":"dup-claim-1"}`
	code1, body1 := postJSONBody(t, victim, "/v1/cluster/steal", claim)
	code2, body2 := postJSONBody(t, victim, "/v1/cluster/steal", claim)
	if code1 != http.StatusOK || code2 != http.StatusOK {
		t.Fatalf("steal claims: HTTP %d, %d", code1, code2)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("duplicate claim returned a different job set:\n%s\nvs\n%s", body1, body2)
	}
	var stolen []jobs.StolenJob
	if err := json.Unmarshal(body1, &stolen); err != nil || len(stolen) != 2 {
		t.Fatalf("claim returned %d jobs (%v), want 2", len(stolen), err)
	}
	if got := victim.engine.Depth(); got != 1 {
		t.Fatalf("victim depth after duplicate claim = %d, want 1", got)
	}

	// Duplicate ack (and a conflicting late one): first terminal wins.
	ack := fmt.Sprintf(`{"job_id":%q,"state":"done","result":{"v":"remote"}}`, stolen[0].ID)
	for i := 0; i < 2; i++ {
		if code, body := postJSONBody(t, victim, "/v1/cluster/ack", ack); code != http.StatusOK {
			t.Fatalf("ack delivery %d: HTTP %d %s", i+1, code, body)
		}
	}
	late := fmt.Sprintf(`{"job_id":%q,"state":"failed","error":"late"}`, stolen[0].ID)
	if code, body := postJSONBody(t, victim, "/v1/cluster/ack", late); code != http.StatusOK {
		t.Fatalf("conflicting late ack: HTTP %d %s", code, body)
	}
	v, ok := victim.engine.Get(stolen[0].ID)
	if !ok || v.State != jobs.StateDone || v.Error != "" {
		t.Fatalf("job after duplicate acks: %+v", v)
	}

	// Duplicate forwarded submission: same idempotency key -> same job.
	fwd := `{"experiment":"compute","params":{"n":1234},"seed":9,"idempotency_key":"dup-fwd-1"}`
	var jid [2]string
	for i := range jid {
		code, body := postJSONBody(t, nodes["n2"], "/v1/jobs?forwarded=1", fwd)
		if code != http.StatusAccepted && code != http.StatusOK {
			t.Fatalf("forwarded submit %d: HTTP %d %s", i+1, code, body)
		}
		var acc struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(body, &acc); err != nil || acc.ID == "" {
			t.Fatalf("forwarded submit %d response: %s", i+1, body)
		}
		jid[i] = acc.ID
	}
	if jid[0] != jid[1] {
		t.Fatalf("duplicate forwarded submit created a second job: %s vs %s", jid[0], jid[1])
	}
}

// TestSlowLorisRequestDoesNotPinHandler is the S2 regression: a peer
// that opens a request and then stalls its body forever must not pin a
// handler goroutine (and with it a concurrency-semaphore slot). The
// server is built with maxConcurrent=1 and no handler timeout, so
// without the read deadline the stalled body would wedge the whole API
// permanently; with it the handler frees the slot at the deadline.
func TestSlowLorisRequestDoesNotPinHandler(t *testing.T) {
	reg, gate := clusterRegistry()
	defer close(gate)
	e := jobs.New(jobs.Config{Registry: reg, Workers: 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		e.Shutdown(ctx)
	}()
	a := &api{engine: e, reg: reg, metrics: obs.NewRegistry(), start: time.Now()}
	srv := httptest.NewServer(newHandler(a, 1, 0, 300*time.Millisecond))
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Headers promise a large body; then the sender goes silent with the
	// handler blocked mid-read.
	if _, err := fmt.Fprintf(conn, "POST /v1/jobs HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\nContent-Length: 100000\r\n\r\n{"); err != nil {
		t.Fatal(err)
	}

	probe := func() int {
		c := &http.Client{Timeout: time.Second}
		resp, err := c.Get(srv.URL + "/v1/healthz")
		if err != nil {
			return 0
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	// First the stalled body visibly occupies the only handler slot...
	waitFor(t, 5*time.Second, "slow-loris to occupy the handler slot", func() bool {
		return probe() == http.StatusServiceUnavailable
	})
	// ...then the read deadline fires and the slot comes back for good.
	waitFor(t, 5*time.Second, "read deadline to free the handler slot", func() bool {
		return probe() == http.StatusOK
	})
}
