package main

// Robustness tests of the daemon surface: load shedding over HTTP,
// cancel-during-drain, and a SIGTERM-mid-job crash-recovery test
// against the real exec'd binary.

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/registry"
)

// gateRegistry is a registry with one "block" experiment that parks on
// the returned gate (honoring cancellation), for tests that need a job
// to stay running on demand.
func gateRegistry(t *testing.T) (*registry.Registry, chan struct{}) {
	t.Helper()
	gate := make(chan struct{})
	r := registry.New()
	r.Register(registry.Experiment{
		Name:        "block",
		Description: "test: parks until released",
		Params:      []registry.Param{{Name: "n", Kind: registry.Int, Default: 0}},
		Run: func(rc registry.RunContext) (registry.Result, error) {
			select {
			case <-gate:
				return blockResult{V: "ok"}, nil
			case <-rc.Ctx.Done():
				return nil, rc.Ctx.Err()
			}
		},
	})
	return r, gate
}

type blockResult struct {
	V string `json:"v"`
}

func (b blockResult) Human() string { return b.V }

// TestQueueFullSheds429: submissions beyond the queue depth come back
// as HTTP 429 with a Retry-After header, and overload_shed_total shows
// up on /v1/metrics.
func TestQueueFullSheds429(t *testing.T) {
	reg, gate := gateRegistry(t)
	defer close(gate)
	metrics := obs.NewRegistry()
	engine := jobs.New(jobs.Config{Registry: reg, Workers: 1, QueueDepth: 1, Obs: metrics})
	a := &api{engine: engine, reg: reg, metrics: metrics, start: time.Now()}
	srv := httptest.NewServer(newHandler(a, 16, 30*time.Second, time.Minute))
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		engine.Shutdown(ctx)
	})

	// One running (occupies the worker), one queued (fills the queue),
	// then the shed.
	var v jobs.View
	if code := postJSON(t, srv.URL+"/v1/jobs", `{"experiment":"block","params":{"n":1}}`, &v); code != http.StatusAccepted {
		t.Fatalf("first submit: status %d", code)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, _ := engine.Get(v.ID)
		if got.State == jobs.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if code := postJSON(t, srv.URL+"/v1/jobs", `{"experiment":"block","params":{"n":2}}`, &v); code != http.StatusAccepted {
		t.Fatalf("second submit: status %d", code)
	}

	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"experiment":"block","params":{"n":3}}`))
	if err != nil {
		t.Fatal(err)
	}
	var e errorBody
	json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed submit: status %d, want 429 (%+v)", resp.StatusCode, e)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 carries no Retry-After header")
	}
	if e.Error == "" {
		t.Fatal("429 carries no error body")
	}

	mresp, err := http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(text), "overload_shed_total 1") {
		t.Fatalf("metrics missing overload_shed_total 1:\n%s", text)
	}
}

// TestCancelMidDrainHTTP is the regression test for the DELETE-during-
// SIGTERM race: while the engine drains (Shutdown in flight, worker
// parked on a blocked job), DELETE /v1/jobs/{id} must still cancel the
// job and let the drain complete.
func TestCancelMidDrainHTTP(t *testing.T) {
	reg, gate := gateRegistry(t)
	defer close(gate)
	engine := jobs.New(jobs.Config{Registry: reg, Workers: 1})
	a := &api{engine: engine, reg: reg, start: time.Now()}
	srv := httptest.NewServer(newHandler(a, 16, 30*time.Second, time.Minute))
	defer srv.Close()

	var v jobs.View
	if code := postJSON(t, srv.URL+"/v1/jobs", `{"experiment":"block"}`, &v); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, _ := engine.Get(v.ID)
		if got.State == jobs.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}

	// SIGTERM analog: drain while HTTP stays up (main.go shuts the
	// server down only after the engine drain).
	drainErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainErr <- engine.Shutdown(ctx)
	}()
	time.Sleep(10 * time.Millisecond) // let Shutdown reach its drain wait

	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+v.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var canceled jobs.View
	json.NewDecoder(resp.Body).Decode(&canceled)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE during drain: status %d", resp.StatusCode)
	}
	if err := <-drainErr; err != nil {
		t.Fatalf("drain never completed after mid-drain cancel: %v", err)
	}
	if got, _ := engine.Get(v.ID); got.State != jobs.StateCanceled {
		t.Fatalf("mid-drain-canceled job: %+v", got)
	}
}

// TestDaemonSIGTERMMidJobRecovery exercises the real binary: start
// nightvisiond with a journal, SIGTERM it while a job is in flight
// (the drain finishes the job and journals its completion), restart it
// over the same directories, and require the job to reappear in a
// terminal state with its result — without ever resubmitting it.
func TestDaemonSIGTERMMidJobRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the daemon binary")
	}
	bin := filepath.Join(t.TempDir(), "nightvisiond")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	cacheDir := t.TempDir()
	addr := freeAddr(t)
	args := []string{"-addr", addr, "-cache-dir", cacheDir, "-workers", "1"}

	// First daemon: submit, SIGTERM mid-job, wait for a clean drain.
	d1 := exec.Command(bin, args...)
	d1.Stderr = os.Stderr
	if err := d1.Start(); err != nil {
		t.Fatal(err)
	}
	defer d1.Process.Kill()
	waitHealthy(t, addr)

	var v jobs.View
	body := `{"experiment":"fig2","params":{"iters":50},"seed":21}`
	if code := postJSON(t, "http://"+addr+"/v1/jobs", body, &v); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	if err := d1.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := d1.Wait(); err != nil {
		t.Fatalf("daemon exit after SIGTERM: %v", err)
	}

	// Second daemon over the same cache+journal: the job must be back,
	// terminal, with a result — replayed, not resubmitted.
	d2 := exec.Command(bin, args...)
	d2.Stderr = os.Stderr
	if err := d2.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		d2.Process.Signal(syscall.SIGTERM)
		d2.Wait()
	}()
	waitHealthy(t, addr)

	deadline := time.Now().Add(60 * time.Second)
	for {
		var list []jobs.View
		if code := getJSON(t, "http://"+addr+"/v1/jobs", &list); code != http.StatusOK {
			t.Fatalf("job list: status %d", code)
		}
		if len(list) != 1 {
			t.Fatalf("recovered daemon lists %d jobs, want 1", len(list))
		}
		got := list[0]
		if got.ID != v.ID {
			t.Fatalf("recovered job ID %s, want %s", got.ID, v.ID)
		}
		if got.State.Terminal() {
			if got.State != jobs.StateDone || len(got.Result) == 0 {
				t.Fatalf("recovered job: %+v", got)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovered job never reached a terminal state (now %s)", got.State)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// freeAddr reserves a listener port and releases it for the daemon.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// waitHealthy polls /v1/healthz with backoff until the daemon answers.
func waitHealthy(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	delay := 10 * time.Millisecond
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/v1/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(delay)
		if delay < 500*time.Millisecond {
			delay *= 2
		}
	}
	t.Fatalf("daemon at %s never became healthy", addr)
}
