// Command nvasm assembles simulator assembly source and prints the
// listing, or disassembles with -d.
//
// Usage:
//
//	nvasm file.s          assemble and print a listing
//	nvasm -d file.s       assemble, then disassemble the output
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/asm"
)

func main() {
	dis := flag.Bool("d", false, "disassemble the assembled output")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: nvasm [-d] file.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "nvasm:", err)
		os.Exit(1)
	}
	prog, err := asm.Assemble(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "nvasm:", err)
		os.Exit(1)
	}
	for _, c := range prog.Chunks {
		fmt.Printf("chunk %#012x: %d bytes\n", c.Addr, len(c.Code))
		if *dis {
			fmt.Print(asm.Disassemble(c.Addr, c.Code))
		} else {
			for i := 0; i < len(c.Code); i += 16 {
				end := i + 16
				if end > len(c.Code) {
					end = len(c.Code)
				}
				fmt.Printf("%#012x: % x\n", c.Addr+uint64(i), c.Code[i:end])
			}
		}
	}
	fmt.Printf("labels: %d, total %d bytes\n", len(prog.Labels), prog.Size())
}
