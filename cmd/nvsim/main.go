// Command nvsim runs a program on the simulated core and reports its
// retired-instruction trace, LBR contents and BTB statistics — the
// observability surface the NightVision experiments build on.
//
// Usage:
//
//	nvsim [-entry label] [-trace] [-lbr] [-max steps] file.s
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
)

func main() {
	entry := flag.String("entry", "start", "entry label")
	showTrace := flag.Bool("trace", false, "print the retired-PC trace")
	showLBR := flag.Bool("lbr", false, "print the final LBR contents")
	maxSteps := flag.Uint64("max", 1_000_000, "step budget")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: nvsim [flags] file.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := asm.Assemble(string(src))
	if err != nil {
		fatal(err)
	}
	entryPC, err := prog.LabelAddr(*entry)
	if err != nil {
		fatal(err)
	}
	m := mem.New()
	prog.LoadInto(m)
	m.Map(0x7f_0000, 0x10000, mem.PermRW)
	c := cpu.New(cpu.Config{}, m)
	c.SetReg(isa.SP, 0x80_0000)
	c.SetPC(entryPC)
	if *showTrace {
		c.OnRetire = func(pc uint64, in isa.Inst) {
			fmt.Printf("%#012x: %s\n", pc, in)
		}
	}
	steps, err := c.Run(*maxSteps)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("halted after %d steps, %d retired instructions, %d cycles\n",
		steps, c.Retired(), c.Cycle())
	fmt.Printf("squashes=%d false-hits=%d\n", c.Squashes(), c.FalseHits())
	s := c.BTB.Stats()
	fmt.Printf("btb: lookups=%d hits=%d allocs=%d invalidates=%d evictions=%d\n",
		s.Lookups, s.Hits, s.Allocs, s.Invalidates, s.Evictions)
	if *showLBR {
		for _, r := range c.LBR.Records() {
			flag := " "
			if r.Mispredicted && r.MispredValid {
				flag = "M"
			}
			fmt.Printf("lbr %s %#012x -> %#012x  +%d\n", flag, r.From, r.To, r.Cycles)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nvsim:", err)
	os.Exit(1)
}
