package main

import (
	"bufio"
	"strings"
	"testing"
)

func TestParseAndAggregateMedians(t *testing.T) {
	// Three -count runs of one benchmark plus a single run of another,
	// interleaved with the chatter go test emits around them.
	input := `goos: linux
goarch: amd64
pkg: repro
cpu: Test CPU
figure 12: corpus accuracy 1.00
BenchmarkCorpus/workers=1         	       1	500 ns/op	128 B/op	  4 allocs/op
BenchmarkCorpus/workers=1         	       1	900 ns/op	128 B/op	  6 allocs/op
BenchmarkCorpus/workers=1         	       1	700 ns/op	130 B/op	  5 allocs/op
BenchmarkOther-8                  	       1	42 ns/op
PASS
`
	rep, err := parse(bufio.NewScanner(strings.NewReader(input)))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rep.Benchmarks); got != 4 {
		t.Fatalf("parsed %d lines, want 4", got)
	}
	if rep.GOOS != "linux" || rep.Pkg != "repro" {
		t.Errorf("header: goos=%q pkg=%q", rep.GOOS, rep.Pkg)
	}

	aggs := aggregate(rep.Benchmarks)
	if len(aggs) != 2 {
		t.Fatalf("aggregated to %d entries, want 2", len(aggs))
	}
	c := aggs[0]
	if c.Name != "BenchmarkCorpus/workers=1" {
		t.Fatalf("first-appearance order lost: got %q", c.Name)
	}
	if c.Samples != 3 {
		t.Errorf("samples = %d, want 3", c.Samples)
	}
	// Median of {500, 900, 700} is 700; one slow outlier must not move it.
	if c.NsPerOp != 700 {
		t.Errorf("ns/op median = %v, want 700", c.NsPerOp)
	}
	if got := c.Metrics["allocs/op"]; got != 5 {
		t.Errorf("allocs/op median = %v, want 5", got)
	}
	if got := c.Metrics["B/op"]; got != 128 {
		t.Errorf("B/op median = %v, want 128", got)
	}

	o := aggs[1]
	if o.Samples != 1 || o.NsPerOp != 42 || o.Metrics != nil {
		t.Errorf("single-run entry mangled: %+v", o)
	}
}

func TestMedianEvenCount(t *testing.T) {
	if got := median([]float64{10, 20, 40, 30}); got != 25 {
		t.Errorf("median of 4 = %v, want 25", got)
	}
}
