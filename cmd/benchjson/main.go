// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON benchmark record, so `make bench` can persist the
// perf trajectory as BENCH_runner.json instead of losing it in
// scrollback.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x -benchmem | benchjson -o BENCH_runner.json
//
// Lines that are not benchmark results (the figure dumps the harness
// prints once per reproduction) pass through untouched and are ignored.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one result: a parsed line, or — when `go test -count=N`
// repeats a benchmark — the per-name median across the repeated lines,
// with Samples recording how many runs it summarizes.
type Benchmark struct {
	Name    string             `json:"name"`
	N       int64              `json:"n"`
	NsPerOp float64            `json:"ns_per_op"`
	Samples int                `json:"samples,omitempty"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the full BENCH_runner.json document.
type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	rep.Benchmarks = aggregate(rep.Benchmarks)
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	payload, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	payload = append(payload, '\n')
	if *out == "" {
		os.Stdout.Write(payload)
		return
	}
	if err := os.WriteFile(*out, payload, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
}

func parse(sc *bufio.Scanner) (*Report, error) {
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	rep := &Report{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	return rep, sc.Err()
}

// aggregate collapses repeated runs of the same benchmark (`go test
// -count=N` emits one line per run) into a single entry holding the
// median ns/op and the median of every reported metric. Medians rather
// than means keep one descheduled run from skewing the recorded figure.
// Input order of first appearance is preserved.
func aggregate(in []Benchmark) []Benchmark {
	type acc struct {
		n       int64
		ns      []float64
		metrics map[string][]float64
	}
	byName := map[string]*acc{}
	var names []string
	for _, b := range in {
		a, ok := byName[b.Name]
		if !ok {
			a = &acc{n: b.N, metrics: map[string][]float64{}}
			byName[b.Name] = a
			names = append(names, b.Name)
		}
		a.ns = append(a.ns, b.NsPerOp)
		for unit, v := range b.Metrics {
			a.metrics[unit] = append(a.metrics[unit], v)
		}
	}
	out := make([]Benchmark, 0, len(names))
	for _, name := range names {
		a := byName[name]
		b := Benchmark{Name: name, N: a.n, NsPerOp: median(a.ns), Samples: len(a.ns)}
		if len(a.metrics) > 0 {
			b.Metrics = make(map[string]float64, len(a.metrics))
			for unit, vs := range a.metrics {
				b.Metrics[unit] = median(vs)
			}
		}
		out = append(out, b)
	}
	return out
}

// median returns the middle value (mean of the middle two for even
// counts). It sorts vs in place.
func median(vs []float64) float64 {
	sort.Float64s(vs)
	n := len(vs)
	if n%2 == 1 {
		return vs[n/2]
	}
	return (vs[n/2-1] + vs[n/2]) / 2
}

// parseBenchLine parses the standard testing format:
//
//	BenchmarkName-8   100   12345 ns/op   64 B/op   2 allocs/op   9 steps/op
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], N: n, Metrics: map[string]float64{}}
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = val
		} else {
			b.Metrics[unit] = val
		}
	}
	if len(b.Metrics) == 0 {
		b.Metrics = nil
	}
	return b, true
}
