// Command nightvision runs the paper-reproduction experiments and
// prints the data behind every figure of the evaluation.
//
// Usage:
//
//	nightvision [flags] <experiment>
//	nightvision -list
//
// Every experiment is dispatched through the typed registry
// (internal/registry) — the same entries cmd/nightvisiond serves over
// HTTP — so `-list` enumerates what both binaries know, and `-json`
// emits exactly the bytes the daemon would cache and return.
//
// Experiments:
//
//	fig2    BTB deallocation by non-branches (Figure 2)
//	fig4    prediction-window range semantics (Figure 4)
//	leak    control-flow leakage on defended GCD (§7.2)
//	bncmp   control-flow leakage on bn_cmp (§7.2)
//	fig12   function fingerprinting vs corpus (Figure 12)
//	fig13   fingerprint robustness across versions/flags (Figure 13)
//	noise   leakage accuracy vs measurement noise (footnote 2)
//	pressure BTB eviction vs victim fragment length (§4.2)
//	baseline fingerprinting vs observation granularity + §8.3 sequences
//	robustness leakage accuracy vs injected interference (also -robustness)
//	ret2spec RSB-steered speculative control flow (any backend)
//	all     everything above
//
// Every experiment takes -backend to select the modeled
// microarchitecture (intel-skylake by default; see `nightvision -list`
// for the full set).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/uarch"
)

func main() {
	var (
		iters    = flag.Int("iters", 100, "measurement repetitions per data point (paper: 1000)")
		runs     = flag.Int("runs", 100, "victim runs for the leakage experiments (paper: 100)")
		corpus   = flag.Int("corpus", 2000, "corpus size for fig12 (paper: 175168)")
		noise    = flag.Float64("noise", 0, "LBR noise stddev in cycles (0 = LBR, ~10 = rdtsc)")
		seed     = flag.Uint64("seed", 0, "experiment seed (unset = default 0xA11; 0 itself is rejected)")
		topK     = flag.Int("top", 10, "entries of the fig12 ranking to print")
		parallel = flag.Int("parallel", 0, "experiment engine workers (0 = GOMAXPROCS, 1 = serial; results identical)")
		backend  = flag.String("backend", uarch.DefaultName, "microarchitecture backend: "+strings.Join(uarch.Names(), ", "))
		depth    = flag.Int("depth", 24, "deepest call chain of the ret2spec overflow sweep (0 = RSB depth + 4)")
		rsbDepth = flag.Int("rsb-depth", 0, "modeled RSB entries for ret2spec (0 = backend native depth)")
		robust   = flag.Bool("robustness", false, "run the interference robustness sweep (same as the robustness experiment)")
		list     = flag.Bool("list", false, "list registered experiments and exit")
		asJSON   = flag.Bool("json", false, "emit results as JSON (the registry result types) instead of tables")
		traceOut = flag.String("trace", "", "write the attack-pipeline trace as Chrome trace_event JSON to this file (load at chrome://tracing)")
	)
	flag.Parse()
	reg := registry.Experiments()

	if *list {
		printList(reg)
		return
	}
	if flag.NArg() != 1 && !(*robust && flag.NArg() == 0) {
		fmt.Fprintf(os.Stderr, "usage: nightvision [flags] %s|all\n", strings.Join(reg.Names(), "|"))
		fmt.Fprintln(os.Stderr, "       nightvision -list")
		os.Exit(2)
	}
	seedSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			seedSet = true
		}
	})
	if seedSet && *seed == 0 {
		fmt.Fprintln(os.Stderr, "nightvision: -seed 0 is reserved as the \"use the default seed\" sentinel (0xA11); pass any nonzero seed")
		os.Exit(2)
	}
	if *parallel < 0 {
		fmt.Fprintln(os.Stderr, "nightvision: -parallel must be >= 0")
		os.Exit(2)
	}

	// CLI flag values become schema parameter overrides wherever the
	// experiment declares the parameter; entries without it ignore the
	// flag, exactly like the old per-experiment dispatch did.
	overrides := map[string]any{
		"iters":     *iters,
		"runs":      *runs,
		"corpus":    *corpus,
		"noise":     *noise,
		"top":       *topK,
		"backend":   *backend,
		"depth":     *depth,
		"rsb_depth": *rsbDepth,
	}

	name := "robustness"
	if flag.NArg() == 1 {
		name = flag.Arg(0)
	}

	// All experiments of an invocation share one trace; writing it is
	// strictly output-only, so -trace never changes results.
	var trace *obs.Trace
	if *traceOut != "" {
		trace = obs.NewTrace()
	}

	names := []string{name}
	if name == "all" {
		names = names[:0]
		for _, e := range reg.List() {
			names = append(names, e.Name)
		}
	}
	for i, n := range names {
		if err := runOne(reg, n, overrides, *seed, *parallel, *asJSON, trace); err != nil {
			fmt.Fprintln(os.Stderr, "nightvision:", err)
			os.Exit(1)
		}
		if !*asJSON && i < len(names)-1 {
			fmt.Println()
		}
	}
	if trace != nil {
		if err := writeTrace(*traceOut, trace); err != nil {
			fmt.Fprintln(os.Stderr, "nightvision:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "nightvision: wrote %d trace events to %s\n", trace.Len(), *traceOut)
	}
}

func writeTrace(path string, trace *obs.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func runOne(reg *registry.Registry, name string, overrides map[string]any, seed uint64, workers int, asJSON bool, trace *obs.Trace) error {
	exp, ok := reg.Get(name)
	if !ok {
		return fmt.Errorf("unknown experiment %q", name)
	}
	raw := make(map[string]any)
	for _, p := range exp.Params {
		if v, ok := overrides[p.Name]; ok {
			raw[p.Name] = v
		}
	}
	values, err := exp.Resolve(raw)
	if err != nil {
		return err
	}
	res, err := exp.Run(registry.RunContext{
		Ctx:     context.Background(),
		Seed:    seed,
		Workers: workers,
		Values:  values,
		Trace:   trace,
	})
	if err != nil {
		return err
	}
	if asJSON {
		// One object per experiment, wrapped with its name so `all`
		// emits a self-describing JSON stream — the result bytes are
		// the same serialization the daemon caches and serves.
		payload, err := json.Marshal(res)
		if err != nil {
			return err
		}
		out, err := json.MarshalIndent(struct {
			Experiment string          `json:"experiment"`
			Seed       uint64          `json:"seed"`
			Config     registry.Values `json:"config"`
			Result     json.RawMessage `json:"result"`
		}{Experiment: name, Seed: seed, Config: values, Result: payload}, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
		return nil
	}
	fmt.Println(res.Human())
	return nil
}

func printList(reg *registry.Registry) {
	for _, e := range reg.List() {
		fmt.Printf("%-11s %s\n", e.Name, e.Description)
		for _, p := range e.Params {
			fmt.Printf("    %-8s %-6s default %-6v %s\n", p.Name, p.Kind, p.Default, p.Description)
		}
	}
}
