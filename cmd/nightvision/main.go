// Command nightvision runs the paper-reproduction experiments and
// prints the data behind every figure of the evaluation.
//
// Usage:
//
//	nightvision [flags] <experiment>
//
// Experiments:
//
//	fig2    BTB deallocation by non-branches (Figure 2)
//	fig4    prediction-window range semantics (Figure 4)
//	leak    control-flow leakage on defended GCD (§7.2)
//	bncmp   control-flow leakage on bn_cmp (§7.2)
//	fig12   function fingerprinting vs corpus (Figure 12)
//	fig13   fingerprint robustness across versions/flags (Figure 13)
//	noise   leakage accuracy vs measurement noise (footnote 2)
//	pressure BTB eviction vs victim fragment length (§4.2)
//	baseline fingerprinting vs observation granularity + §8.3 sequences
//	robustness leakage accuracy vs injected interference (also -robustness)
//	all     everything above
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/stats"
)

func main() {
	var (
		iters    = flag.Int("iters", 100, "measurement repetitions per data point (paper: 1000)")
		runs     = flag.Int("runs", 100, "victim runs for the leakage experiments (paper: 100)")
		corpus   = flag.Int("corpus", 2000, "corpus size for fig12 (paper: 175168)")
		noise    = flag.Float64("noise", 0, "LBR noise stddev in cycles (0 = LBR, ~10 = rdtsc)")
		seed     = flag.Uint64("seed", 0, "experiment seed (unset = default 0xA11; 0 itself is rejected)")
		topK     = flag.Int("top", 10, "entries of the fig12 ranking to print")
		parallel = flag.Int("parallel", 0, "experiment engine workers (0 = GOMAXPROCS, 1 = serial; results identical)")
		robust   = flag.Bool("robustness", false, "run the interference robustness sweep (same as the robustness experiment)")
	)
	flag.Parse()
	if flag.NArg() != 1 && !(*robust && flag.NArg() == 0) {
		fmt.Fprintln(os.Stderr, "usage: nightvision [flags] fig2|fig4|leak|bncmp|fig12|fig13|noise|pressure|baseline|robustness|all")
		os.Exit(2)
	}
	seedSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			seedSet = true
		}
	})
	if seedSet && *seed == 0 {
		fmt.Fprintln(os.Stderr, "nightvision: -seed 0 is reserved as the \"use the default seed\" sentinel (0xA11); pass any nonzero seed")
		os.Exit(2)
	}
	if *parallel < 0 {
		fmt.Fprintln(os.Stderr, "nightvision: -parallel must be >= 0")
		os.Exit(2)
	}
	cfg := experiments.Config{Iters: *iters, Noise: *noise, Seed: *seed, Workers: *parallel}

	if *robust && flag.NArg() == 0 {
		if err := runRobustness(cfg, *runs); err != nil {
			fmt.Fprintln(os.Stderr, "nightvision:", err)
			os.Exit(1)
		}
		return
	}

	var run func(name string) error
	run = func(name string) error {
		switch name {
		case "fig2":
			return runFig2(cfg)
		case "fig4":
			return runFig4(cfg)
		case "leak":
			return runLeak(cfg, *runs)
		case "bncmp":
			return runBnCmp(cfg, *runs)
		case "fig12":
			return runFig12(cfg, *corpus, *topK)
		case "fig13":
			return runFig13(cfg)
		case "noise":
			return runNoise(cfg, *runs)
		case "pressure":
			return runPressure(cfg)
		case "baseline":
			return runBaseline(cfg, *corpus)
		case "robustness":
			return runRobustness(cfg, *runs)
		case "all":
			for _, n := range []string{"fig2", "fig4", "leak", "bncmp", "fig12", "fig13", "noise", "pressure", "baseline", "robustness"} {
				if err := run(n); err != nil {
					return err
				}
				fmt.Println()
			}
			return nil
		}
		return fmt.Errorf("unknown experiment %q", name)
	}
	if err := run(flag.Arg(0)); err != nil {
		fmt.Fprintln(os.Stderr, "nightvision:", err)
		os.Exit(1)
	}
}

func runFig2(cfg experiments.Config) error {
	fmt.Println("== Figure 2: BTB deallocation by non-control-transfer instructions ==")
	with, without, err := experiments.Figure2(cfg)
	if err != nil {
		return err
	}
	fmt.Print(stats.Table("F2 offset", with, without))
	in, out := experiments.Figure2Gap(with, without)
	fmt.Printf("mean gap: collision range %.2f cycles, outside %.2f cycles\n", in, out)
	fmt.Println("paper: clear gap while F2 < F1+2, none after (Takeaway 1)")
	return nil
}

func runFig4(cfg experiments.Config) error {
	fmt.Println("== Figure 4: prediction-window range semantics ==")
	with, without, err := experiments.Figure4(cfg)
	if err != nil {
		return err
	}
	fmt.Print(stats.Table("F1 offset", with, without))
	in, out, slope := experiments.Figure4Gap(with, without)
	fmt.Printf("mean gap: range-hit %.2f cycles, outside %.2f; control slope %.2f cyc/nop\n", in, out, slope)
	fmt.Println("paper: constant gap while F1 < F2+2, declining control line (Takeaway 2)")
	return nil
}

func runLeak(cfg experiments.Config, runs int) error {
	fmt.Println("== Use case 1: control-flow leakage on defended GCD (§7.2) ==")
	res, err := experiments.UseCase1GCD(cfg, runs, experiments.AllDefenses())
	if err != nil {
		return err
	}
	fmt.Printf("balancing+alignment+CFR: %v\n", res)
	fmt.Println("paper: 99.3% accuracy, ~30 iterations/run, defenses ineffective")
	return nil
}

func runBnCmp(cfg experiments.Config, runs int) error {
	fmt.Println("== Use case 1b: control-flow leakage on bn_cmp (§7.2) ==")
	res, err := experiments.UseCase1BnCmp(cfg, runs, experiments.AllDefenses())
	if err != nil {
		return err
	}
	fmt.Printf("%v\n", res)
	fmt.Println("paper: 100% accuracy over 100 runs")
	return nil
}

func runFig12(cfg experiments.Config, corpusN, topK int) error {
	fmt.Printf("== Figure 12: fingerprinting vs %d-function corpus (§7.3) ==\n", corpusN)
	results, err := experiments.Figure12(cfg, corpusN, topK)
	if err != nil {
		return err
	}
	for _, r := range results {
		fmt.Printf("reference %s: self-similarity %.3f (rank %d), best impostor %.3f\n",
			r.Reference, r.SelfSimilarity, r.SelfRank, r.BestImpostor)
		for i, s := range r.Top {
			fmt.Printf("  #%-3d %-16s %.3f\n", i+1, s.Label, s.Score)
		}
	}
	fmt.Println("paper: true function ranks #1 (self-similarity 75.8% GCD, 88.2% bn_cmp)")
	return nil
}

func runFig13(cfg experiments.Config) error {
	fmt.Println("== Figure 13 (left): GCD similarity across mbedTLS versions ==")
	m, err := experiments.Figure13Versions(cfg)
	if err != nil {
		return err
	}
	printMatrix(m)
	fmt.Println("\n== Figure 13 (right): GCD similarity across optimization flags ==")
	m, err = experiments.Figure13OptLevels(cfg)
	if err != nil {
		return err
	}
	printMatrix(m)
	fmt.Println("paper: high within implementation/flag clusters, low across")
	return nil
}

func printMatrix(m *experiments.SimilarityMatrix) {
	fmt.Printf("%-8s", "")
	for _, l := range m.Labels {
		fmt.Printf(" %6s", l)
	}
	fmt.Println()
	for i, row := range m.Cells {
		fmt.Printf("%-8s", m.Labels[i])
		for _, v := range row {
			fmt.Printf(" %6.3f", v)
		}
		fmt.Println()
	}
}

func runNoise(cfg experiments.Config, runs int) error {
	fmt.Println("== Leakage accuracy vs measurement noise (footnote 2) ==")
	if runs > 10 {
		runs = 10
	}
	acc, err := experiments.NoiseSweep(cfg, []float64{0, 1, 2, 4, 8, 16, 32}, runs)
	if err != nil {
		return err
	}
	fmt.Print(stats.Table("sigma", acc))
	fmt.Println("paper: LBR is orders of magnitude less noisy than rdtsc; accuracy holds")
	fmt.Println("while sigma stays below the misprediction bubble (8-17 cycles)")
	return nil
}

func runRobustness(cfg experiments.Config, runs int) error {
	fmt.Println("== Robustness: leakage accuracy vs injected interference ==")
	if runs > 25 {
		runs = 25
	}
	res, err := experiments.RobustnessSweep(cfg, nil, runs)
	if err != nil {
		return err
	}
	fmt.Println(res)
	fmt.Println("model: deterministic seed-driven faults (timer interrupts, co-runner BTB")
	fmt.Println("pollution, LBR loss/flush, heavy-tailed outliers); the paper survives the")
	fmt.Println("real-machine equivalents with repetition and majority voting (§7)")
	return nil
}

func runPressure(cfg experiments.Config) error {
	fmt.Println("== BTB pressure vs victim fragment length (§4.2) ==")
	hit, falsePos, err := experiments.FragmentPressure(cfg, []int{0, 64, 256, 1024, 2048, 4096, 8192}, 8)
	if err != nil {
		return err
	}
	fmt.Print(stats.Table("filler", hit, falsePos))
	fmt.Println("paper: victim time slices must stay short or attacker entries are evicted")
	return nil
}

func runBaseline(cfg experiments.Config, corpusN int) error {
	fmt.Println("== Baselines: observation granularity ==")
	if corpusN > 1000 {
		corpusN = 1000
	}
	results, err := experiments.GranularityComparison(cfg, corpusN)
	if err != nil {
		return err
	}
	for _, r := range results {
		fmt.Println(r.String())
	}
	fmt.Println("\n== §8.3 extension: sequence alignment vs set intersection ==")
	res, err := experiments.SequenceVsSet(cfg, corpusN)
	if err != nil {
		return err
	}
	fmt.Printf("set:      self %.3f, impostor %.3f, separation %.3f\n", res.SetSelf, res.SetImpostor, res.SetSeparation())
	fmt.Printf("sequence: self %.3f, impostor %.3f, separation %.3f\n", res.SeqSelf, res.SeqImpostor, res.SeqSeparation())
	return nil
}
