package lbr

import "testing"

func TestRecordAndRead(t *testing.T) {
	l := New(4)
	l.RecordBranch(0x100, 0x200, 10, false, false)
	l.RecordBranch(0x300, 0x400, 25, true, true)
	recs := l.Records()
	if len(recs) != 2 {
		t.Fatalf("len = %d, want 2", len(recs))
	}
	if recs[0].From != 0x100 || recs[0].To != 0x200 {
		t.Errorf("rec0 = %+v", recs[0])
	}
	if recs[0].Cycles != 0 {
		t.Errorf("first record delta = %d, want 0 (no prior branch)", recs[0].Cycles)
	}
	if recs[1].Cycles != 15 {
		t.Errorf("rec1 delta = %d, want 15", recs[1].Cycles)
	}
	if !recs[1].Mispredicted || !recs[1].MispredValid {
		t.Errorf("rec1 flags = %+v", recs[1])
	}
}

func TestRingWraps(t *testing.T) {
	l := New(3)
	for i := uint64(1); i <= 5; i++ {
		l.RecordBranch(i*0x10, i*0x100, i*10, false, false)
	}
	recs := l.Records()
	if len(recs) != 3 {
		t.Fatalf("len = %d, want 3", len(recs))
	}
	// Oldest-first: records 3, 4, 5.
	for i, want := range []uint64{0x30, 0x40, 0x50} {
		if recs[i].From != want {
			t.Errorf("recs[%d].From = %#x, want %#x", i, recs[i].From, want)
		}
	}
}

func TestLast(t *testing.T) {
	l := New(2)
	if _, ok := l.Last(); ok {
		t.Error("empty LBR should have no Last")
	}
	l.RecordBranch(0x1, 0x2, 1, false, false)
	r, ok := l.Last()
	if !ok || r.From != 0x1 {
		t.Errorf("Last = %+v, %v", r, ok)
	}
	l.RecordBranch(0x3, 0x4, 2, false, false)
	l.RecordBranch(0x5, 0x6, 3, false, false) // wraps
	r, _ = l.Last()
	if r.From != 0x5 {
		t.Errorf("Last.From = %#x, want 0x5", r.From)
	}
}

func TestFindFrom(t *testing.T) {
	l := New(8)
	l.RecordBranch(0x100, 0x200, 10, false, false)
	l.RecordBranch(0x100, 0x300, 30, false, false) // newer record, same From
	l.RecordBranch(0x500, 0x600, 40, false, false)
	r, ok := l.FindFrom(0x100)
	if !ok {
		t.Fatal("FindFrom should find 0x100")
	}
	if r.To != 0x300 {
		t.Errorf("FindFrom returned older record: To = %#x", r.To)
	}
	if _, ok := l.FindFrom(0x999); ok {
		t.Error("FindFrom should miss for unknown PC")
	}
}

func TestDisabledAndFrozen(t *testing.T) {
	l := New(4)
	l.SetEnabled(false)
	l.RecordBranch(0x1, 0x2, 1, false, false)
	if len(l.Records()) != 0 {
		t.Error("disabled LBR must not record")
	}
	l.SetEnabled(true)
	l.Freeze()
	l.RecordBranch(0x1, 0x2, 1, false, false)
	if len(l.Records()) != 0 {
		t.Error("frozen LBR must not record")
	}
	l.Unfreeze()
	l.RecordBranch(0x1, 0x2, 1, false, false)
	if len(l.Records()) != 1 {
		t.Error("unfrozen LBR must record")
	}
}

func TestClear(t *testing.T) {
	l := New(4)
	l.RecordBranch(0x1, 0x2, 100, false, false)
	l.Clear()
	if len(l.Records()) != 0 {
		t.Error("Clear should empty the ring")
	}
	// After Clear the next record's delta restarts from zero.
	l.RecordBranch(0x3, 0x4, 500, false, false)
	r, _ := l.Last()
	if r.Cycles != 0 {
		t.Errorf("post-Clear delta = %d, want 0", r.Cycles)
	}
}

func TestNoiseModel(t *testing.T) {
	l := New(DefaultDepth)
	l.SetNoise(3.0, 42)
	cycle := uint64(0)
	var deltas []uint64
	for i := 0; i < 30; i++ {
		cycle += 100
		l.RecordBranch(uint64(i), uint64(i)+1, cycle, false, false)
		r, _ := l.Last()
		deltas = append(deltas, r.Cycles)
	}
	varied := false
	for _, d := range deltas[1:] {
		if d != 100 {
			varied = true
		}
		if d > 120 || d < 80 {
			t.Errorf("delta %d implausibly far from 100 for stddev 3", d)
		}
	}
	if !varied {
		t.Error("noise model should perturb at least one measurement")
	}
	// Determinism: same seed, same noise.
	l2 := New(DefaultDepth)
	l2.SetNoise(3.0, 42)
	cycle = 0
	for i := 0; i < 30; i++ {
		cycle += 100
		l2.RecordBranch(uint64(i), uint64(i)+1, cycle, false, false)
		r, _ := l2.Last()
		if r.Cycles != deltas[i] {
			t.Fatal("noise must be deterministic for a fixed seed")
		}
	}
}

// TestResetPreservesConfiguredSeed: a pooled core recycled through
// Reset must keep the noise seed configured via SetNoise — Reset used to
// reinstall the New default (0x1b2), silently changing the fault stream
// of a reused core mid-sweep.
func TestResetPreservesConfiguredSeed(t *testing.T) {
	record30 := func(l *LBR) []uint64 {
		cycle := uint64(0)
		out := make([]uint64, 0, 30)
		for i := 0; i < 30; i++ {
			cycle += 100
			l.RecordBranch(uint64(i), uint64(i)+1, cycle, false, false)
			r, _ := l.Last()
			out = append(out, r.Cycles)
		}
		return out
	}

	l := New(DefaultDepth)
	l.SetNoise(3.0, 42)
	want := record30(l)

	l.Reset()
	if l.Enabled() != true {
		t.Fatal("Reset must re-enable recording")
	}
	if l.seed != 42 {
		t.Fatalf("Reset discarded the configured seed: got %#x, want 42", l.seed)
	}
	// Reset turns the noise magnitude off but must re-seed the generator
	// from the configured seed, not the New default. Re-arm only the
	// magnitude (white box) so the generator state itself is under test.
	l.noiseStd = 3.0
	if got := record30(l); !slicesEqual(got, want) {
		t.Error("noise stream changed across Reset with the same configured seed")
	}

	l.Reset()
	ref := New(DefaultDepth)
	ref.SetNoise(3.0, 42)
	refDeltas := record30(ref)
	l.noiseStd = 3.0
	if got := record30(l); !slicesEqual(got, refDeltas) {
		t.Error("reused core's stream must be bit-identical to a fresh core with the same seed")
	}

	// An LBR that never had SetNoise called keeps the New default across
	// Reset.
	v := New(DefaultDepth)
	v.Reset()
	if v.seed != defaultSeed {
		t.Errorf("unconfigured seed after Reset = %#x, want %#x", v.seed, defaultSeed)
	}
}

func slicesEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestDefaultDepth(t *testing.T) {
	if New(0).Depth() != DefaultDepth {
		t.Errorf("Depth = %d", New(0).Depth())
	}
	if New(-3).Depth() != DefaultDepth {
		t.Error("negative depth should default")
	}
}
