// Package lbr models Intel's Last Branch Record facility.
//
// The LBR is a ring of records describing retired control-transfer
// instructions: source PC, target PC, whether the prediction was correct
// (valid only for conditional branches, as on real hardware), and the
// number of core cycles elapsed since the previous retired branch. The
// paper uses the cycle field as its measurement channel because it is
// orders of magnitude less noisy than rdtsc (§2.3, footnote 2); the
// configurable noise model here lets experiments quantify that claim.
package lbr

import "repro/internal/nvrand"

// Record is one retired-branch log entry.
type Record struct {
	From uint64 // PC of the branch instruction (first byte)
	To   uint64 // target PC it retired to
	// Mispredicted reports a wrong prediction. Hardware documents this
	// bit only for conditional branches; MispredValid mirrors that.
	Mispredicted bool
	MispredValid bool
	// Cycles is the elapsed core cycle count between the retirement of
	// the previous recorded branch and this one, after measurement noise.
	Cycles uint64
}

// DefaultDepth is the ring depth of modern Intel LBRs.
const DefaultDepth = 32

// LBR is the last-branch-record ring. Not safe for concurrent use.
type LBR struct {
	records []Record
	next    int
	filled  bool
	enabled bool
	frozen  bool

	lastRetire uint64 // cycle of the previous recorded branch retirement

	// Noise model: each Cycles value gets max(0, round(N(0, NoiseStdDev)))
	// added. Zero stddev (the default) models the near-noiseless LBR; a
	// large value models an rdtsc-based channel.
	noiseStd float64
	seed     uint64 // configured RNG seed; survives Reset
	rng      *nvrand.Rand
}

// defaultSeed seeds the noise generator of an LBR whose seed was never
// configured through SetNoise.
const defaultSeed = 0x1b2

// New returns an enabled LBR with the given ring depth (DefaultDepth if
// depth <= 0).
func New(depth int) *LBR {
	if depth <= 0 {
		depth = DefaultDepth
	}
	return &LBR{records: make([]Record, depth), enabled: true, seed: defaultSeed, rng: nvrand.New(defaultSeed)}
}

// SetNoise configures the cycle measurement noise standard deviation and
// the seed of its generator. The seed is sticky: Reset re-seeds the
// generator from it rather than the New default, so a pooled core
// recycled mid-sweep keeps the fault stream it was configured with.
func (l *LBR) SetNoise(stddev float64, seed uint64) {
	l.noiseStd = stddev
	l.seed = seed
	l.rng = nvrand.New(seed)
}

// SetEnabled turns recording on or off. SGX disables LBR recording while
// an enclave executes; internal/sgx drives this.
func (l *LBR) SetEnabled(on bool) { l.enabled = on }

// Enabled reports whether the LBR is recording.
func (l *LBR) Enabled() bool { return l.enabled }

// Freeze stops recording until Unfreeze, without clearing state. The
// attacker freezes the LBR while reading it, as perf subsystems do.
func (l *LBR) Freeze() { l.frozen = true }

// Unfreeze resumes recording.
func (l *LBR) Unfreeze() { l.frozen = false }

// Reset returns the LBR to its post-New state: ring empty, recording
// enabled and unfrozen, noise model off with its generator re-seeded to
// the configured seed (the New default when SetNoise was never called).
// Used when a pooled simulator core is recycled.
func (l *LBR) Reset() {
	l.Clear()
	l.enabled = true
	l.frozen = false
	l.noiseStd = 0
	if l.rng == nil {
		l.rng = nvrand.New(l.seed)
	} else {
		// Reseed in place: the temporary from New is inlined away, so
		// resetting a pooled LBR stays allocation-free.
		*l.rng = *nvrand.New(l.seed)
	}
}

// Clear empties the ring.
func (l *LBR) Clear() {
	l.next = 0
	l.filled = false
	l.lastRetire = 0
}

// RecordBranch logs a retired control transfer. cycle is the absolute
// core cycle of retirement. The CPU core calls this; attack code reads
// the ring via Records.
func (l *LBR) RecordBranch(from, to, cycle uint64, mispredicted, mispredValid bool) {
	if !l.enabled || l.frozen {
		return
	}
	delta := cycle - l.lastRetire
	if l.lastRetire == 0 {
		delta = 0
	}
	l.lastRetire = cycle
	if l.noiseStd > 0 {
		n := l.rng.NormFloat64() * l.noiseStd
		if d := float64(delta) + n; d > 0 {
			delta = uint64(d + 0.5)
		} else {
			delta = 0
		}
	}
	l.records[l.next] = Record{
		From:         from,
		To:           to,
		Mispredicted: mispredicted,
		MispredValid: mispredValid,
		Cycles:       delta,
	}
	l.next++
	if l.next == len(l.records) {
		l.next = 0
		l.filled = true
	}
}

// Records returns the ring contents oldest-first. The returned slice is
// freshly allocated; hot paths use RecordsAppend with a reusable buffer.
func (l *LBR) Records() []Record {
	return l.RecordsAppend(nil)
}

// RecordsAppend appends the ring contents oldest-first to dst and
// returns the extended slice, allocating only when dst lacks capacity.
// Probe loops pass a scratch buffer (dst[:0]) so that reading the ring
// — which happens once per measured victim step — costs nothing.
func (l *LBR) RecordsAppend(dst []Record) []Record {
	if !l.filled {
		return append(dst, l.records[:l.next]...)
	}
	dst = append(dst, l.records[l.next:]...)
	return append(dst, l.records[:l.next]...)
}

// Last returns the most recent record, or false if the ring is empty.
func (l *LBR) Last() (Record, bool) {
	if l.next == 0 && !l.filled {
		return Record{}, false
	}
	idx := l.next - 1
	if idx < 0 {
		idx = len(l.records) - 1
	}
	return l.records[idx], true
}

// FindFrom returns the most recent record whose From equals pc, scanning
// newest-first, and whether one was found. This is the primary probe
// read used by the NightVision measurement harness; it scans the ring
// in place without materializing it.
func (l *LBR) FindFrom(pc uint64) (Record, bool) {
	count := l.next
	if l.filled {
		count = len(l.records)
	}
	idx := l.next
	for i := 0; i < count; i++ {
		idx--
		if idx < 0 {
			idx = len(l.records) - 1
		}
		if l.records[idx].From == pc {
			return l.records[idx], true
		}
	}
	return Record{}, false
}

// Depth returns the ring depth.
func (l *LBR) Depth() int { return len(l.records) }
