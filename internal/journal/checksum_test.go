package journal

// Tests for the sealed-segment SHA-256 integrity trailer (PR 10): WAL
// segments shipped between cluster peers must be verifiable on receive
// and at adoption time, while pre-trailer journals stay readable.

import (
	"strings"
	"testing"
)

func sealOneSegment(t *testing.T, n int) (j *Journal, raw []byte) {
	t.Helper()
	j, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	for i := 0; i < n; i++ {
		if err := j.Append(segRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	name, err := j.SealActive()
	if err != nil {
		t.Fatal(err)
	}
	raw, err = j.ReadSegment(name)
	if err != nil {
		t.Fatal(err)
	}
	return j, raw
}

func TestVerifySegmentAcceptsIntactAndRejectsFlippedByte(t *testing.T) {
	_, raw := sealOneSegment(t, 5)
	if err := VerifySegment(raw); err != nil {
		t.Fatalf("intact segment: %v", err)
	}
	// Flip one byte inside the first record's job ID.
	i := strings.Index(string(raw), "job-0")
	if i < 0 {
		t.Fatal("payload not found")
	}
	mut := append([]byte(nil), raw...)
	mut[i] ^= 0x01
	if err := VerifySegment(mut); err == nil {
		t.Fatal("flipped byte not detected")
	}
}

func TestVerifySegmentRejectsBytesAfterTrailer(t *testing.T) {
	_, raw := sealOneSegment(t, 2)
	mut := append(append([]byte(nil), raw...), []byte(`{"type":"submitted","job_id":"late","time":"2026-01-01T00:00:00Z"}`+"\n")...)
	if err := VerifySegment(mut); err == nil {
		t.Fatal("appended bytes after the trailer not detected")
	}
}

func TestVerifySegmentLegacyNoTrailerPasses(t *testing.T) {
	legacy := []byte(`{"type":"submitted","job_id":"a","time":"2026-01-01T00:00:00Z"}` + "\n" +
		`{"type":"completed","job_id":"a","time":"2026-01-01T00:00:01Z"}` + "\n")
	if err := VerifySegment(legacy); err != nil {
		t.Fatalf("legacy segment must verify as nil, got %v", err)
	}
	if err := VerifySegment(nil); err != nil {
		t.Fatalf("empty segment: %v", err)
	}
}

func TestTrailerNeverReachesReplay(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := j.Append(segRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := j.SealActive(); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	for _, r := range j2.Records() {
		if r.Type == TypeSealSHA256 {
			t.Fatal("seal trailer leaked into replayed records")
		}
	}
	if got := len(j2.Records()); got != 4 {
		t.Fatalf("replayed %d records, want 4", got)
	}
}

func TestSHA256HexMatchesTrailer(t *testing.T) {
	_, raw := sealOneSegment(t, 1)
	recs, _ := ParseRecords(raw)
	tr := recs[len(recs)-1]
	if tr.Type != TypeSealSHA256 {
		t.Fatalf("last record type = %s", tr.Type)
	}
	// The trailer digest covers everything before the trailer line.
	i := strings.LastIndex(strings.TrimRight(string(raw), "\n"), "\n")
	if got := SHA256Hex(raw[:i+1]); got != tr.Key {
		t.Fatalf("digest %s != trailer %s", got, tr.Key)
	}
}
