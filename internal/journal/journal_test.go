package journal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func rec(t Type, id string) Record {
	return Record{Type: t, JobID: id, Experiment: "fig2", Config: json.RawMessage(`{"iters":3}`), Seed: 7, Key: "k-" + id}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		rec(TypeSubmitted, "job-1"),
		rec(TypeStarted, "job-1"),
		rec(TypeCompleted, "job-1"),
		rec(TypeSubmitted, "job-2"),
	}
	for _, r := range want {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	got := j2.Records()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Type != want[i].Type || got[i].JobID != want[i].JobID ||
			got[i].Key != want[i].Key || string(got[i].Config) != string(want[i].Config) {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	if j2.Torn() != 0 {
		t.Fatalf("clean journal reported %d torn lines", j2.Torn())
	}
}

// TestSegmentRotation: a small segment threshold seals files via
// fsync-then-rename; replay reads sealed segments in order before the
// active file, preserving global record order.
func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := 0; i < n; i++ {
		if err := j.Append(rec(TypeSubmitted, fmt.Sprintf("job-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	sealed := 0
	for _, e := range names {
		if strings.HasPrefix(e.Name(), "seg-") {
			sealed++
		}
	}
	if sealed == 0 {
		t.Fatal("no sealed segments despite tiny threshold")
	}

	j2, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	got := j2.Records()
	if len(got) != n {
		t.Fatalf("replayed %d records, want %d", len(got), n)
	}
	for i, r := range got {
		if want := fmt.Sprintf("job-%d", i); r.JobID != want {
			t.Fatalf("record %d out of order: %s, want %s", i, r.JobID, want)
		}
	}
}

// TestTornTailTolerated: a crash mid-write leaves a half-record at the
// end of the active file; replay keeps everything before the tear.
func TestTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(rec(TypeSubmitted, fmt.Sprintf("job-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	// Tear: append half a record with no trailing newline.
	f, err := os.OpenFile(filepath.Join(dir, "current.ndjson"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"type":"submitted","job_id":"job-tor`)
	f.Close()

	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := j2.Records(); len(got) != 3 {
		t.Fatalf("replayed %d records, want 3 (torn tail dropped)", len(got))
	}
	if j2.Torn() == 0 {
		t.Fatal("torn line not reported")
	}

	// Open sealed the torn file and started a fresh active file, so
	// appends after recovery are durable and a further replay sees the
	// pre-tear records plus the new one.
	if err := j2.Append(rec(TypeSubmitted, "job-new")); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	got := j3.Records()
	if len(got) != 4 || got[3].JobID != "job-new" {
		t.Fatalf("post-tear replay: %d records, last %+v", len(got), got[len(got)-1])
	}
}

func TestReplayPreservesTimeAndDeadline(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := rec(TypeSubmitted, "job-1")
	r.DeadlineMS = 1500
	r.Priority = 3
	if err := j.Append(r); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	got := j2.Records()
	if len(got) != 1 || got[0].DeadlineMS != 1500 || got[0].Priority != 3 || got[0].Time.IsZero() {
		t.Fatalf("replayed %+v", got)
	}
}

func TestClosedJournalRejectsAppends(t *testing.T) {
	j, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(rec(TypeSubmitted, "job-1")); err == nil {
		t.Fatal("append after Close succeeded")
	}
	if err := j.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}
