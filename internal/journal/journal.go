// Package journal is the job engine's write-ahead log: an append-only
// NDJSON record stream that makes submissions durable across daemon
// crashes. internal/jobs appends one record per lifecycle transition
// (submitted, started, completed, failed, canceled, timed_out, plus
// interrupted stamped at recovery time); on restart it replays the
// stream and re-enqueues every job that never reached a terminal state.
//
// Durability discipline: every Append is written and fsynced before it
// returns, so a record that Append acknowledged survives a kill -9.
// The stream is segmented: appends go to an active file (current.ndjson)
// and once it grows past the segment threshold it is fsynced, closed and
// atomically renamed to a sealed seg-NNNNNNNN.ndjson — sealed segments
// are never written again. Replay reads sealed segments in name order,
// then the active file, and tolerates a torn final line (a crash can
// interrupt a write mid-record; everything before the tear is intact by
// construction).
//
// The journal deliberately stores no result payloads: results live in
// the content-addressed store (internal/store), so replaying a job that
// already completed is a cache hit and replaying an interrupted job
// recomputes bit-identical bytes (internal/runner's determinism
// guarantee).
package journal

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Type tags one lifecycle record.
type Type string

const (
	TypeSubmitted   Type = "submitted"
	TypeStarted     Type = "started"
	TypeInterrupted Type = "interrupted" // stamped during recovery for jobs running at crash time
	TypeCompleted   Type = "completed"
	TypeFailed      Type = "failed"
	TypeCanceled    Type = "canceled"
	TypeTimedOut    Type = "timed_out"

	// Cluster lifecycle records (PR 7). Journals written before these
	// types existed replay unchanged: replay switches ignore unknown
	// types, and the new Node/OriginJob fields are omitempty.
	TypeStolen    Type = "stolen"    // victim side: job handed to a peer (Node = thief)
	TypeReclaimed Type = "reclaimed" // victim side: stolen job re-enqueued after the thief went silent
	TypeAdopted   Type = "adopted"   // adopter side: job resubmitted from a dead peer's shipped WAL

	// TypeSealSHA256 is the integrity trailer written as the last record
	// of every sealed segment (PR 10): its Key field holds the hex
	// SHA-256 of all segment bytes before the trailer line. Its JobID is
	// the sentinel SealJobID so pre-trailer parsers (which require a
	// non-empty job ID) keep reading it, and replay switches ignore the
	// unknown type. Segments sealed before this existed have no trailer
	// and verify as legacy.
	TypeSealSHA256 Type = "seal_sha256"
)

// SealJobID is the sentinel JobID carried by TypeSealSHA256 trailers.
const SealJobID = "_seal"

// Terminal reports whether the record type ends a job's lifecycle.
func (t Type) Terminal() bool {
	switch t {
	case TypeCompleted, TypeFailed, TypeCanceled, TypeTimedOut:
		return true
	}
	return false
}

// Record is one NDJSON line. Submitted records carry the full identity
// of the job (canonical config JSON, seed, priority, deadline, cache
// key); later records reference the job by ID only.
type Record struct {
	Type       Type            `json:"type"`
	JobID      string          `json:"job_id"`
	Experiment string          `json:"experiment,omitempty"`
	Config     json.RawMessage `json:"config,omitempty"` // canonical config JSON (registry.CanonicalConfig)
	Seed       uint64          `json:"seed,omitempty"`
	Priority   int             `json:"priority,omitempty"`
	DeadlineMS int64           `json:"deadline_ms,omitempty"`
	Key        string          `json:"key,omitempty"` // content-address in internal/store
	FromCache  bool            `json:"from_cache,omitempty"`
	Error      string          `json:"error,omitempty"`
	// Node names the peer involved in this transition: the node running
	// the job for started/interrupted records, the thief for stolen
	// records, the origin node for adopted records. Empty in pre-cluster
	// journals, which keeps them backward-readable.
	Node string `json:"node,omitempty"`
	// OriginJob is the job's ID on the origin node (adopted records
	// only), so an adopter can dedupe adoptions across its own restarts.
	OriginJob string `json:"origin_job,omitempty"`
	// TraceID is the distributed trace the job belongs to (PR 9),
	// carried on submitted/started/stolen/adopted records so a replayed
	// or adopted job keeps writing into the same cross-node timeline.
	// Empty in pre-PR-9 journals; replay mints a fresh ID then.
	TraceID string    `json:"trace_id,omitempty"`
	Time    time.Time `json:"time"`
}

// FS is the journal's filesystem seam. The default is the real OS
// filesystem; internal/chaos injects one that fails or freezes
// deterministically.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	// OpenAppend opens (creating if needed) a file for appending.
	OpenAppend(name string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadFile(name string) ([]byte, error)
	// ReadDir returns the names of the directory's entries.
	ReadDir(name string) ([]string, error)
}

// File is the writable-file seam: *os.File satisfies it.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

type osFS struct{}

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}
func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }
func (osFS) ReadDir(name string) ([]string, error) {
	ents, err := os.ReadDir(name)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names, nil
}

// OSFS returns the real-filesystem implementation of FS.
func OSFS() FS { return osFS{} }

// Options tunes Open.
type Options struct {
	// FS is the filesystem seam; nil means the real OS filesystem.
	FS FS
	// SegmentBytes seals the active file once it grows past this size;
	// <= 0 means 1 MiB. Sealing is a durability boundary, not a
	// correctness one — replay concatenates all segments.
	SegmentBytes int
}

const (
	activeName = "current.ndjson"
	sealedGlob = "seg-"
	sealedExt  = ".ndjson"
)

// Journal is an open write-ahead log. All methods are safe for
// concurrent use; Append calls are serialized, so the on-disk record
// order is the order Append calls returned.
type Journal struct {
	mu       sync.Mutex
	dir      string
	fs       FS
	segBytes int
	cur      File
	curSize  int
	curHash  hash.Hash // SHA-256 of the active file's bytes so far
	sealed   int       // count of sealed segments (next seal index)
	replayed []Record
	torn     int // records dropped during replay (torn tail / corrupt line)
	closed   bool
}

// Open opens (creating if needed) the journal rooted at dir and replays
// every intact record already on disk; Records returns them. A torn or
// corrupt line ends replay of that file (everything before it is kept).
func Open(dir string, opts Options) (*Journal, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = osFS{}
	}
	segBytes := opts.SegmentBytes
	if segBytes <= 0 {
		segBytes = 1 << 20
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{dir: dir, fs: fsys, segBytes: segBytes, curHash: sha256.New()}

	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var segs []string
	for _, name := range names {
		if strings.HasPrefix(name, sealedGlob) && strings.HasSuffix(name, sealedExt) {
			segs = append(segs, name)
		}
	}
	sort.Strings(segs) // seg-%08d sorts numerically
	j.sealed = len(segs)
	for _, name := range segs {
		raw, err := fsys.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("journal: %w", err)
		}
		recs, torn := parse(raw)
		j.replayed = append(j.replayed, dropTrailers(recs)...)
		j.torn += torn
	}

	active := filepath.Join(dir, activeName)
	if raw, err := fsys.ReadFile(active); err == nil && len(raw) > 0 {
		recs, torn := parse(raw)
		j.replayed = append(j.replayed, dropTrailers(recs)...)
		j.torn += torn
		// Seal the pre-crash active file rather than appending after a
		// possible torn tail: a new record written after a half-line
		// would be unparseable on the next replay. Sealing is cheap and
		// keeps the append path append-only.
		sealed := filepath.Join(dir, fmt.Sprintf("%s%08d%s", sealedGlob, j.sealed, sealedExt))
		if err := fsys.Rename(active, sealed); err != nil {
			return nil, fmt.Errorf("journal: seal pre-crash active: %w", err)
		}
		j.sealed++
	}

	cur, err := fsys.OpenAppend(active)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j.cur = cur
	return j, nil
}

// ParseRecords splits NDJSON bytes into records, stopping at the first
// malformed line, exactly as replay does. Cluster peers use it to
// replay a dead node's shipped segments (internal/cluster failover).
func ParseRecords(raw []byte) ([]Record, int) { return parse(raw) }

// parse splits NDJSON bytes into records, stopping at the first
// malformed line (a torn tail from a crash mid-write). It returns the
// intact records and how many lines were dropped.
func parse(raw []byte) ([]Record, int) {
	var recs []Record
	lines := strings.Split(string(raw), "\n")
	for i, line := range lines {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var r Record
		if err := json.Unmarshal([]byte(line), &r); err != nil || r.Type == "" || r.JobID == "" {
			// Everything after a tear is unreliable: the write that tore
			// this line also gates every later write (appends are
			// serialized and fsynced in order).
			return recs, len(lines) - i
		}
		recs = append(recs, r)
	}
	return recs, 0
}

// dropTrailers filters TypeSealSHA256 integrity trailers out of a
// record stream: they describe segment bytes, not job lifecycles, so
// replay never sees them.
func dropTrailers(recs []Record) []Record {
	out := recs[:0]
	for _, r := range recs {
		if r.Type != TypeSealSHA256 {
			out = append(out, r)
		}
	}
	return out
}

// Records returns the records replayed by Open, in journal order. The
// returned slice is shared; treat it as read-only.
func (j *Journal) Records() []Record { return j.replayed }

// Torn reports how many trailing lines replay dropped as torn or
// corrupt.
func (j *Journal) Torn() int { return j.torn }

// Dir returns the journal's root directory.
func (j *Journal) Dir() string { return j.dir }

// Append writes one record followed by a newline and fsyncs it. When it
// returns nil the record is durable. The journal stamps Time if unset.
func (j *Journal) Append(rec Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("journal: closed")
	}
	if rec.Time.IsZero() {
		rec.Time = time.Now().UTC()
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	line = append(line, '\n')
	if _, err := j.cur.Write(line); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := j.cur.Sync(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.curHash.Write(line)
	j.curSize += len(line)
	if j.curSize >= j.segBytes {
		if err := j.sealLocked(); err != nil {
			return err
		}
	}
	return nil
}

// sealLocked rotates the active file into a sealed segment: append the
// SHA-256 trailer record, fsync, close, rename, reopen a fresh active
// file. Caller holds j.mu.
func (j *Journal) sealLocked() error {
	trailer := Record{
		Type:  TypeSealSHA256,
		JobID: SealJobID,
		Key:   hex.EncodeToString(j.curHash.Sum(nil)),
		Time:  time.Now().UTC(),
	}
	line, err := json.Marshal(trailer)
	if err != nil {
		return fmt.Errorf("journal: seal trailer: %w", err)
	}
	line = append(line, '\n')
	if _, err := j.cur.Write(line); err != nil {
		return fmt.Errorf("journal: seal trailer: %w", err)
	}
	if err := j.cur.Sync(); err != nil {
		return fmt.Errorf("journal: seal trailer: %w", err)
	}
	if err := j.cur.Close(); err != nil {
		return fmt.Errorf("journal: seal close: %w", err)
	}
	sealed := filepath.Join(j.dir, fmt.Sprintf("%s%08d%s", sealedGlob, j.sealed, sealedExt))
	if err := j.fs.Rename(filepath.Join(j.dir, activeName), sealed); err != nil {
		return fmt.Errorf("journal: seal rename: %w", err)
	}
	j.sealed++
	cur, err := j.fs.OpenAppend(filepath.Join(j.dir, activeName))
	if err != nil {
		return fmt.Errorf("journal: reopen active: %w", err)
	}
	j.cur = cur
	j.curSize = 0
	j.curHash = sha256.New()
	return nil
}

// SealActive force-rotates a non-empty active file into a sealed
// segment so its records become shippable (sealed segments are
// immutable; the WAL shipper never reads the active file). It returns
// the sealed segment's name, or "" when the active file held no
// records and nothing was sealed.
func (j *Journal) SealActive() (string, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return "", fmt.Errorf("journal: closed")
	}
	if j.curSize == 0 {
		return "", nil
	}
	name := fmt.Sprintf("%s%08d%s", sealedGlob, j.sealed, sealedExt)
	if err := j.sealLocked(); err != nil {
		return "", err
	}
	return name, nil
}

// Segments lists the sealed segment names in replay (name) order. The
// active file is excluded: only sealed segments are immutable and safe
// to read while appends continue.
func (j *Journal) Segments() ([]string, error) {
	names, err := j.fs.ReadDir(j.dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var segs []string
	for _, name := range names {
		if strings.HasPrefix(name, sealedGlob) && strings.HasSuffix(name, sealedExt) {
			segs = append(segs, name)
		}
	}
	sort.Strings(segs)
	return segs, nil
}

// IsSegmentName reports whether name is a well-formed sealed-segment
// file name (no path elements). Peers validate shipped names with it
// before touching their replica directories.
func IsSegmentName(name string) bool {
	if !strings.HasPrefix(name, sealedGlob) || !strings.HasSuffix(name, sealedExt) {
		return false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, sealedGlob), sealedExt)
	if len(mid) != 8 {
		return false
	}
	for _, c := range mid {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// ReadSegment returns a sealed segment's raw bytes. Sealed segments
// never change, so the read needs no coordination with appends.
func (j *Journal) ReadSegment(name string) ([]byte, error) {
	if !IsSegmentName(name) {
		return nil, fmt.Errorf("journal: invalid segment name %q", name)
	}
	raw, err := j.fs.ReadFile(filepath.Join(j.dir, name))
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return raw, nil
}

// SHA256Hex returns the hex SHA-256 digest of b. Cluster peers stamp it
// on shipped segments (X-Nightvision-Segment-SHA256 header) and
// receivers recompute it before accepting the bytes.
func SHA256Hex(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// VerifySegment checks a sealed segment's embedded SHA-256 trailer
// against its bytes: the trailer's Key must equal the digest of
// everything before the trailer line, and nothing may follow it.
// Segments with no trailer (sealed before trailers existed, or a
// pre-crash active file sealed by Open without a chance to stamp one)
// verify as legacy and return nil — the journal stays
// backward-readable. Torn or corrupt segments whose damage removed the
// trailer also pass here; the transport-level digest header covers
// in-transit damage, this trailer covers at-rest damage to segments
// that were sealed intact.
func VerifySegment(raw []byte) error {
	off := 0
	for off < len(raw) {
		end := off
		for end < len(raw) && raw[end] != '\n' {
			end++
		}
		line := raw[off:end]
		next := end
		if next < len(raw) {
			next++ // consume the newline
		}
		if len(strings.TrimSpace(string(line))) > 0 {
			var r Record
			if err := json.Unmarshal(line, &r); err == nil && r.Type == TypeSealSHA256 {
				if got := SHA256Hex(raw[:off]); got != r.Key {
					return fmt.Errorf("journal: segment checksum mismatch: trailer %s, computed %s", r.Key, got)
				}
				if strings.TrimSpace(string(raw[next:])) != "" {
					return fmt.Errorf("journal: segment has bytes after its checksum trailer")
				}
				return nil
			}
		}
		off = next
	}
	return nil // no trailer: legacy segment
}

// Close fsyncs and closes the active file. Appends after Close fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if err := j.cur.Sync(); err != nil {
		j.cur.Close()
		return fmt.Errorf("journal: %w", err)
	}
	if err := j.cur.Close(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}
