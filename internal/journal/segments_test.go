package journal

// Tests for the segment surface internal/cluster ships over: forced
// sealing, sealed-segment listing/reading, and name validation.

import (
	"fmt"
	"path/filepath"
	"testing"
)

func segRec(i int) Record {
	return Record{Type: TypeSubmitted, JobID: fmt.Sprintf("job-%d", i), Key: "k"}
}

func TestSealActiveRotates(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	// Empty active file: nothing to seal.
	if name, err := j.SealActive(); err != nil || name != "" {
		t.Fatalf("SealActive on empty journal = (%q, %v), want (\"\", nil)", name, err)
	}

	for i := 0; i < 3; i++ {
		if err := j.Append(segRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	name, err := j.SealActive()
	if err != nil {
		t.Fatal(err)
	}
	if !IsSegmentName(name) {
		t.Fatalf("SealActive returned %q, not a segment name", name)
	}
	segs, err := j.Segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0] != name {
		t.Fatalf("Segments = %v, want [%s]", segs, name)
	}

	// The sealed bytes parse back to exactly the appended records plus
	// the SHA-256 integrity trailer, and the trailer verifies.
	raw, err := j.ReadSegment(name)
	if err != nil {
		t.Fatal(err)
	}
	recs, torn := ParseRecords(raw)
	if torn != 0 || len(recs) != 4 {
		t.Fatalf("sealed segment parsed to %d records (%d torn), want 3 + trailer", len(recs), torn)
	}
	for i, r := range recs[:3] {
		if r.JobID != fmt.Sprintf("job-%d", i) {
			t.Fatalf("record %d is %q", i, r.JobID)
		}
	}
	if tr := recs[3]; tr.Type != TypeSealSHA256 || tr.JobID != SealJobID {
		t.Fatalf("last record = %+v, want a seal trailer", recs[3])
	}
	if err := VerifySegment(raw); err != nil {
		t.Fatalf("VerifySegment on a freshly sealed segment: %v", err)
	}

	// Appends continue on a fresh active file; a second seal produces
	// the next name in order.
	if err := j.Append(segRec(3)); err != nil {
		t.Fatal(err)
	}
	name2, err := j.SealActive()
	if err != nil {
		t.Fatal(err)
	}
	if name2 <= name {
		t.Fatalf("second seal %q does not sort after %q", name2, name)
	}
}

func TestSealedSegmentsSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := j.Append(segRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := j.SealActive(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(segRec(5)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := len(j2.Records()); got != 6 {
		t.Fatalf("reopen replayed %d records, want 6", got)
	}
	// Reopen seals the pre-crash active file, so both segments list.
	segs, err := j2.Segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 {
		t.Fatalf("Segments after reopen = %v, want 2 entries", segs)
	}
}

func TestIsSegmentName(t *testing.T) {
	valid := []string{"seg-00000000.ndjson", "seg-00000042.ndjson", "seg-99999999.ndjson"}
	for _, name := range valid {
		if !IsSegmentName(name) {
			t.Fatalf("IsSegmentName(%q) = false", name)
		}
	}
	invalid := []string{
		"", "current.ndjson", "seg-.ndjson", "seg-1.ndjson",
		"seg-000000001.ndjson", "seg-0000000a.ndjson",
		"seg-00000000.ndjson.bak", "../seg-00000000.ndjson",
		"seg-00000000.ndjson/..", filepath.Join("x", "seg-00000000.ndjson"),
	}
	for _, name := range invalid {
		if IsSegmentName(name) {
			t.Fatalf("IsSegmentName(%q) = true", name)
		}
	}
}

func TestReadSegmentRejectsBadNames(t *testing.T) {
	j, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if _, err := j.ReadSegment("../../etc/passwd"); err == nil {
		t.Fatal("ReadSegment accepted a path-traversal name")
	}
	if _, err := j.ReadSegment("current.ndjson"); err == nil {
		t.Fatal("ReadSegment accepted the active file")
	}
}
