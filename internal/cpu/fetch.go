package cpu

import (
	"repro/internal/btb"
	"repro/internal/isa"
)

// noPrediction marks a control transfer the front end could not predict
// (empty RAS, unknown indirect target). Execution always "mispredicts"
// such slots, modeling the fetch stall until resolution.
const noPrediction = ^uint64(0)

// pwSpan returns how many prediction windows the queue currently spans.
func (c *Core) pwSpan() int {
	if len(c.queue) == c.qHead {
		return 0
	}
	return int(c.queue[len(c.queue)-1].pwid - c.queue[c.qHead].pwid + 1)
}

// fillQueue lets the front end run ahead until it spans FetchAheadPWs
// prediction windows, stalls, or stops at an unresolvable redirect.
func (c *Core) fillQueue() {
	for !c.fetchStalled && !c.fetchStopped && c.pwSpan() < c.cfg.FetchAheadPWs {
		c.fetchPW()
	}
}

// decodeAt speculatively fetches and decodes the instruction at pc,
// consulting the direct-mapped decode cache first. A hit skips the page
// probe and decode entirely; TouchExec replays the accessed bits the
// real fetch would have set, so A/D-bit observers cannot distinguish a
// cached decode from a fresh one. ok=false means the front end must
// stall: nothing fetchable at pc, or a valid opcode truncated by a
// permission boundary. Stalls are not cached — any change that unblocks
// them bumps the memory generation anyway.
func (c *Core) decodeAt(pc uint64) (isa.Inst, bool) {
	gen := c.Mem.Gen()
	e := &c.decCache[pc&(decCacheSize-1)]
	if e.gen == gen && e.pc == pc {
		c.Mem.TouchExec(pc, int(e.peekN))
		return e.in, true
	}
	n := c.Mem.PeekExec(pc, c.fetchBuf[:])
	if n == 0 {
		return isa.Inst{}, false
	}
	buf := c.fetchBuf[:n]
	in, decoded := isa.TryDecode(buf)
	if !decoded {
		if isa.Op(buf[0]).Valid() {
			// Valid opcode truncated by a permission boundary: a genuine
			// fetch stall.
			return isa.Inst{}, false
		}
		// Undefined opcode: on x86 nearly every byte decodes to
		// something, so the front end keeps walking. Model it as a
		// 1-byte pseudo-instruction that faults if it ever reaches
		// retirement. This keeps false-hit detection alive across
		// padding and data bytes.
		in = isa.Inst{Op: isa.Op(buf[0]), Size: 1}
	}
	*e = decEntry{pc: pc, gen: gen, in: in, peekN: uint8(n)}
	return in, true
}

// fetchPW fetches and decodes one prediction window starting at
// c.fetchPC, enqueueing decoded instructions. It implements the BTB
// access semantics of §2.4 and the false-hit deallocation of §2.3.
func (c *Core) fetchPW() {
	// The PW occupies the decoders for a number of cycles proportional
	// to its instruction count (decode width = retire width); resteer
	// penalties accumulate on top inside fetchPWBody.
	nDecoded := c.fetchPWBody()
	w := c.cfg.RetireWidth
	cycles := (nDecoded + w - 1) / w
	if cycles < 1 {
		cycles = 1
	}
	c.fetchClock += uint64(cycles)
}

// fetchPWBody walks one prediction window and returns how many
// instructions it decoded.
func (c *Core) fetchPWBody() (nDecoded int) {
	c.fetchWindows++
	c.obs.FetchWindows.Inc()
	pc := c.fetchPC
	pwid := c.nextPWID
	c.nextPWID++
	fetchCycle := c.fetchClock

	blockSize := c.BTB.Config().BlockSize()
	blockEnd := (pc | (blockSize - 1)) + 1

	// One banked BTB read covers the whole window: the bundle holds
	// every candidate branch of this block, and each consultation below
	// (where the pre-bundle loop issued a fresh associative Lookup)
	// answers from it with identical semantics and statistics.
	c.BTB.FillBundle(&c.pwBundle, pc)
	hit, ok := c.pwBundle.Lookup(pc)
	cur := pc
	for {
		// A predicted branch byte strictly behind the decode point means
		// the prediction pointed into the middle of an instruction we
		// already consumed: a false hit. Deallocate and re-predict.
		if ok && cur > hit.BranchPC {
			c.falseHit(hit)
			if cur >= blockEnd {
				c.fetchPC = cur
				return
			}
			hit, ok = c.pwBundle.Lookup(cur)
			continue
		}
		if cur >= blockEnd {
			// PW ends at the 32-byte boundary with no taken branch.
			c.fetchPC = cur
			return
		}

		in, fetched := c.decodeAt(cur)
		if !fetched {
			c.fetchStalled = true
			return
		}
		last := in.LastByte(cur)

		// Predicted branch byte inside this instruction but not at its
		// end: the fetched bytes past the predicted "branch" are bogus;
		// decode exposes the false hit.
		if ok && last > hit.BranchPC {
			c.falseHit(hit)
			hit, ok = c.pwBundle.Lookup(cur)
			continue
		}
		// An instruction spilling past the block boundary has its last
		// byte indexed in the *next* block: consult the BTB there too
		// (split-branch prediction). Entries pointing into the spilled
		// tail are false hits.
		if !ok && last >= blockEnd {
			for {
				h2, ok2 := c.BTB.Lookup(blockEnd)
				if !ok2 || h2.BranchPC > last {
					break
				}
				if h2.BranchPC == last {
					hit, ok = h2, true
					break
				}
				c.falseHit(h2) // predicted byte inside the spilled tail
			}
		}
		atPrediction := ok && last == hit.BranchPC

		switch kind := in.Kind(); kind {
		case isa.KindOther, isa.KindHalt:
			// The front end does not interpret hlt: fetch walks on
			// through it exactly like any other non-control-transfer
			// instruction (retirement stops the core later). This keeps
			// false-hit detection live for predicted bytes beyond it.
			if atPrediction {
				// Takeaway 1: a non-control-transfer instruction at the
				// predicted branch byte. Deallocate, pay the squash, and
				// resteer to the instruction's own fall-through.
				c.falseHit(hit)
				nDecoded++
				*c.enqueue() = slot{pc: cur, in: in, pwid: pwid, fetchCycle: fetchCycle, nextPredicted: cur + uint64(in.Size)}
				cur += uint64(in.Size)
				if cur >= blockEnd {
					c.fetchPC = cur
					return
				}
				hit, ok = c.pwBundle.Lookup(cur)
				continue
			}
			nDecoded++
			*c.enqueue() = slot{pc: cur, in: in, pwid: pwid, fetchCycle: fetchCycle, nextPredicted: cur + uint64(in.Size)}
			cur += uint64(in.Size)

		case isa.KindJump, isa.KindCall:
			target := in.BranchTarget(cur)
			if atPrediction {
				c.BTB.Touch(hit) // prediction consumed: confirmed live
				if hit.Target != target {
					// Stale target: decode corrects it (direct targets
					// resolve in decode) at resteer cost.
					c.decodeResteer()
					c.BTB.Update(last, target, kind)
				}
			} else {
				// Unpredicted direct transfer: decode resteers and the
				// BTB learns the branch — speculatively, before retire.
				c.decodeResteer()
				c.BTB.Update(last, target, kind)
			}
			if kind == isa.KindCall {
				c.specReturnPush(cur + uint64(in.Size))
			}
			nDecoded++
			*c.enqueue() = slot{pc: cur, in: in, pwid: pwid, fetchCycle: fetchCycle, nextPredicted: target, predictedTaken: true, btbHit: atPrediction}
			c.fetchPC = target
			return

		case isa.KindCond:
			if atPrediction && c.dirPred != nil && !c.dirPred.predictTaken(cur) {
				// The direction predictor overrides the BTB's implicit
				// taken prediction: fall through, keep the entry.
				atPrediction = false
			}
			if atPrediction {
				c.BTB.Touch(hit) // prediction consumed: confirmed live
				target := in.BranchTarget(cur)
				if hit.Target != target {
					c.decodeResteer()
					c.BTB.Update(last, target, kind)
				}
				nDecoded++
				*c.enqueue() = slot{pc: cur, in: in, pwid: pwid, fetchCycle: fetchCycle, nextPredicted: target, predictedTaken: true, btbHit: true}
				c.fuseTail()
				c.fetchPC = target
				return
			}
			// No BTB entry: static not-taken, PW continues.
			nDecoded++
			*c.enqueue() = slot{pc: cur, in: in, pwid: pwid, fetchCycle: fetchCycle, nextPredicted: cur + uint64(in.Size)}
			c.fuseTail()
			cur += uint64(in.Size)

		case isa.KindRet:
			if atPrediction && hit.Kind != isa.KindRet {
				// An aliased entry of the wrong kind predicted a branch
				// at a ret's last byte; it can only mispredict, so it
				// is dropped. A genuine ret entry stays: it marks the
				// return's position while the RAS provides the target.
				c.falseHit(hit)
				atPrediction = false
			}
			if atPrediction {
				c.BTB.Touch(hit) // genuine ret entry consumed
			}
			pred, has := c.specReturnPop()
			if !has {
				pred = noPrediction
			}
			if !atPrediction {
				// Returns occupy BTB entries on real hardware (the RSB
				// only supplies targets). Allocation happens here, at
				// decode — speculatively with respect to retirement —
				// which is what makes a ret visible to a single-stepping
				// NV-S probe before it retires (§6.3).
				tgt := pred
				if tgt == noPrediction {
					tgt = 0
				}
				c.BTB.Update(last, tgt, isa.KindRet)
			}
			nDecoded++
			*c.enqueue() = slot{pc: cur, in: in, pwid: pwid, fetchCycle: fetchCycle, nextPredicted: pred, predictedTaken: true, btbHit: atPrediction}
			if pred == noPrediction {
				c.fetchStopped = true
				return
			}
			c.fetchPC = pred
			return

		case isa.KindIndJump, isa.KindIndCall:
			if kind == isa.KindIndCall {
				c.specReturnPush(cur + uint64(in.Size))
			}
			pred := noPrediction
			if atPrediction {
				c.BTB.Touch(hit) // indirect prediction consumed
				pred = hit.Target
			}
			nDecoded++
			*c.enqueue() = slot{pc: cur, in: in, pwid: pwid, fetchCycle: fetchCycle, nextPredicted: pred, predictedTaken: true, btbHit: atPrediction}
			if pred == noPrediction {
				c.fetchStopped = true
				return
			}
			c.fetchPC = pred
			return
		}
	}
}

// falseHit records a decode-time BTB false hit: the entry is
// deallocated and the front end pays the squash penalty.
func (c *Core) falseHit(h btb.Hit) {
	if !c.cfg.NoFalseHitDealloc {
		c.BTB.InvalidateHit(h)
	}
	c.falseHits++
	c.squashes++
	c.obs.FalseHits.Inc()
	c.obs.Squashes.Inc()
	c.fetchClock += c.cfg.FalseHitPenalty
}

// decodeResteer charges the decode-redirect bubble.
func (c *Core) decodeResteer() {
	c.decodeResteers++
	c.obs.DecodeResteers.Inc()
	c.fetchClock += c.cfg.DecodeResteerPenalty
}

// enqueue extends the in-order queue by one and returns a pointer to
// the fresh tail slot, so callers construct the slot in place instead
// of copying it through an argument and an append. It first reclaims
// the retired prefix so the queue reuses one backing array for the
// lifetime of the core instead of reallocating as the head index walks
// forward. The pointer is valid until the next enqueue or squash.
func (c *Core) enqueue() *slot {
	if c.qHead > 0 {
		if c.qHead == len(c.queue) {
			c.queue = c.queue[:0]
			c.qHead = 0
		} else if c.qHead >= 64 && 2*c.qHead >= len(c.queue) {
			n := copy(c.queue, c.queue[c.qHead:])
			c.queue = c.queue[:n]
			c.qHead = 0
		}
	}
	if len(c.queue) == cap(c.queue) {
		c.queue = append(c.queue, slot{})
	} else {
		c.queue = c.queue[:len(c.queue)+1]
	}
	return &c.queue[len(c.queue)-1]
}

// fuseTail marks the previous slot as macro-fused with the conditional
// branch just enqueued, when fusion is enabled and the pair is a
// cmp/test immediately followed by the branch in the same PW.
func (c *Core) fuseTail() {
	if c.cfg.NoMacroFusion || len(c.queue)-c.qHead < 2 {
		return
	}
	br := &c.queue[len(c.queue)-1]
	prev := &c.queue[len(c.queue)-2]
	if prev.pwid != br.pwid {
		return
	}
	if prev.pc+uint64(prev.in.Size) != br.pc {
		return
	}
	switch prev.in.Op {
	case isa.OpCmpRR, isa.OpTestRR, isa.OpCmpI8, isa.OpCmpI32:
		prev.fusedWithNext = true
	}
}

// rasPush pushes onto a bounded return-address stack. A full stack
// drops its oldest entry by shifting in place: re-slicing the front off
// instead would strand one capacity slot per overflow and make every
// subsequent push reallocate.
func (c *Core) rasPush(stack *[]uint64, v uint64) {
	s := *stack
	if len(s) >= c.cfg.RASDepth {
		copy(s, s[1:])
		s[len(s)-1] = v
		*stack = s
		return
	}
	*stack = append(s, v)
}

// rasPop pops a bounded return-address stack.
func (c *Core) rasPop(stack *[]uint64) (uint64, bool) {
	s := *stack
	if len(s) == 0 {
		return 0, false
	}
	v := s[len(s)-1]
	*stack = s[:len(s)-1]
	return v, true
}
