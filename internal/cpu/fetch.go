package cpu

import (
	"repro/internal/btb"
	"repro/internal/isa"
	"repro/internal/mem"
)

// noPrediction marks a control transfer the front end could not predict
// (empty RAS, unknown indirect target). Execution always "mispredicts"
// such slots, modeling the fetch stall until resolution.
const noPrediction = ^uint64(0)

// pwSpan returns how many prediction windows the queue currently spans.
func (c *Core) pwSpan() int {
	if len(c.queue) == 0 {
		return 0
	}
	return int(c.queue[len(c.queue)-1].pwid - c.queue[0].pwid + 1)
}

// fillQueue lets the front end run ahead until it spans FetchAheadPWs
// prediction windows, stalls, or stops at an unresolvable redirect.
func (c *Core) fillQueue() {
	for !c.fetchStalled && !c.fetchStopped && c.pwSpan() < c.cfg.FetchAheadPWs {
		c.fetchPW()
	}
}

// specFetch reads up to isa.MaxLen instruction bytes at pc without
// triggering architectural faults: page permissions are only probed.
// It returns the bytes readable under execute permission (possibly
// fewer than requested, possibly none).
func (c *Core) specFetch(pc uint64) []byte {
	var buf [isa.MaxLen]byte
	n := 0
	for n < isa.MaxLen {
		perm, ok := c.Mem.PermAt(pc + uint64(n))
		if !ok || perm&mem.PermX == 0 || perm&mem.PermR == 0 {
			break
		}
		// Read the remainder of this page in one go.
		pageEnd := ((pc + uint64(n)) | (mem.PageSize - 1)) + 1
		take := int(pageEnd - (pc + uint64(n)))
		if take > isa.MaxLen-n {
			take = isa.MaxLen - n
		}
		if err := c.Mem.ReadBytes(pc+uint64(n), buf[n:n+take]); err != nil {
			break
		}
		n += take
	}
	return buf[:n]
}

// fetchPW fetches and decodes one prediction window starting at
// c.fetchPC, enqueueing decoded instructions. It implements the BTB
// access semantics of §2.4 and the false-hit deallocation of §2.3.
func (c *Core) fetchPW() {
	c.obs.FetchWindows.Inc()
	pc := c.fetchPC
	pwid := c.nextPWID
	c.nextPWID++
	fetchCycle := c.fetchClock
	// The PW occupies the decoders for a number of cycles proportional
	// to its instruction count (decode width = retire width); resteer
	// penalties accumulate on top inside the loop.
	nDecoded := 0
	defer func() {
		w := c.cfg.RetireWidth
		cycles := (nDecoded + w - 1) / w
		if cycles < 1 {
			cycles = 1
		}
		c.fetchClock += uint64(cycles)
	}()

	blockSize := c.BTB.Config().BlockSize()
	blockEnd := (pc | (blockSize - 1)) + 1

	hit, ok := c.BTB.Lookup(pc)
	cur := pc
	for {
		// A predicted branch byte strictly behind the decode point means
		// the prediction pointed into the middle of an instruction we
		// already consumed: a false hit. Deallocate and re-predict.
		if ok && cur > hit.BranchPC {
			c.falseHit(hit)
			if cur >= blockEnd {
				c.fetchPC = cur
				return
			}
			hit, ok = c.BTB.Lookup(cur)
			continue
		}
		if cur >= blockEnd {
			// PW ends at the 32-byte boundary with no taken branch.
			c.fetchPC = cur
			return
		}

		buf := c.specFetch(cur)
		if len(buf) == 0 {
			c.fetchStalled = true
			return
		}
		in, err := isa.Decode(buf)
		if err != nil {
			if len(buf) >= 1 && !isa.Op(buf[0]).Valid() {
				// Undefined opcode: on x86 nearly every byte decodes to
				// something, so the front end keeps walking. Model it as
				// a 1-byte pseudo-instruction that faults if it ever
				// reaches retirement. This keeps false-hit detection
				// alive across padding and data bytes.
				in = isa.Inst{Op: isa.Op(buf[0]), Size: 1}
			} else {
				// Valid opcode truncated by a permission boundary: a
				// genuine fetch stall.
				c.fetchStalled = true
				return
			}
		}
		last := in.LastByte(cur)

		// Predicted branch byte inside this instruction but not at its
		// end: the fetched bytes past the predicted "branch" are bogus;
		// decode exposes the false hit.
		if ok && last > hit.BranchPC {
			c.falseHit(hit)
			hit, ok = c.BTB.Lookup(cur)
			continue
		}
		// An instruction spilling past the block boundary has its last
		// byte indexed in the *next* block: consult the BTB there too
		// (split-branch prediction). Entries pointing into the spilled
		// tail are false hits.
		if !ok && last >= blockEnd {
			for {
				h2, ok2 := c.BTB.Lookup(blockEnd)
				if !ok2 || h2.BranchPC > last {
					break
				}
				if h2.BranchPC == last {
					hit, ok = h2, true
					break
				}
				c.falseHit(h2) // predicted byte inside the spilled tail
			}
		}
		atPrediction := ok && last == hit.BranchPC

		switch kind := in.Kind(); kind {
		case isa.KindOther, isa.KindHalt:
			// The front end does not interpret hlt: fetch walks on
			// through it exactly like any other non-control-transfer
			// instruction (retirement stops the core later). This keeps
			// false-hit detection live for predicted bytes beyond it.
			if atPrediction {
				// Takeaway 1: a non-control-transfer instruction at the
				// predicted branch byte. Deallocate, pay the squash, and
				// resteer to the instruction's own fall-through.
				c.falseHit(hit)
				nDecoded++
				c.enqueue(slot{pc: cur, in: in, pwid: pwid, fetchCycle: fetchCycle, nextPredicted: cur + uint64(in.Size)})
				cur += uint64(in.Size)
				if cur >= blockEnd {
					c.fetchPC = cur
					return
				}
				hit, ok = c.BTB.Lookup(cur)
				continue
			}
			nDecoded++
			c.enqueue(slot{pc: cur, in: in, pwid: pwid, fetchCycle: fetchCycle, nextPredicted: cur + uint64(in.Size)})
			cur += uint64(in.Size)

		case isa.KindJump, isa.KindCall:
			target := in.BranchTarget(cur)
			if atPrediction {
				if hit.Target != target {
					// Stale target: decode corrects it (direct targets
					// resolve in decode) at resteer cost.
					c.decodeResteer()
					c.BTB.Update(last, target, kind)
				}
			} else {
				// Unpredicted direct transfer: decode resteers and the
				// BTB learns the branch — speculatively, before retire.
				c.decodeResteer()
				c.BTB.Update(last, target, kind)
			}
			if kind == isa.KindCall {
				c.rasPush(&c.specRAS, cur+uint64(in.Size))
			}
			nDecoded++
			c.enqueue(slot{pc: cur, in: in, pwid: pwid, fetchCycle: fetchCycle, nextPredicted: target, predictedTaken: true, btbHit: atPrediction})
			c.fetchPC = target
			return

		case isa.KindCond:
			if atPrediction && c.dirPred != nil && !c.dirPred.predictTaken(cur) {
				// The direction predictor overrides the BTB's implicit
				// taken prediction: fall through, keep the entry.
				atPrediction = false
			}
			if atPrediction {
				target := in.BranchTarget(cur)
				if hit.Target != target {
					c.decodeResteer()
					c.BTB.Update(last, target, kind)
				}
				nDecoded++
				c.enqueue(slot{pc: cur, in: in, pwid: pwid, fetchCycle: fetchCycle, nextPredicted: target, predictedTaken: true, btbHit: true})
				c.fuseTail()
				c.fetchPC = target
				return
			}
			// No BTB entry: static not-taken, PW continues.
			nDecoded++
			c.enqueue(slot{pc: cur, in: in, pwid: pwid, fetchCycle: fetchCycle, nextPredicted: cur + uint64(in.Size)})
			c.fuseTail()
			cur += uint64(in.Size)

		case isa.KindRet:
			if atPrediction && hit.Kind != isa.KindRet {
				// An aliased entry of the wrong kind predicted a branch
				// at a ret's last byte; it can only mispredict, so it
				// is dropped. A genuine ret entry stays: it marks the
				// return's position while the RAS provides the target.
				c.falseHit(hit)
				atPrediction = false
			}
			pred, has := c.rasPop(&c.specRAS)
			if !has {
				pred = noPrediction
			}
			if !atPrediction {
				// Returns occupy BTB entries on real hardware (the RSB
				// only supplies targets). Allocation happens here, at
				// decode — speculatively with respect to retirement —
				// which is what makes a ret visible to a single-stepping
				// NV-S probe before it retires (§6.3).
				tgt := pred
				if tgt == noPrediction {
					tgt = 0
				}
				c.BTB.Update(last, tgt, isa.KindRet)
			}
			nDecoded++
			c.enqueue(slot{pc: cur, in: in, pwid: pwid, fetchCycle: fetchCycle, nextPredicted: pred, predictedTaken: true, btbHit: atPrediction})
			if pred == noPrediction {
				c.fetchStopped = true
				return
			}
			c.fetchPC = pred
			return

		case isa.KindIndJump, isa.KindIndCall:
			if kind == isa.KindIndCall {
				c.rasPush(&c.specRAS, cur+uint64(in.Size))
			}
			pred := noPrediction
			if atPrediction {
				pred = hit.Target
			}
			nDecoded++
			c.enqueue(slot{pc: cur, in: in, pwid: pwid, fetchCycle: fetchCycle, nextPredicted: pred, predictedTaken: true, btbHit: atPrediction})
			if pred == noPrediction {
				c.fetchStopped = true
				return
			}
			c.fetchPC = pred
			return
		}
	}
}

// falseHit records a decode-time BTB false hit: the entry is
// deallocated and the front end pays the squash penalty.
func (c *Core) falseHit(h btb.Hit) {
	if !c.cfg.NoFalseHitDealloc {
		c.BTB.InvalidateHit(h)
	}
	c.falseHits++
	c.squashes++
	c.obs.FalseHits.Inc()
	c.obs.Squashes.Inc()
	c.fetchClock += c.cfg.FalseHitPenalty
}

// decodeResteer charges the decode-redirect bubble.
func (c *Core) decodeResteer() {
	c.decodeResteers++
	c.obs.DecodeResteers.Inc()
	c.fetchClock += c.cfg.DecodeResteerPenalty
}

// enqueue appends a decoded instruction to the in-order queue.
func (c *Core) enqueue(s slot) {
	c.queue = append(c.queue, s)
}

// fuseTail marks the previous slot as macro-fused with the conditional
// branch just enqueued, when fusion is enabled and the pair is a
// cmp/test immediately followed by the branch in the same PW.
func (c *Core) fuseTail() {
	if c.cfg.NoMacroFusion || len(c.queue) < 2 {
		return
	}
	br := &c.queue[len(c.queue)-1]
	prev := &c.queue[len(c.queue)-2]
	if prev.pwid != br.pwid {
		return
	}
	if prev.pc+uint64(prev.in.Size) != br.pc {
		return
	}
	switch prev.in.Op {
	case isa.OpCmpRR, isa.OpTestRR, isa.OpCmpI8, isa.OpCmpI32:
		prev.fusedWithNext = true
	}
}

// rasPush pushes onto a bounded return-address stack.
func (c *Core) rasPush(stack *[]uint64, v uint64) {
	*stack = append(*stack, v)
	if len(*stack) > c.cfg.RASDepth {
		*stack = (*stack)[1:]
	}
}

// rasPop pops a bounded return-address stack.
func (c *Core) rasPop(stack *[]uint64) (uint64, bool) {
	s := *stack
	if len(s) == 0 {
		return 0, false
	}
	v := s[len(s)-1]
	*stack = s[:len(s)-1]
	return v, true
}
