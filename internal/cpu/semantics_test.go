package cpu_test

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
)

// TestAllConditionCodes exercises every conditional branch opcode in
// both directions through compiled programs.
func TestAllConditionCodes(t *testing.T) {
	// Each case: set up flags via cmp a,b; branch should be taken iff
	// want. Program returns 1 in r0 when taken.
	type tc struct {
		mnem string
		a, b uint64
		want bool
	}
	cases := []tc{
		{"jz", 5, 5, true}, {"jz", 5, 6, false},
		{"jnz", 5, 6, true}, {"jnz", 5, 5, false},
		{"jc", 3, 9, true}, {"jc", 9, 3, false}, // unsigned below
		{"jnc", 9, 3, true}, {"jnc", 3, 9, false},
		{"jl", 3, 9, true}, {"jl", 9, 3, false}, // signed less
		{"jge", 9, 3, true}, {"jge", 3, 9, false},
		{"jle", 3, 3, true}, {"jle", 9, 3, false},
		{"jg", 9, 3, true}, {"jg", 3, 3, false},
		// rel8 variants, including sign-flag forms.
		{"jz8", 7, 7, true},
		{"jnz8", 7, 8, true},
		{"jc8", 1, 2, true},
		{"jnc8", 2, 1, true},
		{"jl8", 1, 2, true},
		{"jge8", 2, 1, true},
		{"jle8", 1, 1, true},
		{"jg8", 2, 1, true},
	}
	// Signed negative comparisons for jl/jg/js/jns.
	signed := []tc{
		{"jl", ^uint64(0), 1, true},   // -1 < 1 signed
		{"jg", 1, ^uint64(0), true},   // 1 > -1 signed
		{"jc", 1, ^uint64(0), true},   // 1 < max unsigned
		{"jnc", ^uint64(0), 1, true},  // max >= 1 unsigned
		{"js8", 1, 2, true},           // 1-2 negative → SF
		{"jns8", 2, 1, true},          // 2-1 positive → !SF
		{"js8", 2, 1, false},
		{"jns8", 1, 2, false},
	}
	cases = append(cases, signed...)

	for _, c := range cases {
		src := `
			.org 0x1000
		start:
			movabs r1, ` + hex(c.a) + `
			movabs r2, ` + hex(c.b) + `
			cmp r1, r2
			` + c.mnem + ` taken
			movi r0, 0
			hlt
		taken:
			movi r0, 1
			hlt
		`
		core := newCore(t, src)
		run(t, core)
		got := core.Reg(isa.R0) == 1
		if got != c.want {
			t.Errorf("%s cmp(%#x,%#x): taken=%v, want %v", c.mnem, c.a, c.b, got, c.want)
		}
	}
}

func TestCmovVariants(t *testing.T) {
	c := newCore(t, `
		.org 0x1000
	start:
		movi r1, 1
		movi r2, 2
		movi r3, 0
		movi r4, 0
		movi r5, 0
		movi r6, 0
		cmp r1, r2      ; 1 < 2: !Z, C
		cmovz  r3, r2   ; no
		cmovnz r4, r2   ; yes
		cmovc  r5, r2   ; yes
		cmovnc r6, r2   ; no
		hlt
	`)
	run(t, c)
	want := map[isa.Reg]uint64{isa.R3: 0, isa.R4: 2, isa.R5: 2, isa.R6: 0}
	for r, v := range want {
		if got := c.Reg(r); got != v {
			t.Errorf("%s = %d, want %d", r, got, v)
		}
	}
}

func TestVariableShiftsAndSar(t *testing.T) {
	c := newCore(t, `
		.org 0x1000
	start:
		movi r1, 1
		movi r2, 12
		shlr r1, r2      ; 1 << 12
		movabs r3, 0x8000000000000000
		sar r3, 63       ; arithmetic: -1
		movi r4, 64
		shrr r1, r4      ; shift by 64 & 63 = 0: unchanged
		hlt
	`)
	run(t, c)
	if c.Reg(isa.R1) != 1<<12 {
		t.Errorf("shlr/shrr r1 = %#x", c.Reg(isa.R1))
	}
	if c.Reg(isa.R3) != ^uint64(0) {
		t.Errorf("sar r3 = %#x, want all ones", c.Reg(isa.R3))
	}
}

func TestCoreAccessors(t *testing.T) {
	m := mem.New()
	asm.MustAssemble(".org 0x1000\nstart: cmpi r1, 1\nhlt").LoadInto(m)
	c := cpu.New(cpu.Config{}, m)
	if c.Config().RetireWidth != cpu.DefaultConfig().RetireWidth {
		t.Error("Config should report effective defaults")
	}
	c.SetPC(0x1000)
	if _, err := c.Run(10); err != nil {
		t.Fatal(err)
	}
	f := c.Flags()
	if !f.C || f.Z { // 0 - 1: borrow set, not zero
		t.Errorf("flags = %+v", f)
	}
}

func TestInvalidInstErrorMessage(t *testing.T) {
	e := &cpu.InvalidInstError{PC: 0xabc}
	if !strings.Contains(e.Error(), "0xabc") {
		t.Errorf("message %q should contain the pc", e.Error())
	}
}

// TestArchFetchAcrossProtectedPageBoundary: an instruction whose bytes
// span into a faulting page is resolved architecturally byte by byte
// with the handler fixing permissions — the controlled-channel path
// through resolveArchFetch.
func TestArchFetchAcrossProtectedPageBoundary(t *testing.T) {
	// movabs (10 bytes) placed so it straddles a page boundary.
	b := asm.NewBuilder(0x2000 - 4)
	b.Label("start")
	b.Inst(isa.MovImm64(isa.R1, 0x1122_3344_5566_7788))
	b.Inst(isa.Hlt())
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	p.LoadInto(m)
	// Revoke X on the second page; the handler grants on fault.
	m.Protect(0x2000, mem.PageSize, mem.PermR)
	faults := 0
	m.SetFaultHandler(func(f *mem.Fault) bool {
		if f.Access != mem.AccessFetch {
			return false
		}
		faults++
		m.Protect(f.Addr, 1, mem.PermRX)
		return true
	})
	c := cpu.New(cpu.Config{}, m)
	c.SetPC(0x2000 - 4)
	if _, err := c.Run(10); err != nil {
		t.Fatal(err)
	}
	if c.Reg(isa.R1) != 0x1122_3344_5566_7788 {
		t.Errorf("r1 = %#x", c.Reg(isa.R1))
	}
	if faults == 0 {
		t.Error("the boundary fetch should have faulted at least once")
	}
}

// TestRASOverflow: calls nested deeper than the RAS still execute
// correctly (predictions degrade, semantics do not).
func TestRASOverflow(t *testing.T) {
	var sb strings.Builder
	sb.WriteString(".org 0x1000\nstart:\n movi r1, 0\n call f0\n hlt\n")
	const depth = 24 // deeper than RASDepth=16
	for i := 0; i < depth; i++ {
		sb.WriteString("f")
		sb.WriteString(itoa(i))
		sb.WriteString(":\n addi r1, 1\n")
		if i+1 < depth {
			sb.WriteString(" call f" + itoa(i+1) + "\n")
		}
		sb.WriteString(" ret\n")
	}
	c := newCore(t, sb.String())
	run(t, c)
	if got := c.Reg(isa.R1); got != depth {
		t.Errorf("r1 = %d, want %d", got, depth)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var d []byte
	for n > 0 {
		d = append([]byte{byte('0' + n%10)}, d...)
		n /= 10
	}
	return string(d)
}
