package cpu_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/rsb"
	"repro/internal/uarch"
)

// newCoreWith is newCore with an explicit configuration.
func newCoreWith(t *testing.T, cfg cpu.Config, src string) *cpu.Core {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	p.LoadInto(m)
	m.Map(stackTop-stackSize, stackSize, mem.PermRW)
	c := cpu.New(cfg, m)
	c.SetReg(isa.SP, stackTop)
	c.SetPC(p.MustLabel("start"))
	return c
}

// chainProgram emits start: call f0; hlt, then a chain of depth
// functions f0..f{depth-1} where each calls the next and returns —
// depth nested live return addresses at the deepest point, every return
// address distinct.
func chainProgram(depth int) string {
	var b strings.Builder
	b.WriteString(".org 0x1000\nstart:\n\tcall f0\n\thlt\n")
	for i := 0; i < depth; i++ {
		fmt.Fprintf(&b, "f%d:\n", i)
		if i < depth-1 {
			fmt.Fprintf(&b, "\tcall f%d\n", i+1)
		}
		b.WriteString("\tret\n")
	}
	return b.String()
}

// TestRSBOverflowMispredicts is ret2spec's overflow half at core level:
// a call chain deeper than the RSB overwrites the oldest return
// addresses, so the outermost returns pop stale targets and squash,
// where the idealized RAS (deep enough to hold the chain) predicts
// every return. Architectural results must be identical — only the
// speculative signal differs.
func TestRSBOverflowMispredicts(t *testing.T) {
	const depth = 12
	src := chainProgram(depth)

	ras := newCoreWith(t, cpu.Config{}, src) // RASDepth 16 > depth
	run(t, ras)
	rsbc := newCoreWith(t, cpu.Config{RSB: rsb.Config{Depth: 4}}, src)
	run(t, rsbc)

	if ras.PC() != rsbc.PC() || ras.Retired() != rsbc.Retired() {
		t.Fatalf("architectural divergence: RAS pc=%#x retired=%d, RSB pc=%#x retired=%d",
			ras.PC(), ras.Retired(), rsbc.PC(), rsbc.Retired())
	}
	if !ras.Halted() || !rsbc.Halted() {
		t.Fatal("cores did not halt")
	}
	if rsbc.Squashes() <= ras.Squashes() {
		t.Errorf("overflowed RSB squashes = %d, want > RAS squashes %d",
			rsbc.Squashes(), ras.Squashes())
	}
	if rsbc.Cycle() <= ras.Cycle() {
		t.Errorf("overflowed RSB cycles = %d, want > RAS cycles %d",
			rsbc.Cycle(), ras.Cycle())
	}
}

// TestRSBWithinDepthMatchesRAS: a chain that fits in the RSB behaves
// exactly like the RAS — same squash count, same cycle count. The model
// change is invisible until a failure mode is actually provoked.
func TestRSBWithinDepthMatchesRAS(t *testing.T) {
	src := chainProgram(6)
	ras := newCoreWith(t, cpu.Config{}, src)
	run(t, ras)
	rsbc := newCoreWith(t, cpu.Config{RSB: rsb.Config{Depth: 16}}, src)
	run(t, rsbc)
	if ras.Squashes() != rsbc.Squashes() || ras.Cycle() != rsbc.Cycle() {
		t.Errorf("in-depth RSB diverged: squashes %d vs %d, cycles %d vs %d",
			ras.Squashes(), rsbc.Squashes(), ras.Cycle(), rsbc.Cycle())
	}
}

// TestRSBUnderflowServesStale is the underflow half: a ret with no
// matching call pops a stale, already-consumed slot and steers
// speculative fetch there, where the RAS reports no prediction and
// fetch simply waits for execution. Both resolve architecturally to the
// pushed target.
func TestRSBUnderflowServesStale(t *testing.T) {
	// The depth-4 chain writes every slot of a depth-4 RSB and its
	// returns consume them, leaving the top pointer back at its start
	// with all slots stale. The manual push/ret then underflows: the
	// wrapped top pointer re-serves the last chain return address
	// instead of reporting emptiness.
	src := `
		.org 0x1000
	start:
		call f0
		movabs r2, dest
		push r2
		ret
	f0:
		call f1
		ret
	f1:
		call f2
		ret
	f2:
		call f3
		ret
	f3:
		ret
	dest:
		hlt
	`
	ras := newCoreWith(t, cpu.Config{}, src)
	run(t, ras)
	rsbc := newCoreWith(t, cpu.Config{RSB: rsb.Config{Depth: 4}}, src)
	run(t, rsbc)

	if ras.PC() != rsbc.PC() || !rsbc.Halted() {
		t.Fatalf("architectural divergence: pc %#x vs %#x", ras.PC(), rsbc.PC())
	}
	// The stale prediction steers fetch down a wrong path the stopped
	// RAS front end never fetches.
	if rsbc.FetchWindows() <= ras.FetchWindows() {
		t.Errorf("underflowing RSB fetched %d windows, want > RAS %d",
			rsbc.FetchWindows(), ras.FetchWindows())
	}
}

// TestRSBSurvivesContextSwitch: the RSB, like the BTB, is not saved or
// restored by the OS model — process B's first ret pops a return
// address process A pushed, steering wrong-path fetch from B's context
// (cross-process ret2spec). The cleared RAS instead stops fetch.
func TestRSBSurvivesContextSwitch(t *testing.T) {
	src := `
		.org 0x1000
	start:
		call f
	spin:
		jmp spin
	f:
		movabs r2, bdest
		push r2
		ret
	bstart:
		movabs r3, bdest
		push r3
		ret
	bdest:
		hlt
	`
	measure := func(cfg cpu.Config) uint64 {
		p, err := asm.Assemble(src)
		if err != nil {
			t.Fatal(err)
		}
		m := mem.New()
		p.LoadInto(m)
		m.Map(stackTop-stackSize, stackSize, mem.PermRW)
		c := cpu.New(cfg, m)
		c.SetReg(isa.SP, stackTop)
		c.SetPC(p.MustLabel("start"))
		// Run process A far enough to execute the call (pushing f's
		// return address into the return predictor).
		for i := 0; i < 3; i++ {
			if _, err := c.Step(); err != nil {
				t.Fatal(err)
			}
		}
		next := &cpu.ArchState{PC: p.MustLabel("bstart")}
		next.Regs[isa.SP] = stackTop
		c.ContextSwitch(nil, next)
		before := c.FetchWindows()
		run(t, c)
		if !c.Halted() {
			t.Fatal("process B did not halt")
		}
		return c.FetchWindows() - before
	}

	rasWindows := measure(cpu.Config{})
	rsbWindows := measure(cpu.Config{RSB: rsb.Config{Depth: 8}})
	if rsbWindows <= rasWindows {
		t.Errorf("post-switch RSB fetched %d windows, want > cleared-RAS %d (stale cross-process prediction)",
			rsbWindows, rasWindows)
	}
}

// TestConfigForBackends: every registered backend yields a runnable
// core, and the default backend is exactly DefaultConfig (the pinned
// pre-backend parameters).
func TestConfigForBackends(t *testing.T) {
	if got, want := cpu.ConfigFor(uarch.MustGet(uarch.DefaultName)), cpu.DefaultConfig(); got != want {
		t.Errorf("ConfigFor(default) = %+v, want DefaultConfig %+v", got, want)
	}
	for _, b := range uarch.List() {
		c := newCoreWith(t, cpu.ConfigFor(b), chainProgram(4))
		run(t, c)
		if !c.Halted() {
			t.Errorf("backend %s: core did not halt", b.Name())
		}
	}
	arm := cpu.ConfigFor(uarch.MustGet("arm"))
	if !arm.NoFalseHitDealloc {
		t.Error("arm config must set NoFalseHitDealloc (branch-only BTB updates)")
	}
}
