package cpu_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
)

// loopSrc exercises branches, calls and loads so that BTB, LBR, RAS and
// timing state all accumulate history.
const resetLoopSrc = `
	.org 0x1000
start:
	movi r1, 12
	movi r2, 0
loop:
	call bump
	subi r1, 1
	jnz loop
	hlt
	.org 0x1100
bump:
	addi r2, 3
	ret
`

type coreSnapshot struct {
	R2        uint64
	Cycle     uint64
	Retired   uint64
	Squashes  uint64
	FalseHits uint64
	Records   []string
}

func snapshotRun(t *testing.T, c *cpu.Core, startPC uint64) coreSnapshot {
	t.Helper()
	c.SetReg(isa.SP, stackTop)
	c.SetPC(startPC)
	if _, err := c.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	var recs []string
	for _, r := range c.LBR.Records() {
		recs = append(recs, fmt.Sprintf("%x->%x m=%v/%v c=%d", r.From, r.To, r.Mispredicted, r.MispredValid, r.Cycles))
	}
	return coreSnapshot{
		R2:        c.Reg(isa.R2),
		Cycle:     c.Cycle(),
		Retired:   c.Retired(),
		Squashes:  c.Squashes(),
		FalseHits: c.FalseHits(),
		Records:   recs,
	}
}

// TestCoreResetMatchesFresh: a recycled (Reset) core plus a Reset memory
// must replay a workload bit-identically to a freshly constructed pair —
// the property the experiment engine's simulator pool relies on.
func TestCoreResetMatchesFresh(t *testing.T) {
	prog, err := asm.Assemble(resetLoopSrc)
	if err != nil {
		t.Fatal(err)
	}
	build := func(m *mem.Memory) {
		prog.LoadInto(m)
		m.Map(stackTop-stackSize, stackSize, mem.PermRW)
	}

	m := mem.New()
	build(m)
	c := cpu.New(cpu.Config{}, m)
	want := snapshotRun(t, c, prog.MustLabel("start"))

	// Dirty extra state that Reset must clear.
	c.OnRetire = func(uint64, isa.Inst) {}
	c.LBR.SetNoise(5, 99)
	c.BTB.SetIBRS(true)

	for round := 0; round < 3; round++ {
		m.Reset()
		build(m)
		c.Reset()
		got := snapshotRun(t, c, prog.MustLabel("start"))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: recycled run %+v != fresh run %+v", round, got, want)
		}
	}
}

// TestMemoryResetZeroesReusedPages: data written before Reset must not
// leak into pages mapped after it.
func TestMemoryResetZeroesReusedPages(t *testing.T) {
	m := mem.New()
	m.Map(0x1000, mem.PageSize, mem.PermRW)
	if err := m.WriteBytes(0x1234, []byte{0xAA, 0xBB, 0xCC}); err != nil {
		t.Fatal(err)
	}
	m.Reset()
	if m.MappedPages() != 0 {
		t.Fatalf("MappedPages after Reset = %d", m.MappedPages())
	}
	m.Map(0x1000, mem.PageSize, mem.PermRW)
	buf := make([]byte, 8)
	if err := m.ReadBytes(0x1230, buf); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("reused page byte %d = %#x, want 0", i, b)
		}
	}
	if acc, dirty := m.AccessedDirty(0x1234); dirty && !acc {
		t.Fatal("impossible A/D state")
	}
}
