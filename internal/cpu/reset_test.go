package cpu_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/osmodel"
)

// loopSrc exercises branches, calls and loads so that BTB, LBR, RAS and
// timing state all accumulate history.
const resetLoopSrc = `
	.org 0x1000
start:
	movi r1, 12
	movi r2, 0
loop:
	call bump
	subi r1, 1
	jnz loop
	hlt
	.org 0x1100
bump:
	addi r2, 3
	ret
`

type coreSnapshot struct {
	R2        uint64
	Cycle     uint64
	Retired   uint64
	Squashes  uint64
	FalseHits uint64
	Records   []string
}

func snapshotRun(t *testing.T, c *cpu.Core, startPC uint64) coreSnapshot {
	t.Helper()
	c.SetReg(isa.SP, stackTop)
	c.SetPC(startPC)
	if _, err := c.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	var recs []string
	for _, r := range c.LBR.Records() {
		recs = append(recs, fmt.Sprintf("%x->%x m=%v/%v c=%d", r.From, r.To, r.Mispredicted, r.MispredValid, r.Cycles))
	}
	return coreSnapshot{
		R2:        c.Reg(isa.R2),
		Cycle:     c.Cycle(),
		Retired:   c.Retired(),
		Squashes:  c.Squashes(),
		FalseHits: c.FalseHits(),
		Records:   recs,
	}
}

// TestCoreResetMatchesFresh: a recycled (Reset) core plus a Reset memory
// must replay a workload bit-identically to a freshly constructed pair —
// the property the experiment engine's simulator pool relies on.
func TestCoreResetMatchesFresh(t *testing.T) {
	prog, err := asm.Assemble(resetLoopSrc)
	if err != nil {
		t.Fatal(err)
	}
	build := func(m *mem.Memory) {
		prog.LoadInto(m)
		m.Map(stackTop-stackSize, stackSize, mem.PermRW)
	}

	m := mem.New()
	build(m)
	c := cpu.New(cpu.Config{}, m)
	want := snapshotRun(t, c, prog.MustLabel("start"))

	// Dirty extra state that Reset must clear.
	c.OnRetire = func(uint64, isa.Inst) {}
	c.LBR.SetNoise(5, 99)
	c.BTB.SetIBRS(true)

	for round := 0; round < 3; round++ {
		m.Reset()
		build(m)
		c.Reset()
		got := snapshotRun(t, c, prog.MustLabel("start"))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: recycled run %+v != fresh run %+v", round, got, want)
		}
	}
}

// TestMemoryResetZeroesReusedPages: data written before Reset must not
// leak into pages mapped after it.
func TestMemoryResetZeroesReusedPages(t *testing.T) {
	m := mem.New()
	m.Map(0x1000, mem.PageSize, mem.PermRW)
	if err := m.WriteBytes(0x1234, []byte{0xAA, 0xBB, 0xCC}); err != nil {
		t.Fatal(err)
	}
	m.Reset()
	if m.MappedPages() != 0 {
		t.Fatalf("MappedPages after Reset = %d", m.MappedPages())
	}
	m.Map(0x1000, mem.PageSize, mem.PermRW)
	buf := make([]byte, 8)
	if err := m.ReadBytes(0x1230, buf); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("reused page byte %d = %#x, want 0", i, b)
		}
	}
	if acc, dirty := m.AccessedDirty(0x1234); dirty && !acc {
		t.Fatal("impossible A/D state")
	}
}

// sliceSnapshot runs proc-style scheduling over src: the OS slices the
// program into n-step quanta, delivering a timer interrupt after each
// quantum — mid-fetch-ahead from the core's perspective, since the
// front end runs arbitrarily far beyond the architectural PC.
func sliceSnapshot(t *testing.T, c *cpu.Core, m *mem.Memory, prog program, slice uint64) coreSnapshot {
	t.Helper()
	os := osmodel.New(c)
	p := os.Spawn("victim", prog.start, stackTop, stackSize)
	os.Switch(p)
	for !p.Done {
		if _, err := os.RunSlice(slice); err != nil {
			t.Fatal(err)
		}
	}
	var recs []string
	for _, r := range c.LBR.Records() {
		recs = append(recs, fmt.Sprintf("%x->%x m=%v/%v c=%d", r.From, r.To, r.Mispredicted, r.MispredValid, r.Cycles))
	}
	return coreSnapshot{
		R2:        c.Reg(isa.R2),
		Cycle:     c.Cycle(),
		Retired:   c.Retired(),
		Squashes:  c.Squashes(),
		FalseHits: c.FalseHits(),
		Records:   recs,
	}
}

type program struct {
	prog  *asm.Program
	start uint64
}

func buildResetLoop(t *testing.T, m *mem.Memory) program {
	t.Helper()
	prog, err := asm.Assemble(resetLoopSrc)
	if err != nil {
		t.Fatal(err)
	}
	prog.LoadInto(m)
	return program{prog: prog, start: prog.MustLabel("start")}
}

// TestInterruptMidSpeculationDeterministic: delivering timer interrupts
// mid-fetch-ahead (osmodel.RunSlice) must perturb the core — squashes
// happen — yet leave its state a pure function of (program, slice):
// identical across fresh cores and across Reset recycling.
func TestInterruptMidSpeculationDeterministic(t *testing.T) {
	for _, slice := range []uint64{1, 3, 7} {
		run := func(c *cpu.Core, m *mem.Memory) coreSnapshot {
			return sliceSnapshot(t, c, m, buildResetLoop(t, m), slice)
		}

		m1 := mem.New()
		c1 := cpu.New(cpu.Config{}, m1)
		want := run(c1, m1)
		if want.Squashes == 0 {
			t.Fatalf("slice %d: no squashes — interrupts never landed mid-speculation", slice)
		}
		if want.R2 != 36 {
			t.Fatalf("slice %d: architectural result %d != 36 — interrupts corrupted execution", slice, want.R2)
		}

		m2 := mem.New()
		c2 := cpu.New(cpu.Config{}, m2)
		if got := run(c2, m2); !reflect.DeepEqual(got, want) {
			t.Fatalf("slice %d: fresh cores disagree: %+v vs %+v", slice, got, want)
		}

		// Reset-clean: the interrupted core, recycled, must replay the
		// interrupted schedule bit-identically. The OS model is recreated
		// after Reset (Reset clears the syscall hook osmodel installed).
		for round := 0; round < 2; round++ {
			m1.Reset()
			c1.Reset()
			if got := run(c1, m1); !reflect.DeepEqual(got, want) {
				t.Fatalf("slice %d round %d: recycled interrupted core diverged: %+v vs %+v", slice, round, got, want)
			}
		}
	}
}

// TestStepOneInterruptDeterministic: per-instruction interrupts (the
// SGX-Step pattern NV-S uses) are the extreme slice=every-step case;
// the single-stepped run must be deterministic, Reset-clean, and
// architecturally equal to an uninterrupted run.
func TestStepOneInterruptDeterministic(t *testing.T) {
	stepped := func(c *cpu.Core, m *mem.Memory) coreSnapshot {
		prog := buildResetLoop(t, m)
		os := osmodel.New(c)
		p := os.Spawn("victim", prog.start, stackTop, stackSize)
		os.Switch(p)
		for !p.Done {
			if _, err := os.StepOne(); err != nil && err != cpu.ErrHalted {
				t.Fatal(err)
			}
		}
		return coreSnapshot{
			R2:        c.Reg(isa.R2),
			Cycle:     c.Cycle(),
			Retired:   c.Retired(),
			Squashes:  c.Squashes(),
			FalseHits: c.FalseHits(),
		}
	}

	m1 := mem.New()
	c1 := cpu.New(cpu.Config{}, m1)
	want := stepped(c1, m1)
	if want.R2 != 36 {
		t.Fatalf("single-stepped result %d != 36", want.R2)
	}

	m2 := mem.New()
	c2 := cpu.New(cpu.Config{}, m2)
	if got := stepped(c2, m2); !reflect.DeepEqual(got, want) {
		t.Fatalf("fresh single-stepped cores disagree: %+v vs %+v", got, want)
	}

	m1.Reset()
	c1.Reset()
	if got := stepped(c1, m1); !reflect.DeepEqual(got, want) {
		t.Fatalf("recycled single-stepped core diverged: %+v vs %+v", got, want)
	}
}

// TestOnTickInterruptDeterministic: interrupts injected through the
// osmodel.OnTick hook (the interference layer's victim-side entry
// point) behave like RunSlice interrupts: deterministic and
// Reset-clean.
func TestOnTickInterruptDeterministic(t *testing.T) {
	run := func(c *cpu.Core, m *mem.Memory) coreSnapshot {
		prog := buildResetLoop(t, m)
		os := osmodel.New(c)
		p := os.Spawn("victim", prog.start, stackTop, stackSize)
		os.Switch(p)
		ticks := 0
		os.OnTick = func() {
			ticks++
			if ticks%5 == 0 {
				c.Interrupt()
			}
		}
		for !p.Done {
			if _, err := os.RunUntilStop(1000); err != nil {
				t.Fatal(err)
			}
		}
		return coreSnapshot{
			R2:        c.Reg(isa.R2),
			Cycle:     c.Cycle(),
			Retired:   c.Retired(),
			Squashes:  c.Squashes(),
			FalseHits: c.FalseHits(),
		}
	}

	m := mem.New()
	c := cpu.New(cpu.Config{}, m)
	want := run(c, m)
	if want.Squashes == 0 {
		t.Fatal("OnTick interrupts never squashed speculation")
	}
	if want.R2 != 36 {
		t.Fatalf("architectural result %d != 36", want.R2)
	}
	m.Reset()
	c.Reset()
	if got := run(c, m); !reflect.DeepEqual(got, want) {
		t.Fatalf("recycled OnTick run diverged: %+v vs %+v", got, want)
	}
}
