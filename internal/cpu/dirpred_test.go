package cpu_test

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
)

// biasedBranchSrc executes a branch once taken, then heavily not-taken:
// the worst case for the baseline "taken on BTB hit" policy and the
// best case for a bimodal predictor.
const biasedBranchSrc = `
	.org 0x1000
start:
	movi r1, 40
	movi r2, 39     ; branch taken only on the first iteration
loop:
	cmp r1, r2
	jg8 skip         ; true once (r1=40 > 39), then r1 < r2
	nop
	nop
skip:
	subi r1, 1
	cmpi r1, 0
	jnz loop
	hlt
`

func runWith(t *testing.T, dirPred bool) uint64 {
	t.Helper()
	p := asm.MustAssemble(biasedBranchSrc)
	m := mem.New()
	p.LoadInto(m)
	cfg := cpu.DefaultConfig()
	cfg.DirPredictor = dirPred
	c := cpu.New(cfg, m)
	c.SetPC(p.MustLabel("start"))
	if _, err := c.Run(10_000); err != nil {
		t.Fatal(err)
	}
	if c.Reg(isa.R1) != 0 {
		t.Fatalf("dirPred=%v: r1 = %d, want 0 (semantics must not change)", dirPred, c.Reg(isa.R1))
	}
	return c.Squashes()
}

// TestDirPredictorReducesSquashes: with the predictor, the biased
// branch stops being predicted taken and squashes drop.
func TestDirPredictorReducesSquashes(t *testing.T) {
	base := runWith(t, false)
	pred := runWith(t, true)
	if pred >= base {
		t.Errorf("squashes: predictor %d, baseline %d — predictor should reduce them", pred, base)
	}
}

// TestDirPredictorPreservesExperiments: the Figure-1-style deallocation
// mechanism is orthogonal to direction prediction and must keep working.
func TestDirPredictorPreservesExperiments(t *testing.T) {
	p := asm.MustAssemble(`
		.org 0x10000
	start:
		movabs r1, f1
		callr r1
		movabs r2, f2
		callr r2
		hlt
		.org 0x400000
	f1:
		jmp8 l1
		.space 4, 0x01
	l1:
		ret
		.org 0x100400000
	f2:
		nop
		nop
		ret
	`)
	m := mem.New()
	p.LoadInto(m)
	m.Map(0x7f_0000, 0x1000, mem.PermRW)
	cfg := cpu.DefaultConfig()
	cfg.DirPredictor = true
	c := cpu.New(cfg, m)
	c.SetReg(isa.SP, 0x7f_1000)
	c.SetPC(p.MustLabel("start"))
	if _, err := c.Run(10_000); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.BTB.EntryAt(0x40_0001); ok {
		t.Error("aliased nops must still deallocate the entry with the predictor enabled")
	}
}
