package cpu_test

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/rsb"
	"repro/internal/uarch"
)

// TestStepSteadyStateAllocs gates the zero-allocation hot path: once
// the decoded-instruction queue, RAS and LBR ring have warmed up,
// retiring instructions must not allocate at all. A regression here
// (a re-sliced queue, a per-step buffer, an escaping StepInfo) is what
// turned the Figure 12 corpus run into a 22M-allocation benchmark
// before the flat queue/bundle rework.
func TestStepSteadyStateAllocs(t *testing.T) {
	// Taken conditional, not-taken fall-through and an unconditional
	// jump every iteration: the loop exercises BTB hits, LBR recording
	// and macro-fusion, the allocation-prone paths.
	c := newCore(t, `
		.org 0x1000
	start:
		movi r1, 2
	loop:
		subi r1, 1
		jnz loop
		movi r1, 2
		jmp loop
	`)
	for i := 0; i < 2000; i++ {
		if _, err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	var stepErr error
	avg := testing.AllocsPerRun(500, func() {
		if _, err := c.Step(); err != nil {
			stepErr = err
		}
	})
	if stepErr != nil {
		t.Fatal(stepErr)
	}
	if avg != 0 {
		t.Fatalf("Core.Step allocates %v objects/op in steady state, want 0", avg)
	}
}

// TestResetAllocsBounded guards the pooling story: recycling a warm
// core must not rebuild its large structures. Reset is allowed a small
// constant number of allocations (the bimodal predictor is rebuilt when
// enabled; here it is off) but not per-entry work.
func TestResetAllocsBounded(t *testing.T) {
	c := newCore(t, `
		.org 0x1000
	start:
	loop:
		jmp loop
	`)
	for i := 0; i < 100; i++ {
		if _, err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	pc := c.PC()
	c.Reset()
	c.SetPC(pc)
	avg := testing.AllocsPerRun(10, func() {
		c.Reset()
		c.SetPC(pc)
	})
	if avg != 0 {
		t.Fatalf("Core.Reset allocates %v objects/op, want 0", avg)
	}
	// The recycled core must still run.
	if _, err := c.Step(); err != nil {
		t.Fatal(err)
	}
}

// TestStepSteadyStateAllocsBackends re-runs the steady-state gate on
// the Arm backend and on an RSB-enabled core: backend dispatch happens
// at construction and the RSB is a fixed array, so neither may put an
// allocation back on the step loop. The call/ret loop keeps the return
// predictor (RAS or RSB) exercised every iteration.
func TestStepSteadyStateAllocsBackends(t *testing.T) {
	armCfg := cpu.ConfigFor(uarch.MustGet("arm"))
	rsbCfg := cpu.DefaultConfig()
	rsbCfg.RSB = rsb.Config{Depth: 8}
	for _, tc := range []struct {
		name string
		cfg  cpu.Config
	}{
		{"backend=arm", armCfg},
		{"rsb=8", rsbCfg},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := newCoreWith(t, tc.cfg, `
				.org 0x1000
			start:
				movi r1, 2
			loop:
				call f
				subi r1, 1
				jnz loop
				movi r1, 2
				jmp loop
			f:
				ret
			`)
			for i := 0; i < 2000; i++ {
				if _, err := c.Step(); err != nil {
					t.Fatal(err)
				}
			}
			var stepErr error
			avg := testing.AllocsPerRun(500, func() {
				if _, err := c.Step(); err != nil {
					stepErr = err
				}
			})
			if stepErr != nil {
				t.Fatal(stepErr)
			}
			if avg != 0 {
				t.Fatalf("Core.Step (%s) allocates %v objects/op in steady state, want 0", tc.name, avg)
			}
		})
	}
}
