package cpu

import (
	"fmt"

	"repro/internal/isa"
)

// Step retires one architectural step: one instruction, or one
// macro-fused cmp+branch pair (which is exactly how hardware single-
// stepping behaves, and the source of the paper's §7.3 measurement
// error). It returns a description of what retired.
func (c *Core) Step() (StepInfo, error) {
	if c.halted {
		return StepInfo{}, ErrHalted
	}
	if err := c.ensureHead(); err != nil {
		return StepInfo{}, err
	}
	head := c.queue[0]

	if head.fusedWithNext && len(c.queue) >= 2 {
		// Retire the fused pair atomically in one cycle slot.
		lead, br := c.queue[0], c.queue[1]
		c.queue = c.queue[2:]
		retire := c.scheduleRetire(lead, 0)
		info, err := c.execute(lead, retire)
		if err != nil {
			return info, err
		}
		brInfo, err := c.execute(br, retire)
		if err != nil {
			return brInfo, err
		}
		brInfo.Fused = true
		brInfo.FusedPC = brInfo.PC
		brInfo.FusedInst = brInfo.Inst
		brInfo.PC = info.PC
		brInfo.Inst = info.Inst
		return brInfo, nil
	}

	c.queue = c.queue[1:]
	retire := c.scheduleRetire(head, c.execLatency(head.in))
	return c.execute(head, retire)
}

// Run steps until the core halts, an error occurs, or maxSteps is
// exceeded (0 means no limit). It returns the number of architectural
// steps taken.
func (c *Core) Run(maxSteps uint64) (uint64, error) {
	steps := uint64(0)
	for {
		if maxSteps > 0 && steps >= maxSteps {
			return steps, fmt.Errorf("cpu: exceeded %d steps", maxSteps)
		}
		if _, err := c.Step(); err != nil {
			if err == ErrHalted {
				return steps, nil
			}
			return steps, err
		}
		steps++
	}
}

// ensureHead guarantees at least one instruction is in the queue,
// resolving architectural fetch faults if the front end stalled.
func (c *Core) ensureHead() error {
	c.fillQueue()
	for len(c.queue) == 0 {
		// The front end stalled before producing the next architectural
		// instruction: resolve the stall architecturally (this is where
		// real page faults are raised and controlled-channel handlers
		// run).
		if err := c.resolveArchFetch(); err != nil {
			return err
		}
		c.fetchStalled = false
		c.fillQueue()
	}
	return nil
}

// resolveArchFetch performs an architectural fetch of the instruction at
// c.pc, invoking the memory fault handler on permission failures and
// reporting unresolved faults or undecodable bytes.
func (c *Core) resolveArchFetch() error {
	if c.fetchPC != c.pc {
		// The stall happened on a speculative path that is no longer
		// architectural; restart fetch at the architectural pc.
		c.squashTo(c.pc, 0)
	}
	var buf [isa.MaxLen]byte
	n := 0
	for n < isa.MaxLen {
		if err := c.Mem.FetchBytes(c.pc+uint64(n), buf[n:n+1]); err != nil {
			if n == 0 {
				return err
			}
			break
		}
		n++
		if in, derr := isa.Decode(buf[:n]); derr == nil {
			_ = in
			c.fetchStalled = false
			return nil
		}
	}
	return &InvalidInstError{PC: c.pc}
}

// execLatency returns the extra retire latency of long operations.
func (c *Core) execLatency(in isa.Inst) uint64 {
	switch in.Op {
	case isa.OpMulRR:
		return c.cfg.MulLatency
	case isa.OpDivRR:
		return c.cfg.DivLatency
	case isa.OpLd8, isa.OpLd32:
		return c.cfg.LoadLatency
	}
	return 0
}

// scheduleRetire assigns a retirement cycle to a slot, honoring pipeline
// depth, execution latency and retire bandwidth.
func (c *Core) scheduleRetire(s slot, extraLat uint64) uint64 {
	candidate := s.fetchCycle + c.cfg.PipeDepth + extraLat
	switch {
	case candidate > c.retireClock:
		c.retireClock = candidate
		c.retiredInCyc = 1
	case c.retiredInCyc < c.cfg.RetireWidth:
		c.retiredInCyc++
	default:
		c.retireClock++
		c.retiredInCyc = 1
	}
	return c.retireClock
}

// execute runs one instruction's semantics, verifies the front end's
// prediction, performs execute-time BTB updates and LBR recording, and
// advances the architectural pc.
func (c *Core) execute(s slot, retire uint64) (StepInfo, error) {
	in := s.in
	pc := s.pc
	if !in.Op.Valid() {
		// A pseudo-instruction from undecodable bytes reached
		// retirement: the architectural #UD.
		return StepInfo{}, &InvalidInstError{PC: pc}
	}
	fallthrough_ := pc + uint64(in.Size)
	actualNext := fallthrough_
	taken := false
	var target uint64

	setZS := func(v uint64) {
		c.flags.Z = v == 0
		c.flags.S = int64(v) < 0
	}

	switch in.Op {
	case isa.OpNop:
	case isa.OpHlt:
		c.halted = true
	case isa.OpSyscall:
		if c.OnSyscall != nil {
			if err := c.OnSyscall(uint8(in.Imm)); err != nil {
				return StepInfo{}, err
			}
		}

	case isa.OpMovRR:
		c.regs[in.Dst] = c.regs[in.Src]
	case isa.OpMovImm32, isa.OpMovImm64:
		c.regs[in.Dst] = uint64(in.Imm)
	case isa.OpCmovz:
		if c.flags.Z {
			c.regs[in.Dst] = c.regs[in.Src]
		}
	case isa.OpCmovnz:
		if !c.flags.Z {
			c.regs[in.Dst] = c.regs[in.Src]
		}
	case isa.OpCmovc:
		if c.flags.C {
			c.regs[in.Dst] = c.regs[in.Src]
		}
	case isa.OpCmovnc:
		if !c.flags.C {
			c.regs[in.Dst] = c.regs[in.Src]
		}

	case isa.OpAddRR, isa.OpAddI8, isa.OpAddI32:
		a := c.regs[in.Dst]
		b := c.operand2(in)
		r := a + b
		c.regs[in.Dst] = r
		setZS(r)
		c.flags.C = r < a
		c.flags.O = (int64(a) >= 0) == (int64(b) >= 0) && (int64(r) >= 0) != (int64(a) >= 0)
	case isa.OpSubRR, isa.OpSubI8, isa.OpSubI32:
		a := c.regs[in.Dst]
		b := c.operand2(in)
		r := a - b
		c.regs[in.Dst] = r
		setZS(r)
		c.flags.C = a < b
		c.flags.O = (int64(a) >= 0) != (int64(b) >= 0) && (int64(r) >= 0) != (int64(a) >= 0)
	case isa.OpCmpRR, isa.OpCmpI8, isa.OpCmpI32:
		a := c.regs[in.Dst]
		b := c.operand2(in)
		r := a - b
		setZS(r)
		c.flags.C = a < b
		c.flags.O = (int64(a) >= 0) != (int64(b) >= 0) && (int64(r) >= 0) != (int64(a) >= 0)
	case isa.OpAndRR, isa.OpAndI8, isa.OpAndI32:
		r := c.regs[in.Dst] & c.operand2(in)
		c.regs[in.Dst] = r
		setZS(r)
		c.flags.C, c.flags.O = false, false
	case isa.OpOrRR, isa.OpOrI8, isa.OpOrI32:
		r := c.regs[in.Dst] | c.operand2(in)
		c.regs[in.Dst] = r
		setZS(r)
		c.flags.C, c.flags.O = false, false
	case isa.OpXorRR, isa.OpXorI8, isa.OpXorI32:
		r := c.regs[in.Dst] ^ c.operand2(in)
		c.regs[in.Dst] = r
		setZS(r)
		c.flags.C, c.flags.O = false, false
	case isa.OpTestRR:
		r := c.regs[in.Dst] & c.regs[in.Src]
		setZS(r)
		c.flags.C, c.flags.O = false, false
	case isa.OpMulRR:
		hi, lo := mul128(c.regs[in.Dst], c.regs[in.Src])
		c.regs[in.Dst] = lo
		setZS(lo)
		c.flags.C = hi != 0
		c.flags.O = hi != 0
	case isa.OpDivRR:
		d := c.regs[in.Src]
		if d == 0 {
			return StepInfo{}, fmt.Errorf("cpu: divide by zero at %#x", pc)
		}
		c.regs[in.Dst] /= d
	case isa.OpShlI8:
		r := c.regs[in.Dst] << uint(in.Imm&63)
		c.regs[in.Dst] = r
		setZS(r)
	case isa.OpShrI8:
		r := c.regs[in.Dst] >> uint(in.Imm&63)
		c.regs[in.Dst] = r
		setZS(r)
	case isa.OpShlRR:
		r := c.regs[in.Dst] << (c.regs[in.Src] & 63)
		c.regs[in.Dst] = r
		setZS(r)
	case isa.OpShrRR:
		r := c.regs[in.Dst] >> (c.regs[in.Src] & 63)
		c.regs[in.Dst] = r
		setZS(r)
	case isa.OpSarI8:
		r := uint64(int64(c.regs[in.Dst]) >> uint(in.Imm&63))
		c.regs[in.Dst] = r
		setZS(r)
	case isa.OpLea32:
		c.regs[in.Dst] = c.regs[in.Src] + uint64(in.Imm)

	case isa.OpLd8, isa.OpLd32:
		v, err := c.Mem.Read64(c.regs[in.Src] + uint64(in.Imm))
		if err != nil {
			return StepInfo{}, err
		}
		c.regs[in.Dst] = v
	case isa.OpSt8, isa.OpSt32:
		if err := c.Mem.Write64(c.regs[in.Src]+uint64(in.Imm), c.regs[in.Dst]); err != nil {
			return StepInfo{}, err
		}
	case isa.OpPush:
		c.regs[isa.SP] -= 8
		if err := c.Mem.Write64(c.regs[isa.SP], c.regs[in.Dst]); err != nil {
			return StepInfo{}, err
		}
	case isa.OpPop:
		v, err := c.Mem.Read64(c.regs[isa.SP])
		if err != nil {
			return StepInfo{}, err
		}
		c.regs[in.Dst] = v
		c.regs[isa.SP] += 8

	case isa.OpJmp8, isa.OpJmp32:
		taken = true
		target = in.BranchTarget(pc)
	case isa.OpCall32:
		c.regs[isa.SP] -= 8
		if err := c.Mem.Write64(c.regs[isa.SP], fallthrough_); err != nil {
			return StepInfo{}, err
		}
		taken = true
		target = in.BranchTarget(pc)
		c.rasPush(&c.archRAS, fallthrough_)
	case isa.OpJmpReg:
		taken = true
		target = c.regs[in.Dst]
	case isa.OpCallReg:
		c.regs[isa.SP] -= 8
		if err := c.Mem.Write64(c.regs[isa.SP], fallthrough_); err != nil {
			return StepInfo{}, err
		}
		taken = true
		target = c.regs[in.Dst]
		c.rasPush(&c.archRAS, fallthrough_)
	case isa.OpRet:
		v, err := c.Mem.Read64(c.regs[isa.SP])
		if err != nil {
			return StepInfo{}, err
		}
		c.regs[isa.SP] += 8
		taken = true
		target = v
		c.rasPop(&c.archRAS)

	default:
		if in.Kind() == isa.KindCond {
			if c.condTrue(in.Op.CondCode()) {
				taken = true
				target = in.BranchTarget(pc)
			}
		} else {
			return StepInfo{}, fmt.Errorf("cpu: unimplemented opcode %s at %#x", in.Op.Name(), pc)
		}
	}

	if taken {
		actualNext = target
	}
	if c.dirPred != nil && kindIsCond(in) {
		c.dirPred.update(pc, taken)
	}
	c.pc = actualNext
	c.retired++
	c.obs.Retired.Inc()

	kind := in.Kind()
	mispredicted := actualNext != s.nextPredicted
	if mispredicted {
		// Execute-time squash: flush the wrong path and resteer.
		c.squashTo(actualNext, c.cfg.ExecMispredictPenalty)
	}

	// Execute-time BTB learning for taken transfers the decoder could
	// not resolve: conditional directions, indirect targets, and return
	// positions (the ret's entry marks where a return lives; the RAS
	// supplies targets at fetch). Direct jumps/calls learned at decode.
	if taken {
		switch kind {
		case isa.KindCond, isa.KindIndJump, isa.KindIndCall, isa.KindRet:
			if mispredicted || !s.btbHit {
				c.BTB.Update(in.LastByte(pc), target, kind)
			}
		}
	}

	// LBR: taken control transfers only, unless suppressed (enclave
	// mode).
	if taken && (c.LBRSuppress == nil || !c.LBRSuppress(pc)) {
		condBranch := kind == isa.KindCond
		c.LBR.RecordBranch(pc, target, retire, mispredicted, condBranch)
	}

	if c.OnRetire != nil {
		c.OnRetire(pc, in)
	}

	info := StepInfo{
		PC:          pc,
		Inst:        in,
		RetireCycle: retire,
		Taken:       taken,
		Target:      target,
	}
	if c.halted {
		info.Taken = false
	}
	return info, nil
}

func kindIsCond(in isa.Inst) bool { return in.Kind() == isa.KindCond }

// operand2 returns the second ALU operand: a register for reg-reg forms,
// the immediate otherwise.
func (c *Core) operand2(in isa.Inst) uint64 {
	switch in.Op.Format() {
	case isa.FmtRegReg:
		return c.regs[in.Src]
	default:
		return uint64(in.Imm)
	}
}

// condTrue evaluates a condition code against the flags.
func (c *Core) condTrue(cc isa.Cond) bool {
	f := c.flags
	switch cc {
	case isa.CondZ:
		return f.Z
	case isa.CondNZ:
		return !f.Z
	case isa.CondC:
		return f.C
	case isa.CondNC:
		return !f.C
	case isa.CondL:
		return f.S != f.O
	case isa.CondGE:
		return f.S == f.O
	case isa.CondLE:
		return f.Z || f.S != f.O
	case isa.CondG:
		return !f.Z && f.S == f.O
	case isa.CondS:
		return f.S
	case isa.CondNS:
		return !f.S
	}
	return false
}

// mul128 returns the 128-bit product of a and b.
func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 0xFFFFFFFF
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a0 * b0
	lo = t & mask
	carry := t >> 32
	t = a1*b0 + carry
	m1 := t & mask
	hi = t >> 32
	t = a0*b1 + m1
	lo |= (t & mask) << 32
	hi += a1*b1 + t>>32
	return hi, lo
}
