package cpu

import (
	"fmt"

	"repro/internal/isa"
)

// Step retires one architectural step: one instruction, or one
// macro-fused cmp+branch pair (which is exactly how hardware single-
// stepping behaves, and the source of the paper's §7.3 measurement
// error). It returns a description of what retired.
func (c *Core) Step() (StepInfo, error) {
	var info StepInfo
	err := c.StepInto(&info)
	return info, err
}

// StepInto is Step writing its result through info instead of
// returning it by value, so a stepping loop can reuse one StepInfo
// across hundreds of millions of iterations instead of copying ~100
// bytes out of every call. Every field is overwritten on success; on a
// non-nil error *info is unspecified.
func (c *Core) StepInto(info *StepInfo) error {
	if c.halted {
		return ErrHalted
	}
	if err := c.ensureHead(); err != nil {
		return err
	}
	// Pointers into the queue stay valid across execute: nothing inside
	// it enqueues (squashTo only truncates, and the retirement hooks do
	// not step the core), and the retired prefix is reclaimed only by
	// the next enqueue.
	head := &c.queue[c.qHead]

	if head.fusedWithNext && len(c.queue)-c.qHead >= 2 {
		// Retire the fused pair atomically in one cycle slot.
		br := &c.queue[c.qHead+1]
		c.qHead += 2
		retire := c.scheduleRetire(head, 0)
		if err := c.execute(head, retire, info); err != nil {
			return err
		}
		leadPC, leadInst := info.PC, info.Inst
		if err := c.execute(br, retire, info); err != nil {
			return err
		}
		info.Fused = true
		info.FusedPC = info.PC
		info.FusedInst = info.Inst
		info.PC = leadPC
		info.Inst = leadInst
		return nil
	}

	c.qHead++
	retire := c.scheduleRetire(head, c.execLatency(head.in))
	if err := c.execute(head, retire, info); err != nil {
		return err
	}
	info.Fused = false
	info.FusedPC = 0
	info.FusedInst = isa.Inst{}
	return nil
}

// Run steps until the core halts, an error occurs, or maxSteps is
// exceeded (0 means no limit). It returns the number of architectural
// steps taken.
func (c *Core) Run(maxSteps uint64) (uint64, error) {
	steps := uint64(0)
	var info StepInfo
	for {
		if maxSteps > 0 && steps >= maxSteps {
			return steps, fmt.Errorf("cpu: exceeded %d steps", maxSteps)
		}
		if err := c.StepInto(&info); err != nil {
			if err == ErrHalted {
				return steps, nil
			}
			return steps, err
		}
		steps++
	}
}

// ensureHead guarantees at least one instruction is in the queue,
// resolving architectural fetch faults if the front end stalled.
func (c *Core) ensureHead() error {
	c.fillQueue()
	for len(c.queue) == c.qHead {
		// The front end stalled before producing the next architectural
		// instruction: resolve the stall architecturally (this is where
		// real page faults are raised and controlled-channel handlers
		// run).
		if err := c.resolveArchFetch(); err != nil {
			return err
		}
		c.fetchStalled = false
		c.fillQueue()
	}
	return nil
}

// resolveArchFetch performs an architectural fetch of the instruction at
// c.pc, invoking the memory fault handler on permission failures and
// reporting unresolved faults or undecodable bytes.
func (c *Core) resolveArchFetch() error {
	if c.fetchPC != c.pc {
		// The stall happened on a speculative path that is no longer
		// architectural; restart fetch at the architectural pc.
		c.squashTo(c.pc, 0)
	}
	var buf [isa.MaxLen]byte
	n := 0
	for n < isa.MaxLen {
		if err := c.Mem.FetchBytes(c.pc+uint64(n), buf[n:n+1]); err != nil {
			if n == 0 {
				return err
			}
			break
		}
		n++
		if _, ok := isa.TryDecode(buf[:n]); ok {
			c.fetchStalled = false
			return nil
		}
	}
	return &InvalidInstError{PC: c.pc}
}

// execLatency returns the extra retire latency of long operations.
func (c *Core) execLatency(in isa.Inst) uint64 {
	switch in.Op {
	case isa.OpMulRR:
		return c.cfg.MulLatency
	case isa.OpDivRR:
		return c.cfg.DivLatency
	case isa.OpLd8, isa.OpLd32:
		return c.cfg.LoadLatency
	}
	return 0
}

// scheduleRetire assigns a retirement cycle to a slot, honoring pipeline
// depth, execution latency and retire bandwidth.
func (c *Core) scheduleRetire(s *slot, extraLat uint64) uint64 {
	candidate := s.fetchCycle + c.cfg.PipeDepth + extraLat
	switch {
	case candidate > c.retireClock:
		c.retireClock = candidate
		c.retiredInCyc = 1
	case c.retiredInCyc < c.cfg.RetireWidth:
		c.retiredInCyc++
	default:
		c.retireClock++
		c.retiredInCyc = 1
	}
	return c.retireClock
}

// execute runs one instruction's semantics, verifies the front end's
// prediction, performs execute-time BTB updates and LBR recording, and
// advances the architectural pc.
func (c *Core) execute(s *slot, retire uint64, info *StepInfo) error {
	in := s.in
	pc := s.pc
	if !in.Op.Valid() {
		// A pseudo-instruction from undecodable bytes reached
		// retirement: the architectural #UD.
		return &InvalidInstError{PC: pc}
	}
	fallthrough_ := pc + uint64(in.Size)
	actualNext := fallthrough_
	taken := false
	var target uint64

	setZS := func(v uint64) {
		c.flags.Z = v == 0
		c.flags.S = int64(v) < 0
	}

	switch in.Op {
	case isa.OpNop:
	case isa.OpHlt:
		c.halted = true
	case isa.OpSyscall:
		if c.OnSyscall != nil {
			if err := c.OnSyscall(uint8(in.Imm)); err != nil {
				return err
			}
		}

	case isa.OpMovRR:
		c.regs[in.Dst] = c.regs[in.Src]
	case isa.OpMovImm32, isa.OpMovImm64:
		c.regs[in.Dst] = uint64(in.Imm)
	case isa.OpCmovz:
		if c.flags.Z {
			c.regs[in.Dst] = c.regs[in.Src]
		}
	case isa.OpCmovnz:
		if !c.flags.Z {
			c.regs[in.Dst] = c.regs[in.Src]
		}
	case isa.OpCmovc:
		if c.flags.C {
			c.regs[in.Dst] = c.regs[in.Src]
		}
	case isa.OpCmovnc:
		if !c.flags.C {
			c.regs[in.Dst] = c.regs[in.Src]
		}

	case isa.OpAddRR, isa.OpAddI8, isa.OpAddI32:
		a := c.regs[in.Dst]
		b := c.operand2(in)
		r := a + b
		c.regs[in.Dst] = r
		setZS(r)
		c.flags.C = r < a
		c.flags.O = (int64(a) >= 0) == (int64(b) >= 0) && (int64(r) >= 0) != (int64(a) >= 0)
	case isa.OpSubRR, isa.OpSubI8, isa.OpSubI32:
		a := c.regs[in.Dst]
		b := c.operand2(in)
		r := a - b
		c.regs[in.Dst] = r
		setZS(r)
		c.flags.C = a < b
		c.flags.O = (int64(a) >= 0) != (int64(b) >= 0) && (int64(r) >= 0) != (int64(a) >= 0)
	case isa.OpCmpRR, isa.OpCmpI8, isa.OpCmpI32:
		a := c.regs[in.Dst]
		b := c.operand2(in)
		r := a - b
		setZS(r)
		c.flags.C = a < b
		c.flags.O = (int64(a) >= 0) != (int64(b) >= 0) && (int64(r) >= 0) != (int64(a) >= 0)
	case isa.OpAndRR, isa.OpAndI8, isa.OpAndI32:
		r := c.regs[in.Dst] & c.operand2(in)
		c.regs[in.Dst] = r
		setZS(r)
		c.flags.C, c.flags.O = false, false
	case isa.OpOrRR, isa.OpOrI8, isa.OpOrI32:
		r := c.regs[in.Dst] | c.operand2(in)
		c.regs[in.Dst] = r
		setZS(r)
		c.flags.C, c.flags.O = false, false
	case isa.OpXorRR, isa.OpXorI8, isa.OpXorI32:
		r := c.regs[in.Dst] ^ c.operand2(in)
		c.regs[in.Dst] = r
		setZS(r)
		c.flags.C, c.flags.O = false, false
	case isa.OpTestRR:
		r := c.regs[in.Dst] & c.regs[in.Src]
		setZS(r)
		c.flags.C, c.flags.O = false, false
	case isa.OpMulRR:
		hi, lo := mul128(c.regs[in.Dst], c.regs[in.Src])
		c.regs[in.Dst] = lo
		setZS(lo)
		c.flags.C = hi != 0
		c.flags.O = hi != 0
	case isa.OpDivRR:
		d := c.regs[in.Src]
		if d == 0 {
			return fmt.Errorf("cpu: divide by zero at %#x", pc)
		}
		c.regs[in.Dst] /= d
	case isa.OpShlI8:
		r := c.regs[in.Dst] << uint(in.Imm&63)
		c.regs[in.Dst] = r
		setZS(r)
	case isa.OpShrI8:
		r := c.regs[in.Dst] >> uint(in.Imm&63)
		c.regs[in.Dst] = r
		setZS(r)
	case isa.OpShlRR:
		r := c.regs[in.Dst] << (c.regs[in.Src] & 63)
		c.regs[in.Dst] = r
		setZS(r)
	case isa.OpShrRR:
		r := c.regs[in.Dst] >> (c.regs[in.Src] & 63)
		c.regs[in.Dst] = r
		setZS(r)
	case isa.OpSarI8:
		r := uint64(int64(c.regs[in.Dst]) >> uint(in.Imm&63))
		c.regs[in.Dst] = r
		setZS(r)
	case isa.OpLea32:
		c.regs[in.Dst] = c.regs[in.Src] + uint64(in.Imm)

	case isa.OpLd8, isa.OpLd32:
		v, err := c.Mem.Read64(c.regs[in.Src] + uint64(in.Imm))
		if err != nil {
			return err
		}
		c.regs[in.Dst] = v
	case isa.OpSt8, isa.OpSt32:
		if err := c.Mem.Write64(c.regs[in.Src]+uint64(in.Imm), c.regs[in.Dst]); err != nil {
			return err
		}
	case isa.OpPush:
		c.regs[isa.SP] -= 8
		if err := c.Mem.Write64(c.regs[isa.SP], c.regs[in.Dst]); err != nil {
			return err
		}
	case isa.OpPop:
		v, err := c.Mem.Read64(c.regs[isa.SP])
		if err != nil {
			return err
		}
		c.regs[in.Dst] = v
		c.regs[isa.SP] += 8

	case isa.OpJmp8, isa.OpJmp32:
		taken = true
		target = in.BranchTarget(pc)
	case isa.OpCall32:
		c.regs[isa.SP] -= 8
		if err := c.Mem.Write64(c.regs[isa.SP], fallthrough_); err != nil {
			return err
		}
		taken = true
		target = in.BranchTarget(pc)
		c.archReturnPush(fallthrough_)
	case isa.OpJmpReg:
		taken = true
		target = c.regs[in.Dst]
	case isa.OpCallReg:
		c.regs[isa.SP] -= 8
		if err := c.Mem.Write64(c.regs[isa.SP], fallthrough_); err != nil {
			return err
		}
		taken = true
		target = c.regs[in.Dst]
		c.archReturnPush(fallthrough_)
	case isa.OpRet:
		v, err := c.Mem.Read64(c.regs[isa.SP])
		if err != nil {
			return err
		}
		c.regs[isa.SP] += 8
		taken = true
		target = v
		c.archReturnPop()

	default:
		if in.Kind() == isa.KindCond {
			if c.condTrue(in.Op.CondCode()) {
				taken = true
				target = in.BranchTarget(pc)
			}
		} else {
			return fmt.Errorf("cpu: unimplemented opcode %s at %#x", in.Op.Name(), pc)
		}
	}

	if taken {
		actualNext = target
	}
	if c.dirPred != nil && kindIsCond(in) {
		c.dirPred.update(pc, taken)
	}
	c.pc = actualNext
	c.retired++
	c.obs.Retired.Inc()

	kind := in.Kind()
	mispredicted := actualNext != s.nextPredicted
	if mispredicted {
		// Execute-time squash: flush the wrong path and resteer.
		c.squashTo(actualNext, c.cfg.ExecMispredictPenalty)
	}

	// Execute-time BTB learning for taken transfers the decoder could
	// not resolve: conditional directions, indirect targets, and return
	// positions (the ret's entry marks where a return lives; the RAS
	// supplies targets at fetch). Direct jumps/calls learned at decode.
	if taken {
		switch kind {
		case isa.KindCond, isa.KindIndJump, isa.KindIndCall, isa.KindRet:
			if mispredicted || !s.btbHit {
				c.BTB.Update(in.LastByte(pc), target, kind)
			}
		}
	}

	// LBR: taken control transfers only, unless suppressed (enclave
	// mode).
	if taken && (c.LBRSuppress == nil || !c.LBRSuppress(pc)) {
		condBranch := kind == isa.KindCond
		c.LBR.RecordBranch(pc, target, retire, mispredicted, condBranch)
	}

	if c.OnRetire != nil {
		c.OnRetire(pc, in)
	}

	info.PC = pc
	info.Inst = in
	info.RetireCycle = retire
	info.Taken = taken && !c.halted
	info.Target = target
	return nil
}

func kindIsCond(in isa.Inst) bool { return in.Kind() == isa.KindCond }

// operand2 returns the second ALU operand: a register for reg-reg forms,
// the immediate otherwise.
func (c *Core) operand2(in isa.Inst) uint64 {
	switch in.Op.Format() {
	case isa.FmtRegReg:
		return c.regs[in.Src]
	default:
		return uint64(in.Imm)
	}
}

// condTrue evaluates a condition code against the flags.
func (c *Core) condTrue(cc isa.Cond) bool {
	f := c.flags
	switch cc {
	case isa.CondZ:
		return f.Z
	case isa.CondNZ:
		return !f.Z
	case isa.CondC:
		return f.C
	case isa.CondNC:
		return !f.C
	case isa.CondL:
		return f.S != f.O
	case isa.CondGE:
		return f.S == f.O
	case isa.CondLE:
		return f.Z || f.S != f.O
	case isa.CondG:
		return !f.Z && f.S == f.O
	case isa.CondS:
		return f.S
	case isa.CondNS:
		return !f.S
	}
	return false
}

// mul128 returns the 128-bit product of a and b.
func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 0xFFFFFFFF
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a0 * b0
	lo = t & mask
	carry := t >> 32
	t = a1*b0 + carry
	m1 := t & mask
	hi = t >> 32
	t = a0*b1 + m1
	lo |= (t & mask) << 32
	hi += a1*b1 + t>>32
	return hi, lo
}
