package cpu_test

import (
	"errors"
	"testing"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
)

const (
	stackTop  = 0x7f_f000
	stackSize = 0x1000
)

// newCore loads a program, maps a stack, and returns a core with pc at
// the "start" label.
func newCore(t *testing.T, src string) *cpu.Core {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	p.LoadInto(m)
	m.Map(stackTop-stackSize, stackSize, mem.PermRW)
	c := cpu.New(cpu.Config{}, m)
	c.SetReg(isa.SP, stackTop)
	c.SetPC(p.MustLabel("start"))
	return c
}

func run(t *testing.T, c *cpu.Core) {
	t.Helper()
	if _, err := c.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
}

func TestStraightLine(t *testing.T) {
	c := newCore(t, `
		.org 0x1000
	start:
		movi r1, 10
		movi r2, 32
		add r1, r2
		hlt
	`)
	run(t, c)
	if got := c.Reg(isa.R1); got != 42 {
		t.Errorf("r1 = %d, want 42", got)
	}
	if !c.Halted() {
		t.Error("core should be halted")
	}
	if _, err := c.Step(); err != cpu.ErrHalted {
		t.Errorf("Step after halt = %v, want ErrHalted", err)
	}
}

func TestArithmeticAndFlags(t *testing.T) {
	c := newCore(t, `
		.org 0x1000
	start:
		movi r1, 7
		movi r2, 7
		sub r1, r2      ; r1 = 0, ZF set
		cmovz r3, r2    ; executes: r3 = 7
		movi r4, 5
		subi r4, 9      ; r4 = -4, SF set
		movi r5, 12
		andi r5, 10     ; r5 = 8
		movi r6, 3
		mul r6, r5      ; r6 = 24
		movi r7, 100
		movi r8, 7
		div r7, r8      ; r7 = 14
		movi r9, 1
		shl r9, 6       ; r9 = 64
		hlt
	`)
	run(t, c)
	want := map[isa.Reg]uint64{
		isa.R1: 0, isa.R3: 7, isa.R4: ^uint64(3), isa.R5: 8,
		isa.R6: 24, isa.R7: 14, isa.R9: 64,
	}
	for r, v := range want {
		if got := c.Reg(r); got != v {
			t.Errorf("%s = %d, want %d", r, got, v)
		}
	}
}

func TestLoopAndConditionals(t *testing.T) {
	// Sum 1..10 with a jnz loop.
	c := newCore(t, `
		.org 0x1000
	start:
		movi r1, 10
		movi r2, 0
	loop:
		add r2, r1
		subi r1, 1
		jnz loop
		hlt
	`)
	run(t, c)
	if got := c.Reg(isa.R2); got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
}

func TestCallRetAndStack(t *testing.T) {
	c := newCore(t, `
		.org 0x1000
	start:
		movi r1, 5
		call double
		call double
		hlt
	double:
		add r1, r1
		ret
	`)
	run(t, c)
	if got := c.Reg(isa.R1); got != 20 {
		t.Errorf("r1 = %d, want 20", got)
	}
	if got := c.Reg(isa.SP); got != stackTop {
		t.Errorf("sp = %#x, want %#x (balanced)", got, stackTop)
	}
}

func TestMemoryOps(t *testing.T) {
	c := newCore(t, `
		.org 0x1000
	start:
		movabs r1, 0x6000
		movi r2, 99
		st [r1+8], r2
		ld r3, [r1+8]
		push r3
		pop r4
		lea r5, [r1+100]
		hlt
	`)
	c.Mem.Map(0x6000, 0x1000, mem.PermRW)
	run(t, c)
	if c.Reg(isa.R3) != 99 || c.Reg(isa.R4) != 99 {
		t.Errorf("r3=%d r4=%d, want 99", c.Reg(isa.R3), c.Reg(isa.R4))
	}
	if c.Reg(isa.R5) != 0x6064 {
		t.Errorf("lea r5 = %#x", c.Reg(isa.R5))
	}
}

func TestIndirectJump(t *testing.T) {
	c := newCore(t, `
		.org 0x1000
	start:
		movabs r1, there
		jmpr r1
		movi r2, 1   ; skipped
		hlt
	there:
		movi r2, 2
		hlt
	`)
	run(t, c)
	if c.Reg(isa.R2) != 2 {
		t.Errorf("r2 = %d, want 2", c.Reg(isa.R2))
	}
}

func TestDivideByZero(t *testing.T) {
	c := newCore(t, `
		.org 0x1000
	start:
		movi r1, 1
		movi r2, 0
		div r1, r2
		hlt
	`)
	_, err := c.Run(100)
	if err == nil {
		t.Fatal("divide by zero should error")
	}
}

func TestInvalidInstruction(t *testing.T) {
	p := asm.MustAssemble(".org 0x1000\nstart: .byte 0xff")
	m := mem.New()
	p.LoadInto(m)
	c := cpu.New(cpu.Config{}, m)
	c.SetPC(0x1000)
	_, err := c.Step()
	var iie *cpu.InvalidInstError
	if !errors.As(err, &iie) {
		t.Fatalf("err = %v, want InvalidInstError", err)
	}
	if iie.PC != 0x1000 {
		t.Errorf("fault pc = %#x", iie.PC)
	}
}

func TestFetchFaultPropagates(t *testing.T) {
	m := mem.New()
	c := cpu.New(cpu.Config{}, m)
	c.SetPC(0xdead000)
	_, err := c.Step()
	var f *mem.Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want *mem.Fault", err)
	}
	if f.Access != mem.AccessFetch {
		t.Errorf("access = %v", f.Access)
	}
}

func TestOnRetireGroundTruth(t *testing.T) {
	c := newCore(t, `
		.org 0x1000
	start:
		movi r1, 2
	loop:
		subi r1, 1
		jnz loop
		hlt
	`)
	var pcs []uint64
	c.OnRetire = func(pc uint64, in isa.Inst) { pcs = append(pcs, pc) }
	run(t, c)
	// movi(6B)@0x1000, subi(3B)@0x1006, jnz(6B)@0x1009, subi, jnz, hlt@0x100f.
	want := []uint64{0x1000, 0x1006, 0x1009, 0x1006, 0x1009, 0x100f}
	if len(pcs) != len(want) {
		t.Fatalf("retired %d instructions (%#x), want %d", len(pcs), pcs, len(want))
	}
	for i := range want {
		if pcs[i] != want[i] {
			t.Errorf("pcs[%d] = %#x, want %#x", i, pcs[i], want[i])
		}
	}
}

func TestSyscallHook(t *testing.T) {
	c := newCore(t, `
		.org 0x1000
	start:
		syscall 7
		hlt
	`)
	var got []uint8
	c.OnSyscall = func(n uint8) error {
		got = append(got, n)
		return nil
	}
	run(t, c)
	if len(got) != 1 || got[0] != 7 {
		t.Errorf("syscalls = %v", got)
	}
}

// TestBTBSpeedup is the fundamental timing channel: the second execution
// of a direct jump is faster (smaller LBR delta) than the first because
// the BTB predicts it.
func TestBTBSpeedup(t *testing.T) {
	c := newCore(t, `
		.org 0x1000
	start:
		call fn
		call fn
		hlt
		.org 0x2000
	fn:
		jmp8 tgt
		.space 6, 0x01
	tgt:
		ret
	`)
	run(t, c)
	// Per the paper's methodology (§2.3), the prediction outcome of the
	// jump is read from the LBR delta of the *subsequent return*: a
	// predicted jump retires back-to-back with the ret, a mispredicted
	// one inserts a front-end bubble before it.
	var retDeltas []uint64
	for _, r := range c.LBR.Records() {
		if r.From == 0x2008 { // the ret after the jump
			retDeltas = append(retDeltas, r.Cycles)
		}
	}
	if len(retDeltas) != 2 {
		t.Fatalf("observed %d rets, want 2 (records: %+v)", len(retDeltas), c.LBR.Records())
	}
	if retDeltas[1] >= retDeltas[0] {
		t.Errorf("ret delta after predicted jump (%d) should be < after unpredicted (%d)", retDeltas[1], retDeltas[0])
	}
	if _, ok := c.BTB.EntryAt(0x2001); !ok {
		t.Error("jump should have a BTB entry after execution")
	}
}

// TestExperiment1FalseHitDealloc reproduces the §2.3 mechanism: a BTB
// entry allocated by a 2-byte jump in one 4 GiB region is deallocated by
// the execution of plain nops in another region that alias its address.
func TestExperiment1FalseHitDealloc(t *testing.T) {
	c := newCore(t, `
		.org 0x10000
	start:
		movabs r1, f1
		callr r1
		movabs r2, f2
		callr r2
		hlt

		.org 0x400000
	f1:
		jmp8 l1          ; occupies [0x400000, 0x400001]
		.space 4, 0x01
	l1:
		ret

		.org 0x100400000 ; f1 + 4 GiB: aliases on SkyLake geometry
	f2:
		nop
		nop
		nop
		nop
		ret
	`)
	// Run until after the first call returns: the entry must exist.
	for c.PC() != 0x10000+10+2 { // after callr r1 retires, pc = movabs r2
		if _, err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := c.BTB.EntryAt(0x40_0001); !ok {
		t.Fatal("jmp8 should have allocated a BTB entry")
	}
	run(t, c)
	if _, ok := c.BTB.EntryAt(0x40_0001); ok {
		t.Error("nop execution 4 GiB away must deallocate the aliased entry (Takeaway 1)")
	}
	if c.FalseHits() == 0 {
		t.Error("false-hit counter should have incremented")
	}
}

// TestExperiment1NoCollision is the control: nops that start past the
// entry's offset leave the entry alone.
func TestExperiment1NoCollision(t *testing.T) {
	c := newCore(t, `
		.org 0x10000
	start:
		movabs r1, f1
		callr r1
		movabs r2, f2
		callr r2
		hlt

		.org 0x400000
	f1:
		jmp8 l1          ; entry keyed at 0x400001 (offset 1)
		.space 4, 0x01
	l1:
		ret

		.org 0x100400004 ; offset 4 > 1: no collision
	f2:
		nop
		nop
		ret
	`)
	run(t, c)
	if _, ok := c.BTB.EntryAt(0x40_0001); !ok {
		t.Error("non-overlapping nops must not deallocate the entry")
	}
}

// TestExperiment2RangeSemantics reproduces the §2.4 mechanism: entering
// a nop run at offset F1 <= F2+1 uses the aliased entry allocated by a
// jump at offset F2 in another region, causing a false hit; entering
// past it does not.
func TestExperiment2RangeSemantics(t *testing.T) {
	build := func(f1 uint64) *cpu.Core {
		// Block at 0x500000. j1 occupies [0x50001e, 0x50001f]. The
		// aliased jump j2 occupies offsets [0x10, 0x11] 4 GiB higher.
		return newCore(t, `
			.org 0x10000
		start:
			movabs r1, j1
			callr r1
			movabs r2, f2
			callr r2
			movabs r3, `+hex(0x50_0000+f1)+`
			callr r3
			hlt

			.org 0x500000
		f1base:
			.space 0x1e, 0x01
		j1:
			jmp8 l1
		l1:
			ret

			.org 0x100500010
		f2:
			jmp8 l2
		l2:
			ret
		`)
	}

	// F1 = 0x08 <= F2+1 = 0x11: the j2 entry false-hits and dies.
	c := build(0x08)
	run(t, c)
	if _, ok := c.BTB.EntryAt(0x1_0050_0011); ok {
		t.Error("entering the PW below the aliased entry must deallocate it")
	}
	if _, ok := c.BTB.EntryAt(0x50_001f); !ok {
		t.Error("the in-region jump's entry must survive")
	}

	// F1 = 0x14 > 0x11: the j2 entry survives.
	c = build(0x14)
	run(t, c)
	if _, ok := c.BTB.EntryAt(0x1_0050_0011); !ok {
		t.Error("entering the PW above the aliased entry must leave it alone")
	}
}

func hex(v uint64) string {
	const digits = "0123456789abcdef"
	buf := []byte("0x")
	started := false
	for shift := 60; shift >= 0; shift -= 4 {
		d := (v >> uint(shift)) & 0xf
		if d != 0 {
			started = true
		}
		if started {
			buf = append(buf, digits[d])
		}
	}
	if !started {
		buf = append(buf, '0')
	}
	return string(buf)
}

// TestMacroFusion verifies that cmp+Jcc retires as a single step — the
// paper's single-stepping measurement-error source (§7.3).
func TestMacroFusion(t *testing.T) {
	c := newCore(t, `
		.org 0x1000
	start:
		movi r1, 1
		cmp r1, r2
		jnz skip
		nop
	skip:
		hlt
	`)
	steps := 0
	insts := 0
	c.OnRetire = func(pc uint64, in isa.Inst) { insts++ }
	for !c.Halted() {
		if _, err := c.Step(); err != nil {
			if err == cpu.ErrHalted {
				break
			}
			t.Fatal(err)
		}
		steps++
	}
	// movi, (cmp+jnz fused), hlt = 3 steps but 4 retired instructions.
	if insts != 4 {
		t.Errorf("retired %d instructions, want 4", insts)
	}
	if steps != 3 {
		t.Errorf("architectural steps = %d, want 3 (fusion)", steps)
	}
}

func TestMacroFusionDisabled(t *testing.T) {
	p := asm.MustAssemble(`
		.org 0x1000
	start:
		movi r1, 1
		cmp r1, r2
		jnz skip
		nop
	skip:
		hlt
	`)
	m := mem.New()
	p.LoadInto(m)
	cfg := cpu.DefaultConfig()
	cfg.NoMacroFusion = true
	c := cpu.New(cfg, m)
	c.SetPC(0x1000)
	steps := 0
	for !c.Halted() {
		if _, err := c.Step(); err != nil {
			break
		}
		steps++
	}
	if steps != 4 {
		t.Errorf("steps = %d, want 4 without fusion", steps)
	}
}

// TestSpeculativeFetchAhead: single-stepping still lets the front end
// run ahead, so BTB effects from *unretired* successor instructions are
// visible — the §6.3 speculation effect.
func TestSpeculativeFetchAhead(t *testing.T) {
	c := newCore(t, `
		.org 0x10000
	start:
		movabs r1, f1
		callr r1
		hlt
		.org 0x400000      ; victim-analog: nops aliasing a planted entry
	f1:
		nop
		nop
		nop
		ret
	`)
	// Plant an attacker-style entry whose key aliases f1's second nop.
	c.BTB.Update(0x1_0040_0001, 0x42, isa.KindJump)
	// Step until only the FIRST nop has retired: the aliasing nop at
	// f1+1 has not retired, but its PW has been fetched.
	for c.Retired() < 3 {
		if _, err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := c.BTB.EntryAt(0x1_0040_0001); ok {
		t.Error("fetch-ahead should have false-hit the planted entry before the aliasing nop retired")
	}
}

func TestInterruptResumes(t *testing.T) {
	c := newCore(t, `
		.org 0x1000
	start:
		movi r1, 3
	loop:
		subi r1, 1
		jnz loop
		hlt
	`)
	for i := 0; i < 3; i++ {
		if _, err := c.Step(); err != nil {
			t.Fatal(err)
		}
		before := c.Cycle()
		c.Interrupt()
		_ = before
	}
	run(t, c)
	if c.Reg(isa.R1) != 0 {
		t.Errorf("r1 = %d, want 0 (interrupts must not corrupt execution)", c.Reg(isa.R1))
	}
}

func TestContextSwitchPreservesBTB(t *testing.T) {
	c := newCore(t, `
		.org 0x1000
	start:
		call fn
		hlt
	fn:
		ret
		.org 0x2000
	other:
		movi r5, 77
		hlt
	`)
	run(t, c)
	entries := c.BTB.ValidCount()
	if entries == 0 {
		t.Fatal("setup: expected BTB entries from process A")
	}
	var saved cpu.ArchState
	next := cpu.ArchState{PC: 0x2000}
	next.Regs[isa.SP] = stackTop
	c.ContextSwitch(&saved, &next)
	run(t, c)
	if c.Reg(isa.R5) != 77 {
		t.Errorf("process B r5 = %d", c.Reg(isa.R5))
	}
	if c.BTB.ValidCount() == 0 {
		t.Error("context switch must NOT flush the BTB — that is the attack surface")
	}
	// Switch back and verify process A state was preserved.
	c.ContextSwitch(nil, &saved)
	if !c.Halted() {
		t.Error("process A was halted at switch-out")
	}
}

func TestLBRSuppression(t *testing.T) {
	c := newCore(t, `
		.org 0x1000
	start:
		call fn
		hlt
	fn:
		ret
	`)
	c.LBRSuppress = func(pc uint64) bool { return true }
	run(t, c)
	if len(c.LBR.Records()) != 0 {
		t.Errorf("suppressed LBR recorded %d entries", len(c.LBR.Records()))
	}
}

// TestRetireBandwidth checks that straight-line cycle counts grow with
// instruction count — the decreasing slope of the blue line in Fig. 4.
func TestRetireBandwidth(t *testing.T) {
	cycles := func(nops int) uint64 {
		b := asm.NewBuilder(0x1000)
		b.Label("start").Nops(nops)
		b.Inst(isa.Hlt())
		p, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		m := mem.New()
		p.LoadInto(m)
		c := cpu.New(cpu.Config{}, m)
		c.SetPC(0x1000)
		if _, err := c.Run(10000); err != nil {
			t.Fatal(err)
		}
		return c.Cycle()
	}
	short, long := cycles(8), cycles(128)
	if long <= short {
		t.Errorf("128 nops (%d cyc) should take longer than 8 nops (%d cyc)", long, short)
	}
	if long-short < 20 {
		t.Errorf("cycle growth %d too small for 120 extra instructions", long-short)
	}
}

func TestMispredictPenaltyVisible(t *testing.T) {
	// A conditional branch alternating taken/not-taken mispredicts; its
	// LBR records must carry the mispredict bit on first taken execution.
	c := newCore(t, `
		.org 0x1000
	start:
		movi r1, 1
		cmp r1, r2      ; 1 != 0 → jnz taken
		jnz out
		nop
	out:
		hlt
	`)
	run(t, c)
	recs := c.LBR.Records()
	found := false
	for _, r := range recs {
		if r.MispredValid && r.Mispredicted {
			found = true
		}
	}
	if !found {
		t.Errorf("first-seen taken conditional should be a recorded mispredict: %+v", recs)
	}
}
