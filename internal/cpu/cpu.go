// Package cpu implements the simulated core: a pipelined, superscalar
// front end fetching 32-byte prediction windows (PWs) through the BTB,
// an in-order execution engine, and a cycle-accounting model whose
// observable artifacts (LBR deltas, misprediction bubbles) reproduce the
// signals exploited by the NightVision paper.
//
// # Front end
//
// Fetch operates at PW granularity. Each PW lookup consults the BTB with
// range semantics (internal/btb). When a predicted branch location turns
// out, at decode, not to hold a control-transfer instruction, the front
// end deallocates the BTB entry and resteers — Takeaway 1 of the paper,
// the effect that lets non-control-transfer instructions leak their PCs.
//
// The front end runs ahead of retirement by a configurable number of
// PWs. All fetch/decode-time BTB effects are therefore speculative with
// respect to the instruction being retired, reproducing the §6.3
// observation that single-stepping still exposes BTB updates from
// not-yet-retired successors.
//
// # Timing
//
// The model is not microarchitecturally exact; it is mechanistic enough
// that the paper's *signals* are faithful: correctly predicted branches
// retire back-to-back, decode resteers cost a front-end bubble, execute
// mispredictions cost a larger one, and retire bandwidth makes straight-
// line cycle counts proportional to instruction count (the slope of the
// blue lines in Figures 2 and 4).
package cpu

import (
	"errors"
	"fmt"

	"repro/internal/btb"
	"repro/internal/isa"
	"repro/internal/lbr"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/rsb"
	"repro/internal/uarch"
)

// Config holds the core's microarchitectural parameters. Zero fields are
// replaced by the documented defaults in New.
type Config struct {
	BTB btb.Config

	// RetireWidth is the number of instructions retired per cycle.
	RetireWidth int
	// PipeDepth is the fetch-to-retire latency in cycles.
	PipeDepth uint64
	// FalseHitPenalty is the front-end bubble after a decode-time BTB
	// false hit (predicted branch byte decodes as a non-branch).
	FalseHitPenalty uint64
	// DecodeResteerPenalty is the bubble when decode redirects fetch for
	// an unpredicted (or wrongly targeted) direct jump/call.
	DecodeResteerPenalty uint64
	// ExecMispredictPenalty is the bubble when execution overturns the
	// predicted direction/target of a branch.
	ExecMispredictPenalty uint64
	// InterruptCost is the cycle cost of taking an interrupt and
	// resuming (context save, microcode, refetch).
	InterruptCost uint64
	// FetchAheadPWs is how many prediction windows the front end may run
	// ahead of the oldest unretired instruction: the speculation window.
	FetchAheadPWs int
	// NoMacroFusion disables cmp/test+Jcc fusion at decode. Fusion is on
	// by default: fused pairs retire together, which is the single-
	// stepping measurement-error source the paper identifies in §7.3.
	NoMacroFusion bool
	// RASDepth is the return-address-stack depth.
	RASDepth int
	// NoFalseHitDealloc keeps BTB entries alive across decode-time
	// false hits (only the resteer penalty is paid). Real Intel cores
	// deallocate (Takeaway 1); this ablation shows the attack's
	// deallocation signal is load-bearing.
	NoFalseHitDealloc bool
	// DirPredictor enables a bimodal conditional-direction predictor on
	// top of the BTB. The baseline model predicts taken on every BTB
	// hit, which biases wrong-path fetch toward previously taken arms;
	// the predictor suppresses that for direction-biased branches.
	DirPredictor bool
	// MulLatency, DivLatency and LoadLatency are extra retire latencies
	// for long operations.
	MulLatency  uint64
	DivLatency  uint64
	LoadLatency uint64
	// RSB, when Depth > 0, replaces the idealized bounded RAS with the
	// circular return-stack-buffer model (internal/rsb): overflow
	// overwrites the oldest return, underflow re-serves stale slots, and
	// contents survive context switches — the ret2spec attack surface.
	// The zero value keeps the legacy RAS, so every pre-existing config
	// (and golden digest) is untouched.
	RSB rsb.Config
}

// DefaultConfig returns the configuration used by the paper-reproduction
// experiments: the intel-skylake backend's BTB and deep 4-wide pipeline.
func DefaultConfig() Config {
	return ConfigFor(uarch.MustGet(uarch.DefaultName))
}

// ConfigFor translates a microarchitecture backend into a core
// configuration. Dispatch happens here, once, at construction time; the
// resulting Config is plain data and the step hot path never consults
// the backend again. The RSB model stays opt-in (zero) even for
// backends that advertise one — experiments enable it explicitly so
// that default-config behavior is bit-identical to the pre-backend
// simulator.
func ConfigFor(b uarch.Backend) Config {
	p := b.Pipeline()
	return Config{
		BTB:                   b.BTB(),
		RetireWidth:           p.RetireWidth,
		PipeDepth:             p.PipeDepth,
		FalseHitPenalty:       p.FalseHitPenalty,
		DecodeResteerPenalty:  p.DecodeResteerPenalty,
		ExecMispredictPenalty: p.ExecMispredictPenalty,
		InterruptCost:         p.InterruptCost,
		FetchAheadPWs:         p.FetchAheadPWs,
		RASDepth:              p.RASDepth,
		MulLatency:            p.MulLatency,
		DivLatency:            p.DivLatency,
		LoadLatency:           p.LoadLatency,
		NoFalseHitDealloc:     !b.FalseHitDealloc(),
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.BTB == (btb.Config{}) {
		c.BTB = d.BTB
	}
	if c.RetireWidth == 0 {
		c.RetireWidth = d.RetireWidth
	}
	if c.PipeDepth == 0 {
		c.PipeDepth = d.PipeDepth
	}
	if c.FalseHitPenalty == 0 {
		c.FalseHitPenalty = d.FalseHitPenalty
	}
	if c.DecodeResteerPenalty == 0 {
		c.DecodeResteerPenalty = d.DecodeResteerPenalty
	}
	if c.ExecMispredictPenalty == 0 {
		c.ExecMispredictPenalty = d.ExecMispredictPenalty
	}
	if c.InterruptCost == 0 {
		c.InterruptCost = d.InterruptCost
	}
	if c.FetchAheadPWs == 0 {
		c.FetchAheadPWs = d.FetchAheadPWs
	}
	if c.RASDepth == 0 {
		c.RASDepth = d.RASDepth
	}
	if c.MulLatency == 0 {
		c.MulLatency = d.MulLatency
	}
	if c.DivLatency == 0 {
		c.DivLatency = d.DivLatency
	}
	if c.LoadLatency == 0 {
		c.LoadLatency = d.LoadLatency
	}
	return c
}

// Flags is the architectural flags register.
type Flags struct {
	Z, S, C, O bool
}

// Errors returned by Step.
var (
	// ErrHalted is returned when the core executes hlt and on every
	// subsequent Step until Reset or SetPC.
	ErrHalted = errors.New("cpu: core halted")
)

// InvalidInstError reports a fetch of undecodable bytes at retirement.
type InvalidInstError struct {
	PC uint64
}

func (e *InvalidInstError) Error() string {
	return fmt.Sprintf("cpu: invalid instruction at %#x", e.PC)
}

// slot is one decoded instruction waiting in the in-order queue between
// the front end and retirement.
type slot struct {
	pc             uint64
	in             isa.Inst
	pwid           uint64
	fetchCycle     uint64
	nextPredicted  uint64 // the pc the front end followed after this inst
	predictedTaken bool   // front end treated this as a taken control transfer
	btbHit         bool   // a BTB entry predicted this instruction
	fusedWithNext  bool   // macro-fused with the following slot
}

// decCacheSize is the number of direct-mapped decode-cache entries,
// indexed by the low bits of the fetch pc. 4096 entries (~160 KiB per
// core) cover the working set of the largest corpus functions without
// conflict thrash; cores are pooled per worker, so the footprint is
// paid once.
const decCacheSize = 1 << 12

// decEntry is one decode-cache line: the instruction decoded at pc while
// memory was at generation gen, plus how many bytes the speculative
// fetch could read (so a hit replays the same accessed-bit footprint).
// gen==0 marks an empty line; mem.Memory generations start at 1.
type decEntry struct {
	pc    uint64
	gen   uint64
	in    isa.Inst
	peekN uint8
}

// StepInfo describes one retired architectural step.
type StepInfo struct {
	PC          uint64
	Inst        isa.Inst
	RetireCycle uint64
	Taken       bool   // a control transfer that redirected the stream
	Target      uint64 // where it went (valid when Taken)
	// Fused reports that this step retired a macro-fused pair: PC/Inst
	// describe the leading instruction, FusedPC/FusedInst the branch
	// that retired with it.
	Fused     bool
	FusedPC   uint64
	FusedInst isa.Inst
}

// Core is the simulated CPU core. Not safe for concurrent use.
type Core struct {
	cfg Config

	Mem *mem.Memory
	BTB *btb.BTB
	LBR *lbr.LBR

	regs  [isa.NumRegs]uint64
	flags Flags
	pc    uint64 // next architectural pc (first unretired instruction)

	halted bool

	// Front end state.
	fetchPC      uint64
	fetchClock   uint64
	fetchStalled bool // fetch hit a speculative fault/stop; retry when architectural
	fetchStopped bool // fetch hit hlt or an unresolvable indirect; wait for execute
	// queue is the in-order decoded-instruction queue. Retirement
	// advances qHead instead of re-slicing so the backing array keeps
	// its front capacity; enqueue compacts when the consumed prefix
	// dominates.
	queue    []slot
	qHead    int
	nextPWID uint64

	// Return-address prediction: specRAS tracks decode-time state,
	// archRAS retirement state; squashes restore spec from arch. When
	// cfg.RSB.Depth > 0 the RSB pair below replaces the RAS pair and
	// these slices stay empty.
	specRAS []uint64
	archRAS []uint64

	// Return stack buffers (circular, wrap-on-over/underflow); nil when
	// the RSB model is disabled. Same spec/arch split and squash-restore
	// discipline as the RAS.
	specRSB *rsb.RSB
	archRSB *rsb.RSB

	// Conditional direction predictor (optional).
	dirPred *dirPredictor

	// Scratch reused across fetches so the hot path never allocates:
	// fetchBuf receives speculative fetch bytes, pwBundle holds the
	// current prediction window's BTB read.
	fetchBuf [isa.MaxLen]byte
	pwBundle btb.Bundle

	// decCache is a direct-mapped decode cache in front of the
	// speculative-fetch + decode path. Entries are validated against the
	// memory mutation generation (mem.Gen), so any write to executable
	// bytes, protection change or remap invalidates the whole cache at
	// once and no per-line snooping is needed.
	decCache [decCacheSize]decEntry

	// Retirement clock.
	retireClock  uint64
	retiredInCyc int

	// OnRetire, if set, observes every retired instruction: the ground-
	// truth PC trace used to validate attack reconstructions.
	OnRetire func(pc uint64, in isa.Inst)
	// OnSyscall, if set, handles syscall instructions at retirement.
	OnSyscall func(n uint8) error
	// LBRSuppress, if set and true for a branch pc, skips LBR recording.
	// Intel SGX disables branch recording for enclave-mode code; the sgx
	// package installs the range check here.
	LBRSuppress func(pc uint64) bool

	// Counters.
	retired        uint64
	squashes       uint64
	falseHits      uint64
	decodeResteers uint64
	fetchWindows   uint64

	obs Obs
}

// Obs holds optional observability counters for the core's front-end
// and retirement events. Nil counters are no-ops (see internal/obs);
// like the plain counters above they are write-only from the
// simulator's point of view, so attaching them cannot change results.
type Obs struct {
	FetchWindows   *obs.Counter // PW-granularity fetches (BTB consultations)
	Squashes       *obs.Counter // pipeline squashes, decode + execute + interrupt
	FalseHits      *obs.Counter // decode-time BTB false hits (Takeaway 1)
	DecodeResteers *obs.Counter // decode-time redirects for unpredicted branches
	Retired        *obs.Counter // retired instructions
	Interrupts     *obs.Counter // asynchronous interrupts delivered
	BTB            btb.Obs      // forwarded to the core's BTB by SetObs
}

// New returns a core with the given configuration, a fresh BTB and LBR,
// and the supplied memory.
func New(cfg Config, m *mem.Memory) *Core {
	cfg = cfg.withDefaults()
	c := &Core{
		cfg: cfg,
		Mem: m,
		BTB: btb.New(cfg.BTB),
		LBR: lbr.New(0),
	}
	if cfg.DirPredictor {
		c.dirPred = newDirPredictor()
	}
	if cfg.RSB.Depth > 0 {
		c.specRSB = rsb.New(cfg.RSB)
		c.archRSB = rsb.New(cfg.RSB)
	}
	return c
}

// Config returns the core's effective configuration.
func (c *Core) Config() Config { return c.cfg }

// SetObs attaches (or, with the zero Obs, detaches) observability
// counters to the core and its BTB. Reset detaches them, so a pooled
// core recycled for a new task must be re-attached after Reset.
func (c *Core) SetObs(o Obs) {
	c.obs = o
	c.BTB.SetObs(o.BTB)
}

// Reset returns the core to its power-on state over the same memory:
// architectural state zeroed, front end empty, BTB and LBR fully
// re-initialized, clocks and counters at zero, hooks removed. Together
// with Memory.Reset this lets a pooled simulator be recycled across
// independent runs with behavior bit-identical to a freshly built one
// (the experiment engine's determinism guarantee depends on this).
func (c *Core) Reset() {
	c.regs = [isa.NumRegs]uint64{}
	c.flags = Flags{}
	c.pc = 0
	c.halted = false
	c.fetchPC = 0
	c.fetchClock = 0
	c.fetchStalled = false
	c.fetchStopped = false
	c.queue = c.queue[:0]
	c.qHead = 0
	c.nextPWID = 0
	c.specRAS = c.specRAS[:0]
	c.archRAS = c.archRAS[:0]
	if c.specRSB != nil {
		c.specRSB.Reset()
		c.archRSB.Reset()
	}
	c.retireClock = 0
	c.retiredInCyc = 0
	c.OnRetire = nil
	c.OnSyscall = nil
	c.LBRSuppress = nil
	c.retired = 0
	c.squashes = 0
	c.falseHits = 0
	c.decodeResteers = 0
	c.fetchWindows = 0
	c.obs = Obs{}
	// Drop decode-cache contents: gen-keying already invalidates them
	// against the paired Memory (whose Reset bumps the generation), but
	// clearing here also covers a core re-pointed at a different Memory.
	for i := range c.decCache {
		c.decCache[i] = decEntry{}
	}
	c.BTB.Reset()
	c.LBR.Reset()
	if c.dirPred != nil {
		c.dirPred = newDirPredictor()
	}
}

// Reg returns the value of register r.
func (c *Core) Reg(r isa.Reg) uint64 { return c.regs[r] }

// SetReg sets register r.
func (c *Core) SetReg(r isa.Reg, v uint64) { c.regs[r] = v }

// Flags returns the architectural flags.
func (c *Core) Flags() Flags { return c.flags }

// PC returns the next architectural pc.
func (c *Core) PC() uint64 { return c.pc }

// SetPC redirects architectural execution to pc, squashing the front
// end. It also clears a halt.
func (c *Core) SetPC(pc uint64) {
	c.pc = pc
	c.halted = false
	c.squashTo(pc, 0)
}

// Cycle returns the current retirement cycle count: the core's notion of
// time, the basis of every LBR delta.
func (c *Core) Cycle() uint64 { return c.retireClock }

// Retired returns the number of retired instructions.
func (c *Core) Retired() uint64 { return c.retired }

// Squashes returns the number of pipeline squashes (decode and execute).
func (c *Core) Squashes() uint64 { return c.squashes }

// FalseHits returns the number of decode-time BTB false hits (and hence
// deallocations) observed.
func (c *Core) FalseHits() uint64 { return c.falseHits }

// FetchWindows returns the number of prediction windows the front end
// has fetched, wrong-path included. Speculative fetch volume is the
// observable the ret2spec experiment measures: stale RSB predictions
// steer extra windows down paths the program already left.
func (c *Core) FetchWindows() uint64 { return c.fetchWindows }

// Halted reports whether the core has executed hlt.
func (c *Core) Halted() bool { return c.halted }

// Interrupt models an asynchronous interrupt arriving between the last
// retired instruction and the next: the in-flight front end is squashed
// (its speculative BTB effects remain — they already happened) and the
// interrupt cost is charged. The caller then typically runs handler
// logic outside the simulated core (attack code measures the BTB via
// Prime/Probe executions on the same core) and resumes with Step.
func (c *Core) Interrupt() {
	c.obs.Interrupts.Inc()
	c.squashTo(c.pc, c.cfg.InterruptCost)
}

// ContextSwitch saves the current architectural register state into old
// and installs next, squashing the pipeline and charging interrupt cost.
// The BTB and LBR are per-core shared state and persist — this is what
// makes cross-process BTB attacks possible. The RAS is modeled as
// saved/restored by the OS (cleared here), but an enabled RSB persists
// like the BTB: hardware has no RSB save instruction, and that
// persistence is the cross-process half of the ret2spec surface.
func (c *Core) ContextSwitch(old, next *ArchState) {
	if old != nil {
		old.Regs = c.regs
		old.Flags = c.flags
		old.PC = c.pc
		old.Halted = c.halted
	}
	c.regs = next.Regs
	c.flags = next.Flags
	c.pc = next.PC
	c.halted = next.Halted
	c.archRAS = c.archRAS[:0]
	c.squashTo(c.pc, c.cfg.InterruptCost)
}

// ArchState is a process's architectural register state for context
// switching.
type ArchState struct {
	Regs   [isa.NumRegs]uint64
	Flags  Flags
	PC     uint64
	Halted bool
}

// squashTo flushes the in-flight front end and restarts fetch at pc
// after penalty cycles.
func (c *Core) squashTo(pc uint64, penalty uint64) {
	c.queue = c.queue[:0]
	c.qHead = 0
	c.fetchPC = pc
	c.fetchStalled = false
	c.fetchStopped = false
	c.squashes++
	c.obs.Squashes.Inc()
	c.fetchClock = c.retireClock + penalty
	// Restore decode-time return prediction from retirement state
	// (hardware checkpoint recovery).
	c.specRAS = append(c.specRAS[:0], c.archRAS...)
	if c.specRSB != nil {
		c.specRSB.CopyFrom(c.archRSB)
	}
}

// Return-predictor dispatch: the spec/arch push and pop sites in
// fetch and execute go through these, selecting the circular RSB model
// when it is enabled and the legacy bounded RAS otherwise. The branch
// is on a pointer fixed at construction — no per-call dispatch cost.

func (c *Core) specReturnPush(v uint64) {
	if c.specRSB != nil {
		c.specRSB.Push(v)
		return
	}
	c.rasPush(&c.specRAS, v)
}

func (c *Core) archReturnPush(v uint64) {
	if c.archRSB != nil {
		c.archRSB.Push(v)
		return
	}
	c.rasPush(&c.archRAS, v)
}

// specReturnPop returns the predicted return target, ok=false meaning
// no prediction (empty RAS, or a never-written RSB slot whose 0 the
// front end must not fetch from).
func (c *Core) specReturnPop() (uint64, bool) {
	if c.specRSB != nil {
		v := c.specRSB.Pop()
		return v, v != 0
	}
	return c.rasPop(&c.specRAS)
}

func (c *Core) archReturnPop() {
	if c.archRSB != nil {
		c.archRSB.Pop()
		return
	}
	c.rasPop(&c.archRAS)
}
