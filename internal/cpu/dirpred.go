package cpu

// dirPredictor is a bimodal (2-bit saturating counter) conditional
// direction predictor, consulted when the BTB recognizes a conditional
// branch at fetch. It is optional (Config.DirPredictor): the baseline
// model predicts "taken on BTB hit", which is what the NightVision
// experiments assume; the predictor exists to study how direction
// prediction changes the wrong-path fetch artifacts that the leakage
// decision rule (experiments/usecase1.go) keys on.
type dirPredictor struct {
	counters []uint8 // 2-bit saturating, >=2 predicts taken
	mask     uint64
}

const dirPredEntries = 4096

func newDirPredictor() *dirPredictor {
	d := &dirPredictor{
		counters: make([]uint8, dirPredEntries),
		mask:     dirPredEntries - 1,
	}
	// Weakly taken initial state: a branch with a BTB entry was taken
	// at least once.
	for i := range d.counters {
		d.counters[i] = 2
	}
	return d
}

func (d *dirPredictor) index(pc uint64) uint64 {
	return (pc ^ pc>>13) & d.mask
}

// predictTaken returns the predicted direction for the branch at pc.
func (d *dirPredictor) predictTaken(pc uint64) bool {
	return d.counters[d.index(pc)] >= 2
}

// update trains the counter with the resolved direction.
func (d *dirPredictor) update(pc uint64, taken bool) {
	c := &d.counters[d.index(pc)]
	if taken {
		if *c < 3 {
			*c++
		}
	} else if *c > 0 {
		*c--
	}
}
