// Package nvrand provides a small deterministic PRNG used throughout the
// simulator. Every stochastic element (measurement noise, corpus
// generation, control-flow randomization) draws from an explicitly seeded
// Rand so that experiments are reproducible run-to-run; the global
// math/rand source is never used.
package nvrand

import "math"

// Rand is a splitmix64 generator. The zero value is a valid generator
// seeded with 0, but callers should prefer New for clarity.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *Rand { return &Rand{state: seed} }

// gamma is the splitmix64 state increment.
const gamma = 0x9E3779B97F4A7C15

// mix is the splitmix64 output function.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.state += gamma
	return mix(r.state)
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("nvrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a pseudo-random uint64 in [0, n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("nvrand: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, via the Box-Muller transform.
func (r *Rand) NormFloat64() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Bool returns a pseudo-random boolean.
func (r *Rand) Bool() bool { return r.Uint64()&1 == 1 }

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Split returns a new independent generator derived from this one,
// useful for giving subsystems their own streams.
func (r *Rand) Split() *Rand { return New(r.Uint64()) }

// SplitAt returns the i'th generator split off a generator seeded with
// seed: SplitAt(seed, i) produces the same stream as calling
// New(seed).Split() i+1 times and keeping the last result, computed in
// O(1). Parallel code uses it to derive per-task streams keyed by task
// index rather than by the order in which tasks happen to be scheduled,
// which keeps results independent of worker count (internal/runner).
func SplitAt(seed, i uint64) *Rand {
	return New(mix(seed + (i+1)*gamma))
}
