package nvrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce same stream")
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds matched %d/1000 draws", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d", v)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Uint64n(0) should panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(99)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v", f)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(5)
	const n = 100000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sumsq/n - mean*mean)
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if math.Abs(std-1) > 0.02 {
		t.Errorf("stddev = %v, want ~1", std)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		size := int(n%64) + 1
		p := New(seed).Perm(size)
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(1)
	s := r.Split()
	// The split stream must not be the same as the parent's continuation.
	same := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == s.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Errorf("split stream matched parent %d/100 draws", same)
	}
}

func TestBoolBalance(t *testing.T) {
	r := New(3)
	trues := 0
	for i := 0; i < 10000; i++ {
		if r.Bool() {
			trues++
		}
	}
	if trues < 4500 || trues > 5500 {
		t.Errorf("Bool true rate = %d/10000", trues)
	}
}

func TestSplitAtMatchesSequentialSplit(t *testing.T) {
	const seed = 0xBEEF
	seq := New(seed)
	for i := uint64(0); i < 100; i++ {
		split := seq.Split()
		at := SplitAt(seed, i)
		for j := 0; j < 8; j++ {
			if a, b := split.Uint64(), at.Uint64(); a != b {
				t.Fatalf("SplitAt(seed, %d) draw %d = %#x, want %#x", i, j, b, a)
			}
		}
	}
}

func TestSplitAtIndependence(t *testing.T) {
	seen := map[uint64]uint64{}
	for i := uint64(0); i < 10000; i++ {
		v := SplitAt(42, i).Uint64()
		if j, dup := seen[v]; dup {
			t.Fatalf("streams %d and %d collide on first draw", i, j)
		}
		seen[v] = i
	}
}
