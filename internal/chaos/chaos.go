// Package chaos is the fault-injection harness behind the repo's
// crash-recovery tests. It provides one concrete filesystem, FaultFS,
// that satisfies both injectable fs seams (store.FS and journal.FS) and
// routes every operation through a caller-supplied hook, plus canned
// hooks for the two fault shapes the tests need:
//
//   - FreezeAfter(k): every fs operation from global index k on fails.
//     Freezing a journal's filesystem is the crash simulator — terminal
//     records stop reaching disk exactly as if the process had died,
//     and a subsequent journal.Open on the same directory (with a
//     healthy fs) sees precisely the pre-crash prefix.
//
//   - SeededFailures(seed, p, ops...): each matching operation fails
//     independently with probability p, deterministically derived from
//     (seed, operation index) via nvrand — reruns inject the same
//     faults.
//
// The package is test infrastructure: nothing in the production daemon
// imports it, but it lives in the main tree so daemon and engine tests
// can share it.
package chaos

import (
	"errors"
	"fmt"
	"os"
	"sync"

	"repro/internal/journal"
	"repro/internal/nvrand"
	"repro/internal/store"
)

// Op names one filesystem operation class as seen by the hook.
type Op string

const (
	OpMkdirAll   Op = "mkdirall"
	OpCreateTemp Op = "createtemp"
	OpOpenAppend Op = "openappend"
	OpRename     Op = "rename"
	OpRemove     Op = "remove"
	OpReadFile   Op = "readfile"
	OpReadDir    Op = "readdir"
	OpWrite      Op = "write"
	OpSync       Op = "sync"
)

// ErrInjected is the error every injected fault carries (wrapped with
// the operation and path); errors.Is(err, ErrInjected) identifies it.
var ErrInjected = errors.New("chaos: injected fault")

// Hook decides the fate of one operation: nil lets it through, any
// error is returned to the caller without touching the real fs.
// idx is the global 0-based operation index on this FaultFS.
type Hook func(op Op, path string, idx int) error

// FaultFS is an os-backed filesystem with a fault hook in front of
// every operation. It structurally satisfies store.FS and journal.FS,
// so one instance (and one fault schedule) can cover both seams.
type FaultFS struct {
	mu   sync.Mutex
	idx  int
	hook Hook
}

// NewFaultFS returns a FaultFS routing every operation through hook
// (nil = no faults).
func NewFaultFS(hook Hook) *FaultFS { return &FaultFS{hook: hook} }

// SetHook swaps the hook (e.g. to heal the fs mid-test). The operation
// index keeps counting.
func (f *FaultFS) SetHook(hook Hook) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.hook = hook
}

// Ops returns the number of operations seen so far (after a run, this
// is the crash-point space for FreezeAfter).
func (f *FaultFS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.idx
}

func (f *FaultFS) check(op Op, path string) error {
	f.mu.Lock()
	i := f.idx
	f.idx++
	hook := f.hook
	f.mu.Unlock()
	if hook == nil {
		return nil
	}
	if err := hook(op, path, i); err != nil {
		return fmt.Errorf("%s %s (op %d): %w", op, path, i, err)
	}
	return nil
}

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	if err := f.check(OpMkdirAll, path); err != nil {
		return err
	}
	return os.MkdirAll(path, perm)
}

func (f *FaultFS) CreateTemp(dir, pattern string) (store.File, error) {
	if err := f.check(OpCreateTemp, dir); err != nil {
		return nil, err
	}
	fl, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: fl, fs: f}, nil
}

func (f *FaultFS) OpenAppend(name string) (journal.File, error) {
	if err := f.check(OpOpenAppend, name); err != nil {
		return nil, err
	}
	fl, err := os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: fl, fs: f}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if err := f.check(OpRename, oldpath); err != nil {
		return err
	}
	return os.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error {
	if err := f.check(OpRemove, name); err != nil {
		return err
	}
	return os.Remove(name)
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	if err := f.check(OpReadFile, name); err != nil {
		return nil, err
	}
	return os.ReadFile(name)
}

func (f *FaultFS) ReadDir(name string) ([]string, error) {
	if err := f.check(OpReadDir, name); err != nil {
		return nil, err
	}
	ents, err := os.ReadDir(name)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names, nil
}

// faultFile is an *os.File whose Write and Sync consult the hook.
// Close never injects: a crash test that froze the fs must still be
// able to release file descriptors.
type faultFile struct {
	f  *os.File
	fs *FaultFS
}

func (w *faultFile) Write(p []byte) (int, error) {
	if err := w.fs.check(OpWrite, w.f.Name()); err != nil {
		return 0, err
	}
	return w.f.Write(p)
}

func (w *faultFile) Sync() error {
	if err := w.fs.check(OpSync, w.f.Name()); err != nil {
		return err
	}
	return w.f.Sync()
}

func (w *faultFile) Close() error { return w.f.Close() }
func (w *faultFile) Name() string { return w.f.Name() }

// FreezeAfter fails every operation with a global index >= k: the
// filesystem "dies" at op k and stays dead, which is how the recovery
// tests model a process crash at an arbitrary journal position.
func FreezeAfter(k int) Hook {
	return func(op Op, path string, idx int) error {
		if idx >= k {
			return ErrInjected
		}
		return nil
	}
}

// SeededFailures fails each operation matching ops (all operations if
// none given) independently with probability p, derived only from
// (seed, operation index): the fault schedule is reproducible across
// runs and worker interleavings that preserve op order.
func SeededFailures(seed uint64, p float64, ops ...Op) Hook {
	match := make(map[Op]bool, len(ops))
	for _, op := range ops {
		match[op] = true
	}
	return func(op Op, path string, idx int) error {
		if len(match) > 0 && !match[op] {
			return nil
		}
		if nvrand.SplitAt(seed, uint64(idx)).Float64() < p {
			return ErrInjected
		}
		return nil
	}
}
