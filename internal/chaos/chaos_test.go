package chaos

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/journal"
	"repro/internal/nvrand"
	"repro/internal/registry"
	"repro/internal/store"
)

// FaultFS must satisfy both injectable fs seams.
var (
	_ store.FS   = (*FaultFS)(nil)
	_ journal.FS = (*FaultFS)(nil)
)

type chaosResult struct {
	V uint64 `json:"v"`
}

func (c chaosResult) Human() string { return fmt.Sprint(c.V) }

// chaosRegistry builds deterministic experiments for the harness:
//   - compute: returns a value derived only from (seed, n)
//   - flaky:   panics for roughly a third of (seed, n) pairs — same
//     pairs every run — otherwise computes
//   - slow:    sleeps a few ms, then computes (timing never enters the
//     result)
//   - hang:    ignores cancellation entirely until the returned release
//     channel closes
func chaosRegistry() (*registry.Registry, chan struct{}) {
	release := make(chan struct{})
	value := func(seed uint64, n int) uint64 {
		return nvrand.SplitAt(seed, uint64(n)).Uint64()
	}
	nParam := []registry.Param{{Name: "n", Kind: registry.Int, Default: 0}}
	r := registry.New()
	r.Register(registry.Experiment{
		Name: "compute", Params: nParam,
		Run: func(rc registry.RunContext) (registry.Result, error) {
			return chaosResult{V: value(rc.Seed, rc.Values.Int("n"))}, nil
		},
	})
	r.Register(registry.Experiment{
		Name: "flaky", Params: nParam,
		Run: func(rc registry.RunContext) (registry.Result, error) {
			v := value(rc.Seed, rc.Values.Int("n"))
			if v%3 == 0 {
				panic(fmt.Sprintf("chaos: deterministic panic for n=%d", rc.Values.Int("n")))
			}
			return chaosResult{V: v}, nil
		},
	})
	r.Register(registry.Experiment{
		Name: "slow", Params: nParam,
		Run: func(rc registry.RunContext) (registry.Result, error) {
			time.Sleep(2 * time.Millisecond)
			return chaosResult{V: value(rc.Seed, rc.Values.Int("n"))}, nil
		},
	})
	r.Register(registry.Experiment{
		Name: "hang", Params: nParam,
		Run: func(rc registry.RunContext) (registry.Result, error) {
			<-release
			return chaosResult{V: 0}, nil
		},
	})
	return r, release
}

// chaosRequests is the fixed submission mix every engine run uses, so
// job-N maps to the same request in the reference and every crash
// iteration.
func chaosRequests() []jobs.Request {
	return []jobs.Request{
		{Experiment: "compute", Params: map[string]any{"n": 1}, Seed: 11},
		{Experiment: "slow", Params: map[string]any{"n": 2}, Seed: 11, Priority: 2},
		{Experiment: "flaky", Params: map[string]any{"n": 3}, Seed: 11},
		{Experiment: "compute", Params: map[string]any{"n": 4}, Seed: 12},
		{Experiment: "flaky", Params: map[string]any{"n": 6}, Seed: 11, Priority: 1},
		{Experiment: "slow", Params: map[string]any{"n": 7}, Seed: 13},
	}
}

type finalState struct {
	state  jobs.State
	result []byte
}

// runAll submits the fixed mix, waits for every job, and returns the
// terminal snapshot per job ID.
func runAll(t *testing.T, e *jobs.Engine) map[string]finalState {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var ids []string
	for _, req := range chaosRequests() {
		v, err := e.Submit(req)
		if err != nil {
			t.Fatalf("submit %+v: %v", req, err)
		}
		ids = append(ids, v.ID)
	}
	out := make(map[string]finalState, len(ids))
	for _, id := range ids {
		v, err := e.Wait(ctx, id)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		if !v.State.Terminal() {
			t.Fatalf("job %s non-terminal after Wait: %s", id, v.State)
		}
		out[id] = finalState{state: v.State, result: append([]byte(nil), v.Result...)}
	}
	return out
}

// TestChaosCrashRecovery is the randomized crash-recovery test: run a
// reference workload once, then crash a journaled engine at seeded
// fs-operation points (the journal's filesystem freezes — exactly the
// record prefix a real crash would leave), restart over the surviving
// journal, and assert every recovered job reaches a terminal state
// exactly once with results bit-identical to the reference.
func TestChaosCrashRecovery(t *testing.T) {
	// Reference run: healthy fs, counting ops to learn the crash space.
	refFS := NewFaultFS(nil)
	refJn, err := journal.Open(t.TempDir(), journal.Options{FS: refFS})
	if err != nil {
		t.Fatal(err)
	}
	refReg, _ := chaosRegistry()
	refEng := jobs.New(jobs.Config{Registry: refReg, Journal: refJn, Workers: 2})
	ref := runAll(t, refEng)
	shutdown(t, refEng)
	if err := refJn.Close(); err != nil {
		t.Fatal(err)
	}
	opSpace := refFS.Ops()
	if opSpace < 10 {
		t.Fatalf("reference run touched only %d fs ops; harness broken", opSpace)
	}

	// Seeded crash points across the op space, plus the extremes.
	rng := nvrand.New(0xC4A05)
	points := []int{0, 1, opSpace - 1}
	for i := 0; i < 6; i++ {
		points = append(points, 2+rng.Intn(opSpace))
	}

	for _, k := range points {
		k := k
		t.Run(fmt.Sprintf("crash-at-op-%d", k), func(t *testing.T) {
			dir := t.TempDir()
			storeDir := t.TempDir()

			// Doomed engine: journal fs freezes at op k.
			fs := NewFaultFS(FreezeAfter(k))
			var doomedIDs []string
			jn, err := journal.Open(dir, journal.Options{FS: fs})
			if err == nil {
				st, serr := store.New(8, storeDir)
				if serr != nil {
					t.Fatal(serr)
				}
				reg, _ := chaosRegistry()
				e := jobs.New(jobs.Config{Registry: reg, Journal: jn, Workers: 2})
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				for _, req := range chaosRequests() {
					if v, serr := e.Submit(req); serr == nil {
						doomedIDs = append(doomedIDs, v.ID)
					}
				}
				for _, id := range doomedIDs {
					e.Wait(ctx, id) // run to terminal; journal appends may silently vanish
				}
				cancel()
				shutdown(t, e)
				jn.Close()
				_ = st
			}
			// else: crashed during journal.Open — nothing durable exists.

			// Recovery: healthy fs over the surviving prefix.
			jn2, err := journal.Open(dir, journal.Options{})
			if err != nil {
				t.Fatalf("recovery open: %v", err)
			}
			defer jn2.Close()
			st2, err := store.New(8, storeDir)
			if err != nil {
				t.Fatal(err)
			}
			reg2, _ := chaosRegistry()
			e2 := jobs.New(jobs.Config{Registry: reg2, Journal: jn2, Store: st2, Workers: 2})
			defer shutdown(t, e2)

			views := e2.List()
			seen := make(map[string]bool, len(views))
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			for _, v := range views {
				if seen[v.ID] {
					t.Fatalf("job %s recovered more than once", v.ID)
				}
				seen[v.ID] = true
				want, inRef := ref[v.ID]
				if !inRef {
					t.Fatalf("recovered unknown job %s", v.ID)
				}
				got, err := e2.Wait(ctx, v.ID)
				if err != nil {
					t.Fatalf("wait recovered %s: %v", v.ID, err)
				}
				if !got.State.Terminal() {
					t.Fatalf("recovered job %s non-terminal: %s", v.ID, got.State)
				}
				if got.State != want.state {
					t.Fatalf("job %s recovered to %s, reference %s", v.ID, got.State, want.state)
				}
				if want.state == jobs.StateDone && !bytes.Equal(got.Result, want.result) {
					t.Fatalf("job %s result drifted across crash:\n ref: %s\n got: %s", v.ID, want.result, got.Result)
				}
			}
			// The surviving set is a prefix of the submission order:
			// job-N durable implies job-1..job-N-1 durable (the journal
			// is append-only and fsynced per record).
			for i := 1; i <= len(seen); i++ {
				if !seen[fmt.Sprintf("job-%d", i)] {
					t.Fatalf("recovered set %v is not a submission-order prefix", seen)
				}
			}
		})
	}
}

// TestChaosDeadlineRecoversWorker: a hung experiment under a deadline
// (ignoring cancellation) is timed out and abandoned; the worker
// survives to run the next job.
func TestChaosDeadlineRecoversWorker(t *testing.T) {
	reg, release := chaosRegistry()
	defer close(release)
	e := jobs.New(jobs.Config{Registry: reg, Workers: 1, AbandonGrace: 20 * time.Millisecond})
	defer shutdown(t, e)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	vh, err := e.Submit(jobs.Request{Experiment: "hang", DeadlineMS: 20})
	if err != nil {
		t.Fatal(err)
	}
	if vh, err = e.Wait(ctx, vh.ID); err != nil || vh.State != jobs.StateTimedOut {
		t.Fatalf("hung job: %v %+v", err, vh)
	}
	vc, err := e.Submit(jobs.Request{Experiment: "compute", Params: map[string]any{"n": 1}, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if vc, err = e.Wait(ctx, vc.ID); err != nil || vc.State != jobs.StateDone {
		t.Fatalf("job after hang: %v %+v", err, vc)
	}
}

// TestChaosStoreFaultsNeverCorrupt: with seeded write/sync faults on
// the store's filesystem, Puts may fail (counted) but Gets never return
// wrong bytes — the memory tier keeps serving, and a fresh store over
// the same directory holds only complete, correct entries.
func TestChaosStoreFaultsNeverCorrupt(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(SeededFailures(0xFA11, 0.4, OpWrite, OpSync))
	st, err := store.New(64, dir, store.WithFS(fs))
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string][]byte)
	for i := 0; i < 40; i++ {
		key := fmt.Sprintf("%064x", i)
		val := []byte(fmt.Sprintf(`{"v":%d}`, i))
		want[key] = val
		st.Put(key, val) // may fail on disk; memory tier must absorb it
	}
	for key, val := range want {
		got, ok := st.Get(key)
		if !ok || !bytes.Equal(got, val) {
			t.Fatalf("key %s: got %q ok=%v, want %q", key[:8], got, ok, val)
		}
	}
	if st.Stats().DiskWriteFailures == 0 {
		t.Fatal("fault schedule injected no disk write failures; test is vacuous")
	}
	// A fresh store over the same directory sees only entries whose
	// writes fully succeeded — never truncated or corrupt ones.
	st2, err := store.New(64, dir)
	if err != nil {
		t.Fatal(err)
	}
	for key, val := range want {
		if got, ok := st2.Get(key); ok && !bytes.Equal(got, val) {
			t.Fatalf("key %s corrupt after faulty writes: %q", key[:8], got)
		}
	}
}

// TestChaosInjectedErrorsIdentifiable: injected faults wrap ErrInjected.
func TestChaosInjectedErrorsIdentifiable(t *testing.T) {
	fs := NewFaultFS(FreezeAfter(0))
	if err := fs.MkdirAll("/tmp/never-created-by-chaos", 0o755); !errors.Is(err, ErrInjected) {
		t.Fatalf("frozen op error = %v, want ErrInjected", err)
	}
	if fs.Ops() != 1 {
		t.Fatalf("op counter %d, want 1", fs.Ops())
	}
}

func shutdown(t *testing.T, e *jobs.Engine) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := e.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}
