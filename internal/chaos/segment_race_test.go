package chaos

// Satellite: journal segment rotation raced with replay. A cluster
// peer replays sealed segments (Segments/ReadSegment/ParseRecords)
// while the journal owner keeps appending and sealing. The FaultFS
// rename hook parks each seal mid-rotation — after the active file
// closed, before the rename lands — and lets the reader do a full
// replay pass at exactly that point. Invariants: listed segments are
// always readable, every sealed segment parses with zero torn lines,
// and the final replay sees every appended record exactly once.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/journal"
)

func TestSegmentSealRacesReplay(t *testing.T) {
	dir := t.TempDir()
	sealing := make(chan struct{}, 1)
	readerDone := make(chan struct{})

	fs := NewFaultFS(func(op Op, path string, idx int) error {
		if op != OpRename {
			return nil
		}
		// Mid-seal handshake: wake the reader, then hold the rename until
		// its replay pass finishes (bounded so a failed reader cannot
		// wedge the writer). Sealing itself is never failed — the race is
		// the fault, not an error.
		select {
		case sealing <- struct{}{}:
			select {
			case <-readerDone:
			case <-time.After(5 * time.Second):
			}
		default: // reader mid-pass or finished: rotation proceeds freely
		}
		return nil
	})

	// Tiny segments: every few appends trigger a rotation.
	j, err := journal.Open(dir, journal.Options{FS: fs, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}

	var (
		readerErrs []string
		readerMu   sync.Mutex
		passes     int
		wg         sync.WaitGroup
	)
	fail := func(format string, args ...any) {
		readerMu.Lock()
		readerErrs = append(readerErrs, fmt.Sprintf(format, args...))
		readerMu.Unlock()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for range sealing {
			segs, err := j.Segments()
			if err != nil {
				fail("Segments during seal: %v", err)
			}
			seen := make(map[string]bool)
			for _, name := range segs {
				raw, err := j.ReadSegment(name)
				if err != nil {
					fail("ReadSegment(%s) during seal: %v", name, err)
					continue
				}
				recs, torn := journal.ParseRecords(raw)
				if torn != 0 {
					fail("sealed segment %s has %d torn lines", name, torn)
				}
				for _, r := range recs {
					if r.Type == journal.TypeSealSHA256 {
						continue // per-segment checksum trailer, not a job record
					}
					if seen[r.JobID] {
						fail("job %s appears twice across sealed segments", r.JobID)
					}
					seen[r.JobID] = true
				}
			}
			readerMu.Lock()
			passes++
			readerMu.Unlock()
			select {
			case readerDone <- struct{}{}:
			default:
			}
		}
	}()

	const total = 120
	for i := 0; i < total; i++ {
		if err := j.Append(journal.Record{Type: journal.TypeSubmitted, JobID: fmt.Sprintf("job-%d", i), Key: "k"}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	close(sealing)
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	readerMu.Lock()
	defer readerMu.Unlock()
	for _, msg := range readerErrs {
		t.Error(msg)
	}
	if passes == 0 {
		t.Fatal("reader never replayed mid-seal: the race was not exercised")
	}

	// Post-race ground truth: a clean reopen replays every record, once,
	// in order, with nothing torn.
	j2, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	recs := j2.Records()
	if len(recs) != total {
		t.Fatalf("final replay has %d records, want %d", len(recs), total)
	}
	if j2.Torn() != 0 {
		t.Fatalf("final replay dropped %d torn lines", j2.Torn())
	}
	for i, r := range recs {
		if want := fmt.Sprintf("job-%d", i); r.JobID != want {
			t.Fatalf("record %d is %q, want %q", i, r.JobID, want)
		}
	}
}
