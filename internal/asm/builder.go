// Package asm provides assembly facilities for the simulator ISA: a
// programmatic Builder used by the code generator and the attack
// framework, and a small two-pass text assembler for hand-written
// victims and experiments.
//
// Both produce a Program: a set of (address, bytes) chunks plus a label
// table. Chunks can sit anywhere in the 64-bit address space, which the
// NightVision experiments rely on to place aliasing code exactly 4 or
// 8 GiB apart.
package asm

import (
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/mem"
)

// Chunk is a contiguous span of assembled bytes at a fixed address.
type Chunk struct {
	Addr uint64
	Code []byte
}

// Program is the output of assembly: chunks plus resolved labels.
type Program struct {
	Chunks []Chunk
	Labels map[string]uint64
}

// LabelAddr returns the address of a label, or an error naming it.
func (p *Program) LabelAddr(name string) (uint64, error) {
	a, ok := p.Labels[name]
	if !ok {
		return 0, fmt.Errorf("asm: unknown label %q", name)
	}
	return a, nil
}

// MustLabel returns the address of a label, panicking if undefined.
// Intended for experiment harnesses where the label set is static.
func (p *Program) MustLabel(name string) uint64 {
	a, err := p.LabelAddr(name)
	if err != nil {
		panic(err)
	}
	return a
}

// LoadInto maps and writes every chunk into m as executable code.
func (p *Program) LoadInto(m *mem.Memory) {
	for _, c := range p.Chunks {
		m.LoadProgram(c.Addr, c.Code)
	}
}

// Size returns the total number of assembled code bytes.
func (p *Program) Size() int {
	n := 0
	for _, c := range p.Chunks {
		n += len(c.Code)
	}
	return n
}

// fixup records a reference to a label that needs patching once all
// label addresses are known.
type fixup struct {
	chunk int // chunk index
	off   int // byte offset of the instruction start within the chunk
	inst  isa.Inst
	label string
	delta int64 // constant added to the label address
	kind  fixupKind
}

type fixupKind uint8

const (
	fixRel fixupKind = iota // branch relative displacement
	fixAbs                  // absolute address immediate (movabs)
)

// MaxProgramBytes caps the total code a Builder will emit. It exists to
// turn pathological .space/.align directives (hand-written or fuzzed)
// into assembly errors instead of memory exhaustion; every legitimate
// program in this repo is under a tenth of it.
const MaxProgramBytes = 16 << 20

// Builder assembles a program instruction by instruction. Addresses are
// assigned as instructions are appended, so label references may be
// forward or backward; unresolved references fail at Build.
type Builder struct {
	chunks []Chunk
	labels map[string]uint64
	fixups []fixup
	err    error
}

// NewBuilder returns a Builder with an initial chunk at base.
func NewBuilder(base uint64) *Builder {
	b := &Builder{labels: make(map[string]uint64)}
	b.chunks = append(b.chunks, Chunk{Addr: base})
	return b
}

func (b *Builder) cur() *Chunk { return &b.chunks[len(b.chunks)-1] }

// emitted returns the total bytes assembled so far across all chunks.
func (b *Builder) emitted() uint64 {
	var n uint64
	for i := range b.chunks {
		n += uint64(len(b.chunks[i].Code))
	}
	return n
}

// reserve errors out (and reports false) if emitting n more bytes would
// push the program past MaxProgramBytes.
func (b *Builder) reserve(n uint64) bool {
	if n > MaxProgramBytes || b.emitted() > MaxProgramBytes-n {
		b.setErr(fmt.Errorf("asm: emitting %d bytes exceeds the %d-byte program cap", n, MaxProgramBytes))
		return false
	}
	return true
}

// PC returns the address the next byte will be assembled at.
func (b *Builder) PC() uint64 {
	c := b.cur()
	return c.Addr + uint64(len(c.Code))
}

// setErr records the first error; later calls become no-ops.
func (b *Builder) setErr(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Org starts a new chunk at addr. Subsequent instructions assemble there.
func (b *Builder) Org(addr uint64) *Builder {
	if c := b.cur(); len(c.Code) == 0 {
		c.Addr = addr
		return b
	}
	b.chunks = append(b.chunks, Chunk{Addr: addr})
	return b
}

// Label defines name at the current PC.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.setErr(fmt.Errorf("asm: duplicate label %q", name))
		return b
	}
	b.labels[name] = b.PC()
	return b
}

// Inst appends a fully specified instruction.
func (b *Builder) Inst(in isa.Inst) *Builder {
	c := b.cur()
	c.Code = in.Encode(c.Code)
	return b
}

// Bytes appends raw bytes.
func (b *Builder) Bytes(raw ...byte) *Builder {
	c := b.cur()
	c.Code = append(c.Code, raw...)
	return b
}

// Align pads with fill bytes until the PC is a multiple of n.
func (b *Builder) Align(n uint64, fill byte) *Builder {
	if n == 0 || n&(n-1) != 0 {
		b.setErr(fmt.Errorf("asm: align %d is not a power of two", n))
		return b
	}
	pad := (n - (b.PC() & (n - 1))) & (n - 1)
	if !b.reserve(pad) {
		return b
	}
	for i := uint64(0); i < pad; i++ {
		b.Bytes(fill)
	}
	return b
}

// Space appends n fill bytes.
func (b *Builder) Space(n uint64, fill byte) *Builder {
	if !b.reserve(n) {
		return b
	}
	c := b.cur()
	for i := uint64(0); i < n; i++ {
		c.Code = append(c.Code, fill)
	}
	return b
}

// Nop appends a nop. Nops appears in nearly every NightVision snippet,
// hence the dedicated helper.
func (b *Builder) Nop() *Builder { return b.Inst(isa.Nop()) }

// Nops appends n nops.
func (b *Builder) Nops(n int) *Builder {
	for i := 0; i < n; i++ {
		b.Nop()
	}
	return b
}

// Ret appends a ret.
func (b *Builder) Ret() *Builder { return b.Inst(isa.Ret()) }

// Br appends a direct control transfer (jmp/call/Jcc of either width)
// targeting label+delta. The displacement is backpatched at Build.
func (b *Builder) Br(op isa.Op, label string, delta int64) *Builder {
	if !op.Kind().IsControlTransfer() || op.Kind().IsIndirect() {
		b.setErr(fmt.Errorf("asm: Br with non-direct-branch opcode %s", op.Name()))
		return b
	}
	in := isa.Inst{Op: op, Size: op.Len()}
	b.fixups = append(b.fixups, fixup{
		chunk: len(b.chunks) - 1,
		off:   len(b.cur().Code),
		inst:  in,
		label: label,
		delta: delta,
		kind:  fixRel,
	})
	// Reserve space with a zero displacement; patched later.
	return b.Inst(in)
}

// Jmp appends a rel32 jump to label.
func (b *Builder) Jmp(label string) *Builder { return b.Br(isa.OpJmp32, label, 0) }

// Jmp8 appends a rel8 jump to label.
func (b *Builder) Jmp8(label string) *Builder { return b.Br(isa.OpJmp8, label, 0) }

// Call appends a rel32 call to label.
func (b *Builder) Call(label string) *Builder { return b.Br(isa.OpCall32, label, 0) }

// MovLabel appends a movabs loading the 64-bit address of label+delta.
func (b *Builder) MovLabel(dst isa.Reg, label string, delta int64) *Builder {
	in := isa.MovImm64(dst, 0)
	b.fixups = append(b.fixups, fixup{
		chunk: len(b.chunks) - 1,
		off:   len(b.cur().Code),
		inst:  in,
		label: label,
		delta: delta,
		kind:  fixAbs,
	})
	return b.Inst(in)
}

// Build resolves all label references and returns the program. The
// Builder must not be reused after Build.
func (b *Builder) Build() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("asm: undefined label %q", f.label)
		}
		target += uint64(f.delta)
		c := &b.chunks[f.chunk]
		pc := c.Addr + uint64(f.off)
		in := f.inst
		switch f.kind {
		case fixRel:
			rel := int64(target) - int64(pc) - int64(in.Size)
			if in.Op.Format() == isa.FmtRel8 && (rel < -128 || rel > 127) {
				return nil, fmt.Errorf("asm: rel8 branch to %q out of range (%d)", f.label, rel)
			}
			if rel < -(1<<31) || rel > 1<<31-1 {
				return nil, fmt.Errorf("asm: rel32 branch to %q out of range (%d)", f.label, rel)
			}
			in.Imm = rel
		case fixAbs:
			in.Imm = int64(target)
		}
		patched := in.Encode(nil)
		copy(c.Code[f.off:], patched)
	}
	chunks := make([]Chunk, 0, len(b.chunks))
	for _, c := range b.chunks {
		if len(c.Code) > 0 {
			chunks = append(chunks, c)
		}
	}
	sort.Slice(chunks, func(i, j int) bool { return chunks[i].Addr < chunks[j].Addr })
	for i := 1; i < len(chunks); i++ {
		prev := chunks[i-1]
		if prev.Addr+uint64(len(prev.Code)) > chunks[i].Addr {
			return nil, fmt.Errorf("asm: chunks at %#x and %#x overlap", prev.Addr, chunks[i].Addr)
		}
	}
	return &Program{Chunks: chunks, Labels: b.labels}, nil
}
