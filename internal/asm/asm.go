package asm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
)

// Assemble parses assembler source text and returns the program. The
// syntax is line-oriented:
//
//	; comment                  # comment
//	.org 0x400000              start a chunk at an absolute address
//	.align 32 [, fill]         pad to an alignment boundary
//	.space 16 [, fill]         emit fill bytes
//	.byte 1, 0x90, 3           emit literal bytes
//	label:                     define a label (may share a line with code)
//	    movi r1, 42
//	    cmp r1, r2
//	    jnz loop               rel32 conditional; jnz8 for rel8
//	    ld r3, [r2+8]
//	    st [sp-16], r3
//	    movabs r4, table+8     labels may appear in movabs immediates
//	    ret
func Assemble(src string) (*Program, error) {
	b := NewBuilder(0)
	for lineNo, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Peel off any leading "label:" prefixes.
		for {
			idx := strings.Index(line, ":")
			if idx < 0 {
				break
			}
			head := strings.TrimSpace(line[:idx])
			if !isIdent(head) {
				break
			}
			b.Label(head)
			line = strings.TrimSpace(line[idx+1:])
		}
		if line == "" {
			continue
		}
		if err := assembleLine(b, line); err != nil {
			return nil, fmt.Errorf("asm: line %d: %w", lineNo+1, err)
		}
	}
	return b.Build()
}

// MustAssemble is Assemble for static sources; it panics on error.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

func stripComment(s string) string {
	for _, sep := range []string{";", "#"} {
		if i := strings.Index(s, sep); i >= 0 {
			s = s[:i]
		}
	}
	return s
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func assembleLine(b *Builder, line string) error {
	mnemonic := line
	rest := ""
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		mnemonic, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	mnemonic = strings.ToLower(mnemonic)
	ops := splitOperands(rest)

	if strings.HasPrefix(mnemonic, ".") {
		return assembleDirective(b, mnemonic, ops)
	}
	return assembleInst(b, mnemonic, ops)
}

// splitOperands splits on top-level commas; commas never occur inside
// the []-bracketed memory operands of this ISA, so a plain split works.
func splitOperands(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func assembleDirective(b *Builder, dir string, ops []string) error {
	switch dir {
	case ".org":
		if len(ops) != 1 {
			return fmt.Errorf(".org wants 1 operand, got %d", len(ops))
		}
		v, err := parseUint(ops[0])
		if err != nil {
			return err
		}
		b.Org(v)
		return nil
	case ".align":
		n, fill, err := sizeAndFill(ops)
		if err != nil {
			return err
		}
		b.Align(n, fill)
		return nil
	case ".space":
		n, fill, err := sizeAndFill(ops)
		if err != nil {
			return err
		}
		b.Space(n, fill)
		return nil
	case ".byte":
		if len(ops) == 0 {
			return fmt.Errorf(".byte wants at least one operand")
		}
		for _, o := range ops {
			v, err := parseUint(o)
			if err != nil {
				return err
			}
			if v > 255 {
				return fmt.Errorf(".byte value %d out of range", v)
			}
			b.Bytes(byte(v))
		}
		return nil
	}
	return fmt.Errorf("unknown directive %s", dir)
}

func sizeAndFill(ops []string) (uint64, byte, error) {
	if len(ops) < 1 || len(ops) > 2 {
		return 0, 0, fmt.Errorf("directive wants 1 or 2 operands, got %d", len(ops))
	}
	n, err := parseUint(ops[0])
	if err != nil {
		return 0, 0, err
	}
	fill := byte(isa.OpNop) // pad with nops by default: padding may execute
	if len(ops) == 2 {
		f, err := parseUint(ops[1])
		if err != nil {
			return 0, 0, err
		}
		if f > 255 {
			return 0, 0, fmt.Errorf("fill %d out of range", f)
		}
		fill = byte(f)
	}
	return n, fill, nil
}

// mnemonicOps maps each assembler mnemonic to its opcode. Built from the
// isa package's canonical names so the two cannot drift.
var mnemonicOps = func() map[string]isa.Op {
	m := make(map[string]isa.Op)
	for op := isa.Op(0); op < 0xFF; op++ {
		if op.Valid() {
			m[op.Name()] = op
		}
	}
	return m
}()

func assembleInst(b *Builder, mnemonic string, ops []string) error {
	op, ok := mnemonicOps[mnemonic]
	if !ok {
		return fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
	nWant := operandCount(op)
	if len(ops) != nWant {
		return fmt.Errorf("%s wants %d operands, got %d", mnemonic, nWant, len(ops))
	}
	// Immediates are range-checked here so that bad source yields an
	// error; Inst.Encode panics on out-of-range values by contract.
	checkImm := func(v int64) error {
		var lo, hi int64
		switch op.Format() {
		case isa.FmtRegImm8, isa.FmtRel8, isa.FmtMem8:
			lo, hi = -128, 127
		case isa.FmtRegImm32, isa.FmtRel32, isa.FmtRel32J, isa.FmtMem32:
			lo, hi = -(1 << 31), 1<<31-1
		case isa.FmtImm8:
			lo, hi = 0, 255
		default:
			return nil
		}
		if v < lo || v > hi {
			return fmt.Errorf("%s immediate %d out of range [%d, %d]", op.Name(), v, lo, hi)
		}
		return nil
	}
	switch op.Format() {
	case isa.FmtNone:
		b.Inst(isa.Inst{Op: op, Size: op.Len()})
	case isa.FmtReg:
		r, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		b.Inst(isa.Inst{Op: op, Dst: r, Size: op.Len()})
	case isa.FmtRegReg:
		d, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		s, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		b.Inst(isa.Inst{Op: op, Dst: d, Src: s, Size: op.Len()})
	case isa.FmtRegImm8, isa.FmtRegImm32:
		d, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		v, err := parseInt(ops[1])
		if err != nil {
			return err
		}
		if err := checkImm(v); err != nil {
			return err
		}
		b.Inst(isa.Inst{Op: op, Dst: d, Imm: v, Size: op.Len()})
	case isa.FmtRegImm64:
		d, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		if label, delta, ok := parseLabelExpr(ops[1]); ok {
			b.MovLabel(d, label, delta)
			return nil
		}
		v, err := parseInt(ops[1])
		if err != nil {
			return err
		}
		b.Inst(isa.Inst{Op: op, Dst: d, Imm: v, Size: op.Len()})
	case isa.FmtRel8, isa.FmtRel32, isa.FmtRel32J:
		if label, delta, ok := parseLabelExpr(ops[0]); ok {
			b.Br(op, label, delta)
			return nil
		}
		v, err := parseInt(ops[0])
		if err != nil {
			return err
		}
		if err := checkImm(v); err != nil {
			return err
		}
		b.Inst(isa.Inst{Op: op, Imm: v, Size: op.Len()})
	case isa.FmtMem8, isa.FmtMem32:
		// st/st32: "st [base+disp], src"; loads and lea: "ld dst, [base+disp]".
		memIdx, regIdx := 1, 0
		if op == isa.OpSt8 || op == isa.OpSt32 {
			memIdx, regIdx = 0, 1
		}
		base, disp, err := parseMem(ops[memIdx])
		if err != nil {
			return err
		}
		r, err := parseReg(ops[regIdx])
		if err != nil {
			return err
		}
		if err := checkImm(disp); err != nil {
			return err
		}
		b.Inst(isa.Inst{Op: op, Dst: r, Src: base, Imm: disp, Size: op.Len()})
	case isa.FmtImm8:
		v, err := parseInt(ops[0])
		if err != nil {
			return err
		}
		if err := checkImm(v); err != nil {
			return err
		}
		b.Inst(isa.Inst{Op: op, Imm: v, Size: op.Len()})
	}
	return nil
}

func operandCount(op isa.Op) int {
	switch op.Format() {
	case isa.FmtNone:
		return 0
	case isa.FmtReg, isa.FmtRel8, isa.FmtRel32, isa.FmtRel32J, isa.FmtImm8:
		return 1
	default:
		return 2
	}
}

func parseReg(s string) (isa.Reg, error) {
	s = strings.ToLower(s)
	if s == "sp" {
		return isa.SP, nil
	}
	if strings.HasPrefix(s, "r") {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < isa.NumRegs {
			return isa.Reg(n), nil
		}
	}
	return 0, fmt.Errorf("bad register %q", s)
}

func parseUint(s string) (uint64, error) {
	v, err := strconv.ParseUint(strings.TrimSpace(s), 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	return v, nil
}

func parseInt(s string) (int64, error) {
	s = strings.TrimSpace(s)
	neg := false
	switch {
	case strings.HasPrefix(s, "-"):
		neg = true
		s = s[1:]
	case strings.HasPrefix(s, "+"):
		s = s[1:]
	}
	v, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	if neg {
		return -int64(v), nil
	}
	return int64(v), nil
}

// parseLabelExpr recognizes "label", "label+N" and "label-N".
func parseLabelExpr(s string) (label string, delta int64, ok bool) {
	s = strings.TrimSpace(s)
	base := s
	rest := ""
	if i := strings.IndexAny(s, "+-"); i > 0 {
		base, rest = s[:i], s[i:]
	}
	if !isIdent(base) || isNumber(base) {
		return "", 0, false
	}
	if rest != "" {
		v, err := parseInt(rest)
		if err != nil {
			return "", 0, false
		}
		delta = v
	}
	return base, delta, true
}

func isNumber(s string) bool {
	_, err := strconv.ParseUint(s, 0, 64)
	return err == nil
}

// parseMem parses "[reg]", "[reg+disp]" or "[reg-disp]".
func parseMem(s string) (base isa.Reg, disp int64, err error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	inner := s[1 : len(s)-1]
	regPart := inner
	dispPart := ""
	if i := strings.IndexAny(inner, "+-"); i > 0 {
		regPart, dispPart = inner[:i], inner[i:]
	}
	base, err = parseReg(strings.TrimSpace(regPart))
	if err != nil {
		return 0, 0, err
	}
	if dispPart != "" {
		disp, err = parseInt(dispPart)
		if err != nil {
			return 0, 0, err
		}
	}
	return base, disp, nil
}

// Disassemble decodes code bytes starting at addr into a listing, one
// instruction per line. Undecodable bytes appear as ".byte" lines; the
// disassembler resynchronizes at the next byte.
func Disassemble(addr uint64, code []byte) string {
	var sb strings.Builder
	for len(code) > 0 {
		in, err := isa.Decode(code)
		if err != nil {
			fmt.Fprintf(&sb, "%#012x: .byte %#02x\n", addr, code[0])
			addr++
			code = code[1:]
			continue
		}
		fmt.Fprintf(&sb, "%#012x: %s\n", addr, in)
		addr += uint64(in.Size)
		code = code[in.Size:]
	}
	return sb.String()
}
