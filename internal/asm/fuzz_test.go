package asm

import (
	"strings"
	"testing"
)

// FuzzAssemble feeds arbitrary source text to the two-pass assembler:
// any input must either assemble or error, never panic or exhaust
// memory (pathological .space/.align sizes are capped by
// MaxProgramBytes). When assembly succeeds, the emitted chunks must
// respect the cap, resolve every label inside some chunk's span or at
// its end, and survive a disassembly walk.
func FuzzAssemble(f *testing.F) {
	seeds := []string{
		// A representative well-formed program.
		`
.org 0x1000
start:
	movi r1, 6
	movi r2, 0
loop:
	addi r2, 3
	subi r1, 1
	jnz8 loop
	movabs r3, table+8
	ld r4, [r3+0]
	st [sp-16], r4
	call fn
	hlt
fn:
	ret
.align 32, 0x90
table:
	.byte 1, 2, 3, 0xFF
	.space 16, 0
`,
		"nop\nret\nhlt",
		"x: jmp x",
		"jmp8 x \t x: nop",
		"syscall 1",
		"cmpi r1, -128",
		".org 0xFFFFFFFFFFFFFFFF\nnop",
		".space 17000000",     // over the cap: must error, not OOM
		".align 0x4000000000000000", // huge power-of-two alignment
		"addi r1, 99999",      // out-of-range imm8: error, not panic
		"jz 2147483648",       // out-of-range rel32
		"st [r1+999], r2",     // out-of-range mem8 displacement
		"a: a: nop",           // duplicate label
		"movabs r1, nowhere",  // unresolved label
		".org 0x10\nnop\n.org 0x10\nnop", // overlapping chunks
		"; comment only\n# and another",
	}
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, src string) {
		// Cap input size: the assembler is line-oriented and linear, but
		// the fuzzer has no reason to explore megabyte inputs.
		if len(src) > 1<<12 {
			t.Skip()
		}
		p, err := Assemble(src)
		if err != nil {
			if !strings.HasPrefix(err.Error(), "asm:") {
				t.Fatalf("error %q does not carry the asm: prefix", err)
			}
			return
		}
		total := 0
		for _, c := range p.Chunks {
			total += len(c.Code)
			Disassemble(c.Addr, c.Code) // must not panic
		}
		if total > MaxProgramBytes {
			t.Fatalf("assembled %d bytes, over the %d cap", total, MaxProgramBytes)
		}
		if total != p.Size() {
			t.Fatalf("Size() = %d, chunks sum to %d", p.Size(), total)
		}
		// A successful program must be loadable: chunks sorted and
		// non-overlapping (Build's own invariant).
		for i := 1; i < len(p.Chunks); i++ {
			prev := p.Chunks[i-1]
			if prev.Addr+uint64(len(prev.Code)) > p.Chunks[i].Addr {
				t.Fatalf("chunks %#x and %#x overlap", prev.Addr, p.Chunks[i].Addr)
			}
		}
	})
}
