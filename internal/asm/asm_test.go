package asm

import (
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(0x40_0000)
	b.Label("start").Nop().Nop().Ret()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Chunks) != 1 {
		t.Fatalf("chunks = %d", len(p.Chunks))
	}
	c := p.Chunks[0]
	if c.Addr != 0x40_0000 || len(c.Code) != 3 {
		t.Fatalf("chunk = %#x len %d", c.Addr, len(c.Code))
	}
	if p.MustLabel("start") != 0x40_0000 {
		t.Errorf("label start = %#x", p.MustLabel("start"))
	}
}

func TestBuilderForwardAndBackwardBranches(t *testing.T) {
	b := NewBuilder(0x1000)
	b.Label("top").Nop()
	b.Jmp("bottom") // forward rel32
	b.Nops(3)
	b.Label("bottom")
	b.Jmp8("top") // backward rel8
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	code := p.Chunks[0].Code
	// jmp at 0x1001 is 5 bytes; target = 0x1009 → rel = 0x1009-0x1006 = 3.
	in, err := isa.Decode(code[1:])
	if err != nil {
		t.Fatal(err)
	}
	if in.Op != isa.OpJmp32 || in.Imm != 3 {
		t.Errorf("forward jmp = %+v", in)
	}
	// jmp8 at 0x1009: target 0x1000 → rel = 0x1000-0x100b = -11.
	in, err = isa.Decode(code[9:])
	if err != nil {
		t.Fatal(err)
	}
	if in.Op != isa.OpJmp8 || in.Imm != -11 {
		t.Errorf("backward jmp8 = %+v", in)
	}
}

func TestBuilderRel8OutOfRange(t *testing.T) {
	b := NewBuilder(0)
	b.Jmp8("far")
	b.Space(300, byte(isa.OpNop))
	b.Label("far")
	if _, err := b.Build(); err == nil {
		t.Fatal("rel8 branch over 300 bytes must fail")
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder(0)
	b.Jmp("nowhere")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "nowhere") {
		t.Fatalf("err = %v", err)
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder(0)
	b.Label("x").Nop().Label("x")
	if _, err := b.Build(); err == nil {
		t.Fatal("duplicate label must fail")
	}
}

func TestBuilderOrgChunks(t *testing.T) {
	b := NewBuilder(0x40_0000)
	b.Label("f1").Nop().Ret()
	b.Org(0x40_0000 + (1 << 32)) // 4 GiB away, the aliasing setup
	b.Label("f2").Nops(4).Ret()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Chunks) != 2 {
		t.Fatalf("chunks = %d", len(p.Chunks))
	}
	if p.MustLabel("f2") != 0x1_0040_0000 {
		t.Errorf("f2 = %#x", p.MustLabel("f2"))
	}
}

func TestBuilderOverlapDetection(t *testing.T) {
	b := NewBuilder(0x1000)
	b.Nops(10)
	b.Org(0x1004)
	b.Nop()
	if _, err := b.Build(); err == nil {
		t.Fatal("overlapping chunks must fail")
	}
}

func TestBuilderMovLabel(t *testing.T) {
	b := NewBuilder(0x2000)
	b.MovLabel(isa.R3, "target", 8)
	b.Label("target").Nop()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	in, err := isa.Decode(p.Chunks[0].Code)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(p.MustLabel("target")) + 8
	if in.Op != isa.OpMovImm64 || in.Imm != want {
		t.Errorf("movabs = %+v, want imm %#x", in, want)
	}
}

func TestBuilderAlign(t *testing.T) {
	b := NewBuilder(0x1001)
	b.Align(32, byte(isa.OpNop))
	b.Label("aligned")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := p.MustLabel("aligned"); got != 0x1020 {
		t.Errorf("aligned = %#x, want 0x1020", got)
	}
	b2 := NewBuilder(0)
	b2.Align(31, 0)
	if _, err := b2.Build(); err == nil {
		t.Error("non-power-of-two align must fail")
	}
}

func TestAssembleFullSyntax(t *testing.T) {
	p, err := Assemble(`
		; experiment scaffold
		.org 0x400000
	start:
		movi r1, 42        # decimal immediate
		movabs r2, data+4
		cmp r1, r2
		jnz start
		ld r3, [r2+8]
		st [sp-16], r3
		lea r4, [r2+100]
		push r3
		pop r4
		shl r1, 3
		cmovz r5, r1
		syscall 2
		call fn
		hlt
	fn:
		addi r1, 1
		ret
		.align 32
	data:
		.byte 1, 2, 0xff
		.space 5, 0x90
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.MustLabel("start") != 0x40_0000 {
		t.Errorf("start = %#x", p.MustLabel("start"))
	}
	if p.MustLabel("data")&31 != 0 {
		t.Errorf("data = %#x not 32-aligned", p.MustLabel("data"))
	}
	// movabs immediate must resolve to data+4.
	code := p.Chunks[0].Code
	movabs, err := isa.Decode(code[isa.OpMovImm32.Len():])
	if err != nil {
		t.Fatal(err)
	}
	if uint64(movabs.Imm) != p.MustLabel("data")+4 {
		t.Errorf("movabs imm = %#x, want data+4 = %#x", movabs.Imm, p.MustLabel("data")+4)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"frob r1",           // unknown mnemonic
		"movi r99, 1",       // bad register
		"movi r1",           // operand count
		".org",              // directive operand count
		".byte 300",         // byte range
		"jmp",               // missing target
		"ld r1, [r2+8], r3", // too many operands
		".bogus 1",          // unknown directive
		"movi r1, zzz",      // unparseable immediate that is also a label use in the wrong slot
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) should fail", src)
		}
	}
}

func TestAssembleLabelSameLine(t *testing.T) {
	p, err := Assemble("x: nop\ny: ret")
	if err != nil {
		t.Fatal(err)
	}
	if p.MustLabel("y") != p.MustLabel("x")+1 {
		t.Errorf("labels: x=%#x y=%#x", p.MustLabel("x"), p.MustLabel("y"))
	}
}

func TestLoadInto(t *testing.T) {
	p := MustAssemble(".org 0x400000\nnop\nret")
	m := mem.New()
	p.LoadInto(m)
	var buf [2]byte
	if err := m.FetchBytes(0x40_0000, buf[:]); err != nil {
		t.Fatal(err)
	}
	if buf[0] != byte(isa.OpNop) || buf[1] != byte(isa.OpRet) {
		t.Errorf("code = %#x %#x", buf[0], buf[1])
	}
}

func TestProgramSizeAndLabelErr(t *testing.T) {
	p := MustAssemble("nop\nnop\nret")
	if p.Size() != 3 {
		t.Errorf("Size = %d", p.Size())
	}
	if _, err := p.LabelAddr("missing"); err == nil {
		t.Error("LabelAddr of missing label should error")
	}
}

func TestDisassemble(t *testing.T) {
	p := MustAssemble("nop\nmovi r1, 7\nret")
	text := Disassemble(0x100, p.Chunks[0].Code)
	for _, want := range []string{"nop", "movi r1, 7", "ret"} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly missing %q:\n%s", want, text)
		}
	}
	// Byte soup resynchronizes.
	text = Disassemble(0, []byte{0xFF, byte(isa.OpNop)})
	if !strings.Contains(text, ".byte") || !strings.Contains(text, "nop") {
		t.Errorf("soup disassembly:\n%s", text)
	}
}

// TestRoundTripThroughText assembles a program, disassembles it, and
// reassembles the listing's mnemonics, checking instruction-level
// equality. This guards parser/printer drift.
func TestRoundTripThroughText(t *testing.T) {
	src := "movi r1, 10\naddi r1, -3\ncmp r1, r2\nmul r3, r1\nret"
	p1 := MustAssemble(src)
	text := Disassemble(0, p1.Chunks[0].Code)
	var rebuilt []string
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		parts := strings.SplitN(line, ": ", 2)
		if len(parts) == 2 {
			rebuilt = append(rebuilt, strings.ReplaceAll(parts[1], ".+", "")) // branches not in this source
		}
	}
	p2 := MustAssemble(strings.Join(rebuilt, "\n"))
	if string(p1.Chunks[0].Code) != string(p2.Chunks[0].Code) {
		t.Error("text round trip changed the encoding")
	}
}
