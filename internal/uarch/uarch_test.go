package uarch

import (
	"reflect"
	"testing"

	"repro/internal/btb"
)

func TestRegisteredBackends(t *testing.T) {
	want := []string{"arm", "intel-icelake", "intel-skylake"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	if _, ok := Get(DefaultName); !ok {
		t.Fatalf("default backend %q not registered", DefaultName)
	}
	if _, ok := Get("no-such-core"); ok {
		t.Fatal("Get of unknown backend reported ok")
	}
	if got := List(); len(got) != len(want) || got[0].Name() != "arm" {
		t.Fatalf("List() order wrong: %v", got)
	}
}

// TestDefaultMatchesSkyLake pins the default backend to the exact
// pre-backend simulator parameters: every golden digest depends on it.
func TestDefaultMatchesSkyLake(t *testing.T) {
	b := MustGet(DefaultName)
	if got, want := b.BTB(), btb.ConfigSkyLake(); got != want {
		t.Errorf("BTB = %+v, want %+v", got, want)
	}
	if !b.FalseHitDealloc() {
		t.Error("intel-skylake must deallocate on false hits (Takeaway 1)")
	}
	p := b.Pipeline()
	want := Pipeline{
		RetireWidth: 4, PipeDepth: 12, FalseHitPenalty: 9,
		DecodeResteerPenalty: 8, ExecMispredictPenalty: 17,
		InterruptCost: 60, FetchAheadPWs: 2, RASDepth: 16,
		MulLatency: 3, DivLatency: 20, LoadLatency: 4,
	}
	if p != want {
		t.Errorf("Pipeline = %+v, want %+v", p, want)
	}
	r, ok := b.RSB()
	if !ok || r.Depth != 16 {
		t.Errorf("RSB = %+v ok=%v, want depth 16", r, ok)
	}
}

func TestArmDiffers(t *testing.T) {
	a := MustGet("arm")
	if a.FalseHitDealloc() {
		t.Error("arm must not deallocate on false hits (branch-only updates)")
	}
	if cfg := a.BTB(); cfg.IndexHash != btb.HashFold {
		t.Errorf("arm IndexHash = %v, want HashFold", cfg.IndexHash)
	}
	if r, ok := a.RSB(); !ok || r.Depth != 8 {
		t.Errorf("arm RSB = %+v ok=%v, want depth 8", r, ok)
	}
}

// TestPipelinesFullySpecified guards the cpu.Config zero-means-default
// trap: a backend field left zero would be silently replaced by the
// Intel default at core construction.
func TestPipelinesFullySpecified(t *testing.T) {
	for _, b := range List() {
		p := reflect.ValueOf(b.Pipeline())
		for i := 0; i < p.NumField(); i++ {
			if p.Field(i).IsZero() {
				t.Errorf("%s: Pipeline field %s is zero", b.Name(), p.Type().Field(i).Name)
			}
		}
	}
}

func TestMustGetPanicsWithNames(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustGet(unknown) did not panic")
		}
	}()
	MustGet("m88k")
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register(armBackend{})
}
