package uarch

import (
	"repro/internal/btb"
	"repro/internal/rsb"
)

// intelBackend covers the Intel generations the paper reverse-engineers
// (footnote 1): identical pipeline model, per-generation BTB geometry.
type intelBackend struct {
	name string
	desc string
	btb  btb.Config
}

func (b intelBackend) Name() string        { return b.name }
func (b intelBackend) Description() string { return b.desc }
func (b intelBackend) BTB() btb.Config     { return b.btb }

// Pipeline returns the numbers the paper-reproduction experiments have
// always used. These are the historical cpu.DefaultConfig values —
// cpu.DefaultConfig now delegates here, and every pre-backend golden
// digest is pinned to them, so they must not drift.
func (intelBackend) Pipeline() Pipeline {
	return Pipeline{
		RetireWidth:           4,
		PipeDepth:             12,
		FalseHitPenalty:       9,
		DecodeResteerPenalty:  8,
		ExecMispredictPenalty: 17,
		InterruptCost:         60,
		FetchAheadPWs:         2,
		RASDepth:              16,
		MulLatency:            3,
		DivLatency:            20,
		LoadLatency:           4,
	}
}

// FalseHitDealloc is true: decode-time false hits deallocate the entry
// (Takeaway 1), the effect NightVision's PC extraction is built on.
func (intelBackend) FalseHitDealloc() bool { return true }

// RSB advertises the 16-entry return stack buffer ret2spec (§4,
// arXiv 1807.10364) measured on SkyLake-class cores.
func (intelBackend) RSB() (rsb.Config, bool) { return rsb.Config{Depth: 16}, true }

func init() {
	Register(intelBackend{
		name: DefaultName,
		desc: "Intel SkyLake..CascadeLake: 512x8 BTB, 4 GiB tag truncation, false-hit dealloc",
		btb:  btb.ConfigSkyLake(),
	})
	Register(intelBackend{
		name: "intel-icelake",
		desc: "Intel IceLake: 1024x8 BTB, 8 GiB tag truncation, false-hit dealloc",
		btb:  btb.ConfigIceLake(),
	})
}
