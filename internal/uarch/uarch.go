// Package uarch is the microarchitecture backend registry: the single
// place where a backend name ("intel-skylake", "arm", ...) resolves to
// the bundle of model parameters the simulator needs — BTB geometry and
// set-index hash (internal/btb), pipeline/decode-window timing, the
// non-control-transfer update policy (whether decode-time false hits
// deallocate, the paper's Takeaway 1), and an optional return-stack-
// buffer model (internal/rsb).
//
// Backends are resolved by name exactly once, when a core is
// constructed (cpu.ConfigFor) or an experiment config is defaulted
// (experiments.Config.Backend); the resulting cpu.Config is plain data,
// so the zero-allocation fetch/step hot path never dispatches through
// this package.
//
// The package deliberately imports only internal/btb and internal/rsb:
// internal/cpu imports uarch (DefaultConfig delegates to the
// intel-skylake backend), so uarch must not import cpu back.
package uarch

import (
	"fmt"
	"sort"

	"repro/internal/btb"
	"repro/internal/rsb"
)

// DefaultName is the backend every config that does not say otherwise
// resolves to: the paper's Intel SkyLake-class target. Pre-backend
// results (golden digests, cache keys with an explicit backend param)
// are all pinned to it.
const DefaultName = "intel-skylake"

// Pipeline holds the decode-window and timing parameters a backend
// supplies to the core model. Field meanings match cpu.Config exactly;
// every field must be non-zero (cpu.Config.withDefaults treats zero as
// "use the default", which would silently cross-wire backends).
type Pipeline struct {
	// RetireWidth is instructions retired (and decoded) per cycle.
	RetireWidth int
	// PipeDepth is the fetch-to-retire latency in cycles.
	PipeDepth uint64
	// FalseHitPenalty is the front-end bubble after a decode-time BTB
	// false hit.
	FalseHitPenalty uint64
	// DecodeResteerPenalty is the bubble for a decode-time redirect.
	DecodeResteerPenalty uint64
	// ExecMispredictPenalty is the bubble for an execute-time squash.
	ExecMispredictPenalty uint64
	// InterruptCost is the cycle cost of interrupt delivery and resume.
	InterruptCost uint64
	// FetchAheadPWs is the speculation window in prediction windows.
	FetchAheadPWs int
	// RASDepth is the return-address-stack depth of the legacy
	// unbounded-accuracy RAS used when the RSB model is not enabled.
	RASDepth int
	// MulLatency, DivLatency, LoadLatency are extra retire latencies.
	MulLatency  uint64
	DivLatency  uint64
	LoadLatency uint64
}

// Backend describes one modeled microarchitecture. Implementations are
// immutable value types registered at init time.
type Backend interface {
	// Name is the registry key, used in config JSON, CLI flags and
	// store cache keys.
	Name() string
	// Description is a one-line summary for listings.
	Description() string
	// BTB returns the branch-target-buffer geometry, including the
	// set-index hash scheme.
	BTB() btb.Config
	// Pipeline returns the decode-window and timing parameters.
	Pipeline() Pipeline
	// FalseHitDealloc reports whether decode-time false hits deallocate
	// the BTB entry (Takeaway 1). Intel cores do; the Arm cores of
	// arXiv 2412.05413 update BTB state only for actual branches, so a
	// false hit costs the resteer but leaves the entry live.
	FalseHitDealloc() bool
	// RSB returns the backend's return-stack-buffer geometry and
	// whether the backend models one. The RSB is opt-in per experiment
	// (cpu.Config.RSB); backends only advertise the native depth.
	RSB() (rsb.Config, bool)
}

var backends = map[string]Backend{}

// Register adds a backend to the registry. It panics on a duplicate or
// empty name; backends register from init functions, so both are
// programming errors.
func Register(b Backend) {
	name := b.Name()
	if name == "" {
		panic("uarch: Register with empty name")
	}
	if _, dup := backends[name]; dup {
		panic(fmt.Sprintf("uarch: duplicate backend %q", name))
	}
	backends[name] = b
}

// Get returns the backend registered under name.
func Get(name string) (Backend, bool) {
	b, ok := backends[name]
	return b, ok
}

// MustGet returns the backend registered under name, panicking with the
// list of known backends when it is absent. Callers that took the name
// from user input must use Get and surface the error instead.
func MustGet(name string) Backend {
	b, ok := backends[name]
	if !ok {
		panic(fmt.Sprintf("uarch: unknown backend %q (have %v)", name, Names()))
	}
	return b
}

// Names returns the sorted names of all registered backends.
func Names() []string {
	names := make([]string, 0, len(backends))
	for n := range backends {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// List returns all registered backends sorted by name.
func List() []Backend {
	names := Names()
	out := make([]Backend, len(names))
	for i, n := range names {
		out[i] = backends[n]
	}
	return out
}
