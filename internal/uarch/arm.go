package uarch

import (
	"repro/internal/btb"
	"repro/internal/rsb"
)

// armBackend models the Cortex-class cores reverse-engineered in
// "Branch Target Buffer Reverse Engineering on Arm" (arXiv 2412.05413).
// Three modeled differences from the Intel backends matter to attacks:
//
//   - Set indexing XOR-folds higher PC bits into the index
//     (btb.HashFold), so the Intel congruent-set eviction patterns do
//     not transfer.
//
//   - The BTB updates only for instructions that are actually branches:
//     a decode-time false hit pays the resteer bubble but does NOT
//     deallocate the entry (FalseHitDealloc false → the core sets
//     cpu.Config.NoFalseHitDealloc). NightVision's deallocation signal
//     is therefore absent; the ret2spec RSB surface is what remains.
//
//   - A shallower 8-entry return stack, overflowed by proportionally
//     shorter call chains.
type armBackend struct{}

func (armBackend) Name() string { return "arm" }
func (armBackend) Description() string {
	return "Arm Cortex-class: 2048x4 BTB, XOR-folded index, branch-only updates, 8-entry RSB"
}

func (armBackend) BTB() btb.Config { return btb.ConfigArm() }

// Pipeline uses a slightly shallower, resteer-cheaper pipeline than the
// Intel model, in line with the mid-range Cortex parts the paper
// measures. Every field is non-zero so cpu.Config.withDefaults never
// silently substitutes an Intel value.
func (armBackend) Pipeline() Pipeline {
	return Pipeline{
		RetireWidth:           4,
		PipeDepth:             11,
		FalseHitPenalty:       8,
		DecodeResteerPenalty:  7,
		ExecMispredictPenalty: 14,
		InterruptCost:         70,
		FetchAheadPWs:         2,
		RASDepth:              8,
		MulLatency:            3,
		DivLatency:            18,
		LoadLatency:           4,
	}
}

// FalseHitDealloc is false: BTB state changes only on actual branches.
func (armBackend) FalseHitDealloc() bool { return false }

// RSB advertises the 8-entry return stack.
func (armBackend) RSB() (rsb.Config, bool) { return rsb.Config{Depth: 8}, true }

func init() {
	Register(armBackend{})
}
