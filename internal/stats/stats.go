// Package stats provides the small statistical toolkit the experiment
// harnesses use: moments, medians, histograms, top-k rankings and
// accuracy scores.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// MeanUint64 is Mean over uint64 samples.
func MeanUint64(xs []uint64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += float64(x)
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Median returns the median of xs (0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Accuracy returns the fraction of positions where got equals want. The
// slices must have equal length.
func Accuracy(got, want []bool) float64 {
	if len(got) != len(want) {
		panic(fmt.Sprintf("stats: Accuracy length mismatch %d vs %d", len(got), len(want)))
	}
	if len(got) == 0 {
		return 0
	}
	ok := 0
	for i := range got {
		if got[i] == want[i] {
			ok++
		}
	}
	return float64(ok) / float64(len(got))
}

// WilsonInterval returns the Wilson score confidence interval for a
// binomial proportion of k successes in n trials at the given z value
// (1.96 for 95%). Unlike the normal approximation it stays inside
// [0, 1] and behaves sensibly near 0%/100% — exactly where accuracy
// proportions from small robustness runs live. n <= 0 returns (0, 1)
// (total ignorance).
func WilsonInterval(k, n int, z float64) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	p := float64(k) / float64(n)
	nn := float64(n)
	z2 := z * z
	denom := 1 + z2/nn
	center := (p + z2/(2*nn)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/nn+z2/(4*nn*nn))
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// Scored pairs a label with a score, for rankings.
type Scored struct {
	Label string
	Score float64
}

// TopK returns the k highest-scoring entries, descending; ties break by
// label for determinism.
func TopK(items []Scored, k int) []Scored {
	s := append([]Scored(nil), items...)
	sort.Slice(s, func(i, j int) bool {
		if s[i].Score != s[j].Score {
			return s[i].Score > s[j].Score
		}
		return s[i].Label < s[j].Label
	})
	if k > len(s) {
		k = len(s)
	}
	return s[:k]
}

// RankOf returns the 1-based rank of label in a descending sort of
// items, or 0 if absent.
func RankOf(items []Scored, label string) int {
	ranked := TopK(items, len(items))
	for i, s := range ranked {
		if s.Label == label {
			return i + 1
		}
	}
	return 0
}

// Histogram bins samples into equal-width buckets over [lo, hi].
type Histogram struct {
	Lo, Hi  float64
	Counts  []int
	Samples int
}

// NewHistogram creates a histogram with n bins over [lo, hi].
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, n)}
}

// Add records a sample; out-of-range samples clamp to the edge bins.
func (h *Histogram) Add(x float64) {
	n := len(h.Counts)
	idx := int(float64(n) * (x - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	h.Counts[idx]++
	h.Samples++
}

// String renders a compact ASCII bar chart.
func (h *Histogram) String() string {
	var sb strings.Builder
	maxC := 1
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		bar := strings.Repeat("#", c*40/maxC)
		fmt.Fprintf(&sb, "%8.1f..%-8.1f %6d %s\n", h.Lo+float64(i)*width, h.Lo+float64(i+1)*width, c, bar)
	}
	return sb.String()
}

// Series is a labeled (x, y) sequence for figure-style output.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Table renders one or more series sharing the same X values as an
// aligned text table, one row per X — the format the benchmark harness
// prints for every reproduced figure.
func Table(xLabel string, series ...*Series) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s", xLabel)
	for _, s := range series {
		fmt.Fprintf(&sb, " %14s", s.Name)
	}
	sb.WriteByte('\n')
	if len(series) == 0 {
		return sb.String()
	}
	for i := range series[0].X {
		fmt.Fprintf(&sb, "%-12.0f", series[0].X[i])
		for _, s := range series {
			if i < len(s.Y) {
				fmt.Fprintf(&sb, " %14.2f", s.Y[i])
			} else {
				fmt.Fprintf(&sb, " %14s", "-")
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
