package stats

import (
	"math"
	"strings"
	"testing"
)

func TestMeanStdDevMedian(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v", m)
	}
	if s := StdDev(xs); math.Abs(s-2) > 1e-9 {
		t.Errorf("StdDev = %v", s)
	}
	if m := Median(xs); m != 4.5 {
		t.Errorf("Median = %v", m)
	}
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("odd Median = %v", m)
	}
	if Mean(nil) != 0 || Median(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty inputs should give 0")
	}
}

func TestMeanUint64(t *testing.T) {
	if m := MeanUint64([]uint64{1, 2, 3}); m != 2 {
		t.Errorf("MeanUint64 = %v", m)
	}
	if MeanUint64(nil) != 0 {
		t.Error("empty = 0")
	}
}

func TestAccuracy(t *testing.T) {
	got := []bool{true, false, true, true}
	want := []bool{true, true, true, false}
	if a := Accuracy(got, want); a != 0.5 {
		t.Errorf("Accuracy = %v", a)
	}
	if Accuracy(nil, nil) != 0 {
		t.Error("empty accuracy = 0")
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	Accuracy([]bool{true}, []bool{})
}

func TestTopKAndRankOf(t *testing.T) {
	items := []Scored{{"a", 0.5}, {"b", 0.9}, {"c", 0.9}, {"d", 0.1}}
	top := TopK(items, 2)
	if top[0].Label != "b" || top[1].Label != "c" {
		t.Errorf("TopK = %v (ties break by label)", top)
	}
	if r := RankOf(items, "a"); r != 3 {
		t.Errorf("RankOf(a) = %d", r)
	}
	if r := RankOf(items, "zzz"); r != 0 {
		t.Errorf("RankOf(missing) = %d", r)
	}
	if got := TopK(items, 99); len(got) != 4 {
		t.Errorf("TopK overflow = %d", len(got))
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{1, 3, 3, 7, 11, -2} {
		h.Add(v)
	}
	if h.Samples != 6 {
		t.Errorf("Samples = %d", h.Samples)
	}
	if h.Counts[0] != 2 { // 1 and the clamped -2
		t.Errorf("bin0 = %d", h.Counts[0])
	}
	if h.Counts[4] != 1 { // the clamped 11
		t.Errorf("bin4 = %d", h.Counts[4])
	}
	if !strings.Contains(h.String(), "#") {
		t.Error("String should render bars")
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid bounds should panic")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestSeriesAndTable(t *testing.T) {
	a := &Series{Name: "a"}
	b := &Series{Name: "b"}
	for i := 0; i < 3; i++ {
		a.Add(float64(i), float64(i*2))
		b.Add(float64(i), float64(i*3))
	}
	out := Table("x", a, b)
	for _, want := range []string{"x", "a", "b", "4.00", "6.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(Table("x"), "x") {
		t.Error("empty table should still have a header")
	}
}
