package stats

import (
	"math"
	"strings"
	"testing"
)

func TestMeanStdDevMedian(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v", m)
	}
	if s := StdDev(xs); math.Abs(s-2) > 1e-9 {
		t.Errorf("StdDev = %v", s)
	}
	if m := Median(xs); m != 4.5 {
		t.Errorf("Median = %v", m)
	}
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("odd Median = %v", m)
	}
	if Mean(nil) != 0 || Median(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty inputs should give 0")
	}
}

func TestMeanUint64(t *testing.T) {
	if m := MeanUint64([]uint64{1, 2, 3}); m != 2 {
		t.Errorf("MeanUint64 = %v", m)
	}
	if MeanUint64(nil) != 0 {
		t.Error("empty = 0")
	}
}

func TestAccuracy(t *testing.T) {
	got := []bool{true, false, true, true}
	want := []bool{true, true, true, false}
	if a := Accuracy(got, want); a != 0.5 {
		t.Errorf("Accuracy = %v", a)
	}
	if Accuracy(nil, nil) != 0 {
		t.Error("empty accuracy = 0")
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	Accuracy([]bool{true}, []bool{})
}

func TestTopKAndRankOf(t *testing.T) {
	items := []Scored{{"a", 0.5}, {"b", 0.9}, {"c", 0.9}, {"d", 0.1}}
	top := TopK(items, 2)
	if top[0].Label != "b" || top[1].Label != "c" {
		t.Errorf("TopK = %v (ties break by label)", top)
	}
	if r := RankOf(items, "a"); r != 3 {
		t.Errorf("RankOf(a) = %d", r)
	}
	if r := RankOf(items, "zzz"); r != 0 {
		t.Errorf("RankOf(missing) = %d", r)
	}
	if got := TopK(items, 99); len(got) != 4 {
		t.Errorf("TopK overflow = %d", len(got))
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{1, 3, 3, 7, 11, -2} {
		h.Add(v)
	}
	if h.Samples != 6 {
		t.Errorf("Samples = %d", h.Samples)
	}
	if h.Counts[0] != 2 { // 1 and the clamped -2
		t.Errorf("bin0 = %d", h.Counts[0])
	}
	if h.Counts[4] != 1 { // the clamped 11
		t.Errorf("bin4 = %d", h.Counts[4])
	}
	if !strings.Contains(h.String(), "#") {
		t.Error("String should render bars")
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid bounds should panic")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestSeriesAndTable(t *testing.T) {
	a := &Series{Name: "a"}
	b := &Series{Name: "b"}
	for i := 0; i < 3; i++ {
		a.Add(float64(i), float64(i*2))
		b.Add(float64(i), float64(i*3))
	}
	out := Table("x", a, b)
	for _, want := range []string{"x", "a", "b", "4.00", "6.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(Table("x"), "x") {
		t.Error("empty table should still have a header")
	}
}

func TestWilsonInterval(t *testing.T) {
	// Known value: k=8, n=10, z=1.96 → Wilson interval ≈ [0.490, 0.943].
	lo, hi := WilsonInterval(8, 10, 1.96)
	if math.Abs(lo-0.4902) > 0.001 || math.Abs(hi-0.9433) > 0.001 {
		t.Errorf("WilsonInterval(8,10) = [%f, %f], want ≈ [0.490, 0.943]", lo, hi)
	}

	// Degenerate inputs: no trials → the vacuous [0, 1].
	if lo, hi := WilsonInterval(0, 0, 1.96); lo != 0 || hi != 1 {
		t.Errorf("WilsonInterval(0,0) = [%f, %f], want [0, 1]", lo, hi)
	}

	// Extremes stay clamped to [0, 1] and never collapse to a point:
	// k=0 still admits some success probability, k=n some failure.
	if lo, hi := WilsonInterval(0, 20, 1.96); lo != 0 || hi <= 0 || hi >= 1 {
		t.Errorf("WilsonInterval(0,20) = [%f, %f], want [0, small]", lo, hi)
	}
	if lo, hi := WilsonInterval(20, 20, 1.96); hi != 1 || lo >= 1 || lo <= 0 {
		t.Errorf("WilsonInterval(20,20) = [%f, %f], want [large, 1]", lo, hi)
	}

	// The interval brackets the sample proportion and shrinks with n.
	for _, n := range []int{10, 100, 1000} {
		k := n / 2
		lo, hi := WilsonInterval(k, n, 1.96)
		p := float64(k) / float64(n)
		if lo > p || hi < p {
			t.Errorf("n=%d: interval [%f, %f] does not bracket p=%f", n, lo, hi, p)
		}
	}
	lo1, hi1 := WilsonInterval(5, 10, 1.96)
	lo2, hi2 := WilsonInterval(500, 1000, 1.96)
	if hi2-lo2 >= hi1-lo1 {
		t.Errorf("interval did not shrink with n: width %f vs %f", hi2-lo2, hi1-lo1)
	}
}
