// Package isa defines the simulator's instruction set architecture.
//
// The ISA is a compact, x86-flavored, variable-length encoding (1 to 10
// bytes per instruction). Variable instruction length is load-bearing for
// the NightVision reproduction: the paper's function-fingerprinting use
// case (§6.4) derives its entropy from x86's variable-length encoding,
// where instruction semantics directly influence instruction length and
// therefore the PC trace.
//
// The package is pure data: it knows how to encode, decode and classify
// instructions, but attaches no execution semantics. Execution lives in
// internal/cpu.
package isa

import "fmt"

// Reg identifies one of the 16 general-purpose 64-bit registers R0..R15.
// By convention R15 is the stack pointer (SP) and R14 the frame/link
// scratch register, but the ISA itself does not enforce this.
type Reg uint8

// Well-known register aliases.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	SP // R15: stack pointer
)

// NumRegs is the number of architectural general-purpose registers.
const NumRegs = 16

// MaxLen is the longest instruction encoding in bytes (movabs).
const MaxLen = 10

// String returns the assembler name of the register.
func (r Reg) String() string {
	if r == SP {
		return "sp"
	}
	return fmt.Sprintf("r%d", uint8(r))
}

// Op enumerates the instruction opcodes. The numeric values are the first
// encoded byte of each instruction; they are stable and part of the binary
// format.
type Op uint8

// Opcode space. Lengths are determined by each opcode's format (see
// opInfoTable): the same mnemonic may appear with several widths, mirroring
// x86's rel8/rel32 and imm8/imm32 split.
const (
	// 1-byte instructions.
	OpNop Op = 0x01 // nop
	OpRet Op = 0x02 // ret
	OpHlt Op = 0x03 // hlt: stop the core

	// Control transfer, direct.
	OpJmp8   Op = 0x10 // jmp rel8   (2 bytes)
	OpJmp32  Op = 0x11 // jmp rel32  (5 bytes)
	OpCall32 Op = 0x12 // call rel32 (5 bytes)

	// Conditional branches, rel8 (2 bytes).
	OpJz8  Op = 0x18
	OpJnz8 Op = 0x19
	OpJc8  Op = 0x1A
	OpJnc8 Op = 0x1B
	OpJl8  Op = 0x1C
	OpJge8 Op = 0x1D
	OpJle8 Op = 0x1E
	OpJg8  Op = 0x1F
	OpJs8  Op = 0x20
	OpJns8 Op = 0x21

	// Conditional branches, rel32 (6 bytes: opcode + cc byte kept implicit,
	// 1 opcode + 4 rel + 1 pad to mirror x86's 0F 8x cc encodings).
	OpJz32  Op = 0x28
	OpJnz32 Op = 0x29
	OpJc32  Op = 0x2A
	OpJnc32 Op = 0x2B
	OpJl32  Op = 0x2C
	OpJge32 Op = 0x2D
	OpJle32 Op = 0x2E
	OpJg32  Op = 0x2F

	// Control transfer, indirect (2 bytes: opcode + reg).
	OpJmpReg  Op = 0x30 // jmpr rN
	OpCallReg Op = 0x31 // callr rN

	// Moves.
	OpMovRR    Op = 0x40 // mov rD, rS          (2 bytes)
	OpMovImm32 Op = 0x41 // movi rD, imm32      (6 bytes, sign-extended)
	OpMovImm64 Op = 0x42 // movabs rD, imm64    (10 bytes)
	OpCmovz    Op = 0x43 // cmovz rD, rS        (2 bytes)
	OpCmovnz   Op = 0x44 // cmovnz rD, rS       (2 bytes)
	OpCmovc    Op = 0x45 // cmovc rD, rS        (2 bytes)
	OpCmovnc   Op = 0x46 // cmovnc rD, rS       (2 bytes)

	// ALU reg-reg (2 bytes).
	OpAddRR  Op = 0x50
	OpSubRR  Op = 0x51
	OpAndRR  Op = 0x52
	OpOrRR   Op = 0x53
	OpXorRR  Op = 0x54
	OpCmpRR  Op = 0x55
	OpTestRR Op = 0x56
	OpMulRR  Op = 0x57
	OpDivRR  Op = 0x58
	OpShlRR  Op = 0x59 // dst <<= src & 63
	OpShrRR  Op = 0x5A // dst >>= src & 63

	// ALU reg-imm8 (3 bytes).
	OpAddI8 Op = 0x60
	OpSubI8 Op = 0x61
	OpAndI8 Op = 0x62
	OpOrI8  Op = 0x63
	OpXorI8 Op = 0x64
	OpCmpI8 Op = 0x65
	OpShlI8 Op = 0x66
	OpShrI8 Op = 0x67
	OpSarI8 Op = 0x68

	// ALU reg-imm32 (6 bytes).
	OpAddI32 Op = 0x70
	OpSubI32 Op = 0x71
	OpAndI32 Op = 0x72
	OpOrI32  Op = 0x73
	OpXorI32 Op = 0x74
	OpCmpI32 Op = 0x75

	// Memory (load/store), disp8 (3 bytes) and disp32 (6 bytes).
	OpLd8   Op = 0x80 // ld  rD, [rB+disp8]
	OpSt8   Op = 0x81 // st  [rB+disp8], rS
	OpLd32  Op = 0x82 // ld32  rD, [rB+disp32]
	OpSt32  Op = 0x83 // st32  [rB+disp32], rS
	OpLea32 Op = 0x84 // lea rD, [rB+disp32]

	// Stack (2 bytes).
	OpPush Op = 0x88 // push rS
	OpPop  Op = 0x89 // pop rD

	// System (2 bytes: opcode + call number).
	OpSyscall Op = 0x8E // syscall imm8
)

// Cond enumerates condition codes for conditional branches and cmov.
type Cond uint8

// Condition codes. The flag predicates match their x86 namesakes.
const (
	CondZ  Cond = iota // ZF
	CondNZ             // !ZF
	CondC              // CF
	CondNC             // !CF
	CondL              // SF != OF
	CondGE             // SF == OF
	CondLE             // ZF || SF != OF
	CondG              // !ZF && SF == OF
	CondS              // SF
	CondNS             // !SF
	CondNone
)

// Fmt identifies an instruction's operand layout, which determines its
// encoded length.
type Fmt uint8

// Operand formats.
const (
	FmtNone     Fmt = iota // opcode only                      (1 byte)
	FmtReg                 // opcode, reg                      (2 bytes)
	FmtRegReg              // opcode, dst<<4|src               (2 bytes)
	FmtRegImm8             // opcode, reg, imm8                (3 bytes)
	FmtRegImm32            // opcode, reg, imm32               (6 bytes)
	FmtRegImm64            // opcode, reg, imm64               (10 bytes)
	FmtRel8                // opcode, rel8                     (2 bytes)
	FmtRel32               // opcode, rel32, pad               (6 bytes) for Jcc32
	FmtRel32J              // opcode, rel32                    (5 bytes) for jmp/call
	FmtMem8                // opcode, reg<<4|base, disp8       (3 bytes)
	FmtMem32               // opcode, reg<<4|base, disp32      (6 bytes)
	FmtImm8                // opcode, imm8                     (2 bytes)
)

// fmtLen maps each format to its total encoded byte length.
var fmtLen = [...]int{
	FmtNone:     1,
	FmtReg:      2,
	FmtRegReg:   2,
	FmtRegImm8:  3,
	FmtRegImm32: 6,
	FmtRegImm64: 10,
	FmtRel8:     2,
	FmtRel32:    6,
	FmtRel32J:   5,
	FmtMem8:     3,
	FmtMem32:    6,
	FmtImm8:     2,
}

// Kind classifies instructions by their control-flow role. The BTB model
// and the NightVision attack both key off this classification.
type Kind uint8

// Instruction kinds.
const (
	KindOther   Kind = iota // non-control-transfer instruction
	KindJump                // unconditional direct jump
	KindCond                // conditional direct branch
	KindCall                // direct call
	KindRet                 // return
	KindIndJump             // indirect jump
	KindIndCall             // indirect call
	KindHalt                // hlt
)

// opInfo is the static description of one opcode.
type opInfo struct {
	name string
	fmt  Fmt
	kind Kind
	cond Cond
}

// opTable is indexed directly by the opcode byte. The opcode space is
// sparse, so most entries are the zero opInfo; opValid distinguishes
// defined opcodes. A flat array matters here: the CPU front end
// classifies every fetched byte (including the byte soup behind BTB
// false hits) through Valid/Kind/Len, and a map lookup plus hashing on
// that path dominated the whole simulator's CPU profile.
var opTable = [256]opInfo{
	OpNop: {"nop", FmtNone, KindOther, CondNone},
	OpRet: {"ret", FmtNone, KindRet, CondNone},
	OpHlt: {"hlt", FmtNone, KindHalt, CondNone},

	OpJmp8:   {"jmp8", FmtRel8, KindJump, CondNone},
	OpJmp32:  {"jmp", FmtRel32J, KindJump, CondNone},
	OpCall32: {"call", FmtRel32J, KindCall, CondNone},

	OpJz8:  {"jz8", FmtRel8, KindCond, CondZ},
	OpJnz8: {"jnz8", FmtRel8, KindCond, CondNZ},
	OpJc8:  {"jc8", FmtRel8, KindCond, CondC},
	OpJnc8: {"jnc8", FmtRel8, KindCond, CondNC},
	OpJl8:  {"jl8", FmtRel8, KindCond, CondL},
	OpJge8: {"jge8", FmtRel8, KindCond, CondGE},
	OpJle8: {"jle8", FmtRel8, KindCond, CondLE},
	OpJg8:  {"jg8", FmtRel8, KindCond, CondG},
	OpJs8:  {"js8", FmtRel8, KindCond, CondS},
	OpJns8: {"jns8", FmtRel8, KindCond, CondNS},

	OpJz32:  {"jz", FmtRel32, KindCond, CondZ},
	OpJnz32: {"jnz", FmtRel32, KindCond, CondNZ},
	OpJc32:  {"jc", FmtRel32, KindCond, CondC},
	OpJnc32: {"jnc", FmtRel32, KindCond, CondNC},
	OpJl32:  {"jl", FmtRel32, KindCond, CondL},
	OpJge32: {"jge", FmtRel32, KindCond, CondGE},
	OpJle32: {"jle", FmtRel32, KindCond, CondLE},
	OpJg32:  {"jg", FmtRel32, KindCond, CondG},

	OpJmpReg:  {"jmpr", FmtReg, KindIndJump, CondNone},
	OpCallReg: {"callr", FmtReg, KindIndCall, CondNone},

	OpMovRR:    {"mov", FmtRegReg, KindOther, CondNone},
	OpMovImm32: {"movi", FmtRegImm32, KindOther, CondNone},
	OpMovImm64: {"movabs", FmtRegImm64, KindOther, CondNone},
	OpCmovz:    {"cmovz", FmtRegReg, KindOther, CondZ},
	OpCmovnz:   {"cmovnz", FmtRegReg, KindOther, CondNZ},
	OpCmovc:    {"cmovc", FmtRegReg, KindOther, CondC},
	OpCmovnc:   {"cmovnc", FmtRegReg, KindOther, CondNC},

	OpAddRR:  {"add", FmtRegReg, KindOther, CondNone},
	OpSubRR:  {"sub", FmtRegReg, KindOther, CondNone},
	OpAndRR:  {"and", FmtRegReg, KindOther, CondNone},
	OpOrRR:   {"or", FmtRegReg, KindOther, CondNone},
	OpXorRR:  {"xor", FmtRegReg, KindOther, CondNone},
	OpCmpRR:  {"cmp", FmtRegReg, KindOther, CondNone},
	OpTestRR: {"test", FmtRegReg, KindOther, CondNone},
	OpMulRR:  {"mul", FmtRegReg, KindOther, CondNone},
	OpDivRR:  {"div", FmtRegReg, KindOther, CondNone},
	OpShlRR:  {"shlr", FmtRegReg, KindOther, CondNone},
	OpShrRR:  {"shrr", FmtRegReg, KindOther, CondNone},

	OpAddI8: {"addi", FmtRegImm8, KindOther, CondNone},
	OpSubI8: {"subi", FmtRegImm8, KindOther, CondNone},
	OpAndI8: {"andi", FmtRegImm8, KindOther, CondNone},
	OpOrI8:  {"ori", FmtRegImm8, KindOther, CondNone},
	OpXorI8: {"xori", FmtRegImm8, KindOther, CondNone},
	OpCmpI8: {"cmpi", FmtRegImm8, KindOther, CondNone},
	OpShlI8: {"shl", FmtRegImm8, KindOther, CondNone},
	OpShrI8: {"shr", FmtRegImm8, KindOther, CondNone},
	OpSarI8: {"sar", FmtRegImm8, KindOther, CondNone},

	OpAddI32: {"addi32", FmtRegImm32, KindOther, CondNone},
	OpSubI32: {"subi32", FmtRegImm32, KindOther, CondNone},
	OpAndI32: {"andi32", FmtRegImm32, KindOther, CondNone},
	OpOrI32:  {"ori32", FmtRegImm32, KindOther, CondNone},
	OpXorI32: {"xori32", FmtRegImm32, KindOther, CondNone},
	OpCmpI32: {"cmpi32", FmtRegImm32, KindOther, CondNone},

	OpLd8:   {"ld", FmtMem8, KindOther, CondNone},
	OpSt8:   {"st", FmtMem8, KindOther, CondNone},
	OpLd32:  {"ld32", FmtMem32, KindOther, CondNone},
	OpSt32:  {"st32", FmtMem32, KindOther, CondNone},
	OpLea32: {"lea", FmtMem32, KindOther, CondNone},

	OpPush: {"push", FmtReg, KindOther, CondNone},
	OpPop:  {"pop", FmtReg, KindOther, CondNone},

	OpSyscall: {"syscall", FmtImm8, KindOther, CondNone},
}

// opValid and opLen are lookup tables derived from opTable at init:
// validity and encoded length are the two properties the fetch loop
// needs per byte, so each gets a single-index answer.
var (
	opValid [256]bool
	opLen   [256]uint8
)

func init() {
	for i := range opTable {
		if opTable[i].name == "" {
			continue
		}
		opValid[i] = true
		opLen[i] = uint8(fmtLen[opTable[i].fmt])
	}
}

// Valid reports whether op is a defined opcode.
func (op Op) Valid() bool { return opValid[op] }

// Name returns the canonical mnemonic for the opcode, or "op(0xNN)" if it
// is not defined.
func (op Op) Name() string {
	if opValid[op] {
		return opTable[op].name
	}
	return fmt.Sprintf("op(%#02x)", uint8(op))
}

// Format returns the operand format of the opcode. It panics on an
// undefined opcode; callers must check Valid first when decoding
// untrusted bytes.
func (op Op) Format() Fmt {
	if !opValid[op] {
		panic(fmt.Sprintf("isa: format of undefined opcode %#02x", uint8(op)))
	}
	return opTable[op].fmt
}

// Kind returns the control-flow classification of the opcode.
// Undefined opcodes classify as KindOther.
func (op Op) Kind() Kind { return opTable[op].kind }

// CondCode returns the condition evaluated by a conditional branch or
// cmov opcode, or CondNone.
func (op Op) CondCode() Cond {
	if !opValid[op] {
		return CondNone
	}
	return opTable[op].cond
}

// Len returns the encoded length in bytes of an instruction with this
// opcode. It panics on undefined opcodes.
func (op Op) Len() int {
	if !opValid[op] {
		panic(fmt.Sprintf("isa: format of undefined opcode %#02x", uint8(op)))
	}
	return int(opLen[op])
}

// IsControlTransfer reports whether the kind redirects the instruction
// stream.
func (k Kind) IsControlTransfer() bool {
	switch k {
	case KindJump, KindCond, KindCall, KindRet, KindIndJump, KindIndCall:
		return true
	}
	return false
}

// IsIndirect reports whether the kind's target comes from a register
// rather than the instruction encoding. IBRS/IBPB (§4.1 of the paper)
// restrict exactly these.
func (k Kind) IsIndirect() bool {
	return k == KindIndJump || k == KindIndCall
}

// String returns a short human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case KindOther:
		return "other"
	case KindJump:
		return "jump"
	case KindCond:
		return "cond"
	case KindCall:
		return "call"
	case KindRet:
		return "ret"
	case KindIndJump:
		return "indjump"
	case KindIndCall:
		return "indcall"
	case KindHalt:
		return "halt"
	}
	return "invalid"
}
