package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpLenMatchesFormat(t *testing.T) {
	cases := []struct {
		op   Op
		want int
	}{
		{OpNop, 1},
		{OpRet, 1},
		{OpHlt, 1},
		{OpJmp8, 2},
		{OpJmp32, 5},
		{OpCall32, 5},
		{OpJz8, 2},
		{OpJz32, 6},
		{OpJmpReg, 2},
		{OpMovRR, 2},
		{OpMovImm32, 6},
		{OpMovImm64, 10},
		{OpAddI8, 3},
		{OpAddI32, 6},
		{OpLd8, 3},
		{OpLd32, 6},
		{OpPush, 2},
		{OpSyscall, 2},
	}
	for _, c := range cases {
		if got := c.op.Len(); got != c.want {
			t.Errorf("%s: Len = %d, want %d", c.op.Name(), got, c.want)
		}
	}
}

func TestKindClassification(t *testing.T) {
	cases := []struct {
		op   Op
		kind Kind
	}{
		{OpNop, KindOther},
		{OpAddRR, KindOther},
		{OpJmp8, KindJump},
		{OpJmp32, KindJump},
		{OpJnz8, KindCond},
		{OpJg32, KindCond},
		{OpCall32, KindCall},
		{OpRet, KindRet},
		{OpJmpReg, KindIndJump},
		{OpCallReg, KindIndCall},
		{OpHlt, KindHalt},
		{OpCmovz, KindOther}, // cmov is NOT a control transfer
	}
	for _, c := range cases {
		if got := c.op.Kind(); got != c.kind {
			t.Errorf("%s: Kind = %v, want %v", c.op.Name(), got, c.kind)
		}
	}
}

func TestControlTransferPredicate(t *testing.T) {
	ct := []Kind{KindJump, KindCond, KindCall, KindRet, KindIndJump, KindIndCall}
	for _, k := range ct {
		if !k.IsControlTransfer() {
			t.Errorf("%v: IsControlTransfer = false, want true", k)
		}
	}
	for _, k := range []Kind{KindOther, KindHalt} {
		if k.IsControlTransfer() {
			t.Errorf("%v: IsControlTransfer = true, want false", k)
		}
	}
	if !KindIndJump.IsIndirect() || !KindIndCall.IsIndirect() {
		t.Error("indirect kinds must report IsIndirect")
	}
	if KindJump.IsIndirect() || KindCond.IsIndirect() {
		t.Error("direct kinds must not report IsIndirect")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	insts := []Inst{
		Nop(),
		Ret(),
		Hlt(),
		Jmp8(-5),
		Jmp32(1 << 20),
		Call32(-42),
		{Op: OpJz8, Imm: 12, Size: 2},
		{Op: OpJnz32, Imm: -300, Size: 6},
		JmpReg(R7),
		{Op: OpCallReg, Dst: R3, Size: 2},
		{Op: OpMovRR, Dst: R1, Src: R2, Size: 2},
		{Op: OpMovImm32, Dst: R4, Imm: -7, Size: 6},
		MovImm64(R5, 0x1234_5678_9ABC_DEF0),
		{Op: OpCmovnz, Dst: R8, Src: R9, Size: 2},
		{Op: OpAddRR, Dst: R0, Src: SP, Size: 2},
		{Op: OpCmpI8, Dst: R2, Imm: -1, Size: 3},
		{Op: OpCmpI32, Dst: R2, Imm: 1 << 24, Size: 6},
		{Op: OpLd8, Dst: R1, Src: R2, Imm: -16, Size: 3},
		{Op: OpSt32, Dst: R6, Src: SP, Imm: 4096, Size: 6},
		{Op: OpLea32, Dst: R3, Src: R4, Imm: 100, Size: 6},
		{Op: OpPush, Dst: R11, Size: 2},
		{Op: OpPop, Dst: R12, Size: 2},
		Syscall(3),
		{Op: OpShlI8, Dst: R1, Imm: 63, Size: 3},
	}
	for _, want := range insts {
		buf := want.Encode(nil)
		if len(buf) != want.Size {
			t.Errorf("%s: encoded %d bytes, Size says %d", want, len(buf), want.Size)
		}
		got, err := Decode(buf)
		if err != nil {
			t.Errorf("%s: decode error: %v", want, err)
			continue
		}
		if got != want {
			t.Errorf("round trip: got %+v, want %+v", got, want)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("decoding empty buffer should fail")
	}
	if _, err := Decode([]byte{0xFF}); err == nil {
		t.Error("decoding undefined opcode should fail")
	}
	// Truncated movabs: opcode says 10 bytes, give 3.
	if _, err := Decode([]byte{byte(OpMovImm64), 0x01, 0x02}); err == nil {
		t.Error("decoding truncated instruction should fail")
	}
	var de *DecodeErr
	_, err := Decode([]byte{0xFF})
	if e, ok := err.(*DecodeErr); ok {
		de = e
	} else {
		t.Fatalf("error type = %T, want *DecodeErr", err)
	}
	if !strings.Contains(de.Error(), "0xff") {
		t.Errorf("error message %q should mention the byte", de.Error())
	}
}

func TestBranchTargetAndLastByte(t *testing.T) {
	j := Jmp8(3) // 2 bytes at pc: target = pc+2+3
	if got := j.BranchTarget(0x100); got != 0x105 {
		t.Errorf("BranchTarget = %#x, want 0x105", got)
	}
	if got := j.LastByte(0x100); got != 0x101 {
		t.Errorf("LastByte = %#x, want 0x101", got)
	}
	c := Call32(-10) // 5 bytes
	if got := c.BranchTarget(0x200); got != 0x200+5-10 {
		t.Errorf("call BranchTarget = %#x, want %#x", got, 0x200+5-10)
	}
}

// TestEncodeImmediateRangePanics verifies that out-of-range immediates are
// rejected at encode time rather than silently truncated.
func TestEncodeImmediateRangePanics(t *testing.T) {
	bad := []Inst{
		{Op: OpJmp8, Imm: 200, Size: 2},
		{Op: OpAddI8, Dst: R1, Imm: 128, Size: 3},
		{Op: OpCmpI32, Dst: R1, Imm: 1 << 40, Size: 7},
		{Op: OpLd8, Dst: R1, Src: R2, Imm: -129, Size: 3},
	}
	for _, in := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%v: expected panic for out-of-range immediate", in)
				}
			}()
			in.Encode(nil)
		}()
	}
}

// allOps returns every defined opcode.
func allOps() []Op {
	var ops []Op
	for op := Op(0); op < 0xFF; op++ {
		if op.Valid() {
			ops = append(ops, op)
		}
	}
	return ops
}

// TestQuickRoundTrip property-tests encode/decode over randomly generated
// valid instructions: Decode(Encode(i)) == i for every i.
func TestQuickRoundTrip(t *testing.T) {
	ops := allOps()
	f := func(opIdx uint16, dst, src uint8, imm int64) bool {
		op := ops[int(opIdx)%len(ops)]
		in := Inst{Op: op, Size: op.Len()}
		switch op.Format() {
		case FmtNone:
		case FmtReg, FmtRegImm8, FmtRegImm32, FmtRegImm64:
			in.Dst = Reg(dst % NumRegs)
		case FmtRegReg, FmtMem8, FmtMem32:
			in.Dst = Reg(dst % NumRegs)
			in.Src = Reg(src % NumRegs)
		}
		switch op.Format() {
		case FmtRegImm8, FmtRel8, FmtMem8:
			in.Imm = int64(int8(imm))
		case FmtImm8:
			in.Imm = int64(uint8(imm))
		case FmtRegImm32, FmtRel32, FmtRel32J, FmtMem32:
			in.Imm = int64(int32(imm))
		case FmtRegImm64:
			in.Imm = imm
		}
		buf := in.Encode(nil)
		got, err := Decode(buf)
		return err == nil && got == in && got.Size == len(buf)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickDecodeNeverPanics feeds random byte soup to the decoder; it
// must return an error or an instruction, never panic. The front end
// decodes mid-instruction bytes after BTB false hits, so this is a core
// robustness property.
func TestQuickDecodeNeverPanics(t *testing.T) {
	f := func(buf []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		in, err := Decode(buf)
		if err == nil && (in.Size <= 0 || in.Size > len(buf)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestRegString(t *testing.T) {
	if R3.String() != "r3" {
		t.Errorf("R3 = %q", R3.String())
	}
	if SP.String() != "sp" {
		t.Errorf("SP = %q", SP.String())
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Nop(), "nop"},
		{Inst{Op: OpMovRR, Dst: R1, Src: R2, Size: 2}, "mov r1, r2"},
		{Inst{Op: OpSt8, Dst: R6, Src: R2, Imm: 8, Size: 3}, "st [r2+8], r6"},
		{Inst{Op: OpLd8, Dst: R6, Src: R2, Imm: -8, Size: 3}, "ld r6, [r2-8]"},
		{Jmp8(4), "jmp8 .+4"},
		{Syscall(2), "syscall 2"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestInstKindHelpers(t *testing.T) {
	if Jmp8(1).Kind() != KindJump || !Jmp8(1).IsControlTransfer() {
		t.Error("Jmp8 classification")
	}
	if Nop().IsControlTransfer() {
		t.Error("nop is not a control transfer")
	}
}

func TestOpCondCodeAndNames(t *testing.T) {
	if OpJc8.CondCode() != CondC || OpJge32.CondCode() != CondGE {
		t.Error("CondCode mapping")
	}
	if OpNop.CondCode() != CondNone || Op(0xEE).CondCode() != CondNone {
		t.Error("CondCode for non-conditional ops")
	}
	if Op(0xEE).Name() != "op(0xee)" {
		t.Errorf("undefined Name = %q", Op(0xEE).Name())
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindOther: "other", KindJump: "jump", KindCond: "cond",
		KindCall: "call", KindRet: "ret", KindIndJump: "indjump",
		KindIndCall: "indcall", KindHalt: "halt", Kind(99): "invalid",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}
