package isa

import (
	"encoding/binary"
	"fmt"
)

// Inst is one decoded instruction. The zero value is not meaningful;
// instructions are produced by Decode or by the constructors below.
type Inst struct {
	Op   Op
	Dst  Reg   // destination / first register operand
	Src  Reg   // source / base register operand
	Imm  int64 // immediate, displacement, or branch relative offset
	Size int   // encoded length in bytes
}

// Kind returns the control-flow classification of the instruction.
func (in Inst) Kind() Kind { return in.Op.Kind() }

// IsControlTransfer reports whether the instruction redirects the
// instruction stream.
func (in Inst) IsControlTransfer() bool { return in.Op.Kind().IsControlTransfer() }

// BranchTarget returns the absolute target of a direct control transfer
// whose first byte is at pc. Relative offsets are applied to the address
// of the following instruction, as on x86.
func (in Inst) BranchTarget(pc uint64) uint64 {
	return pc + uint64(in.Size) + uint64(in.Imm)
}

// LastByte returns the address of the final byte of the instruction whose
// first byte is at pc. BTB entries are keyed on this address (see
// internal/btb).
func (in Inst) LastByte(pc uint64) uint64 {
	return pc + uint64(in.Size) - 1
}

// String renders the instruction in assembler-like syntax. Branch targets
// are shown as relative offsets since the instruction does not know its
// own address.
func (in Inst) String() string {
	switch in.Op.Format() {
	case FmtNone:
		return in.Op.Name()
	case FmtReg:
		return fmt.Sprintf("%s %s", in.Op.Name(), in.Dst)
	case FmtRegReg:
		return fmt.Sprintf("%s %s, %s", in.Op.Name(), in.Dst, in.Src)
	case FmtRegImm8, FmtRegImm32, FmtRegImm64:
		return fmt.Sprintf("%s %s, %d", in.Op.Name(), in.Dst, in.Imm)
	case FmtRel8, FmtRel32, FmtRel32J:
		return fmt.Sprintf("%s .%+d", in.Op.Name(), in.Imm)
	case FmtMem8, FmtMem32:
		if in.Op == OpSt8 || in.Op == OpSt32 {
			return fmt.Sprintf("%s [%s%+d], %s", in.Op.Name(), in.Src, in.Imm, in.Dst)
		}
		return fmt.Sprintf("%s %s, [%s%+d]", in.Op.Name(), in.Dst, in.Src, in.Imm)
	case FmtImm8:
		return fmt.Sprintf("%s %d", in.Op.Name(), in.Imm)
	}
	return in.Op.Name()
}

// Encode appends the binary encoding of the instruction to dst and
// returns the extended slice. It panics if the instruction's immediate
// does not fit its format; the assembler validates ranges before
// encoding.
func (in Inst) Encode(dst []byte) []byte {
	dst = append(dst, byte(in.Op))
	switch in.Op.Format() {
	case FmtNone:
	case FmtReg:
		dst = append(dst, byte(in.Dst))
	case FmtRegReg:
		dst = append(dst, byte(in.Dst)<<4|byte(in.Src))
	case FmtRegImm8:
		checkImm(in, -128, 127)
		dst = append(dst, byte(in.Dst), byte(in.Imm))
	case FmtRegImm32:
		checkImm(in, -1<<31, 1<<31-1)
		dst = append(dst, byte(in.Dst))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(in.Imm))
	case FmtRegImm64:
		dst = append(dst, byte(in.Dst))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(in.Imm))
	case FmtRel8:
		checkImm(in, -128, 127)
		dst = append(dst, byte(in.Imm))
	case FmtRel32:
		checkImm(in, -1<<31, 1<<31-1)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(in.Imm))
		dst = append(dst, 0) // pad byte, mirrors x86 two-byte 0F 8x opcodes
	case FmtRel32J:
		checkImm(in, -1<<31, 1<<31-1)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(in.Imm))
	case FmtMem8:
		checkImm(in, -128, 127)
		dst = append(dst, byte(in.Dst)<<4|byte(in.Src), byte(in.Imm))
	case FmtMem32:
		checkImm(in, -1<<31, 1<<31-1)
		dst = append(dst, byte(in.Dst)<<4|byte(in.Src))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(in.Imm))
	case FmtImm8:
		checkImm(in, 0, 255)
		dst = append(dst, byte(in.Imm))
	}
	return dst
}

func checkImm(in Inst, lo, hi int64) {
	if in.Imm < lo || in.Imm > hi {
		panic(fmt.Sprintf("isa: immediate %d out of range [%d,%d] for %s", in.Imm, lo, hi, in.Op.Name()))
	}
}

// DecodeErr describes a failed decode.
type DecodeErr struct {
	Byte   byte // the offending opcode byte
	Reason string
}

func (e *DecodeErr) Error() string {
	return fmt.Sprintf("isa: cannot decode byte %#02x: %s", e.Byte, e.Reason)
}

// Decode decodes the instruction starting at buf[0]. It returns the
// instruction and nil, or a zero Inst and a *DecodeErr if the bytes do
// not form a valid instruction (undefined opcode or truncated operands).
//
// Decoding untrusted byte soup is normal operation for the simulator: the
// front end may fetch from mid-instruction addresses after a BTB false
// hit, exactly the situation the paper's attack manufactures. The hot
// fetch path therefore uses TryDecode, which reports failure without
// constructing an error; Decode exists for callers that want one.
func Decode(buf []byte) (Inst, error) {
	in, ok := TryDecode(buf)
	if ok {
		return in, nil
	}
	switch {
	case len(buf) == 0:
		return Inst{}, &DecodeErr{0, "empty buffer"}
	case !Op(buf[0]).Valid():
		return Inst{}, &DecodeErr{buf[0], "undefined opcode"}
	default:
		return Inst{}, &DecodeErr{buf[0], "truncated instruction"}
	}
}

// TryDecode is Decode without the error: it returns ok=false exactly
// where Decode returns a *DecodeErr, and allocates nothing. Callers
// distinguish undefined opcodes from truncation via Op(buf[0]).Valid(),
// as the front end's false-hit walker does.
func TryDecode(buf []byte) (Inst, bool) {
	if len(buf) == 0 {
		return Inst{}, false
	}
	op := Op(buf[0])
	if !op.Valid() {
		return Inst{}, false
	}
	size := int(opLen[op])
	if len(buf) < size {
		return Inst{}, false
	}
	in := Inst{Op: op, Size: size}
	switch opTable[op].fmt {
	case FmtNone:
	case FmtReg:
		in.Dst = Reg(buf[1] & 0x0F)
	case FmtRegReg:
		in.Dst = Reg(buf[1] >> 4)
		in.Src = Reg(buf[1] & 0x0F)
	case FmtRegImm8:
		in.Dst = Reg(buf[1] & 0x0F)
		in.Imm = int64(int8(buf[2]))
	case FmtRegImm32:
		in.Dst = Reg(buf[1] & 0x0F)
		in.Imm = int64(int32(binary.LittleEndian.Uint32(buf[2:])))
	case FmtRegImm64:
		in.Dst = Reg(buf[1] & 0x0F)
		in.Imm = int64(binary.LittleEndian.Uint64(buf[2:]))
	case FmtRel8:
		in.Imm = int64(int8(buf[1]))
	case FmtRel32, FmtRel32J:
		in.Imm = int64(int32(binary.LittleEndian.Uint32(buf[1:])))
	case FmtMem8:
		in.Dst = Reg(buf[1] >> 4)
		in.Src = Reg(buf[1] & 0x0F)
		in.Imm = int64(int8(buf[2]))
	case FmtMem32:
		in.Dst = Reg(buf[1] >> 4)
		in.Src = Reg(buf[1] & 0x0F)
		in.Imm = int64(int32(binary.LittleEndian.Uint32(buf[2:])))
	case FmtImm8:
		in.Imm = int64(buf[1])
	}
	return in, true
}

// Constructors. These cover the instruction shapes the code generator,
// victims and attack snippets need; the assembler uses Inst literals
// directly.

// Nop returns a 1-byte nop.
func Nop() Inst { return Inst{Op: OpNop, Size: 1} }

// Ret returns a 1-byte ret.
func Ret() Inst { return Inst{Op: OpRet, Size: 1} }

// Hlt returns a 1-byte hlt.
func Hlt() Inst { return Inst{Op: OpHlt, Size: 1} }

// Jmp8 returns a 2-byte direct jump with the given rel8 offset.
func Jmp8(rel int64) Inst { return Inst{Op: OpJmp8, Imm: rel, Size: OpJmp8.Len()} }

// Jmp32 returns a 5-byte direct jump with the given rel32 offset.
func Jmp32(rel int64) Inst { return Inst{Op: OpJmp32, Imm: rel, Size: OpJmp32.Len()} }

// Call32 returns a 5-byte direct call with the given rel32 offset.
func Call32(rel int64) Inst { return Inst{Op: OpCall32, Imm: rel, Size: OpCall32.Len()} }

// MovImm64 returns a 10-byte load of a 64-bit immediate.
func MovImm64(dst Reg, v uint64) Inst {
	return Inst{Op: OpMovImm64, Dst: dst, Imm: int64(v), Size: OpMovImm64.Len()}
}

// JmpReg returns a 2-byte indirect jump through reg.
func JmpReg(r Reg) Inst { return Inst{Op: OpJmpReg, Dst: r, Size: OpJmpReg.Len()} }

// Syscall returns a 2-byte syscall with the given call number.
func Syscall(n uint8) Inst { return Inst{Op: OpSyscall, Imm: int64(n), Size: OpSyscall.Len()} }
