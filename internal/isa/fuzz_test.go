package isa

import (
	"bytes"
	"testing"
)

// FuzzDecode feeds arbitrary byte soup to the instruction decoder. The
// front end decodes at attacker-chosen mid-instruction addresses after
// BTB false hits, so Decode must be total: any input either decodes or
// returns a *DecodeErr, never panics. A successful decode must be
// canonically re-encodable: Encode(Decode(buf)) decodes back to the
// same instruction and re-encodes to the same bytes (a fixpoint —
// non-canonical inputs like garbage high register nibbles may differ
// from buf itself, but must converge after one round trip).
func FuzzDecode(f *testing.F) {
	// Seed with one well-formed encoding per instruction shape, plus
	// classic confusers: truncations, an undefined opcode, empty input.
	seeds := []Inst{
		Nop(),
		Ret(),
		Hlt(),
		Jmp8(-2),
		Jmp32(0x1234),
		Call32(-0x40),
		MovImm64(R3, 0xDEAD_BEEF_CAFE_F00D),
		JmpReg(SP),
		Syscall(1),
	}
	for _, in := range seeds {
		f.Add(in.Encode(nil))
	}
	f.Add([]byte{})
	f.Add([]byte{0x00})                         // undefined opcode
	f.Add([]byte{0xFF, 0xFF, 0xFF})             // undefined opcode, trailing junk
	f.Add(MovImm64(R1, 1).Encode(nil)[:4])      // truncated movabs
	f.Add(append(Jmp32(8).Encode(nil), 0x90))   // valid + trailing byte

	f.Fuzz(func(t *testing.T, buf []byte) {
		in, err := Decode(buf)
		if err != nil {
			if _, ok := err.(*DecodeErr); !ok {
				t.Fatalf("Decode error has type %T, want *DecodeErr", err)
			}
			return
		}
		if in.Size < 1 || in.Size > MaxLen {
			t.Fatalf("decoded size %d outside [1, %d]", in.Size, MaxLen)
		}
		if in.Size > len(buf) {
			t.Fatalf("decoded size %d exceeds input length %d", in.Size, len(buf))
		}
		if in.String() == "" {
			t.Fatal("decoded instruction has empty disassembly")
		}
		enc := in.Encode(nil) // must not panic: decoded immediates are in range
		if len(enc) != in.Size {
			t.Fatalf("re-encoded length %d != decoded size %d", len(enc), in.Size)
		}
		in2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-encoding does not decode: %v", err)
		}
		if enc2 := in2.Encode(nil); !bytes.Equal(enc2, enc) {
			t.Fatalf("encoding is not a fixpoint: % x -> % x", enc, enc2)
		}
	})
}
