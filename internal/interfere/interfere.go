// Package interfere is the deterministic fault-injection layer: it
// perturbs the simulated substrate the way a live machine perturbs the
// paper's attacks — OS timer interrupts landing mid-victim and
// mid-probe, co-runner context switches that pollute the BTB, LBR
// record loss and flush events, and heavy-tailed measurement outliers
// (§7's noise sources, which the authors survive with repetition and
// majority voting).
//
// Every injection decision draws from a per-fault-class nvrand stream
// derived from (seed, class), in the serial order the simulation
// reaches its injection points. A fault schedule is therefore a pure
// function of the seed and the Config — bit-identical across runs and
// across experiment-engine worker counts — and each Injector records
// the schedule it actually delivered as an Event trace that tests can
// assert on.
package interfere

import (
	"fmt"
	"hash/fnv"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/lbr"
	"repro/internal/nvrand"
	"repro/internal/obs"
)

// Class identifies one fault class. Each class draws from its own RNG
// stream so that changing one class's rate never perturbs another's
// schedule.
type Class int

// Fault classes.
const (
	ClassInterrupt  Class = iota // timer interrupt (victim or probe)
	ClassCoRunner                // context switch to the BTB polluter
	ClassRecordLoss              // one LBR record lost on read
	ClassFlush                   // whole LBR read comes back empty
	ClassOutlier                 // heavy-tailed cycle outlier on a record
	numClasses
)

// String returns the class's sweep label.
func (c Class) String() string {
	switch c {
	case ClassInterrupt:
		return "interrupt"
	case ClassCoRunner:
		return "corunner"
	case ClassRecordLoss:
		return "recordloss"
	case ClassFlush:
		return "flush"
	case ClassOutlier:
		return "outlier"
	}
	return "invalid"
}

// Site says where an event landed.
type Site int

// Injection sites.
const (
	SiteVictim Site = iota // during a victim scheduling fragment
	SiteProbe              // during attacker prime/probe code
	SiteRead               // while reading the LBR
)

// String returns the site's label.
func (s Site) String() string {
	switch s {
	case SiteVictim:
		return "victim"
	case SiteProbe:
		return "probe"
	case SiteRead:
		return "read"
	}
	return "invalid"
}

// Config holds the fault rates. The zero value disables injection
// entirely; with it installed, every hook is a no-op that draws nothing
// from any stream, so an interference-free run is bit-identical to a
// run with no injector at all.
type Config struct {
	// InterruptRate is the per-retired-step probability of a timer
	// interrupt preempting the running code. Interrupts land both
	// mid-victim and mid-probe: the pipeline is squashed and the
	// interrupt cost charged, inflating in-flight LBR deltas.
	InterruptRate float64
	// CoRunnerRate is the per-victim-step probability of a context
	// switch to a co-runner that executes PolluterJumps taken jumps,
	// aging (and eventually evicting) the attacker's planted BTB
	// entries. The co-runner's architectural state is saved/restored
	// around the slice; the BTB and LBR deliberately are not.
	CoRunnerRate float64
	// PolluterJumps is the number of chained jumps one co-runner slice
	// executes. Each jump allocates a BTB entry in a distinct set
	// (32-byte stride); 512 jumps walk every SkyLake set once. Default
	// 1024: two full walks.
	PolluterJumps int
	// RecordLossRate is the per-record probability that an LBR record
	// read by a probe has been lost (overwritten or dropped, as when a
	// perf subsystem shares the facility).
	RecordLossRate float64
	// FlushRate is the per-read probability that the entire LBR ring
	// reads back empty (an intervening consumer froze and cleared it).
	FlushRate float64
	// OutlierRate is the per-record probability of a heavy-tailed
	// measurement outlier added to the record's cycle delta — the
	// long-tail the paper filters with repetition and outlier
	// rejection.
	OutlierRate float64
	// OutlierScale scales outlier magnitudes in cycles. Default 40,
	// comfortably above every misprediction bubble.
	OutlierScale float64
}

// Enabled reports whether any fault class has a nonzero rate.
func (c Config) Enabled() bool {
	return c.InterruptRate > 0 || c.CoRunnerRate > 0 || c.RecordLossRate > 0 ||
		c.FlushRate > 0 || c.OutlierRate > 0
}

func (c Config) withDefaults() Config {
	if c.PolluterJumps == 0 {
		c.PolluterJumps = 1024
	}
	if c.OutlierScale == 0 {
		c.OutlierScale = 40
	}
	return c
}

// ClassConfig returns a Config exercising exactly one fault class at
// the given rate — the shape RobustnessSweep sweeps. Record loss also
// enables whole-ring flushes at a tenth of the rate (the two are one
// phenomenon at different granularity).
func ClassConfig(class string, rate float64) (Config, error) {
	switch class {
	case "interrupt":
		return Config{InterruptRate: rate}, nil
	case "corunner":
		return Config{CoRunnerRate: rate}, nil
	case "recordloss":
		return Config{RecordLossRate: rate, FlushRate: rate / 10}, nil
	case "outlier":
		return Config{OutlierRate: rate}, nil
	}
	return Config{}, fmt.Errorf("interfere: unknown fault class %q", class)
}

// Classes lists the sweepable fault-class names in ClassConfig order.
func Classes() []string {
	return []string{"interrupt", "corunner", "recordloss", "outlier"}
}

// Event is one delivered fault, the unit of the reproducibility
// contract: same seed + same Config → same Event sequence.
type Event struct {
	Class Class
	Site  Site
	// Seq is the ordinal of the decision draw within the class's
	// stream at the moment the event fired.
	Seq uint64
	// Arg is class-specific: outlier magnitude in cycles, polluter
	// jumps executed, records dropped by a flush.
	Arg uint64
}

// Injector delivers one run's fault schedule. It implements the
// core.Interference hooks (ProbeStep, Records) and exposes VictimTick
// for osmodel.OS.OnTick. Not safe for concurrent use — an injector
// belongs to exactly one simulated core, which is itself serial.
type Injector struct {
	cfg  Config
	core *cpu.Core

	streams [numClasses]*nvrand.Rand
	draws   [numClasses]uint64
	trace   []Event

	polluterLaid []bool
	polluterNext int
	site         Site

	// Tracer, when non-nil, receives an instant event per delivered
	// fault. TraceTID lanes those events alongside the attack pipeline's
	// spans. Purely observational: the fault schedule is fixed by (cfg,
	// seed) and never consults the tracer.
	Tracer   *obs.Trace
	TraceTID int64
}

// New returns an injector for core whose schedule is fully determined
// by (cfg, seed). The polluter program is laid out lazily on first
// co-runner event.
func New(cfg Config, core *cpu.Core, seed uint64) *Injector {
	inj := &Injector{cfg: cfg.withDefaults(), core: core, site: SiteVictim}
	for cl := Class(0); cl < numClasses; cl++ {
		inj.streams[cl] = nvrand.SplitAt(seed, uint64(cl))
	}
	return inj
}

// draw advances class's stream by one Bernoulli decision.
func (inj *Injector) draw(class Class, rate float64) bool {
	if rate <= 0 {
		return false
	}
	inj.draws[class]++
	return inj.streams[class].Float64() < rate
}

// record appends a delivered event to the trace.
func (inj *Injector) record(class Class, site Site, arg uint64) {
	inj.trace = append(inj.trace, Event{Class: class, Site: site, Seq: inj.draws[class], Arg: arg})
	if inj.Tracer != nil {
		inj.Tracer.Event("interfere", "fault", inj.TraceTID, map[string]any{
			"class": class.String(), "site": site.String(), "arg": arg,
		})
	}
}

// VictimTick is the osmodel.OS.OnTick hook: called after every retired
// victim step, it may deliver a timer interrupt and/or switch to the
// co-runner for one polluting slice.
func (inj *Injector) VictimTick() {
	if inj.draw(ClassInterrupt, inj.cfg.InterruptRate) {
		inj.core.Interrupt()
		inj.record(ClassInterrupt, SiteVictim, 0)
	}
	if inj.draw(ClassCoRunner, inj.cfg.CoRunnerRate) {
		inj.runPolluter()
		inj.record(ClassCoRunner, SiteVictim, uint64(inj.cfg.PolluterJumps))
	}
}

// ProbeStep is the core.Interference probe hook: called after every
// retired step of attacker prime/probe code, it may deliver a timer
// interrupt (squashing the probe's fetch-ahead and inflating the
// in-flight LBR delta by the interrupt cost).
func (inj *Injector) ProbeStep() {
	if inj.draw(ClassInterrupt, inj.cfg.InterruptRate) {
		inj.core.Interrupt()
		inj.record(ClassInterrupt, SiteProbe, 0)
	}
}

// Records is the core.Interference measurement hook: it filters the
// LBR records a probe reads, dropping lost records, emptying flushed
// reads, and adding heavy-tailed outliers to surviving cycle deltas.
// The input slice is not modified.
func (inj *Injector) Records(recs []lbr.Record) []lbr.Record {
	if inj.draw(ClassFlush, inj.cfg.FlushRate) {
		inj.record(ClassFlush, SiteRead, uint64(len(recs)))
		return nil
	}
	if inj.cfg.RecordLossRate <= 0 && inj.cfg.OutlierRate <= 0 {
		return recs
	}
	out := make([]lbr.Record, 0, len(recs))
	for _, r := range recs {
		if inj.draw(ClassRecordLoss, inj.cfg.RecordLossRate) {
			inj.record(ClassRecordLoss, SiteRead, 1)
			continue
		}
		if inj.draw(ClassOutlier, inj.cfg.OutlierRate) {
			mag := inj.outlierMagnitude()
			r.Cycles += mag
			inj.record(ClassOutlier, SiteRead, mag)
		}
		out = append(out, r)
	}
	return out
}

// outlierMagnitude draws a heavy-tailed (Pareto, α=1.5) magnitude
// scaled by OutlierScale and capped at 64× the scale — SMIs and
// page-fault storms, not Gaussian jitter.
func (inj *Injector) outlierMagnitude() uint64 {
	u := inj.streams[ClassOutlier].Float64()
	for u == 0 {
		u = inj.streams[ClassOutlier].Float64()
	}
	// Pareto with x_m = 1: x = u^(-1/alpha); inline cube-root-ish via
	// two square roots to avoid math.Pow's platform spread:
	// u^(-2/3) ≈ alpha 1.5.
	inv := 1 / u
	x := cbrtApprox(inv * inv)
	mag := inj.cfg.OutlierScale * x
	if lim := inj.cfg.OutlierScale * 64; mag > lim {
		mag = lim
	}
	return uint64(mag)
}

// cbrtApprox is a deterministic Newton cube root (math.Cbrt is fine in
// practice, but an explicit iteration keeps the schedule's bit pattern
// independent of libm).
func cbrtApprox(v float64) float64 {
	if v <= 0 {
		return 0
	}
	x := v
	if x > 1 {
		x = v / 3
	}
	for i := 0; i < 32; i++ {
		x = (2*x + v/(x*x)) / 3
	}
	return x
}

// polluterBase is where the co-runner's jump slides live: victim
// address space (below any alias region), far from every region the
// experiments occupy.
const polluterBase = uint64(0x5800_0000)

// polluterRegions is the number of distinct 1 MiB-apart code regions
// the co-runner rotates through. A slide re-run from one fixed region
// merely refreshes its own BTB entries (the Update re-use path) and
// builds no eviction pressure; rotating regions changes the tags each
// slice, forcing fresh allocations that age and evict the attacker's
// planted entries the way a real co-runner's shifting working set does.
const polluterRegions = 8

// polluterRegionStride separates regions by 1 MiB: a multiple of the
// set-array span, so every region walks the same set sequence under a
// different tag.
const polluterRegionStride = uint64(1) << 20

// layoutPolluter writes co-runner region r: PolluterJumps chained
// jmp32s at one-per-32-byte-block stride (each allocating a BTB entry
// in the next set), ending in hlt.
func (inj *Injector) layoutPolluter(r int) uint64 {
	base := polluterBase + uint64(r)*polluterRegionStride
	addr := base
	var buf []byte
	for i := 0; i < inj.cfg.PolluterJumps; i++ {
		next := addr + 32
		in := isa.Inst{Op: isa.OpJmp32, Imm: int64(next) - int64(addr) - 5, Size: 5}
		inj.core.Mem.LoadProgram(addr, in.Encode(buf[:0]))
		addr = next
	}
	inj.core.Mem.LoadProgram(addr, isa.Hlt().Encode(buf[:0]))
	return base
}

// runPolluter context-switches to the co-runner, runs its slice to
// completion, and switches back. Architectural state round-trips; the
// BTB and LBR pollution stays — that is the fault. Successive slices
// rotate through polluterRegions distinct code regions.
func (inj *Injector) runPolluter() {
	r := inj.polluterNext % polluterRegions
	inj.polluterNext++
	if inj.polluterLaid == nil {
		inj.polluterLaid = make([]bool, polluterRegions)
	}
	entry := polluterBase + uint64(r)*polluterRegionStride
	if !inj.polluterLaid[r] {
		entry = inj.layoutPolluter(r)
		inj.polluterLaid[r] = true
	}
	var saved cpu.ArchState
	st := cpu.ArchState{PC: entry}
	inj.core.ContextSwitch(&saved, &st)
	var info cpu.StepInfo
	for {
		err := inj.core.StepInto(&info)
		if err != nil {
			break // hlt (or a fault — the slice is over either way)
		}
	}
	inj.core.ContextSwitch(nil, &saved)
}

// Trace returns the events delivered so far, in delivery order.
func (inj *Injector) Trace() []Event { return inj.trace }

// Events returns the number of delivered events.
func (inj *Injector) Events() uint64 { return uint64(len(inj.trace)) }

// HashEvents folds evs into a running FNV-1a hash h (pass 0 to start a
// fresh chain). Experiments aggregate per-run injector traces into one
// order-sensitive fingerprint that reproducibility tests compare.
func HashEvents(h uint64, evs []Event) uint64 {
	f := fnv.New64a()
	var b [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		f.Write(b[:])
	}
	put(h)
	for _, e := range evs {
		put(uint64(e.Class))
		put(uint64(e.Site))
		put(e.Seq)
		put(e.Arg)
	}
	return f.Sum64()
}
