package interfere

import (
	"reflect"
	"testing"

	"repro/internal/cpu"
	"repro/internal/lbr"
	"repro/internal/mem"
)

func newCore() *cpu.Core {
	return cpu.New(cpu.Config{}, mem.New())
}

// exercise drives inj through a fixed hook sequence resembling one
// attack iteration: victim steps, probe steps, and LBR reads.
func exercise(inj *Injector) {
	recs := []lbr.Record{
		{From: 0x40_0000, To: 0x40_0100, Cycles: 12},
		{From: 0x40_0100, To: 0x40_0200, Cycles: 9},
		{From: 0x40_0200, To: 0x40_0300, Cycles: 31},
	}
	for round := 0; round < 50; round++ {
		for i := 0; i < 40; i++ {
			inj.VictimTick()
		}
		for i := 0; i < 25; i++ {
			inj.ProbeStep()
		}
		inj.Records(recs)
	}
}

func TestScheduleReproducible(t *testing.T) {
	cfg := Config{
		InterruptRate:  0.05,
		CoRunnerRate:   0.02,
		PolluterJumps:  16,
		RecordLossRate: 0.1,
		FlushRate:      0.02,
		OutlierRate:    0.1,
	}
	a := New(cfg, newCore(), 99)
	b := New(cfg, newCore(), 99)
	exercise(a)
	exercise(b)
	if len(a.Trace()) == 0 {
		t.Fatal("no events delivered at these rates — the exercise is too small")
	}
	if !reflect.DeepEqual(a.Trace(), b.Trace()) {
		t.Fatalf("same (cfg, seed) produced different traces:\n%v\nvs\n%v", a.Trace(), b.Trace())
	}
	if HashEvents(0, a.Trace()) != HashEvents(0, b.Trace()) {
		t.Fatal("trace hashes differ for identical traces")
	}

	c := New(cfg, newCore(), 100)
	exercise(c)
	if reflect.DeepEqual(a.Trace(), c.Trace()) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestClassStreamsIndependent(t *testing.T) {
	// Raising the outlier rate must not move the interrupt schedule:
	// each class draws from its own stream.
	base := Config{InterruptRate: 0.05}
	more := Config{InterruptRate: 0.05, OutlierRate: 0.5}
	a := New(base, newCore(), 7)
	b := New(more, newCore(), 7)
	exercise(a)
	exercise(b)
	filter := func(evs []Event) []Event {
		var out []Event
		for _, e := range evs {
			if e.Class == ClassInterrupt {
				out = append(out, e)
			}
		}
		return out
	}
	ia, ib := filter(a.Trace()), filter(b.Trace())
	if len(ia) == 0 {
		t.Fatal("no interrupts delivered")
	}
	if !reflect.DeepEqual(ia, ib) {
		t.Fatalf("interrupt schedule moved when outlier rate changed:\n%v\nvs\n%v", ia, ib)
	}
}

func TestDisabledDrawsNothing(t *testing.T) {
	inj := New(Config{}, newCore(), 42)
	recs := []lbr.Record{{From: 1, To: 2, Cycles: 3}}
	for i := 0; i < 1000; i++ {
		inj.VictimTick()
		inj.ProbeStep()
		if out := inj.Records(recs); len(out) != 1 || out[0] != recs[0] {
			t.Fatal("disabled injector mutated the records")
		}
	}
	if inj.Events() != 0 {
		t.Fatalf("disabled injector delivered %d events", inj.Events())
	}
	for cl := Class(0); cl < numClasses; cl++ {
		if inj.draws[cl] != 0 {
			t.Fatalf("disabled injector drew %d times from the %v stream", inj.draws[cl], cl)
		}
	}
}

func TestPolluterPreservesArchState(t *testing.T) {
	core := newCore()
	cfg := Config{CoRunnerRate: 1, PolluterJumps: 32}
	inj := New(cfg, core, 1)

	st := cpu.ArchState{PC: 0x1234}
	st.Regs[3] = 0xDEAD
	core.ContextSwitch(nil, &st)
	before := core.Retired()

	inj.VictimTick() // rate 1 → polluter slice fires

	var now cpu.ArchState
	core.ContextSwitch(&now, &st)
	if now.PC != 0x1234 || now.Regs[3] != 0xDEAD {
		t.Fatalf("polluter clobbered architectural state: %+v", now)
	}
	if core.Retired() == before {
		t.Fatal("polluter did not execute")
	}
	if got, want := inj.Events(), uint64(1); got != want {
		t.Fatalf("events = %d, want %d", got, want)
	}
	if ev := inj.Trace()[0]; ev.Class != ClassCoRunner || ev.Arg != 32 {
		t.Fatalf("unexpected event %+v", ev)
	}
	// The polluter's jumps must have allocated BTB entries.
	if core.BTB.ValidCount() == 0 {
		t.Fatal("polluter allocated no BTB entries")
	}
}

func TestOutlierMagnitudeBounded(t *testing.T) {
	inj := New(Config{OutlierRate: 1}, newCore(), 5)
	lim := inj.cfg.OutlierScale * 64
	seen := uint64(0)
	for i := 0; i < 5000; i++ {
		m := inj.outlierMagnitude()
		if float64(m) > lim {
			t.Fatalf("outlier %d exceeds cap %f", m, lim)
		}
		if m > seen {
			seen = m
		}
	}
	// Heavy tail: the max over 5000 draws should be far beyond scale.
	if seen < uint64(inj.cfg.OutlierScale*4) {
		t.Fatalf("max outlier %d suspiciously small — tail not heavy", seen)
	}
}

func TestClassConfig(t *testing.T) {
	for _, name := range Classes() {
		cfg, err := ClassConfig(name, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if !cfg.Enabled() {
			t.Fatalf("ClassConfig(%q) not enabled", name)
		}
	}
	if _, err := ClassConfig("gamma-rays", 0.1); err == nil {
		t.Fatal("unknown class accepted")
	}
}
