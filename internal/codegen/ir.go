// Package codegen compiles a small imperative IR to the simulator ISA.
//
// It stands in for the gcc toolchain of the paper's evaluation: victims
// (mbedTLS-style GCD, IPP-style bn_cmp) and the synthetic function
// corpus are written once in IR and compiled at -O0/-O2/-O3 analogs.
// Optimization levels change instruction selection, code length and
// layout — which is exactly the effect Figure 13 (right) measures on
// fingerprint similarity.
package codegen

import "fmt"

// Func is one IR function. Arguments arrive in registers r1..r3 and the
// return value leaves in r0 (see the calling convention in compile.go).
type Func struct {
	Name   string
	Params []string
	Body   []Stmt
}

// Stmt is an IR statement.
type Stmt interface{ stmt() }

// Assign stores the value of Expr into the named variable.
type Assign struct {
	Dst  string
	Expr Expr
}

// If branches on Cond.
type If struct {
	Cond Cond
	Then []Stmt
	Else []Stmt
}

// While loops while Cond holds.
type While struct {
	Cond Cond
	Body []Stmt
}

// Return exits the function with the value of Expr.
type Return struct {
	Expr Expr
}

// Yield emits a sched_yield syscall: the paper's proof-of-concept
// victims yield after each protected branch body so the attacker can
// probe per loop iteration (§7.2).
type Yield struct{}

func (Assign) stmt() {}
func (If) stmt()     {}
func (While) stmt()  {}
func (Return) stmt() {}
func (Yield) stmt()  {}

// Expr is an IR expression over 64-bit integers.
type Expr interface{ expr() }

// Var reads a variable.
type Var struct{ Name string }

// Const is an integer literal.
type Const struct{ Value int64 }

// Bin applies a binary operator.
type Bin struct {
	Op   BinOp
	A, B Expr
}

func (Var) expr()   {}
func (Const) expr() {}
func (Bin) expr()   {}

// BinOp enumerates binary operators.
type BinOp uint8

// Binary operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
)

func (op BinOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpAnd:
		return "&"
	case OpOr:
		return "|"
	case OpXor:
		return "^"
	case OpShl:
		return "<<"
	case OpShr:
		return ">>"
	}
	return "?"
}

// Rel enumerates comparison relations for conditions. Comparisons are
// unsigned, matching the bignum semantics of the victims.
type Rel uint8

// Relations.
const (
	RelEq Rel = iota
	RelNe
	RelLt
	RelLe
	RelGt
	RelGe
)

// Cond is a conditional test A rel B.
type Cond struct {
	A   Expr
	Rel Rel
	B   Expr
}

// Helper constructors keep victim definitions compact.

// V reads variable name.
func V(name string) Expr { return Var{Name: name} }

// C is an integer literal.
func C(v int64) Expr { return Const{Value: v} }

// B applies op to a and b.
func B(op BinOp, a, b Expr) Expr { return Bin{Op: op, A: a, B: b} }

// Set assigns expr to dst.
func Set(dst string, e Expr) Stmt { return Assign{Dst: dst, Expr: e} }

// Cmp builds a condition.
func Cmp(a Expr, rel Rel, b Expr) Cond { return Cond{A: a, Rel: rel, B: b} }

// Validate checks structural well-formedness: every variable is
// assigned or a parameter before use, and expressions are non-nil.
func (f *Func) Validate() error {
	defined := map[string]bool{}
	for _, p := range f.Params {
		defined[p] = true
	}
	return validateBlock(f.Body, defined)
}

func validateBlock(body []Stmt, defined map[string]bool) error {
	for _, st := range body {
		switch s := st.(type) {
		case Assign:
			if err := validateExpr(s.Expr, defined); err != nil {
				return err
			}
			defined[s.Dst] = true
		case If:
			if err := validateCond(s.Cond, defined); err != nil {
				return err
			}
			// Optimistic: definitions inside arms escape (the victims
			// assign in both arms and read after the join).
			if err := validateBlock(s.Then, defined); err != nil {
				return err
			}
			if err := validateBlock(s.Else, defined); err != nil {
				return err
			}
		case While:
			if err := validateCond(s.Cond, defined); err != nil {
				return err
			}
			if err := validateBlock(s.Body, defined); err != nil {
				return err
			}
		case Return:
			if err := validateExpr(s.Expr, defined); err != nil {
				return err
			}
		case Yield:
		default:
			return fmt.Errorf("codegen: unknown statement %T", st)
		}
	}
	return nil
}

func validateCond(c Cond, defined map[string]bool) error {
	if err := validateExpr(c.A, defined); err != nil {
		return err
	}
	return validateExpr(c.B, defined)
}

func validateExpr(e Expr, defined map[string]bool) error {
	switch x := e.(type) {
	case Var:
		if !defined[x.Name] {
			return fmt.Errorf("codegen: variable %q used before assignment", x.Name)
		}
		return nil
	case Const:
		return nil
	case Bin:
		if err := validateExpr(x.A, defined); err != nil {
			return err
		}
		return validateExpr(x.B, defined)
	case nil:
		return fmt.Errorf("codegen: nil expression")
	default:
		return fmt.Errorf("codegen: unknown expression %T", e)
	}
}

// Vars returns every variable name referenced by the function, params
// first, in first-appearance order.
func (f *Func) Vars() []string {
	seen := map[string]bool{}
	var out []string
	add := func(name string) {
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	for _, p := range f.Params {
		add(p)
	}
	var walkExpr func(Expr)
	walkExpr = func(e Expr) {
		switch x := e.(type) {
		case Var:
			add(x.Name)
		case Bin:
			walkExpr(x.A)
			walkExpr(x.B)
		}
	}
	var walkBlock func([]Stmt)
	walkBlock = func(body []Stmt) {
		for _, st := range body {
			switch s := st.(type) {
			case Assign:
				walkExpr(s.Expr)
				add(s.Dst)
			case If:
				walkExpr(s.Cond.A)
				walkExpr(s.Cond.B)
				walkBlock(s.Then)
				walkBlock(s.Else)
			case While:
				walkExpr(s.Cond.A)
				walkExpr(s.Cond.B)
				walkBlock(s.Body)
			case Return:
				walkExpr(s.Expr)
			}
		}
	}
	walkBlock(f.Body)
	return out
}
