package codegen

import "fmt"

// Interpret executes an IR function directly in Go, with the same
// semantics the compiled code must have (64-bit unsigned arithmetic,
// shift amounts mod 64, unsigned comparisons). It is the differential-
// testing oracle: TestQuickCompiledMatchesInterpreter runs random
// corpus functions both ways and demands identical results.
func Interpret(f *Func, args []uint64) (uint64, error) {
	if err := f.Validate(); err != nil {
		return 0, err
	}
	if len(args) != len(f.Params) {
		return 0, fmt.Errorf("codegen: %s wants %d args, got %d", f.Name, len(f.Params), len(args))
	}
	env := make(map[string]uint64)
	for i, p := range f.Params {
		env[p] = args[i]
	}
	it := &interp{env: env}
	ret, returned, err := it.block(f.Body)
	if err != nil {
		return 0, err
	}
	if !returned {
		return 0, nil // the compiler's implicit `return 0`
	}
	return ret, nil
}

type interp struct {
	env   map[string]uint64
	steps int
}

// interpBudget bounds runaway loops; corpus loops are all bounded, so
// hitting this means a generator or interpreter bug.
const interpBudget = 10_000_000

func (it *interp) block(body []Stmt) (ret uint64, returned bool, err error) {
	for _, st := range body {
		it.steps++
		if it.steps > interpBudget {
			return 0, false, fmt.Errorf("codegen: interpreter budget exceeded")
		}
		switch s := st.(type) {
		case Assign:
			v, err := it.expr(s.Expr)
			if err != nil {
				return 0, false, err
			}
			it.env[s.Dst] = v
		case Return:
			v, err := it.expr(s.Expr)
			if err != nil {
				return 0, false, err
			}
			return v, true, nil
		case If:
			ok, err := it.cond(s.Cond)
			if err != nil {
				return 0, false, err
			}
			arm := s.Else
			if ok {
				arm = s.Then
			}
			ret, returned, err = it.block(arm)
			if err != nil || returned {
				return ret, returned, err
			}
		case While:
			for {
				it.steps++
				if it.steps > interpBudget {
					return 0, false, fmt.Errorf("codegen: interpreter budget exceeded")
				}
				ok, err := it.cond(s.Cond)
				if err != nil {
					return 0, false, err
				}
				if !ok {
					break
				}
				ret, returned, err = it.block(s.Body)
				if err != nil || returned {
					return ret, returned, err
				}
			}
		case Yield:
			// no scheduling semantics under interpretation
		default:
			return 0, false, fmt.Errorf("codegen: interpreter: unknown statement %T", st)
		}
	}
	return 0, false, nil
}

func (it *interp) cond(c Cond) (bool, error) {
	a, err := it.expr(c.A)
	if err != nil {
		return false, err
	}
	b, err := it.expr(c.B)
	if err != nil {
		return false, err
	}
	switch c.Rel {
	case RelEq:
		return a == b, nil
	case RelNe:
		return a != b, nil
	case RelLt:
		return a < b, nil
	case RelLe:
		return a <= b, nil
	case RelGt:
		return a > b, nil
	case RelGe:
		return a >= b, nil
	}
	return false, fmt.Errorf("codegen: interpreter: unknown relation %d", c.Rel)
}

func (it *interp) expr(e Expr) (uint64, error) {
	switch x := e.(type) {
	case Var:
		return it.env[x.Name], nil
	case Const:
		return uint64(x.Value), nil
	case Bin:
		a, err := it.expr(x.A)
		if err != nil {
			return 0, err
		}
		b, err := it.expr(x.B)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case OpAdd:
			return a + b, nil
		case OpSub:
			return a - b, nil
		case OpMul:
			return a * b, nil
		case OpDiv:
			if b == 0 {
				return 0, fmt.Errorf("codegen: interpreter: divide by zero")
			}
			return a / b, nil
		case OpAnd:
			return a & b, nil
		case OpOr:
			return a | b, nil
		case OpXor:
			return a ^ b, nil
		case OpShl:
			return a << (b & 63), nil
		case OpShr:
			return a >> (b & 63), nil
		}
		return 0, fmt.Errorf("codegen: interpreter: unknown operator %v", x.Op)
	}
	return 0, fmt.Errorf("codegen: interpreter: unknown expression %T", e)
}
