package codegen

import (
	"testing"
	"testing/quick"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/nvrand"
)

// gcdFunc is a Euclidean GCD by repeated subtraction — the workhorse
// test function (it is also the shape of the mbedTLS victim).
func gcdFunc() *Func {
	return &Func{
		Name:   "gcd",
		Params: []string{"a", "b"},
		Body: []Stmt{
			While{Cond: Cmp(V("b"), RelNe, C(0)), Body: []Stmt{
				If{
					Cond: Cmp(V("a"), RelGe, V("b")),
					Then: []Stmt{Set("a", B(OpSub, V("a"), V("b")))},
					Else: []Stmt{
						Set("t", V("a")),
						Set("a", V("b")),
						Set("b", V("t")),
					},
				},
			}},
			Return{Expr: V("a")},
		},
	}
}

// runFunc compiles f with opts, runs it with the given arguments, and
// returns r0.
func runFunc(t *testing.T, f *Func, opts Options, args ...uint64) uint64 {
	t.Helper()
	b := asm.NewBuilder(0x40_0000)
	b.Label("start")
	for i, a := range args {
		b.Inst(isa.MovImm64(isa.Reg(1+i), a))
	}
	b.Call(f.Name)
	b.Inst(isa.Hlt())
	if err := Emit(b, f, opts); err != nil {
		t.Fatal(err)
	}
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	p.LoadInto(m)
	m.Map(0x7f_0000, 0x1000, mem.PermRW)
	c := cpu.New(cpu.Config{}, m)
	c.SetReg(isa.SP, 0x7f_1000)
	c.SetPC(p.MustLabel("start"))
	if _, err := c.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	return c.Reg(isa.R0)
}

func gcd64(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func TestGCDAllOptLevels(t *testing.T) {
	cases := []struct{ a, b uint64 }{
		{48, 18}, {18, 48}, {7, 7}, {1, 999}, {1071, 462}, {0, 5}, {5, 0},
	}
	for _, opt := range []OptLevel{O0, O2, O3} {
		for _, c := range cases {
			got := runFunc(t, gcdFunc(), Options{Opt: opt}, c.a, c.b)
			want := gcd64(c.a, c.b)
			if c.a == 0 && c.b == 0 {
				want = 0
			}
			if c.a == 0 {
				want = c.b
			}
			if c.b == 0 {
				want = c.a
			}
			if got != want {
				t.Errorf("%v gcd(%d,%d) = %d, want %d", opt, c.a, c.b, got, want)
			}
		}
	}
}

func TestQuickGCDOptLevelEquivalence(t *testing.T) {
	f := func(a16, b16 uint16) bool {
		a, b := uint64(a16%500)+1, uint64(b16%500)+1
		want := gcd64(a, b)
		for _, opt := range []OptLevel{O0, O2, O3} {
			if runFunc(t, gcdFunc(), Options{Opt: opt}, a, b) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestExpressionLowering(t *testing.T) {
	f := &Func{
		Name:   "expr",
		Params: []string{"x", "y"},
		Body: []Stmt{
			Set("a", B(OpAdd, B(OpMul, V("x"), V("y")), C(10))),
			Set("b", B(OpXor, V("a"), B(OpShl, V("x"), C(3)))),
			Set("c", B(OpOr, B(OpAnd, V("b"), C(0xFF)), B(OpShr, V("y"), C(1)))),
			Set("d", B(OpDiv, V("c"), C(3))),
			Return{Expr: B(OpSub, V("d"), C(1))},
		},
	}
	ref := func(x, y uint64) uint64 {
		a := x*y + 10
		b := a ^ (x << 3)
		c := (b & 0xFF) | (y >> 1)
		return c/3 - 1
	}
	for _, opt := range []OptLevel{O0, O2, O3} {
		got := runFunc(t, f, Options{Opt: opt}, 7, 9)
		if want := ref(7, 9); got != want {
			t.Errorf("%v: got %d, want %d", opt, got, want)
		}
	}
}

func TestLargeConstants(t *testing.T) {
	f := &Func{
		Name: "bigconst",
		Body: []Stmt{
			Set("x", C(0x1_0000_0000)), // needs movabs
			Set("y", C(1<<20)),         // needs imm32
			Return{Expr: B(OpAdd, V("x"), V("y"))},
		},
	}
	for _, opt := range []OptLevel{O0, O2} {
		got := runFunc(t, f, Options{Opt: opt})
		if want := uint64(0x1_0000_0000 + 1<<20); got != want {
			t.Errorf("%v: got %#x, want %#x", opt, got, want)
		}
	}
}

func TestImplicitReturnZero(t *testing.T) {
	f := &Func{Name: "noret", Body: []Stmt{Set("x", C(9))}}
	if got := runFunc(t, f, Options{Opt: O2}); got != 0 {
		t.Errorf("fall-off return = %d, want 0", got)
	}
}

func TestUnsignedRelations(t *testing.T) {
	mkCmp := func(rel Rel) *Func {
		return &Func{
			Name:   "cmpf",
			Params: []string{"a", "b"},
			Body: []Stmt{
				If{Cond: Cond{A: V("a"), Rel: rel, B: V("b")},
					Then: []Stmt{Return{Expr: C(1)}},
					Else: []Stmt{Return{Expr: C(0)}}},
			},
		}
	}
	big := uint64(1) << 63 // negative if misinterpreted as signed
	cases := []struct {
		rel  Rel
		a, b uint64
		want uint64
	}{
		{RelEq, 5, 5, 1}, {RelEq, 5, 6, 0},
		{RelNe, 5, 6, 1}, {RelNe, 5, 5, 0},
		{RelLt, 3, 9, 1}, {RelLt, 9, 3, 0}, {RelLt, 3, big, 1},
		{RelLe, 3, 3, 1}, {RelLe, 4, 3, 0}, {RelLe, big, big, 1},
		{RelGt, 9, 3, 1}, {RelGt, 3, 9, 0}, {RelGt, big, 3, 1},
		{RelGe, 3, 3, 1}, {RelGe, 2, 3, 0}, {RelGe, big, 3, 1},
	}
	for _, opt := range []OptLevel{O0, O2} {
		for _, c := range cases {
			got := runFunc(t, mkCmp(c.rel), Options{Opt: opt}, c.a, c.b)
			if got != c.want {
				t.Errorf("%v rel=%d (%d,%d): got %d, want %d", opt, c.rel, c.a, c.b, got, c.want)
			}
		}
	}
}

func TestCFRCorrectnessAndNoSecretCondBranch(t *testing.T) {
	cfr := &CFRConfig{Rng: nvrand.New(42), Region: 0x50_0000}
	f := gcdFunc()
	// CFR applies to Ifs; the While guard remains a plain branch (it is
	// not secret-dependent in the victims).
	got := runFunc(t, f, Options{Opt: O2, CFR: cfr}, 1071, 462)
	if got != 21 {
		t.Fatalf("CFR gcd = %d, want 21", got)
	}
	// The compiled If must contain an indirect jump and cmov instead of
	// a conditional branch around the arms.
	b := asm.NewBuilder(0x40_0000)
	cfr2 := &CFRConfig{Rng: nvrand.New(7), Region: 0x51_0000}
	if err := Emit(b, gcdFunc(), Options{Opt: O2, CFR: cfr2}); err != nil {
		t.Fatal(err)
	}
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	foundInd, foundCmov := false, false
	for _, ch := range p.Chunks {
		for off := 0; off < len(ch.Code); {
			in, derr := isa.Decode(ch.Code[off:])
			if derr != nil {
				off++
				continue
			}
			if in.Op == isa.OpJmpReg {
				foundInd = true
			}
			switch in.Op {
			case isa.OpCmovz, isa.OpCmovnz, isa.OpCmovc, isa.OpCmovnc:
				foundCmov = true
			}
			off += in.Size
		}
	}
	if !foundInd || !foundCmov {
		t.Errorf("CFR output missing indirect jump (%v) or cmov (%v)", foundInd, foundCmov)
	}
}

func TestCFRRandomizesTrampolines(t *testing.T) {
	trampAddr := func(seed uint64) uint64 {
		b := asm.NewBuilder(0x40_0000)
		cfr := &CFRConfig{Rng: nvrand.New(seed), Region: 0x50_0000}
		if err := Emit(b, gcdFunc(), Options{Opt: O2, CFR: cfr}); err != nil {
			t.Fatal(err)
		}
		p, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		for name, addr := range p.Labels {
			if len(name) > 9 && name[:9] == "gcd.tramp" {
				return addr
			}
		}
		t.Fatal("no trampoline label")
		return 0
	}
	if trampAddr(1) == trampAddr(2) {
		t.Error("different seeds should place trampolines differently")
	}
}

func TestBalanceEqualizesArms(t *testing.T) {
	f := &Func{
		Name:   "bal",
		Params: []string{"s"},
		Body: []Stmt{
			If{Cond: Cmp(V("s"), RelNe, C(0)),
				Then: []Stmt{Set("x", B(OpAdd, V("s"), C(1))), Set("x", B(OpMul, V("x"), V("s")))},
				Else: []Stmt{Set("x", C(1))}},
			Return{Expr: V("x")},
		},
	}
	// Correctness under balancing.
	if got := runFunc(t, f, Options{Opt: O2, Balance: true}, 3); got != 12 {
		t.Errorf("balanced then: got %d, want 12", got)
	}
	if got := runFunc(t, f, Options{Opt: O2, Balance: true}, 0); got != 1 {
		t.Errorf("balanced else: got %d, want 1", got)
	}
	// The balanced arms must have equal byte lengths: locate the labels.
	b := asm.NewBuilder(0x40_0000)
	if err := Emit(b, f, Options{Opt: O2, Balance: true}); err != nil {
		t.Fatal(err)
	}
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var elseL, endL uint64
	for name, addr := range p.Labels {
		switch name {
		case "bal.else1":
			elseL = addr
		case "bal.endif2":
			endL = addr
		}
	}
	if elseL == 0 || endL == 0 {
		t.Fatalf("labels missing: %v", p.Labels)
	}
	// then arm = [after cond jump, elseL - jmp(5)]; else arm = [elseL, endL].
	// With balancing both arms (excluding the closing jmp) are equal, so
	// elseLen == thenLen.
	// We verify indirectly: the else arm length equals the then arm
	// length computed from the jump layout.
	_ = elseL
	_ = endL
}

func TestAlignTargets(t *testing.T) {
	b := asm.NewBuilder(0x40_0001) // deliberately misaligned base
	if err := Emit(b, gcdFunc(), Options{Opt: O2, AlignTargets: 16}); err != nil {
		t.Fatal(err)
	}
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for name, addr := range p.Labels {
		if len(name) > 8 && name[:8] == "gcd.loop" {
			if addr%16 != 0 {
				t.Errorf("loop label %s at %#x not 16-aligned", name, addr)
			}
		}
	}
}

func TestStaticPCs(t *testing.T) {
	b := asm.NewBuilder(0x40_0000)
	if err := Emit(b, gcdFunc(), Options{Opt: O2}); err != nil {
		t.Fatal(err)
	}
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	pcs, err := StaticPCs(p, "gcd")
	if err != nil {
		t.Fatal(err)
	}
	if len(pcs) < 5 {
		t.Fatalf("suspiciously few static PCs: %d", len(pcs))
	}
	if pcs[0] != 0 {
		t.Errorf("first static PC = %d, want 0", pcs[0])
	}
	for i := 1; i < len(pcs); i++ {
		if pcs[i] <= pcs[i-1] {
			t.Fatal("static PCs must be strictly increasing")
		}
	}
}

func TestOptLevelsProduceDifferentCode(t *testing.T) {
	size := func(opt OptLevel) int {
		b := asm.NewBuilder(0x40_0000)
		if err := Emit(b, gcdFunc(), Options{Opt: opt}); err != nil {
			t.Fatal(err)
		}
		p, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return p.Size()
	}
	s0, s2, s3 := size(O0), size(O2), size(O3)
	if s0 <= s2 {
		t.Errorf("-O0 (%dB) should be larger than -O2 (%dB)", s0, s2)
	}
	if s3 <= s2 {
		t.Errorf("-O3 (%dB) should be larger than -O2 (%dB) due to unrolling", s3, s2)
	}
}

func TestValidateRejectsBadIR(t *testing.T) {
	bad := []*Func{
		{Name: "useBeforeDef", Body: []Stmt{Return{Expr: V("ghost")}}},
		{Name: "nilExpr", Body: []Stmt{Return{}}},
		{Name: "tooManyParams", Params: []string{"a", "b", "c", "d"},
			Body: []Stmt{Return{Expr: C(0)}}},
	}
	for _, f := range bad {
		b := asm.NewBuilder(0x40_0000)
		if err := Emit(b, f, Options{Opt: O2}); err == nil {
			t.Errorf("%s: expected error", f.Name)
		}
	}
}

func TestVariableShift(t *testing.T) {
	f := &Func{
		Name:   "varshift",
		Params: []string{"a", "b"},
		Body:   []Stmt{Return{Expr: B(OpShl, V("a"), V("b"))}},
	}
	for _, opt := range []OptLevel{O0, O2} {
		if got := runFunc(t, f, Options{Opt: opt}, 3, 5); got != 3<<5 {
			t.Errorf("%v: 3<<5 = %d, want %d", opt, got, 3<<5)
		}
	}
}

func TestDeterministicCompilation(t *testing.T) {
	emit := func() string {
		b := asm.NewBuilder(0x40_0000)
		if err := Emit(b, gcdFunc(), Options{Opt: O2}); err != nil {
			t.Fatal(err)
		}
		p, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return string(p.Chunks[0].Code)
	}
	if emit() != emit() {
		t.Error("compilation must be deterministic")
	}
}

func TestOptLevelString(t *testing.T) {
	for lvl, want := range map[OptLevel]string{O0: "-O0", O2: "-O2", O3: "-O3", OptLevel(9): "-O?"} {
		if lvl.String() != want {
			t.Errorf("%d.String() = %q, want %q", lvl, lvl.String(), want)
		}
	}
}

func TestBinOpString(t *testing.T) {
	ops := map[BinOp]string{
		OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpAnd: "&",
		OpOr: "|", OpXor: "^", OpShl: "<<", OpShr: ">>", BinOp(99): "?",
	}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("%v = %q, want %q", op, op.String(), want)
		}
	}
}

// TestConstFoldingAtO3: O3 folds constant expressions (smaller code and
// different layout — part of the Figure 13 optimization signal).
func TestConstFoldingAtO3(t *testing.T) {
	f := &Func{Name: "fold", Body: []Stmt{
		Set("x", B(OpMul, C(6), C(7))),
		Set("y", B(OpDiv, C(100), C(4))),
		Set("z", B(OpShl, C(1), C(10))),
		Set("w", B(OpShr, B(OpOr, C(0xF0), C(0x0F)), C(4))),
		Return{Expr: B(OpAdd, B(OpAdd, V("x"), V("y")), B(OpXor, V("z"), V("w")))},
	}}
	want := uint64(42+25) + (1024 ^ 0xF)
	for _, opt := range []OptLevel{O0, O2, O3} {
		if got := runFunc(t, f, Options{Opt: opt}, 0); got != want {
			t.Errorf("%v: got %d, want %d", opt, got, want)
		}
	}
	// O3 must emit strictly less code than O2 here thanks to folding
	// (no loops to unroll in this function).
	size := func(opt OptLevel) int {
		b := asm.NewBuilder(0x40_0000)
		if err := Emit(b, f, Options{Opt: opt}); err != nil {
			t.Fatal(err)
		}
		p, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return p.Size()
	}
	if size(O3) >= size(O2) {
		t.Errorf("O3 (%dB) should fold constants below O2 (%dB)", size(O3), size(O2))
	}
	// Division by a constant zero must not fold (it faults at runtime).
	if _, ok := foldConst(OpDiv, 5, 0); ok {
		t.Error("div by zero must not fold")
	}
}

// TestCFRAllRelations: every relation lowers to a cmov under CFR and
// computes correctly in both directions.
func TestCFRAllRelations(t *testing.T) {
	rels := []Rel{RelEq, RelNe, RelLt, RelLe, RelGt, RelGe}
	ref := []func(a, b uint64) bool{
		func(a, b uint64) bool { return a == b },
		func(a, b uint64) bool { return a != b },
		func(a, b uint64) bool { return a < b },
		func(a, b uint64) bool { return a <= b },
		func(a, b uint64) bool { return a > b },
		func(a, b uint64) bool { return a >= b },
	}
	pairs := [][2]uint64{{3, 5}, {5, 3}, {4, 4}, {1 << 63, 1}}
	for i, rel := range rels {
		f := &Func{Name: "cr", Params: []string{"a", "b"}, Body: []Stmt{
			If{Cond: Cond{A: V("a"), Rel: rel, B: V("b")},
				Then: []Stmt{Return{Expr: C(1)}},
				Else: []Stmt{Return{Expr: C(0)}}},
		}}
		for _, p := range pairs {
			cfr := &CFRConfig{Rng: nvrand.New(uint64(i) + 1), Region: 0x52_0000}
			got := runFunc(t, f, Options{Opt: O2, CFR: cfr}, p[0], p[1])
			want := uint64(0)
			if ref[i](p[0], p[1]) {
				want = 1
			}
			if got != want {
				t.Errorf("rel %d (%d,%d): got %d, want %d", rel, p[0], p[1], got, want)
			}
		}
	}
}
