package codegen

import (
	"testing"
	"testing/quick"
)

func TestInterpretGCD(t *testing.T) {
	got, err := Interpret(gcdFunc(), []uint64{1071, 462})
	if err != nil {
		t.Fatal(err)
	}
	if got != 21 {
		t.Errorf("Interpret gcd = %d, want 21", got)
	}
}

func TestInterpretErrors(t *testing.T) {
	if _, err := Interpret(gcdFunc(), []uint64{1}); err == nil {
		t.Error("arity mismatch should error")
	}
	div0 := &Func{Name: "d", Params: []string{"a"},
		Body: []Stmt{Return{Expr: B(OpDiv, C(1), B(OpSub, V("a"), V("a")))}}}
	if _, err := Interpret(div0, []uint64{5}); err == nil {
		t.Error("divide by zero should error")
	}
	endless := &Func{Name: "e",
		Body: []Stmt{Set("x", C(1)), While{Cond: Cmp(V("x"), RelNe, C(0)), Body: []Stmt{Set("x", C(1))}}}}
	if _, err := Interpret(endless, nil); err == nil {
		t.Error("endless loop should trip the budget")
	}
}

func TestInterpretImplicitReturn(t *testing.T) {
	f := &Func{Name: "n", Body: []Stmt{Set("x", C(7))}}
	got, err := Interpret(f, nil)
	if err != nil || got != 0 {
		t.Errorf("implicit return = %d, %v", got, err)
	}
}

// TestQuickCompiledMatchesInterpreter is the differential test anchoring
// the whole evaluation: every compiled victim/corpus function computes
// exactly what the IR means, at every optimization level. The corpus
// generator supplies structurally diverse programs.
func TestQuickCompiledMatchesInterpreter(t *testing.T) {
	f := func(seed uint64, a0, a1, a2 uint64) bool {
		fn := corpusLikeFunc(seed)
		args := []uint64{a0 | 1, a1 | 1, a2 | 1}[:len(fn.Params)]
		want, err := Interpret(fn, args)
		if err != nil {
			// Division by a zero-valued expression is legal IR but
			// errors identically on both sides; skip such draws.
			return true
		}
		for _, opt := range []OptLevel{O0, O2, O3} {
			got := runFunc(t, fn, Options{Opt: opt}, args...)
			if got != want {
				t.Logf("seed %d %v: compiled %d, interpreted %d", seed, opt, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// corpusLikeFunc builds a deterministic random function without
// importing internal/victim (which would create an import cycle in
// tests); the shape mirrors the corpus generator.
func corpusLikeFunc(seed uint64) *Func {
	// splitmix64 steps, kept local to avoid the cycle.
	next := func() uint64 {
		seed += 0x9E3779B97F4A7C15
		z := seed
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	vars := []string{"p0", "p1", "p2"}
	pick := func() Expr { return V(vars[next()%uint64(len(vars))]) }
	expr := func() Expr {
		ops := []BinOp{OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor}
		switch next() % 5 {
		case 0:
			return C(int64(next() % 1000))
		case 1:
			return pick()
		case 2:
			return B(OpShr, pick(), C(int64(next()%7+1)))
		case 3:
			return B(OpDiv, pick(), C(int64(next()%100+1)))
		default:
			return B(ops[next()%uint64(len(ops))], pick(), pick())
		}
	}
	rels := []Rel{RelEq, RelNe, RelLt, RelLe, RelGt, RelGe}
	body := []Stmt{}
	for i := 0; i < int(next()%4)+2; i++ {
		switch next() % 4 {
		case 0:
			body = append(body, If{
				Cond: Cmp(expr(), rels[next()%uint64(len(rels))], expr()),
				Then: []Stmt{Set(vars[next()%3], expr())},
				Else: []Stmt{Set(vars[next()%3], expr())},
			})
		case 1:
			cnt := "i" + string(rune('0'+i))
			body = append(body,
				Set(cnt, C(int64(next()%5+1))),
				While{Cond: Cmp(V(cnt), RelNe, C(0)), Body: []Stmt{
					Set(vars[next()%3], expr()),
					Set(cnt, B(OpSub, V(cnt), C(1))),
				}})
		default:
			body = append(body, Set(vars[next()%3], expr()))
		}
	}
	body = append(body, Return{Expr: expr()})
	return &Func{Name: "qf", Params: []string{"p0", "p1", "p2"}, Body: body}
}
