package codegen

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/nvrand"
)

// OptLevel selects the optimization recipe, standing in for gcc's -O
// flags in the Figure 13 experiments.
type OptLevel int

// Optimization levels.
const (
	// O0 keeps every variable in a stack slot with loads and stores
	// around each operation.
	O0 OptLevel = iota
	// O2 keeps variables in registers and uses immediate operand forms.
	O2
	// O3 is O2 plus constant folding and 2x loop unrolling.
	O3
)

func (o OptLevel) String() string {
	switch o {
	case O0:
		return "-O0"
	case O2:
		return "-O2"
	case O3:
		return "-O3"
	}
	return "-O?"
}

// CFRConfig configures control-flow randomization (Hosseinzadeh et al.,
// the paper's [25]): secret-dependent conditional branches are replaced
// by branchless target selection plus an indirect jump through a
// trampoline allocated at a randomized address per build.
type CFRConfig struct {
	// Rng drives trampoline placement; required.
	Rng *nvrand.Rand
	// Region is the base of a 64 KiB area for trampolines.
	Region uint64

	used map[uint64]bool
}

// Options bundles the code generation knobs.
type Options struct {
	Opt OptLevel
	// AlignTargets pads branch-target labels to this alignment: the
	// -falign-jumps analog of the Frontal countermeasure (§7.2).
	AlignTargets uint64
	// Balance pads the shorter arm of every If with nops until both
	// arms occupy the same byte length (branch balancing, CopyCat's
	// countermeasure).
	Balance bool
	// CFR enables control-flow randomization.
	CFR *CFRConfig
}

// Calling convention: arguments in r1..r3, return value in r0, r10..r13
// are caller-saved scratch used by the generated code, r14 is the frame
// pointer at -O0, sp (r15) is the stack pointer.
const maxParams = 3

// register plan for O2/O3.
var varRegs = []isa.Reg{isa.R1, isa.R2, isa.R3, isa.R4, isa.R5, isa.R6, isa.R7, isa.R8, isa.R9}

// Emit compiles f into b at the current location. The function's entry
// gets the label f.Name and its end f.Name+".end", so callers can slice
// the emitted range for static fingerprints.
func Emit(b *asm.Builder, f *Func, opts Options) error {
	if err := f.Validate(); err != nil {
		return err
	}
	if len(f.Params) > maxParams {
		return fmt.Errorf("codegen: %s: at most %d parameters", f.Name, maxParams)
	}
	if opts.CFR != nil {
		if opts.CFR.Rng == nil {
			return fmt.Errorf("codegen: CFR requires an Rng")
		}
		if opts.CFR.used == nil {
			opts.CFR.used = make(map[uint64]bool)
		}
	}
	body := f.Body
	if opts.Opt >= O3 {
		body = unrollBlock(body)
	}
	em := &emitter{b: b, f: f, opts: opts}
	if err := em.plan(); err != nil {
		return err
	}
	em.prologue()
	if err := em.block(body); err != nil {
		return err
	}
	// Implicit `return 0` for falling off the end.
	em.b.Inst(isa.Inst{Op: isa.OpMovImm32, Dst: isa.R0, Size: isa.OpMovImm32.Len()})
	em.label("epilogue")
	em.epilogue()
	em.b.Label(f.Name + ".end")
	return em.err
}

// unrollBlock applies 2x unrolling to every While: the body is
// duplicated behind a guard, roughly what -funroll-loops produces.
func unrollBlock(body []Stmt) []Stmt {
	out := make([]Stmt, 0, len(body))
	for _, st := range body {
		switch s := st.(type) {
		case While:
			inner := unrollBlock(s.Body)
			dup := append(append([]Stmt{}, inner...), If{Cond: s.Cond, Then: inner})
			out = append(out, While{Cond: s.Cond, Body: dup})
		case If:
			out = append(out, If{Cond: s.Cond, Then: unrollBlock(s.Then), Else: unrollBlock(s.Else)})
		default:
			out = append(out, st)
		}
	}
	return out
}

// emitter carries compilation state for one function.
type emitter struct {
	b    *asm.Builder
	f    *Func
	opts Options
	err  error

	nLabels int

	// O2/O3: variable -> register.
	regOf map[string]isa.Reg
	// O0: variable -> frame offset (negative from r14).
	slotOf map[string]int64
}

func (em *emitter) fail(format string, args ...any) {
	if em.err == nil {
		em.err = fmt.Errorf("codegen: %s: "+format, append([]any{em.f.Name}, args...)...)
	}
}

func (em *emitter) newLabel(kind string) string {
	em.nLabels++
	return fmt.Sprintf("%s.%s%d", em.f.Name, kind, em.nLabels)
}

func (em *emitter) label(name string) {
	em.b.Label(em.f.Name + "." + name)
}

// plan assigns homes to variables.
func (em *emitter) plan() error {
	vars := em.f.Vars()
	if em.opts.Opt == O0 {
		em.slotOf = make(map[string]int64)
		for i, v := range vars {
			off := int64(8 * (i + 1))
			if off > 120 {
				return fmt.Errorf("codegen: %s: too many locals for -O0 frame", em.f.Name)
			}
			em.slotOf[v] = -off
		}
		return nil
	}
	if len(vars) > len(varRegs) {
		return fmt.Errorf("codegen: %s: %d variables exceed the register budget %d", em.f.Name, len(vars), len(varRegs))
	}
	em.regOf = make(map[string]isa.Reg)
	for i, v := range vars {
		em.regOf[v] = varRegs[i]
	}
	// Params must live where the convention put them: r1..r3 in order.
	// Vars() lists params first, so this holds by construction.
	for i, p := range em.f.Params {
		if em.regOf[p] != varRegs[i] {
			return fmt.Errorf("codegen: %s: parameter register mismatch", em.f.Name)
		}
	}
	return nil
}

func (em *emitter) prologue() {
	em.b.Label(em.f.Name)
	if em.opts.Opt == O0 {
		// push fp; fp = sp; sp -= frame
		em.b.Inst(isa.Inst{Op: isa.OpPush, Dst: isa.R14, Size: 2})
		em.b.Inst(isa.Inst{Op: isa.OpMovRR, Dst: isa.R14, Src: isa.SP, Size: 2})
		frame := int64(8 * (len(em.slotOf) + 1))
		em.b.Inst(isa.Inst{Op: isa.OpSubI32, Dst: isa.SP, Imm: frame, Size: isa.OpSubI32.Len()})
		// Spill incoming parameters to their slots.
		for i, p := range em.f.Params {
			em.store(isa.Reg(1+i), p)
		}
	}
}

func (em *emitter) epilogue() {
	if em.opts.Opt == O0 {
		em.b.Inst(isa.Inst{Op: isa.OpMovRR, Dst: isa.SP, Src: isa.R14, Size: 2})
		em.b.Inst(isa.Inst{Op: isa.OpPop, Dst: isa.R14, Size: 2})
	}
	em.b.Ret()
}

// store writes reg into the variable's home.
func (em *emitter) store(src isa.Reg, name string) {
	if em.opts.Opt == O0 {
		em.b.Inst(isa.Inst{Op: isa.OpSt8, Dst: src, Src: isa.R14, Imm: em.slotOf[name], Size: 3})
		return
	}
	if home := em.regOf[name]; home != src {
		em.b.Inst(isa.Inst{Op: isa.OpMovRR, Dst: home, Src: src, Size: 2})
	}
}

// load reads the variable's home into reg.
func (em *emitter) load(dst isa.Reg, name string) {
	if em.opts.Opt == O0 {
		em.b.Inst(isa.Inst{Op: isa.OpLd8, Dst: dst, Src: isa.R14, Imm: em.slotOf[name], Size: 3})
		return
	}
	if home := em.regOf[name]; home != dst {
		em.b.Inst(isa.Inst{Op: isa.OpMovRR, Dst: dst, Src: home, Size: 2})
	}
}

func (em *emitter) block(body []Stmt) error {
	for _, st := range body {
		switch s := st.(type) {
		case Assign:
			em.eval(s.Expr, isa.R10, isa.R11)
			em.store(isa.R10, s.Dst)
		case Return:
			em.eval(s.Expr, isa.R10, isa.R11)
			em.b.Inst(isa.Inst{Op: isa.OpMovRR, Dst: isa.R0, Src: isa.R10, Size: 2})
			em.b.Jmp(em.f.Name + ".epilogue")
		case If:
			em.emitIf(s)
		case While:
			em.emitWhile(s)
		case Yield:
			em.b.Inst(isa.Syscall(1))
		default:
			em.fail("unknown statement %T", st)
		}
		if em.err != nil {
			return em.err
		}
	}
	return em.err
}

func (em *emitter) emitWhile(s While) {
	head := em.newLabel("loop")
	end := em.newLabel("endloop")
	em.alignTarget()
	em.b.Label(head)
	em.condJumpFalse(s.Cond, end)
	if em.block(s.Body) != nil {
		return
	}
	em.b.Jmp(head)
	em.alignTarget()
	em.b.Label(end)
}

func (em *emitter) emitIf(s If) {
	if em.opts.CFR != nil {
		em.emitIfCFR(s)
		return
	}
	elseL := em.newLabel("else")
	endL := em.newLabel("endif")

	// Branch balancing (CopyCat's countermeasure): pre-measure both
	// arms and pad each to the larger byte length so instruction count
	// and footprint are identical on either path.
	target := 0
	if em.opts.Balance {
		t := em.measureBlock(s.Then)
		e := em.measureBlock(s.Else)
		target = t
		if e > t {
			target = e
		}
	}

	em.condJumpFalse(s.Cond, elseL)
	tStart := em.markLen()
	if em.block(s.Then) != nil {
		return
	}
	for em.markLen()-tStart < target {
		em.b.Nop()
	}
	em.b.Jmp(endL)
	em.alignTarget()
	em.b.Label(elseL)
	eStart := em.markLen()
	if em.block(s.Else) != nil {
		return
	}
	for em.markLen()-eStart < target {
		em.b.Nop()
	}
	em.alignTarget()
	em.b.Label(endL)
}

// measureBlock emits body into a throwaway builder to learn its byte
// length without affecting the real output.
func (em *emitter) measureBlock(body []Stmt) int {
	saved := em.b
	scratch := asm.NewBuilder(saved.PC())
	em.b = scratch
	start := scratch.PC()
	_ = em.block(body)
	size := int(scratch.PC() - start)
	em.b = saved
	return size
}

// emitIfCFR lowers an If through control-flow randomization: select the
// target branchlessly with cmov, then dispatch through an indirect jump
// at a randomized trampoline address. No conditional branch with a
// secret-dependent direction remains.
func (em *emitter) emitIfCFR(s If) {
	thenL := em.newLabel("then")
	elseL := em.newLabel("else")
	endL := em.newLabel("endif")

	// r12 = &then, r13 = &else; cmov-negate picks r12 := r13 when the
	// condition fails.
	em.b.MovLabel(isa.R12, thenL, 0)
	em.b.MovLabel(isa.R13, elseL, 0)
	cmov := em.condCmovFalse(s.Cond)
	em.b.Inst(isa.Inst{Op: cmov, Dst: isa.R12, Src: isa.R13, Size: 2})

	// Dispatch through the randomized trampoline: jmp La; La: jmpr r12.
	tramp := em.allocTrampoline()
	em.b.MovLabel(isa.R11, tramp, 0)
	em.b.Inst(isa.Inst{Op: isa.OpJmpReg, Dst: isa.R11, Size: 2})

	em.alignTarget()
	em.b.Label(thenL)
	if em.block(s.Then) != nil {
		return
	}
	em.b.Jmp(endL)
	em.alignTarget()
	em.b.Label(elseL)
	if em.block(s.Else) != nil {
		return
	}
	em.alignTarget()
	em.b.Label(endL)
}

// allocTrampoline emits `jmpr r12` at a fresh random address inside the
// CFR region and returns its label.
func (em *emitter) allocTrampoline() string {
	cfg := em.opts.CFR
	var addr uint64
	for {
		addr = cfg.Region + cfg.Rng.Uint64n(1<<16)&^0xF
		if !cfg.used[addr] {
			cfg.used[addr] = true
			break
		}
	}
	label := em.newLabel("tramp")
	cur := em.b.PC()
	em.b.Org(addr)
	em.b.Label(label)
	em.b.Inst(isa.Inst{Op: isa.OpJmpReg, Dst: isa.R12, Size: 2})
	em.b.Org(cur)
	return label
}

// markLen returns the bytes emitted so far (for balancing).
func (em *emitter) markLen() int {
	return int(em.b.PC())
}

func (em *emitter) alignTarget() {
	if em.opts.AlignTargets > 1 {
		em.b.Align(em.opts.AlignTargets, byte(isa.OpNop))
	}
}

// condJumpFalse emits the condition evaluation and a jump to label when
// the condition is FALSE. Unsigned relations beyond the flag set are
// synthesized by swapping operands.
func (em *emitter) condJumpFalse(c Cond, label string) {
	a, b, rel := c.A, c.B, c.Rel
	// a <= b  <=>  !(b < a);  a > b  <=>  b < a.
	if rel == RelLe || rel == RelGt {
		a, b = b, a
		if rel == RelLe {
			rel = RelGe // jump-false on b < a
		} else {
			rel = RelLt
		}
	}
	em.evalCmp(a, b)
	var op isa.Op
	switch rel {
	case RelEq:
		op = isa.OpJnz32
	case RelNe:
		op = isa.OpJz32
	case RelLt:
		op = isa.OpJnc32 // false when !(a < b)
	case RelGe:
		op = isa.OpJc32
	default:
		em.fail("unhandled relation")
		return
	}
	em.b.Br(op, label, 0)
}

// condCmovFalse evaluates the condition and returns the cmov opcode that
// fires when the condition is FALSE.
func (em *emitter) condCmovFalse(c Cond) isa.Op {
	a, b, rel := c.A, c.B, c.Rel
	if rel == RelLe || rel == RelGt {
		a, b = b, a
		if rel == RelLe {
			rel = RelGe
		} else {
			rel = RelLt
		}
	}
	em.evalCmp(a, b)
	switch rel {
	case RelEq:
		return isa.OpCmovnz
	case RelNe:
		return isa.OpCmovz
	case RelLt:
		return isa.OpCmovnc
	case RelGe:
		return isa.OpCmovc
	}
	em.fail("unhandled relation")
	return isa.OpCmovz
}

// evalCmp computes flags for a ? b.
func (em *emitter) evalCmp(a, b Expr) {
	em.eval(a, isa.R10, isa.R11)
	if c, ok := em.constOf(b); ok && fitsImm32(c) {
		em.b.Inst(cmpImm(isa.R10, c))
		return
	}
	em.b.Inst(isa.Inst{Op: isa.OpPush, Dst: isa.R10, Size: 2})
	em.eval(b, isa.R10, isa.R11)
	em.b.Inst(isa.Inst{Op: isa.OpMovRR, Dst: isa.R11, Src: isa.R10, Size: 2})
	em.b.Inst(isa.Inst{Op: isa.OpPop, Dst: isa.R10, Size: 2})
	em.b.Inst(isa.Inst{Op: isa.OpCmpRR, Dst: isa.R10, Src: isa.R11, Size: 2})
}

func cmpImm(r isa.Reg, v int64) isa.Inst {
	if v >= -128 && v <= 127 {
		return isa.Inst{Op: isa.OpCmpI8, Dst: r, Imm: v, Size: 3}
	}
	return isa.Inst{Op: isa.OpCmpI32, Dst: r, Imm: v, Size: isa.OpCmpI32.Len()}
}

func fitsImm32(v int64) bool { return v >= -(1<<31) && v <= 1<<31-1 }

// constOf folds constants at O3.
func (em *emitter) constOf(e Expr) (int64, bool) {
	switch x := e.(type) {
	case Const:
		return x.Value, true
	case Bin:
		if em.opts.Opt < O3 {
			return 0, false
		}
		a, ok1 := em.constOf(x.A)
		b, ok2 := em.constOf(x.B)
		if !ok1 || !ok2 {
			return 0, false
		}
		return foldConst(x.Op, a, b)
	}
	return 0, false
}

func foldConst(op BinOp, a, b int64) (int64, bool) {
	switch op {
	case OpAdd:
		return a + b, true
	case OpSub:
		return a - b, true
	case OpMul:
		return a * b, true
	case OpDiv:
		if b == 0 {
			return 0, false
		}
		return int64(uint64(a) / uint64(b)), true
	case OpAnd:
		return a & b, true
	case OpOr:
		return a | b, true
	case OpXor:
		return a ^ b, true
	case OpShl:
		return int64(uint64(a) << (uint64(b) & 63)), true
	case OpShr:
		return int64(uint64(a) >> (uint64(b) & 63)), true
	}
	return 0, false
}

// eval computes e into dst, using aux as the second scratch register.
func (em *emitter) eval(e Expr, dst, aux isa.Reg) {
	if v, ok := em.constOf(e); ok {
		em.emitConst(dst, v)
		return
	}
	switch x := e.(type) {
	case Var:
		em.load(dst, x.Name)
	case Const:
		em.emitConst(dst, x.Value)
	case Bin:
		em.eval(x.A, dst, aux)
		// Immediate and register fast paths avoid the push/pop dance.
		if c, ok := em.constOf(x.B); ok {
			if em.emitOpImm(x.Op, dst, c) {
				return
			}
		}
		if v, ok := x.B.(Var); ok && em.opts.Opt >= O2 {
			em.emitOpReg(x.Op, dst, em.regOf[v.Name])
			return
		}
		em.b.Inst(isa.Inst{Op: isa.OpPush, Dst: dst, Size: 2})
		em.eval(x.B, dst, aux)
		em.b.Inst(isa.Inst{Op: isa.OpMovRR, Dst: aux, Src: dst, Size: 2})
		em.b.Inst(isa.Inst{Op: isa.OpPop, Dst: dst, Size: 2})
		em.emitOpReg(x.Op, dst, aux)
	default:
		em.fail("unknown expression %T", e)
	}
}

func (em *emitter) emitConst(dst isa.Reg, v int64) {
	if fitsImm32(v) {
		em.b.Inst(isa.Inst{Op: isa.OpMovImm32, Dst: dst, Imm: v, Size: isa.OpMovImm32.Len()})
		return
	}
	em.b.Inst(isa.MovImm64(dst, uint64(v)))
}

// emitOpImm emits dst = dst OP imm when an immediate form exists.
func (em *emitter) emitOpImm(op BinOp, dst isa.Reg, v int64) bool {
	type forms struct{ i8, i32 isa.Op }
	var f forms
	switch op {
	case OpAdd:
		f = forms{isa.OpAddI8, isa.OpAddI32}
	case OpSub:
		f = forms{isa.OpSubI8, isa.OpSubI32}
	case OpAnd:
		f = forms{isa.OpAndI8, isa.OpAndI32}
	case OpOr:
		f = forms{isa.OpOrI8, isa.OpOrI32}
	case OpXor:
		f = forms{isa.OpXorI8, isa.OpXorI32}
	case OpShl:
		em.b.Inst(isa.Inst{Op: isa.OpShlI8, Dst: dst, Imm: v & 63, Size: 3})
		return true
	case OpShr:
		em.b.Inst(isa.Inst{Op: isa.OpShrI8, Dst: dst, Imm: v & 63, Size: 3})
		return true
	default:
		return false // mul/div have no immediate forms
	}
	if v >= -128 && v <= 127 {
		em.b.Inst(isa.Inst{Op: f.i8, Dst: dst, Imm: v, Size: 3})
		return true
	}
	if fitsImm32(v) {
		em.b.Inst(isa.Inst{Op: f.i32, Dst: dst, Imm: v, Size: f.i32.Len()})
		return true
	}
	return false
}

// emitOpReg emits dst = dst OP src.
func (em *emitter) emitOpReg(op BinOp, dst, src isa.Reg) {
	var o isa.Op
	switch op {
	case OpAdd:
		o = isa.OpAddRR
	case OpSub:
		o = isa.OpSubRR
	case OpMul:
		o = isa.OpMulRR
	case OpDiv:
		o = isa.OpDivRR
	case OpAnd:
		o = isa.OpAndRR
	case OpOr:
		o = isa.OpOrRR
	case OpXor:
		o = isa.OpXorRR
	case OpShl:
		o = isa.OpShlRR
	case OpShr:
		o = isa.OpShrRR
	}
	em.b.Inst(isa.Inst{Op: o, Dst: dst, Src: src, Size: 2})
}

// StaticPCs returns the instruction start offsets (relative to the
// function label) of the emitted range [name, name+".end") — the static
// reference set used by fingerprinting.
func StaticPCs(p *asm.Program, name string) ([]uint64, error) {
	start, err := p.LabelAddr(name)
	if err != nil {
		return nil, err
	}
	end, err := p.LabelAddr(name + ".end")
	if err != nil {
		return nil, err
	}
	var chunk *asm.Chunk
	for i := range p.Chunks {
		c := &p.Chunks[i]
		if start >= c.Addr && end <= c.Addr+uint64(len(c.Code)) {
			chunk = c
			break
		}
	}
	if chunk == nil {
		return nil, fmt.Errorf("codegen: function %s spans chunks", name)
	}
	code := chunk.Code[start-chunk.Addr : end-chunk.Addr]
	var pcs []uint64
	off := uint64(0)
	for int(off) < len(code) {
		in, err := isa.Decode(code[off:])
		if err != nil {
			return nil, fmt.Errorf("codegen: undecodable byte at %s+%#x", name, off)
		}
		pcs = append(pcs, off)
		off += uint64(in.Size)
	}
	return pcs, nil
}
