package experiments

import (
	"fmt"
	"strings"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/rsb"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/uarch"
)

// Ret2SpecResult is the RSB-steered speculative control flow
// demonstration (arXiv 1807.10364), the backend subsystem's headline
// experiment: unlike the BTB-deallocation figures it exercises the
// return stack buffer, so it runs meaningfully on every backend —
// including arm, whose branch-only BTB updates suppress the
// NightVision false-hit signal.
type Ret2SpecResult struct {
	// Backend and RSBDepth are the configuration under test.
	Backend  string `json:"backend"`
	RSBDepth int    `json:"rsb_depth"`
	// Squashes is the warm-pipeline squash count per call-chain depth.
	// Flat while the chain fits the RSB; +1 per extra frame beyond it
	// (each overflowed return pops a stale target and squashes).
	Squashes *stats.Series `json:"squashes"`
	// InferredDepth is the RSB depth the squash knee reveals: the
	// attacker-side calibration measurement.
	InferredDepth int `json:"inferred_depth"`
	// PoisonedWindows and CleanWindows are the prediction windows the
	// attacker's underflowing returns fetch after a victim ran
	// (poisoned: stale victim return addresses steer wrong-path fetch
	// across the context switch) and on a cold RSB (clean: never-written
	// slots predict nothing). PoisonedWindows > CleanWindows is the
	// cross-process ret2spec signal.
	PoisonedWindows float64 `json:"poisoned_windows"`
	CleanWindows    float64 `json:"clean_windows"`
}

func (r *Ret2SpecResult) String() string {
	return fmt.Sprintf("backend=%s rsb=%d inferred=%d windows poisoned=%.0f clean=%.0f",
		r.Backend, r.RSBDepth, r.InferredDepth, r.PoisonedWindows, r.CleanWindows)
}

// chainSource emits a call chain: start calls f0, each f_i calls
// f_{i+1} and returns, so depth return addresses (all distinct) are
// live at the deepest point.
func chainSource(depth int) string {
	var b strings.Builder
	b.WriteString(".org 0x40_0000\nstart:\n\tcall f0\n\thlt\n")
	for i := 0; i < depth; i++ {
		fmt.Fprintf(&b, "f%d:\n", i)
		if i < depth-1 {
			fmt.Fprintf(&b, "\tcall f%d\n", i+1)
		}
		b.WriteString("\tret\n")
	}
	return b.String()
}

const ret2specStackTop = uint64(0x7e_2000)

// ret2specCore assembles src and builds a core with the RSB model
// enabled at the given depth.
func ret2specCore(cfg Config, rsbDepth int, src string, sh *simShard) (*cpu.Core, *asm.Program, error) {
	prog, err := asm.Assemble(src)
	if err != nil {
		return nil, nil, err
	}
	m := mem.New()
	prog.LoadInto(m)
	m.Map(ret2specStackTop-0x2000, 0x2000, mem.PermRW)
	cpuCfg := cfg.CPU
	cpuCfg.RSB = rsb.Config{Depth: rsbDepth}
	c := cpu.New(cpuCfg, m)
	if cfg.Noise > 0 {
		c.LBR.SetNoise(cfg.Noise, cfg.Seed)
	}
	sh.attachCore(c)
	return c, prog, nil
}

// runToHalt runs the core from the "start" label until hlt.
func runToHalt(c *cpu.Core, prog *asm.Program) error {
	c.SetReg(isa.SP, ret2specStackTop)
	c.SetPC(prog.MustLabel("start"))
	_, err := c.Run(1_000_000)
	return err
}

// ret2specNativeDepth resolves the RSB depth to model: an explicit
// rsbDepth wins; 0 means the backend's native depth.
func ret2specNativeDepth(cfg Config, rsbDepth int) int {
	if rsbDepth > 0 {
		return rsbDepth
	}
	if b, ok := uarch.Get(cfg.Backend); ok {
		if rc, has := b.RSB(); has {
			return rc.Depth
		}
	}
	return 16
}

// Ret2Spec runs the two halves of the ret2spec surface on the RSB
// model:
//
//  1. Depth extraction (overflow): for each call-chain depth in
//     [1, maxDepth], run the chain cold (training the BTB), then
//     measure pipeline squashes over a warm re-run. Chains within the
//     RSB capacity predict every return; each frame beyond it pops a
//     stale target and squashes, so the squash-vs-depth curve has a
//     knee exactly at the RSB depth — the attacker's calibration step.
//
//  2. Cross-process steering (underflow): a victim fills the RSB with
//     a depth-matching call chain and the OS switches to an attacker
//     that executes returns with no matching calls. The wrapped top
//     pointer re-serves the victim's stale return addresses, steering
//     the attacker's speculative fetch into victim code — observable
//     as extra prediction windows versus the same attacker on a cold
//     RSB.
//
// Both measurements read deterministic pipeline counters (squashes,
// fetch windows), not the noisy LBR channel, so Iters/Noise do not
// enter; results are bit-identical for any worker count.
func Ret2Spec(cfg Config, maxDepth, rsbDepth int) (*Ret2SpecResult, error) {
	cfg = cfg.withDefaults()
	depth := ret2specNativeDepth(cfg, rsbDepth)
	if maxDepth <= depth {
		maxDepth = depth + 4 // the knee must be inside the sweep
	}
	eo := cfg.obsCtx()

	// Phase 1: squash count per chain depth, fanned out on the engine.
	squashes, err := runner.Map(cfg.engine(), maxDepth, func(t runner.Task) (float64, error) {
		sh := eo.shard(int64(t.Index))
		defer sh.flush(nil)
		d := t.Index + 1
		c, prog, err := ret2specCore(cfg, depth, chainSource(d), sh)
		if err != nil {
			return 0, err
		}
		if err := runToHalt(c, prog); err != nil { // cold: trains the BTB
			return 0, err
		}
		before := c.Squashes()
		if err := runToHalt(c, prog); err != nil { // warm: the measurement
			return 0, err
		}
		return float64(c.Squashes() - before), nil
	})
	if err != nil {
		return nil, err
	}
	series := &stats.Series{Name: "squashes"}
	for i, s := range squashes {
		series.Add(float64(i+1), s)
	}
	// The knee: the last depth before the squash count starts growing.
	inferred := maxDepth
	for d := 2; d <= maxDepth; d++ {
		if squashes[d-1] > squashes[d-2] {
			inferred = d - 1
			break
		}
	}

	// Phase 2: cross-process steering. The victim chain matches the RSB
	// depth so every slot holds a victim return address; the attacker
	// then underflows with manual push/ret pairs.
	attacker := func(runVictim bool) (float64, error) {
		sh := eo.shard(int64(maxDepth) + 1)
		defer sh.flush(nil)
		var b strings.Builder
		b.WriteString(chainSource(depth))
		b.WriteString("astart:\n")
		for i := 0; i < depth; i++ {
			fmt.Fprintf(&b, "\tmovabs r2, a%d\n\tpush r2\n\tret\na%d:\n", i, i)
		}
		b.WriteString("\thlt\n")
		c, prog, err := ret2specCore(cfg, depth, b.String(), sh)
		if err != nil {
			return 0, err
		}
		if runVictim {
			if err := runToHalt(c, prog); err != nil {
				return 0, err
			}
		}
		st := cpu.ArchState{PC: prog.MustLabel("astart")}
		st.Regs[isa.SP] = ret2specStackTop
		c.ContextSwitch(nil, &st)
		before := c.FetchWindows()
		if _, err := c.Run(1_000_000); err != nil {
			return 0, err
		}
		return float64(c.FetchWindows() - before), nil
	}
	poisoned, err := attacker(true)
	if err != nil {
		return nil, err
	}
	clean, err := attacker(false)
	if err != nil {
		return nil, err
	}

	return &Ret2SpecResult{
		Backend:         cfg.Backend,
		RSBDepth:        depth,
		Squashes:        series,
		InferredDepth:   inferred,
		PoisonedWindows: poisoned,
		CleanWindows:    clean,
	}, nil
}
