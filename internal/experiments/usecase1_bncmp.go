package experiments

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/nvrand"
	"repro/internal/stats"
	"repro/internal/victim"
)

// BnCmpResult reports the bn_cmp leakage experiment: the attacker
// recovers the secret comparison outcome of each run (the paper reports
// 100% over 100 runs).
type BnCmpResult struct {
	Runs     int
	Correct  int
	Accuracy float64
	// WilsonLo/WilsonHi bound Accuracy with the 95% Wilson interval.
	WilsonLo, WilsonHi float64
}

func (r *BnCmpResult) String() string {
	return fmt.Sprintf("runs=%d correct=%d accuracy=%.1f%% (95%% CI %.1f\u2013%.1f%%)",
		r.Runs, r.Correct, 100*r.Accuracy, 100*r.WilsonLo, 100*r.WilsonHi)
}

// UseCase1BnCmp attacks the IPP-style big-number comparison: the two
// early-return arms ("a > b" and "a < b") are monitored; whichever fires
// during the run names the secret predicate, neither means equality.
func UseCase1BnCmp(cfg Config, runs int, def DefenseOptions) (*BnCmpResult, error) {
	cfg = cfg.withDefaults()
	rng := nvrand.New(cfg.Seed)
	res := &BnCmpResult{Runs: runs}
	eo := cfg.obsCtx()

	target := uc1Target{fn: victim.BnCmp(true)}

	for run := 0; run < runs; run++ {
		var a, b uint64
		switch run % 3 {
		case 0:
			a, b = rng.Uint64(), rng.Uint64()
		case 1:
			b = rng.Uint64()
			a = b // equal operands: neither arm may fire
		default:
			a = rng.Uint64()
			b = a ^ (1 << (rng.Uint64() % 64)) // differ in one bit
		}
		want := victim.BnCmpRef(a, b)

		// The two return-arm Ifs are the first two in emission order.
		// Repetitions lost to interference are replaced out of the
		// FaultRetries budget (leakBnCmpArm), keeping the run alive.
		target.pickIf = func(ts []ifTriple) ifTriple { return ts[0] }
		gt, err := leakBnCmpArm(cfg, eo, int64(run), rng, def, target, a, b)
		if err != nil {
			return nil, fmt.Errorf("run %d: %w", run, err)
		}
		target.pickIf = func(ts []ifTriple) ifTriple { return ts[1] }
		lt, err := leakBnCmpArm(cfg, eo, int64(run), rng, def, target, a, b)
		if err != nil {
			return nil, fmt.Errorf("run %d: %w", run, err)
		}

		sawGT, sawLT := false, false
		for i, m := range gt.matches {
			if m[0] && !gt.degraded[i] { // then arm of "la > lb"
				sawGT = true
			}
		}
		for i, m := range lt.matches {
			if m[0] && !lt.degraded[i] { // then arm of "la < lb"
				sawLT = true
			}
		}
		var guess uint64
		switch {
		case sawGT && !sawLT:
			guess = 1
		case sawLT && !sawGT:
			guess = 2
		default:
			guess = 0
		}
		if guess == want {
			res.Correct++
		}
	}
	res.Accuracy = float64(res.Correct) / float64(res.Runs)
	res.WilsonLo, res.WilsonHi = stats.WilsonInterval(res.Correct, res.Runs, 1.96)
	return res, nil
}

// leakBnCmpArm measures one arm's fragments, retrying a repetition
// whose calibration or probing is lost to interference (up to
// cfg.FaultRetries replacements) before surfacing the error.
func leakBnCmpArm(cfg Config, eo *expObs, tid int64, rng *nvrand.Rand, def DefenseOptions, target uc1Target, a, b uint64) (fragLeak, error) {
	var lastErr error
	for attempt := 0; attempt <= cfg.FaultRetries; attempt++ {
		sh := eo.shard(tid)
		fl, _, err := leakFragments(cfg, rng.Split(), def, target, a, b, 20, sh)
		sh.flush(fl.events)
		if err == nil {
			return fl, nil
		}
		if !errors.Is(err, core.ErrRecordLost) {
			return fragLeak{}, err
		}
		lastErr = err
	}
	return fragLeak{}, lastErr
}
