package experiments

import "testing"

// TestRet2SpecKnee: the squash-vs-depth knee lands exactly on the
// modeled RSB depth, and the attacker's post-switch returns fetch more
// wrong-path windows from a poisoned RSB than a cold one.
func TestRet2SpecKnee(t *testing.T) {
	for _, backend := range []string{"intel-skylake", "arm"} {
		t.Run("backend="+backend, func(t *testing.T) {
			res, err := Ret2Spec(Config{Backend: backend, Workers: 1}, 0, 0)
			if err != nil {
				t.Fatal(err)
			}
			want := 16
			if backend == "arm" {
				want = 8
			}
			if res.RSBDepth != want {
				t.Errorf("native RSBDepth = %d, want %d", res.RSBDepth, want)
			}
			if res.InferredDepth != res.RSBDepth {
				t.Errorf("inferred depth %d != modeled depth %d\nseries: %v",
					res.InferredDepth, res.RSBDepth, res.Squashes)
			}
			if res.PoisonedWindows <= res.CleanWindows {
				t.Errorf("poisoned windows %.0f <= clean %.0f: no cross-process steering signal",
					res.PoisonedWindows, res.CleanWindows)
			}
		})
	}
}

// TestRet2SpecExplicitDepth: an explicit rsb_depth overrides the
// backend native depth and moves the knee with it.
func TestRet2SpecExplicitDepth(t *testing.T) {
	res, err := Ret2Spec(Config{Workers: 2}, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.RSBDepth != 5 || res.InferredDepth != 5 {
		t.Errorf("depth=5 run: modeled %d, inferred %d, want 5/5\nseries: %v",
			res.RSBDepth, res.InferredDepth, res.Squashes)
	}
}

// TestRet2SpecWorkerDeterminism: bit-identical for any worker count
// (the repo-wide runner guarantee).
func TestRet2SpecWorkerDeterminism(t *testing.T) {
	a, err := Ret2Spec(Config{Workers: 1}, 20, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Ret2Spec(Config{Workers: 8}, 20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.InferredDepth != b.InferredDepth || len(a.Squashes.Y) != len(b.Squashes.Y) {
		t.Fatalf("worker-count divergence: %+v vs %+v", a, b)
	}
	for i := range a.Squashes.Y {
		if a.Squashes.Y[i] != b.Squashes.Y[i] {
			t.Fatalf("squash series diverges at %d: %v vs %v", i, a.Squashes.Y[i], b.Squashes.Y[i])
		}
	}
}
