package experiments

import "testing"

// TestFragmentPressure reproduces the §4.2 constraint: short fragments
// detect reliably; thousands of filler branches evict the attacker's
// entries and detection decays, while the cold PW stays quiet
// throughout (evictions read as "deallocated" = false positives only
// once the set is fully churned).
func TestFragmentPressure(t *testing.T) {
	fillers := []int{0, 64, 512, 4096, 8192}
	hit, falsePos, err := FragmentPressure(Config{Iters: 1, Seed: 37}, fillers, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range hit.X {
		t.Logf("filler=%5.0f detection=%.2f false-pos=%.2f", hit.X[i], hit.Y[i], falsePos.Y[i])
	}
	if hit.Y[0] != 1 {
		t.Errorf("zero filler: detection %.2f, want 1.0", hit.Y[0])
	}
	if falsePos.Y[0] != 0 {
		t.Errorf("zero filler: false positives %.2f, want 0", falsePos.Y[0])
	}
	// With the whole BTB churned (8192 = 2 × sets×ways jumps), the
	// attacker's entries are evicted: eviction is indistinguishable
	// from deallocation, so the cold PW starts "matching" too and the
	// measurement carries no information.
	last := len(fillers) - 1
	if falsePos.Y[last] < 0.9 {
		t.Errorf("full churn: false-pos %.2f, want ~1 (eviction noise)", falsePos.Y[last])
	}
}
