package experiments

import (
	"reflect"
	"testing"

	"repro/internal/codegen"
	"repro/internal/interfere"
	"repro/internal/victim"
)

// TestUseCase1GCDGracefulDegradation: under a fixed seeded fault
// schedule with nonzero interrupt + record-loss rates, the attack
// completes without error, reports a meaningful confidence, and still
// leaks most decisions.
func TestUseCase1GCDGracefulDegradation(t *testing.T) {
	cfg := Config{Iters: 1, Seed: 5}
	cfg.Interference = interfere.Config{
		InterruptRate:  0.002,
		RecordLossRate: 0.05,
		FlushRate:      0.005,
	}
	res, err := UseCase1GCD(cfg, 4, AllDefenses())
	if err != nil {
		t.Fatalf("attack must degrade, not fail: %v", err)
	}
	t.Logf("degraded uc1 gcd: %s", res)
	if res.Events == 0 {
		t.Fatal("no fault events delivered — interference not wired in")
	}
	if res.MeanConfidence <= 0 || res.MeanConfidence > 1 {
		t.Fatalf("MeanConfidence = %f, want (0, 1]", res.MeanConfidence)
	}
	if res.MeanConfidence >= 1 {
		t.Fatalf("MeanConfidence = %f under interference, want < 1", res.MeanConfidence)
	}
	if res.Accuracy < 0.8 {
		t.Fatalf("accuracy %.3f collapsed under mild interference", res.Accuracy)
	}
	if res.WilsonLo >= res.Accuracy || res.WilsonHi <= res.Accuracy {
		t.Fatalf("Wilson interval [%f, %f] does not bracket accuracy %f", res.WilsonLo, res.WilsonHi, res.Accuracy)
	}
}

// TestRobustnessSweepShape: accuracy ≥ 0.9 at low interference rates,
// decaying (monotonically-ish) as rates grow, for every fault class.
func TestRobustnessSweepShape(t *testing.T) {
	cfg := Config{Iters: 1, Seed: 5}
	res, err := RobustnessSweep(cfg, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("robustness sweep:\n%s", res)
	byClass := map[string][]RobustnessPoint{}
	for _, p := range res.Points {
		byClass[p.Class] = append(byClass[p.Class], p)
	}
	for _, cl := range interfere.Classes() {
		pts := byClass[cl]
		if len(pts) != len(ClassRates(cl)) {
			t.Fatalf("class %s has %d points", cl, len(pts))
		}
		if pts[0].Rate != 0 || pts[0].Accuracy < 0.99 {
			t.Errorf("%s: clean baseline accuracy %.3f < 0.99", cl, pts[0].Accuracy)
		}
		if pts[0].Events != 0 || pts[0].TraceHash != 0 {
			t.Errorf("%s: rate-0 cell delivered events", cl)
		}
		if pts[1].Accuracy < 0.9 {
			t.Errorf("%s: accuracy %.3f at low rate %g, want >= 0.9", cl, pts[1].Accuracy, pts[1].Rate)
		}
		if pts[1].Events == 0 {
			t.Errorf("%s: low-rate cell delivered no events", cl)
		}
		last := pts[len(pts)-1]
		if last.Accuracy > pts[1].Accuracy+0.02 {
			t.Errorf("%s: accuracy rose from %.3f to %.3f as the rate grew", cl, pts[1].Accuracy, last.Accuracy)
		}
	}
}

// TestRobustnessSweepWorkerIndependence: the same Config.Seed +
// interference config produces identical results — including each
// cell's injected-fault trace hash — regardless of worker count.
func TestRobustnessSweepWorkerIndependence(t *testing.T) {
	classes := []string{"interrupt", "recordloss"}
	run := func(workers int) *RobustnessResult {
		cfg := Config{Iters: 1, Seed: 7, Workers: workers}
		res, err := RobustnessSweep(cfg, classes, 2)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	wide := run(4)
	if !reflect.DeepEqual(serial, wide) {
		t.Fatalf("sweep differs across worker counts:\n%v\nvs\n%v", serial, wide)
	}
	again := run(1)
	if !reflect.DeepEqual(serial, again) {
		t.Fatal("sweep not reproducible for the same seed")
	}
}

// TestInterferenceDisabledDeterminism: with interference disabled the
// hardened pipeline consumes no extra randomness and reproduces the
// same results run over run, for any Workers value, including the
// noisy-channel averaging path.
func TestInterferenceDisabledDeterminism(t *testing.T) {
	base := Config{Iters: 1, Seed: 505, Noise: 5, Repeats: 3}
	a, err := UseCase1GCD(base, 2, AllDefenses())
	if err != nil {
		t.Fatal(err)
	}
	b, err := UseCase1GCD(base, 2, AllDefenses())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("disabled-interference runs differ:\n%v\nvs\n%v", a, b)
	}
	if a.Events != 0 || a.TraceHash != 0 || a.DegradedFrags != 0 {
		t.Fatalf("disabled interference reported fault activity: %v", a)
	}

	sigmas := []float64{0, 4}
	s1, err := NoiseSweep(Config{Iters: 1, Seed: 303, Workers: 1}, sigmas, 2)
	if err != nil {
		t.Fatal(err)
	}
	s4, err := NoiseSweep(Config{Iters: 1, Seed: 303, Workers: 4}, sigmas, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1, s4) {
		t.Fatalf("NoiseSweep differs across worker counts:\n%v\nvs\n%v", s1, s4)
	}
}

// TestNVSTraceUnderInterference: the supervisor attack's replay loop
// retries degraded steps and still reconstructs the trace under record
// loss.
func TestNVSTraceUnderInterference(t *testing.T) {
	cfg := Config{Iters: 1, Seed: 5}
	clean := cfg

	cfg.Interference = interfere.Config{RecordLossRate: 0.02}

	fn := victim.BnCmp(false)
	opts := codegen.Options{Opt: codegen.O2}
	args := []uint64{0x1234_5678_9ABC_DEF0, 0x1234_5678_9ABC_0000}
	wantPCs, _, _, err := NVSTrace(clean, fn, opts, args)
	if err != nil {
		t.Fatal(err)
	}
	gotPCs, _, runs, err := NVSTrace(cfg, fn, opts, args)
	if err != nil {
		t.Fatalf("NV-S must survive record loss: %v", err)
	}
	if !reflect.DeepEqual(wantPCs, gotPCs) {
		t.Errorf("reconstructed trace changed under record loss (%d vs %d steps)", len(wantPCs), len(gotPCs))
	}
	t.Logf("NV-S under interference: %d steps, %d runs", len(gotPCs), runs)
}
