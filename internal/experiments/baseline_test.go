package experiments

import "testing"

// TestGranularityComparison quantifies the paper's introduction: coarse
// channels (icache lines, pages) cannot fingerprint functions; the
// byte-granular channel can.
func TestGranularityComparison(t *testing.T) {
	results, err := GranularityComparison(Config{Iters: 1, Seed: 29}, 120)
	if err != nil {
		t.Fatal(err)
	}
	byG := map[uint64]GranularityResult{}
	for _, r := range results {
		t.Log(r.String())
		byG[r.Granularity] = r
	}
	if byG[1].SelfRank != 1 || byG[1].Separation() < 0.2 {
		t.Errorf("byte granularity: rank %d separation %.3f — should identify cleanly",
			byG[1].SelfRank, byG[1].Separation())
	}
	if byG[4096].Separation() > 0.01 {
		t.Errorf("page granularity separation %.3f — controlled channel should not identify functions",
			byG[4096].Separation())
	}
	if byG[64].Separation() >= byG[1].Separation() {
		t.Errorf("icache-line separation %.3f should be below byte separation %.3f",
			byG[64].Separation(), byG[1].Separation())
	}
}

// TestSequenceVsSet: the §8.3 sequence extension identifies at least as
// well as set intersection, and both identify GCD.
func TestSequenceVsSet(t *testing.T) {
	res, err := SequenceVsSet(Config{Iters: 1, Seed: 31}, 120)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("set: self=%.3f impostor=%.3f sep=%.3f | seq: self=%.3f impostor=%.3f sep=%.3f",
		res.SetSelf, res.SetImpostor, res.SetSeparation(),
		res.SeqSelf, res.SeqImpostor, res.SeqSeparation())
	if res.SetSeparation() <= 0 {
		t.Error("set intersection should identify GCD")
	}
	if res.SeqSeparation() <= 0 {
		t.Error("sequence alignment should identify GCD")
	}
	if res.SeqSelf < 0.8 {
		t.Errorf("sequence self-score %.3f too low", res.SeqSelf)
	}
	if res.SeqSeparation() < res.SetSeparation()-0.05 {
		t.Errorf("sequence separation %.3f should not trail set separation %.3f",
			res.SeqSeparation(), res.SetSeparation())
	}
}
