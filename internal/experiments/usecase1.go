package experiments

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/asm"
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/nvrand"
	"repro/internal/osmodel"
	"repro/internal/victim"
)

// UseCase1Result reports a control-flow leakage run (§7.2).
type UseCase1Result struct {
	Runs      int
	Decisions int // total secret branch decisions across runs
	Correct   int
	Ambiguous int // fragments where neither or both arms matched
	Accuracy  float64
	AvgPerRun float64 // mean decisions per run (paper: ~30 for GCD)
}

func (r *UseCase1Result) String() string {
	return fmt.Sprintf("runs=%d decisions=%d correct=%d ambiguous=%d accuracy=%.1f%% avg-iters/run=%.1f",
		r.Runs, r.Decisions, r.Correct, r.Ambiguous, 100*r.Accuracy, r.AvgPerRun)
}

// DefenseOptions selects which prior-work mitigations the victim is
// compiled with. NightVision defeats all of them (§5).
type DefenseOptions struct {
	Balance bool // branch balancing (CopyCat mitigation)
	Align   bool // 16-byte basic-block alignment (Frontal mitigation)
	CFR     bool // control-flow randomization (branch-shadowing mitigation)
}

// AllDefenses enables every mitigation, the §7.2 configuration.
func AllDefenses() DefenseOptions { return DefenseOptions{Balance: true, Align: true, CFR: true} }

// ifTriple locates one compiled If: then-arm start, else-arm start,
// join. Available when the victim is compiled with CFR (which labels
// both arms).
type ifTriple struct {
	id                int
	thenL, elseL, end uint64
}

// ifTriples extracts every If's arm labels from a compiled program,
// ordered by emission (IR order).
func ifTriples(p *asm.Program, fn string) []ifTriple {
	byID := map[int]*ifTriple{}
	get := func(id int) *ifTriple {
		t, ok := byID[id]
		if !ok {
			t = &ifTriple{id: id}
			byID[id] = t
		}
		return t
	}
	for name, addr := range p.Labels {
		rest, ok := strings.CutPrefix(name, fn+".")
		if !ok {
			continue
		}
		switch {
		case strings.HasPrefix(rest, "then"):
			if id, err := strconv.Atoi(rest[4:]); err == nil {
				get(id).thenL = addr
			}
		case strings.HasPrefix(rest, "else"):
			if id, err := strconv.Atoi(rest[4:]); err == nil {
				get(id + 0).elseL = addr
			}
		case strings.HasPrefix(rest, "endif"):
			if id, err := strconv.Atoi(rest[5:]); err == nil {
				get(id).end = addr
			}
		}
	}
	// then/else/endif of one If carry consecutive counters n, n+1, n+2;
	// merge them.
	var out []ifTriple
	for id, t := range byID {
		if t.thenL == 0 {
			continue
		}
		merged := *t
		if u, ok := byID[id+1]; ok && u.elseL != 0 {
			merged.elseL = u.elseL
		}
		if u, ok := byID[id+2]; ok && u.end != 0 {
			merged.end = u.end
		}
		out = append(out, merged)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// pwWithin picks a monitorable PW inside [lo, hi): up to 12 bytes, not
// crossing a 32-byte block boundary.
func pwWithin(lo, hi uint64) (core.PW, error) {
	if hi <= lo+1 {
		return core.PW{}, fmt.Errorf("experiments: range [%#x,%#x) too small for a PW", lo, hi)
	}
	blockEnd := (lo | 31) + 1
	end := hi
	if blockEnd < end {
		end = blockEnd
	}
	n := int(end - lo)
	if n > 12 {
		n = 12
	}
	if n < 2 {
		return core.PW{}, fmt.Errorf("experiments: range [%#x,%#x) leaves no room in its block", lo, hi)
	}
	return core.PW{Base: lo, Len: n}, nil
}

// uc1Target describes one victim function for the leakage attack.
type uc1Target struct {
	fn *codegen.Func
	// pickIf selects which compiled If is the secret branch, given the
	// triples in emission order.
	pickIf func([]ifTriple) ifTriple
	// args returns the secret-carrying arguments for one run.
	args func(rng *nvrand.Rand) (uint64, uint64)
	// truth returns the expected then/else decision sequence.
	truth func(a, b uint64) []bool
}

// UseCase1GCD attacks the mbedTLS-3.0-style GCD inside RSA key
// generation with the given defenses enabled (the paper measures 99.3%
// accuracy over 100 runs with ~30 iterations each).
func UseCase1GCD(cfg Config, runs int, def DefenseOptions) (*UseCase1Result, error) {
	target := uc1Target{
		fn: victim.MustGCDVersion("3.0", true),
		pickIf: func(ts []ifTriple) ifTriple {
			return ts[len(ts)-1] // the balanced branch is the last If
		},
		args: func(rng *nvrand.Rand) (uint64, uint64) {
			in := victim.RSAKeygenInputs(rng, 1)[0]
			return in[0], in[1]
		},
		truth: func(a, b uint64) []bool {
			dirs, _ := victim.GCDBranchDirections("3.0", a, b)
			return dirs
		},
	}
	return runUseCase1(cfg, runs, def, target)
}

// runUseCase1 executes the NV-U attack loop of §5.2 for one target.
func runUseCase1(cfg Config, runs int, def DefenseOptions, target uc1Target) (*UseCase1Result, error) {
	cfg = cfg.withDefaults()
	res := &UseCase1Result{Runs: runs}
	rng := nvrand.New(cfg.Seed)

	repeats := cfg.Repeats // >= 1 after withDefaults
	for run := 0; run < runs; run++ {
		a, b := target.args(rng)
		truth := target.truth(a, b)

		// The paper's methodology repeats measurements and averages;
		// here each repetition replays the same victim secret under
		// fresh measurement noise and the per-fragment arm votes are
		// majority-combined.
		var matches [][2]bool
		votes := make([][2]int, len(truth)+2)
		for rep := 0; rep < repeats; rep++ {
			ms, _, err := leakFragments(cfg, rng.Split(), def, target, a, b, len(truth)+2)
			if err != nil {
				return nil, fmt.Errorf("run %d: %w", run, err)
			}
			for i, m := range ms {
				if m[0] {
					votes[i][0]++
				}
				if m[1] {
					votes[i][1]++
				}
			}
			if rep == 0 {
				matches = ms
			}
		}
		for i := range matches {
			matches[i][0] = votes[i][0]*2 > repeats
			matches[i][1] = votes[i][1]*2 > repeats
		}
		n := len(truth)
		if len(matches) < n {
			n = len(matches)
		}
		// Decision procedure: a single matched arm names the direction.
		// Both arms matching is itself a signal — the stale prediction
		// speculatively fetched the *previous* direction's arm while the
		// real path took the other, so the direction flipped. Neither
		// arm matching means the fragment ran no iteration (the paper's
		// "excessive preemption" case); the previous direction persists
		// as the best guess.
		prev := false
		havePrev := false
		for i := 0; i < n; i++ {
			thenHit, elseHit := matches[i][0], matches[i][1]
			res.Decisions++
			var guess bool
			switch {
			case thenHit && !elseHit:
				guess = true
			case elseHit && !thenHit:
				guess = false
			case thenHit && elseHit && havePrev:
				guess = !prev
				res.Ambiguous++
			default:
				guess = prev
				res.Ambiguous++
			}
			if guess == truth[i] {
				res.Correct++
			}
			prev = guess
			havePrev = true
		}
		res.Decisions += len(truth) - n // missed fragments count as wrong
	}
	if res.Decisions > 0 {
		res.Accuracy = float64(res.Correct) / float64(res.Decisions)
		res.AvgPerRun = float64(res.Decisions) / float64(res.Runs)
	}
	return res, nil
}

// leakFragments builds one victim process with the chosen defenses,
// mounts NV-U with PWs over both arms of the secret branch, and returns
// per-fragment [thenHit, elseHit] vectors.
func leakFragments(cfg Config, rng *nvrand.Rand, def DefenseOptions, target uc1Target, a, b uint64, maxFrags int) ([][2]bool, ifTriple, error) {
	const (
		base      = uint64(0x40_0000)
		cfrRegion = uint64(0x48_0000)
	)
	bld := asm.NewBuilder(base)
	bld.Label("start")
	bld.Call(target.fn.Name)
	bld.Inst(isa.Hlt())
	opts := codegen.Options{Opt: codegen.O2, Balance: def.Balance}
	if def.Align {
		opts.AlignTargets = 16
	}
	// The arm-locating labels come from CFR compilation; when CFR is
	// off we still need them, so CFR stays on for layout purposes and
	// the DefenseOptions toggle switches the paper-relevant transforms.
	opts.CFR = &codegen.CFRConfig{Rng: rng.Split(), Region: cfrRegion}
	if !def.CFR {
		// Deterministic trampolines (no randomization) approximate the
		// undefended layout while keeping arm labels available.
		opts.CFR = &codegen.CFRConfig{Rng: nvrand.New(1), Region: cfrRegion}
	}
	if err := codegen.Emit(bld, target.fn, opts); err != nil {
		return nil, ifTriple{}, err
	}
	prog, err := bld.Build()
	if err != nil {
		return nil, ifTriple{}, err
	}

	triples := ifTriples(prog, target.fn.Name)
	if len(triples) == 0 {
		return nil, ifTriple{}, fmt.Errorf("experiments: no If labels found")
	}
	secret := target.pickIf(triples)
	thenPW, err := pwWithin(secret.thenL, secret.elseL)
	if err != nil {
		return nil, ifTriple{}, err
	}
	// An If without an else body (bn_cmp's early returns) has an empty
	// else range; monitor only the then arm in that case.
	pws := []core.PW{thenPW}
	elsePW, elseErr := pwWithin(secret.elseL, secret.end)
	if elseErr == nil {
		pws = append(pws, elsePW)
	}

	m := mem.New()
	prog.LoadInto(m)
	c := cpu.New(cfg.CPU, m)
	if cfg.Noise > 0 {
		c.LBR.SetNoise(cfg.Noise, rng.Uint64())
	}
	os := osmodel.New(c)
	proc := os.Spawn("victim", prog.MustLabel("start"), 0x7e_0000, 0x2000)
	proc.State.Regs[isa.R1] = a
	proc.State.Regs[isa.R2] = b

	att, err := core.NewAttacker(c, aliasDistance(cfg.CPU))
	if err != nil {
		return nil, ifTriple{}, err
	}
	mon, err := att.NewMonitor(pws)
	if err != nil {
		return nil, ifTriple{}, err
	}
	ua := &core.UserAttack{OS: os, Victim: proc}
	raw, err := ua.Run(mon, maxFrags)
	if err != nil {
		return nil, ifTriple{}, err
	}
	out := make([][2]bool, len(raw))
	for i, v := range raw {
		out[i][0] = v[0]
		if len(v) > 1 {
			out[i][1] = v[1]
		}
	}
	return out, secret, nil
}
