package experiments

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/asm"
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/interfere"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/nvrand"
	"repro/internal/osmodel"
	"repro/internal/stats"
	"repro/internal/victim"
)

// UseCase1Result reports a control-flow leakage run (§7.2).
type UseCase1Result struct {
	Runs      int
	Decisions int // total secret branch decisions across runs
	Correct   int
	Ambiguous int // fragments where neither or both arms matched
	Accuracy  float64
	AvgPerRun float64 // mean decisions per run (paper: ~30 for GCD)

	// WilsonLo/WilsonHi bound Accuracy with the 95% Wilson score
	// interval over the Decisions trials.
	WilsonLo, WilsonHi float64
	// MeanConfidence averages the per-fragment measurement confidences
	// (1.0 on a clean deterministic channel; lower under noise,
	// retries, or interference).
	MeanConfidence float64
	// DegradedFrags counts fragments whose probe lost every
	// measurement to interference; DiscardedReps counts whole
	// measurement repetitions replaced out of the FaultRetries budget.
	DegradedFrags int
	DiscardedReps int
	// Events and TraceHash summarize the injected-fault schedule:
	// total delivered events and an order-sensitive FNV-1a fingerprint
	// (0 when interference is disabled). Identical Config → identical
	// hash, regardless of Workers.
	Events    uint64
	TraceHash uint64
}

func (r *UseCase1Result) String() string {
	s := fmt.Sprintf("runs=%d decisions=%d correct=%d ambiguous=%d accuracy=%.1f%% (95%% CI %.1f–%.1f%%) avg-iters/run=%.1f conf=%.2f",
		r.Runs, r.Decisions, r.Correct, r.Ambiguous, 100*r.Accuracy, 100*r.WilsonLo, 100*r.WilsonHi, r.AvgPerRun, r.MeanConfidence)
	if r.Events > 0 || r.DegradedFrags > 0 || r.DiscardedReps > 0 {
		s += fmt.Sprintf(" [interference: events=%d degraded-frags=%d discarded-reps=%d trace=%#x]",
			r.Events, r.DegradedFrags, r.DiscardedReps, r.TraceHash)
	}
	return s
}

// DefenseOptions selects which prior-work mitigations the victim is
// compiled with. NightVision defeats all of them (§5).
type DefenseOptions struct {
	Balance bool // branch balancing (CopyCat mitigation)
	Align   bool // 16-byte basic-block alignment (Frontal mitigation)
	CFR     bool // control-flow randomization (branch-shadowing mitigation)
}

// AllDefenses enables every mitigation, the §7.2 configuration.
func AllDefenses() DefenseOptions { return DefenseOptions{Balance: true, Align: true, CFR: true} }

// ifTriple locates one compiled If: then-arm start, else-arm start,
// join. Available when the victim is compiled with CFR (which labels
// both arms).
type ifTriple struct {
	id                int
	thenL, elseL, end uint64
}

// ifTriples extracts every If's arm labels from a compiled program,
// ordered by emission (IR order).
func ifTriples(p *asm.Program, fn string) []ifTriple {
	byID := map[int]*ifTriple{}
	get := func(id int) *ifTriple {
		t, ok := byID[id]
		if !ok {
			t = &ifTriple{id: id}
			byID[id] = t
		}
		return t
	}
	for name, addr := range p.Labels {
		rest, ok := strings.CutPrefix(name, fn+".")
		if !ok {
			continue
		}
		switch {
		case strings.HasPrefix(rest, "then"):
			if id, err := strconv.Atoi(rest[4:]); err == nil {
				get(id).thenL = addr
			}
		case strings.HasPrefix(rest, "else"):
			if id, err := strconv.Atoi(rest[4:]); err == nil {
				get(id + 0).elseL = addr
			}
		case strings.HasPrefix(rest, "endif"):
			if id, err := strconv.Atoi(rest[5:]); err == nil {
				get(id).end = addr
			}
		}
	}
	// then/else/endif of one If carry consecutive counters n, n+1, n+2;
	// merge them.
	var out []ifTriple
	for id, t := range byID {
		if t.thenL == 0 {
			continue
		}
		merged := *t
		if u, ok := byID[id+1]; ok && u.elseL != 0 {
			merged.elseL = u.elseL
		}
		if u, ok := byID[id+2]; ok && u.end != 0 {
			merged.end = u.end
		}
		out = append(out, merged)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// pwWithin picks a monitorable PW inside [lo, hi): up to 12 bytes, not
// crossing a 32-byte block boundary.
func pwWithin(lo, hi uint64) (core.PW, error) {
	if hi <= lo+1 {
		return core.PW{}, fmt.Errorf("experiments: range [%#x,%#x) too small for a PW", lo, hi)
	}
	blockEnd := (lo | 31) + 1
	end := hi
	if blockEnd < end {
		end = blockEnd
	}
	n := int(end - lo)
	if n > 12 {
		n = 12
	}
	if n < 2 {
		return core.PW{}, fmt.Errorf("experiments: range [%#x,%#x) leaves no room in its block", lo, hi)
	}
	return core.PW{Base: lo, Len: n}, nil
}

// uc1Target describes one victim function for the leakage attack.
type uc1Target struct {
	fn *codegen.Func
	// pickIf selects which compiled If is the secret branch, given the
	// triples in emission order.
	pickIf func([]ifTriple) ifTriple
	// args returns the secret-carrying arguments for one run.
	args func(rng *nvrand.Rand) (uint64, uint64)
	// truth returns the expected then/else decision sequence.
	truth func(a, b uint64) []bool
}

// UseCase1GCD attacks the mbedTLS-3.0-style GCD inside RSA key
// generation with the given defenses enabled (the paper measures 99.3%
// accuracy over 100 runs with ~30 iterations each).
func UseCase1GCD(cfg Config, runs int, def DefenseOptions) (*UseCase1Result, error) {
	target := uc1Target{
		fn: victim.MustGCDVersion("3.0", true),
		pickIf: func(ts []ifTriple) ifTriple {
			return ts[len(ts)-1] // the balanced branch is the last If
		},
		args: func(rng *nvrand.Rand) (uint64, uint64) {
			in := victim.RSAKeygenInputs(rng, 1)[0]
			return in[0], in[1]
		},
		truth: func(a, b uint64) []bool {
			dirs, _ := victim.GCDBranchDirections("3.0", a, b)
			return dirs
		},
	}
	return runUseCase1(cfg, runs, def, target)
}

// voteFloor is the minimum weight a measured round contributes to a
// fragment-arm vote: a zero-confidence measurement still expresses an
// opinion, which keeps the Repeats==1 clean path bit-identical to
// unweighted voting.
const voteFloor = 0.01

// runUseCase1 executes the NV-U attack loop of §5.2 for one target.
func runUseCase1(cfg Config, runs int, def DefenseOptions, target uc1Target) (*UseCase1Result, error) {
	cfg = cfg.withDefaults()
	res := &UseCase1Result{Runs: runs}
	rng := nvrand.New(cfg.Seed)
	eo := cfg.obsCtx()

	var confSum float64
	var confN int

	repeats := cfg.Repeats // >= 1 after withDefaults
	for run := 0; run < runs; run++ {
		a, b := target.args(rng)
		truth := target.truth(a, b)

		// The paper's methodology repeats measurements and averages;
		// here each repetition replays the same victim secret under
		// fresh measurement noise and the per-fragment arm votes are
		// confidence-weight-combined. Repetitions that interference
		// degrades beyond recovery are replaced out of the FaultRetries
		// budget; if the budget runs dry the vote proceeds on whatever
		// measurements survived (graceful partial result).
		var matches [][2]bool
		wFor := make([][2]float64, len(truth)+2)
		wAgainst := make([][2]float64, len(truth)+2)
		measured := 0
		budget := cfg.FaultRetries
		for attempt := 0; measured < repeats && attempt < repeats+cfg.FaultRetries; attempt++ {
			sh := eo.shard(int64(run))
			fl, _, err := leakFragments(cfg, rng.Split(), def, target, a, b, len(truth)+2, sh)
			sh.flush(fl.events)
			res.Events += uint64(len(fl.events))
			res.TraceHash = foldEvents(res.TraceHash, fl.events)
			if err != nil {
				if errors.Is(err, core.ErrRecordLost) && budget > 0 {
					budget--
					res.DiscardedReps++
					continue
				}
				return nil, fmt.Errorf("run %d: %w", run, err)
			}
			measured++
			if len(fl.matches) > len(wFor) {
				fl.matches = fl.matches[:len(wFor)]
			}
			for i, m := range fl.matches {
				if fl.degraded[i] {
					res.DegradedFrags++
					continue
				}
				for arm := 0; arm < 2; arm++ {
					w := fl.conf[i][arm]
					confSum += w
					confN++
					if w < voteFloor {
						w = voteFloor
					}
					if m[arm] {
						wFor[i][arm] += w
					} else {
						wAgainst[i][arm] += w
					}
				}
			}
			if matches == nil {
				matches = make([][2]bool, len(fl.matches))
			}
		}
		for i := range matches {
			matches[i][0] = wFor[i][0] > wAgainst[i][0]
			matches[i][1] = wFor[i][1] > wAgainst[i][1]
		}
		n := len(truth)
		if len(matches) < n {
			n = len(matches)
		}
		// Decision procedure: a single matched arm names the direction.
		// Both arms matching is itself a signal — the stale prediction
		// speculatively fetched the *previous* direction's arm while the
		// real path took the other, so the direction flipped. Neither
		// arm matching means the fragment ran no iteration (the paper's
		// "excessive preemption" case); the previous direction persists
		// as the best guess.
		prev := false
		havePrev := false
		for i := 0; i < n; i++ {
			thenHit, elseHit := matches[i][0], matches[i][1]
			res.Decisions++
			var guess bool
			switch {
			case thenHit && !elseHit:
				guess = true
			case elseHit && !thenHit:
				guess = false
			case thenHit && elseHit && havePrev:
				guess = !prev
				res.Ambiguous++
			default:
				guess = prev
				res.Ambiguous++
			}
			if guess == truth[i] {
				res.Correct++
			}
			prev = guess
			havePrev = true
		}
		res.Decisions += len(truth) - n // missed fragments count as wrong
	}
	if res.Decisions > 0 {
		res.Accuracy = float64(res.Correct) / float64(res.Decisions)
		res.AvgPerRun = float64(res.Decisions) / float64(res.Runs)
		res.WilsonLo, res.WilsonHi = stats.WilsonInterval(res.Correct, res.Decisions, 1.96)
	}
	if confN > 0 {
		res.MeanConfidence = confSum / float64(confN)
	}
	return res, nil
}

// foldEvents folds a fault-event batch into the result's running trace
// hash, skipping the fold entirely for empty batches so that an
// interference-free run keeps TraceHash == 0.
func foldEvents(h uint64, evs []interfere.Event) uint64 {
	if len(evs) == 0 {
		return h
	}
	return interfere.HashEvents(h, evs)
}

// fragLeak is one measurement repetition's outcome: per-fragment
// [thenHit, elseHit] vectors with matching confidences, per-fragment
// degradation flags, and the fault events the injector delivered.
type fragLeak struct {
	matches  [][2]bool
	conf     [][2]float64
	degraded []bool
	events   []interfere.Event
}

// leakFragments builds one victim process with the chosen defenses,
// mounts NV-U with PWs over both arms of the secret branch, and returns
// the per-fragment leak. When cfg.Interference is enabled a
// deterministic injector (seeded from rng) perturbs the victim, the
// probes and the LBR reads; fragments that lose every measurement come
// back flagged degraded rather than failing the repetition.
func leakFragments(cfg Config, rng *nvrand.Rand, def DefenseOptions, target uc1Target, a, b uint64, maxFrags int, sh *simShard) (fragLeak, ifTriple, error) {
	const (
		base      = uint64(0x40_0000)
		cfrRegion = uint64(0x48_0000)
	)
	bld := asm.NewBuilder(base)
	bld.Label("start")
	bld.Call(target.fn.Name)
	bld.Inst(isa.Hlt())
	opts := codegen.Options{Opt: codegen.O2, Balance: def.Balance}
	if def.Align {
		opts.AlignTargets = 16
	}
	// The arm-locating labels come from CFR compilation; when CFR is
	// off we still need them, so CFR stays on for layout purposes and
	// the DefenseOptions toggle switches the paper-relevant transforms.
	opts.CFR = &codegen.CFRConfig{Rng: rng.Split(), Region: cfrRegion}
	if !def.CFR {
		// Deterministic trampolines (no randomization) approximate the
		// undefended layout while keeping arm labels available.
		opts.CFR = &codegen.CFRConfig{Rng: nvrand.New(1), Region: cfrRegion}
	}
	if err := codegen.Emit(bld, target.fn, opts); err != nil {
		return fragLeak{}, ifTriple{}, err
	}
	prog, err := bld.Build()
	if err != nil {
		return fragLeak{}, ifTriple{}, err
	}

	triples := ifTriples(prog, target.fn.Name)
	if len(triples) == 0 {
		return fragLeak{}, ifTriple{}, fmt.Errorf("experiments: no If labels found")
	}
	secret := target.pickIf(triples)
	thenPW, err := pwWithin(secret.thenL, secret.elseL)
	if err != nil {
		return fragLeak{}, ifTriple{}, err
	}
	// An If without an else body (bn_cmp's early returns) has an empty
	// else range; monitor only the then arm in that case.
	pws := []core.PW{thenPW}
	elsePW, elseErr := pwWithin(secret.elseL, secret.end)
	if elseErr == nil {
		pws = append(pws, elsePW)
	}

	m := mem.New()
	prog.LoadInto(m)
	c := cpu.New(cfg.CPU, m)
	sh.attachCore(c)
	if cfg.Noise > 0 {
		c.LBR.SetNoise(cfg.Noise, rng.Uint64())
	}
	os := osmodel.New(c)
	proc := os.Spawn("victim", prog.MustLabel("start"), 0x7e_0000, 0x2000)
	proc.State.Regs[isa.R1] = a
	proc.State.Regs[isa.R2] = b

	att, err := core.NewAttacker(c, aliasDistance(cfg.CPU))
	if err != nil {
		return fragLeak{}, ifTriple{}, err
	}
	sh.attachAttacker(att)
	// The injector is created (and its seed drawn) only when a fault
	// class is enabled: the disabled path performs exactly the rng draws
	// it always did, keeping results bit-identical to interference-free
	// builds. It is installed before monitor creation so calibration
	// runs under the same interference the probes will see.
	var inj *interfere.Injector
	if cfg.Interference.Enabled() {
		inj = interfere.New(cfg.Interference, c, rng.Uint64())
		sh.attachInjector(inj)
		os.OnTick = inj.VictimTick
		att.Interfere = inj
	}
	mon, err := att.NewMonitor(pws)
	if err != nil {
		return fragLeak{events: injEvents(inj)}, ifTriple{}, err
	}
	ua := &core.UserAttack{OS: os, Victim: proc}
	frags, err := ua.RunRobust(mon, maxFrags)
	if err != nil {
		return fragLeak{events: injEvents(inj)}, ifTriple{}, err
	}
	fl := fragLeak{
		matches:  make([][2]bool, len(frags)),
		conf:     make([][2]float64, len(frags)),
		degraded: make([]bool, len(frags)),
		events:   injEvents(inj),
	}
	for i, fr := range frags {
		fl.matches[i][0] = fr.Match[0]
		fl.conf[i][0] = fr.Confidence[0]
		if len(fr.Match) > 1 {
			fl.matches[i][1] = fr.Match[1]
			fl.conf[i][1] = fr.Confidence[1]
		} else {
			// Single-arm monitors (no else body) reuse the then-arm
			// confidence so both vote slots carry the same weight.
			fl.conf[i][1] = fr.Confidence[0]
		}
		fl.degraded[i] = fr.Degraded
	}
	return fl, secret, nil
}

// injEvents returns the injector's delivered-event trace (nil injector
// → nil trace).
func injEvents(inj *interfere.Injector) []interfere.Event {
	if inj == nil {
		return nil
	}
	return inj.Trace()
}
