package experiments

import (
	"fmt"
	"sync"

	"repro/internal/asm"
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/fingerprint"
	"repro/internal/interfere"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/nvrand"
	"repro/internal/runner"
	"repro/internal/sgx"
	"repro/internal/stats"
	"repro/internal/victim"
)

// victimBase is where victim functions are compiled for trace
// collection. Traces are normalized to the function entry, so the base
// itself is irrelevant to fingerprints.
const victimBase = uint64(0x60_0000)

// buildVictimProgram compiles fn behind a `call fn; hlt` entry stub.
func buildVictimProgram(fn *codegen.Func, opts codegen.Options) (*asm.Program, error) {
	b := asm.NewBuilder(victimBase)
	b.Label("entry")
	b.Call(fn.Name)
	b.Inst(isa.Hlt())
	// Keep the stub and the function more than a call-gap apart so the
	// §6.4 slicing heuristic (transfers over 16 bytes) sees the call.
	b.Space(0x40, byte(isa.OpNop))
	if err := codegen.Emit(b, fn, opts); err != nil {
		return nil, err
	}
	return b.Build()
}

// stepTouchesData reports whether an instruction accesses data memory —
// the model-side analog of the controlled channel's per-step signal.
func stepTouchesData(in isa.Inst) bool {
	switch in.Op {
	case isa.OpLd8, isa.OpLd32, isa.OpSt8, isa.OpSt32, isa.OpPush, isa.OpPop,
		isa.OpCall32, isa.OpCallReg, isa.OpRet:
		return true
	}
	return false
}

// modelSim is one pooled simulator for ModelTrace: corpus fan-outs run
// hundreds of thousands of traces, and rebuilding the paged memory, BTB
// arrays and core queues per function dominated allocation. Reset
// (Memory.Reset + Core.Reset) restores both to a state bit-identical
// with a fresh build, so pooling cannot perturb results.
type modelSim struct {
	m *mem.Memory
	c *cpu.Core
}

var modelSimPool = sync.Pool{New: func() any {
	m := mem.New()
	return &modelSim{m: m, c: cpu.New(cpu.Config{}, m)}
}}

// ModelTrace produces the measured-trace model for a victim: the
// per-step leading PCs and data-access flags an ideal NV-S extraction
// would produce (macro-fused pairs collapse to their leading PC, the
// §7.3 limit). The calibration test validates this model against real
// end-to-end NV-S runs. It is safe for concurrent use.
func ModelTrace(fn *codegen.Func, opts codegen.Options, args []uint64) (pcs []uint64, data []bool, err error) {
	return modelTrace(fn, opts, args, nil, nil)
}

// traceBufs is a reusable pcs/data pair for modelTrace fan-outs: corpus
// workers recycle them through a pool so each of the hundreds of
// thousands of traces appends into grown-once buffers.
type traceBufs struct {
	pcs  []uint64
	data []bool
}

var traceBufPool = sync.Pool{New: func() any { return new(traceBufs) }}

// modelTrace is ModelTrace with an optional shard: the shard's counters
// are attached after the pooled core's Reset (which detaches observers).
// When bufs is non-nil the returned slices share its backing arrays and
// are only valid until the bufs is reused or returned to its pool.
func modelTrace(fn *codegen.Func, opts codegen.Options, args []uint64, sh *simShard, bufs *traceBufs) (pcs []uint64, data []bool, err error) {
	if bufs != nil {
		pcs, data = bufs.pcs[:0], bufs.data[:0]
	}
	prog, err := buildVictimProgram(fn, opts)
	if err != nil {
		return nil, nil, err
	}
	sim := modelSimPool.Get().(*modelSim)
	defer modelSimPool.Put(sim)
	sim.m.Reset()
	sim.c.Reset()
	sh.attachCore(sim.c)
	m, c := sim.m, sim.c
	prog.LoadInto(m)
	m.Map(0x7e_0000, 0x2000, mem.PermRW)
	c.SetReg(isa.SP, 0x7e_2000)
	for i, a := range args {
		c.SetReg(isa.Reg(1+i), a)
	}
	c.SetPC(prog.MustLabel("entry"))
	var info cpu.StepInfo
	for steps := 0; ; steps++ {
		if steps > 2_000_000 {
			return nil, nil, fmt.Errorf("experiments: %s did not terminate", fn.Name)
		}
		serr := c.StepInto(&info)
		if serr == cpu.ErrHalted {
			break
		}
		if serr != nil {
			return nil, nil, serr
		}
		if info.Inst.Op == isa.OpHlt {
			break
		}
		pcs = append(pcs, info.PC)
		touched := stepTouchesData(info.Inst)
		if info.Fused {
			touched = touched || stepTouchesData(info.FusedInst)
		}
		data = append(data, touched)
	}
	if bufs != nil {
		bufs.pcs, bufs.data = pcs, data
	}
	return pcs, data, nil
}

// NVSTrace runs the full supervisor attack end to end against fn inside
// an SGX enclave and returns the reconstructed per-step PCs and
// data-access signals, plus the number of enclave executions used.
func NVSTrace(cfg Config, fn *codegen.Func, opts codegen.Options, args []uint64) (pcs []uint64, data []bool, runs int, err error) {
	cfg = cfg.withDefaults()
	return nvsTrace(cfg, cfg.obsCtx(), 0, fn, opts, args)
}

// nvsTrace is NVSTrace after defaults, with the caller's observability
// context: the run's core, attacker and (when enabled) injector are
// wired to a fresh shard laned on tid, flushed when the run finishes.
func nvsTrace(cfg Config, eo *expObs, tid int64, fn *codegen.Func, opts codegen.Options, args []uint64) (pcs []uint64, data []bool, runs int, err error) {
	prog, err := buildVictimProgram(fn, opts)
	if err != nil {
		return nil, nil, 0, err
	}
	sh := eo.shard(tid)
	c := cpu.New(cfg.CPU, mem.New())
	sh.attachCore(c)
	if cfg.Noise > 0 {
		c.LBR.SetNoise(cfg.Noise, cfg.Seed)
	}
	enc, err := sgx.Create(c, prog, sgx.Config{
		Entry: prog.MustLabel("entry"),
		Stack: sgx.Region{Addr: 0x7e_0000, Size: 0x2000},
	})
	if err != nil {
		return nil, nil, 0, err
	}
	for i, a := range args {
		enc.SetInitReg(isa.Reg(1+i), a)
	}
	att, err := core.NewAttacker(c, aliasDistance(cfg.CPU))
	if err != nil {
		return nil, nil, 0, err
	}
	sh.attachAttacker(att)
	// Deterministic interference (when enabled) perturbs the supervisor
	// attacker's probes and LBR reads; degraded probes skip their search
	// advance and the next replay run retries them.
	var inj *interfere.Injector
	if cfg.Interference.Enabled() {
		inj = interfere.New(cfg.Interference, c, cfg.Seed)
		sh.attachInjector(inj)
		att.Interfere = inj
	}
	defer func() {
		var events []interfere.Event
		if inj != nil {
			events = inj.Trace()
		}
		sh.flush(events)
	}()
	sup := core.NewSupervisorAttack(att, enc, core.SupervisorConfig{BlocksPerCall: cfg.NVSBlocksPerCall})
	defer sup.Close()
	res, err := sup.ExtractTrace()
	if err != nil {
		return nil, nil, 0, err
	}
	return res.Trace.PCs(), res.DataTouched, res.Runs, nil
}

// sliceVictim extracts the target function's trace from the measured
// step stream: the entry stub's call is the first data-touching far
// transfer, so the first sliced trace whose entry is not the stub is
// the victim function.
func sliceVictim(pcs []uint64, data []bool) (fingerprint.FuncTrace, error) {
	traces := fingerprint.Slice(pcs, data)
	if len(traces) == 0 {
		return fingerprint.FuncTrace{}, fmt.Errorf("experiments: no function traces sliced")
	}
	// The outermost (last-completed) trace is the called victim.
	best := traces[0]
	for _, t := range traces {
		if len(t.PCs) > len(best.PCs) {
			best = t
		}
	}
	return best, nil
}

// ReferenceFor compiles fn standalone and returns its static-PC
// fingerprint.
func ReferenceFor(fn *codegen.Func, opts codegen.Options) (fingerprint.Reference, error) {
	b := asm.NewBuilder(victimBase)
	if err := codegen.Emit(b, fn, opts); err != nil {
		return fingerprint.Reference{}, err
	}
	p, err := b.Build()
	if err != nil {
		return fingerprint.Reference{}, err
	}
	pcs, err := codegen.StaticPCs(p, fn.Name)
	if err != nil {
		return fingerprint.Reference{}, err
	}
	return fingerprint.NewReference(fn.Name, pcs), nil
}

// Figure12Result summarizes one reference's ranking over all victims.
type Figure12Result struct {
	Reference      string
	Top            []stats.Scored // top-k victims by similarity, descending
	SelfSimilarity float64        // similarity of the true function to itself
	SelfRank       int            // 1 = the true function wins (paper's result)
	BestImpostor   float64        // highest similarity among non-matching victims
}

// Figure12 reproduces the §7.3 fingerprinting experiment: victim traces
// are collected for GCD, bn_cmp and corpusN synthetic functions; each
// is scored against the GCD and bn_cmp reference fingerprints. The
// paper observes the true function at rank 1 with self-similarity 75.8%
// (GCD) and 88.2% (bn_cmp); the corpus has 175,168 functions.
//
// GCD and bn_cmp victim traces come from full end-to-end NV-S runs; the
// corpus uses the calibrated measured-trace model (see ModelTrace and
// TestNVSCalibration) — running the genuine single-stepped binary
// search 175 thousand times is the one place we trade fidelity for
// time, as DESIGN.md documents.
func Figure12(cfg Config, corpusN, topK int) ([]Figure12Result, error) {
	cfg = cfg.withDefaults()
	opts := codegen.Options{Opt: codegen.O2}
	gcdFn := victim.MustGCDVersion("3.0", false)
	bnFn := victim.BnCmp(false)

	refGCD, err := ReferenceFor(gcdFn, opts)
	if err != nil {
		return nil, err
	}
	refBn, err := ReferenceFor(bnFn, opts)
	if err != nil {
		return nil, err
	}

	rng := nvrand.New(cfg.Seed)
	gcdArgs := []uint64{65537, rng.Uint64() | 1}
	bnArgs := []uint64{rng.Uint64(), rng.Uint64()}
	eo := cfg.obsCtx()

	// End-to-end NV-S traces for the two targets.
	victims := make(map[string]fingerprint.FuncTrace)
	for i, tgt := range []struct {
		name string
		fn   *codegen.Func
		args []uint64
	}{{"mbedtls_mpi_gcd", gcdFn, gcdArgs}, {"bn_cmp", bnFn, bnArgs}} {
		pcs, data, _, err := nvsTrace(cfg, eo, int64(i), tgt.fn, opts, tgt.args)
		if err != nil {
			return nil, fmt.Errorf("NV-S on %s: %w", tgt.name, err)
		}
		ft, err := sliceVictim(pcs, data)
		if err != nil {
			return nil, err
		}
		victims[tgt.name] = ft
	}

	// Corpus victims through the measured-trace model, fanned out on the
	// bounded deterministic engine: cfg.Workers pooled simulators pull
	// from the corpus (index-keyed results, goroutine count bounded by
	// the worker pool — never one goroutine per corpus function).
	corpus := victim.Corpus(victim.CorpusSpec{N: corpusN, Seed: cfg.Seed})
	type traced struct {
		name string
		ft   fingerprint.FuncTrace
	}
	results, err := runner.Map(cfg.engine(), len(corpus), func(t runner.Task) (traced, error) {
		sh := eo.shard(int64(t.Index))
		defer sh.flush(nil)
		fn := corpus[t.Index]
		args := make([]uint64, len(fn.Params))
		for j := range args {
			args[j] = (uint64(t.Index)*0x9E3779B9 + uint64(j)*12345) | 1
		}
		bufs := traceBufPool.Get().(*traceBufs)
		defer traceBufPool.Put(bufs)
		pcs, data, err := modelTrace(fn, opts, args, sh, bufs)
		if err != nil {
			return traced{}, fmt.Errorf("corpus %s: %w", fn.Name, err)
		}
		// sliceVictim copies what it keeps, so the pooled buffers are
		// free for the next task once it returns.
		ft, err := sliceVictim(pcs, data)
		if err != nil {
			return traced{}, fmt.Errorf("corpus %s: %w", fn.Name, err)
		}
		return traced{name: fn.Name, ft: ft}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range results {
		victims[r.name] = r.ft
	}

	// Normalize each victim once: the set is reference-independent, and
	// building it inside the reference loop doubled the map work.
	sets := make(map[string]map[uint64]bool, len(victims))
	for name, ft := range victims {
		sets[name] = ft.NormalizedSet()
	}

	var out []Figure12Result
	for _, ref := range []fingerprint.Reference{refGCD, refBn} {
		scores := make([]stats.Scored, 0, len(victims))
		for name := range victims {
			scores = append(scores, stats.Scored{
				Label: name,
				Score: fingerprint.Similarity(sets[name], ref),
			})
		}
		res := Figure12Result{
			Reference: ref.Name,
			Top:       stats.TopK(scores, topK),
			SelfRank:  stats.RankOf(scores, ref.Name),
		}
		for _, s := range scores {
			if s.Label == ref.Name {
				res.SelfSimilarity = s.Score
			} else if s.Score > res.BestImpostor {
				res.BestImpostor = s.Score
			}
		}
		out = append(out, res)
	}
	return out, nil
}
