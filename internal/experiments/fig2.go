package experiments

import (
	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/runner"
	"repro/internal/stats"
)

// sweepPoint is one (withF2, withoutF2) measurement of a Figure 2/4
// sweep, produced per task index by the parallel engine.
type sweepPoint struct {
	with, without float64
}

// Figure2 reproduces the paper's Experiment 1 (§2.3, Figure 2): how
// non-control-transfer instructions deallocate BTB entries.
//
// Layout (offsets within one 32-byte-aligned block, low address bits
// identical across the two regions 4 GiB apart):
//
//	region A:  F1 = base+0x10: jmp8 L1 (occupies [0x10, 0x11]); L1: ret
//	region B:  F2 = alias+off: nops covering [off, 0x1c]; L2 = 0x1d: ret
//
// Per iteration: flush the BTB, call F1 (allocates the entry keyed at
// offset 0x11), call F2 (its nops may false-hit the entry), call F1
// again and read the LBR cycle delta of the subsequent ret — the
// paper's prediction-outcome measurement. The control series skips the
// F2 call.
//
// Expected shape: elevated cycles for F2 offsets <= 0x11 (collision:
// F2 < F1+2), baseline otherwise; the control series flat.
func Figure2(cfg Config) (withF2, withoutF2 *stats.Series, err error) {
	cfg = cfg.withDefaults()
	const (
		base   = uint64(0x40_0000) // block-aligned
		f1Off  = uint64(0x10)
		l2Off  = uint64(0x1d)
		sweepN = 0x1d
	)
	alias := base + aliasDistance(cfg.CPU)
	eo := cfg.obsCtx()

	// Each sweep offset is an independent program + harness, so the
	// sweep fans out on the engine; results are keyed by offset and
	// bit-identical for any worker count.
	points, err := runner.Map(cfg.engine(), int(sweepN), func(t runner.Task) (sweepPoint, error) {
		sh := eo.shard(int64(t.Index))
		defer sh.flush(nil)
		f2Off := uint64(t.Index)
		b := asm.NewBuilder(base + f1Off)
		b.Label("f1")
		b.Inst(isa.Jmp8(4)) // jmp8 l1: 2 bytes at [0x10,0x11], target 0x16
		b.Nops(4)
		b.Label("l1")
		b.Ret()
		b.Org(alias + f2Off)
		b.Label("f2")
		for o := f2Off; o < l2Off; o++ {
			b.Nop()
		}
		b.Label("l2")
		b.Ret()
		prog, berr := b.Build()
		if berr != nil {
			return sweepPoint{}, berr
		}
		h := newHarness(cfg, prog, sh)
		f1 := prog.MustLabel("f1")
		f2 := prog.MustLabel("f2")
		retPC := prog.MustLabel("l1")

		measure := func(callF2 bool) (float64, error) {
			var sum float64
			for i := 0; i < cfg.Iters; i++ {
				h.core.BTB.Flush()
				if err := h.callVia(f1); err != nil {
					return 0, err
				}
				if callF2 {
					if err := h.callVia(f2); err != nil {
						return 0, err
					}
				}
				h.core.LBR.Clear()
				if err := h.callVia(f1); err != nil {
					return 0, err
				}
				d, err := h.deltaOf(retPC)
				if err != nil {
					return 0, err
				}
				sum += float64(d)
			}
			return sum / float64(cfg.Iters), nil
		}

		var pt sweepPoint
		var merr error
		if pt.with, merr = measure(true); merr != nil {
			return sweepPoint{}, merr
		}
		if pt.without, merr = measure(false); merr != nil {
			return sweepPoint{}, merr
		}
		return pt, nil
	})
	if err != nil {
		return nil, nil, err
	}

	withF2 = &stats.Series{Name: "with-F2"}
	withoutF2 = &stats.Series{Name: "no-F2"}
	for f2Off, pt := range points {
		withF2.Add(float64(f2Off), pt.with)
		withoutF2.Add(float64(f2Off), pt.without)
	}
	return withF2, withoutF2, nil
}

// Figure2Gap summarizes the Figure 2 result: the mean cycle gap between
// the two series inside the collision range (F2 <= F1+1) and outside
// it. A faithful reproduction shows a large in-range gap and ~zero
// out-of-range gap.
func Figure2Gap(withF2, withoutF2 *stats.Series) (inRange, outRange float64) {
	const collisionEnd = 0x11
	var inSum, outSum float64
	var inN, outN int
	for i := range withF2.X {
		gap := withF2.Y[i] - withoutF2.Y[i]
		if uint64(withF2.X[i]) <= collisionEnd {
			inSum += gap
			inN++
		} else {
			outSum += gap
			outN++
		}
	}
	if inN > 0 {
		inRange = inSum / float64(inN)
	}
	if outN > 0 {
		outRange = outSum / float64(outN)
	}
	return inRange, outRange
}
