package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/interfere"
	"repro/internal/obs"
)

// obsProbe runs a representative slice of the pipeline — a parallel
// Figure 2 sweep plus an interference-degraded UseCase1 run — with the
// given instrumentation and returns the JSON-marshaled results.
// Instrumentation is write-only, so these bytes must be identical
// whether or not reg/tr are set and for any worker count.
func obsProbe(t *testing.T, backend string, workers int, reg *obs.Registry, tr *obs.Trace) []byte {
	t.Helper()
	fig := Config{Iters: 3, Seed: 29, Workers: workers, Obs: reg, Trace: tr, Backend: backend}
	withF2, withoutF2, err := Figure2(fig)
	if err != nil {
		t.Fatal(err)
	}
	uc := Config{Iters: 1, Seed: 5, Workers: workers, Obs: reg, Trace: tr, Backend: backend}
	uc.Interference = interfere.Config{
		InterruptRate:  0.002,
		RecordLossRate: 0.05,
		FlushRate:      0.005,
	}
	gcd, err := UseCase1GCD(uc, 2, AllDefenses())
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(struct {
		WithY, WithoutY []float64
		GCD             *UseCase1Result
	}{withF2.Y, withoutF2.Y, gcd})
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// metricValues flattens a registry snapshot to name{labels} -> value.
func metricValues(reg *obs.Registry) map[string]uint64 {
	out := map[string]uint64{}
	for _, m := range reg.Snapshot() {
		key := m.Name
		for k, v := range m.Labels {
			key += "{" + k + "=" + v + "}"
		}
		if m.Value != nil {
			out[key] = *m.Value
		}
	}
	return out
}

// TestObsDeterminism is the observability layer's core guarantee:
// attaching a metrics registry and a tracer changes no result byte, for
// any worker count, and the metric totals themselves are identical
// across worker counts (shard sums are order-independent). The
// guarantee is per backend: the arm model (folded set hash, no
// false-hit deallocation) rides the same shard plumbing as the Intel
// default.
func TestObsDeterminism(t *testing.T) {
	for _, backend := range []string{"intel-skylake", "arm"} {
		t.Run("backend="+backend, func(t *testing.T) { testObsDeterminism(t, backend) })
	}
}

func testObsDeterminism(t *testing.T, backend string) {
	baseline := obsProbe(t, backend, 1, nil, nil)

	var prev map[string]uint64
	for _, workers := range []int{1, 4} {
		if got := obsProbe(t, backend, workers, nil, nil); !bytes.Equal(got, baseline) {
			t.Fatalf("uninstrumented Workers=%d diverges from baseline", workers)
		}
		reg := obs.NewRegistry()
		tr := obs.NewTrace()
		if got := obsProbe(t, backend, workers, reg, tr); !bytes.Equal(got, baseline) {
			t.Fatalf("instrumented Workers=%d changed result bytes", workers)
		}

		vals := metricValues(reg)
		names := []string{
			"btb_lookups_total", "btb_hits_total",
			"cpu_fetch_windows_total", "cpu_squashes_total", "cpu_false_hits_total",
			"cpu_retired_total", "probe_primes_total", "probe_rounds_total",
			"runner_tasks_total",
		}
		if backend != "arm" {
			// Arm updates BTB state only for actual branches: false hits
			// cost the resteer but never invalidate, so the counter staying
			// at zero is the policy working, not missing instrumentation.
			names = append(names, "btb_invalidates_total")
		}
		for _, name := range names {
			if vals[name] == 0 {
				t.Errorf("Workers=%d: %s = 0, want > 0", workers, name)
			}
		}
		if backend == "arm" && vals["btb_invalidates_total"] != 0 {
			t.Errorf("Workers=%d: arm recorded %d BTB invalidates, want 0 (branch-only update policy)",
				workers, vals["btb_invalidates_total"])
		}
		// The degraded UseCase1 run must have delivered classed faults.
		var faults uint64
		for k, v := range vals {
			if len(k) > len("interfere_faults_total") && k[:len("interfere_faults_total")] == "interfere_faults_total" {
				faults += v
			}
		}
		if faults == 0 {
			t.Errorf("Workers=%d: no interfere_faults_total{class=...} recorded", workers)
		}
		if prev != nil {
			for k, v := range vals {
				if prev[k] != v {
					t.Errorf("metric %s differs across worker counts: %d vs %d", k, prev[k], v)
				}
			}
			for k := range prev {
				if _, ok := vals[k]; !ok {
					t.Errorf("metric %s present at Workers=1 but missing at Workers=4", k)
				}
			}
		}
		prev = vals

		if tr.Len() == 0 {
			t.Fatalf("Workers=%d: tracer recorded no events", workers)
		}
		seen := map[string]bool{}
		for _, ev := range tr.Events() {
			seen[ev.Name] = true
		}
		for _, want := range []string{"prime", "victim", "probe", "pw_confidence", "fragment", "fault"} {
			if !seen[want] {
				t.Errorf("Workers=%d: trace missing %q events", workers, want)
			}
		}
	}

	// The cluster-observability surfaces (PR 9) are write-only too: a
	// continuous profiler sampling runtime state into the SAME registry
	// the pipeline instruments, and an SLO tracker reading its
	// histograms, run concurrently with the probe — and the result
	// bytes still match the uninstrumented baseline exactly.
	reg := obs.NewRegistry()
	prof := obs.NewProfiler(reg, 2*time.Millisecond, 8)
	prof.Start()
	defer prof.Stop()
	slo := obs.NewSLOTracker(reg, time.Hour, 0)
	slo.Add(obs.LatencyObjective("probe_latency",
		reg.Histogram("obs_probe_latency_seconds", "probe wall time (test-only objective)", obs.DefaultDurationBuckets()),
		1, 0.99))
	slo.Start()
	defer slo.Stop()
	tr := obs.NewTrace()
	got := obsProbe(t, backend, 4, reg, tr)
	slo.Tick()
	prof.Sample()
	if !bytes.Equal(got, baseline) {
		t.Fatal("profiler+SLO instrumentation changed result bytes")
	}
	if !slo.Healthy() {
		t.Fatalf("idle SLO tracker unhealthy: %+v", slo.Report())
	}
	if s := prof.Peek(); s.Goroutines <= 0 {
		t.Fatalf("profiler sample looks dead: %+v", s)
	}
}
