package experiments

import (
	"repro/internal/codegen"
	"repro/internal/fingerprint"
	"repro/internal/nvrand"
	"repro/internal/runner"
	"repro/internal/victim"
)

// SimilarityMatrix is a labeled square matrix of fingerprint scores:
// Cells[i][j] = similarity of victim i's measured trace to reference j.
type SimilarityMatrix struct {
	Labels []string
	Cells  [][]float64
}

// Figure13Versions reproduces Figure 13 (left): GCD from eight mbedTLS
// versions, each measured as a victim and fingerprinted against each
// version's static reference. Versions sharing an implementation
// (2.5–2.15; 2.16–2.18; 3.0–3.1) score high against each other and low
// across implementation changes.
func Figure13Versions(cfg Config) (*SimilarityMatrix, error) {
	cfg = cfg.withDefaults()
	opts := codegen.Options{Opt: codegen.O2}
	names := victim.GCDVersionNames
	fns := make([]*codegen.Func, len(names))
	for i, v := range names {
		fns[i] = victim.MustGCDVersion(v, false)
	}
	return similarityMatrix(cfg, names, fns, func(int) codegen.Options { return opts })
}

// Figure13OptLevels reproduces Figure 13 (right): one GCD source
// compiled at -O0/-O2/-O3, cross-fingerprinted. Same flag pairs score
// high; different flags change layout enough to break matching.
func Figure13OptLevels(cfg Config) (*SimilarityMatrix, error) {
	cfg = cfg.withDefaults()
	levels := []codegen.OptLevel{codegen.O0, codegen.O2, codegen.O3}
	names := make([]string, len(levels))
	fns := make([]*codegen.Func, len(levels))
	for i, l := range levels {
		names[i] = l.String()
		fns[i] = victim.MustGCDVersion("3.0", false)
	}
	return similarityMatrix(cfg, names, fns, func(i int) codegen.Options {
		return codegen.Options{Opt: levels[i]}
	})
}

func similarityMatrix(cfg Config, names []string, fns []*codegen.Func, optOf func(int) codegen.Options) (*SimilarityMatrix, error) {
	rng := nvrand.New(cfg.Seed)
	args := []uint64{65537, rng.Uint64() | 1}

	// Reference fingerprint and measured trace per function, in
	// parallel: every matrix cell then derives from the index-keyed
	// results, so the matrix is identical for any worker count.
	type refTrace struct {
		ref fingerprint.Reference
		ft  fingerprint.FuncTrace
	}
	cells, err := runner.Map(cfg.engine(), len(fns), func(t runner.Task) (refTrace, error) {
		fn := fns[t.Index]
		ref, err := ReferenceFor(fn, optOf(t.Index))
		if err != nil {
			return refTrace{}, err
		}
		pcs, data, err := ModelTrace(fn, optOf(t.Index), args)
		if err != nil {
			return refTrace{}, err
		}
		ft, err := sliceVictim(pcs, data)
		if err != nil {
			return refTrace{}, err
		}
		return refTrace{ref: ref, ft: ft}, nil
	})
	if err != nil {
		return nil, err
	}
	refs := make([]fingerprint.Reference, len(fns))
	traces := make([]fingerprint.FuncTrace, len(fns))
	for i, c := range cells {
		refs[i] = c.ref
		traces[i] = c.ft
	}

	m := &SimilarityMatrix{Labels: append([]string(nil), names...)}
	for i := range fns {
		row := make([]float64, len(fns))
		for j := range fns {
			row[j] = fingerprint.Similarity(traces[i].NormalizedSet(), refs[j])
		}
		m.Cells = append(m.Cells, row)
	}
	return m, nil
}
