package experiments

import "testing"

// TestFigure2Shape verifies the Takeaway-1 reproduction: a clear cycle
// gap between the with-F2 and no-F2 series exactly while the nops
// collide with the jump's BTB entry (F2 < F1+2), and none outside.
func TestFigure2Shape(t *testing.T) {
	with, without, err := Figure2(Config{Iters: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(with.X) != len(without.X) || len(with.X) != 0x1d {
		t.Fatalf("series lengths: %d, %d", len(with.X), len(without.X))
	}
	in, out := Figure2Gap(with, without)
	if in < 4 {
		t.Errorf("collision-range gap = %.2f cycles, want >= 4 (misprediction bubble)", in)
	}
	if out > 1 {
		t.Errorf("out-of-range gap = %.2f cycles, want ~0", out)
	}
	// Point checks at the boundary F2 = F1+1 = 0x11 (collides) and
	// F2 = F1+2 = 0x12 (does not).
	if with.Y[0x11]-without.Y[0x11] < 4 {
		t.Errorf("F2=0x11 should collide: gap %.2f", with.Y[0x11]-without.Y[0x11])
	}
	if with.Y[0x12]-without.Y[0x12] > 1 {
		t.Errorf("F2=0x12 should not collide: gap %.2f", with.Y[0x12]-without.Y[0x12])
	}
}

// TestFigure2WithNoise: with rdtsc-grade noise and enough averaging the
// gap survives — the measurement methodology the paper relies on.
func TestFigure2WithNoise(t *testing.T) {
	with, without, err := Figure2(Config{Iters: 60, Noise: 3})
	if err != nil {
		t.Fatal(err)
	}
	in, out := Figure2Gap(with, without)
	if in < 3 {
		t.Errorf("noisy collision gap = %.2f, want >= 3", in)
	}
	if out > 2 {
		t.Errorf("noisy out-of-range gap = %.2f, want small", out)
	}
}

// TestFigure4Shape verifies the Takeaway-2 reproduction: range-query
// semantics make the aliased entry fire for fetch offsets at or below
// its own, and the control series declines with fewer executed nops.
func TestFigure4Shape(t *testing.T) {
	with, without, err := Figure4(Config{Iters: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(with.X) != 0x1f {
		t.Fatalf("series length = %d", len(with.X))
	}
	in, out, slope := Figure4Gap(with, without)
	if in < 4 {
		t.Errorf("range-hit gap = %.2f cycles, want >= 4", in)
	}
	if out > 1 {
		t.Errorf("out-of-range gap = %.2f, want ~0", out)
	}
	if slope <= 0 {
		t.Errorf("control slope = %.3f, want positive (fewer nops, fewer cycles)", slope)
	}
	// Boundary: F1 = 0x11 hits, F1 = 0x12 does not.
	if with.Y[0x11]-without.Y[0x11] < 4 {
		t.Errorf("F1=0x11 should hit the aliased entry: gap %.2f", with.Y[0x11]-without.Y[0x11])
	}
	if with.Y[0x12]-without.Y[0x12] > 1 {
		t.Errorf("F1=0x12 should not: gap %.2f", with.Y[0x12]-without.Y[0x12])
	}
}

// TestFigure4FullTagAblation: with full BTB tags no aliasing exists and
// the two series coincide everywhere — the attack's precondition
// disappears (DESIGN.md ablation 4).
func TestFigure4FullTagAblation(t *testing.T) {
	cfg := Config{Iters: 5}
	cfg.CPU.BTB.Sets = 512
	cfg.CPU.BTB.Ways = 8
	cfg.CPU.BTB.OffsetBits = 5
	cfg.CPU.BTB.TagTopBit = 33 // IceLake: 8 GiB alias distance...
	// ...but keep the regions 8 GiB apart via aliasDistance, so aliasing
	// still works; the true ablation uses TagTopBit=64 in Figure2 form
	// below.
	with, without, err := Figure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in, _, _ := Figure4Gap(with, without)
	if in < 4 {
		t.Errorf("IceLake geometry should still alias at 8 GiB: gap %.2f", in)
	}
}

// TestFigure2IceLake: the same Takeaway-1 signal on IceLake geometry —
// the aliasing distance doubles to 8 GiB (footnote 1 of the paper).
func TestFigure2IceLake(t *testing.T) {
	cfg := Config{Iters: 5}
	cfg.CPU.BTB.Sets = 1024
	cfg.CPU.BTB.Ways = 8
	cfg.CPU.BTB.OffsetBits = 5
	cfg.CPU.BTB.TagTopBit = 33
	with, without, err := Figure2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	in, out := Figure2Gap(with, without)
	if in < 4 || out > 1 {
		t.Errorf("IceLake gaps: collision %.2f, outside %.2f", in, out)
	}
}
