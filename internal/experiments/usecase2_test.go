package experiments

import (
	"testing"

	"repro/internal/codegen"
	"repro/internal/victim"
)

// TestNVSCalibration validates the measured-trace model against real
// end-to-end NV-S runs: for sample victims the model's PC stream must
// equal the NV-S reconstruction. This is the substitution-soundness
// check that lets Figure 12 use the model for the 175k-function corpus.
func TestNVSCalibration(t *testing.T) {
	cfg := Config{Iters: 1, Seed: 11}
	opts := codegen.Options{Opt: codegen.O2}

	samples := []struct {
		name string
		fn   *codegen.Func
		args []uint64
	}{
		{"bn_cmp", victim.BnCmp(false), []uint64{0x1234_5678_9ABC_DEF0, 0x1234_5678_9ABC_0000}},
	}
	for _, c := range victim.Corpus(victim.CorpusSpec{N: 3, Seed: 21}) {
		args := make([]uint64, len(c.Params))
		for j := range args {
			args[j] = uint64(77+j) | 1
		}
		samples = append(samples, struct {
			name string
			fn   *codegen.Func
			args []uint64
		}{c.Name, c, args})
	}

	for _, s := range samples {
		model, modelData, err := ModelTrace(s.fn, opts, s.args)
		if err != nil {
			t.Fatalf("%s model: %v", s.name, err)
		}
		nvs, nvsData, runs, err := NVSTrace(cfg, s.fn, opts, s.args)
		if err != nil {
			t.Fatalf("%s nvs: %v", s.name, err)
		}
		if len(nvs) != len(model) {
			t.Errorf("%s: NV-S %d steps, model %d", s.name, len(nvs), len(model))
			continue
		}
		wrong := 0
		for i := range model {
			if nvs[i] != model[i] {
				wrong++
			}
		}
		rate := 1 - float64(wrong)/float64(len(model))
		t.Logf("%s: %d steps, %d runs, NV-S/model agreement %.3f", s.name, len(model), runs, rate)
		if rate < 0.97 {
			t.Errorf("%s: agreement %.3f below 0.97", s.name, rate)
		}
		dataWrong := 0
		for i := range modelData {
			if nvsData[i] != modelData[i] {
				dataWrong++
			}
		}
		if dataWrong > len(modelData)/20 {
			t.Errorf("%s: %d/%d data-touch signals disagree", s.name, dataWrong, len(modelData))
		}
	}
}

// TestFigure12SmallCorpus reproduces the Figure 12 shape at reduced
// corpus scale: the true function ranks first against its own reference
// with a clear margin over every impostor.
func TestFigure12SmallCorpus(t *testing.T) {
	results, err := Figure12(Config{Iters: 1, Seed: 13}, 150, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		t.Logf("%s: self=%.3f rank=%d best-impostor=%.3f top=%v",
			r.Reference, r.SelfSimilarity, r.SelfRank, r.BestImpostor, r.Top[:3])
		if r.SelfRank != 1 {
			t.Errorf("%s: true function ranks %d, want 1", r.Reference, r.SelfRank)
		}
		if r.SelfSimilarity < 0.7 {
			t.Errorf("%s: self similarity %.3f too low", r.Reference, r.SelfSimilarity)
		}
		if r.BestImpostor >= r.SelfSimilarity {
			t.Errorf("%s: impostor %.3f >= self %.3f", r.Reference, r.BestImpostor, r.SelfSimilarity)
		}
	}
}

// TestFigure13Versions checks the version-cluster structure of Figure
// 13 (left): within-implementation pairs score ~1, across-implementation
// pairs score clearly lower.
func TestFigure13Versions(t *testing.T) {
	m, err := Figure13Versions(Config{Iters: 1, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	idx := map[string]int{}
	for i, l := range m.Labels {
		idx[l] = i
	}
	same := [][2]string{{"2.5", "2.15"}, {"2.16", "2.18"}, {"3.0", "3.1"}}
	for _, p := range same {
		if got := m.Cells[idx[p[0]]][idx[p[1]]]; got < 0.9 {
			t.Errorf("similarity %s vs %s = %.3f, want ~1 (same implementation)", p[0], p[1], got)
		}
	}
	diff := [][2]string{{"2.5", "2.16"}, {"2.5", "3.0"}, {"2.16", "3.0"}}
	for _, p := range diff {
		hi := m.Cells[idx[p[0]]][idx[p[1]]]
		self := m.Cells[idx[p[0]]][idx[p[0]]]
		if hi >= self {
			t.Errorf("cross-version %s vs %s = %.3f not below self %.3f", p[0], p[1], hi, self)
		}
	}
}

// TestFigure13OptLevels checks Figure 13 (right): same-flag diagonal
// high, cross-flag cells much lower.
func TestFigure13OptLevels(t *testing.T) {
	m, err := Figure13OptLevels(Config{Iters: 1, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Cells {
		if m.Cells[i][i] < 0.9 {
			t.Errorf("diagonal %s = %.3f, want ~1", m.Labels[i], m.Cells[i][i])
		}
		for j := range m.Cells[i] {
			if i != j && m.Cells[i][j] >= m.Cells[i][i] {
				t.Errorf("cross %s vs %s = %.3f not below diagonal %.3f",
					m.Labels[i], m.Labels[j], m.Cells[i][j], m.Cells[i][i])
			}
		}
	}
}
