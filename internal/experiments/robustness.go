package experiments

import (
	"fmt"
	"strings"

	"repro/internal/interfere"
	"repro/internal/runner"
)

// RobustnessPoint is one cell of the robustness sweep: use-case-1
// accuracy under a single fault class at a single rate.
type RobustnessPoint struct {
	Class    string
	Rate     float64
	Accuracy float64
	// WilsonLo/WilsonHi bound Accuracy with the 95% Wilson interval.
	WilsonLo, WilsonHi float64
	// MeanConfidence is the pipeline's own estimate of measurement
	// quality; it should fall alongside Accuracy as rates grow.
	MeanConfidence float64
	// DegradedFrags / DiscardedReps count the self-healing machinery's
	// interventions; Events and TraceHash fingerprint the injected
	// fault schedule (reproducibility: same Config → same hash for any
	// Workers).
	DegradedFrags int
	DiscardedReps int
	Events        uint64
	TraceHash     uint64
}

// RobustnessResult is the full sweep, grouped by fault class in
// interfere.Classes order with ascending rates per class.
type RobustnessResult struct {
	Points  []RobustnessPoint
	RunsPer int
}

// String renders one table row per point.
func (r *RobustnessResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-11s %-8s %-9s %-15s %-6s %-9s %s\n",
		"class", "rate", "accuracy", "95% CI", "conf", "degraded", "events")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-11s %-8.4g %-9.3f %6.3f–%-8.3f %-6.2f %-9d %d\n",
			p.Class, p.Rate, p.Accuracy, p.WilsonLo, p.WilsonHi, p.MeanConfidence, p.DegradedFrags, p.Events)
	}
	return strings.TrimRight(b.String(), "\n")
}

// ClassRates returns the rate ladder swept for a fault class. Interrupt
// and co-runner rates are per retired step, so they saturate the attack
// far sooner than the per-record read faults.
func ClassRates(class string) []float64 {
	switch class {
	case "interrupt", "corunner":
		return []float64{0, 0.001, 0.005, 0.02, 0.1}
	default: // recordloss, outlier: per-record probabilities
		return []float64{0, 0.02, 0.05, 0.1, 0.25}
	}
}

// RobustnessSweep measures use-case-1 (GCD) accuracy against each fault
// class across its rate ladder, one attack pipeline per (class, rate)
// cell, fanned out on the bounded deterministic engine. Every cell uses
// cfg.Seed directly — cells differ only in their interference config —
// so the sweep is bit-identical for any Workers value, including each
// cell's injected-fault TraceHash.
func RobustnessSweep(cfg Config, classes []string, runsPer int) (*RobustnessResult, error) {
	cfg = cfg.withDefaults()
	if len(classes) == 0 {
		classes = interfere.Classes()
	}
	type cell struct {
		class string
		rate  float64
	}
	var cells []cell
	for _, cl := range classes {
		for _, rate := range ClassRates(cl) {
			cells = append(cells, cell{cl, rate})
		}
	}
	points, err := runner.Map(cfg.engine(), len(cells), func(t runner.Task) (RobustnessPoint, error) {
		cl := cells[t.Index]
		c := cfg
		var err error
		c.Interference, err = interfere.ClassConfig(cl.class, cl.rate)
		if err != nil {
			return RobustnessPoint{}, err
		}
		res, err := UseCase1GCD(c, runsPer, AllDefenses())
		if err != nil {
			return RobustnessPoint{}, fmt.Errorf("class %s rate %g: %w", cl.class, cl.rate, err)
		}
		return RobustnessPoint{
			Class:          cl.class,
			Rate:           cl.rate,
			Accuracy:       res.Accuracy,
			WilsonLo:       res.WilsonLo,
			WilsonHi:       res.WilsonHi,
			MeanConfidence: res.MeanConfidence,
			DegradedFrags:  res.DegradedFrags,
			DiscardedReps:  res.DiscardedReps,
			Events:         res.Events,
			TraceHash:      res.TraceHash,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &RobustnessResult{Points: points, RunsPer: runsPer}, nil
}
