// Package experiments reproduces every figure and headline number of
// the paper's evaluation on the simulated substrate. Each experiment
// returns data series/tables that cmd/nightvision prints and
// bench_test.go regenerates; EXPERIMENTS.md records paper-vs-measured.
//
// Sweeps, matrices and corpus fan-outs run on the bounded deterministic
// parallel engine in internal/runner: results are bit-identical for any
// Config.Workers value, and peak goroutine growth is bounded by the
// worker count.
package experiments

import (
	"context"
	"fmt"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/interfere"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/uarch"
)

// Config holds common experiment knobs.
type Config struct {
	// Iters is the number of measurement repetitions per data point
	// (the paper uses 1000).
	Iters int
	// Noise is the LBR measurement noise stddev in cycles (0 models the
	// paper's near-noiseless LBR channel; ~10 models an rdtsc channel).
	Noise float64
	// Seed drives all randomness. Zero is a sentinel meaning "use the
	// default seed" (0xA11): an explicit zero seed is not expressible,
	// which is why cmd/nightvision rejects -seed 0 outright instead of
	// silently substituting.
	Seed uint64
	// Workers bounds the parallelism of the experiment engine
	// (internal/runner): the number of worker goroutines and of
	// concurrently live simulators. 0 means runtime.GOMAXPROCS(0);
	// 1 runs serially. Results are bit-identical for any value.
	Workers int
	// Ctx, when non-nil, cancels the experiment between engine tasks
	// (deadline or job cancellation from internal/jobs). Like Workers it
	// is an execution detail: it never changes the bytes of a completed
	// result, only whether the run completes.
	Ctx context.Context
	// Backend names the microarchitecture backend (internal/uarch) that
	// supplies the core configuration when CPU is zero. Empty means
	// uarch.DefaultName (intel-skylake, the paper's target). Registry
	// entries validate the name against the backend enum before it gets
	// here; an unknown name at this level falls back to the default.
	Backend string
	// CPU optionally overrides the core configuration (zero value =
	// derive from Backend).
	CPU cpu.Config
	// NVSBlocksPerCall overrides N of Figure 10 for NV-S runs (0 =
	// the SupervisorConfig default of 8).
	NVSBlocksPerCall int
	// Repeats is the per-measurement averaging factor for the leakage
	// experiments (the paper repeats noisy measurements and averages;
	// default 1 — the noiseless LBR needs no averaging).
	Repeats int
	// Interference configures the deterministic fault-injection layer
	// (internal/interfere): timer interrupts, co-runner BTB pollution,
	// LBR loss/flush and measurement outliers. The zero value disables
	// injection entirely, leaving every experiment bit-identical to a
	// run without the layer.
	Interference interfere.Config
	// FaultRetries is the budget of extra measurement repetitions a
	// leakage run may spend replacing repetitions lost to interference
	// before degrading to a partial result. Default 2.
	FaultRetries int
	// Obs, when non-nil, receives microarchitectural and pipeline
	// metrics (BTB lookups, squashes, probe retries, interference
	// faults, engine tasks). Trace, when non-nil, records the attack
	// pipeline timeline. Both are strictly write-only for experiment
	// code: they never influence results, cache keys or Result bytes —
	// instrumented runs are bit-identical to uninstrumented ones (see
	// TestObsDeterminism).
	Obs   *obs.Registry
	Trace *obs.Trace
}

func (c Config) withDefaults() Config {
	if c.Iters == 0 {
		c.Iters = 1000
	}
	if c.Backend == "" {
		c.Backend = uarch.DefaultName
	}
	if c.CPU == (cpu.Config{}) {
		if b, ok := uarch.Get(c.Backend); ok {
			c.CPU = cpu.ConfigFor(b)
		}
		// Unknown names leave CPU zero: cpu.New's own defaulting takes
		// over (intel-skylake), same behavior as before backends existed.
	}
	if c.Seed == 0 {
		c.Seed = 0xA11
	}
	if c.Repeats == 0 {
		c.Repeats = 1
	}
	if c.FaultRetries == 0 {
		c.FaultRetries = 2
	}
	return c
}

// engine returns the runner configuration for this experiment config.
func (c Config) engine() runner.Config {
	rc := runner.Config{Workers: c.Workers, Seed: c.Seed, Ctx: c.Ctx}
	if c.Obs != nil {
		rc.TaskCounter = c.Obs.Counter("runner_tasks_total", "tasks executed by the parallel experiment engine")
	}
	return rc
}

// aliasDistance returns the BTB aliasing distance of a core config
// (4 GiB on SkyLake geometry).
func aliasDistance(cfg cpu.Config) uint64 {
	top := cfg.BTB.TagTopBit
	if top == 0 {
		top = 32
	}
	if top >= 64 {
		// Full tags: no aliasing distance exists. Keep the experiment
		// layout (regions 1 TiB apart) so the ablation shows the signal
		// disappearing rather than the harness failing.
		return 1 << 40
	}
	return 1 << top
}

// harness owns a core plus helpers to run code snippets and read LBR
// deltas, mirroring the paper's experiment methodology (§2.3): LBR-based
// cycle deltas between retired branches.
type harness struct {
	core *cpu.Core
	// driver slot per call target: reusing one callr site would leave
	// stale indirect-branch predictions that differ between series.
	// The slot caches its built driver program: the driver for a target
	// never changes, so it is built and loaded exactly once instead of
	// being rebuilt through asm.NewBuilder on every call.
	slots map[uint64]*driverSlot
}

// driverSlot is one cached `callr <target>` driver.
type driverSlot struct {
	base uint64
	prog *asm.Program
}

func newHarness(cfg Config, prog *asm.Program, sh *simShard) *harness {
	m := mem.New()
	prog.LoadInto(m)
	m.Map(0x7e_0000, 0x2000, mem.PermRW)
	core := cpu.New(cfg.CPU, m)
	if cfg.Noise > 0 {
		core.LBR.SetNoise(cfg.Noise, cfg.Seed)
	}
	sh.attachCore(core)
	return &harness{core: core, slots: make(map[uint64]*driverSlot)}
}

// callVia runs `callr <target>` from a scratch driver context until the
// callee returns and the driver halts. The driver itself lives outside
// the experiment's aliased blocks.
func (h *harness) callVia(target uint64) error {
	slot, ok := h.slots[target]
	if !ok {
		base := 0x10_0000 + uint64(len(h.slots))*0x40
		b := asm.NewBuilder(base)
		b.Inst(isa.MovImm64(isa.R13, target))
		b.Inst(isa.Inst{Op: isa.OpCallReg, Dst: isa.R13, Size: 2})
		b.Inst(isa.Hlt())
		p, err := b.Build()
		if err != nil {
			return err
		}
		p.LoadInto(h.core.Mem)
		slot = &driverSlot{base: base, prog: p}
		h.slots[target] = slot
	}

	var saved cpu.ArchState
	st := cpu.ArchState{PC: slot.base}
	st.Regs[isa.SP] = 0x7e_2000
	h.core.ContextSwitch(&saved, &st)
	var info cpu.StepInfo
	for {
		err := h.core.StepInto(&info)
		if err == cpu.ErrHalted {
			break
		}
		if err != nil {
			h.core.ContextSwitch(nil, &saved)
			return err
		}
	}
	h.core.ContextSwitch(nil, &saved)
	return nil
}

// deltaOf returns the LBR cycle delta of the most recent record whose
// From matches pc.
func (h *harness) deltaOf(pc uint64) (uint64, error) {
	rec, ok := h.core.LBR.FindFrom(pc)
	if !ok {
		return 0, fmt.Errorf("experiments: no LBR record from %#x", pc)
	}
	return rec.Cycles, nil
}
