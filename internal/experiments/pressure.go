package experiments

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/osmodel"
	"repro/internal/runner"
	"repro/internal/stats"
)

// FragmentPressure quantifies the §4.2 constraint: "since the BTB's
// size is limited, each context switch should run as few instructions
// as possible to minimize the chance that attacker BTB entries are
// evicted". A victim runs a configurable amount of branch-heavy filler
// (touching many BTB sets) between the monitored event and the probe;
// detection degrades as the filler grows and evictions mount.
//
// Returns two series over filler-branch count: detection rate of a
// truly executed PW, and false-positive rate of a never-executed PW.
func FragmentPressure(cfg Config, fillerCounts []int, trials int) (hit, falsePos *stats.Series, err error) {
	cfg = cfg.withDefaults()

	// Filler sizes are independent victims, so the sweep fans out on
	// the engine with one point per filler count.
	eo := cfg.obsCtx()
	points, err := runner.Map(cfg.engine(), len(fillerCounts), func(t runner.Task) (sweepPoint, error) {
		sh := eo.shard(int64(t.Index))
		defer sh.flush(nil)
		h, f, err := pressurePoint(cfg, fillerCounts[t.Index], trials, sh)
		if err != nil {
			return sweepPoint{}, err
		}
		return sweepPoint{with: h, without: f}, nil
	})
	if err != nil {
		return nil, nil, err
	}

	hit = &stats.Series{Name: "detection"}
	falsePos = &stats.Series{Name: "false-pos"}
	for i, pt := range points {
		hit.Add(float64(fillerCounts[i]), pt.with)
		falsePos.Add(float64(fillerCounts[i]), pt.without)
	}
	return hit, falsePos, nil
}

// pressurePoint measures one filler size.
func pressurePoint(cfg Config, filler, trials int, sh *simShard) (hitRate, falseRate float64, err error) {
	// Victim: touch the monitored range, then execute `filler` jumps
	// spread across BTB sets (64-byte stride walks consecutive sets).
	b := asm.NewBuilder(0x40_0000)
	b.Label("start")
	b.Call("touched")
	if filler > 0 {
		b.Jmp("filler0")
	} else {
		b.Jmp("done")
	}
	b.Org(0x40_0100)
	b.Label("touched")
	b.Nops(16)
	b.Ret()
	b.Org(0x41_0000)
	for i := 0; i < filler; i++ {
		b.Label(fmt.Sprintf("filler%d", i))
		if i+1 < filler {
			b.Jmp(fmt.Sprintf("filler%d", i+1))
		} else {
			b.Jmp("done")
		}
		b.Align(64, byte(isa.OpNop)) // next jump lands in the next set
	}
	b.Label("done")
	b.Inst(isa.Hlt())
	prog, err := b.Build()
	if err != nil {
		return 0, 0, err
	}
	hits, falses := 0, 0
	for trial := 0; trial < trials; trial++ {
		m := mem.New()
		prog.LoadInto(m)
		c := cpu.New(cfg.CPU, m)
		sh.attachCore(c)
		if cfg.Noise > 0 {
			c.LBR.SetNoise(cfg.Noise, cfg.Seed+uint64(trial))
		}
		os := osmodel.New(c)
		proc := os.Spawn("victim", prog.MustLabel("start"), 0x7e_0000, 0x1000)

		att, err := core.NewAttacker(c, aliasDistance(cfg.CPU))
		if err != nil {
			return 0, 0, err
		}
		sh.attachAttacker(att)
		mon, err := att.NewMonitor([]core.PW{
			{Base: 0x40_0100, Len: 16}, // executed
			{Base: 0x40_0180, Len: 16}, // never executed
		})
		if err != nil {
			return 0, 0, err
		}
		if err := mon.Prime(); err != nil {
			return 0, 0, err
		}
		os.Switch(proc)
		if _, err := os.RunUntilStop(1_000_000); err != nil {
			return 0, 0, err
		}
		match, err := mon.Probe()
		if err != nil {
			return 0, 0, err
		}
		if match[0] {
			hits++
		}
		if match[1] {
			falses++
		}
	}
	return float64(hits) / float64(trials), float64(falses) / float64(trials), nil
}
