package experiments

// Observability wiring for the experiment pipeline.
//
// The simulator's hot paths (cpu.Core.Step, btb.Lookup) increment plain
// *obs.Counter fields: one predictable branch when nil, one uncontended
// atomic add when set. To keep that "uncontended" true under the
// parallel engine, counters are never shared across workers while a
// task runs. Instead each task gets a private, freshly allocated
// *shard* of counters attached to its simulator, and the shard is
// folded into the registry-registered global sink counters exactly once
// when the task finishes. Final metric values are sums, so they are
// identical for any worker count and any flush order.
//
// Everything here is nil-safe: with Config.Obs and Config.Trace both
// nil, obsCtx returns nil and every attach/flush call below is a no-op,
// leaving the experiment's work byte-identical to an unwired build.

import (
	"repro/internal/btb"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/interfere"
	"repro/internal/obs"
)

// simSink holds the global counters shards flush into. Registration is
// upsert-style, so building a sink for every experiment run against one
// registry always lands on the same metrics.
type simSink struct {
	reg *obs.Registry

	btbLookups     *obs.Counter
	btbHits        *obs.Counter
	btbAllocs      *obs.Counter
	btbUpdates     *obs.Counter
	btbInvalidates *obs.Counter
	btbEvictions   *obs.Counter

	fetchWindows   *obs.Counter
	squashes       *obs.Counter
	falseHits      *obs.Counter
	decodeResteers *obs.Counter
	retired        *obs.Counter
	interrupts     *obs.Counter

	primes        *obs.Counter
	probeRounds   *obs.Counter
	probeRetries  *obs.Counter
	probeDegraded *obs.Counter
	voteRounds    *obs.Counter
	voteDiscards  *obs.Counter
}

func newSimSink(r *obs.Registry) *simSink {
	return &simSink{
		reg: r,

		btbLookups:     r.Counter("btb_lookups_total", "BTB prediction lookups (one per fetched prediction window, plus split-branch re-lookups)"),
		btbHits:        r.Counter("btb_hits_total", "BTB lookups that returned a predicted branch"),
		btbAllocs:      r.Counter("btb_allocs_total", "BTB entry allocations"),
		btbUpdates:     r.Counter("btb_updates_total", "BTB entry target/kind refreshes"),
		btbInvalidates: r.Counter("btb_invalidates_total", "BTB entry deallocations, including decode-time false-hit deallocations (Takeaway 1)"),
		btbEvictions:   r.Counter("btb_evictions_total", "BTB LRU evictions of valid entries"),

		fetchWindows:   r.Counter("cpu_fetch_windows_total", "32-byte prediction windows fetched"),
		squashes:       r.Counter("cpu_squashes_total", "pipeline squashes (decode false hits, execute mispredicts, interrupts)"),
		falseHits:      r.Counter("cpu_false_hits_total", "decode-time BTB false hits"),
		decodeResteers: r.Counter("cpu_decode_resteers_total", "decode-time redirects for unpredicted direct branches"),
		retired:        r.Counter("cpu_retired_total", "retired instructions"),
		interrupts:     r.Counter("cpu_interrupts_total", "asynchronous interrupts delivered to simulated cores"),

		primes:        r.Counter("probe_primes_total", "monitor chain prime executions"),
		probeRounds:   r.Counter("probe_rounds_total", "probes that produced a measurement"),
		probeRetries:  r.Counter("probe_retries_total", "probe rounds discarded to LBR record loss and retried"),
		probeDegraded: r.Counter("probe_degraded_total", "probes that exhausted their retry budget (window unobserved)"),
		voteRounds:    r.Counter("vote_rounds_total", "confidence-weighted voting rounds counted"),
		voteDiscards:  r.Counter("vote_discards_total", "wholly-degraded voting rounds discarded"),
	}
}

// expObs is the per-experiment observability context derived from
// Config. A nil *expObs (observability disabled) short-circuits every
// method.
type expObs struct {
	sink  *simSink
	trace *obs.Trace
}

// obsCtx builds the experiment's observability context, or nil when
// both the registry and the tracer are absent.
func (c Config) obsCtx() *expObs {
	if c.Obs == nil && c.Trace == nil {
		return nil
	}
	e := &expObs{trace: c.Trace}
	if c.Obs != nil {
		e.sink = newSimSink(c.Obs)
	}
	return e
}

// countFaults folds a delivered-fault event batch into per-class
// counters (interfere_faults_total{class=...}).
func (e *expObs) countFaults(events []interfere.Event) {
	if e == nil || e.sink == nil || len(events) == 0 {
		return
	}
	byClass := make(map[interfere.Class]uint64)
	for _, ev := range events {
		byClass[ev.Class]++
	}
	for cl, n := range byClass {
		e.sink.reg.CounterL("interfere_faults_total",
			"interference faults delivered by class",
			obs.Labels{"class": cl.String()}).Add(n)
	}
}

// simShard is one task's private counter set. Allocated fresh per task,
// attached to that task's simulator, and flushed into the sink once at
// task end — never shared between concurrently running tasks.
type simShard struct {
	parent *expObs
	tid    int64
	cpuObs *cpu.Obs
	attObs *core.AttackObs
}

// shard returns a fresh shard laned on tid, or nil when e is nil.
func (e *expObs) shard(tid int64) *simShard {
	if e == nil {
		return nil
	}
	s := &simShard{parent: e, tid: tid}
	if e.sink != nil {
		s.cpuObs = &cpu.Obs{
			FetchWindows:   &obs.Counter{},
			Squashes:       &obs.Counter{},
			FalseHits:      &obs.Counter{},
			DecodeResteers: &obs.Counter{},
			Retired:        &obs.Counter{},
			Interrupts:     &obs.Counter{},
			BTB: btb.Obs{
				Lookups:     &obs.Counter{},
				Hits:        &obs.Counter{},
				Allocs:      &obs.Counter{},
				Updates:     &obs.Counter{},
				Invalidates: &obs.Counter{},
				Evictions:   &obs.Counter{},
			},
		}
		s.attObs = &core.AttackObs{
			Primes:        &obs.Counter{},
			ProbeRounds:   &obs.Counter{},
			ProbeRetries:  &obs.Counter{},
			ProbeDegraded: &obs.Counter{},
			VoteRounds:    &obs.Counter{},
			VoteDiscards:  &obs.Counter{},
		}
	}
	return s
}

// attachCore wires the shard's counters into a simulated core (and its
// BTB). Must be re-called after Core.Reset, which detaches observers.
func (s *simShard) attachCore(c *cpu.Core) {
	if s == nil || s.cpuObs == nil {
		return
	}
	c.SetObs(*s.cpuObs)
}

// attachAttacker wires the shard's pipeline counters and the
// experiment's tracer into an attacker.
func (s *simShard) attachAttacker(a *core.Attacker) {
	if s == nil {
		return
	}
	if s.attObs != nil {
		a.Obs = *s.attObs
	}
	a.Trace = s.parent.trace
	a.TraceTID = s.tid
}

// attachInjector lanes the injector's fault events onto the
// experiment's tracer.
func (s *simShard) attachInjector(inj *interfere.Injector) {
	if s == nil || inj == nil {
		return
	}
	inj.Tracer = s.parent.trace
	inj.TraceTID = s.tid
}

// flush folds the shard into the sink and counts the task's delivered
// interference events. Call exactly once, when the task's simulators
// are done.
func (s *simShard) flush(events []interfere.Event) {
	if s == nil {
		return
	}
	if k := s.parent.sink; k != nil && s.cpuObs != nil {
		k.btbLookups.Add(s.cpuObs.BTB.Lookups.Value())
		k.btbHits.Add(s.cpuObs.BTB.Hits.Value())
		k.btbAllocs.Add(s.cpuObs.BTB.Allocs.Value())
		k.btbUpdates.Add(s.cpuObs.BTB.Updates.Value())
		k.btbInvalidates.Add(s.cpuObs.BTB.Invalidates.Value())
		k.btbEvictions.Add(s.cpuObs.BTB.Evictions.Value())

		k.fetchWindows.Add(s.cpuObs.FetchWindows.Value())
		k.squashes.Add(s.cpuObs.Squashes.Value())
		k.falseHits.Add(s.cpuObs.FalseHits.Value())
		k.decodeResteers.Add(s.cpuObs.DecodeResteers.Value())
		k.retired.Add(s.cpuObs.Retired.Value())
		k.interrupts.Add(s.cpuObs.Interrupts.Value())

		k.primes.Add(s.attObs.Primes.Value())
		k.probeRounds.Add(s.attObs.ProbeRounds.Value())
		k.probeRetries.Add(s.attObs.ProbeRetries.Value())
		k.probeDegraded.Add(s.attObs.ProbeDegraded.Value())
		k.voteRounds.Add(s.attObs.VoteRounds.Value())
		k.voteDiscards.Add(s.attObs.VoteDiscards.Value())
	}
	s.parent.countFaults(events)
}
