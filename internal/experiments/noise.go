package experiments

import (
	"repro/internal/stats"
)

// NoiseSweep measures use-case-1 accuracy as the measurement channel
// degrades from the LBR (σ=0, the paper's choice) toward an rdtsc-grade
// channel (footnote 2: LBR is "orders-of-magnitude less noisy"). The
// misprediction bubbles are 8–17 cycles, so accuracy holds until σ
// approaches the bubble size and collapses after.
func NoiseSweep(cfg Config, sigmas []float64, runsPer int) (*stats.Series, error) {
	cfg = cfg.withDefaults()
	out := &stats.Series{Name: "accuracy"}
	for _, sigma := range sigmas {
		c := cfg
		c.Noise = sigma
		res, err := UseCase1GCD(c, runsPer, AllDefenses())
		if err != nil {
			return nil, err
		}
		out.Add(sigma, res.Accuracy)
	}
	return out, nil
}
