package experiments

import (
	"repro/internal/runner"
	"repro/internal/stats"
)

// NoiseSweep measures use-case-1 accuracy as the measurement channel
// degrades from the LBR (σ=0, the paper's choice) toward an rdtsc-grade
// channel (footnote 2: LBR is "orders-of-magnitude less noisy"). The
// misprediction bubbles are 8–17 cycles, so accuracy holds until σ
// approaches the bubble size and collapses after.
//
// Points fan out on the bounded deterministic engine: every sigma's
// attack uses the same cfg.Seed it always did, so results are
// bit-identical to the former serial loop for any Workers value.
func NoiseSweep(cfg Config, sigmas []float64, runsPer int) (*stats.Series, error) {
	cfg = cfg.withDefaults()
	accs, err := runner.Map(cfg.engine(), len(sigmas), func(t runner.Task) (float64, error) {
		c := cfg
		c.Noise = sigmas[t.Index]
		res, err := UseCase1GCD(c, runsPer, AllDefenses())
		if err != nil {
			return 0, err
		}
		return res.Accuracy, nil
	})
	if err != nil {
		return nil, err
	}
	out := &stats.Series{Name: "accuracy"}
	for i, sigma := range sigmas {
		out.Add(sigma, accs[i])
	}
	return out, nil
}
