package experiments

import (
	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/runner"
	"repro/internal/stats"
)

// Figure4 reproduces the paper's Experiment 2 (§2.4, Figure 4): the
// range-query semantics of BTB lookups under superscalar fetch.
//
// Layout:
//
//	region A:  base+0x00..0x1d: nops; J1 = base+0x1e: jmp8 L1; L1: ret
//	region B:  F2 = alias+0x10: jmp8 L2 (entry keyed at offset 0x11); L2: ret
//
// Per iteration: flush, call J1 (allocate the offset-0x1f entry), call
// F2 (allocate the aliased offset-0x11 entry), then call F1 = base+f1Off
// and measure the elapsed cycles between the call's retirement and the
// ret after jmp L1 (the sum of the jmp and ret LBR deltas).
//
// Expected shape: the control series (no F2 call) declines as f1Off
// grows (fewer nops retire); the measured series sits a constant
// penalty above it exactly while f1Off <= 0x11 (F1 < F2+2), where the
// range lookup selects the aliased entry and decode false-hits it.
func Figure4(cfg Config) (withF2, withoutF2 *stats.Series, err error) {
	cfg = cfg.withDefaults()
	const (
		base  = uint64(0x50_0000) // block-aligned
		j1Off = uint64(0x1e)
		f2Off = uint64(0x10)
	)
	alias := base + aliasDistance(cfg.CPU)

	b := asm.NewBuilder(base)
	b.Label("f1base")
	b.Nops(int(j1Off)) // nops at [0x00, 0x1d]
	b.Label("j1")
	b.Inst(isa.Jmp8(0)) // jmp8 l1 at [0x1e, 0x1f], falls through to l1
	b.Label("l1")
	b.Ret()
	b.Org(alias + f2Off)
	b.Label("f2")
	b.Jmp8("l2") // jmp8 l2 at [0x10, 0x11]
	// L2 lives outside the measured 32-byte block (the paper's listing
	// separates them with "..."): otherwise the ret's own BTB entry
	// would alias into the sweep and contaminate the control region.
	b.Org(alias + 0x40)
	b.Label("l2")
	b.Ret()
	prog, berr := b.Build()
	if berr != nil {
		return nil, nil, berr
	}
	j1 := prog.MustLabel("j1")
	f2 := prog.MustLabel("f2")
	l1 := prog.MustLabel("l1")

	// The program is immutable and shared; each sweep offset gets its
	// own harness (memory + core) so the points fan out on the engine
	// with index-keyed results.
	eo := cfg.obsCtx()
	points, err := runner.Map(cfg.engine(), int(j1Off)+1, func(t runner.Task) (sweepPoint, error) {
		sh := eo.shard(int64(t.Index))
		defer sh.flush(nil)
		f1Off := uint64(t.Index)
		h := newHarness(cfg, prog, sh)
		f1 := base + f1Off
		measure := func(callF2 bool) (float64, error) {
			var sum float64
			for i := 0; i < cfg.Iters; i++ {
				h.core.BTB.Flush()
				if err := h.callVia(j1); err != nil {
					return 0, err
				}
				if callF2 {
					if err := h.callVia(f2); err != nil {
						return 0, err
					}
				}
				h.core.LBR.Clear()
				if err := h.callVia(f1); err != nil {
					return 0, err
				}
				// Elapsed between the call to F1 and the ret after jmp
				// L1 = delta(jmp L1) + delta(ret): the two records that
				// follow the call record.
				dj, err := h.deltaOf(j1)
				if err != nil {
					return 0, err
				}
				dr, err := h.deltaOf(l1)
				if err != nil {
					return 0, err
				}
				sum += float64(dj + dr)
			}
			return sum / float64(cfg.Iters), nil
		}
		var pt sweepPoint
		var merr error
		if pt.with, merr = measure(true); merr != nil {
			return sweepPoint{}, merr
		}
		if pt.without, merr = measure(false); merr != nil {
			return sweepPoint{}, merr
		}
		return pt, nil
	})
	if err != nil {
		return nil, nil, err
	}

	withF2 = &stats.Series{Name: "with-F2"}
	withoutF2 = &stats.Series{Name: "no-F2"}
	for f1Off, pt := range points {
		withF2.Add(float64(f1Off), pt.with)
		withoutF2.Add(float64(f1Off), pt.without)
	}
	return withF2, withoutF2, nil
}

// Figure4Gap summarizes Figure 4: the mean series gap inside the range
// hit region (F1 <= F2+1 = 0x11) and outside it, plus the control
// series' slope (cycles shed per skipped nop) — the paper's declining
// blue line.
func Figure4Gap(withF2, withoutF2 *stats.Series) (inRange, outRange, slope float64) {
	const rangeEnd = 0x11
	var inSum, outSum float64
	var inN, outN int
	for i := range withF2.X {
		gap := withF2.Y[i] - withoutF2.Y[i]
		if uint64(withF2.X[i]) <= rangeEnd {
			inSum += gap
			inN++
		} else {
			outSum += gap
			outN++
		}
	}
	if inN > 0 {
		inRange = inSum / float64(inN)
	}
	if outN > 0 {
		outRange = outSum / float64(outN)
	}
	n := len(withoutF2.Y)
	if n >= 2 {
		slope = (withoutF2.Y[0] - withoutF2.Y[n-1]) / float64(n-1)
	}
	return inRange, outRange, slope
}
