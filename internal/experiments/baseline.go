package experiments

import (
	"fmt"

	"repro/internal/codegen"
	"repro/internal/fingerprint"
	"repro/internal/nvrand"
	"repro/internal/victim"
)

// GranularityResult compares fingerprinting power across observation
// granularities: the byte-granular NightVision channel versus the
// coarser channels of prior work — 16-byte fetch-block effects
// (Frontal), 64-byte instruction-cache lines [23], and 4 KiB pages
// (controlled-channel attacks [64]). The paper's introduction argues
// these are "too coarse to be useful"; this experiment quantifies it.
type GranularityResult struct {
	Granularity  uint64
	Channel      string
	SelfSim      float64
	BestImpostor float64
	SelfRank     int
}

// Separation is the self-vs-impostor margin; <= 0 means the true
// function is not identifiable.
func (g GranularityResult) Separation() float64 { return g.SelfSim - g.BestImpostor }

func (g GranularityResult) String() string {
	return fmt.Sprintf("%-22s g=%4d  self=%.3f rank=%d impostor=%.3f separation=%+.3f",
		g.Channel, g.Granularity, g.SelfSim, g.SelfRank, g.BestImpostor, g.Separation())
}

// quantize maps a normalized PC set to granularity g.
func quantize(set map[uint64]bool, g uint64) map[uint64]bool {
	if g <= 1 {
		return set
	}
	out := make(map[uint64]bool, len(set))
	for pc := range set {
		out[pc/g] = true
	}
	return out
}

// quantizeRef quantizes a reference fingerprint.
func quantizeRef(ref fingerprint.Reference, g uint64) fingerprint.Reference {
	return fingerprint.Reference{Name: ref.Name, Set: quantize(ref.Set, g)}
}

// GranularityComparison fingerprints GCD against a corpus at several
// observation granularities. Expected shape: full separation at byte
// granularity, collapsing to zero at page granularity (every function
// fits one page, so every fingerprint quantizes to {0}).
func GranularityComparison(cfg Config, corpusN int) ([]GranularityResult, error) {
	cfg = cfg.withDefaults()
	opts := codegen.Options{Opt: codegen.O2}
	gcdFn := victim.MustGCDVersion("3.0", false)
	ref, err := ReferenceFor(gcdFn, opts)
	if err != nil {
		return nil, err
	}
	rng := nvrand.New(cfg.Seed)

	type victimSet struct {
		name string
		set  map[uint64]bool
	}
	var victims []victimSet
	addVictim := func(name string, fn *codegen.Func, args []uint64) error {
		pcs, data, err := ModelTrace(fn, opts, args)
		if err != nil {
			return err
		}
		ft, err := sliceVictim(pcs, data)
		if err != nil {
			return err
		}
		victims = append(victims, victimSet{name: name, set: ft.NormalizedSet()})
		return nil
	}
	if err := addVictim(gcdFn.Name, gcdFn, []uint64{65537, rng.Uint64() | 1}); err != nil {
		return nil, err
	}
	for i, fn := range victim.Corpus(victim.CorpusSpec{N: corpusN, Seed: cfg.Seed}) {
		args := make([]uint64, len(fn.Params))
		for j := range args {
			args[j] = (uint64(i)*31 + uint64(j)*7) | 1
		}
		if err := addVictim(fn.Name, fn, args); err != nil {
			return nil, err
		}
	}

	channels := []struct {
		g    uint64
		name string
	}{
		{1, "NightVision (byte)"},
		{16, "fetch block (Frontal)"},
		{64, "icache line"},
		{4096, "page (controlled ch.)"},
	}
	var out []GranularityResult
	for _, ch := range channels {
		qref := quantizeRef(ref, ch.g)
		res := GranularityResult{Granularity: ch.g, Channel: ch.name}
		rank := 1
		var selfSim float64
		for _, v := range victims {
			sim := fingerprint.Similarity(quantize(v.set, ch.g), qref)
			if v.name == ref.Name {
				selfSim = sim
			} else if sim > res.BestImpostor {
				res.BestImpostor = sim
			}
		}
		for _, v := range victims {
			if v.name == ref.Name {
				continue
			}
			if fingerprint.Similarity(quantize(v.set, ch.g), qref) > selfSim {
				rank++
			}
		}
		res.SelfSim = selfSim
		res.SelfRank = rank
		out = append(out, res)
	}
	return out, nil
}

// SequenceVsSetResult compares the §6.4 set-intersection fingerprint
// with the §8.3 sequence-alignment extension.
type SequenceVsSetResult struct {
	SetSelf, SetImpostor float64
	SeqSelf, SeqImpostor float64
}

// SetSeparation and SeqSeparation are the identification margins.
func (r SequenceVsSetResult) SetSeparation() float64 { return r.SetSelf - r.SetImpostor }

// SeqSeparation is the sequence-alignment margin.
func (r SequenceVsSetResult) SeqSeparation() float64 { return r.SeqSelf - r.SeqImpostor }

// SequenceVsSet fingerprints GCD against a corpus with both mechanisms.
// The attacker builds the sequence reference by running its own copy of
// the candidate binary on a few chosen inputs (it owns the reference
// binaries; only the victim's inputs are secret).
func SequenceVsSet(cfg Config, corpusN int) (*SequenceVsSetResult, error) {
	cfg = cfg.withDefaults()
	opts := codegen.Options{Opt: codegen.O2}
	gcdFn := victim.MustGCDVersion("3.0", false)
	rng := nvrand.New(cfg.Seed)

	setRef, err := ReferenceFor(gcdFn, opts)
	if err != nil {
		return nil, err
	}
	seqRef := fingerprint.SequenceReference{Name: gcdFn.Name}
	for i := 0; i < 4; i++ {
		pcs, data, err := ModelTrace(gcdFn, opts, []uint64{65537, rng.Uint64() | 1})
		if err != nil {
			return nil, err
		}
		ft, err := sliceVictim(pcs, data)
		if err != nil {
			return nil, err
		}
		seqRef.Traces = append(seqRef.Traces, ft.NormalizedSequence())
	}

	res := &SequenceVsSetResult{}
	score := func(name string, fn *codegen.Func, args []uint64) error {
		pcs, data, err := ModelTrace(fn, opts, args)
		if err != nil {
			return err
		}
		ft, err := sliceVictim(pcs, data)
		if err != nil {
			return err
		}
		setSim := fingerprint.Similarity(ft.NormalizedSet(), setRef)
		seqSim := seqRef.SequenceScore(ft.NormalizedSequence())
		if name == gcdFn.Name {
			res.SetSelf = setSim
			res.SeqSelf = seqSim
			return nil
		}
		if setSim > res.SetImpostor {
			res.SetImpostor = setSim
		}
		if seqSim > res.SeqImpostor {
			res.SeqImpostor = seqSim
		}
		return nil
	}
	if err := score(gcdFn.Name, gcdFn, []uint64{65537, rng.Uint64() | 1}); err != nil {
		return nil, err
	}
	for i, fn := range victim.Corpus(victim.CorpusSpec{N: corpusN, Seed: cfg.Seed + 1}) {
		args := make([]uint64, len(fn.Params))
		for j := range args {
			args[j] = (uint64(i)*131 + uint64(j)*17) | 1
		}
		if err := score(fn.Name, fn, args); err != nil {
			return nil, err
		}
	}
	return res, nil
}
