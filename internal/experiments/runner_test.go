package experiments

import (
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestFigure12ParallelDeterminism is the engine's headline guarantee at
// the experiment level: Figure12 over the same seed produces
// bit-identical results (ranking, scores, floats) for Workers=1 and
// Workers=8. Index-keyed result slots and index-derived RNG streams make
// worker interleaving unobservable.
func TestFigure12ParallelDeterminism(t *testing.T) {
	corpusN := 5000
	if testing.Short() {
		corpusN = 400
	}
	cfg := Config{Iters: 1, Seed: 13}

	cfg.Workers = 1
	serial, err := Figure12(cfg, corpusN, 25)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	parallel, err := Figure12(cfg, corpusN, 25)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("Workers=1 and Workers=8 diverge:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

// TestFigure2ParallelDeterminism covers the sweep-style migration the
// same way: the full (X, Y) series must match exactly.
func TestFigure2ParallelDeterminism(t *testing.T) {
	run := func(workers int) [2][]float64 {
		cfg := Config{Iters: 5, Seed: 29, Workers: workers}
		with, without, err := Figure2(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return [2][]float64{with.Y, without.Y}
	}
	if a, b := run(1), run(8); !reflect.DeepEqual(a, b) {
		t.Fatalf("Figure2 diverges across worker counts:\n1: %v\n8: %v", a, b)
	}
}

// TestFigure12GoroutineBound is the regression test for the unbounded
// fan-out bug: the old corpus loop spawned one goroutine per function
// before acquiring its semaphore, so a paper-scale run allocated ~175k
// goroutine stacks up front. The engine must keep peak goroutine growth
// at Workers + O(1) however large the corpus is.
func TestFigure12GoroutineBound(t *testing.T) {
	corpusN := 10_000
	if testing.Short() {
		corpusN = 1_500
	}
	const workers = 4
	before := runtime.NumGoroutine()

	var peak atomic.Int64
	done := make(chan error, 1)
	go func() {
		_, err := Figure12(Config{Iters: 1, Seed: 13, Workers: workers}, corpusN, 10)
		done <- err
	}()
	ticker := time.NewTicker(200 * time.Microsecond)
	defer ticker.Stop()
sample:
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			break sample
		case <-ticker.C:
			if g := int64(runtime.NumGoroutine()); g > peak.Load() {
				peak.Store(g)
			}
		}
	}
	// Budget: pre-existing goroutines + the worker pool + the Figure12
	// driver goroutine above + small runtime slack. The old code peaked
	// at corpusN + O(1), three orders of magnitude above this bound.
	limit := int64(before + workers + 8)
	if peak.Load() > limit {
		t.Errorf("peak goroutines %d > bound %d (before=%d, workers=%d, corpus=%d)",
			peak.Load(), limit, before, workers, corpusN)
	}
	t.Logf("peak goroutines %d (bound %d) during %d-function corpus run", peak.Load(), limit, corpusN)
}
