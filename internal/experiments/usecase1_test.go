package experiments

import "testing"

// TestUseCase1GCD reproduces the §7.2 headline: the balanced-branch
// direction of a defended GCD (balancing + alignment + CFR) is leaked
// with near-perfect accuracy (paper: 99.3% over 100 runs, ~30
// iterations each).
func TestUseCase1GCD(t *testing.T) {
	res, err := UseCase1GCD(Config{Iters: 1, Seed: 5}, 4, AllDefenses())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("uc1 gcd: %v", res)
	if res.Decisions < 60 {
		t.Fatalf("only %d decisions across 4 runs; expect tens per run", res.Decisions)
	}
	if res.Accuracy < 0.95 {
		t.Errorf("accuracy = %.3f, want >= 0.95 (paper: 0.993)", res.Accuracy)
	}
	if res.AvgPerRun < 20 {
		t.Errorf("avg iterations per run = %.1f, paper reports ~30", res.AvgPerRun)
	}
}

// TestUseCase1GCDDefensesDoNotHelp: accuracy is as high without any
// defense — the defenses target other attacks and are irrelevant to
// NightVision (§5.1).
func TestUseCase1GCDDefensesDoNotHelp(t *testing.T) {
	withDef, err := UseCase1GCD(Config{Iters: 1, Seed: 9}, 2, AllDefenses())
	if err != nil {
		t.Fatal(err)
	}
	noDef, err := UseCase1GCD(Config{Iters: 1, Seed: 9}, 2, DefenseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if withDef.Accuracy < 0.9 || noDef.Accuracy < 0.9 {
		t.Errorf("defended %.3f / undefended %.3f: both should leak", withDef.Accuracy, noDef.Accuracy)
	}
}

// TestUseCase1BnCmp reproduces the second §7.2 target: the big-number
// comparison's secret predicate is recovered on every run (paper: 100%
// over 100 runs).
func TestUseCase1BnCmp(t *testing.T) {
	res, err := UseCase1BnCmp(Config{Iters: 1, Seed: 23}, 6, AllDefenses())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("uc1 bn_cmp: %v", res)
	if res.Accuracy < 1.0 {
		t.Errorf("accuracy = %.3f, paper reports 1.0", res.Accuracy)
	}
}
