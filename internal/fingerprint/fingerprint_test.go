package fingerprint

import (
	"testing"
	"testing/quick"
)

func TestSliceSingleCall(t *testing.T) {
	// main at 0x100 calls f at 0x400, runs 3 instructions, returns.
	pcs := []uint64{0x100, 0x105, 0x400, 0x402, 0x404, 0x10a}
	//                      ^call             ^ret
	data := []bool{false, true, false, false, true, false}
	traces := Slice(pcs, data)
	if len(traces) != 1 {
		t.Fatalf("traces = %d, want 1 (%+v)", len(traces), traces)
	}
	f := traces[0]
	if f.Entry != 0x400 {
		t.Errorf("entry = %#x", f.Entry)
	}
	if len(f.PCs) != 3 {
		t.Errorf("PCs = %#x", f.PCs)
	}
	set := f.NormalizedSet()
	for _, want := range []uint64{0, 2, 4} {
		if !set[want] {
			t.Errorf("normalized set missing %d: %v", want, set)
		}
	}
}

func TestSliceNestedCalls(t *testing.T) {
	// main calls f; f calls g; g returns; f returns.
	pcs := []uint64{
		0x100,        // main
		0x400, 0x402, // f entry, f body (call at 0x402)
		0x800, 0x801, // g
		0x407, // back in f
		0x105, // back in main
	}
	data := []bool{true, false, true, false, true, true, false}
	traces := Slice(pcs, data)
	if len(traces) != 2 {
		t.Fatalf("traces = %d, want 2 (%+v)", len(traces), traces)
	}
	// g completes first.
	if traces[0].Entry != 0x800 || len(traces[0].PCs) != 2 {
		t.Errorf("g trace = %+v", traces[0])
	}
	if traces[1].Entry != 0x400 {
		t.Errorf("f trace = %+v", traces[1])
	}
	// f's trace includes its own PCs plus the PCs executed inside g? No:
	// inner PCs belong to g's frame only.
	if len(traces[1].PCs) != 3 { // 0x400, 0x402, 0x407
		t.Errorf("f PCs = %#x", traces[1].PCs)
	}
}

func TestSliceIgnoresNearJumpsAndNonDataFar(t *testing.T) {
	// A 100-byte jump without data access (plain jmp) must not slice;
	// a 4-byte data-touching step must not either.
	pcs := []uint64{0x100, 0x200, 0x204, 0x300}
	data := []bool{false, true, false, false}
	traces := Slice(pcs, data)
	if len(traces) != 0 {
		t.Errorf("traces = %+v, want none", traces)
	}
}

func TestSliceUnreturnedFrame(t *testing.T) {
	pcs := []uint64{0x100, 0x400, 0x402}
	data := []bool{true, false, false}
	traces := Slice(pcs, data)
	if len(traces) != 1 || traces[0].Entry != 0x400 {
		t.Fatalf("traces = %+v", traces)
	}
}

func TestSimilarity(t *testing.T) {
	ref := NewReference("f", []uint64{0, 2, 4, 8, 12})
	victim := map[uint64]bool{0: true, 2: true, 4: true}
	if got := Similarity(victim, ref); got != 1.0 {
		t.Errorf("full subset similarity = %v", got)
	}
	victim[3] = true // a wrong PC
	if got := Similarity(victim, ref); got != 0.75 {
		t.Errorf("3/4 similarity = %v", got)
	}
	if got := Similarity(map[uint64]bool{}, ref); got != 0 {
		t.Errorf("empty victim similarity = %v", got)
	}
}

func TestRankAndBestMatch(t *testing.T) {
	refs := []Reference{
		NewReference("a", []uint64{0, 1, 2, 3}),
		NewReference("b", []uint64{0, 10, 20, 30}),
		NewReference("c", []uint64{0, 10, 20, 31}),
	}
	victim := FuncTrace{Entry: 0x1000, PCs: []uint64{0x1000, 0x100a, 0x1014, 0x101e}}
	ranked := Rank(victim, refs)
	if ranked[0].Label != "b" || ranked[0].Score != 1.0 {
		t.Errorf("top = %+v", ranked[0])
	}
	if ranked[1].Label != "c" || ranked[1].Score != 0.75 {
		t.Errorf("second = %+v", ranked[1])
	}
	name, score := BestMatch(victim, refs)
	if name != "b" || score != 1.0 {
		t.Errorf("BestMatch = %s %v", name, score)
	}
	if n, s := BestMatch(victim, nil); n != "" || s != 0 {
		t.Errorf("BestMatch with no refs = %q %v", n, s)
	}
}

func TestSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	Slice([]uint64{1, 2}, []bool{true})
}

// TestQuickSliceBalanced property-tests that for synthetic traces built
// from random balanced call trees, Slice recovers exactly one trace per
// call and attributes each PC to the innermost frame.
func TestQuickSliceBalanced(t *testing.T) {
	f := func(nCalls uint8, bodyLen uint8) bool {
		n := int(nCalls%5) + 1
		body := int(bodyLen%4) + 1
		var pcs []uint64
		var data []bool
		pcs = append(pcs, 0x100)
		data = append(data, false)
		caller := uint64(0x100)
		for c := 0; c < n; c++ {
			// call from caller to function at 0x1000*(c+2)
			entry := uint64(0x1000 * (c + 2))
			data[len(data)-1] = true // the call step touches the stack
			for i := 0; i < body; i++ {
				pcs = append(pcs, entry+uint64(i)*2)
				data = append(data, false)
			}
			data[len(data)-1] = true // the ret touches the stack
			caller += 5
			pcs = append(pcs, caller)
			data = append(data, false)
		}
		traces := Slice(pcs, data)
		if len(traces) != n {
			return false
		}
		for c, tr := range traces {
			if tr.Entry != uint64(0x1000*(c+2)) || len(tr.PCs) != body {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
