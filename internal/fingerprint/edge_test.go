package fingerprint

// Edge cases of the slicing/matching pipeline: empty traces,
// single-entry traces, and reconstructed (PC-only) traces — the shape
// NV-S actually produces, where Size and Kind metadata are absent —
// flowing through the set scorer and the §8.3 sequence matcher.

import (
	"testing"

	"repro/internal/trace"
)

func TestSliceEmptyTrace(t *testing.T) {
	if got := Slice(nil, nil); len(got) != 0 {
		t.Fatalf("Slice(nil) = %v, want empty", got)
	}
	if got := Slice([]uint64{}, []bool{}); len(got) != 0 {
		t.Fatalf("Slice(empty) = %v, want empty", got)
	}
}

func TestSliceSingleEntryTrace(t *testing.T) {
	// One PC: no transfer can be observed, no frame is ever opened.
	got := Slice([]uint64{0x40_0000}, []bool{true})
	if len(got) != 0 {
		t.Fatalf("Slice(single) = %v, want empty (top level is not emitted)", got)
	}
}

func TestSliceTwoEntryCallOnly(t *testing.T) {
	// A single far data-touching transfer opens a frame whose function
	// body then receives exactly one PC (the entry itself).
	got := Slice([]uint64{0x40_0000, 0x50_0000}, []bool{true, true})
	if len(got) != 1 {
		t.Fatalf("Slice = %v, want one unreturned frame", got)
	}
	if got[0].Entry != 0x50_0000 || len(got[0].PCs) != 1 || got[0].PCs[0] != 0x50_0000 {
		t.Fatalf("frame = %+v", got[0])
	}
}

func TestNormalizedSetAndSequenceEmpty(t *testing.T) {
	var ft FuncTrace
	if s := ft.NormalizedSet(); len(s) != 0 {
		t.Fatalf("empty trace set = %v", s)
	}
	if seq := ft.NormalizedSequence(); len(seq) != 0 {
		t.Fatalf("empty trace sequence = %v", seq)
	}
}

func TestSingleEntryFuncTraceThroughScorers(t *testing.T) {
	ft := FuncTrace{Entry: 0x50_0000, PCs: []uint64{0x50_0000}}
	ref := NewReference("only", []uint64{0})
	if sim := Similarity(ft.NormalizedSet(), ref); sim != 1.0 {
		t.Fatalf("single-entry set similarity = %v, want 1.0", sim)
	}
	sr := SequenceReference{Name: "only", Traces: [][]uint64{{0}}}
	if s := sr.SequenceScore(ft.NormalizedSequence()); s != 1.0 {
		t.Fatalf("single-entry sequence score = %v, want 1.0", s)
	}
}

func TestSimilarityEmptyVictimAndEmptyReference(t *testing.T) {
	ref := NewReference("f", []uint64{0, 4, 8})
	if sim := Similarity(map[uint64]bool{}, ref); sim != 0 {
		t.Fatalf("empty victim similarity = %v, want 0", sim)
	}
	empty := NewReference("empty", nil)
	if sim := Similarity(map[uint64]bool{0: true}, empty); sim != 0 {
		t.Fatalf("similarity against empty reference = %v, want 0", sim)
	}
}

func TestSequenceSimilarityEmptyInputs(t *testing.T) {
	if s := SequenceSimilarity(nil, []uint64{1, 2, 3}); s != 0 {
		t.Fatalf("empty victim = %v, want 0", s)
	}
	if s := SequenceSimilarity([]uint64{1, 2, 3}, nil); s != 0 {
		t.Fatalf("empty reference = %v, want 0", s)
	}
	var sr SequenceReference
	if s := sr.SequenceScore([]uint64{1}); s != 0 {
		t.Fatalf("reference with no traces = %v, want 0", s)
	}
}

// TestReconstructedTraceThroughSequenceMatcher drives a PC-only
// reconstructed trace (trace.FromPCs: Size=0, Kind unknown — what the
// attack actually recovers) through slicing and both scorers, and
// checks it matches the ground-truth-derived fingerprint of the same
// execution.
func TestReconstructedTraceThroughSequenceMatcher(t *testing.T) {
	// Synthetic execution: driver calls f at 0x50_0000 (loop of three
	// instructions run twice), f returns to the driver.
	pcs := []uint64{
		0x40_0000,                       // driver: call site
		0x50_0000, 0x50_0004, 0x50_0008, // f, iteration 1
		0x50_0000, 0x50_0004, 0x50_0008, // f, iteration 2
		0x40_0004, // back in the driver
	}
	data := []bool{true, false, false, true, false, false, true, true}

	// Reconstructed form: PCs only, metadata stripped.
	rec := trace.FromPCs(pcs)
	for _, e := range rec {
		if e.Size != 0 {
			t.Fatalf("FromPCs kept metadata: %+v", e)
		}
	}

	sliced := Slice(rec.PCs(), data)
	if len(sliced) != 1 {
		t.Fatalf("sliced %d functions, want 1", len(sliced))
	}
	ft := sliced[0]
	if ft.Entry != 0x50_0000 || len(ft.PCs) != 6 {
		t.Fatalf("sliced frame = %+v", ft)
	}

	// Set scorer: the reference knows the three static offsets.
	ref := NewReference("f", []uint64{0, 4, 8})
	if sim := Similarity(ft.NormalizedSet(), ref); sim != 1.0 {
		t.Fatalf("set similarity = %v, want 1.0", sim)
	}

	// Sequence scorer: the reference execution is the same loop run
	// offline by the attacker; the reconstructed victim sequence must
	// align perfectly, and a decoy must not.
	sr := SequenceReference{Name: "f", Traces: [][]uint64{{0, 4, 8, 0, 4, 8}}}
	if s := sr.SequenceScore(ft.NormalizedSequence()); s != 1.0 {
		t.Fatalf("sequence score = %v, want 1.0", s)
	}
	decoy := SequenceReference{Name: "g", Traces: [][]uint64{{0, 16, 32, 48}}}
	if s := decoy.SequenceScore(ft.NormalizedSequence()); s >= 0.5 {
		t.Fatalf("decoy sequence score = %v, want < 0.5", s)
	}
}

// TestReconstructedTraceWithDroppedStep: NV-S occasionally loses a
// step; the sequence matcher must degrade gracefully (LCS tolerates a
// deletion) while position-sensitive set scoring is unaffected.
func TestReconstructedTraceWithDroppedStep(t *testing.T) {
	full := []uint64{0, 4, 8, 12, 16, 20}
	dropped := []uint64{0, 4, 12, 16, 20} // lost the 8
	sr := SequenceReference{Name: "f", Traces: [][]uint64{full}}
	got := sr.SequenceScore(dropped)
	if got != 1.0 { // every surviving step still aligns in order
		t.Fatalf("dropped-step sequence score = %v, want 1.0", got)
	}
	if s := SequenceSimilarity(full, dropped); s >= 1.0 {
		t.Fatalf("reverse direction should lose the missing step: %v", s)
	}
}
