package fingerprint

// Sequence-based fingerprinting: the §8.3 extension the paper leaves as
// future work. Instead of compressing the victim's dynamic PC trace
// into a set (losing ordering and loop structure), the dynamic sequence
// itself is matched against reference executions with an alignment
// score, "similar to genomic (DNA) sequence matching" — tolerant of the
// measurement errors (mutations) NV-S introduces.
//
// The attacker owns the reference binaries, so it can produce reference
// *dynamic* traces offline by running the candidate functions on chosen
// inputs; SequenceSimilarity then scores the victim trace against each.

// SequenceSimilarity returns the length of the longest common
// subsequence between the victim and reference PC sequences, normalized
// by the victim length: 1.0 means the entire victim trace appears, in
// order, inside the reference execution. Both sequences should be
// normalized to their function entries first.
func SequenceSimilarity(victim, reference []uint64) float64 {
	if len(victim) == 0 {
		return 0
	}
	return float64(lcs(victim, reference)) / float64(len(victim))
}

// lcs computes the longest-common-subsequence length with a rolling
// two-row DP (O(len(a)*len(b)) time, O(len(b)) space).
func lcs(a, b []uint64) int {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			switch {
			case a[i-1] == b[j-1]:
				cur[j] = prev[j-1] + 1
			case prev[j] >= cur[j-1]:
				cur[j] = prev[j]
			default:
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// SequenceReference is a reference function's dynamic fingerprint: one
// or more offline executions, normalized to the entry PC.
type SequenceReference struct {
	Name   string
	Traces [][]uint64
}

// NormalizedSequence converts a sliced FuncTrace into the entry-relative
// PC sequence used for alignment.
func (ft FuncTrace) NormalizedSequence() []uint64 {
	out := make([]uint64, len(ft.PCs))
	for i, pc := range ft.PCs {
		out[i] = pc - ft.Entry
	}
	return out
}

// SequenceScore scores a victim sequence against the reference: the
// best alignment over the reference's recorded executions.
func (r SequenceReference) SequenceScore(victim []uint64) float64 {
	best := 0.0
	for _, ref := range r.Traces {
		if s := SequenceSimilarity(victim, ref); s > best {
			best = s
		}
	}
	return best
}
