package fingerprint

import (
	"testing"
	"testing/quick"
)

func TestLCSBasics(t *testing.T) {
	cases := []struct {
		a, b []uint64
		want int
	}{
		{nil, nil, 0},
		{[]uint64{1, 2, 3}, nil, 0},
		{[]uint64{1, 2, 3}, []uint64{1, 2, 3}, 3},
		{[]uint64{1, 2, 3}, []uint64{3, 2, 1}, 1},
		{[]uint64{1, 3, 5, 7}, []uint64{0, 1, 2, 3, 4, 5, 6}, 3},
		{[]uint64{1, 2, 1, 2}, []uint64{1, 1, 2, 2}, 3},
	}
	for _, c := range cases {
		if got := lcs(c.a, c.b); got != c.want {
			t.Errorf("lcs(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestSequenceSimilarity(t *testing.T) {
	victim := []uint64{0, 2, 4, 2, 4, 8}
	if s := SequenceSimilarity(victim, victim); s != 1 {
		t.Errorf("self similarity = %v", s)
	}
	if s := SequenceSimilarity(nil, victim); s != 0 {
		t.Errorf("empty victim = %v", s)
	}
	// Ordering matters: a set-identical but order-scrambled reference
	// scores below 1.
	scrambled := []uint64{8, 4, 2, 4, 2, 0}
	if s := SequenceSimilarity(victim, scrambled); s >= 1 {
		t.Errorf("scrambled similarity = %v, want < 1", s)
	}
}

// TestSequenceBeatsSetOnLoopStructure: two functions with identical
// static PC sets but different loop behavior are indistinguishable to
// set intersection and distinguishable to sequence alignment — the
// §8.3 motivation.
func TestSequenceBeatsSetOnLoopStructure(t *testing.T) {
	// Victim executes the loop body three times: 0,2,4, 2,4, 2,4, 6.
	victim := FuncTrace{Entry: 0x1000, PCs: []uint64{
		0x1000, 0x1002, 0x1004, 0x1002, 0x1004, 0x1002, 0x1004, 0x1006,
	}}
	// Reference A: same loop run three times (the true function).
	refA := SequenceReference{Name: "A", Traces: [][]uint64{
		{0, 2, 4, 2, 4, 2, 4, 6},
	}}
	// Reference B: straight-line code with the same static PCs.
	refB := SequenceReference{Name: "B", Traces: [][]uint64{
		{0, 2, 4, 6},
	}}
	setRefA := NewReference("A", []uint64{0, 2, 4, 6})
	setRefB := NewReference("B", []uint64{0, 2, 4, 6})

	set := victim.NormalizedSet()
	if Similarity(set, setRefA) != Similarity(set, setRefB) {
		t.Fatal("setup: set similarity should tie")
	}
	seq := victim.NormalizedSequence()
	a, b := refA.SequenceScore(seq), refB.SequenceScore(seq)
	if a <= b {
		t.Errorf("sequence scores A=%v B=%v: alignment should break the tie toward A", a, b)
	}
	if a != 1 {
		t.Errorf("true reference alignment = %v, want 1", a)
	}
}

// TestSequenceTolerantOfMeasurementErrors: a few corrupted PCs
// (mutations) lower the score proportionally instead of breaking the
// match.
func TestSequenceTolerantOfMeasurementErrors(t *testing.T) {
	ref := make([]uint64, 100)
	for i := range ref {
		ref[i] = uint64(i * 2)
	}
	victim := append([]uint64(nil), ref...)
	victim[10] = 9999 // mutated measurements
	victim[50] = 8888
	s := SequenceSimilarity(victim, ref)
	if s < 0.97 || s >= 1 {
		t.Errorf("similarity with 2/100 mutations = %v, want ~0.98", s)
	}
}

// TestQuickLCSBounds property-tests the DP: lcs(a,b) <= min(len), is
// symmetric, and lcs(a,a) == len(a).
func TestQuickLCSBounds(t *testing.T) {
	f := func(a, b []uint64) bool {
		if len(a) > 80 {
			a = a[:80]
		}
		if len(b) > 80 {
			b = b[:80]
		}
		// Shrink the alphabet so matches actually occur.
		for i := range a {
			a[i] %= 8
		}
		for i := range b {
			b[i] %= 8
		}
		l := lcs(a, b)
		if l > len(a) || l > len(b) {
			return false
		}
		if lcs(b, a) != l {
			return false
		}
		return lcs(a, a) == len(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
