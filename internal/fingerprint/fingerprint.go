// Package fingerprint implements the paper's function-fingerprinting
// pipeline (§6.4): slicing an NV-S-extracted dynamic PC trace into
// per-function traces at call/ret boundaries, normalizing them to be
// position independent, and scoring them against static reference
// function fingerprints by set intersection.
package fingerprint

import (
	"sort"

	"repro/internal/stats"
)

// callGap is the control-transfer detection threshold from §6.4: a step
// whose successor PC is more than 16 bytes away is a control transfer.
const callGap = 16

// retWindow is how far past a call site a return may land to be paired
// with it (the return address is the instruction after the call).
const retWindow = 16

// FuncTrace is one sliced function invocation: the entry PC plus the
// dynamic PCs observed inside it (absolute).
type FuncTrace struct {
	Entry uint64
	PCs   []uint64
}

// NormalizedSet returns the position-independent PC set: every PC minus
// the entry. This is the victim-side fingerprint S of §6.4 step 2.
func (ft FuncTrace) NormalizedSet() map[uint64]bool {
	out := make(map[uint64]bool, len(ft.PCs))
	for _, pc := range ft.PCs {
		out[pc-ft.Entry] = true
	}
	return out
}

// Slice partitions a dynamic PC trace into function-level traces using
// the paper's two-signal heuristic: a call or return is a jump of more
// than 16 bytes whose step also touched a data page (the stack push/pop
// observed through the controlled channel). Returns land within
// retWindow bytes after their call site; everything else is a call.
//
// dataTouched must have one entry per trace step. The top-level trace
// (code outside any observed call) is not emitted; the paper's victims
// are always entered by a call from the enclave entry stub.
func Slice(pcs []uint64, dataTouched []bool) []FuncTrace {
	if len(pcs) != len(dataTouched) {
		panic("fingerprint: pcs and dataTouched length mismatch")
	}
	type frame struct {
		site  uint64 // PC of the call instruction
		trace *FuncTrace
	}
	var stack []frame
	var done []FuncTrace

	appendPC := func(pc uint64) {
		if len(stack) > 0 {
			t := stack[len(stack)-1].trace
			t.PCs = append(t.PCs, pc)
		}
	}

	for i := 0; i < len(pcs); i++ {
		appendPC(pcs[i])
		if i+1 >= len(pcs) {
			break
		}
		gap := int64(pcs[i+1]) - int64(pcs[i])
		if gap < 0 {
			gap = -gap
		}
		if gap <= callGap || !dataTouched[i] {
			continue
		}
		// A far, data-touching transfer: call or ret?
		if len(stack) > 0 {
			top := stack[len(stack)-1]
			if pcs[i+1] > top.site && pcs[i+1]-top.site <= retWindow {
				// Return to just after the call site.
				done = append(done, *top.trace)
				stack = stack[:len(stack)-1]
				continue
			}
		}
		stack = append(stack, frame{site: pcs[i], trace: &FuncTrace{Entry: pcs[i+1]}})
	}
	// Unreturned frames (trace ended inside a function) still count.
	for i := len(stack) - 1; i >= 0; i-- {
		done = append(done, *stack[i].trace)
	}
	return done
}

// Reference is a static function fingerprint: the set of its
// instruction start offsets relative to the entry (S* of §6.4).
type Reference struct {
	Name string
	Set  map[uint64]bool
}

// NewReference builds a reference from static instruction offsets.
func NewReference(name string, staticPCs []uint64) Reference {
	set := make(map[uint64]bool, len(staticPCs))
	for _, pc := range staticPCs {
		set[pc] = true
	}
	return Reference{Name: name, Set: set}
}

// Similarity computes |S ∩ S*| / |S| for a victim trace against a
// reference — the §6.4 score. An empty victim set scores 0.
func Similarity(victim map[uint64]bool, ref Reference) float64 {
	if len(victim) == 0 {
		return 0
	}
	hit := 0
	for pc := range victim {
		if ref.Set[pc] {
			hit++
		}
	}
	return float64(hit) / float64(len(victim))
}

// Rank scores a victim trace against every reference, descending.
func Rank(victim FuncTrace, refs []Reference) []stats.Scored {
	set := victim.NormalizedSet()
	out := make([]stats.Scored, len(refs))
	for i, r := range refs {
		out[i] = stats.Scored{Label: r.Name, Score: Similarity(set, r)}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Label < out[j].Label
	})
	return out
}

// BestMatch returns the highest-scoring reference name and score.
func BestMatch(victim FuncTrace, refs []Reference) (string, float64) {
	ranked := Rank(victim, refs)
	if len(ranked) == 0 {
		return "", 0
	}
	return ranked[0].Label, ranked[0].Score
}
