// Package rsb models a Return Stack Buffer: the fixed-depth circular
// predictor structure that supplies return targets to the front end.
//
// Real RSBs are arrays indexed by a wrapping top-of-stack pointer with
// no occupancy tracking, and both documented failure modes of that
// design are what ret2spec (arXiv 1807.10364) exploits:
//
//   - Overflow: a call chain deeper than the buffer silently overwrites
//     the oldest entries. The overwritten returns later pop *stale*
//     targets — the predictor steers fetch into code the program
//     already left.
//
//   - Underflow: popping more returns than were pushed wraps the top
//     pointer back over previously consumed slots, re-serving their
//     stale contents instead of reporting emptiness.
//
// The simulated core (internal/cpu) keeps two instances — a speculative
// one advanced at decode and an architectural one advanced at retire —
// and restores the speculative from the architectural on every squash,
// mirroring hardware checkpoint recovery. Contents deliberately survive
// context switches: cross-process RSB poisoning is the other half of
// the ret2spec attack surface.
//
// The structure is allocation-free after construction: Push, Pop,
// CopyFrom and Reset touch only the fixed backing array, so it rides
// the zero-allocation steady-state step loop (PR 6) untouched.
package rsb

import "fmt"

// Config describes an RSB geometry. Depth must be positive; backends
// (internal/uarch) supply their reverse-engineered depths.
type Config struct {
	// Depth is the number of entries. Typical values: 16 on Intel
	// SkyLake-class cores (ret2spec §4), 8 on the Arm cores modeled by
	// internal/uarch.
	Depth int
}

func (c Config) validate() error {
	if c.Depth <= 0 {
		return fmt.Errorf("rsb: Depth must be positive, got %d", c.Depth)
	}
	return nil
}

// RSB is the circular return stack buffer. Not safe for concurrent use.
type RSB struct {
	entries []uint64
	top     int // index of the most recently pushed entry
}

// New returns an RSB with every slot zeroed. It panics on an invalid
// configuration (depths are compile-time backend constants in
// practice, like btb.New geometries).
func New(cfg Config) *RSB {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	return &RSB{entries: make([]uint64, cfg.Depth)}
}

// Depth returns the entry count.
func (r *RSB) Depth() int { return len(r.entries) }

// Push records a return address, advancing the top pointer with wrap:
// past capacity it silently overwrites the oldest live entry
// (overflow semantics).
func (r *RSB) Push(addr uint64) {
	r.top++
	if r.top == len(r.entries) {
		r.top = 0
	}
	r.entries[r.top] = addr
}

// Pop returns the predicted return target and retreats the top pointer
// with wrap. It never reports emptiness: past the live entries it
// re-serves stale slot contents (underflow semantics). A slot that was
// never written predicts 0, which the front end treats as
// no-prediction — a cold RSB stalls rather than steering fetch to the
// zero page.
func (r *RSB) Pop() uint64 {
	v := r.entries[r.top]
	r.top--
	if r.top < 0 {
		r.top = len(r.entries) - 1
	}
	return v
}

// CopyFrom makes r an exact copy of src, which must have the same
// depth; the simulated core uses it to restore the speculative RSB
// from the architectural one on a squash. It never allocates.
func (r *RSB) CopyFrom(src *RSB) {
	if len(r.entries) != len(src.entries) {
		panic(fmt.Sprintf("rsb: CopyFrom depth mismatch %d != %d", len(r.entries), len(src.entries)))
	}
	copy(r.entries, src.entries)
	r.top = src.top
}

// Reset zeroes every slot and the top pointer, returning the RSB to its
// post-New state (pooled-core recycling, like btb.Reset).
func (r *RSB) Reset() {
	for i := range r.entries {
		r.entries[i] = 0
	}
	r.top = 0
}
