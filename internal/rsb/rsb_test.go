package rsb

import "testing"

func TestLIFOWithinDepth(t *testing.T) {
	r := New(Config{Depth: 4})
	r.Push(0x10)
	r.Push(0x20)
	r.Push(0x30)
	for _, want := range []uint64{0x30, 0x20, 0x10} {
		if got := r.Pop(); got != want {
			t.Fatalf("Pop = %#x, want %#x", got, want)
		}
	}
}

func TestOverflowOverwritesOldest(t *testing.T) {
	r := New(Config{Depth: 4})
	for i := uint64(1); i <= 6; i++ { // two pushes past capacity
		r.Push(i * 0x100)
	}
	// The four most recent pushes pop correctly...
	for _, want := range []uint64{0x600, 0x500, 0x400, 0x300} {
		if got := r.Pop(); got != want {
			t.Fatalf("Pop = %#x, want %#x", got, want)
		}
	}
	// ...then the buffer re-serves stale slots instead of the
	// overwritten 0x200/0x100: this is the ret2spec overflow signal.
	if got := r.Pop(); got == 0x200 {
		t.Fatalf("Pop returned overwritten entry %#x; want stale wrap", got)
	}
}

func TestUnderflowWrapsToStale(t *testing.T) {
	r := New(Config{Depth: 4})
	r.Push(0xAA)
	if got := r.Pop(); got != 0xAA {
		t.Fatalf("Pop = %#x, want 0xAA", got)
	}
	// Underflow: wrap over never-written slots (predict 0 = cold), then
	// back onto the consumed 0xAA slot.
	seen := []uint64{r.Pop(), r.Pop(), r.Pop(), r.Pop()}
	if seen[3] != 0xAA {
		t.Fatalf("wrapped pops = %#x, want final re-served stale 0xAA", seen)
	}
	for _, v := range seen[:3] {
		if v != 0 {
			t.Fatalf("cold slot popped %#x, want 0", v)
		}
	}
}

func TestCopyFromAndReset(t *testing.T) {
	a := New(Config{Depth: 8})
	b := New(Config{Depth: 8})
	for i := uint64(0); i < 5; i++ {
		a.Push(0x1000 + i)
	}
	b.CopyFrom(a)
	if ga, gb := a.Pop(), b.Pop(); ga != gb {
		t.Fatalf("CopyFrom diverged: %#x vs %#x", ga, gb)
	}
	a.Reset()
	if got := a.Pop(); got != 0 {
		t.Fatalf("post-Reset Pop = %#x, want 0", got)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(Depth:0) did not panic")
		}
	}()
	New(Config{Depth: 0})
}

// TestPushPopAllocs gates the RSB's zero-allocation contract: the
// structure rides the core's steady-state step loop, so Push, Pop,
// CopyFrom and Reset must never allocate (mirrors btb.TestLookupAllocs
// for the backend subsystem's other fixed-storage structure).
func TestPushPopAllocs(t *testing.T) {
	r := New(Config{Depth: 16})
	other := New(Config{Depth: 16})
	var i uint64
	check := func(name string, f func()) {
		t.Helper()
		if avg := testing.AllocsPerRun(200, f); avg != 0 {
			t.Errorf("%s allocates %v objects/op, want 0", name, avg)
		}
	}
	check("RSB.Push", func() { r.Push(0x4000 + i); i++ })
	check("RSB.Pop", func() { r.Pop() })
	check("RSB.CopyFrom", func() { other.CopyFrom(r) })
	check("RSB.Reset", func() { r.Reset() })
}
