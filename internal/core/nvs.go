package core

import (
	"fmt"
	"sort"

	"repro/internal/mem"
	"repro/internal/sgx"
	"repro/internal/trace"
)

// SupervisorConfig tunes NV-S.
type SupervisorConfig struct {
	// BlocksPerCall is N from Figure 10: how many 32-byte PWs one
	// NV-Core call monitors during the coarse pass. Bounded above by
	// the LBR depth. Default 8.
	BlocksPerCall int
	// MaxSteps caps the enclave's architectural steps per run.
	// Default 200000.
	MaxSteps int
	// MaxRuns caps the replay runs ExtractTrace may consume. Under
	// interference, degraded probes skip a search advance and the next
	// replay retries them; the cap keeps a hostile fault schedule from
	// spinning the pipeline forever. Default 10000.
	MaxRuns int
	// NoFlushPerStep disables the BTB flush the attacker performs
	// before priming each step. Flushing (the paper's flushBTB jump
	// slide, run inside the AEX window) removes stale victim entries
	// that would otherwise steer speculative fetch into previously
	// executed loop bodies and merge the measured ranges. Without it,
	// loop-heavy victims reconstruct with more §6.3 candidate
	// ambiguity.
	NoFlushPerStep bool
}

func (c SupervisorConfig) withDefaults() SupervisorConfig {
	if c.BlocksPerCall == 0 {
		c.BlocksPerCall = 8
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 200_000
	}
	if c.MaxRuns == 0 {
		c.MaxRuns = 10_000
	}
	return c
}

// NVSResult is the outcome of a full NV-S extraction.
type NVSResult struct {
	// Trace holds the reconstructed PC of every architectural step
	// (macro-fused pairs appear as their leading instruction, the §7.3
	// measurement limit).
	Trace trace.Trace
	// DataTouched reports, per step, whether the controlled channel saw
	// a data-page access — the §6.4 signal separating calls/rets from
	// plain jumps.
	DataTouched []bool
	// Pages is the code page number of each step, from the controlled
	// channel.
	Pages []uint64
	// CandidateSets holds, per step, every PC candidate before the §6.3
	// speculation disambiguation.
	CandidateSets [][]uint64
	// Runs counts full enclave executions consumed.
	Runs int
}

// SupervisorAttack is NV-S (§4.3, §6.3): a privileged attacker single-
// stepping an SGX enclave, reconstructing the PC of every dynamic
// instruction by binary-searching BTB range-query responses, with page
// numbers supplied by the controlled channel.
type SupervisorAttack struct {
	A   *Attacker
	Enc *sgx.Enclave
	Tr  *sgx.Tracker
	cfg SupervisorConfig
}

// NewSupervisorAttack prepares NV-S against enc. It installs a
// controlled-channel tracker; call Close when done.
func NewSupervisorAttack(a *Attacker, enc *sgx.Enclave, cfg SupervisorConfig) *SupervisorAttack {
	tr := sgx.NewTracker(enc)
	tr.TrackCode(true)
	return &SupervisorAttack{A: a, Enc: enc, Tr: tr, cfg: cfg.withDefaults()}
}

// Close removes the controlled-channel tracker.
func (s *SupervisorAttack) Close() { s.Tr.Close() }

// ExtractTrace runs the full NV-S pipeline of Figure 9: a discovery run
// for step count, page sequence and data-access signals, then repeated
// single-stepped replays that advance a per-step PW-traversal search
// (Figure 10) until every step's PC is resolved, and finally the
// cross-step candidate disambiguation of §6.3.
func (s *SupervisorAttack) ExtractTrace() (*NVSResult, error) {
	res := &NVSResult{}

	extract := s.A.Trace.Begin("nvs", "extract", s.A.TraceTID, nil)

	// Phase 0: discovery.
	disc := s.A.Trace.Begin("nvs", "discover", s.A.TraceTID, nil)
	err := s.discover(res)
	disc.End()
	if err != nil {
		return nil, err
	}
	n := len(res.Pages)

	// Per-step searches, advanced one probe per replay run.
	searches := make([]*stepSearch, n)
	for i := range searches {
		searches[i] = newStepSearch(res.Pages[i], s.cfg.BlocksPerCall)
	}

	for {
		pending := false
		for _, ss := range searches {
			if !ss.done() {
				pending = true
				break
			}
		}
		if !pending {
			break
		}
		if res.Runs >= s.cfg.MaxRuns {
			return nil, fmt.Errorf("core: NV-S exceeded %d replay runs with searches still pending", s.cfg.MaxRuns)
		}
		var runArgs map[string]any
		if s.A.Trace != nil {
			runArgs = map[string]any{"run": res.Runs}
		}
		replay := s.A.Trace.Begin("nvs", "replay_run", s.A.TraceTID, runArgs)
		err := s.replayRun(res, searches)
		replay.End()
		if err != nil {
			return nil, err
		}
	}

	// Phase 5: disambiguate speculation candidates across steps.
	res.CandidateSets = make([][]uint64, n)
	for i, ss := range searches {
		res.CandidateSets[i] = ss.resolved()
	}
	res.Trace = trace.FromPCs(disambiguate(res.CandidateSets))
	if s.A.Trace != nil {
		extract.EndWith(map[string]any{"steps": n, "runs": res.Runs})
	}
	return res, nil
}

// discover runs the enclave once under single-stepping, recording the
// step count, the code page of each step and the data-access signal.
func (s *SupervisorAttack) discover(res *NVSResult) error {
	s.Enc.Reset()
	s.Tr.ResetLog()
	s.Tr.TrackData(true)
	defer s.Tr.TrackData(false)
	res.Runs++
	for steps := 0; steps < s.cfg.MaxSteps; steps++ {
		s.Tr.Rearm()
		done, err := s.Enc.StepOne()
		if err != nil {
			return fmt.Errorf("core: discovery step %d: %w", steps, err)
		}
		if done {
			return nil
		}
		page, ok := s.Tr.CurrentPage()
		if !ok {
			return fmt.Errorf("core: controlled channel lost the code page at step %d", steps)
		}
		res.Pages = append(res.Pages, page)
		res.DataTouched = append(res.DataTouched, s.Tr.DataTouched())
	}
	return fmt.Errorf("core: enclave exceeded %d steps", s.cfg.MaxSteps)
}

// replayRun resets the enclave and replays it under single-stepping,
// advancing each step's search by one prime/probe round.
func (s *SupervisorAttack) replayRun(res *NVSResult, searches []*stepSearch) error {
	s.Enc.Reset()
	res.Runs++
	for i := 0; i < len(searches); i++ {
		pws := searches[i].nextPWs()
		if pws == nil {
			if _, err := s.Enc.StepOne(); err != nil {
				return fmt.Errorf("core: replay step %d: %w", i, err)
			}
			continue
		}
		if !s.cfg.NoFlushPerStep {
			// The attacker's flushBTB slide, run during the AEX window
			// before re-priming.
			s.A.Core.BTB.Flush()
		}
		m, err := s.A.CachedMonitor(pws)
		if err != nil {
			return fmt.Errorf("core: replay step %d: %w", i, err)
		}
		if err := m.Prime(); err != nil {
			return err
		}
		if _, err := s.Enc.StepOne(); err != nil {
			return fmt.Errorf("core: replay step %d: %w", i, err)
		}
		pr, err := m.ProbeRobust()
		if err != nil {
			return err
		}
		if pr.Degraded || pr.Retries > 0 {
			// The measurement was lost (or only recovered by a retry
			// whose re-primed chain no longer held the stepped victim's
			// evidence): don't feed a corrupted vector into the search —
			// skip the advance and let the next replay run redo the full
			// prime/step/probe round for this step.
			continue
		}
		searches[i].feed(pr.Match)
	}
	// Finish the run so the next Reset starts from a clean halt.
	for !s.Enc.Done() {
		if _, err := s.Enc.StepOne(); err != nil {
			return err
		}
	}
	return nil
}

// disambiguate implements the §6.3 rule: speculative control transfers
// make some steps report several candidate PCs; candidates repeated in
// the next step's set are speculation artifacts, and the candidate
// unique to this step is the real PC.
func disambiguate(sets [][]uint64) []uint64 {
	out := make([]uint64, len(sets))
	var prev uint64
	for i, set := range sets {
		if len(set) == 0 {
			out[i] = 0
			continue
		}
		var next map[uint64]bool
		if i+1 < len(sets) {
			next = make(map[uint64]bool, len(sets[i+1]))
			for _, c := range sets[i+1] {
				next[c] = true
			}
		}
		var uniq []uint64
		for _, c := range set {
			if next == nil || !next[c] {
				uniq = append(uniq, c)
			}
		}
		switch {
		case len(uniq) == 1:
			out[i] = uniq[0]
		case len(uniq) > 1:
			// Prefer the candidate continuing from the previous PC
			// (smallest forward distance within a plausible instruction
			// length); otherwise the lowest.
			out[i] = pickContinuation(uniq, prev)
		default:
			out[i] = pickContinuation(set, prev)
		}
		prev = out[i]
	}
	return out
}

func pickContinuation(cands []uint64, prev uint64) uint64 {
	best := cands[0]
	bestScore := ^uint64(0)
	for _, c := range cands {
		score := ^uint64(0) - 1
		if c > prev && c-prev <= 16 {
			score = c - prev
		}
		if score < bestScore || (score == bestScore && c < best) {
			best = c
			bestScore = score
		}
	}
	return best
}

// blocksPerPage is the number of 32-byte prediction windows per page.
const blocksPerPage = mem.PageSize / 32

// Search phases.
const (
	phaseCoarse = iota
	phaseGrid
	phaseByte
	phaseDone
)

// gridTiles are the 5-byte window offsets tiling a 32-byte block for
// the grid refinement pass. Offsets 30..31 are caught by the fallback
// window at 27.
var gridTiles = []uint64{0, 5, 10, 15, 20, 25}

// stepSearch is the per-step PW-traversal state machine (Figure 10):
// coarse 32-byte blocks, then 5-byte grid windows within each candidate
// block, then 2-byte PWs to the exact byte.
type stepSearch struct {
	page  uint64
	nPer  int
	phase int

	coarseChunk   int
	touchedBlocks map[uint64]bool

	cands   []uint64 // candidate block bases (starts of touched runs)
	windows []uint64 // per candidate: 5-byte window base (0 = unresolved)
	gridCur int      // candidate currently being tiled

	byteCur    int    // candidate currently byte-searched
	byteK      uint64 // current tiny-PW base being tested
	byteLowest uint64 // lowest matched K so far
	byteSeen   bool

	starts []uint64 // resolved start addresses, one per candidate
}

func newStepSearch(page uint64, nPer int) *stepSearch {
	return &stepSearch{
		page:          page,
		nPer:          nPer,
		touchedBlocks: make(map[uint64]bool),
	}
}

func (ss *stepSearch) done() bool { return ss.phase == phaseDone }

// resolved returns the candidate start addresses found. A start at its
// block's base whose previous block was also touched is the
// continuation of a spilled range, not a fresh candidate.
func (ss *stepSearch) resolved() []uint64 {
	var out []uint64
	for _, start := range ss.starts {
		if start&31 == 0 && ss.touchedBlocks[start-32] {
			continue
		}
		out = append(out, start)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// nextPWs returns the PW set for this step's next probe, or nil when
// the search is complete (the replay just steps past it).
func (ss *stepSearch) nextPWs() []PW {
	switch ss.phase {
	case phaseCoarse:
		base := ss.page << mem.PageShift
		var pws []PW
		for b := ss.coarseChunk * ss.nPer; b < (ss.coarseChunk+1)*ss.nPer && b < blocksPerPage; b++ {
			pws = append(pws, PW{Base: base + uint64(b)*32, Len: 32})
		}
		return pws
	case phaseGrid:
		blockBase := ss.cands[ss.gridCur]
		pws := make([]PW, 0, len(gridTiles))
		for _, off := range gridTiles {
			pws = append(pws, PW{Base: blockBase + off, Len: 5})
		}
		return pws
	case phaseByte:
		return []PW{{Base: ss.byteK, Len: 2}}
	}
	return nil
}

// feed consumes the probe result of the PW set returned by nextPWs.
func (ss *stepSearch) feed(match []bool) {
	switch ss.phase {
	case phaseCoarse:
		base := ss.page << mem.PageShift
		for j, hit := range match {
			if hit {
				b := uint64(ss.coarseChunk*ss.nPer+j) * 32
				ss.touchedBlocks[base+b] = true
			}
		}
		ss.coarseChunk++
		if ss.coarseChunk*ss.nPer >= blocksPerPage {
			ss.finishCoarse()
		}
	case phaseGrid:
		// Lowest matched tile contains the run start; no match means
		// the start hides in the block tail [27,31].
		window := ss.cands[ss.gridCur] + 27
		for j, hit := range match {
			if hit {
				window = ss.cands[ss.gridCur] + gridTiles[j]
				break
			}
		}
		ss.windows = append(ss.windows, window)
		ss.gridCur++
		if ss.gridCur == len(ss.cands) {
			ss.startByte(0)
		}
	case phaseByte:
		hit := match[0]
		if hit {
			ss.byteLowest = ss.byteK
			ss.byteSeen = true
		}
		w := ss.windows[ss.byteCur]
		if (ss.byteSeen && !hit) || ss.byteK == w-1 {
			// Transition found (or window exhausted): resolve.
			start := w // fallback: window base
			if ss.byteSeen {
				start = ss.byteLowest + 1
			}
			ss.starts = append(ss.starts, start)
			if ss.byteCur+1 < len(ss.cands) {
				ss.startByte(ss.byteCur + 1)
			} else {
				ss.phase = phaseDone
			}
			return
		}
		ss.byteK--
	}
}

// finishCoarse promotes every touched block to a refinement candidate.
// Refining each block (not just run starts) keeps ranges separable when
// speculative wrap-around through a loop back-edge touches blocks below
// the stepped instruction (§6.3); offset-0 continuations are filtered
// after byte refinement in resolved().
func (ss *stepSearch) finishCoarse() {
	blocks := make([]uint64, 0, len(ss.touchedBlocks))
	for b := range ss.touchedBlocks {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	ss.cands = append(ss.cands, blocks...)
	if len(ss.cands) == 0 {
		// Nothing matched: unreconstructable step (should not happen —
		// the instruction's own fetch always touches its block).
		ss.phase = phaseDone
		return
	}
	ss.phase = phaseGrid
	ss.gridCur = 0
}

// startByte begins the descending tiny-PW search for candidate idx.
func (ss *stepSearch) startByte(idx int) {
	ss.phase = phaseByte
	ss.byteCur = idx
	ss.byteK = ss.windows[idx] + 3
	ss.byteSeen = false
	ss.byteLowest = 0
}
