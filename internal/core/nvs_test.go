package core

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sgx"
)

// referenceSteps computes the ground-truth per-step leading PCs by
// running the program on a plain core (no attack): one entry per
// architectural step, macro-fused pairs contributing their leading PC.
func referenceSteps(t *testing.T, p *asm.Program, entry uint64) []uint64 {
	t.Helper()
	m := mem.New()
	p.LoadInto(m)
	m.Map(0x71_0000, 0x1000, mem.PermRW)
	c := cpu.New(cpu.Config{}, m)
	c.SetReg(isa.SP, 0x71_1000)
	c.SetPC(entry)
	var pcs []uint64
	for {
		info, err := c.Step()
		if err == cpu.ErrHalted {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if info.Inst.Op == isa.OpHlt {
			break
		}
		pcs = append(pcs, info.PC)
	}
	return pcs
}

// nvsSetup builds an enclave + supervisor attack for the given source.
func nvsSetup(t *testing.T, src string, entry string) (*sgx.Enclave, *SupervisorAttack, *asm.Program) {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	c := cpu.New(cpu.Config{}, mem.New())
	enc, err := sgx.Create(c, p, sgx.Config{
		Entry: p.MustLabel(entry),
		Stack: sgx.Region{Addr: 0x71_0000, Size: 0x1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAttacker(c, 1<<32)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSupervisorAttack(a, enc, SupervisorConfig{})
	return enc, s, p
}

const straightLineEnclave = `
	.org 0x600000
entry:
	movi r1, 7
	movi r2, 3
	add r1, r2
	xor r3, r3
	mov r4, r1
	nop
	nop
	addi r4, 1
	hlt
`

// TestNVSStraightLine: every PC of a straight-line enclave — all
// non-control-transfer instructions — is reconstructed exactly. This is
// the paper's headline capability.
func TestNVSStraightLine(t *testing.T) {
	_, s, p := nvsSetup(t, straightLineEnclave, "entry")
	defer s.Close()
	want := referenceSteps(t, p, p.MustLabel("entry"))

	res, err := s.ExtractTrace()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != len(want) {
		t.Fatalf("reconstructed %d steps, want %d", len(res.Trace), len(want))
	}
	for i := range want {
		if res.Trace[i].PC != want[i] {
			t.Errorf("step %d: PC = %#x, want %#x (candidates %#x)", i, res.Trace[i].PC, want[i], res.CandidateSets[i])
		}
	}
}

const branchyEnclave = `
	.org 0x600000
entry:
	movi r1, 2
	movi r2, 0
loop:
	addi r2, 5
	subi r1, 1
	jnz loop
	nop
	call fn
	xor r1, r1
	hlt
	.align 32
fn:
	addi r2, 1
	ret
`

// TestNVSBranchy: loops, calls and returns with macro-fusion in play.
// Fused cmp/test-style pairs report the leading PC only (§7.3); the
// reference uses the same convention, so exact match is expected except
// for occasional speculation artifacts.
func TestNVSBranchy(t *testing.T) {
	_, s, p := nvsSetup(t, branchyEnclave, "entry")
	defer s.Close()
	want := referenceSteps(t, p, p.MustLabel("entry"))

	res, err := s.ExtractTrace()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != len(want) {
		t.Fatalf("reconstructed %d steps, want %d", len(res.Trace), len(want))
	}
	correct := 0
	for i := range want {
		if res.Trace[i].PC == want[i] {
			correct++
		} else {
			t.Logf("step %d: PC = %#x, want %#x (candidates %#x)", i, res.Trace[i].PC, want[i], res.CandidateSets[i])
		}
	}
	if rate := float64(correct) / float64(len(want)); rate < 0.9 {
		t.Errorf("reconstruction accuracy %.2f below 0.9", rate)
	}
}

// TestNVSDataTouchSignals: the controlled channel flags the steps that
// access data pages (call/ret/push), the §6.4 slicing signal.
func TestNVSDataTouchSignals(t *testing.T) {
	_, s, p := nvsSetup(t, branchyEnclave, "entry")
	defer s.Close()
	_ = referenceSteps(t, p, p.MustLabel("entry")) // sanity: program runs clean
	res, err := s.ExtractTrace()
	if err != nil {
		t.Fatal(err)
	}
	touched := 0
	for _, d := range res.DataTouched {
		if d {
			touched++
		}
	}
	// Exactly two data-touching steps: the call (stack push) and the
	// ret (stack pop).
	if touched != 2 {
		t.Errorf("data-touched steps = %d, want 2 (call and ret)", touched)
	}
}

// TestNVSRunsBudget: the number of full enclave executions follows the
// Figure 10 cost model: 1 discovery + 128/N coarse + grid + byte
// refinement, not hundreds.
func TestNVSRunsBudget(t *testing.T) {
	_, s, p := nvsSetup(t, straightLineEnclave, "entry")
	defer s.Close()
	_ = p
	res, err := s.ExtractTrace()
	if err != nil {
		t.Fatal(err)
	}
	// 1 discovery + 16 coarse (128/8) + per touched block (~2 here):
	// 1 grid + <=5 byte refinements = well under 40.
	if res.Runs > 40 {
		t.Errorf("Runs = %d, want <= 40", res.Runs)
	}
	if res.Runs < 18 {
		t.Errorf("Runs = %d suspiciously low", res.Runs)
	}
}

func TestDisambiguate(t *testing.T) {
	// Step 0 sees {base0, specTarget}; step 1 sees {base1, specTarget}:
	// the repeated candidate is ruled out both times.
	sets := [][]uint64{
		{0x100, 0x500},
		{0x102, 0x500},
		{0x500}, // the jump landed: single candidate
		{},      // unreconstructable step
	}
	got := disambiguate(sets)
	want := []uint64{0x100, 0x102, 0x500, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("step %d: %#x, want %#x", i, got[i], want[i])
		}
	}
}

func TestPickContinuation(t *testing.T) {
	// Prefer the candidate continuing from prev within 16 bytes.
	if got := pickContinuation([]uint64{0x500, 0x106}, 0x100); got != 0x106 {
		t.Errorf("continuation = %#x, want 0x106", got)
	}
	// No plausible continuation: lowest wins.
	if got := pickContinuation([]uint64{0x500, 0x300}, 0x100); got != 0x300 {
		t.Errorf("fallback = %#x, want 0x300", got)
	}
}
