package core

import (
	"fmt"

	"repro/internal/isa"
)

// PW is a prediction-window address range in victim space: the unit
// NV-Core monitors. Base is the first byte, Len the length in bytes;
// the range is [Base, Base+Len).
//
// A PW of length >= 5 must lie within one 32-byte block (the fetch
// granularity); the minimal 2-byte PW may straddle a block boundary,
// which is how NightVision distinguishes instructions starting at
// offset 0 of a block.
type PW struct {
	Base uint64
	Len  int
}

// Hi returns the address of the last byte of the range.
func (p PW) Hi() uint64 { return p.Base + uint64(p.Len) - 1 }

// Contains reports whether addr is inside the range.
func (p PW) Contains(addr uint64) bool {
	return addr >= p.Base && addr <= p.Hi()
}

func (p PW) String() string { return fmt.Sprintf("PW[%#x,%#x]", p.Base, p.Hi()) }

// blockOf returns the 32-byte block index of addr.
func blockOf(addr uint64) uint64 { return addr >> 5 }

// Monitor is the NV-Core primitive (§4.1): a Prime+Probe detector over
// one or more PW ranges.
//
// For each PW the attacker lays out, at the aliased addresses (same
// BTB-visible bits, different high bits), a run of nops ending in a
// direct jump whose last byte aliases the PW's last byte. Priming
// executes the chain, allocating one BTB entry per PW. A victim
// execution overlapping a PW then perturbs that state in one of the two
// ways of Figure 5:
//
//   - the victim's non-branch bytes false-hit the attacker's entry and
//     deallocate it (Takeaway 1), or
//   - the victim's own taken branch plants/retargets an entry inside
//     the range, which the probe's nop-walk then false-hits.
//
// Either way the next Probe sees a misprediction bubble attributable to
// that PW.
type Monitor struct {
	a *Attacker
	// PWs are the monitored ranges, in chain order.
	PWs []PW

	entry    uint64   // attacker pc starting the chain
	jmpPCs   []uint64 // attacker pc of each PW's jump, then the sentinel
	sentinel uint64   // sentinel jump address
	baseline []uint64 // calibrated quiet-system probe deltas
	margin   uint64   // cycles above baseline that count as a signal
}

// NewMonitor builds, lays out, calibrates and primes a monitor for the
// given PW ranges.
//
// Constraints: every PW needs Len >= 2 (the shortest direct jump). PWs
// shorter than 5 bytes use a 2-byte jump and require a fall-through
// sentinel, so they must be the only PW in the monitor. PW ranges must
// not overlap each other in attacker space.
func (a *Attacker) NewMonitor(pws []PW) (*Monitor, error) {
	if len(pws) == 0 {
		return nil, fmt.Errorf("core: monitor needs at least one PW")
	}
	for i, p := range pws {
		if p.Len < 2 {
			return nil, fmt.Errorf("core: %v: need Len >= 2 (shortest jump)", p)
		}
		if p.Len < 5 && len(pws) > 1 {
			return nil, fmt.Errorf("core: %v: PWs shorter than 5 bytes must be monitored alone", p)
		}
		if p.Len >= 5 && blockOf(p.Base) != blockOf(p.Hi()) {
			return nil, fmt.Errorf("core: %v spans a 32-byte block boundary", p)
		}
		if p.Len < 5 && p.Hi()-p.Base >= 32 {
			return nil, fmt.Errorf("core: %v malformed", p)
		}
		for j := 0; j < i; j++ {
			if p.Base <= pws[j].Hi() && pws[j].Base <= p.Hi() {
				return nil, fmt.Errorf("core: %v overlaps %v", p, pws[j])
			}
		}
	}

	m := &Monitor{a: a, PWs: append([]PW(nil), pws...)}
	if pws[0].Len >= 5 {
		m.sentinel = a.allocScratch(8)
	}
	m.layout()

	if len(m.jmpPCs) > m.a.Core.LBR.Depth()-1 {
		return nil, fmt.Errorf("core: %d PWs exceed the LBR depth %d", len(pws), m.a.Core.LBR.Depth())
	}

	// Calibrate: one run allocates the entries, then several quiet runs
	// record the all-predicted deltas; averaging keeps the baseline
	// stable under measurement noise (rdtsc-style configurations).
	if err := m.Prime(); err != nil {
		return nil, err
	}
	const calRuns = 5
	sums := make([]uint64, len(m.jmpPCs))
	for r := 0; r < calRuns; r++ {
		deltas, err := m.runAndMeasure()
		if err != nil {
			return nil, err
		}
		for i, d := range deltas {
			sums[i] += d
		}
	}
	m.baseline = make([]uint64, len(sums))
	for i, s := range sums {
		m.baseline[i] = (s + calRuns/2) / calRuns
	}
	cfg := a.Core.Config()
	m.margin = min3(cfg.FalseHitPenalty, cfg.DecodeResteerPenalty, cfg.ExecMispredictPenalty) / 2
	if m.margin == 0 {
		m.margin = 1
	}
	return m, nil
}

// layout (re)writes the monitor's chain into attacker memory. Monitors
// sharing address ranges overwrite each other's snippets; a cached
// monitor is re-laid-out before reuse.
func (m *Monitor) layout() {
	a := m.a
	pws := m.PWs
	m.jmpPCs = m.jmpPCs[:0]
	if pws[0].Len < 5 {
		// Tiny PW: nops + jmp8 falling through to an inline sentinel
		// (jmp32 + hlt) right after the range. The sentinel's own BTB
		// entry aliases victim bytes just past the PW; any interference
		// with it lands after the last measured record, so it cannot
		// contaminate the measurement.
		p := pws[0]
		addr := a.Alias(p.Base)
		for i := 0; i < p.Len-2; i++ {
			a.writeInst(addr, isa.Nop())
			addr++
		}
		a.writeInst(addr, isa.Jmp8(0)) // falls through to addr+2 == alias(Hi)+1
		m.jmpPCs = append(m.jmpPCs, addr)
		sentinel := addr + 2
		a.writeInst(sentinel, isa.Jmp32(0))
		a.writeInst(sentinel+5, isa.Hlt())
		m.jmpPCs = append(m.jmpPCs, sentinel)
		m.entry = a.Alias(p.Base)
	} else {
		sentinel := m.sentinel
		for i, p := range pws {
			addr := a.Alias(p.Base)
			for n := 0; n < p.Len-5; n++ {
				a.writeInst(addr, isa.Nop())
				addr++
			}
			target := sentinel
			if i+1 < len(pws) {
				target = a.Alias(pws[i+1].Base)
			}
			rel := int64(target) - int64(addr) - 5
			a.writeInst(addr, isa.Inst{Op: isa.OpJmp32, Imm: rel, Size: 5})
			m.jmpPCs = append(m.jmpPCs, addr)
		}
		a.writeInst(sentinel, isa.Jmp32(0))
		a.writeInst(sentinel+5, isa.Hlt())
		m.jmpPCs = append(m.jmpPCs, sentinel)
		m.entry = a.Alias(pws[0].Base)
	}
}

func min3(a, b, c uint64) uint64 {
	m := a
	if b < m {
		m = b
	}
	if c < m {
		m = c
	}
	return m
}

// Prime executes the chain so that every PW has a live BTB entry.
func (m *Monitor) Prime() error {
	return m.a.runSnippet(m.entry)
}

// runAndMeasure executes the chain and returns the LBR cycle delta of
// each jump record (PW jumps, then the sentinel).
func (m *Monitor) runAndMeasure() ([]uint64, error) {
	lbr := m.a.Core.LBR
	lbr.Clear()
	if err := m.a.runSnippet(m.entry); err != nil {
		return nil, err
	}
	recs := lbr.Records()
	deltas := make([]uint64, len(m.jmpPCs))
	found := make([]bool, len(m.jmpPCs))
	for _, r := range recs {
		for i, pc := range m.jmpPCs {
			if r.From == pc && !found[i] {
				deltas[i] = r.Cycles
				found[i] = true
			}
		}
	}
	for i, ok := range found {
		if !ok {
			return nil, fmt.Errorf("core: probe lost the LBR record of jump %d", i)
		}
	}
	return deltas, nil
}

// Probe re-executes the chain and reports, per PW, whether the victim's
// execution since the last Prime/Probe overlapped it. The probe doubles
// as the next prime: its own resteers re-establish the entries.
//
// The signal for PW i lives in the delta of the *following* record
// (jump i+1 or the sentinel): both a deallocated entry and a false hit
// during PW i's fetch delay the front end's arrival at the next jump.
func (m *Monitor) Probe() ([]bool, error) {
	deltas, err := m.runAndMeasure()
	if err != nil {
		return nil, err
	}
	match := make([]bool, len(m.PWs))
	for i := range m.PWs {
		match[i] = deltas[i+1] > m.baseline[i+1]+m.margin
	}
	return match, nil
}

// ProbeAveraged runs repeat prime/victim/probe rounds, majority-voting
// the matches. For noisy measurement channels (the rdtsc-style LBR
// noise configuration).
func (m *Monitor) ProbeAveraged(repeat int, reRunVictim func() error) ([]bool, error) {
	votes := make([]int, len(m.PWs))
	for r := 0; r < repeat; r++ {
		if err := m.Prime(); err != nil {
			return nil, err
		}
		if err := reRunVictim(); err != nil {
			return nil, err
		}
		match, err := m.Probe()
		if err != nil {
			return nil, err
		}
		for i, hit := range match {
			if hit {
				votes[i]++
			}
		}
	}
	match := make([]bool, len(m.PWs))
	for i, v := range votes {
		match[i] = v*2 > repeat
	}
	return match, nil
}
