package core

import (
	"errors"
	"fmt"

	"repro/internal/isa"
	"repro/internal/lbr"
)

// ErrRecordLost reports that a probe's LBR read was missing an expected
// record — on a live machine, an interrupt handler's branches or a
// competing perf consumer overwrote the ring. Retry-with-discard paths
// key off this error with errors.Is; any other probe error is
// structural and aborts.
var ErrRecordLost = errors.New("core: probe lost an LBR record")

// PW is a prediction-window address range in victim space: the unit
// NV-Core monitors. Base is the first byte, Len the length in bytes;
// the range is [Base, Base+Len).
//
// A PW of length >= 5 must lie within one 32-byte block (the fetch
// granularity); the minimal 2-byte PW may straddle a block boundary,
// which is how NightVision distinguishes instructions starting at
// offset 0 of a block.
type PW struct {
	Base uint64
	Len  int
}

// Hi returns the address of the last byte of the range.
func (p PW) Hi() uint64 { return p.Base + uint64(p.Len) - 1 }

// Contains reports whether addr is inside the range.
func (p PW) Contains(addr uint64) bool {
	return addr >= p.Base && addr <= p.Hi()
}

func (p PW) String() string { return fmt.Sprintf("PW[%#x,%#x]", p.Base, p.Hi()) }

// blockOf returns the 32-byte block index of addr.
func blockOf(addr uint64) uint64 { return addr >> 5 }

// Monitor is the NV-Core primitive (§4.1): a Prime+Probe detector over
// one or more PW ranges.
//
// For each PW the attacker lays out, at the aliased addresses (same
// BTB-visible bits, different high bits), a run of nops ending in a
// direct jump whose last byte aliases the PW's last byte. Priming
// executes the chain, allocating one BTB entry per PW. A victim
// execution overlapping a PW then perturbs that state in one of the two
// ways of Figure 5:
//
//   - the victim's non-branch bytes false-hit the attacker's entry and
//     deallocate it (Takeaway 1), or
//   - the victim's own taken branch plants/retargets an entry inside
//     the range, which the probe's nop-walk then false-hits.
//
// Either way the next Probe sees a misprediction bubble attributable to
// that PW.
type Monitor struct {
	a *Attacker
	// PWs are the monitored ranges, in chain order.
	PWs []PW

	entry    uint64   // attacker pc starting the chain
	jmpPCs   []uint64 // attacker pc of each PW's jump, then the sentinel
	sentinel uint64   // sentinel jump address
	baseline []uint64 // calibrated quiet-system probe deltas
	margin   uint64   // cycles above baseline that count as a signal

	// Scratch reused across probes so the measure loop never allocates:
	recScratch []lbr.Record
	deltas     []uint64
	found      []bool

	// spans caches the snippet bytes the first layout emitted, as
	// coalesced (addr, code) runs: the chain depends only on the PW set,
	// so re-laying-out a cached monitor replays raw bytes instead of
	// re-encoding every instruction.
	spans   []codeSpan
	laidOut bool
}

// codeSpan is one contiguous run of encoded snippet bytes.
type codeSpan struct {
	addr uint64
	code []byte
}

// emit writes in at addr and records its bytes for layout replay.
func (m *Monitor) emit(addr uint64, in isa.Inst) {
	a := m.a
	a.writeInst(addr, in)
	// writeInst leaves the encoding in a.encBuf; coalesce adjacent
	// instructions into one span.
	if n := len(m.spans); n > 0 && m.spans[n-1].addr+uint64(len(m.spans[n-1].code)) == addr {
		m.spans[n-1].code = append(m.spans[n-1].code, a.encBuf...)
	} else {
		m.spans = append(m.spans, codeSpan{addr: addr, code: append([]byte(nil), a.encBuf...)})
	}
}

// NewMonitor builds, lays out, calibrates and primes a monitor for the
// given PW ranges.
//
// Constraints: every PW needs Len >= 2 (the shortest direct jump). PWs
// shorter than 5 bytes use a 2-byte jump and require a fall-through
// sentinel, so they must be the only PW in the monitor. PW ranges must
// not overlap each other in attacker space.
func (a *Attacker) NewMonitor(pws []PW) (*Monitor, error) {
	if len(pws) == 0 {
		return nil, fmt.Errorf("core: monitor needs at least one PW")
	}
	for i, p := range pws {
		if p.Len < 2 {
			return nil, fmt.Errorf("core: %v: need Len >= 2 (shortest jump)", p)
		}
		if p.Len < 5 && len(pws) > 1 {
			return nil, fmt.Errorf("core: %v: PWs shorter than 5 bytes must be monitored alone", p)
		}
		if p.Len >= 5 && blockOf(p.Base) != blockOf(p.Hi()) {
			return nil, fmt.Errorf("core: %v spans a 32-byte block boundary", p)
		}
		if p.Len < 5 && p.Hi()-p.Base >= 32 {
			return nil, fmt.Errorf("core: %v malformed", p)
		}
		for j := 0; j < i; j++ {
			if p.Base <= pws[j].Hi() && pws[j].Base <= p.Hi() {
				return nil, fmt.Errorf("core: %v overlaps %v", p, pws[j])
			}
		}
	}

	m := &Monitor{a: a, PWs: append([]PW(nil), pws...)}
	if pws[0].Len >= 5 {
		m.sentinel = a.allocScratch(8)
	}
	m.layout()

	if len(m.jmpPCs) > m.a.Core.LBR.Depth()-1 {
		return nil, fmt.Errorf("core: %d PWs exceed the LBR depth %d", len(pws), m.a.Core.LBR.Depth())
	}

	// Calibrate: one run allocates the entries, then several quiet runs
	// record the all-predicted deltas; averaging keeps the baseline
	// stable under measurement noise (rdtsc-style configurations).
	// Calibration rounds that lose LBR records to interference are
	// discarded and redone within a bounded budget, so a monitor can
	// still be built on a noisy system.
	if err := m.Prime(); err != nil {
		return nil, err
	}
	const calRuns = 5
	sums := make([]uint64, len(m.jmpPCs))
	good := 0
	for attempt := 0; good < calRuns; attempt++ {
		deltas, err := m.runAndMeasure()
		if err != nil {
			if errors.Is(err, ErrRecordLost) && attempt < 4*calRuns {
				continue
			}
			return nil, err
		}
		for i, d := range deltas {
			sums[i] += d
		}
		good++
	}
	m.baseline = make([]uint64, len(sums))
	for i, s := range sums {
		m.baseline[i] = (s + calRuns/2) / calRuns
	}
	cfg := a.Core.Config()
	m.margin = min3(cfg.FalseHitPenalty, cfg.DecodeResteerPenalty, cfg.ExecMispredictPenalty) / 2
	if m.margin == 0 {
		m.margin = 1
	}
	return m, nil
}

// layout (re)writes the monitor's chain into attacker memory. Monitors
// sharing address ranges overwrite each other's snippets; a cached
// monitor is re-laid-out before reuse — which replays the byte spans
// recorded by the first layout, since the chain depends only on the
// (immutable) PW set.
func (m *Monitor) layout() {
	if m.laidOut {
		for i := range m.spans {
			m.a.Core.Mem.LoadProgram(m.spans[i].addr, m.spans[i].code)
		}
		return
	}
	m.laidOut = true
	a := m.a
	pws := m.PWs
	m.jmpPCs = m.jmpPCs[:0]
	if pws[0].Len < 5 {
		// Tiny PW: nops + jmp8 falling through to an inline sentinel
		// (jmp32 + hlt) right after the range. The sentinel's own BTB
		// entry aliases victim bytes just past the PW; any interference
		// with it lands after the last measured record, so it cannot
		// contaminate the measurement.
		p := pws[0]
		addr := a.Alias(p.Base)
		for i := 0; i < p.Len-2; i++ {
			m.emit(addr, isa.Nop())
			addr++
		}
		m.emit(addr, isa.Jmp8(0)) // falls through to addr+2 == alias(Hi)+1
		m.jmpPCs = append(m.jmpPCs, addr)
		sentinel := addr + 2
		m.emit(sentinel, isa.Jmp32(0))
		m.emit(sentinel+5, isa.Hlt())
		m.jmpPCs = append(m.jmpPCs, sentinel)
		m.entry = a.Alias(p.Base)
	} else {
		sentinel := m.sentinel
		for i, p := range pws {
			addr := a.Alias(p.Base)
			for n := 0; n < p.Len-5; n++ {
				m.emit(addr, isa.Nop())
				addr++
			}
			target := sentinel
			if i+1 < len(pws) {
				target = a.Alias(pws[i+1].Base)
			}
			rel := int64(target) - int64(addr) - 5
			m.emit(addr, isa.Inst{Op: isa.OpJmp32, Imm: rel, Size: 5})
			m.jmpPCs = append(m.jmpPCs, addr)
		}
		m.emit(sentinel, isa.Jmp32(0))
		m.emit(sentinel+5, isa.Hlt())
		m.jmpPCs = append(m.jmpPCs, sentinel)
		m.entry = a.Alias(pws[0].Base)
	}
}

func min3(a, b, c uint64) uint64 {
	m := a
	if b < m {
		m = b
	}
	if c < m {
		m = c
	}
	return m
}

// Prime executes the chain so that every PW has a live BTB entry.
func (m *Monitor) Prime() error {
	m.a.Obs.Primes.Inc()
	return m.a.runSnippet(m.entry)
}

// runAndMeasure executes the chain and returns the LBR cycle delta of
// each jump record (PW jumps, then the sentinel). Records first pass
// through the attacker's interference filter; a missing record returns
// an error wrapping ErrRecordLost.
//
// The returned slice is monitor-owned scratch, valid until the next
// runAndMeasure call; callers consume it before probing again.
func (m *Monitor) runAndMeasure() ([]uint64, error) {
	ring := m.a.Core.LBR
	ring.Clear()
	if err := m.a.runSnippet(m.entry); err != nil {
		return nil, err
	}
	m.recScratch = ring.RecordsAppend(m.recScratch[:0])
	recs := m.recScratch
	if m.a.Interfere != nil {
		recs = m.a.Interfere.Records(recs)
	}
	if cap(m.deltas) < len(m.jmpPCs) {
		m.deltas = make([]uint64, len(m.jmpPCs))
		m.found = make([]bool, len(m.jmpPCs))
	}
	deltas := m.deltas[:len(m.jmpPCs)]
	found := m.found[:len(m.jmpPCs)]
	for i := range deltas {
		deltas[i] = 0
		found[i] = false
	}
	for _, r := range recs {
		for i, pc := range m.jmpPCs {
			if r.From == pc && !found[i] {
				deltas[i] = r.Cycles
				found[i] = true
			}
		}
	}
	for i, ok := range found {
		if !ok {
			return nil, fmt.Errorf("record of jump %d: %w", i, ErrRecordLost)
		}
	}
	return deltas, nil
}

// ProbeResult is one probe outcome with per-PW confidence.
type ProbeResult struct {
	// Match reports, per PW, whether the victim's execution since the
	// last Prime/Probe overlapped it.
	Match []bool
	// Confidence is the per-PW decision confidence in [0, 1]: how far
	// the measured delta sat from the detection threshold, in units of
	// the margin, attenuated by the retries the probe needed.
	Confidence []float64
	// Retries counts record-loss rounds discarded before this result.
	Retries int
	// Degraded marks a probe whose entire retry budget lost records:
	// Match is all-false at zero confidence, and the caller should
	// treat the window as unobserved rather than quiet.
	Degraded bool
}

// classify converts raw deltas into a ProbeResult.
func (m *Monitor) classify(deltas []uint64, retries int) *ProbeResult {
	r := &ProbeResult{
		Match:      make([]bool, len(m.PWs)),
		Confidence: make([]float64, len(m.PWs)),
		Retries:    retries,
	}
	for i := range m.PWs {
		thr := m.baseline[i+1] + m.margin
		d := deltas[i+1]
		r.Match[i] = d > thr
		var dist uint64
		if d > thr {
			dist = d - thr
		} else {
			dist = thr - d
		}
		conf := float64(dist) / float64(m.margin)
		if conf > 1 {
			conf = 1
		}
		r.Confidence[i] = conf / float64(1+retries)
	}
	return r
}

// ProbeRobust re-executes the chain and classifies the result,
// retrying with discard (bounded by the attacker's MaxProbeRetries)
// when interference loses LBR records. A retried probe measures a
// re-primed chain, not the original victim perturbation, so its
// confidence is attenuated; exhausting the budget yields a Degraded
// result instead of an error.
//
// The signal for PW i lives in the delta of the *following* record
// (jump i+1 or the sentinel): both a deallocated entry and a false hit
// during PW i's fetch delay the front end's arrival at the next jump.
func (m *Monitor) ProbeRobust() (*ProbeResult, error) {
	budget := m.a.probeRetries()
	for attempt := 0; ; attempt++ {
		deltas, err := m.runAndMeasure()
		if err == nil {
			m.a.Obs.ProbeRounds.Inc()
			m.a.Obs.ProbeRetries.Add(uint64(attempt))
			return m.classify(deltas, attempt), nil
		}
		if !errors.Is(err, ErrRecordLost) {
			return nil, err
		}
		if m.a.Trace != nil {
			m.a.Trace.Event("nvcore", "probe_retry", m.a.TraceTID, map[string]any{"attempt": attempt + 1})
		}
		if attempt >= budget {
			m.a.Obs.ProbeRetries.Add(uint64(attempt))
			m.a.Obs.ProbeDegraded.Inc()
			r := &ProbeResult{
				Match:      make([]bool, len(m.PWs)),
				Confidence: make([]float64, len(m.PWs)),
				Retries:    attempt,
				Degraded:   true,
			}
			return r, nil
		}
		// The lost run's own resteers re-established most entries, but
		// re-prime explicitly so the retry starts from a full chain.
		if perr := m.Prime(); perr != nil {
			return nil, perr
		}
	}
}

// Probe re-executes the chain and reports, per PW, whether the victim's
// execution since the last Prime/Probe overlapped it. The probe doubles
// as the next prime: its own resteers re-establish the entries.
//
// Record loss is retried with discard internally; a probe that
// exhausts the retry budget returns an error wrapping ErrRecordLost.
// Callers wanting graceful degradation and confidence scores use
// ProbeRobust.
func (m *Monitor) Probe() ([]bool, error) {
	r, err := m.ProbeRobust()
	if err != nil {
		return nil, err
	}
	if r.Degraded {
		return nil, fmt.Errorf("probe retry budget exhausted after %d attempts: %w", r.Retries+1, ErrRecordLost)
	}
	return r.Match, nil
}

// voteEpsilon is the weight floor of a voting round: even a
// zero-confidence round (delta exactly on the threshold) must count,
// or single-round votes could tie spuriously.
const voteEpsilon = 0.01

// VoteResult is a ProbeAveraged outcome with per-PW vote confidence.
type VoteResult struct {
	Match []bool
	// Confidence is the per-PW normalized vote margin in [0, 1]:
	// |weight-for − weight-against| / total weight.
	Confidence []float64
	// Rounds is the number of rounds that produced a measurement;
	// Discarded counts rounds lost to interference.
	Rounds    int
	Discarded int
}

// ProbeAveraged runs repeat prime/victim/probe rounds, majority-voting
// the matches, and returns the per-PW decisions. For noisy measurement
// channels (the rdtsc-style LBR noise configuration). See
// ProbeAveragedRobust for the vote semantics.
func (m *Monitor) ProbeAveraged(repeat int, reRunVictim func() error) ([]bool, error) {
	r, err := m.ProbeAveragedRobust(repeat, reRunVictim)
	if err != nil {
		return nil, err
	}
	return r.Match, nil
}

// ProbeAveragedRobust runs up to repeat successful prime/victim/probe
// rounds, combining them by confidence-weighted voting: each round
// contributes its per-PW confidence (floored at a small epsilon) for
// or against a hit, and the final decision is the heavier side, with
// exact ties counting as "hit" (the conservative reading for a
// detector — an even split means the window was plausibly touched).
//
// Rounds whose probe loses its LBR records are discarded and retried
// within a bounded budget (one extra round per requested round) rather
// than aborting the vote; wholly-degraded rounds count in Discarded.
func (m *Monitor) ProbeAveragedRobust(repeat int, reRunVictim func() error) (*VoteResult, error) {
	wFor := make([]float64, len(m.PWs))
	wAgainst := make([]float64, len(m.PWs))
	res := &VoteResult{
		Match:      make([]bool, len(m.PWs)),
		Confidence: make([]float64, len(m.PWs)),
	}
	budget := 2 * repeat
	for attempt := 0; res.Rounds < repeat && attempt < budget; attempt++ {
		var roundArgs map[string]any
		if m.a.Trace != nil {
			roundArgs = map[string]any{"attempt": attempt}
		}
		round := m.a.Trace.Begin("nvcore", "round", m.a.TraceTID, roundArgs)
		sp := m.a.Trace.Begin("nvcore", "prime", m.a.TraceTID, nil)
		err := m.Prime()
		sp.End()
		if err != nil {
			return nil, err
		}
		sp = m.a.Trace.Begin("nvcore", "victim", m.a.TraceTID, nil)
		err = reRunVictim()
		sp.End()
		if err != nil {
			return nil, err
		}
		sp = m.a.Trace.Begin("nvcore", "probe", m.a.TraceTID, nil)
		pr, err := m.ProbeRobust()
		sp.End()
		if err != nil {
			return nil, err
		}
		if pr.Degraded {
			res.Discarded++
			m.a.Obs.VoteDiscards.Inc()
			if m.a.Trace != nil {
				round.EndWith(map[string]any{"degraded": true})
			}
			continue
		}
		res.Rounds++
		m.a.Obs.VoteRounds.Inc()
		if m.a.Trace != nil {
			round.EndWith(map[string]any{"retries": pr.Retries})
		}
		for i, hit := range pr.Match {
			w := pr.Confidence[i]
			if w < voteEpsilon {
				w = voteEpsilon
			}
			if hit {
				wFor[i] += w
			} else {
				wAgainst[i] += w
			}
		}
	}
	for i := range m.PWs {
		total := wFor[i] + wAgainst[i]
		res.Match[i] = total > 0 && wFor[i] >= wAgainst[i]
		if total > 0 {
			res.Confidence[i] = (wFor[i] - wAgainst[i]) / total
			if res.Confidence[i] < 0 {
				res.Confidence[i] = -res.Confidence[i]
			}
		}
		if m.a.Trace != nil {
			m.a.Trace.Event("nvcore", "pw_confidence", m.a.TraceTID, map[string]any{
				"pw": m.PWs[i].String(), "match": res.Match[i], "confidence": res.Confidence[i],
			})
		}
	}
	return res, nil
}
