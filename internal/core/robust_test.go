package core

import (
	"errors"
	"testing"

	"repro/internal/lbr"
)

// fakeInterference is a scripted core.Interference: it drops whole LBR
// reads for the first drop calls, then optionally bumps every record's
// cycles on odd-numbered surviving reads.
type fakeInterference struct {
	drop      int  // reads to drop entirely (→ ErrRecordLost)
	alternate bool // bump cycles on every other surviving read
	calls     int
	survived  int
}

func (f *fakeInterference) ProbeStep() {}

func (f *fakeInterference) Records(recs []lbr.Record) []lbr.Record {
	f.calls++
	if f.calls <= f.drop {
		return nil
	}
	f.survived++
	if !f.alternate || f.survived%2 == 0 {
		return recs
	}
	out := make([]lbr.Record, len(recs))
	copy(out, recs)
	for i := range out {
		out[i].Cycles += 1000
	}
	return out
}

// coldMonitor builds a monitor over never-executed victim bytes with a
// clean (interference-free) calibration.
func coldMonitor(t *testing.T) (*Attacker, *Monitor) {
	t.Helper()
	c, _ := victimHarness(t, nopVictim)
	a := newAttacker(t, c)
	m, err := a.NewMonitor([]PW{{Base: 0x40_0160, Len: 16}})
	if err != nil {
		t.Fatal(err)
	}
	return a, m
}

func TestProbeRetriesOnRecordLoss(t *testing.T) {
	a, m := coldMonitor(t)
	fake := &fakeInterference{drop: 2}
	a.Interfere = fake

	if err := m.Prime(); err != nil {
		t.Fatal(err)
	}
	pr, err := m.ProbeRobust()
	if err != nil {
		t.Fatal(err)
	}
	if pr.Degraded {
		t.Fatal("probe degraded despite a recoverable loss")
	}
	if pr.Retries != 2 {
		t.Errorf("Retries = %d, want 2", pr.Retries)
	}
	if pr.Match[0] {
		t.Error("cold PW must not match")
	}
	// Retried measurements are less trustworthy.
	if pr.Confidence[0] <= 0 || pr.Confidence[0] > 1.0/3 {
		t.Errorf("confidence %f not attenuated by 2 retries", pr.Confidence[0])
	}
}

func TestProbeDegradesAfterBudget(t *testing.T) {
	a, m := coldMonitor(t)
	a.MaxProbeRetries = 2
	a.Interfere = &fakeInterference{drop: 1 << 30}

	if err := m.Prime(); err != nil {
		t.Fatal(err)
	}
	pr, err := m.ProbeRobust()
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Degraded {
		t.Fatal("probe must degrade when every read is lost")
	}
	if pr.Retries != 2 {
		t.Errorf("Retries = %d, want budget 2", pr.Retries)
	}
	for i, c := range pr.Confidence {
		if pr.Match[i] || c != 0 {
			t.Errorf("degraded result must be all-false at zero confidence, got match=%v conf=%f", pr.Match[i], c)
		}
	}

	// The strict API surfaces the typed error instead.
	if _, err := m.Probe(); !errors.Is(err, ErrRecordLost) {
		t.Fatalf("Probe error = %v, want ErrRecordLost", err)
	}
}

// TestProbeAveragedTieIsHit pins the even-repeat tie semantics: with
// repeat=2 and exactly one full-confidence vote on each side, the
// decision is "hit" (an even split means the window was plausibly
// touched).
func TestProbeAveragedTieIsHit(t *testing.T) {
	a, m := coldMonitor(t)
	a.Interfere = &fakeInterference{alternate: true}

	res, err := m.ProbeAveragedRobust(2, func() error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 2 || res.Discarded != 0 {
		t.Fatalf("rounds=%d discarded=%d, want 2/0", res.Rounds, res.Discarded)
	}
	if !res.Match[0] {
		t.Error("a tied vote must resolve to hit")
	}
	if res.Confidence[0] != 0 {
		t.Errorf("tied vote confidence = %f, want 0", res.Confidence[0])
	}
}

func TestProbeAveragedDiscardsLostRounds(t *testing.T) {
	a, m := coldMonitor(t)
	a.MaxProbeRetries = 1
	// Round 1 exhausts its 2-attempt probe budget (degraded, discarded);
	// later rounds are clean.
	a.Interfere = &fakeInterference{drop: 2}

	res, err := m.ProbeAveragedRobust(3, func() error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 3 {
		t.Errorf("Rounds = %d, want 3 measured rounds", res.Rounds)
	}
	if res.Discarded != 1 {
		t.Errorf("Discarded = %d, want 1", res.Discarded)
	}
	if res.Match[0] {
		t.Error("cold PW must not match")
	}
}

// TestProbeAveragedMatchesLegacyWhenClean: with no interference the
// weighted vote must agree with plain majority voting on a clean
// deterministic channel.
func TestProbeAveragedMatchesLegacyWhenClean(t *testing.T) {
	c, runVictim := victimHarness(t, nopVictim)
	a := newAttacker(t, c)
	m, err := a.NewMonitor([]PW{
		{Base: 0x40_0100, Len: 16}, // hot
		{Base: 0x40_0160, Len: 16}, // cold
	})
	if err != nil {
		t.Fatal(err)
	}
	match, err := m.ProbeAveraged(3, runVictim)
	if err != nil {
		t.Fatal(err)
	}
	if !match[0] || match[1] {
		t.Errorf("match = %v, want [true false]", match)
	}
}
