package core

import (
	"repro/internal/isa"
)

// FlushSlide is the software BTB-flushing routine the paper borrows
// from BranchScope [18] and uses in every §2 experiment ("flushBTB()"):
// a slide of jumps engineered to allocate one entry in every way of
// every BTB set, evicting whatever was there.
//
// Layout: the BTB's set index comes from PC bits [5, 5+log2(sets)), and
// its (truncated) tag from the bits above. One jump per 32-byte block
// walks every set once; repeating the walk in Ways regions with
// different tag bits fills every way. LRU replacement then guarantees
// all prior entries are gone.
type FlushSlide struct {
	entry uint64
	jumps int
}

// NewFlushSlide lays the slide out in the attacker's scratch space and
// returns it. The slide costs sets*ways executed jumps per flush.
func (a *Attacker) NewFlushSlide() (*FlushSlide, error) {
	cfg := a.Core.BTB.Config()
	blockSize := cfg.BlockSize()
	setStride := blockSize                     // consecutive blocks hit consecutive sets
	regionSize := uint64(cfg.Sets) * setStride // one full walk of all sets
	base := a.allocScratch(uint64(cfg.Ways)*regionSize + 64)
	// Round up so jump placement within blocks is uniform.
	base = (base + blockSize - 1) &^ (blockSize - 1)

	fs := &FlushSlide{entry: base}
	// Each block holds one jmp32 at its start, targeting the next
	// block's start; region boundaries chain seamlessly because regions
	// are laid out back to back. The final jump lands on a hlt.
	total := cfg.Sets * cfg.Ways
	addr := base
	for i := 0; i < total; i++ {
		next := addr + setStride
		rel := int64(next) - int64(addr) - 5
		a.writeInst(addr, isa.Inst{Op: isa.OpJmp32, Imm: rel, Size: 5})
		addr = next
		fs.jumps++
	}
	a.writeInst(addr, isa.Hlt())
	return fs, nil
}

// Jumps returns the number of jumps one flush executes.
func (fs *FlushSlide) Jumps() int { return fs.jumps }

// Flush executes the slide, evicting every BTB entry the architectural
// way — no privileged state needed, exactly as a user-level attacker
// would. (BTB.Flush() is the instant test-harness shortcut; this is the
// deployable version.)
func (fs *FlushSlide) Flush(a *Attacker) error {
	return a.runSnippet(fs.entry)
}
