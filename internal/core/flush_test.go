package core

import (
	"testing"

	"repro/internal/isa"
)

// TestFlushSlideEvictsEverything: the software flush slide (no
// privileged BTB access) evicts arbitrary victim entries from every set.
func TestFlushSlideEvictsEverything(t *testing.T) {
	c, _ := victimHarness(t, nopVictim)
	a := newAttacker(t, c)
	fs, err := a.NewFlushSlide()
	if err != nil {
		t.Fatal(err)
	}
	cfg := c.BTB.Config()
	if fs.Jumps() != cfg.Sets*cfg.Ways {
		t.Errorf("Jumps = %d, want %d", fs.Jumps(), cfg.Sets*cfg.Ways)
	}

	// Plant victim entries across many sets.
	var planted []uint64
	for i := uint64(0); i < 64; i++ {
		pc := 0x40_0000 + i*64 + 17
		c.BTB.Update(pc, 0x1000, isa.KindJump)
		planted = append(planted, pc)
	}
	if err := fs.Flush(a); err != nil {
		t.Fatal(err)
	}
	for _, pc := range planted {
		if _, ok := c.BTB.EntryAt(pc); ok {
			t.Errorf("entry at %#x survived the flush slide", pc)
		}
	}
}

// TestFlushSlideEnablesCleanMeasurement: after a software flush, a
// monitor probe behaves exactly as after the instant harness flush.
func TestFlushSlideEnablesCleanMeasurement(t *testing.T) {
	c, runVictim := victimHarness(t, nopVictim)
	a := newAttacker(t, c)
	fs, err := a.NewFlushSlide()
	if err != nil {
		t.Fatal(err)
	}
	m, err := a.NewMonitor([]PW{{Base: 0x40_0100, Len: 16}})
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Flush(a); err != nil {
		t.Fatal(err)
	}
	if err := m.Prime(); err != nil {
		t.Fatal(err)
	}
	if err := runVictim(); err != nil {
		t.Fatal(err)
	}
	match, err := m.Probe()
	if err != nil {
		t.Fatal(err)
	}
	if !match[0] {
		t.Error("monitor must still detect the victim after a software flush")
	}
}
