// Package core implements NightVision, the paper's contribution: a BTB
// Prime+Probe framework that extracts the byte-granular PCs of victim
// dynamic instructions — including non-control-transfer instructions —
// from the BTB side effects described in §2.
//
// The package offers three layers:
//
//   - Attacker/Monitor: the NV-Core primitive (§4.1). A Monitor plants
//     BTB entries whose keys alias chosen victim addresses (4/8 GiB
//     away, exploiting truncated tags) and detects, through its own
//     probe timing, whether the victim's execution touched those
//     addresses.
//   - UserAttack: NV-U (§4.2), interleaving probes with victim
//     scheduling fragments to leak control-flow decisions.
//   - SupervisorAttack: NV-S (§4.3, §6.3), single-stepping an SGX
//     enclave and binary-searching each dynamic instruction's PC via
//     the BTB's range-query semantics, with page numbers recovered
//     through the controlled channel.
package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/lbr"
	"repro/internal/obs"
)

// Interference is the fault-injection surface of the attack pipeline,
// implemented by internal/interfere.Injector. A nil Interference (the
// default) makes every run bit-identical to the pre-interference code
// path.
type Interference interface {
	// ProbeStep is consulted once per retired instruction of attacker
	// prime/probe code; the implementation may perturb the core (for
	// example deliver a timer interrupt) before the next step.
	ProbeStep()
	// Records filters and perturbs the LBR records a probe reads:
	// dropped records model LBR loss/flush, mutated cycle counts model
	// measurement outliers.
	Records([]lbr.Record) []lbr.Record
}

// Attacker owns the attacker-controlled execution context on a core: a
// virtual address region whose low address bits can be made to collide
// with any victim address, plus the machinery to run short snippets and
// read the measurement channel.
type Attacker struct {
	Core *cpu.Core

	// aliasBits is OR-ed over the victim address's low bits to form the
	// attacker-space address: a high region the victim does not occupy.
	// Because the BTB ignores bits at and above Config.TagTopBit, the
	// BTB cannot tell the two apart.
	aliasBits uint64

	// scratch is where sentinel jumps and other support code live.
	scratch     uint64
	scratchUsed uint64

	// monitorCache reuses monitors (and their calibration) keyed by
	// their PW sets; see CachedMonitor.
	monitorCache map[string]*Monitor

	// Scratch reused by writeInst and CachedMonitor so laying out or
	// re-keying a monitor does not allocate per call.
	encBuf []byte
	keyBuf []byte

	// Interfere, when non-nil, injects faults into probe execution and
	// LBR reads. Set it before creating monitors so calibration runs
	// under the same interference the probes will see.
	Interfere Interference

	// MaxProbeRetries bounds the retry-with-discard loop a probe runs
	// when interference loses LBR records. 0 means DefaultProbeRetries.
	MaxProbeRetries int

	// Obs holds optional pipeline counters; the zero value (all-nil) is
	// a no-op. Like the simulator's counters these are write-only from
	// attack code, so attaching them cannot change extraction results.
	Obs AttackObs
	// Trace, when non-nil, records the prime/victim/probe timeline.
	// TraceTID lanes the events (callers use their task index so
	// parallel pipelines render side by side in chrome://tracing).
	Trace    *obs.Trace
	TraceTID int64
}

// AttackObs counts attack-pipeline events: probe rounds, the
// retry-with-discard machinery, and prime executions.
type AttackObs struct {
	Primes        *obs.Counter // monitor chain prime executions
	ProbeRounds   *obs.Counter // probes that produced a measurement
	ProbeRetries  *obs.Counter // record-loss rounds discarded and retried
	ProbeDegraded *obs.Counter // probes that exhausted their retry budget
	VoteRounds    *obs.Counter // confidence-weighted voting rounds counted
	VoteDiscards  *obs.Counter // wholly-degraded voting rounds discarded
}

// DefaultProbeRetries is the probe retry budget used when
// MaxProbeRetries is zero.
const DefaultProbeRetries = 3

// probeRetries resolves the effective retry budget.
func (a *Attacker) probeRetries() int {
	if a.MaxProbeRetries > 0 {
		return a.MaxProbeRetries
	}
	return DefaultProbeRetries
}

// NewAttacker prepares an attacker on core. aliasBits must be non-zero
// only at or above the BTB's TagTopBit (checked), and is typically
// 1 << TagTopBit: "4 GiB above" on SkyLake geometry.
func NewAttacker(core *cpu.Core, aliasBits uint64) (*Attacker, error) {
	top := core.BTB.Config().TagTopBit
	if top >= 64 {
		return nil, fmt.Errorf("core: BTB uses full tags — no aliasing distance exists and the attack is impossible")
	}
	if aliasBits&((uint64(1)<<top)-1) != 0 {
		return nil, fmt.Errorf("core: aliasBits %#x has bits below TagTopBit %d", aliasBits, top)
	}
	if aliasBits == 0 {
		return nil, fmt.Errorf("core: aliasBits must be non-zero (attacker must not overlay the victim)")
	}
	return &Attacker{
		Core:         core,
		aliasBits:    aliasBits,
		scratch:      aliasBits | 0x7FFF_0000, // high in the alias region
		monitorCache: make(map[string]*Monitor),
	}, nil
}

// Alias maps a victim-space address to the attacker-space address with
// identical BTB-visible bits.
func (a *Attacker) Alias(victimAddr uint64) uint64 {
	top := a.Core.BTB.Config().TagTopBit
	low := victimAddr
	if top < 64 {
		low &= (uint64(1) << top) - 1
	}
	return low | a.aliasBits
}

// allocScratch reserves n bytes of scratch space.
func (a *Attacker) allocScratch(n uint64) uint64 {
	addr := a.scratch + a.scratchUsed
	a.scratchUsed += n
	return addr
}

// runSnippet executes attacker code at entry on the core until it halts,
// preserving whatever context was running. The snippet's branches are
// recorded by the LBR (the attacker measures itself, never the victim
// directly).
func (a *Attacker) runSnippet(entry uint64) error {
	var saved cpu.ArchState
	st := cpu.ArchState{PC: entry}
	a.Core.ContextSwitch(&saved, &st)
	var info cpu.StepInfo
	for {
		err := a.Core.StepInto(&info)
		if err == cpu.ErrHalted {
			break
		}
		if err != nil {
			a.Core.ContextSwitch(nil, &saved)
			return fmt.Errorf("core: attacker snippet at %#x: %w", entry, err)
		}
		if a.Interfere != nil {
			a.Interfere.ProbeStep()
		}
	}
	a.Core.ContextSwitch(nil, &saved)
	return nil
}

// writeInst encodes in at addr as executable attacker code.
// LoadProgram copies the bytes, so the encode buffer is safely reused.
func (a *Attacker) writeInst(addr uint64, in isa.Inst) {
	a.encBuf = in.Encode(a.encBuf[:0])
	a.Core.Mem.LoadProgram(addr, a.encBuf)
}

// CachedMonitor returns a monitor for the given PW set, reusing an
// earlier one when available. Reuse re-writes the snippet bytes (another
// monitor may have overwritten shared blocks) but keeps the calibration,
// which depends only on the layout.
func (a *Attacker) CachedMonitor(pws []PW) (*Monitor, error) {
	key := a.keyBuf[:0]
	for _, p := range pws {
		key = binary.LittleEndian.AppendUint64(key, p.Base)
		key = binary.LittleEndian.AppendUint64(key, uint64(p.Len))
	}
	a.keyBuf = key
	// map[string(bytes)] lookups do not allocate; only a cache miss
	// pays for the permanent string key.
	if m, ok := a.monitorCache[string(key)]; ok {
		m.layout()
		return m, nil
	}
	m, err := a.NewMonitor(pws)
	if err != nil {
		return nil, err
	}
	a.monitorCache[string(key)] = m
	return m, nil
}
