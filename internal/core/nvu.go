package core

import (
	"fmt"

	"repro/internal/osmodel"
)

// UserAttack is NV-U (§4.2): a user-level attacker co-located with the
// victim process on one core. The victim's execution is divided into
// scheduling fragments (here, as in the paper's proof of concept, the
// victim yields after each protected region); NV-Core runs between
// fragments.
type UserAttack struct {
	OS     *osmodel.OS
	Victim *osmodel.Process
	// FragmentBudget caps the steps per victim fragment (a stuck victim
	// otherwise hangs the attack). Default 1e6.
	FragmentBudget uint64
}

// FragmentResult is the probe outcome of one victim scheduling
// fragment.
type FragmentResult struct {
	Match      []bool
	Confidence []float64
	// Retries counts probe rounds discarded to interference; Degraded
	// marks a fragment whose probe never produced a measurement (Match
	// is all-false at zero confidence — "unobserved", not "quiet").
	Retries  int
	Degraded bool
}

// Run interleaves victim fragments with probes of m, returning one
// match vector per fragment (the bool[][] of Figure 6). It stops when
// the victim halts or maxFragments is reached. A fragment whose probe
// exhausts its retry budget fails the run; RunRobust degrades instead.
func (u *UserAttack) Run(m *Monitor, maxFragments int) ([][]bool, error) {
	frags, err := u.RunRobust(m, maxFragments)
	out := make([][]bool, 0, len(frags))
	for i, f := range frags {
		if f.Degraded {
			if err == nil {
				err = fmt.Errorf("core: victim fragment %d: %w", i, ErrRecordLost)
			}
			break
		}
		out = append(out, f.Match)
	}
	return out, err
}

// RunRobust is Run with graceful degradation: fragments whose probes
// lose all their measurements to interference are reported Degraded
// (all-false match at zero confidence) instead of aborting the attack,
// and every fragment carries per-PW confidence scores.
func (u *UserAttack) RunRobust(m *Monitor, maxFragments int) ([]FragmentResult, error) {
	budget := u.FragmentBudget
	if budget == 0 {
		budget = 1_000_000
	}
	sp := m.a.Trace.Begin("nvcore", "prime", m.a.TraceTID, nil)
	err := m.Prime()
	sp.End()
	if err != nil {
		return nil, err
	}
	var out []FragmentResult
	for len(out) < maxFragments && !u.Victim.Done {
		var fragArgs map[string]any
		if m.a.Trace != nil {
			fragArgs = map[string]any{"fragment": len(out)}
		}
		frag := m.a.Trace.Begin("nvu", "fragment", m.a.TraceTID, fragArgs)
		sp := m.a.Trace.Begin("nvcore", "victim", m.a.TraceTID, nil)
		u.OS.Switch(u.Victim)
		reason, err := u.OS.RunUntilStop(budget)
		sp.End()
		if err != nil {
			return out, fmt.Errorf("core: victim fragment %d: %w", len(out), err)
		}
		if reason == osmodel.StopSteps {
			return out, fmt.Errorf("core: victim fragment %d exceeded budget", len(out))
		}
		sp = m.a.Trace.Begin("nvcore", "probe", m.a.TraceTID, nil)
		pr, err := m.ProbeRobust()
		sp.End()
		if err != nil {
			return out, err
		}
		out = append(out, FragmentResult{
			Match:      pr.Match,
			Confidence: pr.Confidence,
			Retries:    pr.Retries,
			Degraded:   pr.Degraded,
		})
		if m.a.Trace != nil {
			frag.EndWith(map[string]any{"retries": pr.Retries, "degraded": pr.Degraded})
			for i, hit := range pr.Match {
				m.a.Trace.Event("nvcore", "pw_confidence", m.a.TraceTID, map[string]any{
					"pw": m.PWs[i].String(), "match": hit, "confidence": pr.Confidence[i],
				})
			}
		}
		if pr.Degraded {
			// The degraded probe's attempts re-primed the chain, but make
			// sure the next fragment starts from a full prime.
			if err := m.Prime(); err != nil {
				return out, err
			}
		}
		if reason == osmodel.StopHalt {
			break
		}
	}
	return out, nil
}

// RunSliced is NV-U without victim cooperation: instead of waiting for
// the victim to yield, the attacker's preemptive-scheduling pressure
// bounds each victim time slice to roughly sliceSteps instructions
// (§4.2: "on-order hundreds of cycles"). The per-fragment match vectors
// lose the per-iteration alignment that the yield-based variant enjoys;
// §5.2 describes how monitoring both arms recovers execution progress.
func (u *UserAttack) RunSliced(m *Monitor, sliceSteps uint64, maxFragments int) ([][]bool, error) {
	if err := m.Prime(); err != nil {
		return nil, err
	}
	var out [][]bool
	for len(out) < maxFragments && !u.Victim.Done {
		u.OS.Switch(u.Victim)
		reason, err := u.OS.RunSlice(sliceSteps)
		if err != nil {
			return out, fmt.Errorf("core: victim slice %d: %w", len(out), err)
		}
		match, err := m.Probe()
		if err != nil {
			return out, err
		}
		out = append(out, match)
		if reason == osmodel.StopHalt {
			break
		}
	}
	return out, nil
}
