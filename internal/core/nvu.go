package core

import (
	"fmt"

	"repro/internal/osmodel"
)

// UserAttack is NV-U (§4.2): a user-level attacker co-located with the
// victim process on one core. The victim's execution is divided into
// scheduling fragments (here, as in the paper's proof of concept, the
// victim yields after each protected region); NV-Core runs between
// fragments.
type UserAttack struct {
	OS     *osmodel.OS
	Victim *osmodel.Process
	// FragmentBudget caps the steps per victim fragment (a stuck victim
	// otherwise hangs the attack). Default 1e6.
	FragmentBudget uint64
}

// Run interleaves victim fragments with probes of m, returning one
// match vector per fragment (the bool[][] of Figure 6). It stops when
// the victim halts or maxFragments is reached.
func (u *UserAttack) Run(m *Monitor, maxFragments int) ([][]bool, error) {
	budget := u.FragmentBudget
	if budget == 0 {
		budget = 1_000_000
	}
	if err := m.Prime(); err != nil {
		return nil, err
	}
	var out [][]bool
	for len(out) < maxFragments && !u.Victim.Done {
		u.OS.Switch(u.Victim)
		reason, err := u.OS.RunUntilStop(budget)
		if err != nil {
			return out, fmt.Errorf("core: victim fragment %d: %w", len(out), err)
		}
		if reason == osmodel.StopSteps {
			return out, fmt.Errorf("core: victim fragment %d exceeded budget", len(out))
		}
		match, err := m.Probe()
		if err != nil {
			return out, err
		}
		out = append(out, match)
		if reason == osmodel.StopHalt {
			break
		}
	}
	return out, nil
}

// RunSliced is NV-U without victim cooperation: instead of waiting for
// the victim to yield, the attacker's preemptive-scheduling pressure
// bounds each victim time slice to roughly sliceSteps instructions
// (§4.2: "on-order hundreds of cycles"). The per-fragment match vectors
// lose the per-iteration alignment that the yield-based variant enjoys;
// §5.2 describes how monitoring both arms recovers execution progress.
func (u *UserAttack) RunSliced(m *Monitor, sliceSteps uint64, maxFragments int) ([][]bool, error) {
	if err := m.Prime(); err != nil {
		return nil, err
	}
	var out [][]bool
	for len(out) < maxFragments && !u.Victim.Done {
		u.OS.Switch(u.Victim)
		reason, err := u.OS.RunSlice(sliceSteps)
		if err != nil {
			return out, fmt.Errorf("core: victim slice %d: %w", len(out), err)
		}
		match, err := m.Probe()
		if err != nil {
			return out, err
		}
		out = append(out, match)
		if reason == osmodel.StopHalt {
			break
		}
	}
	return out, nil
}
