package core

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/osmodel"
)

// uc1Victim alternates between two code regions based on the bits of a
// secret in r1, yielding after each decision — the shape of the paper's
// instrumented §7.2 victims.
const uc1Victim = `
	.org 0x400000
start:
	movi r2, 8          ; 8 secret bits
loop:
	movi r3, 1
	and r3, r1
	cmpi r3, 0
	jz  takeB
	call armA
	jmp  next
takeB:
	call armB
next:
	syscall 1           ; sched_yield
	shr r1, 1
	subi r2, 1
	jnz loop
	hlt

	.org 0x400100
armA:
	.space 20, 0x01
	ret
	.org 0x400200
armB:
	.space 20, 0x01
	ret
`

func nvuSetup(t *testing.T, secret uint64) (*UserAttack, *Monitor) {
	t.Helper()
	p, err := asm.Assemble(uc1Victim)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	p.LoadInto(m)
	c := cpu.New(cpu.Config{}, m)
	os := osmodel.New(c)
	proc := os.Spawn("victim", p.MustLabel("start"), 0x7e_0000, 0x1000)
	proc.State.Regs[isa.R1] = secret
	a, err := NewAttacker(c, 1<<32)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := a.NewMonitor([]PW{
		{Base: 0x40_0100, Len: 16}, // arm A
		{Base: 0x40_0200, Len: 16}, // arm B
	})
	if err != nil {
		t.Fatal(err)
	}
	return &UserAttack{OS: os, Victim: proc}, mon
}

// TestNVURecoversSecretBits: the yield-based NV-U loop recovers the
// victim's secret bit by bit.
func TestNVURecoversSecretBits(t *testing.T) {
	const secret = 0b1011_0010
	ua, mon := nvuSetup(t, secret)
	matches, err := ua.Run(mon, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) < 8 {
		t.Fatalf("got %d fragments, want >= 8", len(matches))
	}
	var recovered uint64
	for i := 0; i < 8; i++ {
		aHit, bHit := matches[i][0], matches[i][1]
		if aHit && !bHit {
			recovered |= 1 << i
		} else if !bHit {
			t.Errorf("fragment %d: a=%v b=%v — no arm observed", i, aHit, bHit)
		}
	}
	if recovered != secret {
		t.Errorf("recovered %#b, want %#b", recovered, secret)
	}
}

// TestNVUSliced: the same secret is recoverable without any victim
// cooperation, using timer slices instead of yields. Alignment is
// coarser (a slice may span parts of two iterations), so the assertion
// is on the union of observed arms, not per-bit alignment.
func TestNVUSliced(t *testing.T) {
	for _, secret := range []uint64{0x00, 0xFF, 0b1010_1010} {
		ua, mon := nvuSetup(t, secret)
		matches, err := ua.RunSliced(mon, 12, 64)
		if err != nil {
			t.Fatal(err)
		}
		hitsA, hitsB := 0, 0
		for _, m := range matches {
			if m[0] {
				hitsA++
			}
			if m[1] {
				hitsB++
			}
		}
		// Wrong-path speculation may brush the untaken arm once (the
		// first unpredicted branch); the dominant arm is unambiguous.
		switch secret {
		case 0x00:
			if hitsB <= hitsA {
				t.Errorf("secret 0x00: A=%d B=%d, B must dominate", hitsA, hitsB)
			}
		case 0xFF:
			if hitsA <= hitsB {
				t.Errorf("secret 0xFF: A=%d B=%d, A must dominate", hitsA, hitsB)
			}
		default:
			if hitsA == 0 || hitsB == 0 {
				t.Errorf("mixed secret: A=%d B=%d, both arms must appear", hitsA, hitsB)
			}
		}
	}
}

// TestNVUFragmentBudget: a victim that never yields trips the budget.
func TestNVUFragmentBudget(t *testing.T) {
	p := asm.MustAssemble(".org 0x400000\nstart: loop: jmp loop")
	m := mem.New()
	p.LoadInto(m)
	c := cpu.New(cpu.Config{}, m)
	os := osmodel.New(c)
	proc := os.Spawn("victim", p.MustLabel("start"), 0x7e_0000, 0x1000)
	a, err := NewAttacker(c, 1<<32)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := a.NewMonitor([]PW{{Base: 0x40_1000, Len: 16}})
	if err != nil {
		t.Fatal(err)
	}
	ua := &UserAttack{OS: os, Victim: proc, FragmentBudget: 1000}
	if _, err := ua.Run(mon, 3); err == nil {
		t.Error("non-yielding victim should exhaust the fragment budget")
	}
}
