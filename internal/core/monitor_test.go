package core

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
)

// victimHarness loads a victim program and returns the core plus a
// runner that executes it from "start" to halt.
func victimHarness(t *testing.T, src string) (*cpu.Core, func() error) {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	p.LoadInto(m)
	m.Map(0x7f_0000, 0x1000, mem.PermRW)
	c := cpu.New(cpu.Config{}, m)
	entry := p.MustLabel("start")
	run := func() error {
		var saved cpu.ArchState
		st := cpu.ArchState{PC: entry}
		st.Regs[isa.SP] = 0x7f_1000
		c.ContextSwitch(&saved, &st)
		_, err := c.Run(1_000_000)
		c.ContextSwitch(nil, &saved)
		return err
	}
	return c, run
}

const nopVictim = `
	.org 0x400000
start:
	call body
	hlt
	.org 0x400100
body:
	.space 20, 0x01   ; 20 nops
	ret
`

func newAttacker(t *testing.T, c *cpu.Core) *Attacker {
	t.Helper()
	a, err := NewAttacker(c, 1<<32)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAttackerAlias(t *testing.T) {
	c, _ := victimHarness(t, nopVictim)
	a := newAttacker(t, c)
	if got := a.Alias(0x40_0123); got != (1<<32)|0x40_0123 {
		t.Errorf("Alias = %#x", got)
	}
	// Aliasing must be idempotent on already-aliased addresses.
	if got := a.Alias(a.Alias(0x40_0123)); got != (1<<32)|0x40_0123 {
		t.Errorf("double Alias = %#x", got)
	}
}

func TestNewAttackerValidation(t *testing.T) {
	c, _ := victimHarness(t, nopVictim)
	if _, err := NewAttacker(c, 0); err == nil {
		t.Error("zero aliasBits must be rejected")
	}
	if _, err := NewAttacker(c, 1<<20); err == nil {
		t.Error("aliasBits below TagTopBit must be rejected")
	}
}

// TestMonitorDetectsNopExecution is NV-Core end to end: a PW covering
// victim nops reports a match after the victim runs, and a PW over
// never-executed bytes does not.
func TestMonitorDetectsNopExecution(t *testing.T) {
	c, runVictim := victimHarness(t, nopVictim)
	a := newAttacker(t, c)

	hot, err := a.NewMonitor([]PW{{Base: 0x40_0100, Len: 16}})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := a.NewMonitor([]PW{{Base: 0x40_0160, Len: 16}})
	if err != nil {
		t.Fatal(err)
	}

	if err := hot.Prime(); err != nil {
		t.Fatal(err)
	}
	if err := cold.Prime(); err != nil {
		t.Fatal(err)
	}
	if err := runVictim(); err != nil {
		t.Fatal(err)
	}
	hm, err := hot.Probe()
	if err != nil {
		t.Fatal(err)
	}
	cm, err := cold.Probe()
	if err != nil {
		t.Fatal(err)
	}
	if !hm[0] {
		t.Error("PW over executed nops must match")
	}
	if cm[0] {
		t.Error("PW over cold bytes must not match")
	}
}

// TestMonitorNoFalsePositiveWithoutVictim: probe right after prime on a
// quiet system must report no matches.
func TestMonitorNoFalsePositiveWithoutVictim(t *testing.T) {
	c, _ := victimHarness(t, nopVictim)
	a := newAttacker(t, c)
	m, err := a.NewMonitor([]PW{
		{Base: 0x40_0100, Len: 16},
		{Base: 0x40_0110, Len: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Prime(); err != nil {
		t.Fatal(err)
	}
	match, err := m.Probe()
	if err != nil {
		t.Fatal(err)
	}
	for i, hit := range match {
		if hit {
			t.Errorf("PW %d matched without any victim execution", i)
		}
	}
}

// TestMonitorDetectsVictimBranch covers Figure 5 cases (1)/(2): the
// victim's own taken branch inside the monitored PW leaves an aliased
// BTB entry that the probe false-hits.
func TestMonitorDetectsVictimBranch(t *testing.T) {
	c, runVictim := victimHarness(t, `
		.org 0x400000
	start:
		call body
		hlt
		.org 0x400100
	body:
		jmp8 out          ; taken branch at [0x400100, 0x400101]
		.space 10, 0x01
	out:
		ret
	`)
	a := newAttacker(t, c)
	m, err := a.NewMonitor([]PW{{Base: 0x40_0100, Len: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Prime(); err != nil {
		t.Fatal(err)
	}
	if err := runVictim(); err != nil {
		t.Fatal(err)
	}
	match, err := m.Probe()
	if err != nil {
		t.Fatal(err)
	}
	if !match[0] {
		t.Error("PW containing the victim's taken branch must match")
	}
}

// TestChainedMonitor mirrors Figure 7: multiple contiguous PWs probed in
// one chain, each reporting independently.
func TestChainedMonitor(t *testing.T) {
	c, runVictim := victimHarness(t, nopVictim)
	a := newAttacker(t, c)
	m, err := a.NewMonitor([]PW{
		{Base: 0x40_0100, Len: 10}, // overlaps the nops
		{Base: 0x40_0140, Len: 10}, // past the ret: cold
		{Base: 0x40_0180, Len: 10}, // cold
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Prime(); err != nil {
		t.Fatal(err)
	}
	if err := runVictim(); err != nil {
		t.Fatal(err)
	}
	match, err := m.Probe()
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, false, false}
	for i := range want {
		if match[i] != want[i] {
			t.Errorf("match[%d] = %v, want %v", i, match[i], want[i])
		}
	}
}

// TestTinyPWByteGranularity: 2-byte PWs resolve the victim's execution
// range at byte granularity (§5.2: "byte-granularity observation").
func TestTinyPWByteGranularity(t *testing.T) {
	c, runVictim := victimHarness(t, nopVictim)
	a := newAttacker(t, c)
	// Victim executes [0x400100, 0x400114] (20 nops + 1-byte ret).
	cases := []struct {
		pw   PW
		want bool
	}{
		{PW{Base: 0x40_00fd, Len: 2}, false}, // wholly before
		{PW{Base: 0x40_00ff, Len: 2}, true},  // overlaps first byte
		{PW{Base: 0x40_0100, Len: 2}, true},  // at the start
		{PW{Base: 0x40_0110, Len: 2}, true},  // inside
	}
	for _, tc := range cases {
		m, err := a.NewMonitor([]PW{tc.pw})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Prime(); err != nil {
			t.Fatal(err)
		}
		if err := runVictim(); err != nil {
			t.Fatal(err)
		}
		match, err := m.Probe()
		if err != nil {
			t.Fatal(err)
		}
		if match[0] != tc.want {
			t.Errorf("%v: match = %v, want %v", tc.pw, match[0], tc.want)
		}
	}
}

func TestMonitorValidation(t *testing.T) {
	c, _ := victimHarness(t, nopVictim)
	a := newAttacker(t, c)
	cases := [][]PW{
		nil,
		{{Base: 0x40_0100, Len: 1}}, // too short
		{{Base: 0x40_0100, Len: 2}, {Base: 0x40_0140, Len: 8}}, // tiny not alone
		{{Base: 0x40_0100, Len: 8}, {Base: 0x40_0104, Len: 8}}, // overlap
		{{Base: 0x40_011e, Len: 8}},                            // spans block boundary
	}
	for i, pws := range cases {
		if _, err := a.NewMonitor(pws); err == nil {
			t.Errorf("case %d: expected error for %v", i, pws)
		}
	}
}

// TestIBRSIBPBDoNotBlockNVCore is the §4.1 result: with IBRS enabled and
// IBPB issued between victim and probe, the attack still observes the
// victim.
func TestIBRSIBPBDoNotBlockNVCore(t *testing.T) {
	c, runVictim := victimHarness(t, nopVictim)
	c.BTB.SetIBRS(true)
	a := newAttacker(t, c)
	m, err := a.NewMonitor([]PW{{Base: 0x40_0100, Len: 16}})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Prime(); err != nil {
		t.Fatal(err)
	}
	if err := runVictim(); err != nil {
		t.Fatal(err)
	}
	c.BTB.IBPB() // the OS-level mitigation fires before the probe
	match, err := m.Probe()
	if err != nil {
		t.Fatal(err)
	}
	if !match[0] {
		t.Error("IBRS+IBPB must not stop NV-Core (they only cover indirect branches)")
	}
}

// TestBTBFlushDefenseBlocksNVCore is the corresponding ablation: a full
// BTB flush (the §8.2 hardening no real processor implements) removes
// the signal entirely.
func TestBTBFlushDefenseBlocksNVCore(t *testing.T) {
	c, runVictim := victimHarness(t, nopVictim)
	a := newAttacker(t, c)
	m, err := a.NewMonitor([]PW{{Base: 0x40_0100, Len: 16}})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Prime(); err != nil {
		t.Fatal(err)
	}
	if err := runVictim(); err != nil {
		t.Fatal(err)
	}
	c.BTB.Flush() // hypothetical hardened context switch
	match, err := m.Probe()
	if err != nil {
		t.Fatal(err)
	}
	// After a full flush the probe sees *everything* mispredicted —
	// baseline and signal become indistinguishable. The defense works
	// if the match is reported (all entries gone = all "signals") for
	// cold PWs too, destroying the attacker's ability to discriminate.
	cold, err := a.NewMonitor([]PW{{Base: 0x40_0160, Len: 16}})
	if err != nil {
		t.Fatal(err)
	}
	if err := cold.Prime(); err != nil {
		t.Fatal(err)
	}
	c.BTB.Flush()
	coldMatch, err := cold.Probe()
	if err != nil {
		t.Fatal(err)
	}
	if match[0] != coldMatch[0] {
		t.Error("with BTB flushing, hot and cold PWs must be indistinguishable")
	}
}

// TestFullTagAblation: with full BTB tags (no truncation) the attacker
// cannot alias the victim at all and NewAttacker cannot even pick alias
// bits — the geometry kills the attack by construction.
func TestFullTagAblation(t *testing.T) {
	p := asm.MustAssemble(nopVictim)
	m := mem.New()
	p.LoadInto(m)
	cfg := cpu.DefaultConfig()
	cfg.BTB.TagTopBit = 64
	c := cpu.New(cfg, m)
	if _, err := NewAttacker(c, 1<<32); err == nil {
		t.Error("full-tag geometry must reject alias bits (no aliasing exists)")
	}
}

func TestPWContainsAndString(t *testing.T) {
	p := PW{Base: 0x100, Len: 8}
	if !p.Contains(0x100) || !p.Contains(0x107) || p.Contains(0x108) || p.Contains(0xff) {
		t.Error("Contains boundaries wrong")
	}
	if p.String() != "PW[0x100,0x107]" {
		t.Errorf("String = %q", p.String())
	}
}

// TestProbeAveraged: majority voting over repeated prime/victim/probe
// rounds matches the single-shot result on a noiseless channel and
// survives a noisy one.
func TestProbeAveraged(t *testing.T) {
	c, runVictim := victimHarness(t, nopVictim)
	c.LBR.SetNoise(4, 99)
	a := newAttacker(t, c)
	hot, err := a.NewMonitor([]PW{{Base: 0x40_0100, Len: 16}})
	if err != nil {
		t.Fatal(err)
	}
	match, err := hot.ProbeAveraged(9, runVictim)
	if err != nil {
		t.Fatal(err)
	}
	if !match[0] {
		t.Error("averaged probe should detect the victim under noise")
	}
	cold, err := a.NewMonitor([]PW{{Base: 0x40_0160, Len: 16}})
	if err != nil {
		t.Fatal(err)
	}
	match, err = cold.ProbeAveraged(9, runVictim)
	if err != nil {
		t.Fatal(err)
	}
	if match[0] {
		t.Error("averaged probe should stay quiet on cold bytes under noise")
	}
}
