package sgx

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
)

const (
	encBase   = 0x60_0000
	stackAddr = 0x70_0000
	stackSize = 0x1000
)

func makeEnclave(t *testing.T, src string) (*cpu.Core, *Enclave, *asm.Program) {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	core := cpu.New(cpu.Config{}, mem.New())
	e, err := Create(core, p, Config{
		Entry: p.MustLabel("entry"),
		Stack: Region{Addr: stackAddr, Size: stackSize},
	})
	if err != nil {
		t.Fatal(err)
	}
	return core, e, p
}

const countdownSrc = `
	.org 0x600000
entry:
	movi r1, 4
loop:
	subi r1, 1
	jnz loop
	hlt
`

func TestEnclaveRun(t *testing.T) {
	core, e, _ := makeEnclave(t, countdownSrc)
	if err := e.Run(10_000); err != nil {
		t.Fatal(err)
	}
	if !e.Done() {
		t.Error("enclave should be done")
	}
	// The enclave's registers are not leaked to the host context.
	if core.Reg(isa.R1) == 0 && core.PC() != 0 {
		// host state restored: r1 belongs to the host (zero)
	}
	if e.state.Regs[isa.R1] != 0 {
		t.Errorf("enclave r1 = %d, want 0", e.state.Regs[isa.R1])
	}
}

func TestEnclaveSingleStepAndReset(t *testing.T) {
	_, e, _ := makeEnclave(t, countdownSrc)
	steps := uint64(0)
	for {
		done, err := e.StepOne()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
		steps++
	}
	if steps != e.Steps() {
		t.Errorf("steps %d != e.Steps() %d", steps, e.Steps())
	}
	// movi, (subi+jnz fused) ×4, hlt → 1 + 4 + 1 attempts; the final
	// StepOne that hits hlt reports done. Count must be deterministic.
	first := steps
	e.Reset()
	steps = 0
	for {
		done, err := e.StepOne()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
		steps++
	}
	if steps != first {
		t.Errorf("replay steps = %d, want %d (deterministic reset)", steps, first)
	}
}

func TestCodeConfidentiality(t *testing.T) {
	_, e, _ := makeEnclave(t, countdownSrc)
	if _, err := e.ReadCode(encBase, 16); err != ErrCodeConfidential {
		t.Errorf("ReadCode err = %v, want ErrCodeConfidential", err)
	}
}

func TestLBRSuppressedForEnclaveCode(t *testing.T) {
	core, e, _ := makeEnclave(t, countdownSrc)
	if err := e.Run(10_000); err != nil {
		t.Fatal(err)
	}
	for _, r := range core.LBR.Records() {
		if e.InCode(r.From) {
			t.Errorf("LBR recorded enclave branch at %#x", r.From)
		}
	}
}

func TestSetInitRegAndDataReset(t *testing.T) {
	p := asm.MustAssemble(`
		.org 0x600000
	entry:
		st [r2+0], r1    ; write argument to data page
		ld r3, [r2+0]
		hlt
	`)
	core := cpu.New(cpu.Config{}, mem.New())
	e, err := Create(core, p, Config{
		Entry: 0x60_0000,
		Stack: Region{Addr: stackAddr, Size: stackSize},
		Data:  Region{Addr: 0x80_0000, Size: 0x1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	e.SetInitReg(isa.R1, 42)
	e.SetInitReg(isa.R2, 0x80_0000)
	if err := e.Run(100); err != nil {
		t.Fatal(err)
	}
	if e.state.Regs[isa.R3] != 42 {
		t.Errorf("r3 = %d, want 42", e.state.Regs[isa.R3])
	}
	v, _ := core.Mem.Read64(0x80_0000)
	if v != 42 {
		t.Fatalf("data = %d", v)
	}
	e.Reset()
	v, _ = core.Mem.Read64(0x80_0000)
	if v != 0 {
		t.Errorf("data after reset = %d, want 0", v)
	}
}

func TestTrackerCodePages(t *testing.T) {
	// Code spanning two pages: entry page calls into the second page.
	p := asm.MustAssemble(`
		.org 0x600000
	entry:
		call far
		hlt
		.org 0x601000
	far:
		nop
		ret
	`)
	core := cpu.New(cpu.Config{}, mem.New())
	e, err := Create(core, p, Config{
		Entry: 0x60_0000,
		Stack: Region{Addr: stackAddr, Size: stackSize},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracker(e)
	defer tr.Close()
	tr.TrackCode(true)
	if err := e.Run(10_000); err != nil {
		t.Fatal(err)
	}
	pages := tr.CodePages()
	want := []uint64{0x600, 0x601, 0x600}
	if len(pages) != len(want) {
		t.Fatalf("pages = %#x, want %#x", pages, want)
	}
	for i := range want {
		if pages[i] != want[i] {
			t.Errorf("pages[%d] = %#x, want %#x", i, pages[i], want[i])
		}
	}
}

func TestTrackerDataTouched(t *testing.T) {
	p := asm.MustAssemble(`
		.org 0x600000
	entry:
		nop
		push r1        ; touches the stack page
		pop r1
		hlt
	`)
	core := cpu.New(cpu.Config{}, mem.New())
	e, err := Create(core, p, Config{
		Entry: 0x60_0000,
		Stack: Region{Addr: stackAddr, Size: stackSize},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracker(e)
	defer tr.Close()
	tr.TrackData(true)

	// Step 1: nop — no data access.
	tr.Rearm()
	if _, err := e.StepOne(); err != nil {
		t.Fatal(err)
	}
	if tr.DataTouched() {
		t.Error("nop must not touch data")
	}
	// Step 2: push — stack write.
	tr.Rearm()
	if _, err := e.StepOne(); err != nil {
		t.Fatal(err)
	}
	if !tr.DataTouched() {
		t.Error("push must touch the stack page")
	}
}

func TestTrackerUnrelatedFaultDeclined(t *testing.T) {
	_, e, _ := makeEnclave(t, countdownSrc)
	tr := NewTracker(e)
	defer tr.Close()
	tr.TrackCode(true)
	// A fault outside the enclave must not be absorbed by the tracker.
	err := e.core.Mem.ReadBytes(0xdead_0000, make([]byte, 1))
	if err == nil {
		t.Error("unrelated fault should propagate")
	}
}

func TestCodeRegionsAndTrackerHelpers(t *testing.T) {
	_, e, _ := makeEnclave(t, countdownSrc)
	regions := e.CodeRegions()
	if len(regions) != 1 || regions[0].Addr != encBase {
		t.Fatalf("regions = %+v", regions)
	}
	if !regions[0].Contains(encBase) || regions[0].Contains(encBase+regions[0].Size) {
		t.Error("Contains boundary check failed")
	}
	tr := NewTracker(e)
	defer tr.Close()
	if _, ok := tr.CurrentPage(); ok {
		t.Error("no current page before any fault")
	}
	tr.TrackCode(true)
	if _, err := e.StepOne(); err != nil {
		t.Fatal(err)
	}
	page, ok := tr.CurrentPage()
	if !ok || page != encBase>>12 {
		t.Errorf("CurrentPage = %#x, %v", page, ok)
	}
	if len(tr.CodePages()) == 0 {
		t.Error("page log should have entries")
	}
	tr.ResetLog()
	if len(tr.CodePages()) != 0 {
		t.Error("ResetLog should clear the log")
	}
}
