// Package sgx models the Intel SGX behaviors the paper's supervisor-
// level attack depends on:
//
//   - Enclave code confidentiality (SGX PCL): the attacker cannot read
//     enclave code bytes; the package offers no accessor for them.
//   - LBR suppression: branch records are not produced for enclave-mode
//     code, so the attacker must measure its *own* probe code, never the
//     victim directly.
//   - Asynchronous Enclave Exits (AEX): a supervisor attacker interrupts
//     the enclave after every retired instruction (the SGX-Step
//     technique) and runs arbitrary code before resuming.
//   - Untrusted page tables: the attacker flips page permissions and
//     observes faults — the classic controlled channel used to learn
//     page numbers (the high PC bits NV-S does not measure itself).
//
// Enclave execution is deterministic and resettable: NV-S re-runs the
// victim once per prime/probe pass (Figure 9, line 17).
package sgx

import (
	"errors"
	"fmt"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
)

// Region is a span of virtual address space.
type Region struct {
	Addr, Size uint64
}

// Contains reports whether addr lies in the region.
func (r Region) Contains(addr uint64) bool {
	return addr >= r.Addr && addr < r.Addr+r.Size
}

// Config describes the enclave to create.
type Config struct {
	// Entry is the enclave's entry point.
	Entry uint64
	// Stack is the enclave stack region (mapped RW by Create).
	Stack Region
	// Data is an optional writable data region (mapped RW by Create);
	// its contents are snapshotted for Reset.
	Data Region
}

// Enclave is a loaded SGX-like enclave on a core.
type Enclave struct {
	core *cpu.Core
	code []Region // executable enclave ranges
	cfg  Config

	initState cpu.ArchState
	state     cpu.ArchState
	dataSnap  []byte
	stackSnap []byte

	inEnclave bool
	hostState cpu.ArchState
	done      bool
	steps     uint64
}

// ErrCodeConfidential is returned by any attempt to read enclave code
// through the package API.
var ErrCodeConfidential = errors.New("sgx: enclave code is confidential (PCL)")

// Create loads prog into memory as the enclave's code, maps stack and
// data, and arranges LBR suppression for all enclave code ranges. The
// program's chunks define the confidential code regions.
func Create(core *cpu.Core, prog *asm.Program, cfg Config) (*Enclave, error) {
	if cfg.Stack.Size == 0 {
		return nil, fmt.Errorf("sgx: enclave needs a stack region")
	}
	prog.LoadInto(core.Mem)
	core.Mem.Map(cfg.Stack.Addr, cfg.Stack.Size, mem.PermRW)
	if cfg.Data.Size > 0 {
		core.Mem.Map(cfg.Data.Addr, cfg.Data.Size, mem.PermRW)
	}
	e := &Enclave{core: core, cfg: cfg}
	for _, c := range prog.Chunks {
		e.code = append(e.code, Region{Addr: c.Addr, Size: uint64(len(c.Code))})
	}
	e.initState.PC = cfg.Entry
	e.initState.Regs[isa.SP] = cfg.Stack.Addr + cfg.Stack.Size
	e.state = e.initState
	e.snapshot()

	prev := core.LBRSuppress
	core.LBRSuppress = func(pc uint64) bool {
		if e.InCode(pc) {
			return true
		}
		if prev != nil {
			return prev(pc)
		}
		return false
	}
	return e, nil
}

// InCode reports whether pc is inside enclave code.
func (e *Enclave) InCode(pc uint64) bool {
	for _, r := range e.code {
		if r.Contains(pc) {
			return true
		}
	}
	return false
}

// CodeRegions returns the enclave's code regions — their existence and
// bounds are architecturally visible to the OS (it manages the pages);
// only the *contents* are confidential.
func (e *Enclave) CodeRegions() []Region {
	out := make([]Region, len(e.code))
	copy(out, e.code)
	return out
}

// ReadCode always fails: code confidentiality.
func (e *Enclave) ReadCode(addr uint64, n int) ([]byte, error) {
	return nil, ErrCodeConfidential
}

func (e *Enclave) snapshot() {
	if e.cfg.Data.Size > 0 {
		e.dataSnap = make([]byte, e.cfg.Data.Size)
		_ = e.core.Mem.ReadBytes(e.cfg.Data.Addr, e.dataSnap)
	}
	e.stackSnap = make([]byte, e.cfg.Stack.Size)
	_ = e.core.Mem.ReadBytes(e.cfg.Stack.Addr, e.stackSnap)
}

// Reset rewinds the enclave to its initial state (registers, stack and
// data contents) so the next run replays the same execution. NV-S uses
// this between prime/probe passes.
func (e *Enclave) Reset() {
	e.state = e.initState
	e.done = false
	e.steps = 0
	if e.inEnclave {
		e.exit()
	}
	if len(e.dataSnap) > 0 {
		_ = e.core.Mem.WriteBytes(e.cfg.Data.Addr, e.dataSnap)
	}
	_ = e.core.Mem.WriteBytes(e.cfg.Stack.Addr, e.stackSnap)
}

// SetInitReg sets a register in the enclave's initial state (entry
// arguments). Takes effect on the next Reset or before the first step.
func (e *Enclave) SetInitReg(r isa.Reg, v uint64) {
	e.initState.Regs[r] = v
	if e.steps == 0 && !e.done {
		e.state.Regs[r] = v
	}
}

// Done reports whether the enclave program has halted.
func (e *Enclave) Done() bool { return e.done }

// Steps returns the number of architectural steps retired so far in the
// current run.
func (e *Enclave) Steps() uint64 { return e.steps }

// enter installs the enclave context on the core (EENTER/ERESUME).
func (e *Enclave) enter() {
	if e.inEnclave {
		return
	}
	e.core.ContextSwitch(&e.hostState, &e.state)
	e.inEnclave = true
}

// exit saves the enclave context and restores the host (AEX/EEXIT).
func (e *Enclave) exit() {
	if !e.inEnclave {
		return
	}
	e.core.ContextSwitch(&e.state, &e.hostState)
	e.inEnclave = false
}

// StepOne retires exactly one architectural enclave step (one
// instruction, or one macro-fused pair — indistinguishable to the
// attacker, per §7.3) and then takes an AEX back to the host. It
// reports whether the enclave finished. The attacker learns nothing
// about the retired instruction from this call; it must infer PCs
// through the BTB side channel.
func (e *Enclave) StepOne() (done bool, err error) {
	if e.done {
		return true, nil
	}
	e.enter()
	_, err = e.core.Step()
	if err == cpu.ErrHalted || e.core.Halted() {
		// hlt is the enclave's EEXIT analog, not a measured step.
		e.done = true
		e.exit()
		return true, nil
	}
	if err != nil {
		e.exit()
		return false, err
	}
	e.steps++
	// AEX: the timer interrupt squashes the in-flight front end. Any
	// speculative BTB updates from fetched-ahead successors remain.
	e.core.Interrupt()
	e.exit()
	return false, nil
}

// Run executes the enclave to completion without single-stepping.
func (e *Enclave) Run(maxSteps uint64) error {
	if e.done {
		return nil
	}
	e.enter()
	defer e.exit()
	for steps := uint64(0); maxSteps == 0 || steps < maxSteps; steps++ {
		_, err := e.core.Step()
		if err == cpu.ErrHalted || e.core.Halted() {
			e.done = true
			return nil
		}
		if err != nil {
			return err
		}
		e.steps++
	}
	return fmt.Errorf("sgx: enclave exceeded %d steps", maxSteps)
}
