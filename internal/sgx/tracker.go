package sgx

import (
	"repro/internal/mem"
)

// Tracker mounts the controlled-channel attack of Xu et al. against an
// enclave: the untrusted OS revokes page permissions and learns, from
// the resulting faults, which code page the enclave is executing and
// whether a step touched data memory. NV-S uses the code-page sequence
// for the high PC bits (page numbers) and the data-access signal to
// tell calls/rets apart from jumps during trace slicing (§6.4).
type Tracker struct {
	enc  *Enclave
	mem  *mem.Memory
	prev mem.FaultHandler

	trackCode bool
	trackData bool

	codePages   []uint64
	curExecPage uint64
	hasExecPage bool

	dataTouched bool
}

// NewTracker installs a tracker for e. Only one tracker should be active
// per memory at a time; Close restores the previous fault handler.
func NewTracker(e *Enclave) *Tracker {
	t := &Tracker{enc: e, mem: e.core.Mem}
	t.prev = nil // mem package does not expose the old handler; document single-owner
	t.mem.SetFaultHandler(t.handle)
	return t
}

// Close uninstalls the tracker's fault handler and restores permissions.
func (t *Tracker) Close() {
	t.TrackCode(false)
	t.TrackData(false)
	t.mem.SetFaultHandler(nil)
}

// TrackCode enables or disables execute-permission tracking on the
// enclave's code pages.
func (t *Tracker) TrackCode(on bool) {
	t.trackCode = on
	for _, r := range t.enc.code {
		if on {
			t.mem.Protect(r.Addr, r.Size, mem.PermR) // revoke X
		} else {
			t.mem.Protect(r.Addr, r.Size, mem.PermRX)
		}
	}
	t.hasExecPage = false
}

// TrackData enables or disables read/write tracking on the enclave's
// stack and data regions.
func (t *Tracker) TrackData(on bool) {
	t.trackData = on
	regions := []Region{t.enc.cfg.Stack, t.enc.cfg.Data}
	for _, r := range regions {
		if r.Size == 0 {
			continue
		}
		if on {
			t.mem.Protect(r.Addr, r.Size, 0)
		} else {
			t.mem.Protect(r.Addr, r.Size, mem.PermRW)
		}
	}
}

// Rearm re-revokes data permissions so the next access faults again.
// The NV-S loop calls this at every AEX for per-step data signals.
func (t *Tracker) Rearm() {
	t.dataTouched = false
	if t.trackData {
		t.TrackData(true)
	}
}

// CodePages returns the sequence of code page numbers observed (one
// entry per page *transition*, the controlled channel's granularity).
func (t *Tracker) CodePages() []uint64 {
	out := make([]uint64, len(t.codePages))
	copy(out, t.codePages)
	return out
}

// CurrentPage returns the page number the enclave is currently executing
// on, as learned from the channel.
func (t *Tracker) CurrentPage() (uint64, bool) {
	return t.curExecPage, t.hasExecPage
}

// DataTouched reports whether a tracked data access occurred since the
// last Rearm.
func (t *Tracker) DataTouched() bool { return t.dataTouched }

// ResetLog clears the recorded code-page sequence.
func (t *Tracker) ResetLog() {
	t.codePages = t.codePages[:0]
}

// handle is the page-fault handler: it records the fault, grants the
// needed permission (revoking the previous exec page to keep exactly one
// executable), and retries the access.
func (t *Tracker) handle(f *mem.Fault) bool {
	switch f.Access {
	case mem.AccessFetch:
		if !t.trackCode || !f.Mapped || !t.enc.InCode(f.Addr) {
			return false
		}
		page := f.PageNum()
		if t.hasExecPage {
			if t.curExecPage == page {
				// Same page lost X somehow; just restore.
				t.mem.Protect(page<<mem.PageShift, mem.PageSize, mem.PermRX)
				return true
			}
			t.mem.Protect(t.curExecPage<<mem.PageShift, mem.PageSize, mem.PermR)
		}
		t.curExecPage = page
		t.hasExecPage = true
		t.codePages = append(t.codePages, page)
		t.mem.Protect(page<<mem.PageShift, mem.PageSize, mem.PermRX)
		return true

	case mem.AccessRead, mem.AccessWrite:
		if !t.trackData || !f.Mapped {
			return false
		}
		if !t.enc.cfg.Stack.Contains(f.Addr) && !t.enc.cfg.Data.Contains(f.Addr) {
			return false
		}
		t.dataTouched = true
		page := f.Addr &^ (mem.PageSize - 1)
		t.mem.Protect(page, mem.PageSize, mem.PermRW)
		return true
	}
	return false
}
