package victim

import "repro/internal/nvrand"

// RSAKeygenInputs models the paper's §7.2 workload: each victim run is
// one RSA key generation, which repeatedly computes gcd(e, candidate)
// while searching for a public exponent coprime to phi(n). It returns
// the (secret-carrying) GCD operand pairs for one run.
//
// The secrets are the candidate values: their bits steer the balanced
// branch inside GCD, which is what the attack recovers.
func RSAKeygenInputs(rng *nvrand.Rand, calls int) [][2]uint64 {
	out := make([][2]uint64, calls)
	for i := range out {
		// Random odd 64-bit "phi" candidate and the conventional
		// exponent; both odd so the binary GCD goes straight to the
		// balanced loop.
		phi := rng.Uint64() | 1
		out[i] = [2]uint64{65537, phi}
	}
	return out
}
