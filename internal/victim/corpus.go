package victim

import (
	"fmt"

	"repro/internal/codegen"
	"repro/internal/nvrand"
)

// CorpusSpec configures the synthetic function corpus used by the
// fingerprinting evaluation (§7.3): the paper draws 175,168 functions
// from open-source SGX projects; we generate the same scale of distinct,
// terminating functions deterministically from a seed.
type CorpusSpec struct {
	// N is the number of functions. The paper's figure is 175168.
	N int
	// Seed drives all randomness.
	Seed uint64
	// MaxDepth bounds control-flow nesting (default 2).
	MaxDepth int
	// MaxStmts bounds statements per block (default 6, min 2).
	MaxStmts int
}

// PaperCorpusN is the corpus size of the paper's evaluation.
const PaperCorpusN = 175168

func (s CorpusSpec) withDefaults() CorpusSpec {
	if s.MaxDepth == 0 {
		s.MaxDepth = 2
	}
	if s.MaxStmts == 0 {
		s.MaxStmts = 6
	}
	return s
}

// Corpus deterministically generates spec.N random functions. Every
// function terminates (loops are bounded counters) and respects the
// code generator's register budget.
func Corpus(spec CorpusSpec) []*codegen.Func {
	spec = spec.withDefaults()
	rng := nvrand.New(spec.Seed)
	out := make([]*codegen.Func, spec.N)
	for i := range out {
		out[i] = genFunc(fmt.Sprintf("f%06d", i), rng.Split(), spec)
	}
	return out
}

// genFunc builds one random function.
func genFunc(name string, rng *nvrand.Rand, spec CorpusSpec) *codegen.Func {
	g := &gen{rng: rng, spec: spec}
	nParams := 1 + rng.Intn(3)
	f := &codegen.Func{Name: name}
	for i := 0; i < nParams; i++ {
		p := fmt.Sprintf("p%d", i)
		f.Params = append(f.Params, p)
		g.vars = append(g.vars, p)
	}
	f.Body = g.block(0, spec.MaxStmts)
	f.Body = append(f.Body, codegen.Return{Expr: g.expr(1)})
	return f
}

type gen struct {
	rng   *nvrand.Rand
	spec  CorpusSpec
	vars  []string
	loops int
}

// maxVars keeps within the compiler's register budget (9) minus the
// loop counters we may still add.
const maxVars = 6

func (g *gen) block(depth, budget int) []codegen.Stmt {
	n := 2 + g.rng.Intn(budget)
	var out []codegen.Stmt
	for i := 0; i < n; i++ {
		switch r := g.rng.Intn(100); {
		case r < 55 || depth >= g.spec.MaxDepth:
			out = append(out, g.assign())
		case r < 80:
			out = append(out, codegen.If{
				Cond: g.cond(),
				Then: g.block(depth+1, budget/2+1),
				Else: g.block(depth+1, budget/2+1),
			})
		default:
			if g.loops >= 3 {
				// Loop counters share the register budget with vars;
				// cap them so compilation never overflows registers.
				out = append(out, g.assign())
				continue
			}
			out = append(out, g.loop(depth, budget)...)
		}
	}
	return out
}

// loop emits a counter init plus a bounded loop, guaranteeing
// termination.
func (g *gen) loop(depth, budget int) []codegen.Stmt {
	g.loops++
	cnt := fmt.Sprintf("i%d", g.loops)
	body := g.block(depth+1, budget/2+1)
	body = append(body, codegen.Set(cnt, codegen.B(codegen.OpSub, codegen.V(cnt), codegen.C(1))))
	return []codegen.Stmt{
		codegen.Set(cnt, codegen.C(int64(2+g.rng.Intn(5)))),
		codegen.While{Cond: codegen.Cmp(codegen.V(cnt), codegen.RelNe, codegen.C(0)), Body: body},
	}
}

func (g *gen) assign() codegen.Stmt {
	// Generate the RHS before (possibly) minting a new destination so a
	// fresh variable can never appear in its own defining expression.
	e := g.expr(2)
	dst := g.pickVarOrNew()
	return codegen.Set(dst, e)
}

func (g *gen) pickVarOrNew() string {
	if len(g.vars) < maxVars && g.rng.Intn(3) == 0 {
		v := fmt.Sprintf("v%d", len(g.vars))
		g.vars = append(g.vars, v)
		return v
	}
	return g.vars[g.rng.Intn(len(g.vars))]
}

func (g *gen) pickVar() string {
	return g.vars[g.rng.Intn(len(g.vars))]
}

func (g *gen) cond() codegen.Cond {
	rels := []codegen.Rel{codegen.RelEq, codegen.RelNe, codegen.RelLt, codegen.RelLe, codegen.RelGt, codegen.RelGe}
	return codegen.Cmp(g.expr(1), rels[g.rng.Intn(len(rels))], g.expr(1))
}

func (g *gen) expr(depth int) codegen.Expr {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		if g.rng.Intn(2) == 0 {
			return codegen.V(g.pickVar())
		}
		return codegen.C(int64(g.rng.Intn(1 << 16)))
	}
	ops := []codegen.BinOp{
		codegen.OpAdd, codegen.OpSub, codegen.OpMul,
		codegen.OpAnd, codegen.OpOr, codegen.OpXor,
	}
	switch g.rng.Intn(10) {
	case 0: // constant shift
		dir := codegen.OpShl
		if g.rng.Bool() {
			dir = codegen.OpShr
		}
		return codegen.B(dir, g.expr(depth-1), codegen.C(int64(1+g.rng.Intn(7))))
	case 1: // division by a non-zero constant
		return codegen.B(codegen.OpDiv, g.expr(depth-1), codegen.C(int64(1+g.rng.Intn(254))))
	default:
		op := ops[g.rng.Intn(len(ops))]
		return codegen.B(op, g.expr(depth-1), g.expr(depth-1))
	}
}
