package victim

import (
	"testing"
	"testing/quick"

	"repro/internal/asm"
	"repro/internal/codegen"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/nvrand"
	"repro/internal/osmodel"
)

// compileAndRun compiles f, runs it with args, and returns (r0, yields).
func compileAndRun(t *testing.T, f *codegen.Func, opts codegen.Options, args ...uint64) (uint64, int) {
	t.Helper()
	b := asm.NewBuilder(0x40_0000)
	b.Label("start")
	for i, a := range args {
		b.Inst(isa.MovImm64(isa.Reg(1+i), a))
	}
	b.Call(f.Name)
	b.Inst(isa.Hlt())
	if err := codegen.Emit(b, f, opts); err != nil {
		t.Fatalf("%s: %v", f.Name, err)
	}
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	p.LoadInto(m)
	m.Map(0x7f_0000, 0x1000, mem.PermRW)
	c := cpu.New(cpu.Config{}, m)
	yields := 0
	c.OnSyscall = func(n uint8) error {
		if n == osmodel.SyscallYield {
			yields++
		}
		return nil
	}
	c.SetReg(isa.SP, 0x7f_1000)
	c.SetPC(p.MustLabel("start"))
	if _, err := c.Run(5_000_000); err != nil {
		t.Fatalf("%s: %v", f.Name, err)
	}
	return c.Reg(isa.R0), yields
}

func TestGCDVersionsCorrect(t *testing.T) {
	cases := []struct{ a, b uint64 }{
		{48, 18}, {1071, 462}, {7, 13}, {1, 1}, {100, 100},
		{0, 9}, {9, 0}, {65537, 0xDEADBEEF}, {1 << 20, 48},
	}
	for _, v := range GCDVersionNames {
		f := MustGCDVersion(v, false)
		for _, c := range cases {
			got, _ := compileAndRun(t, f, codegen.Options{Opt: codegen.O2}, c.a, c.b)
			if want := GCDRef(c.a, c.b); got != want {
				t.Errorf("v%s gcd(%d,%d) = %d, want %d", v, c.a, c.b, got, want)
			}
		}
	}
}

func TestQuickGCDVersionsAgree(t *testing.T) {
	f := func(a, b uint64) bool {
		a |= 1 // odd operands like the RSA workload
		b |= 1
		want := GCDRef(a, b)
		for _, v := range GCDVersionNames {
			got, _ := compileAndRun(t, MustGCDVersion(v, false), codegen.Options{Opt: codegen.O2}, a, b)
			if got != want {
				t.Logf("v%s gcd(%d,%d) = %d, want %d", v, a, b, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestGCDYieldCountMatchesBranchTrace: the victim yields exactly once
// per balanced-branch decision, so the ground-truth trace length must
// equal the yield count — the synchronization property NV-U relies on.
func TestGCDYieldCountMatchesBranchTrace(t *testing.T) {
	for _, v := range GCDVersionNames {
		f := MustGCDVersion(v, true)
		a, b := uint64(65537), uint64(0xDEAD_BEEF_1234_5677)
		_, yields := compileAndRun(t, f, codegen.Options{Opt: codegen.O2}, a, b)
		dirs, err := GCDBranchDirections(v, a, b)
		if err != nil {
			t.Fatal(err)
		}
		if yields != len(dirs) {
			t.Errorf("v%s: %d yields, %d branch decisions", v, yields, len(dirs))
		}
		if len(dirs) < 10 {
			t.Errorf("v%s: only %d iterations; expect tens for a 64-bit operand", v, len(dirs))
		}
	}
}

// TestGCDVersionClusters: versions sharing an implementation compile to
// identical bytes; different implementations differ — the premise of
// Figure 13 (left).
func TestGCDVersionClusters(t *testing.T) {
	code := func(v string) string {
		b := asm.NewBuilder(0x40_0000)
		if err := codegen.Emit(b, MustGCDVersion(v, false), codegen.Options{Opt: codegen.O2}); err != nil {
			t.Fatal(err)
		}
		p, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return string(p.Chunks[0].Code)
	}
	if code("2.5") != code("2.15") {
		t.Error("2.5 and 2.15 should share an implementation")
	}
	if code("2.16") != code("2.18") {
		t.Error("2.16 and 2.18 should share an implementation")
	}
	if code("3.0") != code("3.1") {
		t.Error("3.0 and 3.1 should share an implementation")
	}
	if code("2.5") == code("2.16") || code("2.16") == code("3.0") || code("2.5") == code("3.0") {
		t.Error("implementation generations must differ")
	}
}

func TestBnCmpCorrect(t *testing.T) {
	cases := [][2]uint64{
		{5, 5}, {6, 5}, {5, 6}, {0, 0},
		{0xFFFF_FFFF_FFFF_FFFF, 0xFFFF_FFFF_FFFF_FFFE},
		{0x1234_5678_0000_0000, 0x1234_5678_0000_0001},
		{1 << 63, 1}, {1, 1 << 63},
	}
	for _, c := range cases {
		got, _ := compileAndRun(t, BnCmp(false), codegen.Options{Opt: codegen.O2}, c[0], c[1])
		if want := BnCmpRef(c[0], c[1]); got != want {
			t.Errorf("bn_cmp(%#x,%#x) = %d, want %d", c[0], c[1], got, want)
		}
	}
}

func TestUnknownVersion(t *testing.T) {
	if _, err := GCDVersion("9.9", false); err == nil {
		t.Error("unknown version must error")
	}
	if _, err := GCDBranchDirections("9.9", 1, 2); err == nil {
		t.Error("unknown version must error")
	}
}

func TestRSAKeygenInputs(t *testing.T) {
	inputs := RSAKeygenInputs(nvrand.New(1), 10)
	if len(inputs) != 10 {
		t.Fatalf("len = %d", len(inputs))
	}
	for _, in := range inputs {
		if in[0] != 65537 {
			t.Errorf("e = %d", in[0])
		}
		if in[1]&1 != 1 {
			t.Errorf("phi %#x should be odd", in[1])
		}
	}
	// Determinism.
	again := RSAKeygenInputs(nvrand.New(1), 10)
	for i := range inputs {
		if inputs[i] != again[i] {
			t.Fatal("inputs must be deterministic per seed")
		}
	}
}

func TestCorpusGeneratesRunnableFunctions(t *testing.T) {
	funcs := Corpus(CorpusSpec{N: 60, Seed: 7})
	if len(funcs) != 60 {
		t.Fatalf("N = %d", len(funcs))
	}
	for i, f := range funcs {
		args := make([]uint64, len(f.Params))
		for j := range args {
			args[j] = uint64(i*31+j*17) | 1
		}
		got, _ := compileAndRun(t, f, codegen.Options{Opt: codegen.O2}, args...)
		_ = got // any terminating value is fine; Run errors on non-termination
	}
}

func TestCorpusDeterministicAndDistinct(t *testing.T) {
	a := Corpus(CorpusSpec{N: 20, Seed: 3})
	b := Corpus(CorpusSpec{N: 20, Seed: 3})
	emit := func(f *codegen.Func) string {
		bl := asm.NewBuilder(0x40_0000)
		if err := codegen.Emit(bl, f, codegen.Options{Opt: codegen.O2}); err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		p, err := bl.Build()
		if err != nil {
			t.Fatal(err)
		}
		return string(p.Chunks[0].Code)
	}
	distinct := map[string]bool{}
	for i := range a {
		ca, cb := emit(a[i]), emit(b[i])
		if ca != cb {
			t.Fatal("corpus must be deterministic per seed")
		}
		distinct[ca] = true
	}
	if len(distinct) < 15 {
		t.Errorf("only %d/20 distinct function bodies", len(distinct))
	}
}
