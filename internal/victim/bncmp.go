package victim

import "repro/internal/codegen"

// BnCmp returns the IPP-Crypto-style big-number comparison: the operand
// words are compared limb by limb (here sixteen 4-bit limbs of a 64-bit
// word), with a balanced secret-dependent branch per limb. Returns 0 for
// equal, 1 for a > b, 2 for a < b.
func BnCmp(yield bool) *codegen.Func {
	y := maybeYield(yield)
	body := []codegen.Stmt{
		codegen.Set("la", codegen.B(codegen.OpShr, codegen.V("a"), codegen.C(60))),
		codegen.Set("lb", codegen.B(codegen.OpShr, codegen.V("b"), codegen.C(60))),
		codegen.If{
			Cond: codegen.Cmp(codegen.V("la"), codegen.RelGt, codegen.V("lb")),
			Then: []codegen.Stmt{codegen.Return{Expr: codegen.C(1)}},
		},
		codegen.If{
			Cond: codegen.Cmp(codegen.V("la"), codegen.RelLt, codegen.V("lb")),
			Then: []codegen.Stmt{codegen.Return{Expr: codegen.C(2)}},
		},
	}
	body = append(body, y...)
	body = append(body,
		codegen.Set("a", codegen.B(codegen.OpShl, codegen.V("a"), codegen.C(4))),
		codegen.Set("b", codegen.B(codegen.OpShl, codegen.V("b"), codegen.C(4))),
		codegen.Set("i", codegen.B(codegen.OpSub, codegen.V("i"), codegen.C(1))),
	)
	return &codegen.Func{
		Name:   "bn_cmp",
		Params: []string{"a", "b"},
		Body: []codegen.Stmt{
			codegen.Set("i", codegen.C(16)),
			codegen.While{
				Cond: codegen.Cmp(codegen.V("i"), codegen.RelNe, codegen.C(0)),
				Body: body,
			},
			codegen.Return{Expr: codegen.C(0)},
		},
	}
}

// BnCmpRef is the reference semantics of BnCmp.
func BnCmpRef(a, b uint64) uint64 {
	switch {
	case a > b:
		return 1
	case a < b:
		return 2
	}
	return 0
}
