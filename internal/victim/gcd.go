// Package victim provides the attack targets of the paper's evaluation:
// mbedTLS-style GCD in eight library versions, the IPP-Crypto-style
// big-number comparison, an RSA-key-generation driver, and the synthetic
// function corpus of the fingerprinting experiment (§7.3).
//
// Substitution note (see DESIGN.md): the real victims operate on
// multi-limb bignums; ours operate on 64-bit words (bn_cmp treats a word
// as sixteen 4-bit limbs). The property the attack consumes is identical
// — a perfectly balanced branch whose direction depends on secret data,
// exercised once per loop iteration — while keeping the hand-auditable
// IR small.
package victim

import (
	"fmt"

	"repro/internal/codegen"
)

// GCDVersionNames lists the modeled mbedTLS versions in release order,
// mirroring Figure 13 (left). Versions 2.5–2.15 share one
// implementation; 2.16 changed it; 3.0 changed it again — the same
// clustering the paper found in the real library.
var GCDVersionNames = []string{"2.5", "2.7", "2.9", "2.15", "2.16", "2.18", "3.0", "3.1"}

// GCDVersion returns the GCD source for the named mbedTLS version.
// With yield set, the victim yields to the scheduler after the balanced
// branch body of each loop iteration (the paper's PoC instrumentation).
func GCDVersion(version string, yield bool) (*codegen.Func, error) {
	switch version {
	case "2.5", "2.7", "2.9", "2.15":
		return gcdBinary(yield), nil
	case "2.16", "2.18":
		return gcdBinaryV2(yield), nil
	case "3.0", "3.1":
		return gcdBinaryV3(yield), nil
	}
	return nil, fmt.Errorf("victim: unknown mbedTLS version %q", version)
}

// MustGCDVersion is GCDVersion for static version names.
func MustGCDVersion(version string, yield bool) *codegen.Func {
	f, err := GCDVersion(version, yield)
	if err != nil {
		panic(err)
	}
	return f
}

func maybeYield(yield bool) []codegen.Stmt {
	if yield {
		return []codegen.Stmt{codegen.Yield{}}
	}
	return nil
}

// gcdBinary is the pre-2.16 implementation: binary (Stein) GCD. The
// balanced secret branch is the swap decision `a > b` in the main loop.
func gcdBinary(yield bool) *codegen.Func {
	y := maybeYield(yield)
	loopBody := []codegen.Stmt{
		codegen.While{
			Cond: codegen.Cmp(codegen.B(codegen.OpAnd, codegen.V("b"), codegen.C(1)), codegen.RelEq, codegen.C(0)),
			Body: []codegen.Stmt{codegen.Set("b", codegen.B(codegen.OpShr, codegen.V("b"), codegen.C(1)))},
		},
		codegen.If{
			Cond: codegen.Cmp(codegen.V("a"), codegen.RelGt, codegen.V("b")),
			Then: []codegen.Stmt{
				codegen.Set("t", codegen.V("a")),
				codegen.Set("a", codegen.V("b")),
				codegen.Set("b", codegen.B(codegen.OpSub, codegen.V("t"), codegen.V("a"))),
			},
			Else: []codegen.Stmt{
				codegen.Set("b", codegen.B(codegen.OpSub, codegen.V("b"), codegen.V("a"))),
			},
		},
	}
	loopBody = append(loopBody, y...)
	return &codegen.Func{
		Name:   "mbedtls_mpi_gcd",
		Params: []string{"a", "b"},
		Body: []codegen.Stmt{
			codegen.If{Cond: codegen.Cmp(codegen.V("a"), codegen.RelEq, codegen.C(0)),
				Then: []codegen.Stmt{codegen.Return{Expr: codegen.V("b")}}},
			codegen.If{Cond: codegen.Cmp(codegen.V("b"), codegen.RelEq, codegen.C(0)),
				Then: []codegen.Stmt{codegen.Return{Expr: codegen.V("a")}}},
			codegen.Set("s", codegen.C(0)),
			codegen.While{
				Cond: codegen.Cmp(
					codegen.B(codegen.OpAnd, codegen.B(codegen.OpOr, codegen.V("a"), codegen.V("b")), codegen.C(1)),
					codegen.RelEq, codegen.C(0)),
				Body: []codegen.Stmt{
					codegen.Set("a", codegen.B(codegen.OpShr, codegen.V("a"), codegen.C(1))),
					codegen.Set("b", codegen.B(codegen.OpShr, codegen.V("b"), codegen.C(1))),
					codegen.Set("s", codegen.B(codegen.OpAdd, codegen.V("s"), codegen.C(1))),
				},
			},
			codegen.While{
				Cond: codegen.Cmp(codegen.B(codegen.OpAnd, codegen.V("a"), codegen.C(1)), codegen.RelEq, codegen.C(0)),
				Body: []codegen.Stmt{codegen.Set("a", codegen.B(codegen.OpShr, codegen.V("a"), codegen.C(1)))},
			},
			codegen.While{
				Cond: codegen.Cmp(codegen.V("b"), codegen.RelNe, codegen.C(0)),
				Body: loopBody,
			},
			codegen.Return{Expr: codegen.B(codegen.OpShl, codegen.V("a"), codegen.V("s"))},
		},
	}
}

// gcdBinaryV2 is the 2.16-era implementation: still a binary GCD but
// with the odd-normalization hoisted into the main loop and the branch
// condition reversed (`b >= a`), changing layout and instruction mix.
func gcdBinaryV2(yield bool) *codegen.Func {
	y := maybeYield(yield)
	body := []codegen.Stmt{
		codegen.While{
			Cond: codegen.Cmp(codegen.B(codegen.OpAnd, codegen.V("b"), codegen.C(1)), codegen.RelEq, codegen.C(0)),
			Body: []codegen.Stmt{codegen.Set("b", codegen.B(codegen.OpShr, codegen.V("b"), codegen.C(1)))},
		},
		codegen.While{
			Cond: codegen.Cmp(codegen.B(codegen.OpAnd, codegen.V("a"), codegen.C(1)), codegen.RelEq, codegen.C(0)),
			Body: []codegen.Stmt{codegen.Set("a", codegen.B(codegen.OpShr, codegen.V("a"), codegen.C(1)))},
		},
		codegen.If{
			Cond: codegen.Cmp(codegen.V("b"), codegen.RelGe, codegen.V("a")),
			Then: []codegen.Stmt{codegen.Set("b", codegen.B(codegen.OpSub, codegen.V("b"), codegen.V("a")))},
			Else: []codegen.Stmt{
				codegen.Set("t", codegen.V("a")),
				codegen.Set("a", codegen.V("b")),
				codegen.Set("b", codegen.B(codegen.OpSub, codegen.V("t"), codegen.V("b"))),
			},
		},
	}
	body = append(body, y...)
	return &codegen.Func{
		Name:   "mbedtls_mpi_gcd",
		Params: []string{"a", "b"},
		Body: []codegen.Stmt{
			codegen.If{Cond: codegen.Cmp(codegen.V("a"), codegen.RelEq, codegen.C(0)),
				Then: []codegen.Stmt{codegen.Return{Expr: codegen.V("b")}}},
			codegen.If{Cond: codegen.Cmp(codegen.V("b"), codegen.RelEq, codegen.C(0)),
				Then: []codegen.Stmt{codegen.Return{Expr: codegen.V("a")}}},
			codegen.Set("s", codegen.C(0)),
			codegen.While{
				Cond: codegen.Cmp(
					codegen.B(codegen.OpAnd, codegen.B(codegen.OpOr, codegen.V("a"), codegen.V("b")), codegen.C(1)),
					codegen.RelEq, codegen.C(0)),
				Body: []codegen.Stmt{
					codegen.Set("a", codegen.B(codegen.OpShr, codegen.V("a"), codegen.C(1))),
					codegen.Set("b", codegen.B(codegen.OpShr, codegen.V("b"), codegen.C(1))),
					codegen.Set("s", codegen.B(codegen.OpAdd, codegen.V("s"), codegen.C(1))),
				},
			},
			codegen.While{
				Cond: codegen.Cmp(codegen.V("b"), codegen.RelNe, codegen.C(0)),
				Body: body,
			},
			codegen.Return{Expr: codegen.B(codegen.OpShl, codegen.V("a"), codegen.V("s"))},
		},
	}
}

// gcdBinaryV3 is the 3.x implementation: a binary GCD whose balanced
// branch has symmetric subtract-then-normalize arms — the shape the
// §7.2 control-flow leakage experiment attacks (both arms contain real
// work, as in Figure 8).
func gcdBinaryV3(yield bool) *codegen.Func {
	y := maybeYield(yield)
	body := []codegen.Stmt{
		codegen.If{
			Cond: codegen.Cmp(codegen.V("a"), codegen.RelGt, codegen.V("b")),
			Then: []codegen.Stmt{
				codegen.Set("a", codegen.B(codegen.OpSub, codegen.V("a"), codegen.V("b"))),
				codegen.While{
					Cond: codegen.Cmp(codegen.B(codegen.OpAnd, codegen.V("a"), codegen.C(1)), codegen.RelEq, codegen.C(0)),
					Body: []codegen.Stmt{codegen.Set("a", codegen.B(codegen.OpShr, codegen.V("a"), codegen.C(1)))},
				},
			},
			Else: []codegen.Stmt{
				codegen.Set("b", codegen.B(codegen.OpSub, codegen.V("b"), codegen.V("a"))),
				codegen.While{
					Cond: codegen.Cmp(codegen.B(codegen.OpAnd, codegen.V("b"), codegen.C(1)), codegen.RelEq, codegen.C(0)),
					Body: []codegen.Stmt{codegen.Set("b", codegen.B(codegen.OpShr, codegen.V("b"), codegen.C(1)))},
				},
			},
		},
	}
	body = append(body, y...)
	return &codegen.Func{
		Name:   "mbedtls_mpi_gcd",
		Params: []string{"a", "b"},
		Body: []codegen.Stmt{
			codegen.If{Cond: codegen.Cmp(codegen.V("a"), codegen.RelEq, codegen.C(0)),
				Then: []codegen.Stmt{codegen.Return{Expr: codegen.V("b")}}},
			codegen.If{Cond: codegen.Cmp(codegen.V("b"), codegen.RelEq, codegen.C(0)),
				Then: []codegen.Stmt{codegen.Return{Expr: codegen.V("a")}}},
			codegen.Set("s", codegen.C(0)),
			codegen.While{
				Cond: codegen.Cmp(
					codegen.B(codegen.OpAnd, codegen.B(codegen.OpOr, codegen.V("a"), codegen.V("b")), codegen.C(1)),
					codegen.RelEq, codegen.C(0)),
				Body: []codegen.Stmt{
					codegen.Set("a", codegen.B(codegen.OpShr, codegen.V("a"), codegen.C(1))),
					codegen.Set("b", codegen.B(codegen.OpShr, codegen.V("b"), codegen.C(1))),
					codegen.Set("s", codegen.B(codegen.OpAdd, codegen.V("s"), codegen.C(1))),
				},
			},
			codegen.While{
				Cond: codegen.Cmp(codegen.B(codegen.OpAnd, codegen.V("a"), codegen.C(1)), codegen.RelEq, codegen.C(0)),
				Body: []codegen.Stmt{codegen.Set("a", codegen.B(codegen.OpShr, codegen.V("a"), codegen.C(1)))},
			},
			codegen.While{
				Cond: codegen.Cmp(codegen.B(codegen.OpAnd, codegen.V("b"), codegen.C(1)), codegen.RelEq, codegen.C(0)),
				Body: []codegen.Stmt{codegen.Set("b", codegen.B(codegen.OpShr, codegen.V("b"), codegen.C(1)))},
			},
			codegen.While{
				Cond: codegen.Cmp(codegen.V("a"), codegen.RelNe, codegen.V("b")),
				Body: body,
			},
			codegen.Return{Expr: codegen.B(codegen.OpShl, codegen.V("a"), codegen.V("s"))},
		},
	}
}

// GCDRef computes the reference result for any version (they are all
// extensionally the greatest common divisor).
func GCDRef(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// GCDBranchDirections returns, per yield point (loop iteration), whether
// the balanced branch took its THEN side — the ground-truth secret
// sequence the control-flow leakage attack must recover.
func GCDBranchDirections(version string, a, b uint64) ([]bool, error) {
	switch version {
	case "2.5", "2.7", "2.9", "2.15":
		if a == 0 || b == 0 {
			return nil, nil
		}
		var out []bool
		for (a|b)&1 == 0 {
			a >>= 1
			b >>= 1
		}
		for a&1 == 0 {
			a >>= 1
		}
		for b != 0 {
			for b&1 == 0 {
				b >>= 1
			}
			if a > b {
				out = append(out, true)
				a, b = b, a-b
			} else {
				out = append(out, false)
				b -= a
			}
		}
		return out, nil
	case "2.16", "2.18":
		if a == 0 || b == 0 {
			return nil, nil
		}
		var out []bool
		for (a|b)&1 == 0 {
			a >>= 1
			b >>= 1
		}
		for b != 0 {
			for b&1 == 0 {
				b >>= 1
			}
			for a&1 == 0 {
				a >>= 1
			}
			if b >= a {
				out = append(out, true)
				b -= a
			} else {
				out = append(out, false)
				a, b = b, a-b
			}
		}
		return out, nil
	case "3.0", "3.1":
		if a == 0 || b == 0 {
			return nil, nil
		}
		var out []bool
		for (a|b)&1 == 0 {
			a >>= 1
			b >>= 1
		}
		for a&1 == 0 {
			a >>= 1
		}
		for b&1 == 0 {
			b >>= 1
		}
		for a != b {
			if a > b {
				out = append(out, true)
				a -= b
				for a&1 == 0 {
					a >>= 1
				}
			} else {
				out = append(out, false)
				b -= a
				for b&1 == 0 {
					b >>= 1
				}
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("victim: unknown mbedTLS version %q", version)
}
