package btb

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func skylake() *BTB { return New(ConfigSkyLake()) }

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Sets: 0, Ways: 8, OffsetBits: 5, TagTopBit: 32},
		{Sets: 3, Ways: 8, OffsetBits: 5, TagTopBit: 32},
		{Sets: 512, Ways: 0, OffsetBits: 5, TagTopBit: 32},
		{Sets: 512, Ways: 8, OffsetBits: 0, TagTopBit: 32},
		{Sets: 512, Ways: 8, OffsetBits: 5, TagTopBit: 10},
		{Sets: 512, Ways: 8, OffsetBits: 5, TagTopBit: 65},
	}
	for _, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) should panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
	// Good configs must not panic.
	for _, cfg := range []Config{ConfigSkyLake(), ConfigIceLake(), ConfigFullTag(), ConfigArm()} {
		New(cfg)
	}
}

func TestExactHit(t *testing.T) {
	b := skylake()
	// A branch whose last byte is at 0x40_001f, targeting 0x40_1000.
	b.Update(0x40_001f, 0x40_1000, isa.KindJump)
	h, ok := b.Lookup(0x40_0000)
	if !ok {
		t.Fatal("expected hit")
	}
	if h.BranchPC != 0x40_001f {
		t.Errorf("BranchPC = %#x, want 0x40001f", h.BranchPC)
	}
	if h.Target != 0x40_1000 {
		t.Errorf("Target = %#x", h.Target)
	}
	if h.Kind != isa.KindJump {
		t.Errorf("Kind = %v", h.Kind)
	}
}

// TestRangeSemantics encodes Takeaway 2: a hit requires entry offset >=
// fetch offset; among multiple hits the smallest qualifying offset wins.
func TestRangeSemantics(t *testing.T) {
	b := skylake()
	b.Update(0x40_0010, 0x1000, isa.KindJump) // entry at offset 0x10
	b.Update(0x40_001e, 0x2000, isa.KindJump) // entry at offset 0x1e

	// Fetch at offset 0x00: both qualify, smallest offset (0x10) wins.
	h, ok := b.Lookup(0x40_0000)
	if !ok || h.BranchPC != 0x40_0010 {
		t.Fatalf("fetch@0: hit=%v pc=%#x, want 0x400010", ok, h.BranchPC)
	}
	// Fetch at offset 0x10: equal offset still hits.
	h, ok = b.Lookup(0x40_0010)
	if !ok || h.BranchPC != 0x40_0010 {
		t.Fatalf("fetch@0x10: hit=%v pc=%#x, want 0x400010", ok, h.BranchPC)
	}
	// Fetch at offset 0x11: first entry no longer qualifies.
	h, ok = b.Lookup(0x40_0011)
	if !ok || h.BranchPC != 0x40_001e {
		t.Fatalf("fetch@0x11: hit=%v pc=%#x, want 0x40001e", ok, h.BranchPC)
	}
	// Fetch at offset 0x1f: nothing qualifies.
	if _, ok = b.Lookup(0x40_001f); ok {
		t.Fatal("fetch@0x1f: expected miss")
	}
}

// TestTagTruncationAliasing verifies that code 4 GiB apart collides on
// SkyLake geometry (bits >= 32 ignored) but not with full tags.
func TestTagTruncationAliasing(t *testing.T) {
	const lo = uint64(0x40_001f)
	const hi = lo + (1 << 32)

	b := skylake()
	b.Update(lo, 0x1000, isa.KindJump)
	if h, ok := b.Lookup(hi &^ 0x1f); !ok || h.BranchPC != hi {
		t.Errorf("SkyLake: lookup 4GiB away should alias (hit=%v, pc=%#x)", ok, h.BranchPC)
	}

	full := New(ConfigFullTag())
	full.Update(lo, 0x1000, isa.KindJump)
	if _, ok := full.Lookup(hi &^ 0x1f); ok {
		t.Error("full tags: lookup 4GiB away must miss")
	}
}

// TestIceLakeAliasDistance verifies the 8 GiB aliasing distance of the
// IceLake geometry (bits >= 33 ignored).
func TestIceLakeAliasDistance(t *testing.T) {
	b := New(ConfigIceLake())
	const lo = uint64(0x40_001f)
	b.Update(lo, 0x1000, isa.KindJump)
	if _, ok := b.Lookup((lo + 1<<32) &^ 0x1f); ok {
		t.Error("IceLake: 4 GiB apart must NOT alias")
	}
	if h, ok := b.Lookup((lo + 1<<33) &^ 0x1f); !ok || h.BranchPC != lo+1<<33 {
		t.Errorf("IceLake: 8 GiB apart should alias (hit=%v pc=%#x)", ok, h.BranchPC)
	}
}

func TestInvalidate(t *testing.T) {
	b := skylake()
	b.Update(0x40_001f, 0x1000, isa.KindJump)
	if !b.Invalidate(0x40_001f) {
		t.Fatal("Invalidate should report removal")
	}
	if b.Invalidate(0x40_001f) {
		t.Fatal("second Invalidate should report nothing to remove")
	}
	if _, ok := b.Lookup(0x40_0000); ok {
		t.Fatal("entry should be gone")
	}
}

// TestInvalidateAliased is the Figure 1 scenario reduced to the BTB: an
// entry allocated at a low address is deallocated via its alias 4 GiB
// higher, as happens when a victim's non-branch bytes false-hit it.
func TestInvalidateAliased(t *testing.T) {
	b := skylake()
	b.Update(0x40_001f, 0x1000, isa.KindJump)
	if !b.Invalidate(0x40_001f + 1<<32) {
		t.Fatal("aliased Invalidate should remove the entry")
	}
	if b.ValidCount() != 0 {
		t.Fatal("no entries should remain")
	}
}

func TestInvalidateHit(t *testing.T) {
	b := skylake()
	b.Update(0x40_001f, 0x1000, isa.KindJump)
	h, ok := b.Lookup(0x40_0000)
	if !ok {
		t.Fatal("expected hit")
	}
	b.InvalidateHit(h)
	if _, ok := b.Lookup(0x40_0000); ok {
		t.Fatal("entry should be gone after InvalidateHit")
	}
	b.InvalidateHit(h) // double-invalidate is a no-op
}

func TestUpdateRefreshesExistingEntry(t *testing.T) {
	b := skylake()
	b.Update(0x40_001f, 0x1000, isa.KindJump)
	b.Update(0x40_001f, 0x2000, isa.KindJump)
	if b.ValidCount() != 1 {
		t.Fatalf("ValidCount = %d, want 1 (update must not duplicate)", b.ValidCount())
	}
	h, _ := b.Lookup(0x40_0000)
	if h.Target != 0x2000 {
		t.Errorf("Target = %#x, want updated 0x2000", h.Target)
	}
}

func TestLRUEviction(t *testing.T) {
	cfg := Config{Sets: 2, Ways: 2, OffsetBits: 5, TagTopBit: 32}
	b := New(cfg)
	// Three branches mapping to the same set (set stride = Sets*32 = 64B).
	pcs := []uint64{0x1f, 0x1f + 64, 0x1f + 128}
	b.Update(pcs[0], 1, isa.KindJump)
	b.Update(pcs[1], 2, isa.KindJump)
	// Confirm use of pcs[0] so pcs[1] is LRU. Lookup alone must not
	// stamp: only the front end's confirmation (Touch) counts as use.
	h, ok := b.Lookup(pcs[0] &^ 0x1f)
	if !ok {
		t.Fatal("expected hit on pcs[0]")
	}
	b.Touch(h)
	b.Update(pcs[2], 3, isa.KindJump) // evicts pcs[1]
	if _, ok := b.EntryAt(pcs[1]); ok {
		t.Error("LRU entry should have been evicted")
	}
	if _, ok := b.EntryAt(pcs[0]); !ok {
		t.Error("recently used entry should survive")
	}
	if b.Stats().Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", b.Stats().Evictions)
	}
}

// TestFalseHitLookupsDoNotAgeOutLiveEntries pins the eviction order
// under repeated false hits: a stale low-offset entry that wins every
// range lookup — only for decode to classify each hit as false — must
// not accumulate LRU stamps, or it ages genuinely live victims out of
// the set. Only confirmed use (Touch) refreshes an entry.
func TestFalseHitLookupsDoNotAgeOutLiveEntries(t *testing.T) {
	cfg := Config{Sets: 2, Ways: 2, OffsetBits: 5, TagTopBit: 32}
	b := New(cfg)
	stale := uint64(0x05) // low offset: wins every range lookup from offset 0
	live := uint64(0x1f)  // the genuinely live victim branch
	b.Update(stale, 0x100, isa.KindJump)
	b.Update(live, 0x200, isa.KindJump)

	// The live branch is consumed once by the front end (fetch from its
	// own offset, past the stale entry's).
	h, ok := b.Lookup(live)
	if !ok || h.BranchPC != live {
		t.Fatalf("Lookup(live) = %+v, %v; want hit at %#x", h, ok, live)
	}
	b.Touch(h)

	// Repeated fetches from the block base range-hit the stale entry;
	// decode classifies every one a false hit, so none is a use.
	for i := 0; i < 5; i++ {
		fh, ok := b.Lookup(stale &^ 0x1f)
		if !ok || fh.BranchPC != stale {
			t.Fatalf("Lookup(base) = %+v, %v; want range hit at %#x", fh, ok, stale)
		}
	}

	// Set pressure: a third branch allocates. The stale entry — never
	// confirmed — must be the LRU victim, not the live one.
	third := uint64(0x1f + 128) // same set (stride Sets*32 = 64), distinct tag
	b.Update(third, 0x300, isa.KindJump)
	if _, ok := b.EntryAt(live); !ok {
		t.Error("live entry evicted: unconfirmed false-hit lookups aged it out")
	}
	if _, ok := b.EntryAt(stale); ok {
		t.Error("stale entry survived: expected it to be the LRU victim")
	}
}

// TestTouchOnInvalidatedHitIsNoop: a hit whose entry was deallocated
// between Lookup and confirmation must not resurrect or stamp the way.
func TestTouchOnInvalidatedHitIsNoop(t *testing.T) {
	b := skylake()
	b.Update(0x40_001f, 0x1000, isa.KindJump)
	h, ok := b.Lookup(0x40_0000)
	if !ok {
		t.Fatal("expected hit")
	}
	b.InvalidateHit(h)
	b.Touch(h)
	if got := b.ValidCount(); got != 0 {
		t.Fatalf("ValidCount = %d after Touch on invalidated hit, want 0", got)
	}
}

// TestIBPBOnlyFlushesIndirect encodes the §4.1 finding: IBPB invalidates
// indirect-branch entries and leaves direct ones — so NV-Core survives.
func TestIBPBOnlyFlushesIndirect(t *testing.T) {
	b := skylake()
	b.Update(0x40_001f, 0x1000, isa.KindJump)    // direct
	b.Update(0x41_001f, 0x2000, isa.KindIndJump) // indirect
	b.Update(0x42_001f, 0x3000, isa.KindIndCall) // indirect
	b.IBPB()
	if _, ok := b.EntryAt(0x40_001f); !ok {
		t.Error("IBPB must not remove direct-branch entries")
	}
	if _, ok := b.EntryAt(0x41_001f); ok {
		t.Error("IBPB must remove indirect-jump entries")
	}
	if _, ok := b.EntryAt(0x42_001f); ok {
		t.Error("IBPB must remove indirect-call entries")
	}
}

// TestIBRSRestrictsOnlyCrossDomainIndirect encodes the other half of
// §4.1: IBRS hides indirect entries from other domains but direct
// entries keep predicting across domains.
func TestIBRSRestrictsOnlyCrossDomainIndirect(t *testing.T) {
	b := skylake()
	b.SetDomain(0)
	b.Update(0x40_001f, 0x1000, isa.KindJump)
	b.Update(0x41_001f, 0x2000, isa.KindIndJump)
	b.SetIBRS(true)
	b.SetDomain(1)
	if _, ok := b.Lookup(0x40_0000); !ok {
		t.Error("IBRS must not restrict direct-branch entries")
	}
	if _, ok := b.Lookup(0x41_0000); ok {
		t.Error("IBRS must restrict cross-domain indirect entries")
	}
	b.SetDomain(0)
	if _, ok := b.Lookup(0x41_0000); !ok {
		t.Error("IBRS must allow same-domain indirect entries")
	}
}

func TestFlush(t *testing.T) {
	b := skylake()
	for i := uint64(0); i < 100; i++ {
		b.Update(0x40_0000+i*64+0x1f, i, isa.KindJump)
	}
	if b.ValidCount() == 0 {
		t.Fatal("setup: expected entries")
	}
	b.Flush()
	if b.ValidCount() != 0 {
		t.Errorf("ValidCount after Flush = %d", b.ValidCount())
	}
}

func TestStats(t *testing.T) {
	b := skylake()
	b.Update(0x40_001f, 0x1000, isa.KindJump)
	b.Lookup(0x40_0000) // hit
	b.Lookup(0x50_0000) // miss
	s := b.Stats()
	if s.Allocs != 1 || s.Lookups != 2 || s.Hits != 1 {
		t.Errorf("stats = %+v", s)
	}
	b.ResetStats()
	if b.Stats() != (Stats{}) {
		t.Error("ResetStats should zero counters")
	}
}

// TestQuickUpdateLookupConsistency property-tests that after Update at a
// random PC, a Lookup from the containing block base always finds an
// entry at or below that PC's offset, and Invalidate at the same PC
// removes it.
func TestQuickUpdateLookupConsistency(t *testing.T) {
	f := func(pc uint64, target uint64) bool {
		b := skylake()
		b.Update(pc, target, isa.KindJump)
		blockBase := pc &^ 0x1f
		h, ok := b.Lookup(blockBase)
		if !ok {
			return false
		}
		// The hit must reconstruct the entry's position in this block.
		if h.BranchPC&0x1f != pc&0x1f {
			return false
		}
		if h.Target != target {
			return false
		}
		return b.Invalidate(pc) && b.ValidCount() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestQuickAliasing property-tests that any two addresses whose low
// TagTopBit bits agree alias to the same entry on SkyLake geometry.
func TestQuickAliasing(t *testing.T) {
	f := func(pc uint64, hiBits uint32) bool {
		b := skylake()
		b.Update(pc, 0x1234, isa.KindJump)
		alias := (pc & ((1 << 32) - 1)) | uint64(hiBits)<<32
		h, ok := b.Lookup(alias &^ 0x1f)
		return ok && h.Target == 0x1234
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestFoldHashPlacement encodes the Arm set-index scheme: two blocks
// congruent modulo Sets (which the Intel modulo scheme maps to the same
// set) land in *different* sets under HashFold, while intra-block
// behavior and tag truncation are untouched.
func TestFoldHashPlacement(t *testing.T) {
	cfg := ConfigArm()
	b := New(cfg)
	stride := uint64(cfg.Sets) * cfg.BlockSize() // congruent blocks, modulo scheme
	s0, t0, _ := b.index(0x40_0000)
	s1, t1, _ := b.index(0x40_0000 + stride)
	if s0 == s1 {
		t.Errorf("HashFold placed congruent blocks in the same set %d", s0)
	}
	if t0 == t1 {
		t.Errorf("distinct blocks share tag %#x", t0)
	}
	// Modulo control: same addresses on SkyLake share a set.
	m := skylake()
	ms0, _, _ := m.index(uint64(0x40_0000))
	ms1, _, _ := m.index(0x40_0000 + uint64(m.cfg.Sets)*m.cfg.BlockSize())
	if ms0 != ms1 {
		t.Errorf("HashModulo control: sets %d != %d", ms0, ms1)
	}
}

// TestQuickFoldInjective property-tests that the fold hash loses no
// information: (set, tag) uniquely recovers the block number, so two
// different blocks below the truncation bit can never collide on both.
func TestQuickFoldInjective(t *testing.T) {
	b := New(ConfigArm())
	mask := uint64(1)<<b.cfg.TagTopBit - 1
	f := func(pcA, pcB uint64) bool {
		pcA &= mask
		pcB &= mask
		sa, ta, _ := b.index(pcA)
		sb, tb, _ := b.index(pcB)
		sameBlock := pcA>>b.cfg.OffsetBits == pcB>>b.cfg.OffsetBits
		return sameBlock == (sa == sb && ta == tb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickFoldAliasing is TestQuickAliasing on the Arm geometry: the
// fold hash operates on truncated addresses, so 4 GiB aliasing survives.
func TestQuickFoldAliasing(t *testing.T) {
	f := func(pc uint64, hiBits uint32) bool {
		b := New(ConfigArm())
		b.Update(pc, 0x1234, isa.KindJump)
		alias := (pc & ((1 << 32) - 1)) | uint64(hiBits)<<32
		h, ok := b.Lookup(alias &^ 0x1f)
		return ok && h.Target == 0x1234
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestFoldUpdateLookupInvalidate runs the basic entry lifecycle on the
// Arm geometry: range-semantics lookup, Touch, Invalidate.
func TestFoldUpdateLookupInvalidate(t *testing.T) {
	b := New(ConfigArm())
	b.Update(0x40_001f, 0x40_1000, isa.KindJump)
	h, ok := b.Lookup(0x40_0000)
	if !ok || h.BranchPC != 0x40_001f || h.Target != 0x40_1000 {
		t.Fatalf("fold lookup = %+v ok=%v", h, ok)
	}
	b.Touch(h)
	if !b.Invalidate(0x40_001f) || b.ValidCount() != 0 {
		t.Fatal("fold Invalidate failed")
	}
}
