// Package btb models the Branch Target Buffer of a modern Intel core as
// reverse-engineered by the NightVision paper (§2).
//
// Three properties distinguish this model from a textbook BTB, and all
// three are what the attack exploits:
//
//  1. Truncated tags (§2.1): only address bits below a per-generation
//     top bit (32 on SkyLake..CascadeLake, 33 on IceLake) participate in
//     the set index and tag. Code placed 4 (or 8) GiB apart therefore
//     aliases onto the same entries.
//
//  2. Range-semantics lookup (Takeaway 2, §2.4): because superscalar
//     fetch operates on 32-byte prediction windows, a lookup with fetch
//     PC p hits any entry with the same tag and set whose offset is
//     greater than or equal to p's offset; among multiple hits, the
//     smallest offset wins. Entries are keyed on the *last byte* of the
//     branch.
//
//  3. Deallocation on false hit (Takeaway 1, §2.3): when decode discovers
//     that a predicted branch location does not actually hold a
//     control-transfer instruction, the entry is deallocated immediately —
//     even though the instruction that triggered the false hit never
//     retires. The CPU front end (internal/cpu) drives this via
//     Invalidate.
//
// The model also implements IBRS/IBPB with their documented semantics:
// they constrain or flush only entries for *indirect* branches (§4.1),
// which is why they do not stop NightVision.
//
// # Storage layout
//
// Entries live in a single flat array organized as [bank][set][way]:
// consecutive prediction-window blocks map to consecutive banks
// (bank = set index mod Banks), mirroring hardware that serves several
// sequential fetch-block reads per cycle from distinct banks. The front
// end reads a whole window's worth of candidates at once through
// FillBundle and then consults the Bundle as decode walks the window,
// instead of issuing an associative Lookup per decode step.
package btb

import (
	"fmt"
	"math/bits"

	"repro/internal/isa"
	"repro/internal/obs"
)

// Domain identifies a predictor security domain for IBRS. User and
// supervisor code, or different processes, can be modeled as different
// domains.
type Domain uint8

// Banks is the bank count of the physical entry array. Four banks cover
// the sequential blocks the front end can probe in one cycle (the
// fetch-ahead windows plus the split-branch probe of the next block).
// Geometries with fewer than Banks sets degrade to one bank per set.
const Banks = 4

// MaxWays is the largest supported associativity: a Bundle holds one
// candidate per way in fixed storage so that window-granularity reads
// never allocate.
const MaxWays = 16

// IndexHash selects how a (last-byte) PC's block number is folded into
// a set index. The choice is a per-backend microarchitectural property
// (internal/uarch): Intel generations use the low block bits directly,
// while the Arm cores reverse-engineered in arXiv 2412.05413 XOR higher
// PC bits into the index.
type IndexHash uint8

const (
	// HashModulo is the Intel scheme: set = block mod Sets. The zero
	// value, so every pre-backend Config keeps its exact behavior.
	HashModulo IndexHash = iota
	// HashFold is the Arm scheme: the next setBits-wide field of the
	// block number is XOR-folded into the low bits before the modulo,
	// so congruent blocks 2^setBits apart land in different sets. The
	// (set, tag) pair still uniquely identifies a block — folding
	// permutes set placement without introducing model-level aliasing.
	HashFold
)

// Config describes a BTB geometry. The zero value is invalid; use one of
// the generation constructors or fill every field.
type Config struct {
	// Sets is the number of sets; must be a power of two.
	Sets int
	// Ways is the associativity.
	Ways int
	// OffsetBits is the width of the intra-block offset field; 5 on all
	// modeled generations (32-byte prediction windows).
	OffsetBits int
	// TagTopBit is the lowest ignored address bit: lookup uses address
	// bits [0, TagTopBit). 32 → 4 GiB aliasing, 33 → 8 GiB aliasing.
	TagTopBit int
	// IndexHash selects the set-index derivation (see the constants).
	IndexHash IndexHash
	// ExactMatch disables the range-query semantics: a lookup hits only
	// an entry whose offset equals the fetch offset. No real processor
	// works this way (superscalar fetch needs range queries); the flag
	// exists for the DESIGN.md ablation showing the attack's binary
	// search depends on Takeaway 2.
	ExactMatch bool
}

// Generation constructors, matching the paper's footnote 1.

// ConfigSkyLake returns the geometry used for the SkyLake, KabyLake,
// CoffeeLake and CascadeLake experiments: 4 GiB aliasing distance.
func ConfigSkyLake() Config {
	return Config{Sets: 512, Ways: 8, OffsetBits: 5, TagTopBit: 32}
}

// ConfigIceLake returns the IceLake geometry: 8 GiB aliasing distance.
func ConfigIceLake() Config {
	return Config{Sets: 1024, Ways: 8, OffsetBits: 5, TagTopBit: 33}
}

// ConfigArm returns the geometry modeled after the Cortex-class cores
// reverse-engineered in "Branch Target Buffer Reverse Engineering on
// Arm" (arXiv 2412.05413): more sets at lower associativity than the
// Intel parts, an XOR-folded set index, and 4 GiB tag truncation. The
// prediction window stays 32 bytes — the attack machinery in
// internal/core assumes that block size. The matching non-branch-update
// policy difference (no decode-time false-hit deallocation) lives in
// cpu.Config.NoFalseHitDealloc, wired up by internal/uarch.
func ConfigArm() Config {
	return Config{Sets: 2048, Ways: 4, OffsetBits: 5, TagTopBit: 32, IndexHash: HashFold}
}

// ConfigFullTag returns a SkyLake-sized BTB whose tag covers the entire
// 64-bit address. No cross-region aliasing exists with this geometry; it
// exists for the ablation benchmarks showing the attack depends on tag
// truncation.
func ConfigFullTag() Config {
	return Config{Sets: 512, Ways: 8, OffsetBits: 5, TagTopBit: 64}
}

// BlockSize returns the prediction-window block size in bytes.
func (c Config) BlockSize() uint64 { return 1 << c.OffsetBits }

func (c Config) validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("btb: Sets must be a positive power of two, got %d", c.Sets)
	}
	if c.Ways <= 0 || c.Ways > MaxWays {
		return fmt.Errorf("btb: Ways must be in [1,%d], got %d", MaxWays, c.Ways)
	}
	if c.OffsetBits <= 0 || c.OffsetBits > 8 {
		return fmt.Errorf("btb: OffsetBits must be in [1,8], got %d", c.OffsetBits)
	}
	setBits := bits.TrailingZeros(uint(c.Sets))
	if c.TagTopBit < c.OffsetBits+setBits || c.TagTopBit > 64 {
		return fmt.Errorf("btb: TagTopBit %d out of range", c.TagTopBit)
	}
	return nil
}

// Entry is one BTB entry. Entries are keyed on the address of the last
// byte of the branch they describe.
type Entry struct {
	Valid  bool
	Tag    uint64
	Offset uint8 // intra-block offset of the branch's last byte
	Target uint64
	Kind   isa.Kind
	Domain Domain
	lru    uint64
	epoch  uint64 // entry is live only when this matches the BTB's epoch
}

// Hit describes the outcome of a successful Lookup.
type Hit struct {
	// BranchPC is the predicted branch position reconstructed in the
	// *fetch* block: same block as the fetch PC, entry's offset. When the
	// entry was allocated by aliased code 4 GiB away, this points at
	// whatever bytes happen to live there — the false-hit mechanism.
	BranchPC uint64
	Target   uint64
	Kind     isa.Kind
	set, way int
}

// Stats counts BTB events for experiments and debugging.
type Stats struct {
	Lookups     uint64
	Hits        uint64
	Allocs      uint64
	Updates     uint64
	Invalidates uint64
	Evictions   uint64
}

// Obs holds optional observability counters mirroring Stats. Nil
// counters are no-ops (see internal/obs), so an unobserved BTB pays one
// predictable branch per event. Callers running BTBs in parallel should
// attach private shard counters and fold them into a shared registry at
// a task boundary rather than sharing counters across cores.
type Obs struct {
	Lookups     *obs.Counter
	Hits        *obs.Counter
	Allocs      *obs.Counter
	Updates     *obs.Counter
	Invalidates *obs.Counter
	Evictions   *obs.Counter
}

// BTB is the branch target buffer. Not safe for concurrent use.
type BTB struct {
	cfg Config
	// entries is the flat banked [bank][set/banks][way] store; rowBase
	// maps a logical set index to its row.
	entries  []Entry
	setBits  int
	bankBits int
	bankSets int // sets per bank
	// epoch implements O(1) Flush: an entry is live only when its epoch
	// matches. Flush bumps the epoch instead of walking the array —
	// experiment harnesses flush between every measurement, and pooled
	// cores flush on every recycle.
	epoch    uint64
	lruClock uint64
	ibrs     bool
	domain   Domain
	stats    Stats
	obs      Obs
}

// New returns an empty BTB with the given geometry. It panics on an
// invalid configuration (geometries are compile-time constants in
// practice).
func New(cfg Config) *BTB {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	setBits := bits.TrailingZeros(uint(cfg.Sets))
	bankBits := bits.TrailingZeros(Banks)
	if setBits < bankBits {
		bankBits = setBits
	}
	return &BTB{
		cfg:      cfg,
		entries:  make([]Entry, cfg.Sets*cfg.Ways),
		setBits:  setBits,
		bankBits: bankBits,
		bankSets: cfg.Sets >> bankBits,
		epoch:    1,
	}
}

// rowBase returns the index into the flat entry array of the first way
// of the given logical set. The low bits of the set select the bank, so
// sequential blocks land in distinct banks.
func (b *BTB) rowBase(set int) int {
	bank := set & (1<<b.bankBits - 1)
	return (bank*b.bankSets + set>>b.bankBits) * b.cfg.Ways
}

// row returns the entry slice of one logical set.
func (b *BTB) row(set int) []Entry {
	base := b.rowBase(set)
	return b.entries[base : base+b.cfg.Ways]
}

// live reports whether the entry is valid in the current epoch.
func (b *BTB) live(e *Entry) bool { return e.Valid && e.epoch == b.epoch }

// Config returns the geometry the BTB was built with.
func (b *BTB) Config() Config { return b.cfg }

// Stats returns a copy of the event counters.
func (b *BTB) Stats() Stats { return b.stats }

// ResetStats zeroes the event counters.
func (b *BTB) ResetStats() { b.stats = Stats{} }

// SetObs attaches (or, with the zero Obs, detaches) observability
// counters. Counters only ever receive increments — the BTB never reads
// them back — so attaching them cannot change simulation results.
func (b *BTB) SetObs(o Obs) { b.obs = o }

// index splits a (last-byte) PC into set index, tag and offset, using
// only address bits below TagTopBit.
func (b *BTB) index(pc uint64) (set int, tag uint64, offset uint8) {
	truncated := pc
	if b.cfg.TagTopBit < 64 {
		truncated &= (1 << b.cfg.TagTopBit) - 1
	}
	offset = uint8(truncated & (b.cfg.BlockSize() - 1))
	block := truncated >> b.cfg.OffsetBits
	indexed := block
	if b.cfg.IndexHash == HashFold {
		// Arm scheme: XOR the next setBits-wide field into the low bits.
		// The tag stays block>>setBits, so the original low bits are
		// recoverable as set ^ (tag & (Sets-1)): no information is lost
		// and (set, tag) still uniquely identifies a block.
		indexed ^= block >> b.setBits
	}
	set = int(indexed & uint64(b.cfg.Sets-1))
	tag = block >> b.setBits
	return set, tag, offset
}

// SetIBRS enables or disables Indirect Branch Restricted Speculation.
// While enabled, Lookup refuses to use indirect-branch entries allocated
// in a different domain — and nothing else, matching Intel's documented
// scope (§4.1).
func (b *BTB) SetIBRS(on bool) { b.ibrs = on }

// SetDomain sets the current predictor domain used to tag new entries
// and filter indirect entries under IBRS.
func (b *BTB) SetDomain(d Domain) { b.domain = d }

// Domain returns the current predictor domain.
func (b *BTB) Domain() Domain { return b.domain }

// IBPB issues an Indirect Branch Predictor Barrier: it invalidates
// entries for indirect branches only. Direct-branch entries — the ones
// NightVision uses — survive, matching the official security claims.
func (b *BTB) IBPB() {
	for i := range b.entries {
		e := &b.entries[i]
		if b.live(e) && e.Kind.IsIndirect() {
			e.Valid = false
			b.stats.Invalidates++
			b.obs.Invalidates.Inc()
		}
	}
}

// Reset returns the BTB to its post-New state: every entry invalid,
// LRU clock, stats, domain and IBRS cleared. Unlike Flush it is a full
// re-initialization, used when a pooled simulator core is recycled.
func (b *BTB) Reset() {
	b.Flush()
	b.lruClock = 0
	b.ibrs = false
	b.domain = 0
	b.stats = Stats{}
	b.obs = Obs{}
}

// Flush invalidates every entry. Real processors expose no such
// instruction (the paper's flushBTB routine executes a jump slide to
// evict entries; see internal/asm/snippets); Flush exists for experiment
// setup and for the BTB-flushing defense ablation. It runs in O(1) by
// advancing the validity epoch.
func (b *BTB) Flush() {
	b.epoch++
}

// Lookup performs a fetch-time prediction lookup at fetchPC.
//
// Per Takeaway 2 it returns the valid entry with matching tag and set
// whose offset is >= the fetch PC's offset, preferring the smallest such
// offset. The returned Hit reconstructs the predicted branch position
// within the fetch block.
//
// Lookup does not refresh the winner's LRU stamp: a range hit may yet be
// classified by decode as a false hit (and deallocated) or walked past
// without being consumed. The front end stamps confirmed predictions via
// Touch; stamping in Lookup let entries that only ever produced false
// hits age genuinely live victims out of the set.
func (b *BTB) Lookup(fetchPC uint64) (Hit, bool) {
	b.stats.Lookups++
	b.obs.Lookups.Inc()
	set, tag, offset := b.index(fetchPC)
	row := b.row(set)
	best := -1
	for w := range row {
		e := &row[w]
		if !b.live(e) || e.Tag != tag || e.Offset < offset {
			continue
		}
		if b.cfg.ExactMatch && e.Offset != offset {
			continue
		}
		if b.ibrs && e.Kind.IsIndirect() && e.Domain != b.domain {
			continue // IBRS: cross-domain indirect predictions restricted
		}
		if best < 0 || e.Offset < row[best].Offset {
			best = w
		}
	}
	if best < 0 {
		return Hit{}, false
	}
	b.stats.Hits++
	b.obs.Hits.Inc()
	e := &row[best]
	blockBase := fetchPC &^ (b.cfg.BlockSize() - 1)
	return Hit{
		BranchPC: blockBase | uint64(e.Offset),
		Target:   e.Target,
		Kind:     e.Kind,
		set:      set,
		way:      best,
	}, true
}

// Bundle is the prediction-window-granularity read of the BTB: one
// banked scan of the fetch block's set collects every candidate branch
// in the window, sorted by offset. The front end fills it once per
// 32-byte window (FillBundle) and consults it as decode walks the
// window (Bundle.Lookup), which answers each consultation from the
// fixed-size candidate list instead of re-scanning the set.
//
// A Bundle is a snapshot keyed to one walk of one window. Entries the
// walk itself deallocates (decode-time false hits) are skipped at
// consultation time; fetch never updates entries of the window it is
// still walking, so no other mid-walk mutation exists.
type Bundle struct {
	btb     *BTB
	base    uint64 // untruncated block base of the window
	rowBase int
	set     int
	n       int
	offs    [MaxWays]uint8
	ways    [MaxWays]uint8
}

// FillBundle loads the candidate branches of fetchPC's prediction
// window into bu. It performs the banked array read but no prediction:
// accounting (Lookups/Hits) happens per consultation, which is what a
// per-decode-step associative lookup would have counted.
func (b *BTB) FillBundle(bu *Bundle, fetchPC uint64) {
	set, tag, _ := b.index(fetchPC)
	bu.btb = b
	bu.base = fetchPC &^ (b.cfg.BlockSize() - 1)
	bu.rowBase = b.rowBase(set)
	bu.set = set
	bu.n = 0
	row := b.entries[bu.rowBase : bu.rowBase+b.cfg.Ways]
	for w := range row {
		e := &row[w]
		if !b.live(e) || e.Tag != tag {
			continue
		}
		if b.ibrs && e.Kind.IsIndirect() && e.Domain != b.domain {
			continue
		}
		// Insertion sort ascending by offset; earlier ways win ties,
		// matching Lookup's scan order. Offsets are unique per tag in
		// practice (Update dedups), so ties cannot occur.
		i := bu.n
		for i > 0 && bu.offs[i-1] > e.Offset {
			bu.offs[i] = bu.offs[i-1]
			bu.ways[i] = bu.ways[i-1]
			i--
		}
		bu.offs[i] = e.Offset
		bu.ways[i] = uint8(w)
		bu.n++
	}
}

// Lookup consults the bundle at fetchPC, which must lie in the window
// the bundle was filled for. Semantics and statistics accounting are
// identical to BTB.Lookup at the same PC: the candidate with the
// smallest offset >= the fetch offset wins, and candidates whose entry
// has since been deallocated are skipped.
func (bu *Bundle) Lookup(fetchPC uint64) (Hit, bool) {
	b := bu.btb
	b.stats.Lookups++
	b.obs.Lookups.Inc()
	offset := uint8(fetchPC & (b.cfg.BlockSize() - 1))
	for i := 0; i < bu.n; i++ {
		if bu.offs[i] < offset {
			continue
		}
		if b.cfg.ExactMatch && bu.offs[i] != offset {
			continue
		}
		w := int(bu.ways[i])
		e := &b.entries[bu.rowBase+w]
		if !b.live(e) {
			continue // deallocated by this walk's own false hits
		}
		b.stats.Hits++
		b.obs.Hits.Inc()
		return Hit{
			BranchPC: bu.base | uint64(bu.offs[i]),
			Target:   e.Target,
			Kind:     e.Kind,
			set:      bu.set,
			way:      w,
		}, true
	}
	return Hit{}, false
}

// Touch refreshes the LRU stamp of the exact entry a Lookup returned.
// The CPU front end calls this when it consumes the prediction — the
// entry survived decode-time false-hit classification and steered fetch.
// Touching a since-invalidated entry is a no-op.
func (b *BTB) Touch(h Hit) {
	e := &b.row(h.set)[h.way]
	if !b.live(e) {
		return
	}
	b.lruClock++
	e.lru = b.lruClock
}

// Update allocates or refreshes the entry for a taken branch whose last
// byte is at lastBytePC. The execution engine calls this when a taken
// control transfer resolves without a correct BTB prediction.
func (b *BTB) Update(lastBytePC, target uint64, kind isa.Kind) {
	set, tag, offset := b.index(lastBytePC)
	row := b.row(set)
	b.lruClock++
	// Exact re-use of an existing entry for this branch.
	for w := range row {
		e := &row[w]
		if b.live(e) && e.Tag == tag && e.Offset == offset {
			e.Target = target
			e.Kind = kind
			e.Domain = b.domain
			e.lru = b.lruClock
			b.stats.Updates++
			b.obs.Updates.Inc()
			return
		}
	}
	// Allocate: first invalid way, else LRU victim.
	victim := 0
	foundInvalid := false
	for w := range row {
		e := &row[w]
		if !b.live(e) {
			victim = w
			foundInvalid = true
			break
		}
		if e.lru < row[victim].lru {
			victim = w
		}
	}
	if !foundInvalid {
		b.stats.Evictions++
		b.obs.Evictions.Inc()
	}
	row[victim] = Entry{
		Valid:  true,
		Tag:    tag,
		Offset: offset,
		Target: target,
		Kind:   kind,
		Domain: b.domain,
		lru:    b.lruClock,
		epoch:  b.epoch,
	}
	b.stats.Allocs++
	b.obs.Allocs.Inc()
}

// Invalidate deallocates the entry keyed at lastBytePC, if present, and
// reports whether an entry was removed. The CPU front end calls this on
// decode-time false hits (Takeaway 1).
func (b *BTB) Invalidate(lastBytePC uint64) bool {
	set, tag, offset := b.index(lastBytePC)
	row := b.row(set)
	for w := range row {
		e := &row[w]
		if b.live(e) && e.Tag == tag && e.Offset == offset {
			e.Valid = false
			b.stats.Invalidates++
			b.obs.Invalidates.Inc()
			return true
		}
	}
	return false
}

// InvalidateHit deallocates the exact entry a Lookup returned. Equivalent
// to Invalidate on the hit's entry key but immune to re-indexing races.
func (b *BTB) InvalidateHit(h Hit) {
	e := &b.row(h.set)[h.way]
	if b.live(e) {
		e.Valid = false
		b.stats.Invalidates++
		b.obs.Invalidates.Inc()
	}
}

// EntryAt reports the entry keyed at lastBytePC, if one exists. Intended
// for tests and experiment instrumentation; attacks must not use it.
func (b *BTB) EntryAt(lastBytePC uint64) (Entry, bool) {
	set, tag, offset := b.index(lastBytePC)
	row := b.row(set)
	for w := range row {
		e := &row[w]
		if b.live(e) && e.Tag == tag && e.Offset == offset {
			return *e, true
		}
	}
	return Entry{}, false
}

// ValidCount returns the number of valid entries; for tests.
func (b *BTB) ValidCount() int {
	n := 0
	for i := range b.entries {
		if b.live(&b.entries[i]) {
			n++
		}
	}
	return n
}
