package btb

import (
	"testing"

	"repro/internal/isa"
)

// TestLookupAllocs gates the flat banked layout: Lookup, FillBundle and
// Update walk the [bank][set][way] array in place and must never
// allocate, hit or miss. The pre-flattening map-of-slices layout
// allocated on fill and forced pointer chasing on every probe.
func TestLookupAllocs(t *testing.T) {
	b := skylake()
	// Populate a spread of sets so lookups exercise hits, misses and
	// multi-candidate blocks.
	for i := uint64(0); i < 4096; i++ {
		b.Update(0x40_0000+i*96+31, 0x50_0000+i, isa.KindJump)
	}

	check := func(name string, f func()) {
		t.Helper()
		if avg := testing.AllocsPerRun(200, f); avg != 0 {
			t.Errorf("%s allocates %v objects/op, want 0", name, avg)
		}
	}

	var i uint64
	check("BTB.Lookup", func() {
		b.Lookup(0x40_0000 + (i%4096)*96)
		i++
	})
	var bu Bundle
	check("BTB.FillBundle", func() {
		b.FillBundle(&bu, 0x40_0000+(i%4096)*96)
		bu.Lookup(0x40_0000 + (i%4096)*96)
		i++
	})
	check("BTB.Update", func() {
		b.Update(0x40_0000+(i%4096)*96+31, 0x50_0000, isa.KindJump)
		i++
	})
	check("BTB.Flush", func() {
		b.Flush()
	})
}

// TestLookupAllocsArm runs the same gates on the Arm geometry: the fold
// hash is pure integer arithmetic inside index(), so the backend switch
// must not reintroduce allocations anywhere on the lookup/Bundle path.
func TestLookupAllocsArm(t *testing.T) {
	b := New(ConfigArm())
	for i := uint64(0); i < 4096; i++ {
		b.Update(0x40_0000+i*96+31, 0x50_0000+i, isa.KindJump)
	}

	check := func(name string, f func()) {
		t.Helper()
		if avg := testing.AllocsPerRun(200, f); avg != 0 {
			t.Errorf("%s allocates %v objects/op, want 0", name, avg)
		}
	}

	var i uint64
	check("BTB.Lookup/arm", func() {
		b.Lookup(0x40_0000 + (i%4096)*96)
		i++
	})
	var bu Bundle
	check("BTB.FillBundle/arm", func() {
		b.FillBundle(&bu, 0x40_0000+(i%4096)*96)
		bu.Lookup(0x40_0000 + (i%4096)*96)
		i++
	})
	check("BTB.Update/arm", func() {
		b.Update(0x40_0000+(i%4096)*96+31, 0x50_0000, isa.KindJump)
		i++
	})
}
