// Package cluster turns a set of nightvisiond daemons into a fleet.
//
// Membership is static — every node is configured with the same
// (id, address) peer table — and coordination is deliberately thin:
//
//   - Ownership. A consistent-hash ring (ring.go) over the
//     content-addressed store keyspace assigns every result cell an
//     owning node. Submissions for a cell a node does not own are
//     forwarded to the owner; GET results are served from any node via
//     peer read-through with a local LRU fill.
//
//   - Work stealing. An idle node polls peers' queue depths (the
//     jobs_queue_depth gauge from /v1/metrics) and claims queued jobs
//     through a journaled claim/ack handshake: the victim journals the
//     handoff (TypeStolen) before releasing the job, the thief computes
//     and acks the terminal state with the result bytes, and the victim
//     reclaims (TypeReclaimed) if the thief goes silent. The terminal
//     state lives solely on the victim, so a job reaches exactly one
//     terminal state no matter how the handshake races.
//
//   - Failover. Each node ships its sealed WAL segments to its ring
//     successor. When a peer dies (health-probe transitions), the first
//     live successor replays the shipped segments and adopts every job
//     that never reached a terminal state; adoptions are journaled
//     (TypeAdopted) so an adopter restart does not re-adopt.
//
// None of this needs consensus because results are content-addressed
// and bit-deterministic: any double execution — steal racing a
// reclaim, an adopted job whose origin comes back — produces identical
// bytes, so duplicates cost time, never correctness.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/jobs"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/store"
)

// Config wires a Node into a daemon.
type Config struct {
	// Self is this node's ID; it must appear in Peers.
	Self string
	// Peers maps node ID to base address ("host:port" or full URL) for
	// every cluster member, including Self.
	Peers map[string]string
	// VNodes is the ring's virtual points per node (<= 0 means 64).
	VNodes int

	// Engine, Registry and Store are the daemon's own instances.
	Engine   *jobs.Engine
	Registry *registry.Registry
	Store    *store.Store
	// Journal is the daemon's WAL (segment source for shipping, sink
	// for TypeAdopted dedup records). Nil disables shipping and makes
	// adoptions non-durable across adopter restarts.
	Journal *journal.Journal
	// ReplicaDir is where peers' shipped segments land
	// (<ReplicaDir>/<origin>/seg-*.ndjson). Empty disables receiving.
	ReplicaDir string
	// Obs receives the per-peer cluster metrics; nil disables them.
	Obs *obs.Registry

	// HealthInterval paces peer liveness probes (<= 0 means 2s); a peer
	// is dead after two consecutive probe failures.
	HealthInterval time.Duration
	// ShipInterval paces WAL segment shipping to the ring successor
	// (<= 0 means 2×HealthInterval). Each tick seals the active file
	// (when non-empty) so pending records become shippable.
	ShipInterval time.Duration
	// StealInterval paces the idle-node steal poll (<= 0 means
	// 2×HealthInterval).
	StealInterval time.Duration
	// StealThreshold is the minimum peer queue depth worth stealing
	// from (<= 0 means 2).
	StealThreshold int
	// StealTimeout is how long a victim waits for a thief's ack before
	// reclaiming the job (<= 0 means 30s).
	StealTimeout time.Duration

	// Base is the underlying RoundTripper for all peer traffic; nil
	// means http.DefaultTransport. Tests inject a netchaos fault
	// transport here.
	Base http.RoundTripper
	// AttemptTimeout is the per-attempt *idle* deadline on peer
	// requests (<= 0 means 5s): an attempt dies only after this long
	// with no bytes moving, so a multi-megabyte WAL segment crawling
	// over a slow link survives where the old flat whole-request
	// timeout killed it.
	AttemptTimeout time.Duration
	// TotalBudget bounds one logical call's retry loop
	// (<= 0 means 6×AttemptTimeout).
	TotalBudget time.Duration
	// Retries is the number of re-attempts after a retryable failure
	// (0 means 3, -1 disables retries).
	Retries int
	// BackoffBase/BackoffMax shape the jittered exponential backoff
	// between attempts (<= 0 means 50ms base, 2s cap). The jitter is
	// drawn from a seeded nvrand stream, never math/rand.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BreakerThreshold consecutive failures open a peer's circuit
	// breaker (<= 0 means 5); BreakerCooldown later a single half-open
	// trial is admitted (<= 0 means 2s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// PhiThreshold is the phi-accrual suspicion score at which a peer
	// is declared dead (<= 0 means 8 — roughly 18 silent probe
	// intervals on a historically fast link, more on a slow one).
	PhiThreshold float64
	// HedgeDelay staggers hedged read-through legs (0 derives the
	// stagger from the observed p99 attempt latency).
	HedgeDelay time.Duration
	// Seed feeds the transport's deterministic backoff jitter.
	Seed uint64
}

// peerMetrics is the per-peer labeled instrument set; all fields are
// nil-safe no-ops when Config.Obs was nil.
type peerMetrics struct {
	forwards     *obs.Counter
	forwardErrs  *obs.Counter
	steals       *obs.Counter
	rtHits       *obs.Counter
	rtMisses     *obs.Counter
	shipBytes    *obs.Counter
	recvBytes    *obs.Counter
	transitions  *obs.Counter
	adoptions    *obs.Counter
	alive        *obs.Gauge
	phiX100      *obs.Gauge
	ckRejects    *obs.Counter
	reships      *obs.Counter
	corruptSkips *obs.Counter
}

func newPeerMetrics(r *obs.Registry, peer string) peerMetrics {
	l := obs.Labels{"peer": peer}
	return peerMetrics{
		forwards:    r.CounterL("cluster_forwards_total", "submissions forwarded to the ring owner, by peer", l),
		forwardErrs: r.CounterL("cluster_forward_failures_total", "forward attempts that failed transport (ran locally instead), by peer", l),
		steals:      r.CounterL("cluster_steals_total", "jobs stolen from a peer's queue by this node, by victim", l),
		rtHits:      r.CounterL("cluster_readthrough_hits_total", "peer read-through probes answered from the peer's store, by peer", l),
		rtMisses:    r.CounterL("cluster_readthrough_misses_total", "peer read-through probes the peer could not answer, by peer", l),
		shipBytes:   r.CounterL("cluster_segment_ship_bytes_total", "WAL segment bytes shipped to the ring successor, by peer", l),
		recvBytes:   r.CounterL("cluster_segment_recv_bytes_total", "WAL segment bytes received from peers, by origin", l),
		transitions: r.CounterL("cluster_peer_health_transitions_total", "peer liveness flips observed (either direction), by peer", l),
		adoptions:   r.CounterL("cluster_adoptions_total", "jobs adopted from a dead peer's shipped WAL, by origin", l),
		alive:       r.GaugeL("cluster_peer_alive", "peer liveness as seen by this node (1 = alive)", l),
		phiX100:     r.GaugeL("cluster_peer_phi_x100", "phi-accrual suspicion score ×100, by peer", l),
		ckRejects: r.CounterL("cluster_segment_checksum_rejects_total",
			"received WAL segments rejected for a digest or trailer mismatch, by origin", l),
		reships: r.CounterL("cluster_segment_reships_total",
			"WAL segment re-ship attempts after a checksum reject or transport failure, by peer", l),
		corruptSkips: r.CounterL("cluster_segment_corrupt_replay_skips_total",
			"replica segments skipped at adoption because their trailer failed verification, by origin", l),
	}
}

// Node is one cluster member's peer layer. Create with New, attach
// routes with RegisterRoutes, start the background loops with Start.
type Node struct {
	cfg   Config
	ring  *Ring
	tp    *Transport   // hardened peer HTTP layer (retries, breakers, hedging)
	phi   *phiDetector // phi-accrual liveness scoring
	peers map[string]string // id -> normalized base URL (excludes self)
	pm    map[string]peerMetrics

	mu        sync.Mutex
	alive     map[string]bool
	shippedTo map[string]string // sealed segment -> peer it reached
	adopted   map[string]bool   // "origin/originJobID" dedup set
	// forwarded remembers which peer accepted each forwarded submission
	// (job ID -> owner), bounded FIFO, so GET /v1/jobs/{id}/trace on the
	// accepting node can proxy to the node that actually ran the job.
	forwarded    map[string]string
	forwardOrder []string

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	stop   chan struct{}
	once   sync.Once
}

// New builds the node. It validates membership, normalizes peer
// addresses, registers the per-peer metrics, and seeds the adoption
// dedup set from the journal's replayed TypeAdopted records.
func New(cfg Config) (*Node, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: empty self node ID")
	}
	if _, ok := cfg.Peers[cfg.Self]; !ok {
		return nil, fmt.Errorf("cluster: self %q not in peer table", cfg.Self)
	}
	if cfg.Engine == nil || cfg.Registry == nil {
		return nil, fmt.Errorf("cluster: engine and registry are required")
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = 2 * time.Second
	}
	if cfg.ShipInterval <= 0 {
		cfg.ShipInterval = 2 * cfg.HealthInterval
	}
	if cfg.StealInterval <= 0 {
		cfg.StealInterval = 2 * cfg.HealthInterval
	}
	if cfg.StealThreshold <= 0 {
		cfg.StealThreshold = 2
	}
	if cfg.StealTimeout <= 0 {
		cfg.StealTimeout = 30 * time.Second
	}
	if cfg.PhiThreshold <= 0 {
		cfg.PhiThreshold = 8
	}

	ids := make([]string, 0, len(cfg.Peers))
	for id := range cfg.Peers {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	n := &Node{
		cfg:  cfg,
		ring: NewRing(ids, cfg.VNodes),
		tp: NewTransport(TransportConfig{
			Base:             cfg.Base,
			AttemptTimeout:   cfg.AttemptTimeout,
			TotalBudget:      cfg.TotalBudget,
			Retries:          cfg.Retries,
			BackoffBase:      cfg.BackoffBase,
			BackoffMax:       cfg.BackoffMax,
			BreakerThreshold: cfg.BreakerThreshold,
			BreakerCooldown:  cfg.BreakerCooldown,
			HedgeDelay:       cfg.HedgeDelay,
			Seed:             cfg.Seed,
			Obs:              cfg.Obs,
		}),
		phi:       newPhiDetector(cfg.HealthInterval),
		peers:     make(map[string]string),
		pm:        make(map[string]peerMetrics),
		alive:     make(map[string]bool),
		shippedTo: make(map[string]string),
		adopted:   make(map[string]bool),
		forwarded: make(map[string]string),
		stop:      make(chan struct{}),
	}
	n.ctx, n.cancel = context.WithCancel(context.Background())
	now := time.Now()
	for _, id := range ids {
		if id == cfg.Self {
			continue
		}
		addr := cfg.Peers[id]
		if !strings.Contains(addr, "://") {
			addr = "http://" + addr
		}
		n.peers[id] = strings.TrimRight(addr, "/")
		n.pm[id] = newPeerMetrics(cfg.Obs, id)
		// Optimistic start: peers boot in arbitrary order, and a node
		// that has never been seen up has shipped us nothing to adopt.
		// The phi window is seeded now so the grace period before a
		// never-seen peer is condemned starts at boot.
		n.alive[id] = true
		n.pm[id].alive.Set(1)
		n.phi.boot(id, now)
	}
	if cfg.Journal != nil {
		for _, rec := range cfg.Journal.Records() {
			if rec.Type == journal.TypeAdopted && rec.Node != "" && rec.OriginJob != "" {
				n.adopted[rec.Node+"/"+rec.OriginJob] = true
			}
		}
	}
	return n, nil
}

// Start launches the health, ship, steal and reclaim loops.
func (n *Node) Start() {
	loops := []struct {
		every time.Duration
		tick  func()
	}{
		{n.cfg.HealthInterval, n.healthTick},
		{n.cfg.ShipInterval, n.shipTick},
		{n.cfg.StealInterval, n.stealTick},
		{n.cfg.StealInterval, n.reclaimTick},
	}
	for _, l := range loops {
		n.wg.Add(1)
		go func(every time.Duration, tick func()) {
			defer n.wg.Done()
			t := time.NewTicker(every)
			defer t.Stop()
			for {
				select {
				case <-n.stop:
					return
				case <-t.C:
					tick()
				}
			}
		}(l.every, l.tick)
	}
}

// Stop halts the loops and waits for in-flight stolen-job runs to
// either finish or observe cancellation.
func (n *Node) Stop() {
	n.once.Do(func() {
		close(n.stop)
		n.cancel()
	})
	n.wg.Wait()
}

// Ring exposes the membership ring (tests, status endpoint).
func (n *Node) Ring() *Ring { return n.ring }

// Alive reports this node's current liveness view of peer id (self is
// always alive).
func (n *Node) Alive(id string) bool {
	if id == n.cfg.Self {
		return true
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.alive[id]
}

// ---------------------------------------------------------------------
// Peer HTTP plumbing.

func (n *Node) peerURL(id, path string) (string, bool) {
	base, ok := n.peers[id]
	if !ok {
		return "", false
	}
	return base + path, true
}

// Transport exposes the node's hardened peer HTTP layer (tests,
// breaker inspection).
func (n *Node) Transport() *Transport { return n.tp }

// getJSON fetches a peer endpoint and decodes its JSON body into out.
// Goes through the hardened transport: retries, breaker, idle deadline.
func (n *Node) getJSON(id, path string, out any) error {
	url, ok := n.peerURL(id, path)
	if !ok {
		return fmt.Errorf("cluster: unknown peer %q", id)
	}
	resp, err := n.tp.Do(n.ctx, Call{Peer: id, Method: http.MethodGet, URL: url})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: %s: HTTP %d", path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// postJSON posts a JSON body to a peer endpoint, decoding the response
// into out when non-nil. Retries ride on the handlers' idempotency:
// steal claims carry claim IDs, acks are first-terminal-wins, segment
// receives overwrite atomically.
func (n *Node) postJSON(id, path string, in, out any) error {
	url, ok := n.peerURL(id, path)
	if !ok {
		return fmt.Errorf("cluster: unknown peer %q", id)
	}
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	hdr := make(http.Header)
	hdr.Set("Content-Type", "application/json")
	resp, err := n.tp.Do(n.ctx, Call{Peer: id, Method: http.MethodPost, URL: url, Header: hdr, Body: body})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("cluster: %s: HTTP %d", path, resp.StatusCode)
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// ---------------------------------------------------------------------
// Forwarding (submit path).

// ForwardSubmit routes a submission to its ring owner. ok=false means
// "run it locally": this node owns the key, the owner is dead, or the
// forward failed transport (degraded mode — local execution still
// yields the canonical bytes). On success it returns the owner's HTTP
// status and response body verbatim plus the owner's ID.
func (n *Node) ForwardSubmit(req jobs.Request) (status int, body []byte, peer string, ok bool) {
	exp, found := n.cfg.Registry.Get(req.Experiment)
	if !found {
		return 0, nil, "", false // local path reports the error
	}
	values, err := exp.Resolve(req.Params)
	if err != nil {
		return 0, nil, "", false
	}
	canon, err := exp.CanonicalConfig(values)
	if err != nil {
		return 0, nil, "", false
	}
	key := store.Key(exp.Name, canon, req.Seed, registry.CodeVersion)
	owner := n.ring.Owner(key)
	if owner == "" || owner == n.cfg.Self || !n.Alive(owner) {
		return 0, nil, "", false
	}
	// The accepting node is the job's first submission point: mint the
	// distributed trace ID here so the forward hop itself is part of the
	// timeline, and carry it in both the request body and the
	// X-Nightvision-Trace header (the header survives intermediaries
	// that re-encode the body). The idempotency key makes the transport's
	// retries safe: a duplicate delivery of the same forward collapses to
	// the first accepted job on the owner.
	if req.TraceID == "" {
		req.TraceID = obs.NewTraceID()
	}
	if req.IdempotencyKey == "" {
		req.IdempotencyKey = "fwd-" + obs.NewTraceID()
	}
	span := n.hub().Fragment(req.TraceID).Begin("hop", "forward", 0,
		map[string]any{"from": n.cfg.Self, "to": owner, "experiment": req.Experiment})
	url, _ := n.peerURL(owner, "/v1/jobs?forwarded=1")
	payload, err := json.Marshal(req)
	if err != nil {
		return 0, nil, "", false
	}
	hdr := make(http.Header)
	hdr.Set("Content-Type", "application/json")
	hdr.Set(TraceHeader, req.TraceID)
	resp, err := n.tp.Do(n.ctx, Call{Peer: owner, Method: http.MethodPost, URL: url, Header: hdr, Body: payload})
	if err != nil {
		n.pm[owner].forwardErrs.Inc()
		span.EndWith(map[string]any{"error": "transport: " + err.Error()})
		return 0, nil, "", false
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		n.pm[owner].forwardErrs.Inc()
		span.EndWith(map[string]any{"error": "read body: " + err.Error()})
		return 0, nil, "", false
	}
	n.pm[owner].forwards.Inc()
	// Remember where the job landed so a trace request arriving here —
	// the node the client actually talked to — can be proxied to the
	// owner instead of 404ing.
	var accepted struct {
		ID string `json:"id"`
	}
	if resp.StatusCode == http.StatusOK && json.Unmarshal(buf.Bytes(), &accepted) == nil && accepted.ID != "" {
		n.rememberForward(accepted.ID, owner)
	}
	span.EndWith(map[string]any{"status": resp.StatusCode, "job": accepted.ID})
	return resp.StatusCode, buf.Bytes(), owner, true
}

// TraceHeader carries the distributed trace ID on forwarded
// submissions.
const TraceHeader = "X-Nightvision-Trace"

// forwardMemory bounds the forwarded-job routing map.
const forwardMemory = 4096

// hub returns the engine's trace hub (nil-safe when tracing is off).
func (n *Node) hub() *obs.TraceHub {
	return n.cfg.Engine.TraceHub()
}

// rememberForward records jobID -> owner, evicting oldest past the cap.
func (n *Node) rememberForward(jobID, owner string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.forwarded[jobID]; !dup {
		n.forwardOrder = append(n.forwardOrder, jobID)
		for len(n.forwardOrder) > forwardMemory {
			delete(n.forwarded, n.forwardOrder[0])
			n.forwardOrder = n.forwardOrder[1:]
		}
	}
	n.forwarded[jobID] = owner
}

// RouteJob names the peer that holds jobID, for jobs this node does not
// hold itself: first the forwarded-submission memory, then the node
// segment of a node-qualified job ID ("job-n2-17" names n2's engine).
// ok=false means the job is unknown here and unroutable.
func (n *Node) RouteJob(jobID string) (peer string, ok bool) {
	n.mu.Lock()
	owner, found := n.forwarded[jobID]
	n.mu.Unlock()
	if found && owner != n.cfg.Self {
		return owner, true
	}
	if minted := jobs.NodeForJobID(jobID); minted != "" && minted != n.cfg.Self {
		if _, known := n.peers[minted]; known {
			return minted, true
		}
	}
	return "", false
}

// ---------------------------------------------------------------------
// Read-through (result path).

// ReadThrough fetches a result cell from peers as a hedged read: the
// ring owner is leg 0, the remaining live peers follow in sorted
// order, each next leg launching after the transport's hedge delay
// (p99 of observed attempt latency) or immediately when the previous
// leg missed. The first 200 wins; slower legs are cancelled. It is
// the engine's RemoteGet hook — the caller has already missed its
// local store and fills its LRU on a hit.
func (n *Node) ReadThrough(key string) ([]byte, bool) {
	owner := n.ring.Owner(key)
	order := make([]string, 0, len(n.peers))
	if owner != "" && owner != n.cfg.Self && n.Alive(owner) {
		order = append(order, owner)
	}
	for _, id := range n.sortedPeerIDs() {
		if id != owner && n.Alive(id) {
			order = append(order, id)
		}
	}
	targets := make([]HedgeTarget, 0, len(order))
	for _, id := range order {
		if url, ok := n.peerURL(id, "/v1/store/"+key); ok {
			targets = append(targets, HedgeTarget{Peer: id, URL: url})
		}
	}
	if len(targets) == 0 {
		return nil, false
	}
	resp, winner, err := n.tp.HedgedGet(n.ctx, nil, targets)
	if err != nil {
		for _, tgt := range targets {
			n.pm[tgt.Peer].rtMisses.Inc()
		}
		return nil, false
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		n.pm[winner].rtMisses.Inc()
		return nil, false
	}
	n.pm[winner].rtHits.Inc()
	return buf.Bytes(), true
}

// ---------------------------------------------------------------------
// Health + failover.

// healthTick probes every peer's /v1/healthz and feeds the phi-accrual
// detector: a successful probe is a heartbeat; silence accrues
// suspicion scaled by the peer's historical inter-arrival times, so a
// consistently slow link needs proportionally longer silence before
// its peer is condemned. A peer whose phi crosses PhiThreshold is
// declared dead; an alive→dead transition triggers adoption if this
// node is the dead peer's first live successor. Probes bypass the
// circuit breaker — they are how an open breaker learns the peer
// recovered.
func (n *Node) healthTick() {
	for id := range n.peers {
		url, _ := n.peerURL(id, "/v1/healthz")
		if err := n.tp.Probe(n.ctx, id, url); err == nil {
			n.probeOK(id)
		}
		now := time.Now()
		phi := n.phi.phi(id, now)
		n.pm[id].phiX100.Set(int64(math.Min(phi, 1000) * 100))
		if phi > n.cfg.PhiThreshold {
			n.suspectDead(id)
		}
	}
}

func (n *Node) probeOK(id string) {
	n.phi.heartbeat(id, time.Now())
	n.mu.Lock()
	was := n.alive[id]
	n.alive[id] = true
	n.mu.Unlock()
	if !was {
		n.pm[id].transitions.Inc()
		n.pm[id].alive.Set(1)
	}
}

// suspectDead flips a peer to dead once its suspicion score crossed
// the threshold. Only the alive→dead edge acts; repeated suspicion of
// an already-dead peer is a no-op (adoption stays edge-triggered).
func (n *Node) suspectDead(id string) {
	n.mu.Lock()
	dead := n.alive[id]
	if dead {
		n.alive[id] = false
	}
	n.mu.Unlock()
	if dead {
		n.pm[id].transitions.Inc()
		n.pm[id].alive.Set(0)
		n.onPeerDeath(id)
	}
}

// onPeerDeath elects the adopter: the dead peer's first live successor
// on the ring. Every live node computes this from its own health view;
// with symmetric views exactly one node adopts. (A split view can
// double-adopt — both copies produce identical bytes, so the overlap
// costs compute, not correctness.)
func (n *Node) onPeerDeath(dead string) {
	adopter := n.ring.SuccessorAmong(dead, n.Alive)
	if adopter != n.cfg.Self {
		return
	}
	n.adoptFrom(dead)
}

// adoptFrom replays the dead peer's shipped WAL segments and resubmits
// every job that never reached a terminal state. Each adoption is
// journaled (TypeAdopted with the origin job ID) so restarts and
// repeated death observations stay idempotent.
func (n *Node) adoptFrom(dead string) {
	if n.cfg.ReplicaDir == "" {
		return
	}
	dir := filepath.Join(n.cfg.ReplicaDir, dead)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return // nothing shipped: nothing to adopt
	}
	var names []string
	for _, e := range ents {
		if journal.IsSegmentName(e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)

	type jobState struct {
		rec      journal.Record
		terminal bool
	}
	jobsByID := make(map[string]*jobState)
	var order []string
	for _, name := range names {
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			continue
		}
		// A replica segment whose integrity trailer does not verify is
		// torn or corrupt: skip it rather than replay damaged records.
		// The origin (or its successor chain) re-ships intact bytes.
		if err := journal.VerifySegment(raw); err != nil {
			n.pm[dead].corruptSkips.Inc()
			continue
		}
		recs, _ := journal.ParseRecords(raw)
		for _, rec := range recs {
			switch {
			case rec.Type == journal.TypeSubmitted:
				if _, dup := jobsByID[rec.JobID]; !dup {
					jobsByID[rec.JobID] = &jobState{rec: rec}
					order = append(order, rec.JobID)
				}
			case rec.Type.Terminal():
				if js, ok := jobsByID[rec.JobID]; ok {
					js.terminal = true
				}
			}
		}
	}

	for _, id := range order {
		js := jobsByID[id]
		if js.terminal {
			continue
		}
		dedupKey := dead + "/" + id
		n.mu.Lock()
		seen := n.adopted[dedupKey]
		if !seen {
			n.adopted[dedupKey] = true
		}
		n.mu.Unlock()
		if seen {
			continue
		}
		var params map[string]any
		if err := json.Unmarshal(js.rec.Config, &params); err != nil {
			continue
		}
		dl := js.rec.DeadlineMS
		if dl <= 0 {
			dl = -1 // journaled deadline is resolved; 0 means none
		}
		// Keep the origin's distributed trace ID (pre-PR-9 shipped WALs
		// have none; the local Submit then mints a fresh one).
		view, err := n.cfg.Engine.Submit(jobs.Request{
			Experiment: js.rec.Experiment,
			Params:     params,
			Seed:       js.rec.Seed,
			Priority:   js.rec.Priority,
			DeadlineMS: dl,
			TraceID:    js.rec.TraceID,
		})
		if err != nil {
			// Shed or shutting down: un-mark so a later death observation
			// (or restart) can retry the adoption.
			n.mu.Lock()
			delete(n.adopted, dedupKey)
			n.mu.Unlock()
			continue
		}
		n.pm[dead].adoptions.Inc()
		n.hub().Fragment(view.TraceID).Event("hop", "adopt", 0,
			map[string]any{"origin": dead, "origin_job": id, "adopter": n.cfg.Self, "local_job": view.ID})
		if n.cfg.Journal != nil {
			n.cfg.Journal.Append(journal.Record{
				Type:      journal.TypeAdopted,
				JobID:     view.ID,
				Key:       js.rec.Key,
				Node:      dead,
				OriginJob: id,
				TraceID:   view.TraceID,
			})
		}
	}
}

// ---------------------------------------------------------------------
// WAL segment shipping.

// shipTick seals the active journal file and ships every sealed
// segment not yet at the current successor. Re-ships after a successor
// change; receivers overwrite idempotently.
func (n *Node) shipTick() {
	if n.cfg.Journal == nil {
		return
	}
	succ := n.ring.Successor(n.cfg.Self)
	if succ == "" || !n.Alive(succ) {
		return
	}
	n.cfg.Journal.SealActive() // "" when empty: nothing new to seal
	segs, err := n.cfg.Journal.Segments()
	if err != nil {
		return
	}
	for _, seg := range segs {
		n.mu.Lock()
		already := n.shippedTo[seg] == succ
		n.mu.Unlock()
		if already {
			continue
		}
		raw, err := n.cfg.Journal.ReadSegment(seg)
		if err != nil {
			continue
		}
		if err := n.shipSegment(succ, seg, raw); err != nil {
			continue // retried next tick
		}
		n.mu.Lock()
		n.shippedTo[seg] = succ
		n.mu.Unlock()
		n.pm[succ].shipBytes.Add(uint64(len(raw)))
	}
}

// SegmentDigestHeader carries the SHA-256 of the shipped segment bytes
// so the receiver can detect in-transit damage (truncation, bit flips)
// independently of the embedded seal trailer.
const SegmentDigestHeader = "X-Nightvision-Segment-SHA256"

// shipSegment POSTs one sealed segment to peer with its digest. A 422
// from the receiver (digest or trailer mismatch — the bytes were
// damaged in transit) is retryable: the transport re-sends the intact
// local bytes and counts the re-ship.
func (n *Node) shipSegment(peer, name string, raw []byte) error {
	url, ok := n.peerURL(peer, "/v1/cluster/segments/"+n.cfg.Self+"/"+name)
	if !ok {
		return fmt.Errorf("cluster: unknown peer %q", peer)
	}
	hdr := make(http.Header)
	hdr.Set("Content-Type", "application/x-ndjson")
	hdr.Set(SegmentDigestHeader, journal.SHA256Hex(raw))
	resp, err := n.tp.Do(n.ctx, Call{
		Peer: peer, Method: http.MethodPost, URL: url, Header: hdr, Body: raw,
		OnRetry: func(status int, err error) {
			n.pm[peer].reships.Inc()
		},
	})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("cluster: ship %s: HTTP %d", name, resp.StatusCode)
	}
	return nil
}

// ---------------------------------------------------------------------
// Work stealing.

// peerDepth reads a peer's jobs_queue_depth gauge from its metrics
// snapshot (-1 when unreachable or absent).
func (n *Node) peerDepth(id string) int {
	var snap []obs.MetricSnapshot
	if err := n.getJSON(id, "/v1/metrics?format=json", &snap); err != nil {
		return -1
	}
	for _, m := range snap {
		if m.Name == "jobs_queue_depth" && len(m.Labels) == 0 && m.Level != nil {
			return int(*m.Level)
		}
	}
	return -1
}

// stealTick claims work from the deepest overloaded peer when this
// node's own queue is empty, then runs each claimed job locally and
// acks its terminal state (with result bytes) back to the victim.
func (n *Node) stealTick() {
	if n.cfg.Engine.Depth() > 0 {
		return
	}
	victim, depth := "", 0
	for id := range n.peers {
		if !n.Alive(id) {
			continue
		}
		if d := n.peerDepth(id); d > depth {
			victim, depth = id, d
		}
	}
	if victim == "" || depth < n.cfg.StealThreshold {
		return
	}
	max := depth / 2
	if max < 1 {
		max = 1
	}
	if max > 8 {
		max = 8
	}
	// The claim ID makes the handshake idempotent under duplicate
	// delivery: a retried or network-duplicated claim returns the same
	// job set instead of stealing twice.
	claim := "claim-" + obs.NewTraceID()
	var stolen []jobs.StolenJob
	if err := n.postJSON(victim, "/v1/cluster/steal", stealRequest{Thief: n.cfg.Self, Max: max, ClaimID: claim}, &stolen); err != nil {
		return
	}
	for _, sj := range stolen {
		n.pm[victim].steals.Inc()
		n.wg.Add(1)
		go n.runStolen(victim, sj)
	}
}

// runStolen executes one stolen job locally and acks the victim. A
// missing ack (thief death, rejection, network) is covered by the
// victim's reclaim timer.
func (n *Node) runStolen(victim string, sj jobs.StolenJob) {
	defer n.wg.Done()
	// The steal hop span lives in the thief's fragment of the victim
	// job's trace: claim -> local run -> ack, attributed to this node.
	span := n.hub().Fragment(sj.TraceID).Begin("hop", "steal", 0,
		map[string]any{"victim": victim, "thief": n.cfg.Self, "origin_job": sj.ID})
	ack := ackRequest{JobID: sj.ID}
	var params map[string]any
	if err := json.Unmarshal(sj.Config, &params); err != nil {
		ack.State = string(jobs.StateFailed)
		ack.Error = "thief: stolen config does not parse: " + err.Error()
		n.postJSON(victim, "/v1/cluster/ack", ack, nil)
		span.EndWith(map[string]any{"error": ack.Error})
		return
	}
	view, err := n.cfg.Engine.Submit(jobs.Request{
		Experiment: sj.Experiment,
		Params:     params,
		Seed:       sj.Seed,
		Priority:   sj.Priority,
		DeadlineMS: sj.DeadlineMS,
		TraceID:    sj.TraceID,
	})
	if err != nil {
		span.EndWith(map[string]any{"error": err.Error()})
		return // no ack: the victim reclaims after StealTimeout
	}
	final, err := n.cfg.Engine.Wait(n.ctx, view.ID)
	if err != nil {
		span.EndWith(map[string]any{"error": err.Error()})
		return
	}
	ack.State = string(final.State)
	ack.Error = final.Error
	if final.State == jobs.StateDone {
		ack.Result = final.Result
	}
	n.postJSON(victim, "/v1/cluster/ack", ack, nil)
	span.EndWith(map[string]any{"state": ack.State, "local_job": view.ID})
}

// reclaimTick is the victim side of steal liveness: jobs handed out
// longer than StealTimeout ago with no ack come back to the queue.
func (n *Node) reclaimTick() {
	n.cfg.Engine.ReclaimStolen(n.cfg.StealTimeout)
}

// ---------------------------------------------------------------------
// HTTP surface.

type stealRequest struct {
	Thief string `json:"thief"`
	Max   int    `json:"max"`
	// ClaimID deduplicates retried/duplicated deliveries of the same
	// claim (empty from pre-PR-10 thieves: every delivery steals).
	ClaimID string `json:"claim_id,omitempty"`
}

type ackRequest struct {
	JobID  string          `json:"job_id"`
	State  string          `json:"state"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// peerStatus is one row of GET /v1/cluster.
type peerStatus struct {
	ID    string `json:"id"`
	Addr  string `json:"addr"`
	Alive bool   `json:"alive"`
	Self  bool   `json:"self,omitempty"`
}

// clusterStatus is GET /v1/cluster.
type clusterStatus struct {
	Self      string       `json:"self"`
	Successor string       `json:"successor,omitempty"`
	VNodes    int          `json:"vnodes"`
	Peers     []peerStatus `json:"peers"`
	Adopted   int          `json:"adopted_jobs"`
}

type clusterError struct {
	Error string `json:"error"`
}

func respondJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// RegisterRoutes attaches the cluster endpoints to the daemon's API
// mux (Go 1.22 method patterns, same style as cmd/nightvisiond).
func (n *Node) RegisterRoutes(mux *http.ServeMux) {
	mux.HandleFunc("GET /v1/cluster", n.handleStatus)
	mux.HandleFunc("GET /v1/cluster/metrics", n.handleFederatedMetrics)
	mux.HandleFunc("GET /v1/cluster/trace/{tid}", n.handleTraceFragment)
	mux.HandleFunc("POST /v1/cluster/steal", n.handleSteal)
	mux.HandleFunc("POST /v1/cluster/ack", n.handleAck)
	mux.HandleFunc("POST /v1/cluster/segments/{origin}/{name}", n.handleSegment)
	mux.HandleFunc("GET /v1/store/{key}", n.handleStoreGet)
	mux.HandleFunc("GET /v1/results/{key}", n.handleResult)
}

func (n *Node) handleStatus(w http.ResponseWriter, r *http.Request) {
	vn := n.cfg.VNodes
	if vn <= 0 {
		vn = 64
	}
	n.mu.Lock()
	adopted := len(n.adopted)
	n.mu.Unlock()
	st := clusterStatus{
		Self:      n.cfg.Self,
		Successor: n.ring.Successor(n.cfg.Self),
		VNodes:    vn,
		Adopted:   adopted,
	}
	for _, id := range n.ring.Nodes() {
		st.Peers = append(st.Peers, peerStatus{
			ID:    id,
			Addr:  n.cfg.Peers[id],
			Alive: n.Alive(id),
			Self:  id == n.cfg.Self,
		})
	}
	respondJSON(w, http.StatusOK, st)
}

func (n *Node) handleSteal(w http.ResponseWriter, r *http.Request) {
	var req stealRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		respondJSON(w, http.StatusBadRequest, clusterError{Error: "bad steal request: " + err.Error()})
		return
	}
	if req.Thief == "" || req.Thief == n.cfg.Self {
		respondJSON(w, http.StatusBadRequest, clusterError{Error: "invalid thief"})
		return
	}
	if _, known := n.peers[req.Thief]; !known {
		respondJSON(w, http.StatusForbidden, clusterError{Error: "unknown thief"})
		return
	}
	if req.Max <= 0 || req.Max > 64 {
		req.Max = 1
	}
	stolen := n.cfg.Engine.StealQueuedClaim(req.ClaimID, req.Thief, req.Max)
	if stolen == nil {
		stolen = []jobs.StolenJob{}
	}
	respondJSON(w, http.StatusOK, stolen)
}

func (n *Node) handleAck(w http.ResponseWriter, r *http.Request) {
	var req ackRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 32<<20)).Decode(&req); err != nil {
		respondJSON(w, http.StatusBadRequest, clusterError{Error: "bad ack: " + err.Error()})
		return
	}
	state := jobs.State(req.State)
	if !state.Terminal() {
		respondJSON(w, http.StatusBadRequest, clusterError{Error: fmt.Sprintf("ack with non-terminal state %q", req.State)})
		return
	}
	if err := n.cfg.Engine.ResolveStolen(req.JobID, state, req.Error, req.Result); err != nil {
		respondJSON(w, http.StatusNotFound, clusterError{Error: err.Error()})
		return
	}
	respondJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleSegment receives one shipped WAL segment from a peer and
// writes it atomically under the replica directory. Origin must be a
// known member and the name a well-formed segment name — both checked
// before any path is formed.
func (n *Node) handleSegment(w http.ResponseWriter, r *http.Request) {
	origin, name := r.PathValue("origin"), r.PathValue("name")
	if _, known := n.peers[origin]; !known {
		respondJSON(w, http.StatusForbidden, clusterError{Error: "unknown origin node"})
		return
	}
	if !journal.IsSegmentName(name) {
		respondJSON(w, http.StatusBadRequest, clusterError{Error: "invalid segment name"})
		return
	}
	if n.cfg.ReplicaDir == "" {
		respondJSON(w, http.StatusServiceUnavailable, clusterError{Error: "segment replication disabled"})
		return
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, 64<<20)); err != nil {
		respondJSON(w, http.StatusBadRequest, clusterError{Error: "read segment: " + err.Error()})
		return
	}
	// Two integrity layers before any byte is persisted: the shipper's
	// digest header catches in-transit damage (truncated or flipped
	// bytes arrive with a consistent Content-Length, so only the digest
	// sees them), and the embedded seal trailer catches at-rest damage
	// on the shipper side. A 422 tells the shipper to re-send; a torn
	// segment is never written where adoption could replay it.
	if want := r.Header.Get(SegmentDigestHeader); want != "" && want != journal.SHA256Hex(buf.Bytes()) {
		n.pm[origin].ckRejects.Inc()
		respondJSON(w, http.StatusUnprocessableEntity, clusterError{Error: "segment digest mismatch"})
		return
	}
	if err := journal.VerifySegment(buf.Bytes()); err != nil {
		n.pm[origin].ckRejects.Inc()
		respondJSON(w, http.StatusUnprocessableEntity, clusterError{Error: "segment trailer: " + err.Error()})
		return
	}
	dir := filepath.Join(n.cfg.ReplicaDir, origin)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		respondJSON(w, http.StatusInternalServerError, clusterError{Error: err.Error()})
		return
	}
	tmp, err := os.CreateTemp(dir, "tmp-*")
	if err != nil {
		respondJSON(w, http.StatusInternalServerError, clusterError{Error: err.Error()})
		return
	}
	defer os.Remove(tmp.Name())
	_, werr := tmp.Write(buf.Bytes())
	if serr := tmp.Sync(); werr == nil {
		werr = serr
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), filepath.Join(dir, name))
	}
	if werr != nil {
		respondJSON(w, http.StatusInternalServerError, clusterError{Error: werr.Error()})
		return
	}
	n.pm[origin].recvBytes.Add(uint64(buf.Len()))
	respondJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleStoreGet serves this node's store only (Peek: no LRU
// promotion, no stat skew) — the peer-facing half of read-through.
// It never recurses into ReadThrough, so probe chains terminate.
func (n *Node) handleStoreGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if n.cfg.Store == nil || !validKey(key) {
		respondJSON(w, http.StatusNotFound, clusterError{Error: "not found"})
		return
	}
	val, ok := n.cfg.Store.Peek(key)
	if !ok {
		respondJSON(w, http.StatusNotFound, clusterError{Error: "not found"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(val)
}

// handleResult is the client-facing read-through: local store first,
// then peers, filling the local LRU on a remote hit. Any node can
// serve any key.
func (n *Node) handleResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !validKey(key) {
		respondJSON(w, http.StatusBadRequest, clusterError{Error: "invalid key"})
		return
	}
	if n.cfg.Store != nil {
		if val, ok := n.cfg.Store.Get(key); ok {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusOK)
			w.Write(val)
			return
		}
	}
	if val, ok := n.ReadThrough(key); ok {
		if n.cfg.Store != nil {
			n.cfg.Store.Put(key, val)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(val)
		return
	}
	respondJSON(w, http.StatusNotFound, clusterError{Error: "not found"})
}

// validKey accepts exactly the store's key shape: 64 lowercase hex.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
