package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
)

// Ring is a consistent-hash ring over node IDs. Each node contributes
// vnodes points (the first 8 bytes of SHA-256("id#i") as a big-endian
// uint64); a store key's owner is the node whose point is the first at
// or clockwise past the key's own point. Store keys are already
// SHA-256 hex (internal/store.Key), so their leading 16 hex digits are
// uniform ring input — no re-hashing needed.
//
// Membership is static: the ring is built once from the configured
// peer set and never changes at runtime. Liveness is layered on top
// (Node.alive); the ring answers "who owns", the health loop answers
// "who can".
type Ring struct {
	points []ringPoint // sorted by hash
	nodes  []string    // sorted node IDs (successor order)
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds a ring from the given node IDs with vnodes virtual
// points per node (<= 0 means 64). Duplicate IDs collapse.
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	seen := make(map[string]bool, len(nodes))
	r := &Ring{}
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		r.nodes = append(r.nodes, n)
		for i := 0; i < vnodes; i++ {
			sum := sha256.Sum256([]byte(fmt.Sprintf("%s#%d", n, i)))
			r.points = append(r.points, ringPoint{hash: binary.BigEndian.Uint64(sum[:8]), node: n})
		}
	}
	sort.Strings(r.nodes)
	sort.Slice(r.points, func(i, k int) bool {
		if r.points[i].hash != r.points[k].hash {
			return r.points[i].hash < r.points[k].hash
		}
		// Hash ties (astronomically rare) break by node ID so every
		// member computes the identical ring.
		return r.points[i].node < r.points[k].node
	})
	return r
}

// Nodes returns the member IDs in sorted order.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// keyPoint maps a store key (SHA-256 hex) onto the ring. Malformed
// keys hash to 0 — they still get a deterministic owner.
func keyPoint(key string) uint64 {
	if len(key) < 16 {
		key = key + "0000000000000000"
	}
	raw, err := hex.DecodeString(key[:16])
	if err != nil || len(raw) != 8 {
		return 0
	}
	return binary.BigEndian.Uint64(raw)
}

// Owner returns the node owning key: the first ring point at or
// clockwise past the key's point ("" on an empty ring).
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := keyPoint(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap
	}
	return r.points[i].node
}

// Successor returns the node after id in sorted-ID order (wrapping),
// which is where id ships its sealed WAL segments. Returns "" when id
// is not a member or is the only member.
func (r *Ring) Successor(id string) string {
	i := sort.SearchStrings(r.nodes, id)
	if i == len(r.nodes) || r.nodes[i] != id || len(r.nodes) < 2 {
		return ""
	}
	return r.nodes[(i+1)%len(r.nodes)]
}

// SuccessorAmong returns the first successor of id (in sorted-ID
// order, wrapping) for which alive returns true, skipping id itself.
// Returns "" when none qualifies. Failover uses it to elect the
// adopter of a dead node's shipped WAL: every live member computes the
// same answer from the same health view.
func (r *Ring) SuccessorAmong(id string, alive func(string) bool) string {
	i := sort.SearchStrings(r.nodes, id)
	if i == len(r.nodes) || r.nodes[i] != id {
		return ""
	}
	for step := 1; step < len(r.nodes); step++ {
		cand := r.nodes[(i+step)%len(r.nodes)]
		if alive(cand) {
			return cand
		}
	}
	return ""
}
