package cluster

import (
	"math"
	"sync"
	"time"
)

// phiDetector is a simplified phi-accrual failure detector (Hayashibara
// et al.): instead of a binary strike counter, each peer accumulates a
// suspicion score phi that grows continuously with the time since its
// last successful health probe, scaled by the inter-arrival times the
// peer has historically shown. A slow or lossy link raises the peer's
// mean inter-arrival, which *lowers* phi for the same silence — slow
// links degrade the score gradually instead of flipping alive→dead and
// triggering spurious failover adoption.
//
// The model is exponential: with mean inter-arrival m, the probability
// a live peer stays silent for t is exp(-t/m), so
//
//	phi(t) = -log10(exp(-t/m)) = t / (m·ln10)
//
// A peer is declared dead when phi exceeds the configured threshold;
// with regular probes every interval and threshold 8 that is roughly
// 18 missed intervals of silence, and proportionally sooner when the
// link has been consistently fast.
type phiDetector struct {
	mu       sync.Mutex
	interval float64            // floor for the mean inter-arrival, seconds
	last     map[string]time.Time
	mean     map[string]float64 // EWMA of inter-arrival, seconds
}

func newPhiDetector(interval time.Duration) *phiDetector {
	return &phiDetector{
		interval: interval.Seconds(),
		last:     make(map[string]time.Time),
		mean:     make(map[string]float64),
	}
}

// boot seeds a peer's window at startup so a node that boots first does
// not instantly condemn peers that are still coming up.
func (p *phiDetector) boot(id string, now time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.last[id] = now
	p.mean[id] = p.interval
}

// heartbeat records a successful probe of id at time now, updating the
// EWMA of inter-arrival times. The mean is floored at the configured
// probe interval: arrivals can never be expected faster than we probe.
func (p *phiDetector) heartbeat(id string, now time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if prev, ok := p.last[id]; ok {
		sample := now.Sub(prev).Seconds()
		m := p.mean[id]
		if m <= 0 {
			m = p.interval
		}
		m = 0.8*m + 0.2*sample
		if m < p.interval {
			m = p.interval
		}
		p.mean[id] = m
	} else {
		p.mean[id] = p.interval
	}
	p.last[id] = now
}

// phi returns id's current suspicion score at time now. An unknown peer
// scores +Inf.
func (p *phiDetector) phi(id string, now time.Time) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	prev, ok := p.last[id]
	if !ok {
		return math.Inf(1)
	}
	m := p.mean[id]
	if m <= 0 {
		m = p.interval
	}
	elapsed := now.Sub(prev).Seconds()
	if elapsed < 0 {
		elapsed = 0
	}
	return elapsed / (m * math.Ln10)
}

// suspect reports whether id's phi exceeds threshold at time now.
func (p *phiDetector) suspect(id string, now time.Time, threshold float64) bool {
	return p.phi(id, now) > threshold
}
