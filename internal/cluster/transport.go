package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/nvrand"
	"repro/internal/obs"
)

// TransportConfig tunes the hardened peer-to-peer HTTP layer. Zero
// values get production defaults from NewTransport.
type TransportConfig struct {
	// Base is the underlying RoundTripper (nil = http.DefaultTransport).
	// Tests inject a netchaos transport here.
	Base http.RoundTripper

	// AttemptTimeout is the per-attempt *idle* deadline: an attempt is
	// aborted only after this long with no progress (no connect, no
	// request-body byte sent, no response byte received). A large WAL
	// segment crawling over a slow link keeps resetting the clock and is
	// never killed mid-transfer; a stalled one dies promptly.
	AttemptTimeout time.Duration

	// MinThroughput (bytes/sec) scales the deadline for request uploads:
	// an attempt carrying a body gets AttemptTimeout + len(body)/MinThroughput
	// before it is considered stalled, so a multi-megabyte WAL segment on
	// a slow link is never aborted by the flat per-attempt timeout (the
	// kernel can buffer a whole upload, hiding its progress from us).
	MinThroughput int64

	// TotalBudget bounds the retry loop: once this much wall time has
	// elapsed since the first attempt, no further retries are scheduled
	// (an in-flight attempt making progress is allowed to finish).
	TotalBudget time.Duration

	// Retries is the number of re-attempts after the first try
	// (0 = default of 3; -1 = retries disabled).
	Retries int

	// BackoffBase/BackoffMax shape the jittered exponential backoff
	// between attempts: attempt k sleeps in [d/2, d] for
	// d = min(BackoffBase·2^(k-1), BackoffMax), jitter drawn from a
	// seeded nvrand stream so test runs replay identically.
	BackoffBase time.Duration
	BackoffMax  time.Duration

	// BreakerThreshold consecutive failures open a peer's circuit
	// breaker; BreakerCooldown later it admits a single half-open probe.
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// HedgeDelay staggers hedged read legs. Zero derives it from the
	// observed p99 attempt latency (falling back to AttemptTimeout/8
	// until enough samples exist).
	HedgeDelay time.Duration

	// Seed feeds the backoff jitter stream.
	Seed uint64

	// Obs receives transport metrics (nil = private registry).
	Obs *obs.Registry
}

// ErrBreakerOpen is returned (wrapped, with the peer name) when a
// request is refused because the peer's circuit breaker is open.
var ErrBreakerOpen = errors.New("cluster: circuit breaker open")

// Breaker states, exported through the cluster_breaker_state gauge.
const (
	BreakerClosed   = 0
	BreakerOpen     = 1
	BreakerHalfOpen = 2
)

type breaker struct {
	state    int
	fails    int
	openedAt time.Time
	probing  bool // a half-open trial request is in flight
}

type netMetrics struct {
	retries   *obs.Counter
	opens     *obs.Counter
	state     *obs.Gauge
	hedged    *obs.Counter
	hedgeWins *obs.Counter
}

// Transport is the fault-tolerant peer HTTP layer: per-attempt idle
// deadlines, bounded jittered retries, per-peer circuit breakers, and
// hedged reads. Safe for concurrent use.
type Transport struct {
	cfg  TransportConfig
	base http.RoundTripper

	mu       sync.Mutex // guards breakers
	breakers map[string]*breaker

	nmMu sync.Mutex // guards nm
	nm   map[string]*netMetrics

	jmu    sync.Mutex // guards jitter
	jitter *nvrand.Rand

	lat *obs.Histogram // time-to-response-headers, feeds hedge p99
}

// NewTransport builds a Transport with defaults filled in.
func NewTransport(cfg TransportConfig) *Transport {
	if cfg.Base == nil {
		cfg.Base = http.DefaultTransport
	}
	if cfg.AttemptTimeout <= 0 {
		cfg.AttemptTimeout = 5 * time.Second
	}
	if cfg.MinThroughput <= 0 {
		cfg.MinThroughput = 1 << 20
	}
	if cfg.TotalBudget <= 0 {
		cfg.TotalBudget = 6 * cfg.AttemptTimeout
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	} else if cfg.Retries == 0 {
		cfg.Retries = 3
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 50 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 2 * time.Second
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 5
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 2 * time.Second
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.NewRegistry()
	}
	return &Transport{
		cfg:      cfg,
		base:     cfg.Base,
		breakers: make(map[string]*breaker),
		nm:       make(map[string]*netMetrics),
		jitter:   nvrand.New(cfg.Seed),
		lat: cfg.Obs.Histogram("cluster_net_attempt_seconds",
			"peer request time to response headers, per attempt", obs.DefaultDurationBuckets()),
	}
}

// Call describes one logical peer request; Do retries it.
type Call struct {
	Peer   string
	Method string
	URL    string
	Header http.Header
	Body   []byte

	// OnRetry, if set, is invoked before each re-attempt with the
	// previous attempt's HTTP status (0 for transport errors) and error.
	OnRetry func(status int, err error)

	single bool // exactly one attempt (hedge legs, probes)
	bypass bool // skip the breaker admission check (health probes)
}

func (t *Transport) metricsFor(peer string) *netMetrics {
	t.nmMu.Lock()
	defer t.nmMu.Unlock()
	m, ok := t.nm[peer]
	if !ok {
		l := obs.Labels{"peer": peer}
		m = &netMetrics{
			retries:   t.cfg.Obs.CounterL("cluster_net_retries_total", "peer request re-attempts after a retryable failure, by peer", l),
			opens:     t.cfg.Obs.CounterL("cluster_breaker_opens_total", "circuit breaker open transitions, by peer", l),
			state:     t.cfg.Obs.GaugeL("cluster_breaker_state", "circuit breaker state (0 closed, 1 open, 2 half-open), by peer", l),
			hedged:    t.cfg.Obs.CounterL("cluster_hedged_requests_total", "extra hedge legs launched for peer reads, by peer", l),
			hedgeWins: t.cfg.Obs.CounterL("cluster_hedge_wins_total", "hedged reads won by a non-primary leg, by peer", l),
		}
		t.nm[peer] = m
	}
	return m
}

// allow applies breaker admission for one attempt against peer.
func (t *Transport) allow(peer string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.breakers[peer]
	if b == nil {
		b = &breaker{}
		t.breakers[peer] = b
	}
	switch b.state {
	case BreakerClosed:
		return nil
	case BreakerOpen:
		if time.Since(b.openedAt) >= t.cfg.BreakerCooldown {
			b.state = BreakerHalfOpen
			b.probing = true
			t.metricsFor(peer).state.Set(BreakerHalfOpen)
			return nil
		}
		return fmt.Errorf("%w (peer %s)", ErrBreakerOpen, peer)
	default: // half-open: one trial at a time
		if b.probing {
			return fmt.Errorf("%w (peer %s: trial in flight)", ErrBreakerOpen, peer)
		}
		b.probing = true
		return nil
	}
}

// record feeds one attempt outcome into peer's breaker. A response with
// any status below 500 counts as success: a 4xx peer is alive, and a
// checksum reject (422) must not open the breaker that would block the
// re-ship that fixes it.
func (t *Transport) record(peer string, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.breakers[peer]
	if b == nil {
		b = &breaker{}
		t.breakers[peer] = b
	}
	if ok {
		if b.state != BreakerClosed {
			t.metricsFor(peer).state.Set(BreakerClosed)
		}
		b.state = BreakerClosed
		b.fails = 0
		b.probing = false
		return
	}
	b.fails++
	b.probing = false
	if b.state == BreakerHalfOpen || (b.state == BreakerClosed && b.fails >= t.cfg.BreakerThreshold) {
		b.state = BreakerOpen
		b.openedAt = time.Now()
		m := t.metricsFor(peer)
		m.opens.Inc()
		m.state.Set(BreakerOpen)
	}
}

// BreakerState reports peer's breaker state (BreakerClosed if unknown).
func (t *Transport) BreakerState(peer string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if b := t.breakers[peer]; b != nil {
		return b.state
	}
	return BreakerClosed
}

// backoff returns the jittered sleep before re-attempt k (k >= 1).
func (t *Transport) backoff(k int) time.Duration {
	d := t.cfg.BackoffBase
	for i := 1; i < k && d < t.cfg.BackoffMax; i++ {
		d *= 2
	}
	if d > t.cfg.BackoffMax {
		d = t.cfg.BackoffMax
	}
	t.jmu.Lock()
	f := t.jitter.Float64()
	t.jmu.Unlock()
	return d/2 + time.Duration(f*float64(d/2))
}

// retryableStatus reports whether an HTTP status warrants a re-attempt:
// 5xx (server-side trouble) and 422 (the receiver rejected a damaged
// payload — resending the intact body can succeed).
func retryableStatus(code int) bool {
	return code >= 500 || code == http.StatusUnprocessableEntity
}

// Do performs the call with breaker admission, per-attempt idle
// deadlines, and bounded jittered retries. The returned response body
// remains under the attempt's idle watchdog; callers must Close it.
func (t *Transport) Do(ctx context.Context, c Call) (*http.Response, error) {
	start := time.Now()
	attempts := t.cfg.Retries + 1
	if c.single {
		attempts = 1
	}
	var lastErr error
	lastStatus := 0
	for i := 0; i < attempts; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if i > 0 {
			if time.Since(start) > t.cfg.TotalBudget {
				break
			}
			if c.OnRetry != nil {
				c.OnRetry(lastStatus, lastErr)
			}
			t.metricsFor(c.Peer).retries.Inc()
			select {
			case <-time.After(t.backoff(i)):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		if !c.bypass {
			if err := t.allow(c.Peer); err != nil {
				if lastErr != nil {
					return nil, fmt.Errorf("%w (last failure: %v)", err, lastErr)
				}
				return nil, err
			}
		}
		resp, err := t.attempt(ctx, &c)
		t.record(c.Peer, err == nil && resp.StatusCode < 500)
		if err != nil {
			lastErr = err
			lastStatus = 0
			continue
		}
		if retryableStatus(resp.StatusCode) {
			lastErr = fmt.Errorf("cluster: %s %s: HTTP %d", c.Method, c.URL, resp.StatusCode)
			lastStatus = resp.StatusCode
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			continue
		}
		return resp, nil
	}
	return nil, lastErr
}

// Probe issues a single breaker-bypassing GET and reports whether the
// peer answered 200. Health probes must bypass the breaker: they are
// how an open breaker learns the peer recovered.
func (t *Transport) Probe(ctx context.Context, peer, url string) error {
	resp, err := t.Do(ctx, Call{Peer: peer, Method: http.MethodGet, URL: url, single: true, bypass: true})
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: probe %s: HTTP %d", url, resp.StatusCode)
	}
	return nil
}

// attempt runs one request under an idle watchdog: a timer that cancels
// the attempt after AttemptTimeout without progress, reset by every
// request-body byte sent and response-body byte received.
func (t *Transport) attempt(ctx context.Context, c *Call) (*http.Response, error) {
	actx, cancel := context.WithCancel(ctx)
	idle := t.cfg.AttemptTimeout
	window := idle
	if len(c.Body) > 0 {
		window += time.Duration(len(c.Body)) * time.Second / time.Duration(t.cfg.MinThroughput)
	}
	wd := time.AfterFunc(window, cancel)

	var bodyReader io.Reader
	if c.Body != nil {
		bodyReader = &progressReader{r: bytes.NewReader(c.Body), wd: wd, idle: window}
	}
	req, err := http.NewRequestWithContext(actx, c.Method, c.URL, bodyReader)
	if err != nil {
		wd.Stop()
		cancel()
		return nil, err
	}
	if c.Body != nil {
		req.ContentLength = int64(len(c.Body))
	}
	for k, vs := range c.Header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	t0 := time.Now()
	resp, err := t.base.RoundTrip(req)
	t.lat.Observe(time.Since(t0).Seconds())
	if err != nil {
		wd.Stop()
		cancel()
		return nil, err
	}
	wd.Reset(idle)
	resp.Body = &watchedBody{rc: resp.Body, wd: wd, idle: idle, cancel: cancel}
	return resp, nil
}

// hedgeDelay picks the stagger between hedge legs: configured value, or
// observed p99 attempt latency clamped to [1ms, AttemptTimeout/2].
func (t *Transport) hedgeDelay() time.Duration {
	if t.cfg.HedgeDelay > 0 {
		return t.cfg.HedgeDelay
	}
	if t.lat.Count() >= 16 {
		d := time.Duration(t.lat.Quantile(0.99) * float64(time.Second))
		if lo := time.Millisecond; d < lo {
			d = lo
		}
		if hi := t.cfg.AttemptTimeout / 2; d > hi {
			d = hi
		}
		return d
	}
	return t.cfg.AttemptTimeout / 8
}

// HedgeTarget is one candidate replica for a hedged read.
type HedgeTarget struct {
	Peer string
	URL  string
}

// HedgedGet races single-attempt GETs against the targets in order:
// leg 0 immediately, each further leg after hedgeDelay (or sooner, when
// the previous leg finished without a hit). The first 200 wins and the
// other legs are cancelled. Returns the winning response and peer.
func (t *Transport) HedgedGet(ctx context.Context, hdr http.Header, targets []HedgeTarget) (*http.Response, string, error) {
	if len(targets) == 0 {
		return nil, "", errors.New("cluster: hedged read with no targets")
	}
	type legResult struct {
		i    int
		resp *http.Response
		err  error
	}
	results := make(chan legResult, len(targets))
	cancels := make([]context.CancelFunc, len(targets))
	launch := func(i int) {
		lctx, lcancel := context.WithCancel(ctx)
		cancels[i] = lcancel
		if i > 0 {
			t.metricsFor(targets[i].Peer).hedged.Inc()
		}
		go func() {
			resp, err := t.Do(lctx, Call{
				Peer: targets[i].Peer, Method: http.MethodGet,
				URL: targets[i].URL, Header: hdr, single: true,
			})
			results <- legResult{i, resp, err}
		}()
	}
	drainRest := func(pending int) {
		go func() {
			for ; pending > 0; pending-- {
				r := <-results
				if r.err == nil {
					io.Copy(io.Discard, io.LimitReader(r.resp.Body, 4096))
					r.resp.Body.Close()
				}
			}
		}()
	}

	delay := t.hedgeDelay()
	next := 0
	launch(next)
	next++
	pending := 1
	var lastErr error
	for pending > 0 {
		var stagger <-chan time.Time
		if next < len(targets) {
			stagger = time.After(delay)
		}
		select {
		case r := <-results:
			pending--
			if r.err == nil && r.resp.StatusCode == http.StatusOK {
				if r.i > 0 {
					t.metricsFor(targets[r.i].Peer).hedgeWins.Inc()
				}
				for j, cf := range cancels {
					if cf != nil && j != r.i {
						cf()
					}
				}
				drainRest(pending)
				return r.resp, targets[r.i].Peer, nil
			}
			if r.err != nil {
				lastErr = r.err
			} else {
				lastErr = fmt.Errorf("cluster: peer %s: HTTP %d", targets[r.i].Peer, r.resp.StatusCode)
				io.Copy(io.Discard, io.LimitReader(r.resp.Body, 4096))
				r.resp.Body.Close()
			}
			if next < len(targets) {
				launch(next)
				next++
				pending++
			}
		case <-stagger:
			launch(next)
			next++
			pending++
		case <-ctx.Done():
			for _, cf := range cancels {
				if cf != nil {
					cf()
				}
			}
			drainRest(pending)
			return nil, "", ctx.Err()
		}
	}
	return nil, "", lastErr
}

// progressReader resets the idle watchdog on every request-body read,
// so a slow upload that is still moving is never killed.
type progressReader struct {
	r    io.Reader
	wd   *time.Timer
	idle time.Duration
}

func (p *progressReader) Read(b []byte) (int, error) {
	n, err := p.r.Read(b)
	if n > 0 {
		p.wd.Reset(p.idle)
	}
	return n, err
}

// watchedBody resets the idle watchdog on every response-body read and
// releases the attempt's resources on Close.
type watchedBody struct {
	rc     io.ReadCloser
	wd     *time.Timer
	idle   time.Duration
	cancel context.CancelFunc
	closed bool
}

func (w *watchedBody) Read(b []byte) (int, error) {
	n, err := w.rc.Read(b)
	if n > 0 {
		w.wd.Reset(w.idle)
	}
	return n, err
}

func (w *watchedBody) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	err := w.rc.Close()
	w.wd.Stop()
	w.cancel()
	return err
}
