package cluster

import (
	"fmt"
	"testing"

	"repro/internal/store"
)

// testKeys derives real store keys: the ring's production input shape.
func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = store.Key("fig12", []byte(fmt.Sprintf(`{"n":%d}`, i)), uint64(i), "nv3")
	}
	return keys
}

// TestRingOwnerDeterministic: every member builds the same ring from
// the same membership, whatever order the IDs arrive in.
func TestRingOwnerDeterministic(t *testing.T) {
	a := NewRing([]string{"alpha", "beta", "gamma"}, 64)
	b := NewRing([]string{"gamma", "alpha", "beta", "alpha"}, 64)
	for _, key := range testKeys(500) {
		if ao, bo := a.Owner(key), b.Owner(key); ao != bo {
			t.Fatalf("owner diverges for %s: %q vs %q", key[:16], ao, bo)
		}
	}
}

// TestRingSpreadsOwnership: with default vnodes, a 3-node ring gives
// every node a meaningful share of a uniform keyspace.
func TestRingSpreadsOwnership(t *testing.T) {
	r := NewRing([]string{"alpha", "beta", "gamma"}, 64)
	counts := map[string]int{}
	keys := testKeys(3000)
	for _, key := range keys {
		counts[r.Owner(key)]++
	}
	for _, id := range r.Nodes() {
		if counts[id] < len(keys)/10 {
			t.Fatalf("node %s owns only %d of %d keys: %v", id, counts[id], len(keys), counts)
		}
	}
}

// TestRingMinimalRemapping is the consistent-hashing property: removing
// one node only remaps the keys that node owned.
func TestRingMinimalRemapping(t *testing.T) {
	full := NewRing([]string{"alpha", "beta", "gamma"}, 64)
	reduced := NewRing([]string{"alpha", "beta"}, 64)
	for _, key := range testKeys(1000) {
		before := full.Owner(key)
		after := reduced.Owner(key)
		if before != "gamma" && after != before {
			t.Fatalf("key %s moved %q -> %q though its owner stayed a member", key[:16], before, after)
		}
	}
}

func TestRingSuccessor(t *testing.T) {
	r := NewRing([]string{"c", "a", "b"}, 8)
	cases := map[string]string{"a": "b", "b": "c", "c": "a"}
	for id, want := range cases {
		if got := r.Successor(id); got != want {
			t.Fatalf("Successor(%s) = %q, want %q", id, got, want)
		}
	}
	if got := r.Successor("nope"); got != "" {
		t.Fatalf("Successor of a non-member = %q, want empty", got)
	}
	if got := NewRing([]string{"solo"}, 8).Successor("solo"); got != "" {
		t.Fatalf("Successor on a 1-node ring = %q, want empty", got)
	}
}

func TestRingSuccessorAmongSkipsDead(t *testing.T) {
	r := NewRing([]string{"a", "b", "c", "d"}, 8)
	alive := func(live ...string) func(string) bool {
		set := map[string]bool{}
		for _, id := range live {
			set[id] = true
		}
		return func(id string) bool { return set[id] }
	}
	if got := r.SuccessorAmong("b", alive("a", "c", "d")); got != "c" {
		t.Fatalf("first live successor of b = %q, want c", got)
	}
	if got := r.SuccessorAmong("b", alive("a", "d")); got != "d" {
		t.Fatalf("successor of b skipping dead c = %q, want d", got)
	}
	if got := r.SuccessorAmong("d", alive("a")); got != "a" {
		t.Fatalf("wrapping successor of d = %q, want a", got)
	}
	if got := r.SuccessorAmong("b", alive()); got != "" {
		t.Fatalf("successor with no live peers = %q, want empty", got)
	}
}

// TestRingMalformedKeys: garbage keys still get a deterministic owner
// rather than a panic or an empty answer.
func TestRingMalformedKeys(t *testing.T) {
	r := NewRing([]string{"a", "b"}, 8)
	for _, key := range []string{"", "zz", "not-hex-at-all-but-quite-long-anyway"} {
		if got := r.Owner(key); got == "" {
			t.Fatalf("Owner(%q) empty on a non-empty ring", key)
		}
		if r.Owner(key) != r.Owner(key) {
			t.Fatalf("Owner(%q) non-deterministic", key)
		}
	}
}
