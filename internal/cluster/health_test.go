package cluster

import (
	"math"
	"testing"
	"time"
)

func TestPhiGrowsWithSilence(t *testing.T) {
	base := time.Unix(1000, 0)
	p := newPhiDetector(100 * time.Millisecond)
	p.boot("b", base)
	for i := 1; i <= 5; i++ {
		p.heartbeat("b", base.Add(time.Duration(i)*100*time.Millisecond))
	}
	at := func(d time.Duration) float64 { return p.phi("b", base.Add(500*time.Millisecond+d)) }

	if phi := at(0); phi != 0 {
		t.Fatalf("phi right after heartbeat = %v, want 0", phi)
	}
	if at(200*time.Millisecond) >= at(2*time.Second) {
		t.Fatal("phi must grow monotonically with silence")
	}
	// Regular 100ms heartbeats, threshold 8: dead after ~8*ln10*100ms ≈ 1.84s.
	if p.suspect("b", base.Add(500*time.Millisecond+time.Second), 8) {
		t.Fatal("1s of silence should not exceed phi 8")
	}
	if !p.suspect("b", base.Add(500*time.Millisecond+3*time.Second), 8) {
		t.Fatal("3s of silence should exceed phi 8")
	}
}

func TestPhiToleratesSlowLinks(t *testing.T) {
	base := time.Unix(1000, 0)
	interval := 100 * time.Millisecond

	fast := newPhiDetector(interval)
	fast.boot("b", base)
	slow := newPhiDetector(interval)
	slow.boot("b", base)
	now := base
	for i := 1; i <= 20; i++ {
		fast.heartbeat("b", base.Add(time.Duration(i)*interval))
		// The slow link delivers every probe, but each one takes 4x the
		// interval: its mean inter-arrival window widens.
		now = base.Add(time.Duration(i) * 4 * interval)
		slow.heartbeat("b", now)
	}
	fastNow := base.Add(20 * interval)
	silence := 2 * time.Second
	if fast.phi("b", fastNow.Add(silence)) <= slow.phi("b", now.Add(silence)) {
		t.Fatal("the same silence must look more suspicious on a historically fast link")
	}
}

func TestPhiUnknownPeerIsInfinite(t *testing.T) {
	p := newPhiDetector(time.Second)
	if !math.IsInf(p.phi("ghost", time.Now()), 1) {
		t.Fatal("unknown peer should score +Inf")
	}
}

func TestPhiRecoversAfterHeartbeat(t *testing.T) {
	base := time.Unix(1000, 0)
	p := newPhiDetector(100 * time.Millisecond)
	p.boot("b", base)
	long := base.Add(time.Minute)
	if !p.suspect("b", long, 8) {
		t.Fatal("a minute of silence should be fatal")
	}
	p.heartbeat("b", long)
	if p.suspect("b", long.Add(50*time.Millisecond), 8) {
		t.Fatal("a fresh heartbeat must reset suspicion")
	}
}
