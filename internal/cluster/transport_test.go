package cluster

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/netchaos"
	"repro/internal/obs"
)

func newTestTransport(t *testing.T, cfg TransportConfig) *Transport {
	t.Helper()
	if cfg.Obs == nil {
		cfg.Obs = obs.NewRegistry()
	}
	return NewTransport(cfg)
}

func TestTransportRetriesThenSucceeds(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	reg := obs.NewRegistry()
	tr := newTestTransport(t, TransportConfig{
		AttemptTimeout: time.Second, Retries: 3,
		BackoffBase: time.Millisecond, BackoffMax: 4 * time.Millisecond,
		Obs: reg,
	})
	var notified int
	resp, err := tr.Do(context.Background(), Call{
		Peer: "b", Method: http.MethodGet, URL: srv.URL,
		OnRetry: func(status int, err error) {
			notified++
			if status != http.StatusInternalServerError {
				t.Errorf("OnRetry status = %d", status)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(b) != "ok" {
		t.Fatalf("body = %q", b)
	}
	if hits.Load() != 3 {
		t.Fatalf("attempts = %d, want 3", hits.Load())
	}
	if notified != 2 {
		t.Fatalf("OnRetry calls = %d, want 2", notified)
	}
	if got := reg.CounterL("cluster_net_retries_total", "", obs.Labels{"peer": "b"}).Value(); got != 2 {
		t.Fatalf("retries counter = %d, want 2", got)
	}
}

func TestTransportBreakerOpensAndRecovers(t *testing.T) {
	var healthy atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !healthy.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	reg := obs.NewRegistry()
	tr := newTestTransport(t, TransportConfig{
		AttemptTimeout: time.Second, Retries: -1,
		BreakerThreshold: 2, BreakerCooldown: 40 * time.Millisecond,
		Obs: reg,
	})
	call := Call{Peer: "b", Method: http.MethodGet, URL: srv.URL}

	for i := 0; i < 2; i++ {
		if _, err := tr.Do(context.Background(), call); err == nil {
			t.Fatal("want failure")
		}
	}
	if st := tr.BreakerState("b"); st != BreakerOpen {
		t.Fatalf("state = %d, want open", st)
	}
	if _, err := tr.Do(context.Background(), call); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("want ErrBreakerOpen, got %v", err)
	}

	// Cooldown elapses; the half-open trial still fails -> open again.
	time.Sleep(50 * time.Millisecond)
	if _, err := tr.Do(context.Background(), call); err == nil || errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("half-open trial should reach the server and fail: %v", err)
	}
	if st := tr.BreakerState("b"); st != BreakerOpen {
		t.Fatalf("state after failed trial = %d, want open", st)
	}

	// Peer recovers; next half-open trial closes the breaker.
	healthy.Store(true)
	time.Sleep(50 * time.Millisecond)
	resp, err := tr.Do(context.Background(), call)
	if err != nil {
		t.Fatalf("recovered trial: %v", err)
	}
	resp.Body.Close()
	if st := tr.BreakerState("b"); st != BreakerClosed {
		t.Fatalf("state after recovery = %d, want closed", st)
	}
	if got := reg.CounterL("cluster_breaker_opens_total", "", obs.Labels{"peer": "b"}).Value(); got < 2 {
		t.Fatalf("breaker opens = %d, want >= 2", got)
	}
}

func TestTransportProbeBypassesOpenBreaker(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	tr := newTestTransport(t, TransportConfig{
		AttemptTimeout: time.Second, Retries: -1,
		BreakerThreshold: 1, BreakerCooldown: time.Hour,
	})
	// Open the breaker against an unreachable address.
	tr.record("b", false)
	if st := tr.BreakerState("b"); st != BreakerOpen {
		t.Fatalf("state = %d, want open", st)
	}
	// A probe still goes through, and its success closes the breaker.
	if err := tr.Probe(context.Background(), "b", srv.URL); err != nil {
		t.Fatalf("probe: %v", err)
	}
	if st := tr.BreakerState("b"); st != BreakerClosed {
		t.Fatalf("state after probe = %d, want closed", st)
	}
}

func TestTransportIdleDeadlineKillsStalledPeer(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release // never write anything until the test ends
	}))
	defer srv.Close()
	defer close(release)

	tr := newTestTransport(t, TransportConfig{AttemptTimeout: 80 * time.Millisecond, Retries: -1})
	start := time.Now()
	_, err := tr.Do(context.Background(), Call{Peer: "b", Method: http.MethodGet, URL: srv.URL})
	if err == nil {
		t.Fatal("stalled peer should time out")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("took %v, idle deadline did not fire", elapsed)
	}
}

// TestTransportSlowTransferSurvives is the regression test for the flat
// http.Client{Timeout} bug: a multi-MB transfer over a slow link takes
// far longer than the per-attempt timeout but keeps making progress, so
// it must complete in both directions.
func TestTransportSlowTransferSurvives(t *testing.T) {
	payload := bytes.Repeat([]byte{0xAB}, 4<<20) // 4 MiB

	// Upload: the server drains the body deliberately slowly.
	uploadSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		buf := make([]byte, 128<<10)
		var total int
		for {
			n, err := io.ReadFull(r.Body, buf)
			total += n
			time.Sleep(10 * time.Millisecond)
			if err != nil {
				break
			}
		}
		if total != len(payload) {
			http.Error(w, "short body", http.StatusBadRequest)
			return
		}
		io.WriteString(w, "stored")
	}))
	defer uploadSrv.Close()

	attempt := 150 * time.Millisecond
	tr := newTestTransport(t, TransportConfig{AttemptTimeout: attempt, Retries: -1})
	start := time.Now()
	resp, err := tr.Do(context.Background(), Call{
		Peer: "b", Method: http.MethodPost, URL: uploadSrv.URL, Body: payload,
	})
	if err != nil {
		t.Fatalf("slow upload aborted: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < attempt {
		t.Fatalf("upload finished in %v — the slow server should force the transfer past the %v attempt timeout", elapsed, attempt)
	}

	// Download: netchaos trickles the response out in slow chunks.
	downloadSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(payload)
	}))
	defer downloadSrv.Close()
	u, _ := url.Parse(downloadSrv.URL)
	nc := netchaos.New(1)
	nc.MapAddr(u.Host, "b")
	nc.SetRule("a", "b", netchaos.Rule{SlowChunk: 128 << 10, SlowPauseMS: 6})
	trc := newTestTransport(t, TransportConfig{
		Base: nc.Transport("a", nil), AttemptTimeout: attempt, Retries: -1,
	})
	start = time.Now()
	resp, err = trc.Do(context.Background(), Call{Peer: "b", Method: http.MethodGet, URL: downloadSrv.URL})
	if err != nil {
		t.Fatalf("slow download aborted: %v", err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("slow download read: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("download corrupted: %d bytes", len(got))
	}
	if elapsed := time.Since(start); elapsed < attempt {
		t.Fatalf("download finished in %v — the netchaos slow link should force the transfer past the %v attempt timeout", elapsed, attempt)
	}
}

func TestTransportHedgedGetPrefersFastReplica(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(400 * time.Millisecond)
		io.WriteString(w, "slow")
	}))
	defer slow.Close()
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "fast")
	}))
	defer fast.Close()

	reg := obs.NewRegistry()
	tr := newTestTransport(t, TransportConfig{
		AttemptTimeout: 2 * time.Second, Retries: -1,
		HedgeDelay: 20 * time.Millisecond, Obs: reg,
	})
	start := time.Now()
	resp, winner, err := tr.HedgedGet(context.Background(), nil, []HedgeTarget{
		{Peer: "slow", URL: slow.URL},
		{Peer: "fast", URL: fast.URL},
	})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if winner != "fast" || string(b) != "fast" {
		t.Fatalf("winner = %q body = %q", winner, b)
	}
	if elapsed := time.Since(start); elapsed > 300*time.Millisecond {
		t.Fatalf("hedged read took %v, should not wait for the slow leg", elapsed)
	}
	if got := reg.CounterL("cluster_hedge_wins_total", "", obs.Labels{"peer": "fast"}).Value(); got != 1 {
		t.Fatalf("hedge wins = %d, want 1", got)
	}
}

func TestTransportHedgedGetFallsThroughMisses(t *testing.T) {
	miss := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	}))
	defer miss.Close()
	hit := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "value")
	}))
	defer hit.Close()

	tr := newTestTransport(t, TransportConfig{
		AttemptTimeout: time.Second, Retries: -1, HedgeDelay: time.Hour,
	})
	resp, winner, err := tr.HedgedGet(context.Background(), nil, []HedgeTarget{
		{Peer: "m", URL: miss.URL},
		{Peer: "h", URL: hit.URL},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if winner != "h" {
		t.Fatalf("winner = %q, want h (miss leg should fall through immediately)", winner)
	}
}

func TestTransportBackoffIsSeedDeterministic(t *testing.T) {
	mk := func(seed uint64) []time.Duration {
		tr := newTestTransport(t, TransportConfig{Seed: seed, BackoffBase: 10 * time.Millisecond})
		var out []time.Duration
		for k := 1; k <= 6; k++ {
			out = append(out, tr.backoff(k))
		}
		return out
	}
	a, b := mk(99), mk(99)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a, b)
		}
	}
	for i, d := range a {
		base := 10 * time.Millisecond << i
		if base > 2*time.Second {
			base = 2 * time.Second
		}
		if d < base/2 || d > base {
			t.Fatalf("backoff %d = %v outside [%v, %v]", i+1, d, base/2, base)
		}
	}
}
