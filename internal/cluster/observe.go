package cluster

// Cluster observability: the peer-facing trace-fragment endpoint, the
// cross-node trace collector behind GET /v1/jobs/{id}/trace, and the
// metrics-federation endpoint GET /v1/cluster/metrics.
//
// The trace collector follows the store-peek pattern from PR 7: the
// peer endpoint (GET /v1/cluster/trace/{tid}) serves only this node's
// local fragment and never recurses, so the node assembling a merged
// timeline fans out one hop to its live peers and cannot create
// forwarding loops. Federation likewise scrapes each live peer's plain
// /v1/metrics JSON snapshot — the same endpoint the work-stealing loop
// already polls — and merges the snapshots into a fresh registry with
// per-node labels plus cluster-level aggregates.

import (
	"io"
	"net/http"
	"sort"

	"repro/internal/obs"
)

// ---------------------------------------------------------------------
// Distributed traces.

// validTraceID accepts the IDs obs.NewTraceID mints (16 lowercase hex
// chars) with slack for longer client-supplied correlation IDs, and
// rejects anything that could not have been a trace ID before it is
// spliced into a peer URL.
func validTraceID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') && c != '-' {
			return false
		}
	}
	return true
}

// handleTraceFragment serves this node's local fragment of a
// distributed trace. Local-only by design (no recursion): the merger
// on the assembling node queries every peer itself.
func (n *Node) handleTraceFragment(w http.ResponseWriter, r *http.Request) {
	tid := r.PathValue("tid")
	if !validTraceID(tid) {
		respondJSON(w, http.StatusBadRequest, clusterError{Error: "malformed trace ID"})
		return
	}
	tr, ok := n.hub().Get(tid)
	if !ok || tr.Len() == 0 {
		respondJSON(w, http.StatusNotFound, clusterError{Error: "no local fragment for trace " + tid})
		return
	}
	respondJSON(w, http.StatusOK, tr.Fragment(n.cfg.Self, tid))
}

// CollectTrace gathers every reachable fragment of a distributed
// trace: this node's own hub plus one read-through hop to each live
// peer. Fragments come back attributed to their recording node, ready
// for obs.WriteChromeMerged.
func (n *Node) CollectTrace(tid string) []obs.TraceFragment {
	var frags []obs.TraceFragment
	if tr, ok := n.hub().Get(tid); ok && tr.Len() > 0 {
		frags = append(frags, tr.Fragment(n.cfg.Self, tid))
	}
	for _, id := range n.sortedPeerIDs() {
		if !n.Alive(id) {
			continue
		}
		var f obs.TraceFragment
		if err := n.getJSON(id, "/v1/cluster/trace/"+tid, &f); err != nil {
			continue // dead, pre-PR-9, or no fragment: skip
		}
		if f.Node == "" {
			f.Node = id
		}
		frags = append(frags, f)
	}
	return frags
}

// ProxyJobTrace forwards a trace request for a job this node does not
// hold to the peer that does, streaming the peer's response through
// verbatim. The forwarded request carries ?proxied=1 so the peer never
// proxies again (one hop, no loops). Returns false when the peer is
// unknown or unreachable; the caller then 404s.
func (n *Node) ProxyJobTrace(w http.ResponseWriter, r *http.Request, peer, jobID string) bool {
	if !n.Alive(peer) {
		return false
	}
	q := r.URL.Query()
	q.Set("proxied", "1")
	url, ok := n.peerURL(peer, "/v1/jobs/"+jobID+"/trace?"+q.Encode())
	if !ok {
		return false
	}
	// Single attempt, no retries: the response streams through to the
	// caller verbatim, so a half-written retry would corrupt it.
	resp, err := n.tp.Do(r.Context(), Call{Peer: peer, Method: http.MethodGet, URL: url, single: true})
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.Header().Set("X-Nightvision-Trace-Via", n.cfg.Self)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return true
}

// sortedPeerIDs returns the peer IDs (excluding self) in sorted order.
func (n *Node) sortedPeerIDs() []string {
	ids := make([]string, 0, len(n.peers))
	for id := range n.peers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// ---------------------------------------------------------------------
// Metrics federation.

// handleFederatedMetrics is GET /v1/cluster/metrics: it scrapes every
// live peer's JSON metrics snapshot, merges them (with this node's
// own) into a fresh registry under per-node labels, adds cluster-level
// aggregates, and serves the result as Prometheus text (default) or
// JSON (?format=json). The federated registry is rebuilt per request —
// it holds sums of cumulative counters, which must never be absorbed
// twice.
func (n *Node) handleFederatedMetrics(w http.ResponseWriter, r *http.Request) {
	fed, scraped, total := n.Federate()
	nodes := fed.Gauge("cluster_nodes_total", "cluster membership size")
	nodes.Set(int64(total))
	fed.Gauge("cluster_nodes_scraped", "nodes whose snapshot this federation merged").Set(int64(scraped))
	switch r.URL.Query().Get("format") {
	case "", "prometheus":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fed.WritePrometheus(w)
	case "json":
		w.Header().Set("Content-Type", "application/json")
		fed.WriteJSON(w)
	default:
		respondJSON(w, http.StatusBadRequest, clusterError{Error: "unknown format (want prometheus or json)"})
	}
}

// Federate builds the federated registry: every scraped node's metrics
// under a node label, plus cluster aggregates. Returns the registry,
// how many nodes were scraped (including self), and the membership
// size.
func (n *Node) Federate() (fed *obs.Registry, scraped, total int) {
	fed = obs.NewRegistry()
	agg := clusterAggregates{
		depth:     fed.Gauge("cluster_queue_depth_total", "queued jobs across all scraped nodes"),
		running:   fed.Gauge("cluster_running_total", "in-flight jobs across all scraped nodes"),
		submitted: fed.Counter("cluster_jobs_submitted_total", "submissions accepted across all scraped nodes"),
		reg:       fed,
	}

	absorb := func(node string, snap []obs.MetricSnapshot) {
		fed.AbsorbSnapshot(snap, obs.Labels{"node": node})
		agg.add(snap)
		scraped++
	}
	absorb(n.cfg.Self, n.cfg.Obs.Snapshot())
	for _, id := range n.sortedPeerIDs() {
		if !n.Alive(id) {
			continue
		}
		var snap []obs.MetricSnapshot
		if err := n.getJSON(id, "/v1/metrics?format=json", &snap); err != nil {
			continue
		}
		absorb(id, snap)
	}
	return fed, scraped, len(n.peers) + 1
}

// clusterAggregates accumulates the fleet-level rollups the federation
// endpoint promises: total queue depth, fleet in-flight, per-state job
// totals.
type clusterAggregates struct {
	depth     *obs.Gauge
	running   *obs.Gauge
	submitted *obs.Counter
	reg       *obs.Registry
}

func (a *clusterAggregates) add(snap []obs.MetricSnapshot) {
	for _, m := range snap {
		switch {
		case m.Name == "jobs_queue_depth" && len(m.Labels) == 0 && m.Level != nil:
			a.depth.Add(*m.Level)
		case m.Name == "jobs_running" && len(m.Labels) == 0 && m.Level != nil:
			a.running.Add(*m.Level)
		case m.Name == "jobs_submitted_total" && len(m.Labels) == 0 && m.Value != nil:
			a.submitted.Add(*m.Value)
		case m.Name == "jobs_completed_total" && m.Value != nil:
			state := m.Labels["state"]
			if state == "" {
				state = "unknown"
			}
			a.reg.CounterL("cluster_jobs_total",
				"terminal jobs across all scraped nodes, by state",
				obs.Labels{"state": state}).Add(*m.Value)
		}
	}
}
