// Package obs is the repo's zero-dependency observability layer: a
// metrics registry of lock-free counters, gauges and fixed-bucket
// histograms, plus a structured span/event tracer (trace.go) that
// records the attack pipeline's timeline.
//
// Two properties shape the design:
//
//  1. Nil safety. Every instrument method is a no-op on a nil receiver,
//     so hot paths (cpu.Core.Step, btb.Lookup) hold plain *Counter
//     fields that cost one predictable branch when observability is
//     disabled and one uncontended atomic add when it is enabled.
//     Sharing across goroutines is pushed to explicit flush points
//     (internal/experiments attaches a private shard per simulator core
//     and folds it into the registry at task end), so enabling metrics
//     never introduces cross-worker cache-line contention on the
//     simulator's hottest loops.
//
//  2. Determinism. Instruments observe; they are never read back by
//     experiment code, never enter cache keys, and never enter Result
//     bytes. An instrumented run is bit-identical to an uninstrumented
//     one (internal/experiments' determinism test proves it).
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. All methods are safe
// for concurrent use and no-ops on a nil receiver.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64 level (queue depth, in-flight requests).
// All methods are safe for concurrent use and no-ops on nil.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the level.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the level by d (negative d decreases it).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current level (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket cumulative histogram in the Prometheus
// style: bucket i counts observations <= Bounds[i], with an implicit
// +Inf bucket at the end. All methods are safe for concurrent use and
// no-ops on nil.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last = +Inf
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// DefaultDurationBuckets covers job/request wall times from 1 ms to
// ~2 min on a roughly-exponential grid.
func DefaultDurationBuckets() []float64 {
	return []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 2.5, 5, 10, 30, 60, 120}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear
// interpolation inside the fixed buckets, the same estimate
// Prometheus' histogram_quantile produces. Within the bucket holding
// the target rank the value is interpolated between the previous
// bound (or 0 for the first bucket) and the bucket's own bound; a rank
// falling in the +Inf bucket clamps to the largest finite bound.
// Returns 0 for an empty (or nil) histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 || len(h.bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum uint64
	for i, bound := range h.bounds {
		c := h.counts[i].Load()
		if c > 0 && float64(cum)+float64(c) >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + (bound-lo)*frac
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// CountBelow estimates how many observations were <= v, interpolating
// within the bucket that straddles v. Used by the SLO tracker to turn
// "p99 <= threshold" objectives into a bad-event count.
func (h *Histogram) CountBelow(v float64) float64 {
	if h == nil || len(h.bounds) == 0 {
		return 0
	}
	var cum float64
	lo := 0.0
	for i, bound := range h.bounds {
		c := float64(h.counts[i].Load())
		if v < bound {
			if v > lo && bound > lo {
				cum += c * (v - lo) / (bound - lo)
			}
			return cum
		}
		cum += c
		lo = bound
	}
	// v is at or past the largest finite bound: everything outside the
	// +Inf bucket counts, plus nothing interpolable from +Inf itself.
	return cum
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Labels are constant metric labels fixed at registration.
type Labels map[string]string

// metricKind discriminates registry entries.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// metric is one registered instrument.
type metric struct {
	name   string
	help   string
	kind   metricKind
	labels Labels
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// labelKey renders labels in sorted {k="v",...} form ("" when empty).
func labelKey(l Labels) string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, l[k])
	}
	b.WriteByte('}')
	return b.String()
}

// Registry holds named instruments. Registration is upsert-style:
// asking for an existing (name, labels) pair returns the existing
// instrument, so independent subsystems (and repeated jobs) can wire
// the same metric without coordination. Mixing kinds under one name is
// a programming error and panics. All methods are safe for concurrent
// use; every registration method returns nil on a nil *Registry, which
// composes with the instruments' own nil safety to make a disabled
// observability layer a chain of no-ops.
type Registry struct {
	mu      sync.Mutex
	byKey   map[string]*metric
	metrics []*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*metric)}
}

// upsert finds or creates the metric for (name, labels, kind).
func (r *Registry) upsert(name, help string, kind metricKind, labels Labels) *metric {
	key := name + labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byKey[key]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", key, kind, m.kind))
		}
		return m
	}
	m := &metric{name: name, help: help, kind: kind, labels: labels}
	switch kind {
	case kindCounter:
		m.c = &Counter{}
	case kindGauge:
		m.g = &Gauge{}
	case kindHistogram:
		m.h = &Histogram{}
	}
	r.byKey[key] = m
	r.metrics = append(r.metrics, m)
	return m
}

// Counter registers (or retrieves) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterL(name, help, nil)
}

// CounterL registers (or retrieves) a counter with constant labels.
func (r *Registry) CounterL(name, help string, labels Labels) *Counter {
	if r == nil {
		return nil
	}
	return r.upsert(name, help, kindCounter, labels).c
}

// Gauge registers (or retrieves) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeL(name, help, nil)
}

// GaugeL registers (or retrieves) a gauge with constant labels (e.g.
// per-peer health in internal/cluster).
func (r *Registry) GaugeL(name, help string, labels Labels) *Gauge {
	if r == nil {
		return nil
	}
	return r.upsert(name, help, kindGauge, labels).g
}

// Histogram registers (or retrieves) a histogram with the given bucket
// upper bounds (sorted ascending; +Inf is implicit). Buckets are fixed
// by the first registration of the name.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.HistogramL(name, help, buckets, nil)
}

// HistogramL registers (or retrieves) a histogram with constant labels
// (e.g. per-node series in the federated cluster registry). Buckets are
// fixed by the first registration of the (name, labels) pair.
func (r *Registry) HistogramL(name, help string, buckets []float64, labels Labels) *Histogram {
	if r == nil {
		return nil
	}
	m := r.upsert(name, help, kindHistogram, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m.h.counts == nil {
		bounds := append([]float64(nil), buckets...)
		sort.Float64s(bounds)
		m.h.bounds = bounds
		m.h.counts = make([]atomic.Uint64, len(bounds)+1)
	}
	return m.h
}

// snapshot returns the metrics sorted by (name, labels) for
// deterministic exposition order.
func (r *Registry) snapshot() []*metric {
	r.mu.Lock()
	out := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return labelKey(out[i].labels) < labelKey(out[j].labels)
	})
	return out
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): HELP/TYPE headers per family,
// sorted families, cumulative histogram buckets with the canonical
// _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var b strings.Builder
	lastFamily := ""
	for _, m := range r.snapshot() {
		if m.name != lastFamily {
			fmt.Fprintf(&b, "# HELP %s %s\n", m.name, m.help)
			fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, m.kind)
			lastFamily = m.name
		}
		lk := labelKey(m.labels)
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(&b, "%s%s %d\n", m.name, lk, m.c.Value())
		case kindGauge:
			fmt.Fprintf(&b, "%s%s %d\n", m.name, lk, m.g.Value())
		case kindHistogram:
			var cum uint64
			for i, bound := range m.h.bounds {
				cum += m.h.counts[i].Load()
				fmt.Fprintf(&b, "%s_bucket%s %d\n", m.name, mergeLabelKey(m.labels, "le", formatBound(bound)), cum)
			}
			fmt.Fprintf(&b, "%s_bucket%s %d\n", m.name, mergeLabelKey(m.labels, "le", "+Inf"), m.h.Count())
			fmt.Fprintf(&b, "%s_sum%s %g\n", m.name, lk, m.h.Sum())
			fmt.Fprintf(&b, "%s_count%s %d\n", m.name, lk, m.h.Count())
			for _, q := range snapshotQuantiles {
				fmt.Fprintf(&b, "%s_quantile%s %g\n", m.name, mergeLabelKey(m.labels, "quantile", formatBound(q)), m.h.Quantile(q))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func formatBound(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", v), "0"), ".")
}

// snapshotQuantiles are the percentile estimates exported alongside
// every histogram in both the JSON and Prometheus expositions.
var snapshotQuantiles = []float64{0.5, 0.9, 0.99}

// mergeLabelKey renders the metric's constant labels plus one extra
// pair (le for buckets, quantile for percentile gauges).
func mergeLabelKey(l Labels, k, v string) string {
	merged := make(Labels, len(l)+1)
	for kk, vv := range l {
		merged[kk] = vv
	}
	merged[k] = v
	return labelKey(merged)
}

// MetricSnapshot is one metric in the JSON exposition
// (GET /v1/metrics?format=json).
type MetricSnapshot struct {
	Name   string           `json:"name"`
	Type   string           `json:"type"`
	Help   string           `json:"help,omitempty"`
	Labels Labels           `json:"labels,omitempty"`
	Value  *uint64          `json:"value,omitempty"`
	Level  *int64           `json:"level,omitempty"`
	Sum    *float64         `json:"sum,omitempty"`
	Count  *uint64          `json:"count,omitempty"`
	Bucket []BucketSnapshot `json:"buckets,omitempty"`
	// P50/P90/P99 are interpolated quantile estimates (histograms with
	// at least one observation only).
	P50 *float64 `json:"p50,omitempty"`
	P90 *float64 `json:"p90,omitempty"`
	P99 *float64 `json:"p99,omitempty"`
}

// BucketSnapshot is one cumulative histogram bucket.
type BucketSnapshot struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// Snapshot returns a JSON-marshalable view of every metric, in the
// same deterministic order as WritePrometheus.
func (r *Registry) Snapshot() []MetricSnapshot {
	if r == nil {
		return nil
	}
	ms := r.snapshot()
	out := make([]MetricSnapshot, 0, len(ms))
	for _, m := range ms {
		s := MetricSnapshot{Name: m.name, Type: m.kind.String(), Help: m.help, Labels: m.labels}
		switch m.kind {
		case kindCounter:
			v := m.c.Value()
			s.Value = &v
		case kindGauge:
			v := m.g.Value()
			s.Level = &v
		case kindHistogram:
			sum, count := m.h.Sum(), m.h.Count()
			s.Sum, s.Count = &sum, &count
			var cum uint64
			// The +Inf bucket is omitted: encoding/json cannot represent
			// infinity, and Count already carries the total.
			for i, bound := range m.h.bounds {
				cum += m.h.counts[i].Load()
				s.Bucket = append(s.Bucket, BucketSnapshot{LE: bound, Count: cum})
			}
			if count > 0 {
				p50, p90, p99 := m.h.Quantile(0.5), m.h.Quantile(0.9), m.h.Quantile(0.99)
				s.P50, s.P90, s.P99 = &p50, &p90, &p99
			}
		}
		out = append(out, s)
	}
	return out
}

// WriteJSON renders Snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// AbsorbSnapshot merges a metrics snapshot (typically one scraped from
// a peer's /v1/metrics?format=json) into the registry, adding extra
// labels over each metric's own so one federated registry can hold the
// same family from many nodes side by side. Counters and gauges add
// their values; histograms are reconstructed by de-cumulating the
// bucket snapshot (bucket i's increment = cum[i] - cum[i-1], the +Inf
// bucket = count - cum[last]) into a histogram with the same bounds.
// Absorbing the same snapshot twice double-counts; callers build a
// fresh registry per federation scrape.
func (r *Registry) AbsorbSnapshot(snap []MetricSnapshot, extra Labels) {
	if r == nil {
		return
	}
	for _, m := range snap {
		labels := make(Labels, len(m.Labels)+len(extra))
		for k, v := range m.Labels {
			labels[k] = v
		}
		for k, v := range extra {
			labels[k] = v
		}
		if len(labels) == 0 {
			labels = nil
		}
		switch m.Type {
		case "counter":
			if m.Value != nil {
				r.CounterL(m.Name, m.Help, labels).Add(*m.Value)
			}
		case "gauge":
			if m.Level != nil {
				r.GaugeL(m.Name, m.Help, labels).Add(*m.Level)
			}
		case "histogram":
			if m.Count == nil {
				continue
			}
			bounds := make([]float64, len(m.Bucket))
			for i, b := range m.Bucket {
				bounds[i] = b.LE
			}
			h := r.HistogramL(m.Name, m.Help, bounds, labels)
			if len(h.counts) != len(m.Bucket)+1 {
				continue // bucket layout clash with an earlier registration
			}
			var prev uint64
			for i, b := range m.Bucket {
				if b.Count >= prev {
					h.counts[i].Add(b.Count - prev)
				}
				prev = b.Count
			}
			if *m.Count >= prev {
				h.counts[len(h.counts)-1].Add(*m.Count - prev)
			}
			h.count.Add(*m.Count)
			if m.Sum != nil {
				h.addSum(*m.Sum)
			}
		}
	}
}

// addSum CAS-adds v to the histogram's float64-bits sum.
func (h *Histogram) addSum(v float64) {
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}
