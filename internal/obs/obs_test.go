package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(7)
	if c.Value() != 0 {
		t.Fatalf("nil counter value = %d", c.Value())
	}
	var g *Gauge
	g.Set(5)
	g.Inc()
	g.Dec()
	g.Add(-3)
	if g.Value() != 0 {
		t.Fatalf("nil gauge value = %d", g.Value())
	}
	var h *Histogram
	h.Observe(1.5)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil histogram count=%d sum=%g", h.Count(), h.Sum())
	}
}

func TestNilRegistryReturnsNilInstruments(t *testing.T) {
	var r *Registry
	if c := r.Counter("a_total", "help"); c != nil {
		t.Fatal("nil registry returned non-nil counter")
	}
	if g := r.Gauge("b", "help"); g != nil {
		t.Fatal("nil registry returned non-nil gauge")
	}
	if h := r.Histogram("c_seconds", "help", DefaultDurationBuckets()); h != nil {
		t.Fatal("nil registry returned non-nil histogram")
	}
	if s := r.Snapshot(); s != nil {
		t.Fatal("nil registry returned non-nil snapshot")
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("nil registry WritePrometheus: %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil registry wrote %q", buf.String())
	}
}

func TestRegistryUpsert(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "first")
	b := r.Counter("x_total", "second registration, same name")
	if a != b {
		t.Fatal("same-name counter registration did not return the existing instrument")
	}
	l1 := r.CounterL("y_total", "", Labels{"class": "interrupt"})
	l2 := r.CounterL("y_total", "", Labels{"class": "corunner"})
	if l1 == l2 {
		t.Fatal("distinct labels must yield distinct counters")
	}
	if l1 != r.CounterL("y_total", "", Labels{"class": "interrupt"}) {
		t.Fatal("re-registering same (name,labels) must return existing counter")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("z", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("z", "")
}

func TestCountersConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "")
	g := r.Gauge("conc_gauge", "")
	h := r.Histogram("conc_seconds", "", []float64{0.5, 1, 2})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Inc()
				h.Observe(1.5)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 8000 {
		t.Fatalf("gauge = %d, want 8000", g.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
	if h.Sum() != 8000*1.5 {
		t.Fatalf("histogram sum = %g, want %g", h.Sum(), 8000*1.5)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.1"} 2`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_count 5`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("btb_lookups_total", "BTB lookups").Add(42)
	r.Gauge("jobs_queue_depth", "queued jobs").Set(3)
	r.CounterL("interfere_faults_total", "faults", Labels{"class": "interrupt"}).Add(2)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# HELP btb_lookups_total BTB lookups",
		"# TYPE btb_lookups_total counter",
		"btb_lookups_total 42",
		"# TYPE jobs_queue_depth gauge",
		"jobs_queue_depth 3",
		`interfere_faults_total{class="interrupt"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestSnapshotJSONRoundTrips(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(7)
	r.Gauge("b", "").Set(-2)
	r.Histogram("c_seconds", "", []float64{1, 2}).Observe(1.5)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var got []MetricSnapshot
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v\n%s", err, buf.String())
	}
	if len(got) != 3 {
		t.Fatalf("snapshot has %d metrics, want 3", len(got))
	}
	// Deterministic name order.
	if got[0].Name != "a_total" || got[1].Name != "b" || got[2].Name != "c_seconds" {
		t.Fatalf("snapshot order: %s %s %s", got[0].Name, got[1].Name, got[2].Name)
	}
	if got[0].Value == nil || *got[0].Value != 7 {
		t.Fatalf("counter snapshot = %+v", got[0])
	}
	if got[1].Level == nil || *got[1].Level != -2 {
		t.Fatalf("gauge snapshot = %+v", got[1])
	}
	h := got[2]
	if h.Count == nil || *h.Count != 1 || h.Sum == nil || *h.Sum != 1.5 {
		t.Fatalf("histogram snapshot = %+v", h)
	}
	if len(h.Bucket) != 2 || h.Bucket[0].Count != 0 || h.Bucket[1].Count != 1 {
		t.Fatalf("histogram buckets = %+v", h.Bucket)
	}
}

func TestFormatBound(t *testing.T) {
	cases := map[float64]string{0.001: "0.001", 0.5: "0.5", 1: "1", 120: "120"}
	for in, want := range cases {
		if got := formatBound(in); got != want {
			t.Errorf("formatBound(%g) = %q, want %q", in, got, want)
		}
	}
}
