package obs

import (
	"strings"
	"testing"
)

// TestGaugeLabeledSeries: GaugeL keeps one independent series per
// label set under a shared family name (per-peer liveness in
// internal/cluster), upserts to the same instrument on re-registration,
// and renders each series on its own Prometheus line.
func TestGaugeLabeledSeries(t *testing.T) {
	r := NewRegistry()
	a := r.GaugeL("cluster_peer_alive", "peer liveness", Labels{"peer": "a"})
	b := r.GaugeL("cluster_peer_alive", "peer liveness", Labels{"peer": "b"})
	if a == b {
		t.Fatal("distinct label sets share one gauge")
	}
	a.Set(1)
	b.Set(0)
	if again := r.GaugeL("cluster_peer_alive", "peer liveness", Labels{"peer": "a"}); again != a {
		t.Fatal("re-registration did not upsert to the existing series")
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`cluster_peer_alive{peer="a"} 1`,
		`cluster_peer_alive{peer="b"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
	// One HELP/TYPE header for the family, not one per series.
	if strings.Count(text, "# TYPE cluster_peer_alive gauge") != 1 {
		t.Fatalf("family header repeated:\n%s", text)
	}

	// Nil-registry and nil-gauge paths stay no-ops.
	var nilReg *Registry
	g := nilReg.GaugeL("x", "y", Labels{"peer": "z"})
	if g != nil {
		t.Fatal("nil registry returned a non-nil gauge")
	}
	g.Set(7) // must not panic
}
