package obs

// TraceHub indexes trace fragments by trace ID. In a cluster, a job
// that hops between nodes (forward, steal, adopt) leaves events on
// every node it touched; each node writes into its *local* hub under
// the job's trace ID, and the merged-trace endpoint collects the
// per-node fragments and stitches them (trace.go WriteChromeMerged).
//
// The hub is bounded FIFO: past the cap the oldest trace is evicted.
// An evicted fragment stays writable through any *Trace pointer a
// running job still holds — it just can no longer be retrieved — so a
// paper-scale sweep cannot exhaust memory through its telemetry while
// in-flight jobs keep working.
//
// Like every obs type, a nil hub is inert: Fragment returns a nil
// *Trace whose methods are no-ops.

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// DefaultHubCap bounds the distinct trace IDs one hub retains.
const DefaultHubCap = 1024

// NewTraceID mints a random 16-hex-character trace ID. IDs never enter
// cache keys, result bytes, or experiment decisions, so randomness here
// cannot perturb determinism.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is essentially fatal elsewhere; a
		// time-derived ID keeps tracing alive rather than panicking.
		now := uint64(time.Now().UnixNano())
		for i := range b {
			b[i] = byte(now >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

// TraceHub is a bounded map of trace ID -> local trace fragment.
type TraceHub struct {
	mu    sync.Mutex
	frags map[string]*Trace
	order []string // insertion order, for FIFO eviction
	cap   int
}

// NewTraceHub returns a hub retaining at most cap traces (cap <= 0
// means DefaultHubCap).
func NewTraceHub(cap int) *TraceHub {
	if cap <= 0 {
		cap = DefaultHubCap
	}
	return &TraceHub{frags: make(map[string]*Trace), cap: cap}
}

// Fragment returns the local trace for id, creating it on first use.
// Returns nil (an inert trace) on a nil hub or empty id.
func (h *TraceHub) Fragment(id string) *Trace {
	if h == nil || id == "" {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if t, ok := h.frags[id]; ok {
		return t
	}
	for len(h.order) >= h.cap {
		delete(h.frags, h.order[0])
		h.order = h.order[1:]
	}
	t := NewTrace()
	h.frags[id] = t
	h.order = append(h.order, id)
	return t
}

// Get returns the local trace for id without creating one.
func (h *TraceHub) Get(id string) (*Trace, bool) {
	if h == nil {
		return nil, false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	t, ok := h.frags[id]
	return t, ok
}

// Len returns the number of retained traces.
func (h *TraceHub) Len() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.frags)
}
