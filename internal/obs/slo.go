package obs

// SLO burn-rate tracking over the registry's own instruments. An
// objective declares what fraction of events may be "bad" (a latency
// observation over its threshold, or a failed job); the tracker
// samples the underlying cumulative histogram/counters on a fixed
// cadence into a bounded ring, computes windowed deltas, and reports
// burn rates: badFraction / budget, where 1.0 means the error budget
// is being consumed exactly as fast as the window allows. Two windows
// are reported — the full rolling window (slow burn, "are we meeting
// the SLO") and the most recent twelfth of it (fast burn, "are we
// burning budget right now") — the standard multi-window alerting
// shape, scaled down to one process.
//
// Like every obs surface the tracker only reads instruments; it never
// feeds experiment decisions, cache keys, or result bytes.

import (
	"sync"
	"time"
)

// Objective is one service-level objective. Build with
// LatencyObjective or ErrorRateObjective.
type Objective struct {
	// Name identifies the objective in reports and metrics labels.
	Name string
	// Kind is "latency" or "error_rate".
	Kind string
	// Threshold is the latency bound in seconds (latency kind only).
	Threshold float64
	// Target is the attainment target in (0,1): the fraction of events
	// that must be good. Budget = 1 - Target.
	Target float64

	hist       *Histogram
	bad, total *Counter
}

// LatencyObjective declares "a fraction target of observations in h
// must be <= threshold seconds" (e.g. p99 queue latency under 5s is
// target 0.99, threshold 5).
func LatencyObjective(name string, h *Histogram, threshold, target float64) Objective {
	return Objective{Name: name, Kind: "latency", Threshold: threshold, Target: target, hist: h}
}

// ErrorRateObjective declares "bad/total must stay under 1-target"
// (e.g. target 0.95 tolerates a 5% failure rate).
func ErrorRateObjective(name string, bad, total *Counter, target float64) Objective {
	return Objective{Name: name, Kind: "error_rate", Target: target, bad: bad, total: total}
}

// SLOStatus is one objective's state over the rolling window, the wire
// form of GET /v1/slo.
type SLOStatus struct {
	Name             string  `json:"name"`
	Kind             string  `json:"kind"`
	ThresholdSeconds float64 `json:"threshold_seconds,omitempty"`
	Target           float64 `json:"target"`
	WindowSeconds    float64 `json:"window_seconds"`
	WindowTotal      float64 `json:"window_total"`
	WindowBad        float64 `json:"window_bad"`
	Attainment       float64 `json:"attainment"`
	BudgetRemaining  float64 `json:"budget_remaining"`
	BurnRate         float64 `json:"burn_rate"`
	BurnRateFast     float64 `json:"burn_rate_fast"`
	Healthy          bool    `json:"healthy"`
}

// sloSample is one tick's cumulative (bad, total) reading.
type sloSample struct {
	t          time.Time
	bad, total float64
}

// sloState is one tracked objective plus its sample ring.
type sloState struct {
	obj      Objective
	ring     []sloSample
	burnG    *Gauge
	healthyG *Gauge
}

// fastBurnAlert is the fast-window burn rate past which an objective
// reports unhealthy even before the slow window exhausts: budget
// burning >= 12x sustainable means the full window's budget would be
// gone within one fast window.
const fastBurnAlert = 12.0

// SLOTracker samples a set of objectives on a fixed cadence.
type SLOTracker struct {
	reg      *Registry
	window   time.Duration
	interval time.Duration

	mu   sync.Mutex
	objs []*sloState

	startOnce sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewSLOTracker returns a tracker with the given rolling window and
// sampling interval (window <= 0 means 1h; interval <= 0 means
// window/60). The tracker is idle until Start; Tick may be called
// directly for a deterministic cadence.
func NewSLOTracker(reg *Registry, window, interval time.Duration) *SLOTracker {
	if window <= 0 {
		window = time.Hour
	}
	if interval <= 0 {
		interval = window / 60
	}
	if interval <= 0 {
		interval = time.Second
	}
	return &SLOTracker{
		reg:      reg,
		window:   window,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Window returns the rolling window length.
func (s *SLOTracker) Window() time.Duration {
	if s == nil {
		return 0
	}
	return s.window
}

// Add registers an objective. Not safe to call after Start.
func (s *SLOTracker) Add(obj Objective) {
	if s == nil {
		return
	}
	ringCap := int(s.window/s.interval) + 1
	if ringCap < 2 {
		ringCap = 2
	}
	st := &sloState{
		obj:      obj,
		ring:     make([]sloSample, 0, ringCap),
		burnG:    s.reg.GaugeL("slo_burn_rate_milli", "slow-window burn rate x1000", Labels{"objective": obj.Name}),
		healthyG: s.reg.GaugeL("slo_healthy", "1 when the objective's budget is intact", Labels{"objective": obj.Name}),
	}
	s.mu.Lock()
	s.objs = append(s.objs, st)
	s.mu.Unlock()
}

// Start launches the sampling goroutine (idempotent).
func (s *SLOTracker) Start() {
	if s == nil {
		return
	}
	s.startOnce.Do(func() {
		go func() {
			defer close(s.done)
			tick := time.NewTicker(s.interval)
			defer tick.Stop()
			s.Tick()
			for {
				select {
				case <-s.stop:
					return
				case <-tick.C:
					s.Tick()
				}
			}
		}()
	})
}

// Stop halts sampling and waits for the goroutine to exit. Safe to
// call without Start and more than once.
func (s *SLOTracker) Stop() {
	if s == nil {
		return
	}
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	s.startOnce.Do(func() { close(s.done) })
	<-s.done
}

// Tick records one cumulative sample per objective and refreshes the
// burn-rate gauges.
func (s *SLOTracker) Tick() {
	if s == nil {
		return
	}
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, st := range s.objs {
		st.ring = append(st.ring, sloSample{t: now, bad: st.cumBad(), total: st.cumTotal()})
		// Trim samples that fell out of the window (keep one anchor just
		// outside it so the slow delta spans the full window).
		cut := 0
		for cut < len(st.ring)-1 && now.Sub(st.ring[cut+1].t) >= s.window {
			cut++
		}
		st.ring = st.ring[cut:]
		status := s.statusLocked(st)
		st.burnG.Set(int64(status.BurnRate * 1000))
		if status.Healthy {
			st.healthyG.Set(1)
		} else {
			st.healthyG.Set(0)
		}
	}
}

// cumBad returns the objective's cumulative bad-event count.
func (st *sloState) cumBad() float64 {
	switch st.obj.Kind {
	case "latency":
		h := st.obj.hist
		return float64(h.Count()) - h.CountBelow(st.obj.Threshold)
	case "error_rate":
		return float64(st.obj.bad.Value())
	}
	return 0
}

// cumTotal returns the objective's cumulative event count.
func (st *sloState) cumTotal() float64 {
	switch st.obj.Kind {
	case "latency":
		return float64(st.obj.hist.Count())
	case "error_rate":
		return float64(st.obj.total.Value())
	}
	return 0
}

// statusLocked computes the objective's report from its ring.
func (s *SLOTracker) statusLocked(st *sloState) SLOStatus {
	out := SLOStatus{
		Name:             st.obj.Name,
		Kind:             st.obj.Kind,
		ThresholdSeconds: st.obj.Threshold,
		Target:           st.obj.Target,
		WindowSeconds:    s.window.Seconds(),
		Attainment:       1,
		BudgetRemaining:  1,
		Healthy:          true,
	}
	if len(st.ring) == 0 {
		return out
	}
	newest := st.ring[len(st.ring)-1]
	oldest := st.ring[0]
	budget := 1 - st.obj.Target
	if budget <= 0 {
		budget = 1e-9
	}
	burn := func(from sloSample) (bad, total, rate float64) {
		bad = newest.bad - from.bad
		total = newest.total - from.total
		if bad < 0 {
			bad = 0
		}
		if total <= 0 {
			return 0, 0, 0
		}
		return bad, total, (bad / total) / budget
	}
	out.WindowBad, out.WindowTotal, out.BurnRate = burn(oldest)
	if out.WindowTotal > 0 {
		out.Attainment = 1 - out.WindowBad/out.WindowTotal
		out.BudgetRemaining = 1 - out.BurnRate
		if out.BudgetRemaining < 0 {
			out.BudgetRemaining = 0
		}
	}
	// Fast window: the newest twelfth of the rolling window.
	fastFrom := oldest
	fastCut := newest.t.Add(-s.window / 12)
	for i := len(st.ring) - 1; i >= 0; i-- {
		if st.ring[i].t.Before(fastCut) || i == 0 {
			fastFrom = st.ring[i]
			break
		}
	}
	_, _, out.BurnRateFast = burn(fastFrom)
	out.Healthy = out.BudgetRemaining > 0 && out.BurnRateFast < fastBurnAlert
	return out
}

// Report returns every objective's current status, in Add order.
func (s *SLOTracker) Report() []SLOStatus {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SLOStatus, 0, len(s.objs))
	for _, st := range s.objs {
		out = append(out, s.statusLocked(st))
	}
	return out
}

// Healthy reports whether every objective is healthy (true with no
// objectives, and on a nil tracker).
func (s *SLOTracker) Healthy() bool {
	for _, st := range s.Report() {
		if !st.Healthy {
			return false
		}
	}
	return true
}

// Burning returns the names of unhealthy objectives.
func (s *SLOTracker) Burning() []string {
	var out []string
	for _, st := range s.Report() {
		if !st.Healthy {
			out = append(out, st.Name)
		}
	}
	return out
}
