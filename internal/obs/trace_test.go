package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	tr.Event("cat", "instant", 0, nil)
	sp := tr.Begin("cat", "span", 1, nil)
	sp.End()
	sp.EndWith(map[string]any{"x": 1})
	if tr.Events() != nil || tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil trace recorded something")
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("nil WriteChrome: %v", err)
	}
	if err := tr.WriteNDJSON(&buf); err != nil {
		t.Fatalf("nil WriteNDJSON: %v", err)
	}
}

func TestTraceSpanAndEvent(t *testing.T) {
	tr := NewTrace()
	sp := tr.Begin("attack", "probe", 3, map[string]any{"round": 1})
	tr.Event("attack", "retry", 3, map[string]any{"reason": "record_lost"})
	sp.EndWith(map[string]any{"confidence": 0.9})
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	// Instant recorded first (span records at End).
	if evs[0].Ph != "i" || evs[0].Name != "retry" {
		t.Fatalf("event[0] = %+v", evs[0])
	}
	sp2 := evs[1]
	if sp2.Ph != "X" || sp2.Name != "probe" || sp2.TID != 3 {
		t.Fatalf("event[1] = %+v", sp2)
	}
	if sp2.Args["round"] != 1 || sp2.Args["confidence"] != 0.9 {
		t.Fatalf("span args not merged: %+v", sp2.Args)
	}
	if sp2.Dur < 0 || sp2.TS < 0 {
		t.Fatalf("negative timestamps: %+v", sp2)
	}
}

func TestTraceCapDropsAndCounts(t *testing.T) {
	tr := NewTraceCap(4)
	for i := 0; i < 10; i++ {
		tr.Event("c", "e", 0, nil)
	}
	if tr.Len() != 4 {
		t.Fatalf("retained %d events, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
	var buf bytes.Buffer
	if err := tr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"count":6`) {
		t.Fatalf("NDJSON missing dropped marker:\n%s", buf.String())
	}
}

func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(tid int64) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				sp := tr.Begin("c", "s", tid, nil)
				tr.Event("c", "e", tid, nil)
				sp.End()
			}
		}(int64(i))
	}
	wg.Wait()
	if tr.Len() != 8*200*2 {
		t.Fatalf("retained %d events, want %d", tr.Len(), 8*200*2)
	}
}

func TestWriteChromeShape(t *testing.T) {
	tr := NewTrace()
	sp := tr.Begin("pipeline", "prime", 0, nil)
	sp.End()
	tr.Event("pipeline", "fault", 1, map[string]any{"class": "interrupt"})
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Metadata    map[string]any   `json:"metadata"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome JSON does not parse: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("traceEvents len = %d, want 2", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		for _, field := range []string{"name", "cat", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				t.Errorf("chrome event missing %q: %+v", field, ev)
			}
		}
	}
	if doc.TraceEvents[0]["ph"] != "X" || doc.TraceEvents[1]["ph"] != "i" {
		t.Fatalf("phases: %v %v", doc.TraceEvents[0]["ph"], doc.TraceEvents[1]["ph"])
	}
}

func TestWriteNDJSONOneObjectPerLine(t *testing.T) {
	tr := NewTrace()
	tr.Event("a", "x", 0, nil)
	tr.Event("a", "y", 0, nil)
	var buf bytes.Buffer
	if err := tr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	for _, ln := range lines {
		var ev TraceEvent
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("line %q: %v", ln, err)
		}
	}
}
