package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"
)

func TestHistogramQuantileEmpty(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", DefaultDurationBuckets())
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty histogram Quantile(%g) = %g, want 0", q, got)
		}
	}
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil histogram Quantile = %g, want 0", got)
	}
	// Empty histograms must not emit p50/p90/p99 in the JSON snapshot.
	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	if snap[0].P50 != nil || snap[0].P90 != nil || snap[0].P99 != nil {
		t.Errorf("empty histogram snapshot carries quantiles: %+v", snap[0])
	}
}

func TestHistogramQuantileSingleBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{10})
	for i := 0; i < 100; i++ {
		h.Observe(5)
	}
	// All observations sit in [0,10]; the median interpolates to the
	// middle of the bucket.
	if got := h.Quantile(0.5); math.Abs(got-5) > 1e-9 {
		t.Errorf("Quantile(0.5) = %g, want 5", got)
	}
	if got := h.Quantile(1); math.Abs(got-10) > 1e-9 {
		t.Errorf("Quantile(1) = %g, want 10", got)
	}
	// An observation past the last bound lands in +Inf and clamps to
	// the largest finite bound.
	h.Observe(1e9)
	if got := h.Quantile(1); got != 10 {
		t.Errorf("Quantile(1) with +Inf tail = %g, want clamp to 10", got)
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 2, 4})
	// 50 obs in (0,1], 30 in (1,2], 20 in (2,4].
	for i := 0; i < 50; i++ {
		h.Observe(0.5)
	}
	for i := 0; i < 30; i++ {
		h.Observe(1.5)
	}
	for i := 0; i < 20; i++ {
		h.Observe(3)
	}
	// p90: rank 90 of 100 -> 10 into the (2,4] bucket of 20 -> 3.0.
	if got := h.Quantile(0.9); math.Abs(got-3) > 1e-9 {
		t.Errorf("Quantile(0.9) = %g, want 3", got)
	}
	// p50: rank 50 lands exactly at the top of the first bucket.
	if got := h.Quantile(0.5); math.Abs(got-1) > 1e-9 {
		t.Errorf("Quantile(0.5) = %g, want 1", got)
	}
	snap := r.Snapshot()
	if snap[0].P90 == nil || math.Abs(*snap[0].P90-3) > 1e-9 {
		t.Errorf("snapshot P90 = %v, want 3", snap[0].P90)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `h_quantile{quantile="0.99"}`) {
		t.Errorf("Prometheus exposition missing quantile series:\n%s", buf.String())
	}
}

func TestHistogramCountBelow(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 2})
	for i := 0; i < 10; i++ {
		h.Observe(1.5) // (1,2] bucket
	}
	if got := h.CountBelow(1); got != 0 {
		t.Errorf("CountBelow(1) = %g, want 0", got)
	}
	if got := h.CountBelow(1.5); math.Abs(got-5) > 1e-9 {
		t.Errorf("CountBelow(1.5) = %g, want 5 (midpoint interpolation)", got)
	}
	if got := h.CountBelow(2); got != 10 {
		t.Errorf("CountBelow(2) = %g, want 10", got)
	}
}

func TestAbsorbSnapshotFederates(t *testing.T) {
	mk := func(submitted uint64, depth int64, obsv []float64) []MetricSnapshot {
		r := NewRegistry()
		r.Counter("jobs_submitted_total", "").Add(submitted)
		r.Gauge("jobs_queue_depth", "").Set(depth)
		h := r.Histogram("job_duration_seconds", "", []float64{1, 10})
		for _, v := range obsv {
			h.Observe(v)
		}
		return r.Snapshot()
	}
	fed := NewRegistry()
	fed.AbsorbSnapshot(mk(5, 2, []float64{0.5, 3}), Labels{"node": "n1"})
	fed.AbsorbSnapshot(mk(7, 1, []float64{20}), Labels{"node": "n2"})

	if got := fed.CounterL("jobs_submitted_total", "", Labels{"node": "n1"}).Value(); got != 5 {
		t.Errorf("n1 submitted = %d, want 5", got)
	}
	if got := fed.CounterL("jobs_submitted_total", "", Labels{"node": "n2"}).Value(); got != 7 {
		t.Errorf("n2 submitted = %d, want 7", got)
	}
	if got := fed.GaugeL("jobs_queue_depth", "", Labels{"node": "n2"}).Value(); got != 1 {
		t.Errorf("n2 depth = %d, want 1", got)
	}
	// Histogram reconstruction: n2's single observation of 20 must land
	// in the +Inf bucket with sum/count intact.
	h := fed.HistogramL("job_duration_seconds", "", []float64{1, 10}, Labels{"node": "n2"})
	if h.Count() != 1 || math.Abs(h.Sum()-20) > 1e-9 {
		t.Errorf("n2 histogram count=%d sum=%g, want 1/20", h.Count(), h.Sum())
	}
	if got := h.CountBelow(10); got != 0 {
		t.Errorf("n2 histogram CountBelow(10) = %g, want 0 (obs in +Inf)", got)
	}
	h1 := fed.HistogramL("job_duration_seconds", "", []float64{1, 10}, Labels{"node": "n1"})
	if h1.Count() != 2 || math.Abs(h1.Sum()-3.5) > 1e-9 {
		t.Errorf("n1 histogram count=%d sum=%g, want 2/3.5", h1.Count(), h1.Sum())
	}
	// Absorbed snapshots must round-trip through the JSON exposition.
	var buf bytes.Buffer
	if err := fed.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snaps []MetricSnapshot
	if err := json.Unmarshal(buf.Bytes(), &snaps); err != nil {
		t.Fatal(err)
	}
}

func TestTraceHubBoundedAndKeyed(t *testing.T) {
	h := NewTraceHub(2)
	a := h.Fragment("aaaa")
	if a == nil {
		t.Fatal("Fragment returned nil on live hub")
	}
	if got := h.Fragment("aaaa"); got != a {
		t.Error("Fragment not idempotent per ID")
	}
	h.Fragment("bbbb")
	h.Fragment("cccc") // evicts aaaa
	if _, ok := h.Get("aaaa"); ok {
		t.Error("oldest trace not evicted at cap")
	}
	if _, ok := h.Get("cccc"); !ok {
		t.Error("newest trace missing")
	}
	if h.Len() != 2 {
		t.Errorf("Len = %d, want 2", h.Len())
	}
	// Evicted fragments stay writable via retained pointers.
	a.Event("job", "late", 0, nil)
	if a.Len() != 1 {
		t.Error("evicted fragment not writable")
	}
	var nilHub *TraceHub
	if tr := nilHub.Fragment("x"); tr != nil {
		t.Error("nil hub must hand out nil traces")
	}
	nilHub.Fragment("x").Event("a", "b", 0, nil) // must not panic
}

func TestNewTraceIDShape(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 64; i++ {
		id := NewTraceID()
		if len(id) != 16 {
			t.Fatalf("trace ID %q length %d, want 16", id, len(id))
		}
		for _, c := range id {
			if !strings.ContainsRune("0123456789abcdef", c) {
				t.Fatalf("trace ID %q not lowercase hex", id)
			}
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %q in 64 draws", id)
		}
		seen[id] = true
	}
}

func TestWriteChromeMergedAnchorsEpochs(t *testing.T) {
	frags := []TraceFragment{
		{Node: "n2", EpochUS: 1500, Events: []TraceEvent{{Name: "run", Cat: "job", Ph: "X", TS: 10, Dur: 5}}},
		{Node: "n1", EpochUS: 1000, Events: []TraceEvent{{Name: "forward", Cat: "hop", Ph: "X", TS: 100, Dur: 50}}},
	}
	var buf bytes.Buffer
	if err := WriteChromeMerged(&buf, frags); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   int64          `json:"ts"`
			PID  int64          `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	byName := map[string][]int64{}
	pids := map[int64]string{}
	for _, ev := range out.TraceEvents {
		if ev.Ph == "M" {
			pids[ev.PID] = ev.Args["name"].(string)
			continue
		}
		byName[ev.Name] = append(byName[ev.Name], ev.TS, ev.PID)
	}
	if len(pids) != 2 {
		t.Fatalf("want 2 process_name rows, got %v", pids)
	}
	// n1 has the earliest epoch: its events keep TS; n2's shift by 500.
	if got := byName["forward"]; len(got) != 2 || got[0] != 100 {
		t.Errorf("forward TS = %v, want [100 pid]", got)
	}
	if got := byName["run"]; len(got) != 2 || got[0] != 510 {
		t.Errorf("run TS = %v, want 510 (10 + epoch offset 500)", got)
	}
	if pids[byName["forward"][1]] != "n1" || pids[byName["run"][1]] != "n2" {
		t.Errorf("node attribution wrong: pids=%v", pids)
	}
}

func TestProfilerSamplesAndMetrics(t *testing.T) {
	r := NewRegistry()
	p := NewProfiler(r, time.Hour, 4)
	first := p.Sample()
	if first.Goroutines <= 0 || first.HeapAllocBytes == 0 {
		t.Errorf("first sample implausible: %+v", first)
	}
	// Allocate between samples so the delta is visible.
	waste := make([][]byte, 64)
	for i := range waste {
		waste[i] = make([]byte, 4096)
	}
	second := p.Sample()
	_ = waste
	if second.AllocBytesDelta == 0 {
		t.Error("second sample recorded no alloc delta")
	}
	if got := r.Counter("profile_samples_total", "").Value(); got != 2 {
		t.Errorf("profile_samples_total = %d, want 2", got)
	}
	if got := r.Gauge("go_goroutines", "").Value(); got <= 0 {
		t.Errorf("go_goroutines gauge = %d", got)
	}
	// Ring wraps at cap and returns chronological order.
	for i := 0; i < 5; i++ {
		p.Sample()
	}
	all := p.Samples(0)
	if len(all) != 4 {
		t.Fatalf("ring retained %d samples, want cap 4", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Time.Before(all[i-1].Time) {
			t.Fatal("samples out of chronological order")
		}
	}
	if got := p.Samples(2); len(got) != 2 || !got[1].Time.Equal(all[3].Time) {
		t.Fatal("Samples(2) did not return the newest two")
	}
	// Peek must not advance the ring.
	p.Peek()
	if len(p.Samples(0)) != 4 {
		t.Fatal("Peek advanced the ring")
	}
	p.Stop() // never Started: must not hang
}

func TestProfilerStartStop(t *testing.T) {
	r := NewRegistry()
	p := NewProfiler(r, time.Millisecond, 8)
	p.Start()
	deadline := time.Now().Add(2 * time.Second)
	for r.Counter("profile_samples_total", "").Value() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	p.Stop()
	if got := r.Counter("profile_samples_total", "").Value(); got < 2 {
		t.Errorf("sampler recorded %d ticks, want >= 2", got)
	}
	p.Stop() // idempotent
}

func TestSLOTrackerLatencyBurn(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []float64{1, 10})
	tr := NewSLOTracker(r, time.Hour, time.Minute)
	tr.Add(LatencyObjective("p99_lat", h, 1, 0.99))
	tr.Tick() // baseline: empty

	// 100 observations, 2 over threshold: bad fraction 2% vs 1% budget.
	for i := 0; i < 98; i++ {
		h.Observe(0.5)
	}
	h.Observe(5)
	h.Observe(5)
	tr.Tick()

	rep := tr.Report()
	if len(rep) != 1 {
		t.Fatalf("Report len = %d", len(rep))
	}
	st := rep[0]
	if st.WindowTotal != 100 {
		t.Errorf("WindowTotal = %g, want 100", st.WindowTotal)
	}
	if math.Abs(st.WindowBad-2) > 0.01 {
		t.Errorf("WindowBad = %g, want 2", st.WindowBad)
	}
	if math.Abs(st.BurnRate-2) > 0.01 {
		t.Errorf("BurnRate = %g, want 2 (2%% bad / 1%% budget)", st.BurnRate)
	}
	if st.BudgetRemaining != 0 {
		t.Errorf("BudgetRemaining = %g, want 0 (overspent)", st.BudgetRemaining)
	}
	if st.Healthy || tr.Healthy() {
		t.Error("objective burning 2x must be unhealthy")
	}
	if b := tr.Burning(); len(b) != 1 || b[0] != "p99_lat" {
		t.Errorf("Burning = %v", b)
	}
	if got := r.GaugeL("slo_healthy", "", Labels{"objective": "p99_lat"}).Value(); got != 0 {
		t.Errorf("slo_healthy gauge = %d, want 0", got)
	}
}

func TestSLOTrackerErrorRateHealthy(t *testing.T) {
	r := NewRegistry()
	bad := r.Counter("failed", "")
	total := r.Counter("submitted", "")
	tr := NewSLOTracker(r, time.Hour, time.Minute)
	tr.Add(ErrorRateObjective("errors", bad, total, 0.95))
	tr.Tick()
	total.Add(100)
	bad.Add(2) // 2% errors vs 5% budget
	tr.Tick()
	st := tr.Report()[0]
	if !st.Healthy || !tr.Healthy() {
		t.Errorf("2%% errors under a 5%% budget must be healthy: %+v", st)
	}
	if math.Abs(st.BurnRate-0.4) > 0.01 {
		t.Errorf("BurnRate = %g, want 0.4", st.BurnRate)
	}
	if math.Abs(st.Attainment-0.98) > 1e-9 {
		t.Errorf("Attainment = %g, want 0.98", st.Attainment)
	}
	// Empty tracker and nil tracker are healthy.
	if !NewSLOTracker(r, 0, 0).Healthy() {
		t.Error("empty tracker unhealthy")
	}
	var nilT *SLOTracker
	if !nilT.Healthy() {
		t.Error("nil tracker unhealthy")
	}
}
