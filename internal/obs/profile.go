package obs

// Continuous profiling: a sampler goroutine that exports Go runtime
// health — heap, GC pauses, goroutine count, scheduler latency — into
// the metrics registry and keeps a bounded ring of per-interval deltas
// retrievable via GET /v1/profilez. The point is to make the
// zero-allocation hot-path claims continuously verifiable on a live
// daemon (alloc-rate and GC-pause deltas under real traffic) rather
// than only under go test alloc gates.
//
// Sampling reads ONLY runtime/metrics — never runtime.ReadMemStats,
// whose stop-the-world pause would tax the very hot path the profiler
// exists to watch. Metrics this runtime does not expose are skipped
// gracefully (probed once at construction), so the profiler works
// across Go releases. Like every obs surface, the profiler only
// observes: nothing it records feeds experiment decisions, cache keys,
// or result bytes.

import (
	"math"
	"runtime"
	rtm "runtime/metrics"
	"sync"
	"time"
)

// DefaultProfileRing bounds the samples one Profiler retains.
const DefaultProfileRing = 360

// The runtime/metrics names the profiler samples. Indexes into
// Profiler.samples — keep the two lists aligned.
const (
	schedLatencyMetric = "/sched/latencies:seconds"
	heapBytesMetric    = "/memory/classes/heap/objects:bytes"
	heapObjectsMetric  = "/gc/heap/objects:objects"
	allocBytesMetric   = "/gc/heap/allocs:bytes"
	allocObjectsMetric = "/gc/heap/allocs:objects"
	gcCyclesMetric     = "/gc/cycles/total:gc-cycles"
	gcPauseMetric      = "/sched/pauses/total/gc:seconds"
)

var profileMetricNames = []string{
	heapBytesMetric,
	heapObjectsMetric,
	allocBytesMetric,
	allocObjectsMetric,
	gcCyclesMetric,
	gcPauseMetric,
	schedLatencyMetric,
}

// ProfileSample is one sampler tick: absolute levels plus deltas since
// the previous tick.
type ProfileSample struct {
	Time            time.Time `json:"time"`
	Goroutines      int       `json:"goroutines"`
	HeapAllocBytes  uint64    `json:"heap_alloc_bytes"`
	HeapObjects     uint64    `json:"heap_objects"`
	AllocBytesDelta uint64    `json:"alloc_bytes_delta"`
	MallocsDelta    uint64    `json:"mallocs_delta"`
	GCCyclesDelta   uint64    `json:"gc_cycles_delta"`
	GCPauseDelta    float64   `json:"gc_pause_seconds_delta"`
	SchedLatencyP50 float64   `json:"sched_latency_p50_seconds"`
	SchedLatencyP99 float64   `json:"sched_latency_p99_seconds"`
}

// prevCumulative is the delta baseline from the last advancing read.
type prevCumulative struct {
	allocBytes   uint64
	allocObjects uint64
	gcCycles     uint64
	gcPauseSec   float64
	sched        rtm.Float64Histogram
}

// Profiler samples runtime state on a fixed interval into a bounded
// ring and a set of registry instruments.
type Profiler struct {
	reg      *Registry
	interval time.Duration

	goroutines   *Gauge
	heapAlloc    *Gauge
	heapObjects  *Gauge
	allocBytes   *Counter
	mallocs      *Counter
	gcCycles     *Counter
	gcPauseUS    *Counter
	schedP99US   *Gauge
	samplesTotal *Counter

	mu        sync.Mutex
	ring      []ProfileSample
	next      int
	filled    bool
	samples   []rtm.Sample // reused batch read buffer, one per profileMetricNames
	supported []bool       // per samples index: this runtime exposes it
	prev      prevCumulative
	havePrev  bool

	startOnce sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewProfiler returns a profiler exporting into reg every interval,
// retaining ringCap samples (<= 0 means DefaultProfileRing). The
// profiler is idle until Start.
func NewProfiler(reg *Registry, interval time.Duration, ringCap int) *Profiler {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	if ringCap <= 0 {
		ringCap = DefaultProfileRing
	}
	p := &Profiler{
		reg:      reg,
		interval: interval,
		ring:     make([]ProfileSample, ringCap),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),

		goroutines:   reg.Gauge("go_goroutines", "live goroutines at last profile sample"),
		heapAlloc:    reg.Gauge("go_heap_alloc_bytes", "heap bytes in use at last profile sample"),
		heapObjects:  reg.Gauge("go_heap_objects", "live heap objects at last profile sample"),
		allocBytes:   reg.Counter("go_alloc_bytes_total", "cumulative bytes allocated (sampled)"),
		mallocs:      reg.Counter("go_mallocs_total", "cumulative heap allocations (sampled)"),
		gcCycles:     reg.Counter("go_gc_cycles_total", "completed GC cycles (sampled)"),
		gcPauseUS:    reg.Counter("go_gc_pause_micros_total", "cumulative GC stop-the-world pause (sampled)"),
		schedP99US:   reg.Gauge("go_sched_latency_p99_micros", "p99 goroutine scheduling latency over the last interval"),
		samplesTotal: reg.Counter("profile_samples_total", "profiler ticks recorded"),
	}
	// Probe once which metrics this runtime exposes; unsupported ones
	// read as KindBad forever and their fields stay zero.
	p.samples = make([]rtm.Sample, len(profileMetricNames))
	for i, name := range profileMetricNames {
		p.samples[i].Name = name
	}
	rtm.Read(p.samples)
	p.supported = make([]bool, len(p.samples))
	for i := range p.samples {
		p.supported[i] = p.samples[i].Value.Kind() != rtm.KindBad
	}
	return p
}

// Interval returns the sampling cadence.
func (p *Profiler) Interval() time.Duration {
	if p == nil {
		return 0
	}
	return p.interval
}

// Start launches the sampler goroutine (idempotent).
func (p *Profiler) Start() {
	if p == nil {
		return
	}
	p.startOnce.Do(func() {
		go func() {
			defer close(p.done)
			tick := time.NewTicker(p.interval)
			defer tick.Stop()
			p.Sample()
			for {
				select {
				case <-p.stop:
					return
				case <-tick.C:
					p.Sample()
				}
			}
		}()
	})
}

// Stop halts the sampler and waits for it to exit. Safe to call
// without Start and more than once.
func (p *Profiler) Stop() {
	if p == nil {
		return
	}
	select {
	case <-p.stop:
	default:
		close(p.stop)
	}
	p.startOnce.Do(func() { close(p.done) })
	<-p.done
}

// Sample takes one sample immediately, records it in the ring and the
// registry, and returns it. The background loop calls this on every
// tick; tests call it directly for a deterministic cadence.
func (p *Profiler) Sample() ProfileSample {
	if p == nil {
		return ProfileSample{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.readLocked(true)
	p.ring[p.next] = s
	p.next++
	if p.next == len(p.ring) {
		p.next = 0
		p.filled = true
	}

	p.goroutines.Set(int64(s.Goroutines))
	p.heapAlloc.Set(int64(s.HeapAllocBytes))
	p.heapObjects.Set(int64(s.HeapObjects))
	p.allocBytes.Add(s.AllocBytesDelta)
	p.mallocs.Add(s.MallocsDelta)
	p.gcCycles.Add(s.GCCyclesDelta)
	p.gcPauseUS.Add(uint64(s.GCPauseDelta * 1e6))
	p.schedP99US.Set(int64(s.SchedLatencyP99 * 1e6))
	p.samplesTotal.Inc()
	return s
}

// Peek takes a live reading (deltas measured against the last recorded
// sample) without storing it or advancing the baseline.
func (p *Profiler) Peek() ProfileSample {
	if p == nil {
		return ProfileSample{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.readLocked(false)
}

// uint64At returns the sampled value of profileMetricNames[i], 0 when
// the runtime does not expose it.
func (p *Profiler) uint64At(i int) uint64 {
	if !p.supported[i] || p.samples[i].Value.Kind() != rtm.KindUint64 {
		return 0
	}
	return p.samples[i].Value.Uint64()
}

// histAt returns the sampled histogram of profileMetricNames[i], nil
// when unsupported.
func (p *Profiler) histAt(i int) *rtm.Float64Histogram {
	if !p.supported[i] || p.samples[i].Value.Kind() != rtm.KindFloat64Histogram {
		return nil
	}
	return p.samples[i].Value.Float64Histogram()
}

// readLocked batch-reads the runtime/metrics set and computes deltas
// against the previous advancing read. When advance is true the new
// reading becomes the delta baseline.
func (p *Profiler) readLocked(advance bool) ProfileSample {
	rtm.Read(p.samples)
	s := ProfileSample{
		Time:           time.Now(),
		Goroutines:     runtime.NumGoroutine(),
		HeapAllocBytes: p.uint64At(0),
		HeapObjects:    p.uint64At(1),
	}
	allocBytes, allocObjects := p.uint64At(2), p.uint64At(3)
	gcCycles := p.uint64At(4)
	gcPauseSec := 0.0
	if h := p.histAt(5); h != nil {
		gcPauseSec = histApproxSum(h)
	}
	if p.havePrev {
		s.AllocBytesDelta = allocBytes - p.prev.allocBytes
		s.MallocsDelta = allocObjects - p.prev.allocObjects
		s.GCCyclesDelta = gcCycles - p.prev.gcCycles
		if d := gcPauseSec - p.prev.gcPauseSec; d > 0 {
			s.GCPauseDelta = d
		}
	}

	if cur := p.histAt(6); cur != nil {
		delta := cur.Counts
		if p.havePrev && len(p.prev.sched.Counts) == len(cur.Counts) {
			delta = make([]uint64, len(cur.Counts))
			for i, c := range cur.Counts {
				delta[i] = c - p.prev.sched.Counts[i]
			}
		}
		s.SchedLatencyP50 = float64HistQuantile(delta, cur.Buckets, 0.5)
		s.SchedLatencyP99 = float64HistQuantile(delta, cur.Buckets, 0.99)
		if advance {
			p.prev.sched = rtm.Float64Histogram{
				Counts:  append([]uint64(nil), cur.Counts...),
				Buckets: cur.Buckets,
			}
		}
	}
	if advance {
		p.prev.allocBytes = allocBytes
		p.prev.allocObjects = allocObjects
		p.prev.gcCycles = gcCycles
		p.prev.gcPauseSec = gcPauseSec
		p.havePrev = true
	}
	return s
}

// Samples returns up to n of the most recent samples in chronological
// order (n <= 0 means all retained).
func (p *Profiler) Samples(n int) []ProfileSample {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []ProfileSample
	if p.filled {
		out = append(out, p.ring[p.next:]...)
		out = append(out, p.ring[:p.next]...)
	} else {
		out = append(out, p.ring[:p.next]...)
	}
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// histApproxSum estimates the cumulative sum of a runtime/metrics
// histogram's observations: count × bucket midpoint (unbounded edges
// clamp to their finite side). Used for the GC pause total, where the
// runtime exposes a distribution rather than a running sum.
func histApproxSum(h *rtm.Float64Histogram) float64 {
	var sum float64
	for i, c := range h.Counts {
		if c == 0 || i+1 >= len(h.Buckets) {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		mid := 0.0
		switch {
		case isInf(lo) && isInf(hi):
			continue
		case isInf(lo):
			mid = hi
		case isInf(hi):
			mid = lo
		default:
			mid = (lo + hi) / 2
		}
		sum += float64(c) * mid
	}
	return sum
}

// float64HistQuantile interpolates the q-quantile of a
// runtime/metrics-style histogram: counts[i] holds observations in
// [buckets[i], buckets[i+1]). Unbounded edge buckets clamp to their
// finite side.
func float64HistQuantile(counts []uint64, buckets []float64, q float64) float64 {
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 || len(buckets) < 2 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum uint64
	for i, c := range counts {
		if c > 0 && float64(cum)+float64(c) >= rank {
			lo, hi := buckets[i], buckets[i+1]
			if isInf(lo) {
				return hi
			}
			if isInf(hi) {
				return lo
			}
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	last := buckets[len(buckets)-1]
	if isInf(last) {
		last = buckets[len(buckets)-2]
	}
	return last
}

func isInf(v float64) bool { return math.IsInf(v, 0) }
