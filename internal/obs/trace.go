package obs

// The pipeline tracer: a bounded, goroutine-safe recorder of spans
// (prime, victim-run, probe, job execution) and instant events
// (retries, interference faults, per-PW confidence), exportable as
// NDJSON or as Chrome trace_event JSON loadable in chrome://tracing
// (or https://ui.perfetto.dev).
//
// Timestamps are wall-clock microseconds relative to the trace's
// creation. They describe when things happened, never what was
// computed: trace contents feed no experiment decision, no cache key
// and no Result byte, so tracing cannot perturb determinism.

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// DefaultTraceCap bounds the events one Trace retains. Past the cap,
// events are counted in Dropped() and discarded, so a paper-scale
// corpus run cannot exhaust memory through its own telemetry.
const DefaultTraceCap = 1 << 17

// TraceEvent is one recorded span or instant, shaped after the Chrome
// trace_event format's complete ("X") and instant ("i") phases.
type TraceEvent struct {
	// Name and Cat identify the event ("probe", "attack"; "round",
	// "pipeline").
	Name string `json:"name"`
	Cat  string `json:"cat"`
	// Ph is the phase: "X" for a complete span, "i" for an instant.
	Ph string `json:"ph"`
	// TS is the start time in microseconds since the trace began; Dur
	// the span duration in microseconds (0 for instants).
	TS  int64 `json:"ts"`
	Dur int64 `json:"dur,omitempty"`
	// TID lanes the event for the viewer: callers use worker or task
	// indices so parallel pipelines render side by side.
	TID int64 `json:"tid"`
	// Args carry event payload (round number, confidence, fault class).
	Args map[string]any `json:"args,omitempty"`
}

// Trace records events. All methods are safe for concurrent use and
// no-ops on a nil receiver, so a disabled tracer costs one branch.
type Trace struct {
	mu      sync.Mutex
	start   time.Time
	epoch   int64 // wall clock at creation, microseconds since the Unix epoch
	events  []TraceEvent
	cap     int
	dropped uint64
}

// NewTrace returns an empty trace with the default event cap.
func NewTrace() *Trace {
	return NewTraceCap(0)
}

// NewTraceCap returns an empty trace retaining at most cap events
// (cap <= 0 means DefaultTraceCap).
func NewTraceCap(cap int) *Trace {
	if cap <= 0 {
		cap = DefaultTraceCap
	}
	now := time.Now()
	return &Trace{start: now, epoch: now.UnixMicro(), cap: cap}
}

// Epoch returns the trace's creation wall-clock time in microseconds
// since the Unix epoch. Event TS values are relative to it; the merged
// cross-node trace writer uses epochs to re-anchor fragments recorded
// on different nodes onto one shared timeline.
func (t *Trace) Epoch() int64 {
	if t == nil {
		return 0
	}
	return t.epoch
}

// sinceMicros returns the current trace-relative timestamp.
func (t *Trace) sinceMicros() int64 {
	return time.Since(t.start).Microseconds()
}

// add appends an event, honoring the cap.
func (t *Trace) add(ev TraceEvent) {
	t.mu.Lock()
	if len(t.events) >= t.cap {
		t.dropped++
	} else {
		t.events = append(t.events, ev)
	}
	t.mu.Unlock()
}

// Event records an instant event on lane tid.
func (t *Trace) Event(cat, name string, tid int64, args map[string]any) {
	if t == nil {
		return
	}
	t.add(TraceEvent{Name: name, Cat: cat, Ph: "i", TS: t.sinceMicros(), TID: tid, Args: args})
}

// Span is an in-flight interval; End records it. The zero Span (from a
// nil Trace) is inert.
type Span struct {
	t     *Trace
	name  string
	cat   string
	tid   int64
	start int64
	args  map[string]any
}

// Begin opens a span on lane tid. The span is recorded when End is
// called; an abandoned span records nothing.
func (t *Trace) Begin(cat, name string, tid int64, args map[string]any) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, cat: cat, tid: tid, start: t.sinceMicros(), args: args}
}

// End records the span as a complete ("X") event.
func (s Span) End() {
	if s.t == nil {
		return
	}
	now := s.t.sinceMicros()
	s.t.add(TraceEvent{Name: s.name, Cat: s.cat, Ph: "X", TS: s.start, Dur: now - s.start, TID: s.tid, Args: s.args})
}

// EndWith records the span with extra args merged over the Begin args.
func (s Span) EndWith(args map[string]any) {
	if s.t == nil {
		return
	}
	if s.args == nil {
		s.args = args
	} else {
		merged := make(map[string]any, len(s.args)+len(args))
		for k, v := range s.args {
			merged[k] = v
		}
		for k, v := range args {
			merged[k] = v
		}
		s.args = merged
	}
	s.End()
}

// Events returns a copy of the recorded events in record order.
func (t *Trace) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TraceEvent(nil), t.events...)
}

// Len returns the number of retained events.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns how many events the cap discarded.
func (t *Trace) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// chromeEvent is TraceEvent plus the pid field chrome://tracing wants.
type chromeEvent struct {
	TraceEvent
	PID int64 `json:"pid"`
}

// chromeFile is the Chrome trace_event JSON object form.
type chromeFile struct {
	TraceEvents []chromeEvent  `json:"traceEvents"`
	Metadata    map[string]any `json:"metadata,omitempty"`
}

// WriteChrome writes the trace in Chrome trace_event JSON (object
// form), loadable in chrome://tracing and Perfetto.
func (t *Trace) WriteChrome(w io.Writer) error {
	evs := t.Events()
	out := chromeFile{
		TraceEvents: make([]chromeEvent, 0, len(evs)),
		Metadata:    map[string]any{"producer": "nightvision/internal/obs"},
	}
	if d := t.Dropped(); d > 0 {
		out.Metadata["dropped_events"] = d
	}
	for _, ev := range evs {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{TraceEvent: ev, PID: 1})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// TraceFragment is one node's share of a distributed trace: the events
// its local hub recorded under a trace ID, plus the node name and the
// fragment's wall-clock epoch so a merger can re-anchor timestamps.
// It is the wire form of GET /v1/cluster/trace/{tid}.
type TraceFragment struct {
	Node    string       `json:"node"`
	TraceID string       `json:"trace_id"`
	EpochUS int64        `json:"epoch_us"`
	Dropped uint64       `json:"dropped,omitempty"`
	Events  []TraceEvent `json:"events"`
}

// Fragment snapshots the trace as a TraceFragment attributed to node.
func (t *Trace) Fragment(node, traceID string) TraceFragment {
	return TraceFragment{
		Node:    node,
		TraceID: traceID,
		EpochUS: t.Epoch(),
		Dropped: t.Dropped(),
		Events:  t.Events(),
	}
}

// WriteChromeMerged renders fragments gathered from multiple nodes as
// one Chrome trace_event file: each node becomes its own process (with
// a process_name metadata row), and every fragment's trace-relative
// timestamps are shifted by (fragment epoch - earliest epoch) so
// cross-node hops line up on a common timeline. Wall-clock skew between
// real machines shifts whole lanes relative to each other but never
// reorders events within one node's fragment.
func WriteChromeMerged(w io.Writer, frags []TraceFragment) error {
	sorted := append([]TraceFragment(nil), frags...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Node < sorted[j].Node })
	var minEpoch int64
	for i, f := range sorted {
		if i == 0 || f.EpochUS < minEpoch {
			minEpoch = f.EpochUS
		}
	}
	out := chromeFile{Metadata: map[string]any{"producer": "nightvision/internal/obs"}}
	var dropped uint64
	for i, f := range sorted {
		pid := int64(i + 1)
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			TraceEvent: TraceEvent{Name: "process_name", Ph: "M", Args: map[string]any{"name": f.Node}},
			PID:        pid,
		})
		offset := f.EpochUS - minEpoch
		for _, ev := range f.Events {
			ev.TS += offset
			out.TraceEvents = append(out.TraceEvents, chromeEvent{TraceEvent: ev, PID: pid})
		}
		dropped += f.Dropped
	}
	if dropped > 0 {
		out.Metadata["dropped_events"] = dropped
	}
	return json.NewEncoder(w).Encode(out)
}

// WriteNDJSONMerged writes the merged trace as one JSON object per
// line, each event carrying its node and epoch-aligned timestamp.
func WriteNDJSONMerged(w io.Writer, frags []TraceFragment) error {
	sorted := append([]TraceFragment(nil), frags...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Node < sorted[j].Node })
	var minEpoch int64
	for i, f := range sorted {
		if i == 0 || f.EpochUS < minEpoch {
			minEpoch = f.EpochUS
		}
	}
	enc := json.NewEncoder(w)
	for _, f := range sorted {
		offset := f.EpochUS - minEpoch
		for _, ev := range f.Events {
			ev.TS += offset
			if err := enc.Encode(struct {
				Node string `json:"node"`
				TraceEvent
			}{Node: f.Node, TraceEvent: ev}); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteNDJSON writes one JSON object per line per event, the grep- and
// jq-friendly form.
func (t *Trace) WriteNDJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range t.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	if d := t.Dropped(); d > 0 {
		_, err := fmt.Fprintf(w, "{\"name\":\"dropped\",\"cat\":\"obs\",\"ph\":\"i\",\"args\":{\"count\":%d}}\n", d)
		return err
	}
	return nil
}
