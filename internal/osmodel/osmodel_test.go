package osmodel

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
)

func setup(t *testing.T, src string) (*cpu.Core, *asm.Program) {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := mem.New()
	p.LoadInto(m)
	return cpu.New(cpu.Config{}, m), p
}

func TestYieldPingPong(t *testing.T) {
	core, p := setup(t, `
		.org 0x1000
	victim:
		movi r1, 0
	vloop:
		addi r1, 1
		syscall 1        ; sched_yield
		cmpi r1, 3
		jnz vloop
		hlt

		.org 0x2000
	attacker:
		movi r2, 0
	aloop:
		addi r2, 1
		syscall 1
		jmp aloop
	`)
	os := New(core)
	v := os.Spawn("victim", p.MustLabel("victim"), 0x7_0000, 0x1000)
	a := os.Spawn("attacker", p.MustLabel("attacker"), 0x8_0000, 0x1000)

	// Alternate: victim fragment, attacker fragment, as NV-U does.
	frags := 0
	for !v.Done && frags < 20 {
		os.Switch(v)
		r, err := os.RunUntilStop(10_000)
		if err != nil {
			t.Fatal(err)
		}
		if r == StopHalt {
			break
		}
		os.Switch(a)
		if _, err := os.RunUntilStop(10_000); err != nil {
			t.Fatal(err)
		}
		frags++
	}
	if !v.Done {
		t.Fatal("victim should have halted")
	}
	if got := v.State.Regs[isa.R1]; got != 3 {
		t.Errorf("victim r1 = %d, want 3", got)
	}
	if a.State.Regs[isa.R2] < 3 {
		t.Errorf("attacker r2 = %d, want >= 3", a.State.Regs[isa.R2])
	}
}

func TestRunUntilStopReasons(t *testing.T) {
	core, p := setup(t, `
		.org 0x1000
	start:
		syscall 1
		hlt
	`)
	os := New(core)
	pr := os.Spawn("p", p.MustLabel("start"), 0x7_0000, 0x1000)
	os.Switch(pr)
	r, err := os.RunUntilStop(100)
	if err != nil || r != StopYield {
		t.Fatalf("first stop = %v, %v; want yield", r, err)
	}
	r, err = os.RunUntilStop(100)
	if err != nil || r != StopHalt {
		t.Fatalf("second stop = %v, %v; want halt", r, err)
	}
	if !pr.Done {
		t.Error("process should be marked done")
	}
	// Step budget exhaustion.
	core2, p2 := setup(t, ".org 0x1000\nstart: loop: jmp loop")
	os2 := New(core2)
	pr2 := os2.Spawn("p", p2.MustLabel("start"), 0x7_0000, 0x1000)
	os2.Switch(pr2)
	r, err = os2.RunUntilStop(50)
	if err != nil || r != StopSteps {
		t.Fatalf("stop = %v, %v; want steps", r, err)
	}
}

func TestRunWithoutProcess(t *testing.T) {
	core, _ := setup(t, ".org 0x1000\nstart: hlt")
	os := New(core)
	if _, err := os.RunUntilStop(10); err != ErrNoProcess {
		t.Errorf("err = %v, want ErrNoProcess", err)
	}
	if _, err := os.StepOne(); err != ErrNoProcess {
		t.Errorf("err = %v, want ErrNoProcess", err)
	}
}

func TestUnknownSyscall(t *testing.T) {
	core, p := setup(t, ".org 0x1000\nstart: syscall 99\nhlt")
	os := New(core)
	pr := os.Spawn("p", p.MustLabel("start"), 0x7_0000, 0x1000)
	os.Switch(pr)
	if _, err := os.RunUntilStop(10); err == nil {
		t.Error("unknown syscall should error")
	}
}

func TestStepOneInterrupts(t *testing.T) {
	core, p := setup(t, `
		.org 0x1000
	start:
		movi r1, 5
	loop:
		subi r1, 1
		jnz loop
		hlt
	`)
	os := New(core)
	pr := os.Spawn("p", p.MustLabel("start"), 0x7_0000, 0x1000)
	os.Switch(pr)
	steps := 0
	for !pr.Done && steps < 1000 {
		_, err := os.StepOne()
		if err == cpu.ErrHalted {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		steps++
	}
	if core.Reg(isa.R1) != 0 {
		t.Errorf("r1 = %d, want 0 (single-stepping must preserve semantics)", core.Reg(isa.R1))
	}
}

// TestBTBSharedAcrossProcesses is the attack premise: entries allocated
// by one process predict (and are deallocatable) in another.
func TestBTBSharedAcrossProcesses(t *testing.T) {
	core, p := setup(t, `
		.org 0x3000
	procA:
		jmp8 a1
	a1:
		hlt
		.org 0x4000
	procB:
		hlt
	`)
	os := New(core)
	a := os.Spawn("a", p.MustLabel("procA"), 0x7_0000, 0x1000)
	b := os.Spawn("b", p.MustLabel("procB"), 0x8_0000, 0x1000)
	os.Switch(a)
	if _, err := os.RunUntilStop(100); err != nil {
		t.Fatal(err)
	}
	if _, ok := core.BTB.EntryAt(0x3001); !ok {
		t.Fatal("process A's jump should be in the BTB")
	}
	os.Switch(b)
	if _, err := os.RunUntilStop(100); err != nil {
		t.Fatal(err)
	}
	if _, ok := core.BTB.EntryAt(0x3001); !ok {
		t.Error("process A's BTB entry must survive B's time slice")
	}
}

func TestStopReasonString(t *testing.T) {
	cases := map[StopReason]string{StopYield: "yield", StopHalt: "halt", StopSteps: "steps", StopReason(99): "invalid"}
	for r, want := range cases {
		if r.String() != want {
			t.Errorf("%d.String() = %q, want %q", r, r.String(), want)
		}
	}
}

func TestCurrentAndRedundantSwitch(t *testing.T) {
	core, p := setup(t, ".org 0x1000\nstart: hlt")
	os := New(core)
	if os.Current() != nil {
		t.Error("no current process initially")
	}
	pr := os.Spawn("p", p.MustLabel("start"), 0x7_0000, 0x1000)
	os.Switch(pr)
	if os.Current() != pr {
		t.Error("Current should return the installed process")
	}
	sq := core.Squashes()
	os.Switch(pr) // no-op: same process
	if core.Squashes() != sq {
		t.Error("switching to the current process must not squash")
	}
}

func TestRunSlice(t *testing.T) {
	core, p := setup(t, `
		.org 0x1000
	start:
		movi r1, 0
	loop:
		addi r1, 1
		jmp loop
	`)
	os := New(core)
	pr := os.Spawn("p", p.MustLabel("start"), 0x7_0000, 0x1000)
	os.Switch(pr)
	r, err := os.RunSlice(10)
	if err != nil || r != StopSteps {
		t.Fatalf("RunSlice = %v, %v", r, err)
	}
	// The victim made progress but was bounded.
	if got := core.Reg(isa.R1); got == 0 || got > 10 {
		t.Errorf("r1 = %d after a 10-step slice", got)
	}
	// Halting inside a slice reports StopHalt.
	core2, p2 := setup(t, ".org 0x1000\nstart: hlt")
	os2 := New(core2)
	pr2 := os2.Spawn("p", p2.MustLabel("start"), 0x7_0000, 0x1000)
	os2.Switch(pr2)
	r, err = os2.RunSlice(10)
	if err != nil || r != StopHalt || !pr2.Done {
		t.Fatalf("halting slice = %v, %v, done=%v", r, err, pr2.Done)
	}
	// No process installed.
	os3 := New(setupCore(t))
	if _, err := os3.RunSlice(5); err != ErrNoProcess {
		t.Errorf("err = %v, want ErrNoProcess", err)
	}
}

func setupCore(t *testing.T) *cpu.Core {
	t.Helper()
	core, _ := setup(t, ".org 0x1000\nstart: hlt")
	return core
}
