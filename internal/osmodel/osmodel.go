// Package osmodel provides a minimal operating-system model over the
// simulated core: processes with separate architectural state, context
// switching, and the sched_yield-based cooperative scheduling that the
// paper's user-level proof-of-concept attack uses (§7.2).
//
// The paper's NV-U variant relies on a "preemptive scheduling attack" to
// shrink victim time slices. Its own evaluation simulates that attack by
// inserting sched_yield() calls into the victim — exactly what this
// package models: a victim yields after each protected-branch body and
// the attacker process gets the core in between.
//
// Crucially, context switches do not flush the BTB (no real OS does, and
// IBPB only touches indirect entries): the shared predictor state across
// processes is the attack surface.
package osmodel

import (
	"errors"
	"fmt"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
)

// SyscallYield is the syscall number for sched_yield.
const SyscallYield = 1

// StopReason says why RunUntilStop returned.
type StopReason int

// Stop reasons.
const (
	StopYield StopReason = iota // process executed sched_yield
	StopHalt                    // process executed hlt
	StopSteps                   // step budget exhausted
)

func (r StopReason) String() string {
	switch r {
	case StopYield:
		return "yield"
	case StopHalt:
		return "halt"
	case StopSteps:
		return "steps"
	}
	return "invalid"
}

// Process is one schedulable entity.
type Process struct {
	Name  string
	State cpu.ArchState
	// Done marks a process that has halted.
	Done bool
}

// OS owns the core and schedules processes onto it.
type OS struct {
	Core    *cpu.Core
	current *Process

	// OnTick, when non-nil, is called after every architectural step the
	// OS retires in RunUntilStop/RunSlice — the hook point for the
	// deterministic interference layer (timer interrupts, co-runner
	// context switches) to perturb the machine mid-victim.
	OnTick func()

	yieldFlag bool
}

// New returns an OS managing core. The core's syscall hook is taken over
// by the OS.
func New(core *cpu.Core) *OS {
	os := &OS{Core: core}
	core.OnSyscall = func(n uint8) error {
		switch n {
		case SyscallYield:
			os.yieldFlag = true
			return nil
		default:
			return fmt.Errorf("osmodel: unknown syscall %d", n)
		}
	}
	return os
}

// Spawn creates a process with entry point pc and a freshly mapped stack
// of stackSize bytes ending at stackTop.
func (o *OS) Spawn(name string, pc, stackTop, stackSize uint64) *Process {
	o.Core.Mem.Map(stackTop-stackSize, stackSize, mem.PermRW)
	p := &Process{Name: name}
	p.State.PC = pc
	p.State.Regs[isa.SP] = stackTop
	return p
}

// Current returns the process currently installed on the core, if any.
func (o *OS) Current() *Process { return o.current }

// Switch installs p on the core, saving the previous process's state.
// The BTB and LBR deliberately persist across the switch.
func (o *OS) Switch(p *Process) {
	if o.current == p {
		return
	}
	if o.current != nil {
		o.Core.ContextSwitch(&o.current.State, &p.State)
	} else {
		o.Core.ContextSwitch(nil, &p.State)
	}
	o.current = p
}

// ErrNoProcess is returned by run functions when no process is installed.
var ErrNoProcess = errors.New("osmodel: no current process")

// RunUntilStop runs the current process until it yields, halts, or
// exhausts maxSteps.
func (o *OS) RunUntilStop(maxSteps uint64) (StopReason, error) {
	if o.current == nil {
		return StopSteps, ErrNoProcess
	}
	o.yieldFlag = false
	for steps := uint64(0); steps < maxSteps; steps++ {
		_, err := o.Core.Step()
		if err == cpu.ErrHalted {
			o.current.Done = true
			return StopHalt, nil
		}
		if err != nil {
			return StopSteps, err
		}
		if o.yieldFlag {
			return StopYield, nil
		}
		if o.OnTick != nil {
			o.OnTick()
		}
	}
	return StopSteps, nil
}

// RunSlice runs the current process for at most n architectural steps
// and then delivers a timer interrupt — the time-slice view a
// preemptive scheduling attack [22] establishes without any victim
// cooperation. Unlike RunUntilStop it ignores sched_yield.
func (o *OS) RunSlice(n uint64) (StopReason, error) {
	if o.current == nil {
		return StopSteps, ErrNoProcess
	}
	for steps := uint64(0); steps < n; steps++ {
		_, err := o.Core.Step()
		if err == cpu.ErrHalted {
			o.current.Done = true
			return StopHalt, nil
		}
		if err != nil {
			return StopSteps, err
		}
		if o.OnTick != nil {
			o.OnTick()
		}
	}
	o.Core.Interrupt()
	return StopSteps, nil
}

// StepOne single-steps the current process by one architectural step and
// then delivers a timer interrupt, modeling a supervisor attacker
// interrupting per instruction (the SGX-Step technique).
func (o *OS) StepOne() (cpu.StepInfo, error) {
	if o.current == nil {
		return cpu.StepInfo{}, ErrNoProcess
	}
	info, err := o.Core.Step()
	if err != nil {
		if err == cpu.ErrHalted {
			o.current.Done = true
		}
		return info, err
	}
	o.Core.Interrupt()
	return info, nil
}
