package netchaos

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// testServer returns a server that echoes request bodies and counts hits.
func testServer(t *testing.T) (*httptest.Server, *atomic.Int64, *atomic.Int64) {
	t.Helper()
	var hits, bodyBytes atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		b, _ := io.ReadAll(r.Body)
		bodyBytes.Add(int64(len(b)))
		w.Write(b)
	}))
	t.Cleanup(srv.Close)
	return srv, &hits, &bodyBytes
}

func hostOf(t *testing.T, srv *httptest.Server) string {
	t.Helper()
	u, err := url.Parse(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	return u.Host
}

func TestUnmappedHostPassesThrough(t *testing.T) {
	srv, hits, _ := testServer(t)
	c := New(1)
	c.SetRule("a", "*", Rule{Block: true})
	client := &http.Client{Transport: c.Transport("a", nil)}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("unmapped host should pass through: %v", err)
	}
	resp.Body.Close()
	if hits.Load() != 1 {
		t.Fatalf("hits = %d, want 1", hits.Load())
	}
}

func TestBlockOneWayIsAsymmetric(t *testing.T) {
	srv, hits, _ := testServer(t)
	c := New(1)
	c.MapAddr(hostOf(t, srv), "b")
	c.BlockOneWay("a", "b")

	ca := &http.Client{Transport: c.Transport("a", nil)}
	if _, err := ca.Get(srv.URL); err == nil {
		t.Fatal("a->b should be blocked")
	} else {
		var inj *ErrInjected
		if !errors.As(err, &inj) {
			t.Fatalf("want ErrInjected, got %v", err)
		}
	}
	// The reverse direction (a different source node) is untouched.
	cc := &http.Client{Transport: c.Transport("c", nil)}
	resp, err := cc.Get(srv.URL)
	if err != nil {
		t.Fatalf("c->b should pass: %v", err)
	}
	resp.Body.Close()

	c.Heal("a", "b")
	resp, err = ca.Get(srv.URL)
	if err != nil {
		t.Fatalf("after Heal a->b should pass: %v", err)
	}
	resp.Body.Close()
	if hits.Load() != 2 {
		t.Fatalf("hits = %d, want 2", hits.Load())
	}
}

func TestFlapWindows(t *testing.T) {
	srv, _, _ := testServer(t)
	c := New(7)
	c.MapAddr(hostOf(t, srv), "b")
	c.SetRule("a", "b", Rule{FlapPeriod: 3})
	client := &http.Client{Transport: c.Transport("a", nil)}

	var got []bool
	for i := 0; i < 12; i++ {
		resp, err := client.Get(srv.URL)
		if err == nil {
			resp.Body.Close()
		}
		got = append(got, err == nil)
	}
	// Windows of 3: up, down, up, down.
	want := []bool{true, true, true, false, false, false, true, true, true, false, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("attempt %d: ok=%v, want %v (%v)", i, got[i], want[i], got)
		}
	}
}

func TestDropScheduleIsSeedDeterministic(t *testing.T) {
	run := func(seed uint64) []bool {
		srv, _, _ := testServer(t)
		c := New(seed)
		c.MapAddr(hostOf(t, srv), "b")
		c.SetRule("a", "b", Rule{DropProb: 0.5})
		client := &http.Client{Transport: c.Transport("a", nil)}
		var outcomes []bool
		for i := 0; i < 40; i++ {
			resp, err := client.Get(srv.URL)
			if err == nil {
				resp.Body.Close()
			}
			outcomes = append(outcomes, err == nil)
		}
		return outcomes
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at attempt %d: %v vs %v", i, a, b)
		}
	}
	other := run(43)
	same := true
	for i := range a {
		if a[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 40-attempt schedules")
	}
}

func TestDuplicateDeliversTwice(t *testing.T) {
	srv, hits, _ := testServer(t)
	c := New(3)
	c.MapAddr(hostOf(t, srv), "b")
	c.SetRule("a", "b", Rule{DuplicateFirstN: 1})
	client := &http.Client{Transport: c.Transport("a", nil)}

	resp, err := client.Post(srv.URL, "text/plain", strings.NewReader("payload"))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(b) != "payload" {
		t.Fatalf("body = %q", b)
	}
	if hits.Load() != 2 {
		t.Fatalf("duplicate delivery: hits = %d, want 2", hits.Load())
	}
	// Second attempt is past FirstN: delivered once.
	resp, err = client.Post(srv.URL, "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hits.Load() != 3 {
		t.Fatalf("hits = %d, want 3", hits.Load())
	}
}

func TestTruncateRequestHalvesBody(t *testing.T) {
	srv, _, bodyBytes := testServer(t)
	c := New(5)
	c.MapAddr(hostOf(t, srv), "b")
	c.SetRule("a", "b", Rule{TruncateRequestFirstN: 1})
	client := &http.Client{Transport: c.Transport("a", nil)}

	payload := bytes.Repeat([]byte("x"), 1000)
	resp, err := client.Post(srv.URL, "application/octet-stream", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := bodyBytes.Load(); got != 500 {
		t.Fatalf("server received %d bytes, want 500", got)
	}
}

func TestPathPrefixScopesRule(t *testing.T) {
	srv, _, _ := testServer(t)
	c := New(9)
	c.MapAddr(hostOf(t, srv), "b")
	c.SetRule("a", "b", Rule{PathPrefix: "/v1/cluster/segments/", Block: true})
	client := &http.Client{Transport: c.Transport("a", nil)}

	resp, err := client.Get(srv.URL + "/v1/store/abc")
	if err != nil {
		t.Fatalf("non-matching path should pass: %v", err)
	}
	resp.Body.Close()
	if _, err := client.Get(srv.URL + "/v1/cluster/segments/n1/seg-1"); err == nil {
		t.Fatal("matching path should be blocked")
	}
}

func TestSlowLorisTrickles(t *testing.T) {
	srv, _, _ := testServer(t)
	c := New(11)
	c.MapAddr(hostOf(t, srv), "b")
	c.SetRule("a", "b", Rule{SlowChunk: 4, SlowPauseMS: 5})
	client := &http.Client{Transport: c.Transport("a", nil)}

	payload := strings.Repeat("y", 64)
	start := time.Now()
	resp, err := client.Post(srv.URL, "text/plain", strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != payload {
		t.Fatalf("slow body corrupted: %q", b)
	}
	// 64 bytes / 4-byte chunks with 5ms pauses: at least ~16 pauses.
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("slow-loris completed too fast: %v", elapsed)
	}
}

func TestStatsCount(t *testing.T) {
	srv, _, _ := testServer(t)
	c := New(13)
	c.MapAddr(hostOf(t, srv), "b")
	c.SetRule("a", "b", Rule{DropFirstN: 2})
	client := &http.Client{Transport: c.Transport("a", nil)}
	for i := 0; i < 4; i++ {
		if resp, err := client.Get(srv.URL); err == nil {
			resp.Body.Close()
		}
	}
	st := c.StatsSnapshot()["a->b"]
	if st.Attempts != 4 || st.Dropped != 2 {
		t.Fatalf("stats = %+v, want 4 attempts / 2 drops", st)
	}
	if c.TotalDropped() != 2 {
		t.Fatalf("TotalDropped = %d", c.TotalDropped())
	}
}
