// Package netchaos is a seeded, deterministic fault-injecting
// http.RoundTripper for cluster tests and smoke runs. It sits between a
// node's outbound HTTP client and the real network and perturbs traffic
// per directed peer pair: latency sampled from a per-link distribution,
// probabilistic drops, hard one-way partitions, flapping links that
// alternate up/down windows, slow-loris responses trickled out in tiny
// chunks, truncated request or response bodies, and duplicated
// deliveries.
//
// Every decision is a pure function of (seed, link, attempt index):
// attempt n on link "a->b" draws from nvrand.SplitAt(linkSeed, n), so a
// run with the same seed and the same per-link attempt interleaving
// replays the same fault schedule bit-for-bit. Concurrent attempts on
// different links never perturb each other's streams.
//
// The zero fault set is a no-op: traffic to hosts that were never mapped
// with MapAddr passes through untouched, so test-harness traffic (the
// client driving the fleet) is never chaos-injected by accident.
package netchaos

import (
	"bytes"
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/nvrand"
)

// Rule describes the faults injected on one directed link. The zero Rule
// injects nothing. Probabilities are in [0,1]; counts of the form FirstN
// fire deterministically on the first N attempts crossing the link after
// the rule is installed, which is how tests guarantee "at least one"
// fault without probability tuning.
type Rule struct {
	// PathPrefix restricts the rule to request URLs whose path starts
	// with the prefix. Empty matches every path.
	PathPrefix string

	// Block drops every matching request (hard one-way partition).
	Block bool

	// FlapPeriod > 0 makes the link alternate availability in windows of
	// FlapPeriod attempts: attempts in odd-numbered windows are dropped.
	// Attempt 0..P-1 pass, P..2P-1 drop, and so on.
	FlapPeriod int

	// DropProb drops a matching request with the given probability.
	DropProb float64
	// DropFirstN drops the first N matching attempts outright.
	DropFirstN int

	// LatencyMinMS/LatencyMaxMS delay the request by a uniform sample
	// from [min,max] milliseconds before it is forwarded.
	LatencyMinMS int
	LatencyMaxMS int

	// DuplicateProb delivers the request twice (back to back, same
	// body); the caller sees the second response. DuplicateFirstN
	// duplicates the first N matching attempts deterministically.
	DuplicateProb  float64
	DuplicateFirstN int

	// TruncateRequestProb cuts the request body roughly in half before
	// it reaches the peer, simulating a torn upload. TruncateRequestFirstN
	// truncates the first N matching attempts deterministically.
	TruncateRequestProb   float64
	TruncateRequestFirstN int

	// TruncateResponseProb cuts the response body roughly in half on the
	// way back, simulating a torn download.
	TruncateResponseProb float64

	// SlowChunk > 0 rewraps the response body so reads trickle out in
	// SlowChunk-byte pieces with SlowPauseMS milliseconds between them
	// (slow-loris). The total transfer still completes; it is the
	// per-read stall that exercises idle deadlines.
	SlowChunk   int
	SlowPauseMS int
}

// link carries the mutable state for one directed peer pair.
type link struct {
	rule     Rule
	attempts uint64 // total matching attempts crossing this link
	seed     uint64 // stream seed: attempt n draws from SplitAt(seed, n)
}

// Stats counts what the chaos layer actually did, per directed link.
type Stats struct {
	Attempts   uint64
	Dropped    uint64
	Delayed    uint64
	Duplicated uint64
	TruncReq   uint64
	TruncResp  uint64
	Slowed     uint64
}

// Chaos holds the fault topology for a fleet. Safe for concurrent use.
type Chaos struct {
	mu    sync.Mutex
	seed  uint64
	links map[string]*link // "from->to" (to == "*" matches any mapped destination)
	addrs map[string]string // "host:port" -> node id
	stats map[string]*Stats
}

// New returns an empty chaos topology with the given schedule seed.
func New(seed uint64) *Chaos {
	return &Chaos{
		seed:  seed,
		links: make(map[string]*link),
		addrs: make(map[string]string),
		stats: make(map[string]*Stats),
	}
}

// MapAddr registers hostport (as it appears in request URLs) as node id.
// Requests to unmapped hosts bypass chaos entirely.
func (c *Chaos) MapAddr(hostport, id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.addrs[hostport] = id
}

func linkKey(from, to string) string { return from + "->" + to }

// linkSeed derives a per-link stream seed from the chaos seed and the
// link name, so distinct links get independent deterministic schedules.
func (c *Chaos) linkSeed(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return nvrand.SplitAt(c.seed, h.Sum64()).Uint64()
}

// SetRule installs (replacing) the rule for the directed link from->to
// and resets its attempt counter, so FirstN counts restart. to may be
// "*" to match every mapped destination.
func (c *Chaos) SetRule(from, to string, r Rule) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := linkKey(from, to)
	c.links[key] = &link{rule: r, seed: c.linkSeed(key)}
}

// BlockOneWay installs an asymmetric partition: from can no longer reach
// to, while to->from is untouched.
func (c *Chaos) BlockOneWay(from, to string) { c.SetRule(from, to, Rule{Block: true}) }

// Heal removes any rule on the directed link from->to.
func (c *Chaos) Heal(from, to string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.links, linkKey(from, to))
}

// HealAll removes every rule, leaving a fault-free network.
func (c *Chaos) HealAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.links = make(map[string]*link)
}

// Stats returns a copy of the per-link fault counters.
func (c *Chaos) StatsSnapshot() map[string]Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]Stats, len(c.stats))
	for k, s := range c.stats {
		out[k] = *s
	}
	return out
}

// TotalDropped sums drops across all links (partition + flap + prob).
func (c *Chaos) TotalDropped() uint64 {
	var n uint64
	for _, s := range c.StatsSnapshot() {
		n += s.Dropped
	}
	return n
}

// decision is the fault plan for one attempt, fully determined before
// any I/O happens so the schedule cannot depend on network timing.
type decision struct {
	drop      bool
	delay     time.Duration
	duplicate bool
	truncReq  bool
	truncResp bool
	slowChunk int
	slowPause time.Duration
}

// plan matches req against the rules for from-> and computes the fault
// decision for this attempt. It must be called with c.mu held.
func (c *Chaos) plan(from, to string, req *http.Request) (decision, *Stats, bool) {
	var d decision
	// Specific link first, then wildcard; first matching rule wins so
	// schedules stay attributable to a single stream.
	for _, key := range []string{linkKey(from, to), linkKey(from, "*")} {
		l, ok := c.links[key]
		if !ok {
			continue
		}
		r := l.rule
		if r.PathPrefix != "" && !strings.HasPrefix(req.URL.Path, r.PathPrefix) {
			continue
		}
		n := l.attempts
		l.attempts++
		st := c.stats[key]
		if st == nil {
			st = &Stats{}
			c.stats[key] = st
		}
		st.Attempts++
		rng := nvrand.SplitAt(l.seed, n)
		if r.Block {
			d.drop = true
			return d, st, true
		}
		if r.FlapPeriod > 0 && (n/uint64(r.FlapPeriod))%2 == 1 {
			d.drop = true
			return d, st, true
		}
		if n < uint64(r.DropFirstN) || (r.DropProb > 0 && rng.Float64() < r.DropProb) {
			d.drop = true
			return d, st, true
		}
		if r.LatencyMaxMS > 0 {
			span := r.LatencyMaxMS - r.LatencyMinMS + 1
			d.delay = time.Duration(r.LatencyMinMS+rng.Intn(span)) * time.Millisecond
		}
		d.duplicate = n < uint64(r.DuplicateFirstN) ||
			(r.DuplicateProb > 0 && rng.Float64() < r.DuplicateProb)
		d.truncReq = n < uint64(r.TruncateRequestFirstN) ||
			(r.TruncateRequestProb > 0 && rng.Float64() < r.TruncateRequestProb)
		d.truncResp = r.TruncateResponseProb > 0 && rng.Float64() < r.TruncateResponseProb
		if r.SlowChunk > 0 {
			d.slowChunk = r.SlowChunk
			d.slowPause = time.Duration(r.SlowPauseMS) * time.Millisecond
		}
		return d, st, true
	}
	return d, nil, false
}

// ErrInjected is the error type returned for injected drops, so callers
// and tests can distinguish chaos from genuine transport failures.
type ErrInjected struct{ Link string }

func (e *ErrInjected) Error() string {
	return fmt.Sprintf("netchaos: dropped on link %s", e.Link)
}

// transport implements http.RoundTripper for one source node.
type transport struct {
	c     *Chaos
	from  string
	inner http.RoundTripper
}

// Transport wraps inner (nil means http.DefaultTransport) with chaos
// injection for traffic originating at node from.
func (c *Chaos) Transport(from string, inner http.RoundTripper) http.RoundTripper {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &transport{c: c, from: from, inner: inner}
}

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.c.mu.Lock()
	to, mapped := t.c.addrs[req.URL.Host]
	if !mapped {
		t.c.mu.Unlock()
		return t.inner.RoundTrip(req)
	}
	d, st, matched := t.c.plan(t.from, to, req)
	t.c.mu.Unlock()
	if !matched {
		return t.inner.RoundTrip(req)
	}

	lk := linkKey(t.from, to)
	if d.drop {
		t.c.count(st, func(s *Stats) { s.Dropped++ })
		// Consume the body as a real failed send would, then fail fast.
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		return nil, &ErrInjected{Link: lk}
	}

	// Buffer the body once: delays, duplication and truncation all need
	// a rewindable copy, and Content-Length must match what we send.
	var body []byte
	if req.Body != nil {
		var err error
		body, err = io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, err
		}
	}
	if d.truncReq && len(body) > 1 {
		body = body[:len(body)/2]
		t.c.count(st, func(s *Stats) { s.TruncReq++ })
	}

	if d.delay > 0 {
		t.c.count(st, func(s *Stats) { s.Delayed++ })
		select {
		case <-time.After(d.delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}

	send := func() (*http.Response, error) {
		r2 := req.Clone(req.Context())
		if body != nil {
			r2.Body = io.NopCloser(bytes.NewReader(body))
			r2.ContentLength = int64(len(body))
		}
		return t.inner.RoundTrip(r2)
	}

	if d.duplicate {
		t.c.count(st, func(s *Stats) { s.Duplicated++ })
		if resp, err := send(); err == nil {
			// First delivery: drain and discard, the peer has processed it.
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	resp, err := send()
	if err != nil || resp == nil {
		return resp, err
	}

	if d.truncResp {
		t.c.count(st, func(s *Stats) { s.TruncResp++ })
		resp.Body = &truncBody{rc: resp.Body, remain: maxInt64(resp.ContentLength/2, 1)}
		if resp.ContentLength > 0 {
			resp.ContentLength /= 2
		}
	}
	if d.slowChunk > 0 {
		t.c.count(st, func(s *Stats) { s.Slowed++ })
		resp.Body = &slowBody{rc: resp.Body, chunk: d.slowChunk, pause: d.slowPause, ctx: req.Context()}
	}
	return resp, nil
}

func (c *Chaos) count(st *Stats, f func(*Stats)) {
	c.mu.Lock()
	f(st)
	c.mu.Unlock()
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// truncBody cuts a response body off after remain bytes, then reports
// an abrupt EOF the way a torn connection would.
type truncBody struct {
	rc     io.ReadCloser
	remain int64
}

func (t *truncBody) Read(p []byte) (int, error) {
	if t.remain <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if int64(len(p)) > t.remain {
		p = p[:t.remain]
	}
	n, err := t.rc.Read(p)
	t.remain -= int64(n)
	if t.remain <= 0 && err == nil {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (t *truncBody) Close() error { return t.rc.Close() }

// slowBody trickles reads out chunk bytes at a time with a pause before
// each chunk, honoring the request context so deadlines still fire.
type slowBody struct {
	rc    io.ReadCloser
	chunk int
	pause time.Duration
	ctx   context.Context
}

func (s *slowBody) Read(p []byte) (int, error) {
	if s.pause > 0 {
		select {
		case <-time.After(s.pause):
		case <-s.ctx.Done():
			return 0, s.ctx.Err()
		}
	}
	if len(p) > s.chunk {
		p = p[:s.chunk]
	}
	return s.rc.Read(p)
}

func (s *slowBody) Close() error { return s.rc.Close() }
